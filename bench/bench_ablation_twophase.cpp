// Ablation D3 (DESIGN.md): joint computation vs the two-phase flows the
// paper replaces (Section I: separate phases cause false negatives or
// unguided iteration).
//
// For T1 under a sweep of buffer caps, and for generated chains under memory
// pressure, the harness reports: feasibility of each flow and the weighted
// objective. Expected: budget-first becomes infeasible as soon as the cap
// drops below the capacity its committed minimal budgets need (a false
// negative — the joint flow still finds solutions), and buffer-first pays
// higher budget cost than the joint optimum at equal caps.
#include <cstdio>

#include "bbs/core/two_phase.hpp"
#include "bbs/gen/generators.hpp"

namespace {

const char* verdict(const bbs::core::MappingResult& r) {
  return r.feasible() ? "feasible" : "INFEASIBLE";
}

}  // namespace

int main() {
  std::printf("# Ablation D3: joint vs two-phase (T1, buffer cap sweep)\n");
  std::printf(
      "# cap | joint obj | budget-first | buffer-first obj | notes\n");
  for (int cap = 1; cap <= 10; ++cap) {
    bbs::model::Configuration config = bbs::gen::producer_consumer_t1();
    config.mutable_task_graph(0).set_max_capacity(0, cap);

    const auto joint = bbs::core::compute_budgets_and_buffers(config);
    const auto bud_first = bbs::core::solve_budget_first(config);
    const auto buf_first = bbs::core::solve_buffer_first(
        config, static_cast<bbs::linalg::Index>(cap));

    std::printf("%5d | %9.3f | %12s | ", cap,
                joint.feasible() ? joint.objective_continuous : -1.0,
                verdict(bud_first));
    if (buf_first.feasible()) {
      std::printf("%16.3f", buf_first.objective_continuous);
    } else {
      std::printf("%16s", "INFEASIBLE");
    }
    std::printf(" | %s\n",
                (joint.feasible() && !bud_first.feasible())
                    ? "budget-first false negative"
                    : "");
  }

  std::printf("\n# Chains under memory pressure (capacity sigma(m) sweep)\n");
  std::printf("# memory | joint | budget-first | note\n");
  for (const double mem_cap : {40.0, 24.0, 16.0, 12.0, 10.0}) {
    bbs::gen::GenParams params;
    params.seed = 3;
    bbs::model::Configuration config = bbs::gen::make_chain(5, params);
    // Rebuild with a finite memory: generators use memory 0 for all buffers.
    bbs::model::Configuration tight(config.granularity());
    for (bbs::linalg::Index p = 0; p < config.num_processors(); ++p) {
      tight.add_processor(config.processor(p).name,
                          config.processor(p).replenishment_interval,
                          config.processor(p).scheduling_overhead);
    }
    tight.add_memory("shared", mem_cap);
    {
      const bbs::model::TaskGraph& tg = config.task_graph(0);
      bbs::model::TaskGraph copy(tg.name(), tg.required_period());
      for (bbs::linalg::Index t = 0; t < tg.num_tasks(); ++t) {
        const auto& task = tg.task(t);
        copy.add_task(task.name, task.processor, task.wcet,
                      task.budget_weight);
      }
      for (bbs::linalg::Index b = 0; b < tg.num_buffers(); ++b) {
        const auto& buf = tg.buffer(b);
        copy.add_buffer(buf.name, buf.producer, buf.consumer, 0,
                        buf.container_size, buf.initial_fill, buf.size_weight);
      }
      tight.add_task_graph(std::move(copy));
    }

    const auto joint = bbs::core::compute_budgets_and_buffers(tight);
    const auto bud_first = bbs::core::solve_budget_first(tight);
    std::printf("%7.0f | %5s | %12s | %s\n", mem_cap, verdict(joint),
                verdict(bud_first),
                (joint.feasible() && !bud_first.feasible())
                    ? "false negative avoided by joint flow"
                    : "");
  }
  return 0;
}
