// Reproduces Figure 2(a) of the paper: the budget–buffer size trade-off on
// the producer-consumer task graph T1.
//
// Setup (Section V): tasks wa, wb on processors p1, p2 with replenishment
// interval 40 Mcycles, WCET 1 Mcycle, required period 10 Mcycles, unit
// containers, weights preferring budget minimisation. The sweep constrains
// the maximum buffer capacity to d = 1..10 containers and reports the
// (equal) budgets of wa and wb.
//
// Expected shape: a convex, monotonically decreasing curve from ~36 Mcycles
// at 1 container down to the self-loop bound of 4 Mcycles at 10 containers
// (the paper's Figure 2(a) spans ~45..4 on the same axis). The analytic
// optimum max(rho*chi/mu, (2rho - d mu + sqrt((2rho - d mu)^2 + 16 rho chi))/4)
// is printed alongside as the oracle.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bbs/core/tradeoff.hpp"
#include "bbs/gen/generators.hpp"

namespace {

double analytic_budget(double rho, double chi, double mu, double d) {
  const double p = 2.0 * rho - d * mu;
  return std::max(rho * chi / mu,
                  (p + std::sqrt(p * p + 16.0 * rho * chi)) / 4.0);
}

}  // namespace

int main() {
  using clock = std::chrono::steady_clock;
  std::printf("# Figure 2(a): budget--buffer size trade-off (task graph T1)\n");
  std::printf("# rho = 40 Mcycles, chi = 1 Mcycle, mu = 10 Mcycles\n");
  std::printf(
      "# capacity | budget beta(wa)=beta(wb) [Mcycles] | analytic | rounded |"
      " solve [ms]\n");

  bbs::model::Configuration config = bbs::gen::producer_consumer_t1();
  double total_ms = 0.0;
  for (int d = 1; d <= 10; ++d) {
    config.mutable_task_graph(0).set_max_capacity(0, d);
    const auto t0 = clock::now();
    const bbs::core::MappingResult r =
        bbs::core::compute_budgets_and_buffers(config);
    const double ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    total_ms += ms;
    if (!r.feasible()) {
      std::printf("%9d | infeasible\n", d);
      continue;
    }
    std::printf("%9d | %25.4f | %8.4f | %7d | %9.2f\n", d,
                r.graphs[0].tasks[0].budget_continuous,
                analytic_budget(40.0, 1.0, 10.0, d),
                static_cast<int>(r.graphs[0].tasks[0].budget), ms);
  }
  std::printf("# total solve time: %.2f ms (paper: \"milliseconds\", "
              "CPLEX)\n",
              total_ms);
  return 0;
}
