// Reproduces Figure 2(b) of the paper: the derivative of the budget
// reduction — how many Mcycles of budget one additional container buys on
// the producer-consumer graph T1.
//
// Expected shape: monotonically decreasing, from ~4.8 Mcycles for the second
// container down to ~0.3 for the tenth (the paper plots 0..5 on the y-axis),
// illustrating that the trade-off is non-linear: early containers are far
// more valuable than late ones.
#include <cstdio>

#include "bbs/core/tradeoff.hpp"
#include "bbs/gen/generators.hpp"

int main() {
  std::printf("# Figure 2(b): derivative of budget reduction (task graph T1)\n");
  std::printf("# capacity | delta budget vs one fewer container [Mcycles]\n");

  bbs::model::Configuration config = bbs::gen::producer_consumer_t1();
  const bbs::core::TradeoffSweep sweep =
      bbs::core::sweep_max_capacity(config, 0, 1, 10);

  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    const auto& prev = sweep.points[i - 1];
    const auto& cur = sweep.points[i];
    if (!prev.feasible || !cur.feasible) {
      std::printf("%9d | n/a\n", static_cast<int>(cur.max_capacity));
      continue;
    }
    // Budgets of wa and wb are equal; plot the per-task reduction like the
    // paper does.
    const double delta =
        prev.budgets_continuous[0] - cur.budgets_continuous[0];
    std::printf("%9d | %10.4f\n", static_cast<int>(cur.max_capacity), delta);
  }
  std::printf("# expected: monotone decreasing ~4.8 -> ~0.3 (paper: ~5 -> ~0.3)\n");
  return 0;
}
