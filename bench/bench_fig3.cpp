// Reproduces Figure 3 of the paper: topology dependence of the optimisation
// of the sum of budgets for given maximum buffer sizes, on the three-stage
// chain T2 (wa -> wb -> wc, each on its own processor).
//
// Both buffer capacities are capped at the same value d = 1..10 and the sum
// of budgets is minimised. Because the budget of the middle task wb interacts
// with BOTH buffers, reducing it is twice as expensive in buffer capacity:
// the optimiser reduces beta(wa) = beta(wc) first, and beta(wb) stays on a
// higher curve — exactly the two curves of the paper's Figure 3, converging
// near the self-loop bound of 4 Mcycles at 10 containers.
#include <chrono>
#include <cstdio>

#include "bbs/core/tradeoff.hpp"
#include "bbs/gen/generators.hpp"

int main() {
  using clock = std::chrono::steady_clock;
  std::printf(
      "# Figure 3: topology dependence (task graph T2 = wa -> wb -> wc)\n");
  std::printf("# rho = 40 Mcycles, chi = 1 Mcycle, mu = 10 Mcycles, both\n");
  std::printf("# buffer capacities capped at d; objective: sum of budgets\n");
  std::printf(
      "# capacity | beta(wa)=beta(wc) [Mcycles] | beta(wb) [Mcycles] | "
      "solve [ms]\n");

  bbs::model::Configuration config = bbs::gen::three_stage_chain_t2();
  const auto t0 = clock::now();
  const bbs::core::TradeoffSweep sweep =
      bbs::core::sweep_max_capacity(config, 0, 1, 10);
  const double total_ms =
      std::chrono::duration<double, std::milli>(clock::now() - t0).count();

  for (const auto& p : sweep.points) {
    if (!p.feasible) {
      std::printf("%9d | infeasible\n", static_cast<int>(p.max_capacity));
      continue;
    }
    std::printf("%9d | %27.4f | %18.4f | %9.2f\n",
                static_cast<int>(p.max_capacity), p.budgets_continuous[0],
                p.budgets_continuous[1], total_ms / 10.0);
  }
  std::printf(
      "# expected: wb curve above wa/wc curve until both reach ~4 at d=10\n");
  return 0;
}
