// Reproduces the paper's run-time claim (Section V: "The run-time is
// milliseconds" / Section VI: polynomial complexity) and extends it with a
// scaling study over generated graph families, using google-benchmark.
//
// The paper solves T1/T2 with CPLEX in milliseconds; this harness times the
// from-scratch interior-point solver on the same instances and on growing
// chains / random DAGs to exhibit the polynomial growth.
#include <benchmark/benchmark.h>

#include "bbs/core/budget_buffer_solver.hpp"
#include "bbs/gen/generators.hpp"

namespace {

void BM_PaperT1(benchmark::State& state) {
  const bbs::model::Configuration config = bbs::gen::producer_consumer_t1();
  for (auto _ : state) {
    const auto r = bbs::core::compute_budgets_and_buffers(config);
    benchmark::DoNotOptimize(r.objective_continuous);
    if (!r.feasible()) state.SkipWithError("solve failed");
  }
}
BENCHMARK(BM_PaperT1)->Unit(benchmark::kMillisecond);

void BM_PaperT2(benchmark::State& state) {
  const bbs::model::Configuration config = bbs::gen::three_stage_chain_t2();
  for (auto _ : state) {
    const auto r = bbs::core::compute_budgets_and_buffers(config);
    benchmark::DoNotOptimize(r.objective_continuous);
    if (!r.feasible()) state.SkipWithError("solve failed");
  }
}
BENCHMARK(BM_PaperT2)->Unit(benchmark::kMillisecond);

void BM_ChainScaling(benchmark::State& state) {
  bbs::gen::GenParams params;
  params.num_processors = 8;
  params.seed = 7;
  const bbs::model::Configuration config =
      bbs::gen::make_chain(static_cast<bbs::linalg::Index>(state.range(0)),
                           params);
  for (auto _ : state) {
    const auto r = bbs::core::compute_budgets_and_buffers(config);
    benchmark::DoNotOptimize(r.objective_continuous);
    if (!r.feasible()) state.SkipWithError("solve failed");
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ChainScaling)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_RandomDagScaling(benchmark::State& state) {
  bbs::gen::GenParams params;
  params.num_processors = 8;
  params.seed = 11;
  const bbs::model::Configuration config = bbs::gen::make_random_dag(
      static_cast<bbs::linalg::Index>(state.range(0)), 0.5, params);
  for (auto _ : state) {
    const auto r = bbs::core::compute_budgets_and_buffers(config);
    benchmark::DoNotOptimize(r.objective_continuous);
    if (!r.feasible()) state.SkipWithError("solve failed");
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RandomDagScaling)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_MultiJobPreset(benchmark::State& state) {
  const bbs::model::Configuration config =
      bbs::gen::car_entertainment_preset();
  for (auto _ : state) {
    const auto r = bbs::core::compute_budgets_and_buffers(config);
    benchmark::DoNotOptimize(r.objective_continuous);
    if (!r.feasible()) state.SkipWithError("solve failed");
  }
}
BENCHMARK(BM_MultiJobPreset)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
