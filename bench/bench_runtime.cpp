// Reproduces the paper's run-time claim (Section V: "The run-time is
// milliseconds" / Section VI: polynomial complexity) and extends it with a
// scaling study over generated graph families, using google-benchmark.
//
// The paper solves T1/T2 with CPLEX in milliseconds; this harness times the
// from-scratch interior-point solver on the same instances and on growing
// chains / random DAGs to exhibit the polynomial growth.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bbs/common/rng.hpp"
#include "bbs/core/budget_buffer_solver.hpp"
#include "bbs/core/program_builder.hpp"
#include "bbs/dataflow/cycle_ratio.hpp"
#include "bbs/dataflow/srdf_graph.hpp"
#include "bbs/gen/generators.hpp"
#include "bbs/solver/kkt_system.hpp"
#include "bbs/solver/nt_scaling.hpp"

namespace {

void BM_PaperT1(benchmark::State& state) {
  const bbs::model::Configuration config = bbs::gen::producer_consumer_t1();
  for (auto _ : state) {
    const auto r = bbs::core::compute_budgets_and_buffers(config);
    benchmark::DoNotOptimize(r.objective_continuous);
    if (!r.feasible()) state.SkipWithError("solve failed");
  }
}
BENCHMARK(BM_PaperT1)->Unit(benchmark::kMillisecond);

void BM_PaperT2(benchmark::State& state) {
  const bbs::model::Configuration config = bbs::gen::three_stage_chain_t2();
  for (auto _ : state) {
    const auto r = bbs::core::compute_budgets_and_buffers(config);
    benchmark::DoNotOptimize(r.objective_continuous);
    if (!r.feasible()) state.SkipWithError("solve failed");
  }
}
BENCHMARK(BM_PaperT2)->Unit(benchmark::kMillisecond);

void BM_ChainScaling(benchmark::State& state) {
  bbs::gen::GenParams params;
  params.num_processors = 8;
  params.seed = 7;
  const bbs::model::Configuration config =
      bbs::gen::make_chain(static_cast<bbs::linalg::Index>(state.range(0)),
                           params);
  for (auto _ : state) {
    const auto r = bbs::core::compute_budgets_and_buffers(config);
    benchmark::DoNotOptimize(r.objective_continuous);
    if (!r.feasible()) state.SkipWithError("solve failed");
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ChainScaling)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_RandomDagScaling(benchmark::State& state) {
  bbs::gen::GenParams params;
  params.num_processors = 8;
  params.seed = 11;
  const bbs::model::Configuration config = bbs::gen::make_random_dag(
      static_cast<bbs::linalg::Index>(state.range(0)), 0.5, params);
  for (auto _ : state) {
    const auto r = bbs::core::compute_budgets_and_buffers(config);
    benchmark::DoNotOptimize(r.objective_continuous);
    if (!r.feasible()) state.SkipWithError("solve failed");
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RandomDagScaling)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_MultiJobPreset(benchmark::State& state) {
  const bbs::model::Configuration config =
      bbs::gen::car_entertainment_preset();
  for (auto _ : state) {
    const auto r = bbs::core::compute_budgets_and_buffers(config);
    benchmark::DoNotOptimize(r.objective_continuous);
    if (!r.feasible()) state.SkipWithError("solve failed");
  }
}
BENCHMARK(BM_MultiJobPreset)->Unit(benchmark::kMillisecond);

// --- Hot-path micro-benchmarks: KKT factorisation and cycle ratio ----------

/// Re-factorisation cost per IPM iteration: the scaling changes values every
/// call (alternating between two interior points) while the sparsity pattern
/// stays fixed, exactly as inside IpmSolver::solve.
void BM_KktFactorise(benchmark::State& state) {
  bbs::gen::GenParams params;
  params.num_processors = 8;
  params.seed = 13;
  const bbs::model::Configuration config = bbs::gen::make_random_dag(
      static_cast<bbs::linalg::Index>(state.range(0)), 0.5, params);
  const bbs::core::BuiltProgram prog = bbs::core::build_algorithm1(config);
  const bbs::solver::ConeSpec& cone = prog.problem.cone();

  bbs::Rng rng(29);
  const bbs::linalg::Vector s1 = bbs::solver::random_interior_point(cone, rng);
  const bbs::linalg::Vector z1 = bbs::solver::random_interior_point(cone, rng);
  const bbs::linalg::Vector s2 = bbs::solver::random_interior_point(cone, rng);
  const bbs::linalg::Vector z2 = bbs::solver::random_interior_point(cone, rng);

  bbs::solver::NtScaling scaling(cone);
  bbs::solver::KktSystem kkt(prog.problem.g());
  bool flip = false;
  for (auto _ : state) {
    scaling.update(flip ? s1 : s2, flip ? z1 : z2);
    flip = !flip;
    kkt.factorise(scaling);
    benchmark::DoNotOptimize(kkt.factor_nnz());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KktFactorise)
    ->RangeMultiplier(2)
    ->Range(16, 64)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

/// Strongly connected ring-with-chords SRDF instance for the MCR kernels.
bbs::dataflow::SrdfGraph ring_with_chords(bbs::linalg::Index n,
                                          std::uint64_t seed) {
  using bbs::linalg::Index;
  bbs::Rng rng(seed);
  bbs::dataflow::SrdfGraph g;
  for (Index v = 0; v < n; ++v) {
    g.add_actor("v" + std::to_string(v), rng.next_real(0.1, 5.0));
  }
  for (Index v = 0; v < n; ++v) {
    g.add_queue(v, (v + 1) % n, static_cast<Index>(rng.next_int(1, 3)));
  }
  for (Index e = 0; e < 2 * n; ++e) {
    g.add_queue(static_cast<Index>(rng.next_int(0, n - 1)),
                static_cast<Index>(rng.next_int(0, n - 1)),
                static_cast<Index>(rng.next_int(1, 4)));
  }
  return g;
}

void BM_MaxCycleRatioHoward(benchmark::State& state) {
  const bbs::dataflow::SrdfGraph g =
      ring_with_chords(static_cast<bbs::linalg::Index>(state.range(0)), 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bbs::dataflow::max_cycle_ratio_howard(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxCycleRatioHoward)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

void BM_MaxCycleRatioBisect(benchmark::State& state) {
  const bbs::dataflow::SrdfGraph g =
      ring_with_chords(static_cast<bbs::linalg::Index>(state.range(0)), 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bbs::dataflow::max_cycle_ratio_bisect(g, 1e-9));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxCycleRatioBisect)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
