// Reproduces the paper's run-time claim (Section V: "The run-time is
// milliseconds" / Section VI: polynomial complexity) and extends it with a
// scaling study over generated graph families, using google-benchmark.
//
// The paper solves T1/T2 with CPLEX in milliseconds; this harness times the
// from-scratch interior-point solver on the same instances and on growing
// chains / random DAGs to exhibit the polynomial growth.
#include <benchmark/benchmark.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>

#include "bbs/api/engine.hpp"
#include "bbs/common/rng.hpp"
#include "bbs/core/budget_buffer_solver.hpp"
#include "bbs/core/program_builder.hpp"
#include "bbs/core/tradeoff.hpp"
#include "bbs/core/two_phase.hpp"
#include "bbs/dataflow/cycle_ratio.hpp"
#include "bbs/dataflow/srdf_graph.hpp"
#include "bbs/gen/generators.hpp"
#include "bbs/io/api_io.hpp"
#include "bbs/service/dispatcher.hpp"
#include "bbs/service/endpoint.hpp"
#include "bbs/service/socket_server.hpp"
#include "bbs/solver/kkt_system.hpp"
#include "bbs/solver/nt_scaling.hpp"
#include "bbs/telemetry/structure_cache.hpp"
#include "bbs/telemetry/trace.hpp"

namespace {

void BM_PaperT1(benchmark::State& state) {
  const bbs::model::Configuration config = bbs::gen::producer_consumer_t1();
  for (auto _ : state) {
    const auto r = bbs::core::compute_budgets_and_buffers(config);
    benchmark::DoNotOptimize(r.objective_continuous);
    if (!r.feasible()) state.SkipWithError("solve failed");
  }
}
BENCHMARK(BM_PaperT1)->Unit(benchmark::kMillisecond);

void BM_PaperT2(benchmark::State& state) {
  const bbs::model::Configuration config = bbs::gen::three_stage_chain_t2();
  for (auto _ : state) {
    const auto r = bbs::core::compute_budgets_and_buffers(config);
    benchmark::DoNotOptimize(r.objective_continuous);
    if (!r.feasible()) state.SkipWithError("solve failed");
  }
}
BENCHMARK(BM_PaperT2)->Unit(benchmark::kMillisecond);

void BM_ChainScaling(benchmark::State& state) {
  bbs::gen::GenParams params;
  params.num_processors = 8;
  params.seed = 7;
  const bbs::model::Configuration config =
      bbs::gen::make_chain(static_cast<bbs::linalg::Index>(state.range(0)),
                           params);
  for (auto _ : state) {
    const auto r = bbs::core::compute_budgets_and_buffers(config);
    benchmark::DoNotOptimize(r.objective_continuous);
    if (!r.feasible()) state.SkipWithError("solve failed");
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ChainScaling)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_RandomDagScaling(benchmark::State& state) {
  bbs::gen::GenParams params;
  params.num_processors = 8;
  params.seed = 11;
  const bbs::model::Configuration config = bbs::gen::make_random_dag(
      static_cast<bbs::linalg::Index>(state.range(0)), 0.5, params);
  for (auto _ : state) {
    const auto r = bbs::core::compute_budgets_and_buffers(config);
    benchmark::DoNotOptimize(r.objective_continuous);
    if (!r.feasible()) state.SkipWithError("solve failed");
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RandomDagScaling)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_MultiJobPreset(benchmark::State& state) {
  const bbs::model::Configuration config =
      bbs::gen::car_entertainment_preset();
  for (auto _ : state) {
    const auto r = bbs::core::compute_budgets_and_buffers(config);
    benchmark::DoNotOptimize(r.objective_continuous);
    if (!r.feasible()) state.SkipWithError("solve failed");
  }
}
BENCHMARK(BM_MultiJobPreset)->Unit(benchmark::kMillisecond);

// --- Cross-solve reuse: sweep-level benchmarks -----------------------------
//
// The drivers the paper evaluates solve the same program structure many
// times. BM_TradeoffSweep / BM_TwoPhase run them through the warm-started
// SolverSession (program built once, in-place bound updates, one symbolic
// KKT factorisation, warm starts); the *Rebuild twins are the pre-session
// baseline — a fresh program build and a cold-started solver per point —
// kept so the reuse speedup stays measurable.

/// Capacity trade-off sweep, caps 1..16 over the first graph of the
/// multi-job car-entertainment preset: two task graphs contending for the
/// platform (the paper-intro workload), swept past the saturation point of
/// the budget/buffer curve — the explorer's realistic range, since where
/// the curve flattens is exactly what a sweep is run to find. The tiny
/// T1/T2 sweeps are dominated by the per-point MCR verification both
/// variants share and understate the reuse effect.
void BM_TradeoffSweep(benchmark::State& state) {
  bbs::model::Configuration config = bbs::gen::car_entertainment_preset();
  for (auto _ : state) {
    const bbs::core::TradeoffSweep sweep =
        bbs::core::sweep_max_capacity(config, 0, 1, 16);
    benchmark::DoNotOptimize(sweep.points.back().total_budget_continuous);
    if (!sweep.points.back().feasible) state.SkipWithError("sweep failed");
  }
}
BENCHMARK(BM_TradeoffSweep)->Unit(benchmark::kMillisecond);

/// The same sweep with per-point rebuild: what sweep_max_capacity did
/// before SolverSession existed.
void BM_TradeoffSweepRebuild(benchmark::State& state) {
  bbs::model::Configuration config = bbs::gen::car_entertainment_preset();
  bbs::model::TaskGraph& tg = config.mutable_task_graph(0);
  for (auto _ : state) {
    double last = 0.0;
    for (bbs::linalg::Index cap = 1; cap <= 16; ++cap) {
      for (bbs::linalg::Index b = 0; b < tg.num_buffers(); ++b) {
        tg.set_max_capacity(b, cap);
      }
      const auto r = bbs::core::compute_budgets_and_buffers(config);
      if (!r.feasible()) state.SkipWithError("solve failed");
      last = r.objective_continuous;
    }
    benchmark::DoNotOptimize(last);
  }
}
BENCHMARK(BM_TradeoffSweepRebuild)->Unit(benchmark::kMillisecond);

/// Two-phase (budget-first) throughput binary search on T2 through one
/// session: each probe rewrites the period entries and the committed
/// phase-1 budgets in place.
void BM_TwoPhase(benchmark::State& state) {
  const bbs::model::Configuration config = bbs::gen::three_stage_chain_t2();
  for (auto _ : state) {
    const auto r = bbs::core::minimal_feasible_period_budget_first(
        config, 0, 40.0, 1e-4);
    if (!r.has_value()) state.SkipWithError("search failed");
    benchmark::DoNotOptimize(r->period);
  }
}
BENCHMARK(BM_TwoPhase)->Unit(benchmark::kMillisecond);

/// The same binary search with a fresh budget-first solve per probe.
/// Probes skip verification exactly like the session driver does, so the
/// measured gap isolates the cross-solve reuse (program build, symbolic
/// factorisation, warm starts), not the probe-verify elision.
void BM_TwoPhaseRebuild(benchmark::State& state) {
  const bbs::model::Configuration base = bbs::gen::three_stage_chain_t2();
  bbs::core::MappingOptions probe_options;
  probe_options.verify = false;
  for (auto _ : state) {
    bbs::model::Configuration config = base;
    const auto solve_at = [&](double period) {
      config.mutable_task_graph(0).set_required_period(period);
      return bbs::core::solve_budget_first(config, probe_options);
    };
    if (!solve_at(40.0).feasible()) state.SkipWithError("hi infeasible");
    double lo = 0.0;
    double hi = 40.0;
    while (hi - lo > 1e-4 * hi) {
      const double mid = 0.5 * (lo + hi);
      if (solve_at(mid).feasible()) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    benchmark::DoNotOptimize(hi);
  }
}
BENCHMARK(BM_TwoPhaseRebuild)->Unit(benchmark::kMillisecond);

// --- Service API: batched, session-pooled execution ------------------------

/// A mixed batch against the car-entertainment preset: solves at three
/// different periods of the first job plus a latency analysis — all one
/// problem structure, so a pooling engine serves the whole batch from one
/// session (program built once, one symbolic factorisation, warm starts).
std::vector<bbs::api::Request> mixed_engine_batch() {
  std::vector<bbs::api::Request> batch;
  for (const double scale : {1.0, 1.25, 0.9}) {
    bbs::model::Configuration config = bbs::gen::car_entertainment_preset();
    bbs::model::TaskGraph& tg = config.mutable_task_graph(0);
    tg.set_required_period(tg.required_period() * scale);
    bbs::api::Request request;
    request.payload = bbs::api::SolveRequest{std::move(config)};
    batch.push_back(std::move(request));
  }
  bbs::api::Request latency;
  latency.payload =
      bbs::api::LatencyRequest{bbs::gen::car_entertainment_preset()};
  batch.push_back(std::move(latency));
  return batch;
}

void check_engine_batch(benchmark::State& state,
                        const std::vector<bbs::api::Response>& responses) {
  for (const bbs::api::Response& response : responses) {
    if (!response.ok()) state.SkipWithError("engine request failed");
  }
  benchmark::DoNotOptimize(responses.back().diagnostics.ipm_iterations);
}

/// N mixed requests through one pooling engine: everything after the first
/// request hits the warm session.
void BM_EngineBatch(benchmark::State& state) {
  const std::vector<bbs::api::Request> batch = mixed_engine_batch();
  for (auto _ : state) {
    bbs::api::Engine engine;
    check_engine_batch(state, engine.run_batch(batch));
  }
}
BENCHMARK(BM_EngineBatch)->Unit(benchmark::kMillisecond);

/// The same batch with pooling disabled: N fresh processes' worth of cold
/// solves (program rebuild, symbolic factorisation and cold start per
/// request) — what dispatching each request to its own solve_cli process
/// would cost in solver work.
void BM_EngineBatchCold(benchmark::State& state) {
  const std::vector<bbs::api::Request> batch = mixed_engine_batch();
  bbs::api::EngineOptions options;
  options.max_pool_sessions = 0;
  for (auto _ : state) {
    bbs::api::Engine engine(options);
    check_engine_batch(state, engine.run_batch(batch));
  }
}
BENCHMARK(BM_EngineBatchCold)->Unit(benchmark::kMillisecond);

/// Daemon (re)start to first answer on a known structure. Arg 0: a cold
/// start — fresh engine, no cache, the first request pays the program build,
/// symbolic KKT factorisation and cold IPM start. Arg 1: a warm restart —
/// the engine pre-warms its pool from a persistent structure cache (written
/// by an earlier run, loaded once outside the timed region, exactly like
/// bbs_serve --cache-dir at startup), so the first request is a pool hit
/// with zero symbolic factorisations. The gap is what the cache buys every
/// daemon restart, per structure.
void BM_DaemonColdVsWarmStart(benchmark::State& state) {
  const bool warm = state.range(0) == 1;
  char pattern[] = "/tmp/bbs_bench_cache_XXXXXX";
  const char* dir = ::mkdtemp(pattern);
  if (dir == nullptr) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  bbs::api::Request request;
  request.payload = bbs::api::SolveRequest{bbs::gen::car_entertainment_preset()};
  {
    // Seed the on-disk cache the way a previous daemon run would have.
    bbs::telemetry::StructureCache writer(dir);
    bbs::api::EngineOptions options;
    options.structure_cache = &writer;
    bbs::api::Engine engine(options);
    if (!engine.run(request).ok()) state.SkipWithError("seed solve failed");
    writer.flush();
  }
  bbs::telemetry::StructureCache cache(dir);
  if (cache.load() == 0) state.SkipWithError("cache seed was not written");
  for (auto _ : state) {
    bbs::api::EngineOptions options;
    if (warm) options.structure_cache = &cache;
    bbs::api::Engine engine(options);
    if (warm) {
      for (const bbs::telemetry::CacheEntry& entry : cache.entries()) {
        engine.prewarm_entry(entry);
      }
    }
    const bbs::api::Response response = engine.run(request);
    if (!response.ok()) state.SkipWithError("solve failed");
    benchmark::DoNotOptimize(response.diagnostics.symbolic_factorisations);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}
BENCHMARK(BM_DaemonColdVsWarmStart)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// --- Service daemon: sharded dispatcher throughput --------------------------

/// The daemon's steady-state workload: a mixed stream over four problem
/// structures (the car preset at several periods plus its latency analysis,
/// a capped-buffer variant, the paper's T2 chain and T1), so structure
/// affinity spreads the stream across up to four worker shards.
std::vector<bbs::api::Request> mixed_service_stream() {
  std::vector<bbs::api::Request> stream = mixed_engine_batch();
  for (const bbs::linalg::Index cap : {6, 8}) {
    bbs::model::Configuration config = bbs::gen::car_entertainment_preset();
    bbs::model::TaskGraph& tg = config.mutable_task_graph(0);
    for (bbs::linalg::Index b = 0; b < tg.num_buffers(); ++b) {
      tg.set_max_capacity(b, cap);
    }
    bbs::api::Request request;
    request.payload = bbs::api::SolveRequest{std::move(config)};
    stream.push_back(std::move(request));
  }
  for (const double scale : {1.0, 1.2}) {
    bbs::model::Configuration config = bbs::gen::three_stage_chain_t2();
    bbs::model::TaskGraph& tg = config.mutable_task_graph(0);
    tg.set_required_period(tg.required_period() * scale);
    bbs::api::Request request;
    request.payload = bbs::api::SolveRequest{std::move(config)};
    stream.push_back(std::move(request));
  }
  {
    bbs::api::Request request;
    request.payload = bbs::api::SolveRequest{bbs::gen::producer_consumer_t1()};
    stream.push_back(std::move(request));
  }
  return stream;
}

/// Requests/s through the sharded daemon dispatcher at N workers. The
/// dispatcher (and its warm per-worker session pools) lives across
/// iterations, like the long-lived daemon it models; the measured quantity
/// is steady-state service throughput including routing, queueing and
/// reassembly overhead.
void BM_ServiceThroughput(benchmark::State& state) {
  bbs::service::DispatcherOptions options;
  options.workers = static_cast<std::size_t>(state.range(0));
  options.queue_capacity = 64;
  bbs::service::Dispatcher dispatcher(options);
  const std::vector<bbs::api::Request> stream = mixed_service_stream();
  std::atomic<bool> failed{false};
  for (auto _ : state) {
    std::atomic<int> remaining{static_cast<int>(stream.size())};
    std::promise<void> all_done;
    for (const bbs::api::Request& request : stream) {
      dispatcher.submit(request, [&](bbs::api::Response response) {
        if (!response.ok()) failed.store(true);
        if (remaining.fetch_sub(1) == 1) all_done.set_value();
      });
    }
    all_done.get_future().wait();
  }
  dispatcher.stop();
  if (failed.load()) state.SkipWithError("service request failed");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
// Real time, not main-thread CPU time: the solves run on the worker
// threads, so items_per_second must be a wall-clock rate.
BENCHMARK(BM_ServiceThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// BM_ServiceThroughput with every request traced (spans only, no per-IPM
/// introspection), exercising the full per-request tracing cost: one Trace
/// allocation, an event per pipeline hop, close, and the ring push. Compare
/// items/s against BM_ServiceThroughput at the same worker count — the
/// acceptance bound for span-level tracing is a <5% throughput drop.
void BM_ServiceThroughputTraced(benchmark::State& state) {
  bbs::service::DispatcherOptions options;
  options.workers = static_cast<std::size_t>(state.range(0));
  options.queue_capacity = 64;
  bbs::service::Dispatcher dispatcher(options);
  bbs::telemetry::TraceRing ring(256);
  const std::vector<bbs::api::Request> stream = mixed_service_stream();
  std::atomic<bool> failed{false};
  for (auto _ : state) {
    std::atomic<int> remaining{static_cast<int>(stream.size())};
    std::promise<void> all_done;
    for (const bbs::api::Request& request : stream) {
      // The same hops the JSONL session stamps for a traced request.
      auto trace = std::make_shared<bbs::telemetry::Trace>(
          bbs::telemetry::Trace::next_id(), request.kind());
      trace->add_event("accept");
      trace->add_event("quota", "ok");
      dispatcher.submit(
          request,
          [&, trace](bbs::api::Response response) {
            if (!response.ok()) failed.store(true);
            trace->close(response.ok() ? "ok" : "error");
            ring.push(trace);
            if (remaining.fetch_sub(1) == 1) all_done.set_value();
          },
          nullptr, trace);
    }
    all_done.get_future().wait();
  }
  dispatcher.stop();
  if (failed.load()) state.SkipWithError("service request failed");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ServiceThroughputTraced)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// BM_ServiceThroughput with a slow socket client attached to the same
/// dispatcher: before measurement starts, the client floods requests at a
/// connection with a tiny outbox and send buffer and never reads a byte, so
/// the daemon parks its backlog, hits the write deadline and disconnects it.
/// Steady-state items/s must match the plain variant — the regression this
/// guards (a slow reader parking a dispatcher worker in a blocking send)
/// shows up as a collapsed rate here while BM_ServiceThroughput stays flat.
void BM_ServiceThroughputSlowReader(benchmark::State& state) {
  bbs::service::DispatcherOptions options;
  options.workers = static_cast<std::size_t>(state.range(0));
  options.queue_capacity = 64;
  bbs::service::Dispatcher dispatcher(options);

  bbs::service::SocketServerOptions server_options;
  server_options.outbox_capacity = 4;
  server_options.write_deadline = std::chrono::milliseconds(100);
  server_options.sndbuf_bytes = 1;  // kernel clamps to its floor
  const std::string path = "/tmp/bbs_bench_slow_" +
                           std::to_string(::getpid()) + ".sock";
  ::unlink(path.c_str());
  bbs::service::SocketServer server(
      dispatcher, bbs::service::parse_endpoint("unix:" + path),
      server_options);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int slow_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (slow_fd < 0 ||
      ::connect(slow_fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    state.SkipWithError("slow-client connect failed");
    return;
  }
  std::string flood;
  {
    bbs::api::Request request;
    request.id = "slow";
    request.payload = bbs::api::SolveRequest{bbs::gen::producer_consumer_t1()};
    const std::string line =
        bbs::io::write_json_compact(bbs::io::request_to_json_value(request)) +
        "\n";
    for (int i = 0; i < 64; ++i) flood += line;
  }
  if (::send(slow_fd, flood.data(), flood.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(flood.size())) {
    state.SkipWithError("slow-client flood failed");
    return;
  }
  // Wait for the disconnect policy to fire before the timed region so every
  // iteration measures the steady state after a slow client came and went.
  for (int i = 0; i < 200 && server.slow_client_disconnects() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (server.slow_client_disconnects() == 0) {
    state.SkipWithError("slow client was never disconnected");
    return;
  }

  const std::vector<bbs::api::Request> stream = mixed_service_stream();
  std::atomic<bool> failed{false};
  for (auto _ : state) {
    std::atomic<int> remaining{static_cast<int>(stream.size())};
    std::promise<void> all_done;
    for (const bbs::api::Request& request : stream) {
      dispatcher.submit(request, [&](bbs::api::Response response) {
        if (!response.ok()) failed.store(true);
        if (remaining.fetch_sub(1) == 1) all_done.set_value();
      });
    }
    all_done.get_future().wait();
  }
  ::close(slow_fd);
  server.stop();
  dispatcher.stop();
  if (failed.load()) state.SkipWithError("service request failed");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ServiceThroughputSlowReader)
    ->Arg(2)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- Hot-path micro-benchmarks: KKT factorisation and cycle ratio ----------

/// Re-factorisation cost per IPM iteration: the scaling changes values every
/// call (alternating between two interior points) while the sparsity pattern
/// stays fixed, exactly as inside IpmSolver::solve.
void BM_KktFactorise(benchmark::State& state) {
  bbs::gen::GenParams params;
  params.num_processors = 8;
  params.seed = 13;
  const bbs::model::Configuration config = bbs::gen::make_random_dag(
      static_cast<bbs::linalg::Index>(state.range(0)), 0.5, params);
  const bbs::core::BuiltProgram prog = bbs::core::build_algorithm1(config);
  const bbs::solver::ConeSpec& cone = prog.problem.cone();

  bbs::Rng rng(29);
  const bbs::linalg::Vector s1 = bbs::solver::random_interior_point(cone, rng);
  const bbs::linalg::Vector z1 = bbs::solver::random_interior_point(cone, rng);
  const bbs::linalg::Vector s2 = bbs::solver::random_interior_point(cone, rng);
  const bbs::linalg::Vector z2 = bbs::solver::random_interior_point(cone, rng);

  bbs::solver::NtScaling scaling(cone);
  bbs::solver::KktSystem kkt(prog.problem.g());
  bool flip = false;
  for (auto _ : state) {
    scaling.update(flip ? s1 : s2, flip ? z1 : z2);
    flip = !flip;
    kkt.factorise(scaling);
    benchmark::DoNotOptimize(kkt.factor_nnz());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KktFactorise)
    ->RangeMultiplier(2)
    ->Range(16, 64)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

/// Strongly connected ring-with-chords SRDF instance for the MCR kernels.
bbs::dataflow::SrdfGraph ring_with_chords(bbs::linalg::Index n,
                                          std::uint64_t seed) {
  using bbs::linalg::Index;
  bbs::Rng rng(seed);
  bbs::dataflow::SrdfGraph g;
  for (Index v = 0; v < n; ++v) {
    g.add_actor("v" + std::to_string(v), rng.next_real(0.1, 5.0));
  }
  for (Index v = 0; v < n; ++v) {
    g.add_queue(v, (v + 1) % n, static_cast<Index>(rng.next_int(1, 3)));
  }
  for (Index e = 0; e < 2 * n; ++e) {
    g.add_queue(static_cast<Index>(rng.next_int(0, n - 1)),
                static_cast<Index>(rng.next_int(0, n - 1)),
                static_cast<Index>(rng.next_int(1, 4)));
  }
  return g;
}

void BM_MaxCycleRatioHoward(benchmark::State& state) {
  const bbs::dataflow::SrdfGraph g =
      ring_with_chords(static_cast<bbs::linalg::Index>(state.range(0)), 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bbs::dataflow::max_cycle_ratio_howard(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxCycleRatioHoward)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

void BM_MaxCycleRatioBisect(benchmark::State& state) {
  const bbs::dataflow::SrdfGraph g =
      ring_with_chords(static_cast<bbs::linalg::Index>(state.range(0)), 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bbs::dataflow::max_cycle_ratio_bisect(g, 1e-9));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxCycleRatioBisect)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
