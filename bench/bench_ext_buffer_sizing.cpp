// Extension bench: exact critical-cycle-guided buffer sizing for fixed
// budgets vs. the LP-based phase-2 of the two-phase flow.
//
// For each instance the budgets are fixed at the budget-first values and
// both sizers run; reported are total containers and run time. The
// incremental search works on integers directly, so it never pays the LP's
// per-buffer ceil-rounding.
#include <chrono>
#include <cstdio>

#include "bbs/core/buffer_sizing.hpp"
#include "bbs/core/two_phase.hpp"
#include "bbs/gen/generators.hpp"

int main() {
  std::printf("# Extension: exact buffer sizing for fixed budgets\n");
  std::printf("# instance | LP total caps (ms) | incremental total caps (ms) "
              "| saved\n");
  for (const int n : {4, 8, 16, 32}) {
    bbs::gen::GenParams params;
    params.num_processors = 8;
    params.seed = static_cast<std::uint64_t>(n) * 3 + 1;
    const bbs::model::Configuration config = bbs::gen::make_chain(n, params);

    const auto t0 = std::chrono::steady_clock::now();
    const auto staged = bbs::core::solve_budget_first(config);
    const double lp_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    if (!staged.feasible()) {
      std::printf("chain %2d | infeasible baseline\n", n);
      continue;
    }
    bbs::linalg::Vector budgets;
    int lp_total = 0;
    for (const auto& t : staged.graphs[0].tasks) {
      budgets.push_back(static_cast<double>(t.budget));
    }
    for (const auto& b : staged.graphs[0].buffers) lp_total += b.capacity;

    const auto t1 = std::chrono::steady_clock::now();
    const auto inc = bbs::core::size_buffers_for_budgets(config, 0, budgets);
    const double inc_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t1)
                              .count();
    if (!inc) {
      std::printf("chain %2d | incremental sizing failed\n", n);
      continue;
    }
    int inc_total = 0;
    for (const auto c : inc->capacities) inc_total += static_cast<int>(c);
    std::printf("chain %2d | %13d (%6.1f) | %20d (%6.1f) | %3d containers\n",
                n, lp_total, lp_ms, inc_total, inc_ms, lp_total - inc_total);
  }
  return 0;
}
