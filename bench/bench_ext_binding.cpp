// Extension bench (paper Section VI future work): task-to-processor binding
// computed together with budgets and buffer sizes.
//
// Compares the greedy local search against the exhaustive reference on
// small instances (quality) and reports the cost of the binder on larger
// ones (number of SOCP evaluations, wall-clock).
#include <chrono>
#include <cstdio>

#include "bbs/core/binding.hpp"
#include "bbs/gen/generators.hpp"

namespace {

double run(const bbs::model::Configuration& config,
           bbs::core::BindingStrategy strategy, double& ms, int& evals) {
  bbs::core::BindingOptions opts;
  opts.strategy = strategy;
  opts.max_assignments = 1u << 20;
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = bbs::core::bind_and_solve(config, opts);
  ms = std::chrono::duration<double, std::milli>(
           std::chrono::steady_clock::now() - t0)
           .count();
  if (!r) {
    evals = 0;
    return -1.0;
  }
  evals = r->evaluated;
  return r->mapping.objective_continuous;
}

}  // namespace

int main() {
  std::printf("# Extension: joint binding + budget/buffer computation\n");
  std::printf(
      "# instance | exhaustive obj (evals, ms) | greedy obj (evals, ms) | "
      "gap\n");
  for (const int n : {2, 3, 4, 5}) {
    bbs::gen::GenParams params;
    params.num_processors = 3;
    params.seed = static_cast<std::uint64_t>(n) * 7;
    const bbs::model::Configuration config = bbs::gen::make_chain(n, params);
    double ms_ex = 0.0;
    double ms_gr = 0.0;
    int ev_ex = 0;
    int ev_gr = 0;
    const double obj_ex =
        run(config, bbs::core::BindingStrategy::kExhaustive, ms_ex, ev_ex);
    const double obj_gr = run(
        config, bbs::core::BindingStrategy::kGreedyLocalSearch, ms_gr, ev_gr);
    std::printf("chain %2d  | %10.4f (%4d, %7.1f) | %10.4f (%4d, %7.1f) | "
                "%+.2f%%\n",
                n, obj_ex, ev_ex, ms_ex, obj_gr, ev_gr, ms_gr,
                obj_ex > 0 ? 100.0 * (obj_gr - obj_ex) / obj_ex : 0.0);
  }

  std::printf("\n# greedy local search on larger instances\n");
  std::printf("# instance | obj | SOCP evaluations | ms\n");
  for (const int n : {8, 12, 16}) {
    bbs::gen::GenParams params;
    params.num_processors = 4;
    params.seed = static_cast<std::uint64_t>(n);
    const bbs::model::Configuration config =
        bbs::gen::make_random_dag(n, 0.5, params);
    double ms = 0.0;
    int evals = 0;
    const double obj =
        run(config, bbs::core::BindingStrategy::kGreedyLocalSearch, ms, evals);
    std::printf("dag %3d   | %10.4f | %16d | %8.1f\n", n, obj, evals, ms);
  }
  return 0;
}
