// Ablation D1/D4 (DESIGN.md): cost of the two approximations of Algorithm 1 —
// the hyperbolic relaxation lambda*beta' >= 1 and the non-integral
// relaxation with conservative rounding — measured against the exact integer
// optimum from exhaustive search (Section IV: "these non-integral
// approximations come at the cost of potential sub-optimality").
//
// Reported per instance: continuous SOCP objective (lower bound), rounded
// objective (what the flow deploys), exact integer optimum, and the gaps.
#include <cstdio>

#include "bbs/core/budget_buffer_solver.hpp"
#include "bbs/core/refinement.hpp"
#include "bbs/core/exact_reference.hpp"
#include "bbs/gen/generators.hpp"

int main() {
  std::printf("# Ablation D1/D4: relaxation + rounding gap vs exact integer "
              "optimum\n");
  std::printf("# instance | cap | continuous | rounded | refined | exact | "
              "refined gap | relaxation gap\n");

  for (int cap = 2; cap <= 8; cap += 2) {
    bbs::model::Configuration config = bbs::gen::producer_consumer_t1();
    config.mutable_task_graph(0).set_max_capacity(0, cap);
    auto socp = bbs::core::compute_budgets_and_buffers(config);
    bbs::core::ExactSearchLimits limits;
    limits.max_capacity = static_cast<bbs::linalg::Index>(cap);
    const auto exact = bbs::core::exact_reference(config, limits);
    if (!socp.feasible() || !exact) {
      std::printf("T1       | %3d | (infeasible)\n", cap);
      continue;
    }
    const double rounded = socp.objective_rounded;
    bbs::core::refine_rounded_mapping(config, socp);
    std::printf(
        "T1       | %3d | %10.4f | %7.4f | %7.4f | %5.4f | %11.4f | %.4f\n",
        cap, socp.objective_continuous, rounded, socp.objective_rounded,
        exact->cost, socp.objective_rounded - exact->cost,
        exact->cost - socp.objective_continuous);
  }

  // T2 with coarser granularity: rounding costs up to one granule per task.
  for (const int g : {1, 2, 4}) {
    bbs::model::Configuration config(g);
    const auto p1 = config.add_processor("p1", 40.0);
    const auto p2 = config.add_processor("p2", 40.0);
    const auto p3 = config.add_processor("p3", 40.0);
    const auto mem = config.add_memory("m", -1.0);
    bbs::model::TaskGraph tg("T2", 10.0);
    const auto wa = tg.add_task("wa", p1, 1.0);
    const auto wb = tg.add_task("wb", p2, 1.0);
    const auto wc = tg.add_task("wc", p3, 1.0);
    const auto b0 = tg.add_buffer("bab", wa, wb, mem, 1, 0, 1e-3);
    const auto b1 = tg.add_buffer("bbc", wb, wc, mem, 1, 0, 1e-3);
    tg.set_max_capacity(b0, 4);
    tg.set_max_capacity(b1, 4);
    config.add_task_graph(std::move(tg));

    auto socp = bbs::core::compute_budgets_and_buffers(config);
    bbs::core::ExactSearchLimits limits;
    limits.max_capacity = 4;
    limits.max_combinations = 2000000;
    const auto exact = bbs::core::exact_reference(config, limits);
    if (!socp.feasible() || !exact) {
      std::printf("T2 (g=%d) |   4 | (infeasible)\n", g);
      continue;
    }
    const double rounded = socp.objective_rounded;
    bbs::core::refine_rounded_mapping(config, socp);
    std::printf(
        "T2 (g=%d) |   4 | %10.4f | %7.4f | %7.4f | %5.4f | %11.4f | %.4f\n",
        g, socp.objective_continuous, rounded, socp.objective_rounded,
        exact->cost, socp.objective_rounded - exact->cost,
        exact->cost - socp.objective_continuous);
  }
  std::printf("# expected: refined gap ~0 (the greedy descent closes the\n"
              "# rounding slack); relaxation gap small and nonnegative\n");
  return 0;
}
