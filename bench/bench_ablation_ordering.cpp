// Ablation D2 (DESIGN.md): effect of the fill-reducing ordering on the
// sparse LDL^T factorisation inside the interior-point solver.
//
// For growing chains and random DAGs, the harness reports the factor fill
// (nnz of L) of the first normal-equation matrix and the end-to-end solve
// time per ordering. Minimum degree is the library default.
#include <chrono>
#include <cstdio>

#include "bbs/core/budget_buffer_solver.hpp"
#include "bbs/gen/generators.hpp"
#include "bbs/linalg/ordering.hpp"
#include "bbs/solver/kkt_system.hpp"
#include "bbs/solver/nt_scaling.hpp"

namespace {

using bbs::linalg::OrderingMethod;

double solve_ms(const bbs::model::Configuration& config,
                OrderingMethod ordering) {
  bbs::core::MappingOptions opts;
  opts.ipm.ordering = ordering;
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = bbs::core::compute_budgets_and_buffers(config, opts);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  return r.feasible() ? ms : -1.0;
}

bbs::linalg::Index factor_fill(const bbs::model::Configuration& config,
                               OrderingMethod ordering) {
  const bbs::core::BuiltProgram prog = bbs::core::build_algorithm1(config);
  bbs::solver::NtScaling scaling(prog.problem.cone());
  bbs::linalg::Vector e(static_cast<std::size_t>(prog.problem.cone().dim()));
  prog.problem.cone().identity(e);
  scaling.update(e, e);
  bbs::solver::KktSystem::Options kopts;
  kopts.ordering = ordering;
  bbs::solver::KktSystem kkt(prog.problem.g(), kopts);
  kkt.factorise(scaling);
  return kkt.factor_nnz();
}

}  // namespace

int main() {
  std::printf("# Ablation D2: fill-reducing ordering in the KKT solve\n");
  std::printf("# instance | ordering | factor nnz | solve [ms]\n");
  for (const int n : {16, 32, 64}) {
    for (const bool dag : {false, true}) {
      bbs::gen::GenParams params;
      params.num_processors = 8;
      params.seed = 5;
      const bbs::model::Configuration config =
          dag ? bbs::gen::make_random_dag(n, 0.5, params)
              : bbs::gen::make_chain(n, params);
      for (const OrderingMethod m :
           {OrderingMethod::kNatural, OrderingMethod::kReverseCuthillMcKee,
            OrderingMethod::kMinimumDegree}) {
        std::printf("%-6s%-3d | %-10s | %10d | %8.2f\n",
                    dag ? "dag" : "chain", n, bbs::linalg::ordering_name(m),
                    static_cast<int>(factor_fill(config, m)),
                    solve_ms(config, m));
      }
    }
  }
  return 0;
}
