// Ablation (weights): the paper's claim that "different trade-offs between
// budget and buffer sizes can be made by changing the coefficients of the
// optimised cost function" (Sections I, IV, VI).
//
// On T1 (no capacity cap), the buffer weight b(e) is swept relative to the
// budget weight a(w): cheap buffers buy minimal budgets with a 10-container
// buffer; expensive buffers push the optimiser to tiny buffers and large
// budgets. The whole Pareto front of Figure 2(a) is traversed by weights
// alone.
#include <cstdio>

#include "bbs/core/budget_buffer_solver.hpp"
#include "bbs/gen/generators.hpp"

int main() {
  std::printf("# Ablation: steering the trade-off with objective weights\n");
  std::printf("# buffer weight b(e) (a(w) = 1) | budget beta(wa) | capacity\n");
  for (const double w :
       {1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0}) {
    const bbs::model::Configuration config =
        bbs::gen::producer_consumer_t1(w);
    const auto r = bbs::core::compute_budgets_and_buffers(config);
    if (!r.feasible()) {
      std::printf("%30.4f | infeasible\n", w);
      continue;
    }
    std::printf("%30.4f | %15.4f | %8d\n", w,
                r.graphs[0].tasks[0].budget_continuous,
                static_cast<int>(r.graphs[0].buffers[0].capacity));
  }
  std::printf("# expected: capacity decreases and budget increases "
              "monotonically with the buffer weight\n");
  return 0;
}
