// bbs_fuzz: differential fuzzing of the end-to-end solve pipeline.
//
// Draws deterministic randomized configurations from the gen/ families
// (with adversarial mutations), runs them through the service engine
// across every request kind, and cross-checks the answers against
// independent oracles: the exhaustive integer reference on small
// instances, the TDM simulator plus the PAS conservativeness bound, and
// solve/sweep self-consistency. Failing cases are shrunk and written as
// standalone JSON reproducers:
//
//   $ ./bbs_fuzz --seed 7 --cases 500 --corpus corpus/
//   $ ./bbs_fuzz --replay corpus/fuzz-7-123.json
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bbs/fuzz/fuzzer.hpp"

namespace {

constexpr const char kUsage[] =
    "usage: %s [options]\n"
    "\n"
    "Differential fuzzing of the solve pipeline: randomized generated\n"
    "configurations, every request kind, cross-checked against the exact\n"
    "integer reference, the TDM simulator and solve/sweep consistency.\n"
    "Cases are deterministic in (--seed, case index).\n"
    "\n"
    "options:\n"
    "  --seed S       base seed of the case stream (default 1)\n"
    "  --cases N      number of cases to run (default 100)\n"
    "  --corpus DIR   write shrunk JSON reproducers of failing cases here\n"
    "  --replay FILE  replay a reproducer instead of fuzzing (repeatable;\n"
    "                 passes only if the recorded bug no longer fires)\n"
    "  --fail-first-attempt\n"
    "                 force every solve's first IPM attempt to fail so the\n"
    "                 numerical recovery ladder runs on every case\n"
    "  --no-shrink    keep failing cases at their original size\n"
    "  --no-exact     skip the exhaustive integer reference oracle\n"
    "  --no-sim       skip the TDM simulator oracle\n"
    "  --verbose      log each case to stderr (twice for per-case detail)\n"
    "  --help         print this message and exit\n"
    "\n"
    "exit codes:\n"
    "  0  every case passed its oracles\n"
    "  1  at least one oracle disagreement (see stderr / reproducers)\n"
    "  2  usage errors\n";

bool parse_u64(const char* text, std::uint64_t& out) {
  try {
    size_t pos = 0;
    out = std::stoull(text, &pos);
    return pos == std::strlen(text);
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bbs;

  fuzz::FuzzOptions options;
  std::vector<std::string> replays;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help") {
      std::printf(kUsage, argv[0]);
      return 0;
    } else if (arg == "--seed") {
      if (!parse_u64(value(), options.seed)) {
        std::fprintf(stderr, "%s: --seed wants an unsigned integer\n",
                     argv[0]);
        return 2;
      }
    } else if (arg == "--cases") {
      if (!parse_u64(value(), options.cases)) {
        std::fprintf(stderr, "%s: --cases wants an unsigned integer\n",
                     argv[0]);
        return 2;
      }
    } else if (arg == "--corpus") {
      options.corpus_dir = value();
    } else if (arg == "--replay") {
      replays.push_back(value());
    } else if (arg == "--fail-first-attempt") {
      options.inject_fail_first = true;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--no-exact") {
      options.run_exact_oracle = false;
    } else if (arg == "--no-sim") {
      options.run_sim_oracle = false;
    } else if (arg == "--verbose") {
      ++options.verbosity;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
      std::fprintf(stderr, kUsage, argv[0]);
      return 2;
    }
  }

  if (!replays.empty()) {
    bool all_clean = true;
    for (const std::string& path : replays) {
      fuzz::CaseResult result;
      try {
        result = fuzz::replay_file(path, options);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "replay %s: %s\n", path.c_str(), e.what());
        return 2;
      }
      if (result.passed) {
        std::printf("replay %s: clean (%s)\n", path.c_str(),
                    fuzz::case_label(result.spec).c_str());
      } else {
        all_clean = false;
        std::printf("replay %s: STILL FAILING (%s)\n", path.c_str(),
                    fuzz::case_label(result.spec).c_str());
        for (const std::string& f : result.failures) {
          std::printf("  %s\n", f.c_str());
        }
      }
    }
    return all_clean ? 0 : 1;
  }

  const fuzz::FuzzSummary s = fuzz::run_fuzz(options);
  std::printf(
      "bbs_fuzz seed=%llu: %llu cases, %llu passed, %llu failed, "
      "%llu infeasible, %llu numerical_failures\n",
      static_cast<unsigned long long>(options.seed),
      static_cast<unsigned long long>(s.cases),
      static_cast<unsigned long long>(s.passed),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(s.infeasible),
      static_cast<unsigned long long>(s.numerical_failures));
  std::printf(
      "oracles: %llu exact verdicts, %llu simulated; ladder rescued %llu "
      "solves\n",
      static_cast<unsigned long long>(s.exact_checked),
      static_cast<unsigned long long>(s.sim_checked),
      static_cast<unsigned long long>(s.recovered_solves));
  for (const std::string& line : s.failure_lines) {
    std::printf("FAIL %s\n", line.c_str());
  }
  for (const std::string& path : s.reproducers) {
    std::printf("reproducer: %s (replay: bbs_fuzz --replay %s)\n",
                path.c_str(), path.c_str());
  }
  return s.ok() ? 0 : 1;
}
