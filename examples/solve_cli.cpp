// solve_cli: the service API as a mapping-flow step.
//
// Single-request mode reads a configuration (see bbs/io/config_io.hpp for
// the schema) from a file or stdin, computes budgets and buffer capacities
// simultaneously through the api::Engine, and writes the mapping result as
// JSON to stdout:
//
//   $ ./solve_cli my_system.json > mapping.json
//
// Batch mode processes a JSONL request stream (see bbs/io/api_io.hpp for
// the envelope): one service-API request per input line, one response per
// output line. Requests of one problem structure share a pooled, warm
// solver session, so scenario sweeps and repeated solves of the same
// system amortise program build, symbolic factorisation and warm starts
// across the whole stream:
//
//   $ ./solve_cli --batch requests.jsonl > responses.jsonl
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bbs/api/engine.hpp"
#include "bbs/io/api_io.hpp"
#include "bbs/io/config_io.hpp"

namespace {

constexpr const char kUsage[] =
    "usage: %s [--latency] [--batch] [--help] [input.json|-]\n"
    "\n"
    "Computes budgets and buffer capacities simultaneously (DATE'10\n"
    "Algorithm 1). Input defaults to stdin ('-').\n"
    "\n"
    "options:\n"
    "  --latency  append worst-case source-to-sink latency bounds per task\n"
    "             graph to stderr (single-request mode only)\n"
    "  --batch    treat the input as a JSONL stream of service-API\n"
    "             requests (one per line; see io/api_io.hpp for the\n"
    "             schema) and write one response per line to stdout\n"
    "  --help     print this message and exit\n"
    "\n"
    "exit codes:\n"
    "  0  verified feasible mapping (single mode); every request executed\n"
    "     with status \"ok\" (batch mode)\n"
    "  1  usage, file or configuration errors\n"
    "  2  the solve was infeasible or failed verification (single mode);\n"
    "     at least one request came back \"infeasible\" or \"error\"\n"
    "     (batch mode — per-line errors are reported in the responses and\n"
    "     never abort the stream)\n";

int run_batch(bbs::api::Engine& engine, std::istream& in) {
  using namespace bbs;
  bool all_ok = true;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    api::Response response;
    try {
      response = engine.run(io::request_from_json(line));
    } catch (const std::exception& e) {
      // A line that does not even parse as a request still produces a
      // response line, keeping input and output streams aligned.
      response.kind = "unknown";
      response.status = api::ResponseStatus::kError;
      response.error = e.what();
      response.error_code = api::ErrorCode::kParse;
    }
    all_ok = all_ok && response.ok();
    std::fputs(io::write_json_compact(io::response_to_json_value(response))
                   .c_str(),
               stdout);
    std::fputc('\n', stdout);
    // Contract: every response line is flushed before the next request is
    // read, so piped consumers see the JSONL stream incrementally (stdout
    // is fully buffered when piped). The daemon smoke test diffs bbs_serve
    // against this output and relies on the same per-line delivery.
    std::fflush(stdout);
  }
  return all_ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bbs;
  bool want_latency = false;
  bool batch = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--latency") == 0) {
      want_latency = true;
    } else if (std::strcmp(arg, "--batch") == 0) {
      batch = true;
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      std::printf(kUsage, argv[0]);
      return 0;
    } else if (arg[0] == '-' && std::strcmp(arg, "-") != 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg);
      std::fprintf(stderr, kUsage, argv[0]);
      return 1;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "unexpected extra argument '%s'\n", arg);
      std::fprintf(stderr, kUsage, argv[0]);
      return 1;
    }
  }

  api::Engine engine;

  if (batch) {
    if (path.empty() || path == "-") {
      return run_batch(engine, std::cin);
    }
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
      return 1;
    }
    return run_batch(engine, in);
  }

  std::string text;
  if (path.empty() || path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }

  model::Configuration config(1);
  try {
    config = io::configuration_from_json(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "invalid configuration: %s\n", e.what());
    return 1;
  }

  // Single-request mode runs through the same Engine as the batch path;
  // --latency upgrades the request so the bounds ride along.
  api::Request request;
  if (want_latency) {
    request.payload = api::LatencyRequest{config};
  } else {
    request.payload = api::SolveRequest{config};
  }
  const api::Response response = engine.run(request);
  if (response.status == api::ResponseStatus::kError) {
    std::fprintf(stderr, "solve failed: %s\n", response.error.c_str());
    return 1;
  }

  const core::MappingResult* mapping = nullptr;
  if (const auto* p = std::get_if<api::SolvePayload>(&response.payload)) {
    mapping = &p->mapping;
  } else if (const auto* p =
                 std::get_if<api::LatencyPayload>(&response.payload)) {
    mapping = &p->mapping;
  }
  // The single-request report keeps the name-annotated schema of
  // mapping_result_to_json (stable since the first release).
  std::fputs(io::mapping_result_to_json(config, *mapping).c_str(), stdout);

  if (want_latency && mapping->feasible()) {
    const auto& payload = std::get<api::LatencyPayload>(response.payload);
    for (const auto& bound : payload.graphs) {
      if (!bound.has_pas) continue;
      std::fprintf(stderr, "latency bound of '%s': %.4f\n",
                   config.task_graph(bound.graph).name().c_str(),
                   bound.latency.worst);
    }
  }
  return mapping->feasible() && mapping->verified ? 0 : 2;
}
