// solve_cli: JSON in, JSON out — the library as a mapping-flow step.
//
// Reads a configuration (see bbs/io/config_io.hpp for the schema) from a
// file or stdin, computes budgets and buffer capacities simultaneously, and
// writes the mapping result as JSON to stdout. Exit code 0 on a verified
// feasible mapping, 2 on infeasibility, 1 on usage/parse errors.
//
//   $ ./solve_cli my_system.json > mapping.json
//   $ ./tradeoff_explorer t1 1 1   # related: sweep tool
//
// With --latency, per-job worst-case source-to-sink latency bounds are
// appended to the report.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bbs/core/budget_buffer_solver.hpp"
#include "bbs/core/latency.hpp"
#include "bbs/io/config_io.hpp"

int main(int argc, char** argv) {
  using namespace bbs;
  bool want_latency = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--latency") == 0) {
      want_latency = true;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s [--latency] [config.json]\n", argv[0]);
      return 1;
    }
  }

  std::string text;
  if (path.empty() || path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }

  model::Configuration config(1);
  try {
    config = io::configuration_from_json(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "invalid configuration: %s\n", e.what());
    return 1;
  }

  const core::MappingResult result =
      core::compute_budgets_and_buffers(config);
  std::fputs(io::mapping_result_to_json(config, result).c_str(), stdout);

  if (want_latency && result.feasible()) {
    for (linalg::Index gi = 0; gi < config.num_task_graphs(); ++gi) {
      const auto g = static_cast<std::size_t>(gi);
      linalg::Vector budgets;
      std::vector<linalg::Index> caps;
      for (const auto& t : result.graphs[g].tasks) {
        budgets.push_back(static_cast<double>(t.budget));
      }
      for (const auto& b : result.graphs[g].buffers) {
        caps.push_back(b.capacity);
      }
      const auto lat = core::compute_latency_bounds(config, gi, budgets, caps);
      if (lat) {
        std::fprintf(stderr, "latency bound of '%s': %.4f\n",
                     config.task_graph(gi).name().c_str(), lat->worst);
      }
    }
  }
  return result.feasible() && result.verified ? 0 : 2;
}
