// A five-stage video-decoder-like pipeline with memory constraints.
//
// The scenario mirrors the multimedia motivation of the paper's
// introduction: a parse -> vld -> idct -> mc -> display pipeline mapped onto
// three processors, with the small on-chip SRAM holding the latency-critical
// buffers and the off-chip DRAM the bulky ones. The example shows
//   * constraint (10) in action (the SRAM is tight),
//   * heterogeneous container sizes (macroblock vs frame-slice buffers),
//   * the effect of tightening the throughput requirement,
//   * DOT export of the budget-scheduler dataflow model for documentation.
//
//   * batched execution through the service API: the three throughput
//     variants share one problem structure, so api::Engine serves them from
//     one pooled, warm-started solver session.
//
//   $ ./multimedia_pipeline
#include <cstdio>

#include "bbs/api/engine.hpp"
#include "bbs/dataflow/dot_export.hpp"
#include "bbs/io/config_io.hpp"

namespace {

bbs::model::Configuration make_pipeline(double period) {
  using namespace bbs;
  model::Configuration config(/*granularity=*/2);
  const auto risc = config.add_processor("risc", 60.0, /*overhead=*/1.0);
  const auto dsp1 = config.add_processor("dsp1", 60.0, 1.0);
  const auto dsp2 = config.add_processor("dsp2", 60.0, 1.0);
  const auto sram = config.add_memory("sram", /*capacity=*/24.0);
  const auto dram = config.add_memory("dram");  // unconstrained

  model::TaskGraph dec("video-decoder", period);
  const auto parse = dec.add_task("parse", risc, 2.0);
  const auto vld = dec.add_task("vld", dsp1, 4.0);
  const auto idct = dec.add_task("idct", dsp2, 5.0);
  const auto mc = dec.add_task("mc", dsp1, 3.0);
  const auto disp = dec.add_task("display", risc, 1.0);

  // Latency-critical small buffers in SRAM (container = 2 units: a
  // macroblock row), bulky reference data in DRAM (container = 8: a slice).
  dec.add_buffer("bitstream", parse, vld, sram, 2, 0, 1e-3);
  dec.add_buffer("coeffs", vld, idct, sram, 2, 0, 1e-3);
  dec.add_buffer("blocks", idct, mc, sram, 2, 0, 1e-3);
  dec.add_buffer("frames", mc, disp, dram, 8, 0, 1e-3);
  config.add_task_graph(std::move(dec));
  return config;
}

void report(const bbs::model::Configuration& config,
            const bbs::core::MappingResult& r) {
  if (!r.feasible()) {
    std::printf("  -> infeasible (%s)\n", bbs::solver::to_string(r.status));
    return;
  }
  const bbs::model::TaskGraph& tg = config.task_graph(0);
  double sram_use = 0.0;
  for (std::size_t t = 0; t < r.graphs[0].tasks.size(); ++t) {
    std::printf("  %-9s budget %2d/%2.0f on %s\n",
                tg.task(static_cast<bbs::linalg::Index>(t)).name.c_str(),
                static_cast<int>(r.graphs[0].tasks[t].budget),
                config.processor(tg.task(static_cast<bbs::linalg::Index>(t))
                                     .processor)
                    .replenishment_interval,
                config.processor(tg.task(static_cast<bbs::linalg::Index>(t))
                                     .processor)
                    .name.c_str());
  }
  for (std::size_t b = 0; b < r.graphs[0].buffers.size(); ++b) {
    const auto& buf = tg.buffer(static_cast<bbs::linalg::Index>(b));
    std::printf("  %-9s capacity %d x %d units in %s\n", buf.name.c_str(),
                static_cast<int>(r.graphs[0].buffers[b].capacity),
                static_cast<int>(buf.container_size),
                config.memory(buf.memory).name.c_str());
    if (config.memory(buf.memory).name == "sram") {
      sram_use += static_cast<double>(r.graphs[0].buffers[b].capacity *
                                      buf.container_size);
    }
  }
  double sram_capacity = 0.0;
  for (bbs::linalg::Index m = 0; m < config.num_memories(); ++m) {
    if (config.memory(m).name == "sram") sram_capacity = config.memory(m).capacity;
  }
  std::printf("  SRAM footprint %.0f / %.0f, MCR %.3f <= %.1f, verified=%s\n",
              sram_use, sram_capacity, r.graphs[0].verification.mcr,
              r.graphs[0].verification.required_period,
              r.verified ? "yes" : "NO");
}

}  // namespace

int main() {
  // One request per throughput requirement, executed as a batch: every
  // variant after the first reuses the pooled session (same structure, only
  // the period changes), so the engine solves it warm on the one symbolic
  // factorisation of the batch.
  const double periods[] = {30.0, 20.0, 14.0};
  std::vector<bbs::api::Request> batch;
  for (const double period : periods) {
    bbs::api::Request request;
    request.payload = bbs::api::SolveRequest{make_pipeline(period)};
    batch.push_back(std::move(request));
  }
  bbs::api::Engine engine;
  const std::vector<bbs::api::Response> responses = engine.run_batch(batch);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    std::printf("video decoder with required period %.0f Mcycles:\n",
                periods[i]);
    if (responses[i].status == bbs::api::ResponseStatus::kError) {
      std::printf("  -> error: %s\n\n", responses[i].error.c_str());
      continue;
    }
    const auto& payload =
        std::get<bbs::api::SolvePayload>(responses[i].payload);
    report(batch[i].configuration(), payload.mapping);
    const bbs::api::Diagnostics& diag = responses[i].diagnostics;
    std::printf("  engine: %s session, %ld ipm iterations, "
                "%ld symbolic factorisation(s)\n\n",
                diag.session_reused ? "pooled" : "fresh",
                diag.ipm_iterations, diag.symbolic_factorisations);
  }

  // Export the dataflow model of the 20-Mcycle variant for documentation
  // (its mapping is already in the batch responses).
  if (responses[1].status == bbs::api::ResponseStatus::kError) return 0;
  const bbs::model::Configuration& config = batch[1].configuration();
  const bbs::core::MappingResult& r =
      std::get<bbs::api::SolvePayload>(responses[1].payload).mapping;
  if (r.feasible()) {
    bbs::linalg::Vector budgets;
    std::vector<bbs::linalg::Index> caps;
    for (const auto& t : r.graphs[0].tasks) {
      budgets.push_back(static_cast<double>(t.budget));
    }
    for (const auto& b : r.graphs[0].buffers) caps.push_back(b.capacity);
    const bbs::core::SrdfModel m = bbs::core::build_srdf(config, 0, budgets,
                                                         caps);
    std::printf("budget-scheduler SRDF model (Graphviz DOT):\n%s",
                bbs::dataflow::to_dot(m.graph, "decoder").c_str());
  }
  return 0;
}
