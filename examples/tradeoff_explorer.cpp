// Command-line trade-off explorer.
//
// Sweeps the maximum buffer capacity of a configuration (the built-in T1/T2
// graphs or a JSON file) and prints the budget/buffer Pareto points as CSV,
// ready for plotting. This is the generalised version of the experiments
// behind Figures 2 and 3 of the paper.
//
// The sweep runs through the service API (api::Engine with a SweepRequest),
// whose pooled, warm-started sessions solve every capacity step on one
// program build and symbolic factorisation.
//
//   $ ./tradeoff_explorer                 # paper's T1, capacities 1..10
//   $ ./tradeoff_explorer t2 1 10         # paper's T2
//   $ ./tradeoff_explorer config.json 2 8 # your own configuration
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bbs/api/engine.hpp"
#include "bbs/gen/generators.hpp"
#include "bbs/io/config_io.hpp"

int main(int argc, char** argv) {
  using namespace bbs;

  std::string source = argc > 1 ? argv[1] : "t1";
  const linalg::Index lo =
      argc > 2 ? static_cast<linalg::Index>(std::atoi(argv[2])) : 1;
  const linalg::Index hi =
      argc > 3 ? static_cast<linalg::Index>(std::atoi(argv[3])) : 10;

  model::Configuration config(1);
  if (source == "t1") {
    config = gen::producer_consumer_t1();
  } else if (source == "t2") {
    config = gen::three_stage_chain_t2();
  } else {
    std::ifstream in(source);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", source.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      config = io::configuration_from_json(text.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to load '%s': %s\n", source.c_str(),
                   e.what());
      return 1;
    }
  }

  std::printf("# trade-off sweep of '%s', common buffer cap %d..%d\n",
              source.c_str(), static_cast<int>(lo), static_cast<int>(hi));
  std::printf("cap,feasible,total_budget");
  const model::TaskGraph& tg = config.task_graph(0);
  for (linalg::Index t = 0; t < tg.num_tasks(); ++t) {
    std::printf(",beta_%s", tg.task(t).name.c_str());
  }
  for (linalg::Index b = 0; b < tg.num_buffers(); ++b) {
    std::printf(",gamma_%s", tg.buffer(b).name.c_str());
  }
  std::printf("\n");

  api::Engine engine;
  api::Request request;
  api::SweepRequest sweep_request{config};
  sweep_request.graph = 0;
  sweep_request.cap_lo = lo;
  sweep_request.cap_hi = hi;
  request.payload = std::move(sweep_request);
  const api::Response response = engine.run(request);
  if (response.status == api::ResponseStatus::kError) {
    std::fprintf(stderr, "sweep failed: %s\n", response.error.c_str());
    return 1;
  }
  const core::TradeoffSweep& sweep =
      std::get<api::SweepPayload>(response.payload).sweep;
  for (const core::TradeoffPoint& p : sweep.points) {
    std::printf("%d,%d", static_cast<int>(p.max_capacity),
                p.feasible ? 1 : 0);
    if (!p.feasible) {
      std::printf(",,\n");
      continue;
    }
    std::printf(",%.4f", p.total_budget_continuous);
    for (const double beta : p.budgets_continuous) std::printf(",%.4f", beta);
    for (const linalg::Index cap : p.capacities) {
      std::printf(",%d", static_cast<int>(cap));
    }
    std::printf("\n");
  }

  const linalg::Vector deltas = sweep.budget_deltas();
  std::printf("# marginal budget saving per extra container:");
  for (const double d : deltas) std::printf(" %.3f", d);
  std::printf("\n");
  const api::Diagnostics& diag = response.diagnostics;
  std::printf("# %d solves (%d warm-started), %ld ipm iterations, "
              "%ld symbolic factorisation(s), %.1f ms\n",
              diag.solves, diag.warm_started_solves, diag.ipm_iterations,
              diag.symbolic_factorisations, diag.wall_ms);
  return 0;
}
