// Multi-job car-entertainment system (the motivating scenario of the
// paper's introduction): several concurrent streaming jobs share a
// multiprocessor through budget schedulers; users start and stop jobs at
// run time.
//
// The example maps the navigation-audio and mp3-playback jobs of the
// built-in preset simultaneously (they share the DSP and the I/O processor),
// prints both allocations, demonstrates budget-scheduler isolation by
// simulating both jobs together, and then re-maps after "stopping" the mp3
// job to show the freed budget.
//
//   $ ./car_entertainment
#include <cstdio>

#include "bbs/api/engine.hpp"
#include "bbs/gen/generators.hpp"
#include "bbs/io/config_io.hpp"
#include "bbs/sim/tdm_simulator.hpp"

namespace {

void print_mapping(const bbs::model::Configuration& config,
                   const bbs::core::MappingResult& r) {
  for (std::size_t gi = 0; gi < r.graphs.size(); ++gi) {
    const bbs::model::TaskGraph& tg =
        config.task_graph(static_cast<bbs::linalg::Index>(gi));
    std::printf("  job '%s' (period <= %.0f):\n", tg.name().c_str(),
                tg.required_period());
    for (std::size_t t = 0; t < r.graphs[gi].tasks.size(); ++t) {
      const auto& task = tg.task(static_cast<bbs::linalg::Index>(t));
      std::printf("    %-12s on %-4s budget %2d  (continuous %6.3f)\n",
                  task.name.c_str(),
                  config.processor(task.processor).name.c_str(),
                  static_cast<int>(r.graphs[gi].tasks[t].budget),
                  r.graphs[gi].tasks[t].budget_continuous);
    }
    for (std::size_t b = 0; b < r.graphs[gi].buffers.size(); ++b) {
      const auto& buf = tg.buffer(static_cast<bbs::linalg::Index>(b));
      std::printf("    %-12s capacity %d containers in %s\n",
                  buf.name.c_str(),
                  static_cast<int>(r.graphs[gi].buffers[b].capacity),
                  config.memory(buf.memory).name.c_str());
    }
  }
}

}  // namespace

int main() {
  using namespace bbs;
  const model::Configuration config = gen::car_entertainment_preset();

  std::printf("== both jobs running ==\n");
  // Mapped through the service API: a start/stop-happy infotainment head
  // unit would stream such requests at one engine and let the session pool
  // absorb the repeated structures.
  api::Engine engine;
  api::Request request;
  request.payload = api::SolveRequest{config};
  const api::Response response = engine.run(request);
  if (response.status == api::ResponseStatus::kError) {
    std::printf("mapping failed: %s\n", response.error.c_str());
    return 1;
  }
  const core::MappingResult& both =
      std::get<api::SolvePayload>(response.payload).mapping;
  if (!both.feasible()) {
    std::printf("mapping failed: %s\n", solver::to_string(both.status));
    return 1;
  }
  print_mapping(config, both);

  // Budget utilisation per processor.
  for (linalg::Index p = 0; p < config.num_processors(); ++p) {
    double used = config.processor(p).scheduling_overhead;
    for (linalg::Index gi = 0; gi < config.num_task_graphs(); ++gi) {
      const model::TaskGraph& tg = config.task_graph(gi);
      for (linalg::Index t = 0; t < tg.num_tasks(); ++t) {
        if (tg.task(t).processor == p) {
          used += static_cast<double>(
              both.graphs[static_cast<std::size_t>(gi)]
                  .tasks[static_cast<std::size_t>(t)]
                  .budget);
        }
      }
    }
    std::printf("  %-4s wheel utilisation %.0f / %.0f cycles\n",
                config.processor(p).name.c_str(), used,
                config.processor(p).replenishment_interval);
  }

  // Simulate both jobs concurrently: budget schedulers isolate them.
  std::vector<linalg::Vector> budgets;
  std::vector<std::vector<linalg::Index>> caps;
  for (const core::MappedGraph& mg : both.graphs) {
    linalg::Vector b;
    std::vector<linalg::Index> c;
    for (const auto& t : mg.tasks) b.push_back(static_cast<double>(t.budget));
    for (const auto& buf : mg.buffers) c.push_back(buf.capacity);
    budgets.push_back(std::move(b));
    caps.push_back(std::move(c));
  }
  const sim::SimResult sim = sim::simulate_tdm(config, budgets, caps);
  for (std::size_t gi = 0; gi < sim.graphs.size(); ++gi) {
    std::printf("  simulated period of '%s': %.3f (requirement %.0f) [%s]\n",
                config.task_graph(static_cast<linalg::Index>(gi)).name()
                    .c_str(),
                sim.graphs[gi].measured_period,
                config.task_graph(static_cast<linalg::Index>(gi))
                    .required_period(),
                sim.graphs[gi].measured_period <=
                        config.task_graph(static_cast<linalg::Index>(gi))
                                .required_period() +
                            1e-9
                    ? "met"
                    : "MISSED");
  }

  // The result as machine-readable JSON (for downstream mapping tools).
  std::printf("\n== mapping result (JSON) ==\n%s",
              io::mapping_result_to_json(config, both).c_str());
  return 0;
}
