// Multi-rate SDF analysis: the front-end for the "more dynamic
// applications" named as future work in the paper's conclusion.
//
// Models a toy MP3-like decoder with genuine rate changes
// (frame parser -> 2x subband decoder -> 32x synthesis -> sample sink),
// computes the repetition vector, expands the graph to single-rate form,
// and analyses the iteration period with the MCR machinery. It then sweeps
// the capacity of the rate-changing channel (modelled with a reverse
// channel, the SDF analogue of the paper's space queues) to show the same
// buffer/throughput trade-off at the multi-rate level.
//
//   $ ./sdf_analysis
#include <cstdio>

#include "bbs/dataflow/cycle_ratio.hpp"
#include "bbs/dataflow/sdf_graph.hpp"

int main() {
  using namespace bbs::dataflow;

  SdfGraph mp3;
  const auto parse = mp3.add_actor("parse", 4.0);
  const auto subband = mp3.add_actor("subband", 3.0);
  const auto synth = mp3.add_actor("synth", 0.4);
  const auto sink = mp3.add_actor("sink", 0.1);
  // One parsed frame yields 2 subband blocks; each block yields 16
  // synthesis windows; each window yields 4 samples.
  mp3.add_channel(parse, subband, 2, 1);
  mp3.add_channel(subband, synth, 16, 1);
  mp3.add_channel(synth, sink, 4, 1);

  const auto reps = repetition_vector(mp3);
  if (!reps) {
    std::printf("graph is inconsistent\n");
    return 1;
  }
  std::printf("repetition vector: parse=%d subband=%d synth=%d sink=%d\n",
              static_cast<int>((*reps)[0]), static_cast<int>((*reps)[1]),
              static_cast<int>((*reps)[2]), static_cast<int>((*reps)[3]));

  const SrdfExpansion expansion = expand_to_srdf(mp3);
  std::printf("single-rate expansion: %d actors, %d queues\n",
              static_cast<int>(expansion.graph.num_actors()),
              static_cast<int>(expansion.graph.num_queues()));

  const auto period = sdf_iteration_period(mp3);
  std::printf("iteration period (unbounded channels): %.3f\n",
              period ? *period : -1.0);

  // Buffer the parse->subband channel with a reverse space channel of
  // capacity c frames and watch the period: the multi-rate version of the
  // paper's trade-off.
  std::printf("\n# parse->subband channel capacity | iteration period\n");
  for (int c = 2; c <= 8; ++c) {
    SdfGraph g;
    // Heavier front-end so the parse<->subband cycle is the bottleneck at
    // small capacities: cycle duration 10 + 2*5 = 20 per frame, so period
    // = 20 / (c/2) until the synthesis bound of 12.8 takes over.
    const auto a0 = g.add_actor("parse", 10.0);
    const auto a1 = g.add_actor("subband", 5.0);
    const auto a2 = g.add_actor("synth", 0.4);
    const auto a3 = g.add_actor("sink", 0.1);
    g.add_channel(a0, a1, 2, 1);
    g.add_channel(a1, a0, 1, 2, c);  // space: c tokens = room for c blocks
    g.add_channel(a1, a2, 16, 1);
    g.add_channel(a2, a3, 4, 1);
    const auto p = sdf_iteration_period(g);
    if (p) {
      std::printf("%33d | %.3f\n", c, *p);
    } else {
      std::printf("%33d | deadlock\n", c);
    }
  }
  std::printf("# expected: period falls as the channel capacity grows, then "
              "saturates\n");
  return 0;
}
