// jsonl_client: minimal stream client for the bbs_serve socket modes.
//
// Connects to a service endpoint (unix:/path, bare path, or
// tcp://host:port), streams stdin to the daemon, half-closes the write
// side, and copies every response line to stdout until the daemon closes
// the connection. scripts/daemon_smoke.sh uses it to diff the socket
// transports against solve_cli --batch; it doubles as a portable `nc -U`
// for environments without netcat.
//
//   $ ./jsonl_client unix:/tmp/bbs.sock < requests.jsonl > responses.jsonl
//   $ ./jsonl_client tcp://127.0.0.1:7421 < requests.jsonl
//
// --connect-retries N retries a refused/absent endpoint with exponential
// backoff (50ms doubling, capped at 1s) — a script can launch the daemon
// and the client concurrently without a race; --timeout S bounds the total
// time spent retrying.
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "bbs/io/json.hpp"
#include "bbs/service/endpoint.hpp"

namespace {

int fail(const std::string& what) {
  std::fprintf(stderr, "jsonl_client: %s: %s\n", what.c_str(),
               std::strerror(errno));
  return 1;
}

int connect_endpoint(const bbs::service::Endpoint& endpoint) {
  if (endpoint.kind == bbs::service::Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.path.size() >= sizeof addr.sun_path) {
      std::fprintf(stderr, "jsonl_client: socket path too long\n");
      return -1;
    }
    std::memcpy(addr.sun_path, endpoint.path.c_str(),
                endpoint.path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* results = nullptr;
  if (::getaddrinfo(endpoint.host.c_str(),
                    std::to_string(endpoint.port).c_str(), &hints,
                    &results) != 0) {
    return -1;
  }
  int fd = -1;
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd >= 0) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return fd;
}

/// connect_endpoint() with retries on "daemon not up yet" errors
/// (ECONNREFUSED, and ENOENT for a unix socket path that does not exist
/// yet). Backs off exponentially from 50ms, doubling per attempt and
/// capped at 1s; gives up after `retries` retries or once `timeout`
/// elapses (0 = no overall bound). Errors other than refused/absent fail
/// immediately — retrying a bad host or a permission error only hides it.
int connect_with_retries(const bbs::service::Endpoint& endpoint, int retries,
                         std::chrono::milliseconds timeout) {
  const auto start = std::chrono::steady_clock::now();
  std::chrono::milliseconds backoff{50};
  for (int attempt = 0;; ++attempt) {
    errno = 0;
    const int fd = connect_endpoint(endpoint);
    if (fd >= 0) return fd;
    const bool retryable = errno == ECONNREFUSED || errno == ENOENT;
    if (!retryable || attempt >= retries) return -1;
    if (timeout.count() > 0 &&
        std::chrono::steady_clock::now() - start + backoff > timeout) {
      errno = ETIMEDOUT;
      return -1;
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, std::chrono::milliseconds(1000));
  }
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Pretty-prints the single control-response line a --stats/--metrics probe
/// gets back: stats responses re-serialise with indentation, metrics
/// responses unwrap result.text (raw Prometheus exposition). Anything that
/// does not parse as the expected envelope is printed verbatim — the raw
/// line is always more useful than a formatting error.
void print_control_reply(const std::string& reply, bool metrics) {
  try {
    const bbs::io::JsonValue doc = bbs::io::parse_json(reply);
    if (metrics) {
      const std::string& text =
          doc.as_object().at("result").as_object().at("text").as_string();
      std::fputs(text.c_str(), stdout);
      if (!text.empty() && text.back() != '\n') std::fputc('\n', stdout);
      return;
    }
    std::fputs(bbs::io::write_json(doc).c_str(), stdout);
  } catch (const std::exception&) {
    std::fputs(reply.c_str(), stdout);
    if (!reply.empty() && reply.back() != '\n') std::fputc('\n', stdout);
  }
}

/// Pretty-prints a {"kind":"trace"} reply: one block per trace, one line
/// per event with its timestamp relative to trace creation, span durations
/// in brackets, and any numeric attributes appended as key=value pairs.
/// Falls back to the raw line when the envelope does not parse.
void print_trace_reply(const std::string& reply) {
  using bbs::io::JsonObject;
  using bbs::io::JsonValue;
  try {
    const JsonValue doc = bbs::io::parse_json(reply);
    const JsonObject& result = doc.as_object().at("result").as_object();
    const auto& traces = result.at("traces").as_array();
    if (traces.empty()) {
      std::printf("no matching traces (%g of %g ring slots recorded)\n",
                  result.contains("recorded")
                      ? result.at("recorded").as_number()
                      : 0.0,
                  result.contains("capacity")
                      ? result.at("capacity").as_number()
                      : 0.0);
      return;
    }
    for (const JsonValue& trace_value : traces) {
      const JsonObject& trace = trace_value.as_object();
      std::printf("trace %s kind=%s status=%s wall_ms=%.3f",
                  trace.at("id").as_string().c_str(),
                  trace.at("kind").as_string().c_str(),
                  trace.at("status").as_string().c_str(),
                  trace.at("wall_ms").as_number());
      if (trace.contains("error_code")) {
        std::printf(" error_code=%s",
                    trace.at("error_code").as_string().c_str());
      }
      std::fputc('\n', stdout);
      for (const JsonValue& event_value : trace.at("events").as_array()) {
        const JsonObject& event = event_value.as_object();
        std::printf("  +%9.3f ms  %s", event.at("t_ms").as_number(),
                    event.at("name").as_string().c_str());
        if (event.contains("dur_ms")) {
          std::printf(" [%.3f ms]", event.at("dur_ms").as_number());
        }
        if (event.contains("detail")) {
          std::printf("  %s", event.at("detail").as_string().c_str());
        }
        for (const auto& [key, value] : event.entries()) {
          if (key == "name" || key == "t_ms" || key == "dur_ms" ||
              key == "detail") {
            continue;
          }
          if (value.is_number()) {
            std::printf("  %s=%g", key.c_str(), value.as_number());
          }
        }
        std::fputc('\n', stdout);
      }
    }
  } catch (const std::exception&) {
    std::fputs(reply.c_str(), stdout);
    if (!reply.empty() && reply.back() != '\n') std::fputc('\n', stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* endpoint_spec = nullptr;
  int connect_retries = 0;
  std::chrono::milliseconds timeout{0};
  bool stats_probe = false;
  bool metrics_probe = false;
  bool trace_probe = false;
  const char* trace_id = nullptr;
  bool usage_error = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--stats") == 0) {
      stats_probe = true;
    } else if (std::strcmp(arg, "--metrics") == 0) {
      metrics_probe = true;
    } else if (std::strcmp(arg, "--trace") == 0) {
      trace_probe = true;
      // Optional ID operand: the next arg is a trace id only when another
      // arg (the endpoint) still follows it — `--trace <endpoint>` keeps
      // working unambiguously.
      if (i + 2 < argc && argv[i + 1][0] != '-') {
        trace_id = argv[++i];
      }
    } else if (std::strcmp(arg, "--connect-retries") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 0 || v > 1000) {
        usage_error = true;
        break;
      }
      connect_retries = static_cast<int>(v);
    } else if (std::strcmp(arg, "--timeout") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const double v = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || !(v >= 0.0) || v > 3600.0) {
        usage_error = true;
        break;
      }
      timeout = std::chrono::milliseconds(static_cast<long>(v * 1000.0));
    } else if (arg[0] == '-' && arg[1] != '\0') {
      usage_error = true;
      break;
    } else if (endpoint_spec == nullptr) {
      endpoint_spec = arg;
    } else {
      usage_error = true;
      break;
    }
  }
  if (usage_error || endpoint_spec == nullptr ||
      (stats_probe ? 1 : 0) + (metrics_probe ? 1 : 0) + (trace_probe ? 1 : 0) >
          1) {
    std::fprintf(
        stderr,
        "usage: %s [--connect-retries N] [--timeout SECONDS]\n"
        "          [--stats | --metrics | --trace [ID]]\n"
        "          <unix:/path | /path | tcp://host:port>\n"
        "streams stdin to a bbs_serve socket endpoint, half-closes,\n"
        "and prints the response stream to stdout\n"
        "  --connect-retries N  retry a refused/absent endpoint up to N\n"
        "                       times with exponential backoff (50ms\n"
        "                       doubling, capped at 1s; default: 0)\n"
        "  --timeout SECONDS    give up retrying after this long\n"
        "                       (default: unbounded)\n"
        "  --stats              send a single {\"kind\":\"stats\"} control\n"
        "                       line (stdin is ignored) and pretty-print\n"
        "                       the JSON snapshot\n"
        "  --metrics            send {\"kind\":\"metrics\"} and print the\n"
        "                       raw Prometheus text exposition\n"
        "  --trace [ID]         send {\"kind\":\"trace\"} and pretty-print\n"
        "                       the recorded request traces (one line per\n"
        "                       span/event, timestamps relative to trace\n"
        "                       start); with ID, only that trace\n",
        argv[0]);
    return 1;
  }
  int fd = -1;
  try {
    fd = connect_with_retries(bbs::service::parse_endpoint(endpoint_spec),
                              connect_retries, timeout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "jsonl_client: %s\n", e.what());
    return 1;
  }
  if (fd < 0) return fail(std::string("connect '") + endpoint_spec + "'");

  char buf[4096];
  if (stats_probe || metrics_probe || trace_probe) {
    // Probe mode: one control line instead of the stdin stream, then the
    // usual half-close / drain dance on the single-line reply.
    std::string line;
    if (stats_probe) {
      line = "{\"kind\":\"stats\"}\n";
    } else if (metrics_probe) {
      line = "{\"kind\":\"metrics\"}\n";
    } else {
      bbs::io::JsonObject request;
      request["kind"] = bbs::io::JsonValue(std::string("trace"));
      if (trace_id != nullptr) {
        request["trace_id"] = bbs::io::JsonValue(std::string(trace_id));
      }
      line = bbs::io::write_json_compact(
                 bbs::io::JsonValue(std::move(request))) +
             "\n";
    }
    if (!send_all(fd, line.data(), line.size())) {
      ::close(fd);
      return fail("send");
    }
    if (::shutdown(fd, SHUT_WR) != 0) {
      ::close(fd);
      return fail("shutdown");
    }
    std::string reply;
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return fail("recv");
      }
      if (n == 0) break;
      reply.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    if (trace_probe) {
      print_trace_reply(reply);
    } else {
      print_control_reply(reply, metrics_probe);
    }
    std::fflush(stdout);
    return 0;
  }
  for (;;) {
    const ssize_t n = ::read(STDIN_FILENO, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return fail("read stdin");
    }
    if (n == 0) break;
    if (!send_all(fd, buf, static_cast<std::size_t>(n))) {
      ::close(fd);
      return fail("send");
    }
  }
  // Half-close tells the daemon the request stream is complete; it drains
  // in-flight work, writes the remaining responses, and EOFs back.
  if (::shutdown(fd, SHUT_WR) != 0) {
    ::close(fd);
    return fail("shutdown");
  }
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return fail("recv");
    }
    if (n == 0) break;
    if (std::fwrite(buf, 1, static_cast<std::size_t>(n), stdout) !=
        static_cast<std::size_t>(n)) {
      ::close(fd);
      return fail("write stdout");
    }
  }
  std::fflush(stdout);
  ::close(fd);
  return 0;
}
