// bbs_serve: long-lived solver service daemon over the JSONL contract.
//
// Speaks the schema-versioned request/response envelope of bbs/io/api_io.hpp
// (the same one `solve_cli --batch` consumes) as a persistent service:
// requests are routed by structure affinity across N worker threads, each
// owning a warm api::Engine, so the program build and the symbolic KKT
// factorisation of a problem structure are amortised across *all* clients
// for the daemon's whole lifetime.
//
// stdio mode (default) serves one connection on stdin/stdout —
// byte-for-byte the `solve_cli --batch` contract (modulo wall-clock
// diagnostics), plus {"kind":"stats"} control lines:
//
//   $ ./bbs_serve --workers 4 < requests.jsonl > responses.jsonl
//
// socket mode serves concurrent connections on a Unix-domain or TCP
// socket:
//
//   $ ./bbs_serve --listen unix:/tmp/bbs.sock --workers 4 &
//   $ nc -U /tmp/bbs.sock < requests.jsonl
//   $ ./bbs_serve --listen tcp://127.0.0.1:7421 --workers 4 &
//   $ nc 127.0.0.1 7421 < requests.jsonl
//
// SIGINT/SIGTERM shut down gracefully: the daemon stops reading, completes
// every request it already consumed, writes their responses, and exits.
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bbs/service/dispatcher.hpp"
#include "bbs/service/endpoint.hpp"
#include "bbs/service/fault_injector.hpp"
#include "bbs/service/jsonl_stream.hpp"
#include "bbs/service/runtime_config.hpp"
#include "bbs/service/socket_server.hpp"
#include "bbs/telemetry/service_telemetry.hpp"
#include "bbs/telemetry/structure_cache.hpp"
#include "bbs/telemetry/trace.hpp"

namespace {

constexpr const char kUsage[] =
    "usage: %s [--workers N] [--queue-depth N] [--listen ENDPOINT]\n"
    "          [--max-in-flight N] [--rps N] [--write-deadline-ms N]\n"
    "          [--default-deadline-ms N] [--queue-high-water N]\n"
    "          [--outbox-depth N] [--cache-dir PATH] [--cache-max-entries N]\n"
    "          [--cache-max-bytes N] [--trace-slow-ms N] [--trace-log PATH]\n"
    "          [--no-steal] [--help]\n"
    "\n"
    "Long-lived budget/buffer solver service over the JSONL request\n"
    "contract of solve_cli --batch (see bbs/io/api_io.hpp). Requests are\n"
    "sharded by problem structure across worker threads with warm session\n"
    "pools; a {\"kind\":\"stats\"} input line is answered with a ServiceStats\n"
    "snapshot instead of a solve, {\"kind\":\"metrics\"} with a Prometheus\n"
    "text exposition (native latency histograms per request kind and stage,\n"
    "structure-cache counters), and {\"kind\":\"trace\"} with recent\n"
    "completed request traces (requests opt in via \"options\":{\"trace\":\n"
    "true}; add \"trace_ipm\":true for per-IPM-iteration events).\n"
    "\n"
    "options:\n"
    "  --workers N      solver worker threads, each one engine (default:\n"
    "                   hardware concurrency)\n"
    "  --queue-depth N  bounded request queue per worker; a full queue\n"
    "                   blocks the connection that feeds it (default: 64)\n"
    "  --listen EP      serve socket connections instead of stdin/stdout;\n"
    "                   EP is unix:/path, a bare path, or tcp://host:port\n"
    "                   (tcp://127.0.0.1:0 picks a free port and logs it);\n"
    "                   concurrent connections share the worker pool\n"
    "  --max-in-flight N  per-connection cap on dispatched-but-unanswered\n"
    "                   requests; over-cap lines get an error response\n"
    "                   (default: unlimited)\n"
    "  --rps N          per-connection requests/sec token bucket; over-rate\n"
    "                   lines get an error response (default: unlimited)\n"
    "  --write-deadline-ms N  how long a full per-connection outbox may\n"
    "                   block a completion before the slow client is\n"
    "                   disconnected (default: 2000)\n"
    "  --default-deadline-ms N  end-to-end deadline stamped on requests\n"
    "                   that carry no options.deadline_ms of their own; the\n"
    "                   budget covers queue wait plus solve (default: none)\n"
    "  --queue-high-water N  reject new request lines with a retryable\n"
    "                   'overloaded' error while the routed worker's queue\n"
    "                   holds at least N tasks (default: off)\n"
    "  --outbox-depth N per-connection response outbox capacity\n"
    "                   (default: 256)\n"
    "  --cache-dir PATH persistent structure cache: symbolic KKT analyses\n"
    "                   and session payloads are written here as they are\n"
    "                   derived and loaded at startup to pre-warm the worker\n"
    "                   pools, so a restarted daemon serves known structures\n"
    "                   with zero symbolic factorisations; corrupt or stale\n"
    "                   entries are skipped and counted, never fatal\n"
    "  --cache-max-entries N  bound on cache entries, in memory and on\n"
    "                   disk; excess disk files are garbage-collected\n"
    "                   oldest-mtime-first at startup and after every\n"
    "                   write-behind save (default: 1024)\n"
    "  --cache-max-bytes N  additional bound on the summed size of the\n"
    "                   on-disk cache files, GC'd the same way (default:\n"
    "                   unlimited)\n"
    "  --trace-slow-ms N  threshold for the slow-request trace log: a\n"
    "                   traced request slower than N ms end to end (or one\n"
    "                   that ends in error) is appended to --trace-log\n"
    "                   (default: 0 = errors only)\n"
    "  --trace-log PATH append qualifying completed traces as JSONL to\n"
    "                   PATH via a write-behind thread (default: off)\n"
    "  --no-steal       disable idle-worker work stealing (strict\n"
    "                   structure affinity)\n"
    "  --help           print this message and exit\n"
    "\n"
    "All quota/deadline/overload limits are hot-reloadable at runtime via a\n"
    "{\"kind\":\"set_config\",...} control line on any connection. The\n"
    "BBS_FAILPOINTS environment variable arms deterministic fault\n"
    "injection (see service/fault_injector.hpp), e.g.\n"
    "BBS_FAILPOINTS=\"worker.delay_ms=200;ipm.fail_at=3\".\n"
    "\n"
    "exit codes (stdio mode):\n"
    "  0  every request executed with status \"ok\" (also after a clean\n"
    "     signal-triggered shutdown)\n"
    "  1  usage or setup errors\n"
    "  2  at least one response was \"infeasible\" or \"error\"\n";

// Self-pipe signal wiring: handlers only flag-and-write, the main thread
// polls the read end. No SA_RESTART, so a blocked stdin read returns EINTR.
std::atomic<int> g_signal{0};
int g_wake_fds[2] = {-1, -1};

void on_signal(int sig) {
  g_signal.store(sig);
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_wake_fds[1], &byte, 1);
}

bool install_signal_handlers() {
  if (::pipe(g_wake_fds) != 0) return false;
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  return ::sigaction(SIGINT, &sa, nullptr) == 0 &&
         ::sigaction(SIGTERM, &sa, nullptr) == 0;
}

/// Reads stdin line by line through poll(), so a shutdown signal interrupts
/// the wait even when no input is pending.
class StdinLineSource {
 public:
  enum class Status { kLine, kEof, kInterrupted };

  Status next(std::string& out) {
    for (;;) {
      if (take_line(out)) return Status::kLine;
      if (eof_) {
        if (!carry_.empty()) {  // unterminated last line
          out = std::move(carry_);
          carry_.clear();
          return Status::kLine;
        }
        return Status::kEof;
      }
      pollfd fds[2] = {{STDIN_FILENO, POLLIN, 0}, {g_wake_fds[0], POLLIN, 0}};
      if (::poll(fds, 2, -1) < 0) {
        if (errno == EINTR && g_signal.load() == 0) continue;
        return Status::kInterrupted;
      }
      if (fds[1].revents != 0) return Status::kInterrupted;
      char buf[4096];
      const ssize_t n = ::read(STDIN_FILENO, buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR && g_signal.load() == 0) continue;
        return Status::kInterrupted;
      }
      if (n == 0) {
        eof_ = true;
        continue;
      }
      carry_.append(buf, static_cast<std::size_t>(n));
    }
  }

 private:
  bool take_line(std::string& out) {
    const std::size_t nl = carry_.find('\n');
    if (nl == std::string::npos) return false;
    out.assign(carry_, 0, nl);
    carry_.erase(0, nl + 1);
    return true;
  }

  std::string carry_;
  bool eof_ = false;
};

int serve_stdio(bbs::service::Dispatcher& dispatcher,
                bbs::service::SessionOptions session_options) {
  // stdio mode is its own (single-connection) transport: it aggregates the
  // session's quota/overload rejections into the stats response itself.
  auto quota_rejections = std::make_shared<std::atomic<std::uint64_t>>(0);
  auto overload_rejections = std::make_shared<std::atomic<std::uint64_t>>(0);
  session_options.on_quota_rejection = [quota_rejections] {
    quota_rejections->fetch_add(1);
  };
  session_options.on_overload_rejection = [overload_rejections] {
    overload_rejections->fetch_add(1);
  };
  session_options.on_config_change = [](const std::string& description) {
    std::fprintf(stderr, "bbs_serve: set_config applied: %s\n",
                 description.c_str());
  };
  session_options.stats_hook =
      [quota_rejections,
       overload_rejections](bbs::service::ServiceStats& stats) {
        stats.quota_rejections = quota_rejections->load();
        stats.overload_rejections = overload_rejections->load();
      };
  bbs::service::JsonlSession session(
      dispatcher,
      [](const std::string& line) {
        std::fputs(line.c_str(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
      },
      std::move(session_options));
  StdinLineSource source;
  std::string line;
  for (;;) {
    const StdinLineSource::Status status = source.next(line);
    if (status == StdinLineSource::Status::kLine) {
      session.submit_line(line);
      continue;
    }
    if (status == StdinLineSource::Status::kInterrupted) {
      std::fprintf(stderr, "bbs_serve: signal %d, draining in-flight work\n",
                   g_signal.load());
    }
    break;
  }
  const bbs::service::StreamSummary summary = session.finish();
  dispatcher.stop(/*drain=*/true);
  return summary.all_ok() ? 0 : 2;
}

int serve_socket(bbs::service::Dispatcher& dispatcher,
                 const bbs::service::Endpoint& endpoint,
                 const bbs::service::SocketServerOptions& server_options) {
  bbs::service::SocketServer server(dispatcher, endpoint, server_options);
  // The *bound* endpoint: tcp port 0 resolves to the kernel's pick, and
  // scripts (daemon_smoke.sh) parse this line to find it.
  std::fprintf(stderr, "bbs_serve: listening on %s\n",
               server.endpoint().to_string().c_str());
  // Sleep until a shutdown signal lands on the self-pipe.
  for (;;) {
    pollfd fd = {g_wake_fds[0], POLLIN, 0};
    if (::poll(&fd, 1, -1) < 0) {
      if (errno == EINTR && g_signal.load() == 0) continue;
    }
    break;
  }
  std::fprintf(stderr, "bbs_serve: signal %d, draining in-flight work\n",
               g_signal.load());
  server.stop();
  dispatcher.stop(/*drain=*/true);
  return 0;
}

bool parse_size(const char* text, std::size_t& out) {
  // Digits only: strtoull silently wraps negative input ("-1" ->
  // SIZE_MAX), which would reach the dispatcher as an absurd worker or
  // queue bound instead of a usage error.
  if (text[0] < '0' || text[0] > '9') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  if (value > 65536) return false;  // sanity bound for workers/queue depth
  out = static_cast<std::size_t>(value);
  return true;
}

bool parse_bytes(const char* text, std::uint64_t& out) {
  // Like parse_size but with a byte-scale bound: cache budgets are
  // legitimately gigabytes, far past the worker/queue sanity cap.
  if (text[0] < '0' || text[0] > '9') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  if (value > (1ULL << 50)) return false;
  out = static_cast<std::uint64_t>(value);
  return true;
}

bool parse_rate(const char* text, double& out) {
  // Non-negative decimal (fractional rates like 0.5/s are meaningful for
  // a token bucket); rejects negatives, inf/nan spellings and trailing
  // junk the same way parse_size does.
  if ((text[0] < '0' || text[0] > '9') && text[0] != '.') return false;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0') return false;
  if (!(value >= 0.0) || value > 1e9) return false;
  out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bbs::service::DispatcherOptions options;
  options.workers = 0;  // hardware concurrency
  bbs::service::SocketServerOptions server_options;
  std::string listen_spec;
  std::string cache_dir;
  std::size_t cache_max_entries = 1024;
  std::uint64_t cache_max_bytes = 0;
  std::string trace_log_path;
  std::size_t trace_slow_ms = 0;
  std::size_t write_deadline_ms = 2000;
  std::size_t outbox_depth = 256;
  std::size_t max_in_flight = 0;
  std::size_t default_deadline_ms = 0;
  std::size_t queue_high_water = 0;
  double rps = 0.0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "option '%s' needs a value\n", arg);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::printf(kUsage, argv[0]);
      return 0;
    } else if (std::strcmp(arg, "--workers") == 0) {
      const char* v = value();
      if (v == nullptr || !parse_size(v, options.workers)) {
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
      }
    } else if (std::strcmp(arg, "--queue-depth") == 0) {
      const char* v = value();
      if (v == nullptr || !parse_size(v, options.queue_capacity) ||
          options.queue_capacity == 0) {
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
      }
    } else if (std::strcmp(arg, "--listen") == 0) {
      const char* v = value();
      if (v == nullptr) {
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
      }
      listen_spec = v;
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      const char* v = value();
      if (v == nullptr || v[0] == '\0') {
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
      }
      cache_dir = v;
    } else if (std::strcmp(arg, "--cache-max-entries") == 0) {
      const char* v = value();
      if (v == nullptr || !parse_size(v, cache_max_entries) ||
          cache_max_entries == 0) {
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
      }
    } else if (std::strcmp(arg, "--cache-max-bytes") == 0) {
      const char* v = value();
      if (v == nullptr || !parse_bytes(v, cache_max_bytes)) {
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
      }
    } else if (std::strcmp(arg, "--trace-slow-ms") == 0) {
      const char* v = value();
      if (v == nullptr || !parse_size(v, trace_slow_ms)) {
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
      }
    } else if (std::strcmp(arg, "--trace-log") == 0) {
      const char* v = value();
      if (v == nullptr || v[0] == '\0') {
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
      }
      trace_log_path = v;
    } else if (std::strcmp(arg, "--max-in-flight") == 0) {
      const char* v = value();
      if (v == nullptr || !parse_size(v, max_in_flight)) {
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
      }
    } else if (std::strcmp(arg, "--rps") == 0) {
      const char* v = value();
      if (v == nullptr || !parse_rate(v, rps)) {
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
      }
    } else if (std::strcmp(arg, "--default-deadline-ms") == 0) {
      const char* v = value();
      if (v == nullptr || !parse_size(v, default_deadline_ms)) {
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
      }
    } else if (std::strcmp(arg, "--queue-high-water") == 0) {
      const char* v = value();
      if (v == nullptr || !parse_size(v, queue_high_water)) {
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
      }
    } else if (std::strcmp(arg, "--write-deadline-ms") == 0) {
      const char* v = value();
      if (v == nullptr || !parse_size(v, write_deadline_ms) ||
          write_deadline_ms == 0) {
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
      }
    } else if (std::strcmp(arg, "--outbox-depth") == 0) {
      const char* v = value();
      if (v == nullptr || !parse_size(v, outbox_depth) || outbox_depth == 0) {
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
      }
    } else if (std::strcmp(arg, "--no-steal") == 0) {
      options.work_stealing = false;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg);
      std::fprintf(stderr, kUsage, argv[0]);
      return 1;
    }
  }

  // All runtime limits live in one shared, hot-reloadable config: the
  // command-line flags seed it, and a {"kind":"set_config"} control line on
  // any connection rewrites it for the whole daemon.
  auto runtime_config = std::make_shared<bbs::service::RuntimeConfig>();
  runtime_config->max_in_flight.store(max_in_flight);
  runtime_config->set_requests_per_second(rps);
  runtime_config->default_deadline_ms.store(default_deadline_ms);
  runtime_config->queue_high_water.store(queue_high_water);
  runtime_config->write_deadline_ms.store(
      static_cast<std::int64_t>(write_deadline_ms));

  server_options.write_deadline = std::chrono::milliseconds(write_deadline_ms);
  server_options.outbox_capacity = outbox_depth;
  server_options.max_in_flight = max_in_flight;
  server_options.requests_per_second = rps;
  server_options.runtime_config = runtime_config;

  if (!install_signal_handlers()) {
    std::fprintf(stderr, "cannot install signal handlers: %s\n",
                 std::strerror(errno));
    return 1;
  }

  try {
    // Deterministic chaos: BBS_FAILPOINTS arms the failpoints before any
    // worker starts; a typo'd spec is a startup error, not a silent no-op.
    bbs::service::FaultInjector::instance().configure_from_env();
    if (bbs::service::FaultInjector::instance().enabled()) {
      std::fprintf(
          stderr, "bbs_serve: fault injection armed: %s\n",
          bbs::service::FaultInjector::instance().describe().c_str());
    }
    // Telemetry and the optional persistent structure cache outlive the
    // dispatcher (declared first, destroyed last): worker engines record
    // into them while running, and the cache destructor drains pending
    // write-behind saves after the workers have stopped.
    bbs::telemetry::ServiceTelemetry telemetry;
    std::unique_ptr<bbs::telemetry::StructureCache> cache;
    if (!cache_dir.empty()) {
      cache = std::make_unique<bbs::telemetry::StructureCache>(
          cache_dir, cache_max_entries, cache_max_bytes);
      const std::size_t loaded = cache->load();
      const bbs::telemetry::StructureCacheStats cache_stats = cache->stats();
      std::fprintf(stderr,
                   "bbs_serve: structure cache '%s': %zu entries loaded, "
                   "%llu invalid entries skipped, %llu evicted by GC\n",
                   cache_dir.c_str(), loaded,
                   static_cast<unsigned long long>(cache_stats.load_errors),
                   static_cast<unsigned long long>(cache_stats.evictions));
    }
    // The trace ring and slow/error log follow the same lifetime rule as
    // the cache: declared before the dispatcher so worker completions can
    // still publish traces while the dispatcher drains.
    bbs::telemetry::TraceRing trace_ring;
    std::unique_ptr<bbs::telemetry::TraceLog> trace_log;
    if (!trace_log_path.empty()) {
      trace_log = std::make_unique<bbs::telemetry::TraceLog>(
          trace_log_path, static_cast<double>(trace_slow_ms));
      std::fprintf(stderr,
                   "bbs_serve: trace log '%s' (slow threshold %zu ms)\n",
                   trace_log_path.c_str(), trace_slow_ms);
    }
    options.telemetry = &telemetry;
    options.engine.structure_cache = cache.get();
    server_options.telemetry = &telemetry;
    server_options.structure_cache = cache.get();
    server_options.trace_ring = &trace_ring;
    server_options.trace_log = trace_log.get();

    bbs::service::Dispatcher dispatcher(options);
    if (cache != nullptr) {
      const bbs::service::ServiceStats startup = dispatcher.stats();
      if (startup.prewarmed_sessions > 0) {
        std::fprintf(
            stderr, "bbs_serve: pre-warmed %llu sessions from the cache\n",
            static_cast<unsigned long long>(startup.prewarmed_sessions));
      }
    }
    if (!listen_spec.empty()) {
      return serve_socket(dispatcher, bbs::service::parse_endpoint(listen_spec),
                          server_options);
    }
    bbs::service::SessionOptions session_options;
    session_options.max_in_flight = max_in_flight;
    session_options.requests_per_second = rps;
    session_options.runtime_config = runtime_config;
    session_options.telemetry = &telemetry;
    session_options.structure_cache = cache.get();
    session_options.trace_ring = &trace_ring;
    session_options.trace_log = trace_log.get();
    return serve_stdio(dispatcher, std::move(session_options));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bbs_serve: %s\n", e.what());
    return 1;
  }
}
