// Quickstart: the paper's producer-consumer task graph end to end.
//
// Builds the configuration of Section V (two tasks on two TDM-scheduled
// processors connected by one FIFO buffer), computes budgets and buffer
// capacity simultaneously with Algorithm 1, prints the allocation, verifies
// it with the independent max-cycle-ratio analysis, and finally executes the
// task graph on the TDM multiprocessor simulator to demonstrate that the
// required period is met.
//
//   $ ./quickstart
#include <cstdio>

#include "bbs/api/engine.hpp"
#include "bbs/sim/tdm_simulator.hpp"

int main() {
  using namespace bbs;

  // --- 1. Describe the platform and the job --------------------------------
  model::Configuration config(/*granularity=*/1);
  const auto p1 = config.add_processor("p1", /*replenishment=*/40.0);
  const auto p2 = config.add_processor("p2", 40.0);
  const auto mem = config.add_memory("m1");  // unconstrained capacity

  model::TaskGraph job("producer-consumer", /*required_period=*/10.0);
  const auto producer = job.add_task("producer", p1, /*wcet=*/1.0);
  const auto consumer = job.add_task("consumer", p2, 1.0);
  job.add_buffer("stream", producer, consumer, mem,
                 /*container_size=*/1, /*initial_fill=*/0,
                 /*size_weight=*/1e-3);  // buffers are cheap, budgets dear
  config.add_task_graph(std::move(job));

  // --- 2. Compute budgets and buffer sizes simultaneously ------------------
  // One typed request through the service API; repeated requests of the
  // same system would share the engine's pooled, warm solver session.
  api::Engine engine;
  api::Request request;
  request.payload = api::SolveRequest{config};
  const api::Response response = engine.run(request);
  if (response.status == api::ResponseStatus::kError) {
    std::printf("solve failed: %s\n", response.error.c_str());
    return 1;
  }
  const core::MappingResult& result =
      std::get<api::SolvePayload>(response.payload).mapping;
  if (!result.feasible()) {
    std::printf("no feasible allocation: %s\n",
                solver::to_string(result.status));
    return 1;
  }

  const core::MappedGraph& mapped = result.graphs[0];
  std::printf("allocation for '%s' (period requirement %.1f Mcycles):\n",
              config.task_graph(0).name().c_str(),
              config.task_graph(0).required_period());
  for (std::size_t t = 0; t < mapped.tasks.size(); ++t) {
    std::printf("  task %-9s budget = %2d Mcycles per %2.0f (continuous "
                "%.3f)\n",
                config.task_graph(0).task(static_cast<linalg::Index>(t))
                    .name.c_str(),
                static_cast<int>(mapped.tasks[t].budget),
                config.processor(0).replenishment_interval,
                mapped.tasks[t].budget_continuous);
  }
  for (std::size_t b = 0; b < mapped.buffers.size(); ++b) {
    std::printf("  buffer %-7s capacity = %d containers\n",
                config.task_graph(0).buffer(static_cast<linalg::Index>(b))
                    .name.c_str(),
                static_cast<int>(mapped.buffers[b].capacity));
  }

  // --- 3. Independent verification ------------------------------------------
  std::printf("dataflow verification: MCR = %.4f <= %.1f  [%s]\n",
              mapped.verification.mcr, mapped.verification.required_period,
              mapped.verification.throughput_met ? "ok" : "FAILED");

  // --- 4. Execute on the simulated TDM multiprocessor ----------------------
  const std::vector<linalg::Vector> budgets{
      {static_cast<double>(mapped.tasks[0].budget),
       static_cast<double>(mapped.tasks[1].budget)}};
  const std::vector<std::vector<linalg::Index>> capacities{
      {mapped.buffers[0].capacity}};
  const sim::SimResult sim = sim::simulate_tdm(config, budgets, capacities);
  std::printf("simulated steady-state period: %.4f Mcycles (requirement "
              "%.1f)  [%s]\n",
              sim.graphs[0].measured_period,
              config.task_graph(0).required_period(),
              sim.graphs[0].measured_period <=
                      config.task_graph(0).required_period() + 1e-9
                  ? "met"
                  : "MISSED");
  return 0;
}
