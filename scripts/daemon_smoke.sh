#!/usr/bin/env bash
# Daemon smoke: bbs_serve's stdio mode must produce the same responses as
# solve_cli --batch on a JSONL fixture, byte for byte modulo the wall-clock
# diagnostic (the only nondeterministic field). Run by the CI service job
# and the smoke_bbs_serve_stdio ctest.
#
# usage: daemon_smoke.sh <bbs_serve> <solve_cli> <batch.jsonl> [workers]
set -euo pipefail

BBS_SERVE=${1:?usage: daemon_smoke.sh <bbs_serve> <solve_cli> <batch.jsonl> [workers]}
SOLVE_CLI=${2:?missing solve_cli path}
BATCH=${3:?missing batch fixture path}
WORKERS=${4:-2}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

"$SOLVE_CLI" --batch "$BATCH" > "$workdir/cli.jsonl"
"$BBS_SERVE" --workers "$WORKERS" < "$BATCH" > "$workdir/serve.jsonl"

normalise() { sed -E 's/"wall_ms":[0-9.eE+-]+/"wall_ms":0/g' "$1"; }
normalise "$workdir/cli.jsonl" > "$workdir/cli.norm"
normalise "$workdir/serve.jsonl" > "$workdir/serve.norm"

if ! diff -u "$workdir/cli.norm" "$workdir/serve.norm"; then
  echo "daemon_smoke: bbs_serve stdio responses differ from solve_cli --batch" >&2
  exit 1
fi
echo "daemon_smoke: OK ($(wc -l < "$workdir/cli.jsonl") responses identical modulo wall_ms, $WORKERS workers)"
