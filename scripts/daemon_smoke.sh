#!/usr/bin/env bash
# Daemon smoke: bbs_serve must produce the same responses as solve_cli
# --batch on a JSONL fixture, byte for byte modulo the wall-clock
# diagnostic (the only nondeterministic field) — over stdio and, when a
# jsonl_client binary is supplied, over an AF_UNIX socket and a TCP socket
# too. Run by the CI service jobs and the smoke_bbs_serve_* ctests.
#
# usage: daemon_smoke.sh <bbs_serve> <solve_cli> <batch.jsonl> [workers] [jsonl_client]
set -euo pipefail

BBS_SERVE=${1:?usage: daemon_smoke.sh <bbs_serve> <solve_cli> <batch.jsonl> [workers] [jsonl_client]}
SOLVE_CLI=${2:?missing solve_cli path}
BATCH=${3:?missing batch fixture path}
WORKERS=${4:-2}
JSONL_CLIENT=${5:-}

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null && wait "$daemon_pid" 2>/dev/null
  rm -rf "$workdir"
}
trap cleanup EXIT

# One shared normaliser for every response comparison: zero the wall-clock
# diagnostics (the only nondeterministic numeric fields) and blank the
# per-request trace id. normalise_warm (restart leg) layers its extra
# session-provenance rules on top of the same base expression.
BASE_NORMALISE=(-E
  -e 's/"(wall_ms|queue_ms|solve_ms)":[0-9.eE+-]+/"\1":0/g'
  -e 's/"trace_id":"[0-9a-f]+"/"trace_id":"x"/g')
normalise() { sed "${BASE_NORMALISE[@]}" "$1"; }

"$SOLVE_CLI" --batch "$BATCH" > "$workdir/cli.jsonl"
normalise "$workdir/cli.jsonl" > "$workdir/cli.norm"

check() { # <label> <responses.jsonl>
  normalise "$2" > "$2.norm"
  if ! diff -u "$workdir/cli.norm" "$2.norm"; then
    echo "daemon_smoke: bbs_serve $1 responses differ from solve_cli --batch" >&2
    exit 1
  fi
  echo "daemon_smoke: $1 OK ($(wc -l < "$2") responses identical modulo wall_ms, $WORKERS workers)"
}

# All legs run --no-steal: the byte-identity contract relies on pure
# affinity routing (a steal runs a request on a cold peer engine, which
# legitimately changes warm-start diagnostics and continuous values).

# --- stdio mode -----------------------------------------------------------
"$BBS_SERVE" --workers "$WORKERS" --no-steal < "$BATCH" > "$workdir/stdio.jsonl"
check stdio "$workdir/stdio.jsonl"

# --- chaos leg (stdio): injected worker delay + hot-reloaded deadline -----
# A 200ms injected worker stall against a 50ms default deadline — installed
# over the wire via set_config, not a flag — must shed the queued solve with
# a structured deadline_exceeded error before any solver work runs, and the
# stats snapshot must account for the shed and echo the reloaded config.
{
  printf '{"kind":"set_config","id":"cfg-1","default_deadline_ms":50}\n'
  head -n 1 "$BATCH"
  printf '{"kind":"stats","id":"stats-1"}\n'
} > "$workdir/chaos_input.jsonl"
# Exit 2 is the stdio contract for "served, but some responses were
# errors" — exactly what the shed must produce. Anything else is a bug.
chaos_rc=0
BBS_FAILPOINTS='worker.delay_ms=200' \
  "$BBS_SERVE" --workers 1 --no-steal \
  < "$workdir/chaos_input.jsonl" > "$workdir/chaos.jsonl" || chaos_rc=$?
if [ "$chaos_rc" -ne 2 ]; then
  echo "daemon_smoke: chaos leg: expected exit 2 (error responses), got $chaos_rc" >&2
  exit 1
fi
grep -q '"applied":{"default_deadline_ms":50}' "$workdir/chaos.jsonl"
grep -q '"error_code":"deadline_exceeded"' "$workdir/chaos.jsonl"
grep -q '"deadline_shed":1' "$workdir/chaos.jsonl"
grep -q '"solves":0' "$workdir/chaos.jsonl"
echo "daemon_smoke: chaos OK (set_config reload + deadline shed before any solve)"

# --- garbage leg (stdio): malformed lines must not derail the stream ------
# A truncated JSON object, a 256 KiB overlong non-JSON line and a line of
# binary noise must each be answered in place with a structured
# error_code=parse response — one response per input line, in input order,
# with the well-formed request sandwiched between them still solved — and
# the daemon must exit with the documented "served with errors" code 2.
{
  printf '{"kind":"solve","id":"trunc","configuration":{\n'
  head -n 1 "$BATCH"
  printf 'x%.0s' $(seq 1 262144); printf '\n'
  printf '\x01\x02\xfe\x80\x7f{]garbage\xff\n'
} > "$workdir/garbage_input.jsonl"
garbage_rc=0
"$BBS_SERVE" --workers "$WORKERS" --no-steal \
  < "$workdir/garbage_input.jsonl" > "$workdir/garbage.jsonl" || garbage_rc=$?
if [ "$garbage_rc" -ne 2 ]; then
  echo "daemon_smoke: garbage leg: expected exit 2 (error responses), got $garbage_rc" >&2
  exit 1
fi
in_lines=$(wc -l < "$workdir/garbage_input.jsonl")
out_lines=$(wc -l < "$workdir/garbage.jsonl")
if [ "$in_lines" -ne "$out_lines" ]; then
  echo "daemon_smoke: garbage leg: $in_lines request lines but $out_lines responses" >&2
  exit 1
fi
parse_errors=$(grep -c '"error_code":"parse"' "$workdir/garbage.jsonl")
if [ "$parse_errors" -ne 3 ]; then
  echo "daemon_smoke: garbage leg: expected 3 parse errors, saw $parse_errors" >&2
  cat "$workdir/garbage.jsonl" >&2
  exit 1
fi
sed -n '2p' "$workdir/garbage.jsonl" | grep -q '"status":"ok"'
echo "daemon_smoke: garbage OK (3 parse errors in place, stream aligned, exit 2)"

# --- restart leg (stdio): persistent structure cache warm start -----------
# First run with --cache-dir derives every structure from scratch and
# writes the symbolic analyses behind; a restart against the same
# directory must pre-warm its pools from disk and serve the whole batch
# with zero symbolic factorisations, and its metrics exposition must carry
# latency percentiles.
{
  cat "$BATCH"
  printf '{"kind":"stats","id":"cold-stats"}\n'
} > "$workdir/restart_input.jsonl"
"$BBS_SERVE" --workers "$WORKERS" --no-steal --cache-dir "$workdir/cache" \
  < "$workdir/restart_input.jsonl" > "$workdir/cold.jsonl"
ls "$workdir/cache"/*.bbsc > /dev/null || {
  echo "daemon_smoke: restart leg: no cache files written" >&2
  exit 1
}
grep -q '"entries_loaded":0' "$workdir/cold.jsonl"
{
  cat "$BATCH"
  printf '{"kind":"stats","id":"warm-stats"}\n'
  printf '{"kind":"metrics","id":"warm-metrics"}\n'
} > "$workdir/restart_warm_input.jsonl"
"$BBS_SERVE" --workers "$WORKERS" --no-steal --cache-dir "$workdir/cache" \
  < "$workdir/restart_warm_input.jsonl" > "$workdir/warm.jsonl"
grep -q '"entries_loaded":[1-9]' "$workdir/warm.jsonl"
grep -q '"prewarmed_sessions":[1-9]' "$workdir/warm.jsonl"
if grep -q '"symbolic_factorisations":[1-9]' "$workdir/warm.jsonl"; then
  echo "daemon_smoke: restart leg: warm restart still ran symbolic factorisations" >&2
  grep -o '"symbolic_factorisations":[0-9]*' "$workdir/warm.jsonl" | sort | uniq -c >&2
  exit 1
fi
# Native Prometheus histogram exposition: the declared TYPE plus
# cumulative le-bucket samples (including the mandatory +Inf edge).
grep -q 'TYPE bbs_request_latency_ms histogram' "$workdir/warm.jsonl"
grep -q 'bbs_request_latency_ms_bucket' "$workdir/warm.jsonl"
grep -q 'le=\\"+Inf\\"' "$workdir/warm.jsonl"
# The warm batch answers must still agree with the CLI (timing and
# session-provenance diagnostics aside: a pre-warmed session legitimately
# reports session_reused=true and zero symbolic work).
head -n "$(wc -l < "$BATCH")" "$workdir/warm.jsonl" > "$workdir/warm_batch.jsonl"
normalise_warm() {
  sed "${BASE_NORMALISE[@]}" \
      -e 's/"session_reused":(true|false)/"session_reused":x/g' \
      -e 's/"symbolic_factorisations":[0-9]+/"symbolic_factorisations":x/g' "$1"
}
normalise_warm "$workdir/cli.jsonl" > "$workdir/cli.warmnorm"
normalise_warm "$workdir/warm_batch.jsonl" > "$workdir/warm_batch.norm"
if ! diff -u "$workdir/cli.warmnorm" "$workdir/warm_batch.norm"; then
  echo "daemon_smoke: restart leg: warm responses differ from solve_cli --batch" >&2
  exit 1
fi
echo "daemon_smoke: restart OK (cache written, pools pre-warmed, 0 symbolic factorisations, metrics exposition served)"

# --- trace leg (stdio): end-to-end spans for a slow traced request --------
# A request that opts into tracing, slowed past the 1ms slow threshold by
# an injected 100ms worker stall (counted as queue wait), must echo a
# trace id in its response line, be retrievable from the {"kind":"trace"}
# ring with queue/solve/write spans, and land in the slow-request log.
{
  head -n 1 "$BATCH" \
    | sed 's/"kind":"solve"/"kind":"solve","options":{"trace":true}/'
  printf '{"kind":"trace","id":"trace-probe","min_duration_ms":50}\n'
} > "$workdir/trace_input.jsonl"
BBS_FAILPOINTS='worker.delay_ms=100' \
  "$BBS_SERVE" --workers 1 --no-steal \
  --trace-slow-ms 1 --trace-log "$workdir/trace.log" \
  < "$workdir/trace_input.jsonl" > "$workdir/trace.jsonl"
trace_id=$(grep -o '"trace_id":"[0-9a-f]*"' "$workdir/trace.jsonl" \
  | head -n1 | cut -d'"' -f4)
if [ -z "$trace_id" ]; then
  echo "daemon_smoke: trace leg: response carries no trace_id" >&2
  cat "$workdir/trace.jsonl" >&2
  exit 1
fi
# The ring reply must return that trace with all three pipeline spans.
grep -q "\"id\":\"$trace_id\"" "$workdir/trace.jsonl"
grep -q '"name":"queue"' "$workdir/trace.jsonl"
grep -q '"name":"solve"' "$workdir/trace.jsonl"
grep -q '"name":"write"' "$workdir/trace.jsonl"
# The write-behind slow log drained at shutdown and holds the same trace.
grep -q "$trace_id" "$workdir/trace.log"
echo "daemon_smoke: trace OK (trace_id echoed, spans served from the ring, slow log written)"

[ -n "$JSONL_CLIENT" ] || exit 0

# Waits until the daemon logs its bound endpoint, then prints it.
wait_for_endpoint() { # <stderr-log>
  for _ in $(seq 1 100); do
    endpoint=$(sed -n 's/^bbs_serve: listening on //p' "$1" | head -n1)
    if [ -n "$endpoint" ]; then
      echo "$endpoint"
      return 0
    fi
    sleep 0.1
  done
  echo "daemon_smoke: daemon never reported its endpoint" >&2
  cat "$1" >&2
  return 1
}

run_socket_leg() { # <label> <listen-spec> <responses.jsonl>
  "$BBS_SERVE" --workers "$WORKERS" --no-steal --listen "$2" 2> "$workdir/$1.log" &
  daemon_pid=$!
  endpoint=$(wait_for_endpoint "$workdir/$1.log")
  "$JSONL_CLIENT" "$endpoint" < "$BATCH" > "$3"
  # Graceful stop: SIGTERM drains in-flight work before the daemon exits.
  kill -TERM "$daemon_pid"
  wait "$daemon_pid"
  daemon_pid=""
  check "$1" "$3"
}

# --- AF_UNIX socket mode --------------------------------------------------
run_socket_leg unix "unix:$workdir/bbs.sock" "$workdir/unix.jsonl"

# --- TCP socket mode (port 0: kernel-assigned, parsed from the log) -------
run_socket_leg tcp "tcp://127.0.0.1:0" "$workdir/tcp.jsonl"

# The two socket transports must agree with each other too (and both with
# the CLI, checked above).
diff "$workdir/unix.jsonl.norm" "$workdir/tcp.jsonl.norm" > /dev/null
echo "daemon_smoke: unix and tcp transports byte-identical modulo wall_ms"
