#!/usr/bin/env bash
# Reproducible perf workflow: runs the google-benchmark harness plus the
# figure-reproduction harnesses and writes their results into a baselines
# directory (committed under bench/baselines/ when refreshing the reference
# numbers — see README "Performance").
#
# Usage: scripts/run_bench.sh [build_dir] [out_dir]
#   build_dir  defaults to ./build
#   out_dir    defaults to ./bench/baselines
#
# Extra benchmark flags can be passed via BENCH_FLAGS, e.g.
#   BENCH_FLAGS=--benchmark_min_time=0.05 scripts/run_bench.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="${2:-$repo_root/bench/baselines}"
bench_dir="$build_dir/bench"

# Every harness that feeds the committed baselines must be present: a
# missing binary would silently leave a stale file in the baselines
# directory, so it is a hard error, not a skip.
missing=0
for bin in bench_runtime bench_fig2a bench_fig2b bench_fig3; do
  if [ ! -x "$bench_dir/$bin" ]; then
    echo "error: $bench_dir/$bin not built (build with BBS_BUILD_BENCH=ON" \
         "and google-benchmark installed)" >&2
    missing=1
  fi
done
[ "$missing" -eq 0 ] || exit 1

mkdir -p "$out_dir"

# Host metadata rides along with the numbers: the sharded-service
# benchmarks (BM_ServiceThroughput*) only scale past one worker when the
# host actually has the cores, so a flat curve is meaningless without this.
echo "== host metadata -> $out_dir/host.json"
{
  printf '{\n'
  printf '  "cpus_online": %s,\n' "$(getconf _NPROCESSORS_ONLN)"
  printf '  "uname": "%s"\n' "$(uname -srm)"
  printf '}\n'
} > "$out_dir/host.json"

echo "== bench_runtime -> $out_dir/runtime.json"
"$bench_dir/bench_runtime" \
  --benchmark_format=json \
  --benchmark_out="$out_dir/runtime.json" \
  --benchmark_out_format=json \
  ${BENCH_FLAGS:-}

for fig in fig2a fig2b fig3; do
  echo "== bench_$fig -> $out_dir/$fig.csv"
  "$bench_dir/bench_$fig" > "$out_dir/$fig.csv"
done

echo "Baselines written to $out_dir"
