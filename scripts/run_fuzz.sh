#!/usr/bin/env bash
# Rolling differential-fuzz driver: runs bbs_fuzz in fixed-size chunks with
# consecutive seeds until a wall-clock budget expires or a chunk fails.
# Each chunk is fully deterministic in its seed, so a nightly failure is
# reproducible locally with the seed printed below (and the shrunk JSON
# reproducer written to the corpus directory).
#
# usage: run_fuzz.sh <bbs_fuzz> [budget_seconds] [cases_per_chunk] [corpus_dir]
#
# The starting seed defaults to the current epoch second so repeated runs
# cover fresh ground; set RUN_FUZZ_SEED for a fixed stream.
set -euo pipefail

BBS_FUZZ=${1:?usage: run_fuzz.sh <bbs_fuzz> [budget_seconds] [cases_per_chunk] [corpus_dir]}
BUDGET=${2:-60}
CHUNK=${3:-200}
CORPUS=${4:-}
SEED=${RUN_FUZZ_SEED:-$(date +%s)}

start=$(date +%s)
total=0
chunks=0
while [ $(( $(date +%s) - start )) -lt "$BUDGET" ]; do
  args=(--seed "$SEED" --cases "$CHUNK")
  [ -n "$CORPUS" ] && args+=(--corpus "$CORPUS")
  echo "run_fuzz: chunk $chunks: seed $SEED, $CHUNK cases"
  if ! "$BBS_FUZZ" "${args[@]}"; then
    echo "run_fuzz: FAILURE at seed $SEED" \
         "(reproducers: ${CORPUS:-none requested})" >&2
    exit 1
  fi
  total=$(( total + CHUNK ))
  chunks=$(( chunks + 1 ))
  SEED=$(( SEED + 1 ))
done
echo "run_fuzz: $total cases across $chunks seeds" \
     "in $(( $(date +%s) - start ))s, all clean"
