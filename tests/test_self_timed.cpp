// Tests for self-timed SRDF execution: throughput convergence to the MCR and
// temporal monotonicity (Section II-B2 of the paper).
#include <gtest/gtest.h>

#include "bbs/common/assert.hpp"
#include "bbs/common/rng.hpp"
#include "bbs/dataflow/cycle_ratio.hpp"
#include "bbs/dataflow/self_timed.hpp"

namespace bbs::dataflow {
namespace {

SrdfGraph ring(const std::vector<double>& durations,
               const std::vector<Index>& tokens) {
  SrdfGraph g;
  for (std::size_t i = 0; i < durations.size(); ++i) {
    g.add_actor("v" + std::to_string(i), durations[i]);
  }
  for (std::size_t i = 0; i < durations.size(); ++i) {
    g.add_queue(static_cast<Index>(i),
                static_cast<Index>((i + 1) % durations.size()), tokens[i]);
  }
  return g;
}

TEST(SelfTimed, PeriodEqualsMcrOnSimpleRing) {
  const SrdfGraph g = ring({3.0, 2.0}, {1, 1});  // MCR = 5/2
  const SelfTimedResult r = self_timed_execution(g, 64);
  ASSERT_TRUE(r.deadlock_free);
  EXPECT_NEAR(r.measured_period, 2.5, 1e-9);
}

TEST(SelfTimed, PipelineWithMoreTokensIsFaster) {
  const SrdfGraph slow = ring({3.0, 2.0}, {0, 1});  // MCR 5
  const SrdfGraph fast = ring({3.0, 2.0}, {0, 3});  // MCR 5/3
  const double p_slow = self_timed_execution(slow, 64).measured_period;
  const double p_fast = self_timed_execution(fast, 64).measured_period;
  EXPECT_NEAR(p_slow, 5.0, 1e-9);
  EXPECT_NEAR(p_fast, 5.0 / 3.0, 1e-9);
}

TEST(SelfTimed, DeadlockReported) {
  const SrdfGraph g = ring({1.0, 1.0}, {0, 0});
  EXPECT_FALSE(self_timed_execution(g, 8).deadlock_free);
}

TEST(SelfTimed, StartTimesNonDecreasingPerActor) {
  const SrdfGraph g = ring({1.0, 4.0, 0.5}, {1, 1, 1});
  const SelfTimedResult r = self_timed_execution(g, 32);
  ASSERT_TRUE(r.deadlock_free);
  for (std::size_t v = 0; v < 3; ++v) {
    for (std::size_t k = 1; k < r.start_times.size(); ++k) {
      EXPECT_GE(r.start_times[k][v] + 1e-12, r.start_times[k - 1][v]);
    }
  }
}

TEST(SelfTimed, RespectsDependencies) {
  // a -> b with no initial tokens: sigma(b,k) >= sigma(a,k) + rho(a).
  SrdfGraph g;
  const Index a = g.add_actor("a", 2.0);
  const Index b = g.add_actor("b", 1.0);
  g.add_queue(a, b, 0);
  g.add_queue(b, a, 2);
  const SelfTimedResult r = self_timed_execution(g, 16);
  ASSERT_TRUE(r.deadlock_free);
  for (std::size_t k = 0; k < r.start_times.size(); ++k) {
    EXPECT_GE(r.start_times[k][static_cast<std::size_t>(b)] + 1e-12,
              r.start_times[k][static_cast<std::size_t>(a)] + 2.0);
  }
}

/// Property: self-timed throughput equals the MCR on random strongly
/// connected live graphs.
class SelfTimedVsMcr : public ::testing::TestWithParam<int> {};

TEST_P(SelfTimedVsMcr, SteadyStatePeriodMatches) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 911 + 1);
  for (int trial = 0; trial < 8; ++trial) {
    const Index n = static_cast<Index>(rng.next_int(2, 8));
    SrdfGraph g;
    for (Index v = 0; v < n; ++v) {
      g.add_actor("v", rng.next_real(0.5, 3.0));
    }
    for (Index v = 0; v < n; ++v) {
      g.add_queue(v, (v + 1) % n, static_cast<Index>(rng.next_int(1, 2)));
    }
    // A couple of chords with tokens.
    for (int e = 0; e < 2; ++e) {
      g.add_queue(static_cast<Index>(rng.next_int(0, n - 1)),
                  static_cast<Index>(rng.next_int(0, n - 1)),
                  static_cast<Index>(rng.next_int(1, 3)));
    }
    const double mcr = max_cycle_ratio_bisect(g, 1e-10);
    const SelfTimedResult r = self_timed_execution(g, 600, 300);
    ASSERT_TRUE(r.deadlock_free);
    EXPECT_NEAR(r.measured_period, mcr, 1e-5 * (1.0 + mcr))
        << "n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelfTimedVsMcr, ::testing::Range(0, 6));

/// Property: temporal monotonicity — shrinking one firing duration never
/// delays any start time (Section II-B2).
class Monotonicity : public ::testing::TestWithParam<int> {};

TEST_P(Monotonicity, ShorterDurationsNeverDelay) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 613 + 9);
  for (int trial = 0; trial < 8; ++trial) {
    const Index n = static_cast<Index>(rng.next_int(2, 7));
    SrdfGraph g;
    for (Index v = 0; v < n; ++v) {
      g.add_actor("v", rng.next_real(0.5, 3.0));
    }
    for (Index v = 0; v < n; ++v) {
      g.add_queue(v, (v + 1) % n, static_cast<Index>(rng.next_int(1, 2)));
    }
    const SelfTimedResult before = self_timed_execution(g, 50);
    ASSERT_TRUE(before.deadlock_free);

    SrdfGraph faster = g;
    const Index victim = static_cast<Index>(rng.next_int(0, n - 1));
    faster.set_firing_duration(
        victim, g.actor(victim).firing_duration * rng.next_real(0.1, 0.9));
    const SelfTimedResult after = self_timed_execution(faster, 50);
    ASSERT_TRUE(after.deadlock_free);

    for (std::size_t k = 0; k < before.start_times.size(); ++k) {
      for (std::size_t v = 0; v < static_cast<std::size_t>(n); ++v) {
        EXPECT_LE(after.start_times[k][v],
                  before.start_times[k][v] + 1e-12);
      }
    }
  }
}

TEST_P(Monotonicity, MoreTokensNeverDelay) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 4);
  for (int trial = 0; trial < 8; ++trial) {
    const Index n = static_cast<Index>(rng.next_int(2, 7));
    SrdfGraph g;
    for (Index v = 0; v < n; ++v) {
      g.add_actor("v", rng.next_real(0.5, 3.0));
    }
    for (Index v = 0; v < n; ++v) {
      g.add_queue(v, (v + 1) % n, static_cast<Index>(rng.next_int(1, 2)));
    }
    const SelfTimedResult before = self_timed_execution(g, 50);
    ASSERT_TRUE(before.deadlock_free);

    SrdfGraph more = g;
    const Index victim = static_cast<Index>(rng.next_int(0, n - 1));
    more.set_initial_tokens(victim, g.queue(victim).initial_tokens + 1);
    const SelfTimedResult after = self_timed_execution(more, 50);
    ASSERT_TRUE(after.deadlock_free);

    for (std::size_t k = 0; k < before.start_times.size(); ++k) {
      for (std::size_t v = 0; v < static_cast<std::size_t>(n); ++v) {
        EXPECT_LE(after.start_times[k][v],
                  before.start_times[k][v] + 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Monotonicity, ::testing::Range(0, 6));

TEST(SelfTimed, RejectsBadIterationCount) {
  SrdfGraph g;
  g.add_actor("a", 1.0);
  EXPECT_THROW(self_timed_execution(g, 0), ContractViolation);
}

}  // namespace
}  // namespace bbs::dataflow
