// Tests for the conic problem container and its row-oriented builder.
#include <gtest/gtest.h>

#include "bbs/common/assert.hpp"
#include "bbs/solver/conic_problem.hpp"

namespace bbs::solver {
namespace {

TEST(ConicProblemBuilder, BuildsLpRows) {
  ConicProblemBuilder b(2);
  b.set_objective(0, 1.0);
  b.set_objective(1, -2.0);
  b.add_inequality({{0, 1.0}, {1, 2.0}}, 3.0);
  b.add_inequality({{1, -1.0}}, 0.0);
  const ConicProblem p = b.build();

  EXPECT_EQ(p.num_vars(), 2);
  EXPECT_EQ(p.num_rows(), 2);
  EXPECT_EQ(p.cone().nonneg(), 2);
  EXPECT_TRUE(p.cone().soc_dims().empty());
  EXPECT_DOUBLE_EQ(p.c()[0], 1.0);
  EXPECT_DOUBLE_EQ(p.c()[1], -2.0);
  EXPECT_DOUBLE_EQ(p.h()[0], 3.0);

  const auto dense = p.g().to_dense();
  EXPECT_DOUBLE_EQ(dense(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(dense(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(dense(1, 1), -1.0);
}

TEST(ConicProblemBuilder, BuildsSocBlocks) {
  ConicProblemBuilder b(2);
  b.add_inequality({{0, 1.0}}, 1.0);
  b.begin_soc(3);
  b.soc_row({{0, -1.0}, {1, -1.0}}, 0.0);
  b.soc_row({{0, -1.0}, {1, 1.0}}, 0.0);
  b.soc_row({}, 2.0);
  const ConicProblem p = b.build();
  EXPECT_EQ(p.cone().nonneg(), 1);
  ASSERT_EQ(p.cone().soc_dims().size(), 1u);
  EXPECT_EQ(p.cone().soc_dims()[0], 3);
  EXPECT_EQ(p.num_rows(), 4);
  EXPECT_DOUBLE_EQ(p.h()[3], 2.0);
}

TEST(ConicProblemBuilder, LpAfterSocRejected) {
  ConicProblemBuilder b(1);
  b.begin_soc(2);
  b.soc_row({{0, 1.0}}, 0.0);
  b.soc_row({{0, -1.0}}, 0.0);
  EXPECT_THROW(b.add_inequality({{0, 1.0}}, 1.0), ContractViolation);
}

TEST(ConicProblemBuilder, UnfinishedSocRejected) {
  ConicProblemBuilder b(1);
  b.begin_soc(3);
  b.soc_row({{0, 1.0}}, 0.0);
  EXPECT_THROW(b.build(), ModelError);
  EXPECT_THROW(b.begin_soc(2), ContractViolation);
}

TEST(ConicProblemBuilder, VariableRangeChecked) {
  ConicProblemBuilder b(1);
  EXPECT_THROW(b.set_objective(1, 1.0), ContractViolation);
  EXPECT_THROW(b.add_inequality({{1, 1.0}}, 0.0), ContractViolation);
  EXPECT_THROW(b.soc_row({{0, 1.0}}, 0.0), ContractViolation);
}

TEST(ConicProblem, ResidualEvaluation) {
  ConicProblemBuilder b(1);
  b.set_objective(0, 2.0);
  b.add_inequality({{0, 1.0}}, 1.0);
  const ConicProblem p = b.build();

  // x = 0.5, s = 0.5: primal feasible exactly.
  EXPECT_NEAR(p.primal_residual({0.5}, {0.5}), 0.0, 1e-15);
  EXPECT_NEAR(p.primal_residual({0.5}, {0.0}), 0.5, 1e-15);
  // z = 2 makes G'z + c = 1*2 + 2 = 4.
  EXPECT_NEAR(p.dual_residual({2.0}), 4.0, 1e-15);
  EXPECT_DOUBLE_EQ(p.objective({3.0}), 6.0);
}

TEST(ConicProblem, DimensionMismatchRejected) {
  linalg::TripletList t(2, 1);
  t.add(0, 0, 1.0);
  const auto g = linalg::SparseMatrix::from_triplets(t);
  EXPECT_THROW(
      ConicProblem({1.0}, g, {1.0}, ConeSpec(2, {})),  // |h| != rows is fine;
      ContractViolation);                              // here |h|=1 vs rows=2
}

}  // namespace
}  // namespace bbs::solver
