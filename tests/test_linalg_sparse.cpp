// Tests for sparse matrices and the sparse LDL^T factorisation, including
// randomised cross-checks against the dense reference implementations.
#include <gtest/gtest.h>

#include <cmath>

#include "bbs/common/assert.hpp"
#include "bbs/common/rng.hpp"
#include "bbs/linalg/dense_cholesky.hpp"
#include "bbs/linalg/sparse_ldlt.hpp"
#include "bbs/linalg/sparse_matrix.hpp"

namespace bbs::linalg {
namespace {

SparseMatrix small_matrix() {
  // [1 0 2]
  // [0 3 0]
  // [4 0 5]
  TripletList t(3, 3);
  t.add(0, 0, 1.0);
  t.add(0, 2, 2.0);
  t.add(1, 1, 3.0);
  t.add(2, 0, 4.0);
  t.add(2, 2, 5.0);
  return SparseMatrix::from_triplets(t);
}

TEST(SparseMatrix, TripletCompressionSumsDuplicates) {
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.5);
  t.add(1, 1, -1.0);
  const SparseMatrix m = SparseMatrix::from_triplets(t);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.to_dense()(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.to_dense()(1, 1), -1.0);
}

TEST(SparseMatrix, ColumnsSortedAfterCompression) {
  TripletList t(4, 1);
  t.add(3, 0, 1.0);
  t.add(0, 0, 2.0);
  t.add(2, 0, 3.0);
  const SparseMatrix m = SparseMatrix::from_triplets(t);
  ASSERT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.row_ind()[0], 0);
  EXPECT_EQ(m.row_ind()[1], 2);
  EXPECT_EQ(m.row_ind()[2], 3);
}

TEST(SparseMatrix, OutOfRangeTripletThrows) {
  TripletList t(2, 2);
  EXPECT_THROW(t.add(2, 0, 1.0), ContractViolation);
  EXPECT_THROW(t.add(0, -1, 1.0), ContractViolation);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  const SparseMatrix m = small_matrix();
  const Vector x{1.0, 2.0, 3.0};
  const Vector y = m.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 19.0);
  const Vector yt = m.multiply_transpose(x);
  EXPECT_DOUBLE_EQ(yt[0], 13.0);
  EXPECT_DOUBLE_EQ(yt[1], 6.0);
  EXPECT_DOUBLE_EQ(yt[2], 17.0);
}

TEST(SparseMatrix, TransposeRoundTrip) {
  const SparseMatrix m = small_matrix();
  const SparseMatrix mtt = m.transpose().transpose();
  const DenseMatrix a = m.to_dense();
  const DenseMatrix b = mtt.to_dense();
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(a(i, j), b(i, j));
}

TEST(SparseMatrix, RandomSpGemmMatchesDense) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const Index m = static_cast<Index>(rng.next_int(1, 10));
    const Index k = static_cast<Index>(rng.next_int(1, 10));
    const Index n = static_cast<Index>(rng.next_int(1, 10));
    TripletList ta(m, k);
    TripletList tb(k, n);
    for (int e = 0; e < 25; ++e) {
      ta.add(static_cast<Index>(rng.next_int(0, m - 1)),
             static_cast<Index>(rng.next_int(0, k - 1)),
             rng.next_real(-2.0, 2.0));
      tb.add(static_cast<Index>(rng.next_int(0, k - 1)),
             static_cast<Index>(rng.next_int(0, n - 1)),
             rng.next_real(-2.0, 2.0));
    }
    const SparseMatrix a = SparseMatrix::from_triplets(ta);
    const SparseMatrix b = SparseMatrix::from_triplets(tb);
    const DenseMatrix ref = a.to_dense().multiply(b.to_dense());
    const DenseMatrix got = a.multiply(b).to_dense();
    for (std::size_t i = 0; i < static_cast<std::size_t>(m); ++i) {
      for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j) {
        EXPECT_NEAR(got(i, j), ref(i, j), 1e-12);
      }
    }
  }
}

TEST(SparseMatrix, PermuteSymmetric) {
  // Symmetric matrix with distinct entries; permuting twice with p and its
  // inverse must give the original back.
  TripletList t(3, 3);
  t.add(0, 0, 1.0);
  t.add(1, 1, 2.0);
  t.add(2, 2, 3.0);
  t.add(0, 1, 4.0);
  t.add(1, 0, 4.0);
  const SparseMatrix m = SparseMatrix::from_triplets(t);
  const std::vector<Index> perm{2, 0, 1};  // perm[new] = old
  const SparseMatrix p = m.permute_symmetric(perm);
  // New index of old 0 is 1: entry (0,0)=1 moves to (1,1).
  EXPECT_DOUBLE_EQ(p.to_dense()(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(p.to_dense()(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(p.to_dense()(1, 2), 4.0);
}

/// Random sparse SPD matrix as A = B B' + n I over a random sparse B.
SparseMatrix random_spd(Rng& rng, Index n, int extra_entries) {
  TripletList tb(n, n);
  for (Index i = 0; i < n; ++i) tb.add(i, i, rng.next_real(0.5, 2.0));
  for (int e = 0; e < extra_entries; ++e) {
    tb.add(static_cast<Index>(rng.next_int(0, n - 1)),
           static_cast<Index>(rng.next_int(0, n - 1)),
           rng.next_real(-1.0, 1.0));
  }
  const SparseMatrix b = SparseMatrix::from_triplets(tb);
  SparseMatrix a = b.multiply(b.transpose());
  TripletList ta(n, n);
  for (Index c = 0; c < n; ++c) {
    for (Index k = a.col_ptr()[c]; k < a.col_ptr()[c + 1]; ++k) {
      ta.add(a.row_ind()[k], c, a.values()[k]);
    }
    ta.add(c, c, static_cast<double>(n));
  }
  return SparseMatrix::from_triplets(ta);
}

class SparseLdltOrderings
    : public ::testing::TestWithParam<OrderingMethod> {};

TEST_P(SparseLdltOrderings, RandomSpdSolvesMatchDense) {
  Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    const Index n = static_cast<Index>(rng.next_int(2, 25));
    const SparseMatrix a = random_spd(rng, n, 3 * n);

    Vector x_true(static_cast<std::size_t>(n));
    for (auto& v : x_true) v = rng.next_real(-3.0, 3.0);
    Vector b = a.multiply(x_true);

    SparseLdlt::Options opts;
    opts.ordering = GetParam();
    SparseLdlt f(a, opts);
    f.solve(b);
    for (std::size_t i = 0; i < x_true.size(); ++i) {
      EXPECT_NEAR(b[i], x_true[i], 1e-8) << "ordering "
                                         << ordering_name(GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrderings, SparseLdltOrderings,
                         ::testing::Values(OrderingMethod::kNatural,
                                           OrderingMethod::kReverseCuthillMcKee,
                                           OrderingMethod::kMinimumDegree));

TEST(SparseLdlt, RefinementReducesResidual) {
  Rng rng(23);
  const Index n = 30;
  const SparseMatrix a = random_spd(rng, n, 60);
  Vector b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.next_real(-1.0, 1.0);

  SparseLdlt f(a);
  const Vector x = f.solve_refined(a, b, 3);
  Vector r = b;
  a.gaxpy(-1.0, x, r);
  EXPECT_LT(norm_inf(r), 1e-10);
}

TEST(SparseLdlt, IndefiniteDiagonalAllowedWhenRequested) {
  // diag(2, -3) is quasi-definite; LDL^T factors it without pivoting.
  TripletList t(2, 2);
  t.add(0, 0, 2.0);
  t.add(1, 1, -3.0);
  const SparseMatrix a = SparseMatrix::from_triplets(t);
  SparseLdlt f(a);
  EXPECT_EQ(f.negative_pivots(), 1);

  SparseLdlt::Options opts;
  opts.allow_indefinite = false;
  EXPECT_THROW((SparseLdlt{a, opts}), NumericalError);
}

TEST(SparseLdlt, SingularThrows) {
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  t.add(1, 1, 1.0);
  const SparseMatrix a = SparseMatrix::from_triplets(t);
  EXPECT_THROW(SparseLdlt{a}, NumericalError);
}

TEST(SparseMatrix, CachedSpGemmMatchesFreshProduct) {
  Rng rng(67);
  for (int trial = 0; trial < 10; ++trial) {
    const Index m = static_cast<Index>(rng.next_int(2, 10));
    const Index k = static_cast<Index>(rng.next_int(2, 10));
    const Index n = static_cast<Index>(rng.next_int(2, 10));
    TripletList ta(m, k);
    TripletList tb(k, n);
    for (int e = 0; e < 25; ++e) {
      ta.add(static_cast<Index>(rng.next_int(0, m - 1)),
             static_cast<Index>(rng.next_int(0, k - 1)),
             rng.next_real(-2.0, 2.0));
      tb.add(static_cast<Index>(rng.next_int(0, k - 1)),
             static_cast<Index>(rng.next_int(0, n - 1)),
             rng.next_real(-2.0, 2.0));
    }
    SparseMatrix a = SparseMatrix::from_triplets(ta);
    SparseMatrix b = SparseMatrix::from_triplets(tb);
    CachedSpGemm cached(a, b);

    // Change values (pattern untouched) and recompute in place: the result
    // must match a from-scratch product entry for entry.
    for (double& v : a.values()) v = rng.next_real(-2.0, 2.0);
    for (double& v : b.values()) v = rng.next_real(-2.0, 2.0);
    cached.multiply(a, b);
    const DenseMatrix ref = a.multiply(b).to_dense();
    const DenseMatrix got = cached.result().to_dense();
    for (std::size_t i = 0; i < static_cast<std::size_t>(m); ++i) {
      for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j) {
        EXPECT_NEAR(got(i, j), ref(i, j), 1e-12);
      }
    }
  }
}

TEST(SparseMatrix, CachedSpGemmRejectsPatternChange) {
  const SparseMatrix a = small_matrix();
  CachedSpGemm cached(a, a);
  TripletList t(3, 3);
  t.add(0, 0, 1.0);  // fewer entries than small_matrix
  const SparseMatrix changed = SparseMatrix::from_triplets(t);
  EXPECT_THROW(cached.multiply(a, changed), ContractViolation);
  EXPECT_THROW(cached.multiply(changed, a), ContractViolation);

  // Same shape and nnz, different pattern: must also be rejected.
  TripletList t2(3, 3);
  t2.add(0, 1, 1.0);
  t2.add(1, 0, 1.0);
  t2.add(1, 1, 1.0);
  t2.add(1, 2, 1.0);
  t2.add(2, 1, 1.0);
  const SparseMatrix moved = SparseMatrix::from_triplets(t2);
  ASSERT_EQ(moved.nnz(), a.nnz());
  EXPECT_THROW(cached.multiply(a, moved), ContractViolation);
  EXPECT_THROW(cached.multiply(moved, a), ContractViolation);
}

TEST(SparseMatrix, CachedSpGemmIncludeDiagonalKeepsRegularisationSlots) {
  // Product with a structurally empty diagonal: include_diagonal must add
  // explicit zero slots there, so regularisation never changes the pattern.
  TripletList t(2, 2);
  t.add(1, 0, 1.0);
  t.add(0, 1, 1.0);
  const SparseMatrix offdiag = SparseMatrix::from_triplets(t);
  const SparseMatrix ident = SparseMatrix::identity(2);
  const CachedSpGemm without(offdiag, ident);
  EXPECT_EQ(without.result().nnz(), 2);
  const CachedSpGemm with(offdiag, ident, /*include_diagonal=*/true);
  EXPECT_EQ(with.result().nnz(), 4);
  EXPECT_DOUBLE_EQ(with.result().to_dense()(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(with.result().to_dense()(0, 1), 1.0);
}

/// Same pattern as `a`, different values, still symmetric and SPD: scales
/// all entries and strengthens the diagonal.
SparseMatrix perturbed_spd(const SparseMatrix& a) {
  SparseMatrix b = a;
  for (double& v : b.values()) v *= 0.75;
  for (Index c = 0; c < b.cols(); ++c) {
    for (Index k = b.col_ptr()[c]; k < b.col_ptr()[c + 1]; ++k) {
      if (b.row_ind()[k] == c) b.values()[k] += 1.0 + 0.1 * c;
    }
  }
  return b;
}

TEST(SparseLdlt, RefactorMatchesFreshFactorisationBitExact) {
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    const Index n = static_cast<Index>(rng.next_int(3, 25));
    const SparseMatrix a = random_spd(rng, n, 3 * n);
    SparseLdlt f(a);
    EXPECT_EQ(f.numeric_count(), 1);

    const SparseMatrix b = perturbed_spd(a);
    f.refactor(b);
    EXPECT_EQ(f.numeric_count(), 2);

    // A from-scratch factorisation of b under the same permutation must
    // produce bit-identical L and D.
    SparseLdlt::Options opts;
    opts.fixed_permutation = &f.permutation();
    const SparseLdlt fresh(b, opts);
    ASSERT_EQ(f.factor_col_ptr(), fresh.factor_col_ptr());
    ASSERT_EQ(f.factor_row_ind(), fresh.factor_row_ind());
    ASSERT_EQ(f.factor_values().size(), fresh.factor_values().size());
    for (std::size_t k = 0; k < f.factor_values().size(); ++k) {
      EXPECT_EQ(f.factor_values()[k], fresh.factor_values()[k]) << "k=" << k;
    }
    for (std::size_t k = 0; k < f.diagonal().size(); ++k) {
      EXPECT_EQ(f.diagonal()[k], fresh.diagonal()[k]) << "k=" << k;
    }
  }
}

TEST(SparseLdlt, RefactorSolvesTheNewMatrix) {
  Rng rng(43);
  const Index n = 20;
  const SparseMatrix a = random_spd(rng, n, 40);
  SparseLdlt f(a);
  const SparseMatrix b = perturbed_spd(a);
  f.refactor(b);

  Vector x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.next_real(-3.0, 3.0);
  Vector rhs = b.multiply(x_true);
  f.solve(rhs);
  for (std::size_t i = 0; i < x_true.size(); ++i) {
    EXPECT_NEAR(rhs[i], x_true[i], 1e-8);
  }
}

TEST(SparseLdlt, RefactorRejectsPatternChange) {
  Rng rng(47);
  const SparseMatrix a = random_spd(rng, 10, 20);
  SparseLdlt f(a);

  // Same dimension, different pattern: diagonal only.
  TripletList t(10, 10);
  for (Index i = 0; i < 10; ++i) t.add(i, i, 2.0);
  const SparseMatrix diag = SparseMatrix::from_triplets(t);
  EXPECT_THROW(f.refactor(diag), ContractViolation);

  // Different dimension.
  TripletList t2(11, 11);
  for (Index i = 0; i < 11; ++i) t2.add(i, i, 2.0);
  EXPECT_THROW(f.refactor(SparseMatrix::from_triplets(t2)),
               ContractViolation);

  // The failed calls must not have corrupted the factorisation.
  Vector x_true(10, 1.0);
  Vector rhs = a.multiply(x_true);
  f.solve(rhs);
  for (std::size_t i = 0; i < x_true.size(); ++i) {
    EXPECT_NEAR(rhs[i], x_true[i], 1e-8);
  }
}

TEST(SparseLdlt, RefactorAfterFailedNumericPassRecovers) {
  // A refactor attempt that dies on a small pivot must leave the workspaces
  // clean enough that a later refactor of a good matrix succeeds exactly.
  Rng rng(53);
  const Index n = 12;
  const SparseMatrix a = random_spd(rng, n, 24);
  SparseLdlt f(a);

  SparseMatrix singular = a;
  for (double& v : singular.values()) v = 0.0;
  EXPECT_THROW(f.refactor(singular), NumericalError);

  // The half-updated factor is poisoned: solving now must throw rather than
  // silently mix old and new columns.
  Vector rhs(static_cast<std::size_t>(n), 1.0);
  EXPECT_THROW(f.solve(rhs), ContractViolation);

  const SparseMatrix b = perturbed_spd(a);
  f.refactor(b);
  SparseLdlt::Options opts;
  opts.fixed_permutation = &f.permutation();
  const SparseLdlt fresh(b, opts);
  for (std::size_t k = 0; k < f.factor_values().size(); ++k) {
    EXPECT_EQ(f.factor_values()[k], fresh.factor_values()[k]);
  }
}

TEST(SparseLdlt, FactorNnzBoundedByDenseTriangle) {
  Rng rng(9);
  const Index n = 20;
  const SparseMatrix a = random_spd(rng, n, 40);
  SparseLdlt f(a);
  EXPECT_LE(f.factor_nnz(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace bbs::linalg
