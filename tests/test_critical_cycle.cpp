// Tests for critical-cycle extraction: the returned cycle must be a real
// directed cycle whose ratio equals the MCR, on hand-built and random graphs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "bbs/common/rng.hpp"
#include "bbs/dataflow/cycle_ratio.hpp"

namespace bbs::dataflow {
namespace {

/// Verifies the structural cycle property and recomputes its ratio.
double cycle_ratio_of(const SrdfGraph& g, const std::vector<Index>& queues) {
  EXPECT_FALSE(queues.empty());
  double duration = 0.0;
  double tokens = 0.0;
  for (std::size_t i = 0; i < queues.size(); ++i) {
    const Queue& q = g.queue(queues[i]);
    const Queue& next = g.queue(queues[(i + 1) % queues.size()]);
    EXPECT_EQ(q.to, next.from) << "queues do not chain into a cycle";
    duration += g.actor(q.from).firing_duration;
    tokens += static_cast<double>(q.initial_tokens);
  }
  return tokens > 0.0 ? duration / tokens
                      : std::numeric_limits<double>::infinity();
}

TEST(CriticalCycle, SimpleTwoActorCycle) {
  SrdfGraph g;
  const Index a = g.add_actor("a", 3.0);
  const Index b = g.add_actor("b", 2.0);
  g.add_queue(a, b, 0);
  g.add_queue(b, a, 1);
  const CriticalCycle c = critical_cycle(g);
  EXPECT_NEAR(c.ratio, 5.0, 1e-8);
  EXPECT_EQ(c.queues.size(), 2u);
  EXPECT_NEAR(cycle_ratio_of(g, c.queues), 5.0, 1e-12);
}

TEST(CriticalCycle, PicksTheWorstOfTwoCycles) {
  SrdfGraph g;
  const Index a = g.add_actor("a", 2.0);   // self loop: ratio 2
  g.add_queue(a, a, 1);
  const Index b = g.add_actor("b", 3.0);
  const Index c = g.add_actor("c", 4.0);
  g.add_queue(b, c, 1);
  g.add_queue(c, b, 1);                    // ratio 3.5
  const CriticalCycle crit = critical_cycle(g);
  EXPECT_NEAR(crit.ratio, 3.5, 1e-8);
  EXPECT_NEAR(cycle_ratio_of(g, crit.queues), 3.5, 1e-12);
}

TEST(CriticalCycle, SelfLoopExtracted) {
  SrdfGraph g;
  const Index a = g.add_actor("a", 7.0);
  g.add_queue(a, a, 2);  // ratio 3.5
  const CriticalCycle crit = critical_cycle(g);
  EXPECT_NEAR(crit.ratio, 3.5, 1e-8);
  ASSERT_EQ(crit.queues.size(), 1u);
  EXPECT_EQ(crit.queues[0], 0);
}

TEST(CriticalCycle, AcyclicReturnsEmpty) {
  SrdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  const Index b = g.add_actor("b", 1.0);
  g.add_queue(a, b, 3);
  const CriticalCycle crit = critical_cycle(g);
  EXPECT_EQ(crit.ratio, 0.0);
  EXPECT_TRUE(crit.queues.empty());
}

TEST(CriticalCycle, DeadlockReturnsZeroTokenCycle) {
  SrdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  const Index b = g.add_actor("b", 1.0);
  g.add_queue(a, b, 0);
  g.add_queue(b, a, 0);
  g.add_queue(a, a, 1);  // live self loop must not distract
  const CriticalCycle crit = critical_cycle(g);
  EXPECT_TRUE(std::isinf(crit.ratio));
  ASSERT_FALSE(crit.queues.empty());
  double tokens = 0.0;
  for (const Index qid : crit.queues) {
    tokens += static_cast<double>(g.queue(qid).initial_tokens);
  }
  EXPECT_EQ(tokens, 0.0);
  cycle_ratio_of(g, crit.queues);  // structural check
}

class CriticalCycleRandom : public ::testing::TestWithParam<int> {};

TEST_P(CriticalCycleRandom, CycleAttainsTheMcr) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 5857 + 17);
  for (int trial = 0; trial < 12; ++trial) {
    const Index n = static_cast<Index>(rng.next_int(2, 12));
    SrdfGraph g;
    for (Index v = 0; v < n; ++v) {
      g.add_actor("v", rng.next_real(0.2, 4.0));
    }
    for (Index v = 0; v < n; ++v) {
      g.add_queue(v, (v + 1) % n, static_cast<Index>(rng.next_int(1, 3)));
    }
    for (Index e = 0; e < n; ++e) {
      g.add_queue(static_cast<Index>(rng.next_int(0, n - 1)),
                  static_cast<Index>(rng.next_int(0, n - 1)),
                  static_cast<Index>(rng.next_int(1, 4)));
    }
    const double mcr = max_cycle_ratio_bisect(g, 1e-11);
    const CriticalCycle crit = critical_cycle(g);
    ASSERT_FALSE(crit.queues.empty());
    const double recomputed = cycle_ratio_of(g, crit.queues);
    EXPECT_NEAR(recomputed, mcr, 1e-6 * (1.0 + mcr))
        << "n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CriticalCycleRandom, ::testing::Range(0, 8));

}  // namespace
}  // namespace bbs::dataflow
