// Cross-module integration tests: the full pipeline
//   generator -> Algorithm-1 SOCP -> rounding -> MCR verification
//   -> TDM simulation
// on multi-job systems and generated families, plus agreement between the
// analytic model and the simulator.
#include <gtest/gtest.h>

#include <algorithm>

#include "bbs/core/budget_buffer_solver.hpp"
#include "bbs/core/two_phase.hpp"
#include "bbs/dataflow/self_timed.hpp"
#include "bbs/gen/generators.hpp"
#include "bbs/io/config_io.hpp"
#include "bbs/sim/tdm_simulator.hpp"
#include "testing/support.hpp"

namespace bbs {
namespace {

using core::MappingResult;
using linalg::Index;
using linalg::Vector;

/// Runs the full pipeline and checks every stage's contract.
void check_full_pipeline(const model::Configuration& config) {
  const MappingResult r = core::compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible());
  ASSERT_TRUE(r.verified);

  std::vector<Vector> budgets;
  std::vector<std::vector<Index>> caps;
  for (std::size_t gi = 0; gi < r.graphs.size(); ++gi) {
    Vector b;
    std::vector<Index> c;
    for (const auto& t : r.graphs[gi].tasks) {
      b.push_back(static_cast<double>(t.budget));
    }
    for (const auto& buf : r.graphs[gi].buffers) c.push_back(buf.capacity);
    budgets.push_back(std::move(b));
    caps.push_back(std::move(c));
  }

  // The dataflow model is conservative. Two checks:
  //  (1) the per-execution PAS bound, exact at every k (no steady state
  //      required);
  //  (2) the measured period against the requirement, with a slack that
  //      covers finite-window bias when the (bursty) periodic regime is
  //      longer than the observation window.
  sim::SimOptions sim_opts;
  sim_opts.iterations = 2048;
  sim_opts.warmup = 512;
  const sim::SimResult s = sim::simulate_tdm(config, budgets, caps, sim_opts);
  double max_wheel = 0.0;
  for (Index p = 0; p < config.num_processors(); ++p) {
    max_wheel = std::max(max_wheel,
                         config.processor(p).replenishment_interval);
  }
  const double slack =
      3.0 * max_wheel / (sim_opts.iterations - sim_opts.warmup);
  for (std::size_t gi = 0; gi < s.graphs.size(); ++gi) {
    ASSERT_FALSE(s.graphs[gi].deadlocked);
    EXPECT_TRUE(core::simulation_within_pas_bound(
        config, static_cast<Index>(gi), budgets[gi], caps[gi], s.graphs[gi]))
        << config.task_graph(static_cast<Index>(gi)).name();
    EXPECT_LE(s.graphs[gi].measured_period,
              config.task_graph(static_cast<Index>(gi)).required_period() +
                  slack)
        << config.task_graph(static_cast<Index>(gi)).name();
  }
}

TEST(Integration, PaperT1FullPipeline) {
  check_full_pipeline(gen::producer_consumer_t1());
}

TEST(Integration, PaperT2FullPipeline) {
  check_full_pipeline(gen::three_stage_chain_t2());
}

TEST(Integration, CarEntertainmentMultiJob) {
  check_full_pipeline(gen::car_entertainment_preset());
}

class IntegrationFamilies : public ::testing::TestWithParam<int> {};

TEST_P(IntegrationFamilies, ChainsRingsDagsSurviveFullPipeline) {
  gen::GenParams params;
  params.seed = static_cast<std::uint64_t>(GetParam());
  check_full_pipeline(gen::make_chain(3 + GetParam() % 5, params));
  check_full_pipeline(gen::make_ring(3 + GetParam() % 3, params));
  check_full_pipeline(gen::make_random_dag(5 + GetParam() % 4, 0.4, params));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrationFamilies, ::testing::Range(0, 6));

TEST(Integration, SrdfSelfTimedMatchesMcrForMappedT1) {
  // The SRDF model's self-timed execution converges to its MCR; with the
  // computed allocation that MCR is at most the required period.
  const model::Configuration config = gen::producer_consumer_t1();
  const MappingResult r = core::compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible());

  const Vector budgets{static_cast<double>(r.graphs[0].tasks[0].budget),
                       static_cast<double>(r.graphs[0].tasks[1].budget)};
  const std::vector<Index> caps{r.graphs[0].buffers[0].capacity};
  const core::SrdfModel m = core::build_srdf(config, 0, budgets, caps);
  const dataflow::SelfTimedResult st =
      dataflow::self_timed_execution(m.graph, 400, 200);
  ASSERT_TRUE(st.deadlock_free);
  EXPECT_NEAR(st.measured_period, r.graphs[0].verification.mcr,
              1e-6 * (1.0 + st.measured_period));
  EXPECT_LE(st.measured_period, 10.0 + 1e-6);
}

TEST(Integration, SimulatedPeriodNeverBeatsSrdfBoundByOrdersOfMagnitude) {
  // Sanity on conservativeness direction: the analytic bound (MCR) is an
  // upper bound on the simulated period, and not vacuously loose on T1.
  const model::Configuration config = gen::producer_consumer_t1();
  const MappingResult r = core::compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible());
  const std::vector<Vector> budgets{
      {static_cast<double>(r.graphs[0].tasks[0].budget),
       static_cast<double>(r.graphs[0].tasks[1].budget)}};
  const std::vector<std::vector<Index>> caps{{r.graphs[0].buffers[0].capacity}};
  const sim::SimResult s = sim::simulate_tdm(config, budgets, caps);
  const double simulated = s.graphs[0].measured_period;
  const double bound = r.graphs[0].verification.mcr;
  EXPECT_LE(simulated, bound + 1e-9);
  EXPECT_GT(simulated, 0.05 * bound);
}

TEST(Integration, JsonRoundTripSolvesIdentically) {
  const model::Configuration original = gen::three_stage_chain_t2();
  const model::Configuration reloaded =
      io::configuration_from_json(io::configuration_to_json(original));
  const MappingResult a = core::compute_budgets_and_buffers(original);
  const MappingResult b = core::compute_budgets_and_buffers(reloaded);
  ASSERT_TRUE(a.feasible());
  ASSERT_TRUE(b.feasible());
  EXPECT_NEAR(a.objective_continuous, b.objective_continuous, 1e-9);
  for (std::size_t t = 0; t < a.graphs[0].tasks.size(); ++t) {
    EXPECT_EQ(a.graphs[0].tasks[t].budget, b.graphs[0].tasks[t].budget);
  }
}

TEST(Integration, StartStopJobsByResolving) {
  // Users start and stop jobs (paper Section I): mapping the multi-job
  // system, then re-mapping with one job removed, must free budget — the
  // remaining job's budgets can only shrink or stay equal. Both scenarios
  // come from the shared multi-graph preset (include_audio toggles the
  // stopped job on the identical platform).
  const model::Configuration both = testing::multi_graph_sweep();
  const MappingResult r_both = core::compute_budgets_and_buffers(both);
  ASSERT_TRUE(r_both.feasible());

  testing::MultiGraphSweepOptions solo_opts;
  solo_opts.include_audio = false;
  const model::Configuration solo = testing::multi_graph_sweep(solo_opts);
  const MappingResult r_solo = core::compute_budgets_and_buffers(solo);
  ASSERT_TRUE(r_solo.feasible());
  for (std::size_t t = 0; t < r_solo.graphs[0].tasks.size(); ++t) {
    EXPECT_LE(r_solo.graphs[0].tasks[t].budget_continuous,
              r_both.graphs[0].tasks[t].budget_continuous + 1e-6);
  }
}

TEST(Integration, TwoPhaseAndJointAgreeWhenUnconstrained) {
  // With unconstrained buffers and budget-dominated weights the budget-first
  // baseline finds the same budgets as the joint computation.
  const model::Configuration config = gen::make_chain(4);
  const MappingResult joint = core::compute_budgets_and_buffers(config);
  const MappingResult staged = core::solve_budget_first(config);
  ASSERT_TRUE(joint.feasible());
  ASSERT_TRUE(staged.feasible());
  for (std::size_t t = 0; t < joint.graphs[0].tasks.size(); ++t) {
    EXPECT_EQ(joint.graphs[0].tasks[t].budget,
              staged.graphs[0].tasks[t].budget);
  }
}

}  // namespace
}  // namespace bbs
