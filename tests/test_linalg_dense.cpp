// Tests for dense vectors, matrices and the dense LDL^T factorisation.
#include <gtest/gtest.h>

#include <cmath>

#include "bbs/common/assert.hpp"
#include "bbs/common/rng.hpp"
#include "bbs/linalg/dense_cholesky.hpp"
#include "bbs/linalg/dense_matrix.hpp"

namespace bbs::linalg {
namespace {

TEST(VectorOps, AxpyDotNorm) {
  Vector x{1.0, 2.0, -3.0};
  Vector y{0.5, 0.0, 1.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.5);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
  EXPECT_DOUBLE_EQ(y[2], -5.0);
  EXPECT_DOUBLE_EQ(dot(x, x), 14.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf({-7.0, 2.0}), 7.0);
}

TEST(VectorOps, SizeMismatchThrows) {
  Vector a{1.0};
  Vector b{1.0, 2.0};
  EXPECT_THROW(dot(a, b), ContractViolation);
  EXPECT_THROW(axpy(1.0, a, b), ContractViolation);
}

TEST(DenseMatrix, MultiplyAndTranspose) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Vector ones3{1.0, 1.0, 1.0};
  const Vector y = a.multiply(ones3);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  const Vector ones2{1.0, 1.0};
  const Vector yt = a.multiply_transpose(ones2);
  EXPECT_DOUBLE_EQ(yt[0], 5.0);
  EXPECT_DOUBLE_EQ(yt[1], 7.0);
  EXPECT_DOUBLE_EQ(yt[2], 9.0);

  const DenseMatrix at = a.transpose();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_EQ(at.cols(), 2u);
  EXPECT_DOUBLE_EQ(at(2, 1), 6.0);
}

TEST(DenseMatrix, MatrixProductAgainstHandComputation) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  DenseMatrix b(2, 2);
  b(0, 0) = 0;
  b(0, 1) = 1;
  b(1, 0) = 1;
  b(1, 1) = 0;
  const DenseMatrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(DenseMatrix, IdentityAndFrobenius) {
  const DenseMatrix i3 = DenseMatrix::identity(3);
  EXPECT_DOUBLE_EQ(i3.frobenius_norm(), std::sqrt(3.0));
}

TEST(DenseLdlt, SolvesSpdSystem) {
  // A = [4 2; 2 3], b = [2; 5] -> x = [-0.5; 2].
  DenseMatrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  const Vector x = solve_spd(a, {2.0, 5.0});
  EXPECT_NEAR(x[0], -0.5, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(DenseLdlt, RandomSpdRoundTrip) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.next_int(1, 12));
    DenseMatrix b(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        b(i, j) = rng.next_real(-1.0, 1.0);
    // A = B B' + n*I is SPD.
    DenseMatrix a = b.multiply(b.transpose());
    for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);

    Vector x_true(n);
    for (std::size_t i = 0; i < n; ++i) x_true[i] = rng.next_real(-2.0, 2.0);
    const Vector rhs = a.multiply(x_true);
    const Vector x = solve_spd(a, rhs);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(DenseLdlt, QuasiDefiniteHasCorrectInertia) {
  // [[2, 1], [1, -1]] is quasi-definite after regularisation: one positive
  // and one negative pivot.
  DenseMatrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = -1;
  DenseLdlt f(a);
  EXPECT_EQ(f.sign_of_determinant(), -1);
}

TEST(DenseLdlt, SingularMatrixThrows) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 1;
  EXPECT_THROW(DenseLdlt{a}, NumericalError);
}

TEST(DenseLdlt, RejectsNonSquare) {
  DenseMatrix a(2, 3);
  EXPECT_THROW(DenseLdlt{a}, ContractViolation);
}

}  // namespace
}  // namespace bbs::linalg
