// Tests for the reduced KKT solve, focussing on the symbolic-reuse pipeline:
// after the first factorise() all later calls must be numeric-only (one
// symbolic analysis per KktSystem lifetime), and the reused factorisation
// must solve exactly as well as a from-scratch one.
#include <gtest/gtest.h>

#include <cmath>

#include "bbs/common/assert.hpp"
#include "bbs/common/rng.hpp"
#include "bbs/solver/kkt_system.hpp"
#include "bbs/solver/nt_scaling.hpp"

namespace bbs::solver {
namespace {

using linalg::Index;
using linalg::SparseMatrix;
using linalg::TripletList;

/// G = [I_n; R] for a random sparse R: full column rank by construction.
SparseMatrix random_g(Rng& rng, Index n, Index extra_rows, int extra_entries) {
  TripletList t(n + extra_rows, n);
  for (Index i = 0; i < n; ++i) t.add(i, i, 1.0);
  for (int e = 0; e < extra_entries; ++e) {
    t.add(n + static_cast<Index>(rng.next_int(0, extra_rows - 1)),
          static_cast<Index>(rng.next_int(0, n - 1)),
          rng.next_real(-2.0, 2.0));
  }
  return SparseMatrix::from_triplets(t);
}

/// Residuals of the 2x2 system: ||G'v - p||_inf and ||Gu - W^2 v - q||_inf.
double kkt_residual(const SparseMatrix& g, const NtScaling& scaling,
                    const Vector& p, const Vector& q, const Vector& u,
                    const Vector& v) {
  Vector r1(p.size());
  for (std::size_t j = 0; j < p.size(); ++j) r1[j] = -p[j];
  g.gaxpy_transpose(1.0, v, r1);

  const Vector w2v = scaling.apply_w(scaling.apply_w(v));
  Vector r2(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) r2[i] = -w2v[i] - q[i];
  g.gaxpy(1.0, u, r2);
  return std::max(linalg::norm_inf(r1), linalg::norm_inf(r2));
}

TEST(KktSystem, RepeatedFactoriseRunsOneSymbolicAnalysis) {
  const ConeSpec cone(6, {3, 4});
  Rng rng(3);
  const SparseMatrix g = random_g(rng, 5, cone.dim() - 5, 20);
  NtScaling scaling(cone);
  KktSystem kkt(g);
  EXPECT_EQ(kkt.stats().factorise_calls, 0);

  const int iterations = 5;
  for (int it = 0; it < iterations; ++it) {
    scaling.update(random_interior_point(cone, rng), random_interior_point(cone, rng));
    kkt.factorise(scaling);

    Vector p(static_cast<std::size_t>(g.cols()));
    Vector q(static_cast<std::size_t>(g.rows()));
    for (auto& x : p) x = rng.next_real(-1.0, 1.0);
    for (auto& x : q) x = rng.next_real(-1.0, 1.0);
    Vector u, v;
    kkt.solve(scaling, p, q, u, v);
    EXPECT_LT(kkt_residual(g, scaling, p, q, u, v), 1e-9) << "it=" << it;
  }
  // The acceptance invariant: one symbolic analysis total, no matter how
  // many interior-point iterations re-factorise.
  EXPECT_EQ(kkt.stats().factorise_calls, iterations);
  EXPECT_EQ(kkt.stats().symbolic_factorisations, 1);
}

TEST(KktSystem, ReusedFactorisationMatchesFreshSystem) {
  const ConeSpec cone(8, {4});
  Rng rng(17);
  const SparseMatrix g = random_g(rng, 6, cone.dim() - 6, 24);

  // Reused system: factorised against several scalings in sequence.
  NtScaling scaling(cone);
  KktSystem reused(g);
  for (int it = 0; it < 4; ++it) {
    scaling.update(random_interior_point(cone, rng), random_interior_point(cone, rng));
    reused.factorise(scaling);
  }

  // Fresh system factorised once against the final scaling only.
  KktSystem fresh(g);
  fresh.factorise(scaling);

  Vector p(static_cast<std::size_t>(g.cols()));
  Vector q(static_cast<std::size_t>(g.rows()));
  for (auto& x : p) x = rng.next_real(-1.0, 1.0);
  for (auto& x : q) x = rng.next_real(-1.0, 1.0);
  Vector u1, v1, u2, v2;
  reused.solve(scaling, p, q, u1, v1);
  fresh.solve(scaling, p, q, u2, v2);
  for (std::size_t i = 0; i < u1.size(); ++i) {
    EXPECT_NEAR(u1[i], u2[i], 1e-10);
  }
  for (std::size_t i = 0; i < v1.size(); ++i) {
    EXPECT_NEAR(v1[i], v2[i], 1e-10);
  }
}

TEST(KktSystem, LpOnlyConeSolvesAccurately) {
  const ConeSpec cone(12, {});
  Rng rng(23);
  const SparseMatrix g = random_g(rng, 7, cone.dim() - 7, 18);
  NtScaling scaling(cone);
  KktSystem kkt(g);
  for (int it = 0; it < 3; ++it) {
    scaling.update(random_interior_point(cone, rng), random_interior_point(cone, rng));
    kkt.factorise(scaling);
    Vector p(static_cast<std::size_t>(g.cols()), 1.0);
    Vector q(static_cast<std::size_t>(g.rows()), -0.5);
    Vector u, v;
    kkt.solve(scaling, p, q, u, v);
    EXPECT_LT(kkt_residual(g, scaling, p, q, u, v), 1e-9);
  }
  EXPECT_EQ(kkt.stats().symbolic_factorisations, 1);
}

TEST(KktSystem, SolveBeforeFactoriseThrows) {
  const ConeSpec cone(4, {});
  Rng rng(5);
  const SparseMatrix g = random_g(rng, 3, 1, 3);
  NtScaling scaling(cone);
  const KktSystem kkt(g);
  Vector p(3, 1.0), q(4, 1.0), u, v;
  EXPECT_THROW(kkt.solve(scaling, p, q, u, v), ContractViolation);
}

}  // namespace
}  // namespace bbs::solver
