// Tests for periodic admissible schedule computation (Reiter's condition).
#include <gtest/gtest.h>

#include "bbs/common/assert.hpp"
#include "bbs/common/rng.hpp"
#include "bbs/dataflow/cycle_ratio.hpp"
#include "bbs/dataflow/pas.hpp"

namespace bbs::dataflow {
namespace {

SrdfGraph pipeline(double rho_a, double rho_b, Index fwd_tokens,
                   Index bwd_tokens) {
  SrdfGraph g;
  const Index a = g.add_actor("a", rho_a);
  const Index b = g.add_actor("b", rho_b);
  g.add_queue(a, b, fwd_tokens);
  g.add_queue(b, a, bwd_tokens);
  return g;
}

TEST(Pas, FeasibleAtAndAboveMcr) {
  const SrdfGraph g = pipeline(3.0, 2.0, 0, 1);  // MCR 5
  EXPECT_TRUE(compute_pas(g, 5.0).feasible);
  EXPECT_TRUE(compute_pas(g, 7.5).feasible);
  EXPECT_FALSE(compute_pas(g, 4.9).feasible);
}

TEST(Pas, StartTimesSatisfyReitersCondition) {
  const SrdfGraph g = pipeline(3.0, 2.0, 0, 2);
  const double period = 4.0;
  const PasResult r = compute_pas(g, period);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(verify_pas(g, period, r.start_times));
  // The zero-token queue forces b to start after a finishes.
  EXPECT_GE(r.start_times[1], r.start_times[0] + 3.0 - 1e-9);
}

TEST(Pas, VerifyRejectsBadStartTimes) {
  const SrdfGraph g = pipeline(3.0, 2.0, 0, 2);
  EXPECT_FALSE(verify_pas(g, 4.0, {0.0, 0.0}));  // b cannot start with a
}

TEST(Pas, AcyclicAlwaysFeasible) {
  SrdfGraph g;
  const Index a = g.add_actor("a", 10.0);
  const Index b = g.add_actor("b", 10.0);
  g.add_queue(a, b, 0);
  const PasResult r = compute_pas(g, 0.001);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(verify_pas(g, 0.001, r.start_times));
}

TEST(Pas, DeadlockNeverFeasible) {
  const SrdfGraph g = pipeline(1.0, 1.0, 0, 0);
  EXPECT_FALSE(compute_pas(g, 1e9).feasible);
}

TEST(Pas, EmptyGraph) {
  SrdfGraph g;
  EXPECT_TRUE(compute_pas(g, 1.0).feasible);
}

TEST(Pas, RejectsNonPositivePeriod) {
  SrdfGraph g;
  g.add_actor("a", 1.0);
  EXPECT_THROW(compute_pas(g, 0.0), ContractViolation);
  EXPECT_THROW(compute_pas(g, -1.0), ContractViolation);
}

/// Property: for random live graphs, the PAS at the (bisected) MCR is
/// feasible and its start times verify; just below the MCR it is infeasible.
class PasAtMcr : public ::testing::TestWithParam<int> {};

TEST_P(PasAtMcr, TightAtTheMcr) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 331 + 7);
  for (int trial = 0; trial < 10; ++trial) {
    const Index n = static_cast<Index>(rng.next_int(2, 10));
    SrdfGraph g;
    for (Index v = 0; v < n; ++v) {
      g.add_actor("v", rng.next_real(0.5, 4.0));
    }
    for (Index v = 0; v < n; ++v) {
      g.add_queue(v, (v + 1) % n, static_cast<Index>(rng.next_int(1, 2)));
    }
    const double mcr = max_cycle_ratio_bisect(g, 1e-11);
    const PasResult at = compute_pas(g, mcr * (1.0 + 1e-9) + 1e-9);
    EXPECT_TRUE(at.feasible);
    EXPECT_TRUE(verify_pas(g, mcr * (1.0 + 1e-9) + 1e-9, at.start_times));
    EXPECT_FALSE(compute_pas(g, mcr * 0.99).feasible);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PasAtMcr, ::testing::Range(0, 6));

}  // namespace
}  // namespace bbs::dataflow
