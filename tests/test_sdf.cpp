// Tests for the multi-rate SDF front-end: repetition vectors, consistency,
// expansion structure and throughput of the expanded graph.
#include <gtest/gtest.h>

#include "bbs/common/assert.hpp"
#include "bbs/dataflow/cycle_ratio.hpp"
#include "bbs/dataflow/sdf_graph.hpp"
#include "bbs/dataflow/self_timed.hpp"

namespace bbs::dataflow {
namespace {

TEST(Sdf, RepetitionVectorSimpleRateChange) {
  // a --(2,3)--> b: q = (3, 2).
  SdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  const Index b = g.add_actor("b", 1.0);
  g.add_channel(a, b, 2, 3);
  const auto q = repetition_vector(g);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ((*q)[0], 3);
  EXPECT_EQ((*q)[1], 2);
}

TEST(Sdf, RepetitionVectorChainOfRates) {
  // a --(1,2)--> b --(3,4)--> c: q(a)=8, q(b)=4, q(c)=3.
  SdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  const Index b = g.add_actor("b", 1.0);
  const Index c = g.add_actor("c", 1.0);
  g.add_channel(a, b, 1, 2);
  g.add_channel(b, c, 3, 4);
  const auto q = repetition_vector(g);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ((*q)[0], 8);
  EXPECT_EQ((*q)[1], 4);
  EXPECT_EQ((*q)[2], 3);
}

TEST(Sdf, InconsistentGraphDetected) {
  // Triangle with incompatible rates: a->b 1:1, b->c 1:1, c->a 2:1.
  SdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  const Index b = g.add_actor("b", 1.0);
  const Index c = g.add_actor("c", 1.0);
  g.add_channel(a, b, 1, 1);
  g.add_channel(b, c, 1, 1);
  g.add_channel(c, a, 2, 1);
  EXPECT_FALSE(repetition_vector(g).has_value());
  EXPECT_THROW(expand_to_srdf(g), ModelError);
}

TEST(Sdf, DisconnectedComponentsScaledIndependently) {
  SdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  const Index b = g.add_actor("b", 1.0);
  g.add_channel(a, a, 1, 1, 1);
  g.add_channel(b, b, 1, 1, 1);
  const auto q = repetition_vector(g);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ((*q)[0], 1);
  EXPECT_EQ((*q)[1], 1);
}

TEST(Sdf, SingleRateGraphExpandsOneToOne) {
  SdfGraph g;
  const Index a = g.add_actor("a", 2.0);
  const Index b = g.add_actor("b", 3.0);
  g.add_channel(a, b, 1, 1);
  g.add_channel(b, a, 1, 1, 2);
  const SrdfExpansion e = expand_to_srdf(g);
  EXPECT_EQ(e.graph.num_actors(), 2);
  // 2 sequential self-loops + 2 channel queues.
  EXPECT_EQ(e.graph.num_queues(), 4);
  // The expansion's MCR matches the SRDF analysis of the original graph:
  // cycle (2+3)/2 = 2.5 vs self-loops 2 and 3 -> MCR 3.
  EXPECT_NEAR(max_cycle_ratio_bisect(e.graph), 3.0, 1e-7);
}

TEST(Sdf, ExpansionCopiesAndSequentialisation) {
  SdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  const Index b = g.add_actor("b", 1.0);
  g.add_channel(a, b, 2, 3, 0);
  const SrdfExpansion e = expand_to_srdf(g);
  EXPECT_EQ(e.repetitions[0], 3);
  EXPECT_EQ(e.repetitions[1], 2);
  EXPECT_EQ(e.graph.num_actors(), 5);
  ASSERT_EQ(e.actor_copy[0].size(), 3u);
  ASSERT_EQ(e.actor_copy[1].size(), 2u);
  // No deadlock: b's first firing waits for ceil(3/2) = 2 firings of a.
  EXPECT_FALSE(e.graph.has_zero_token_cycle());
}

TEST(Sdf, ExpansionDependenciesAreCorrect) {
  // a --(2,3)--> b with no initial tokens. b#0 consumes tokens 0..2,
  // produced by a firings 0 and 1; b#1 consumes tokens 3..5 from firings
  // 1 and 2. Check through self-timed execution: with rho(a) = 1 and
  // plenty of parallel freedom, sigma(b#0) = 2 (a#0, a#1 done), and
  // sigma(b#1) = 3.
  SdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  const Index b = g.add_actor("b", 1.0);
  g.add_channel(a, b, 2, 3, 0);
  const SrdfExpansion e = expand_to_srdf(g);
  const SelfTimedResult st = self_timed_execution(e.graph, 4);
  ASSERT_TRUE(st.deadlock_free);
  const auto b0 = static_cast<std::size_t>(e.actor_copy[1][0]);
  const auto b1 = static_cast<std::size_t>(e.actor_copy[1][1]);
  EXPECT_NEAR(st.start_times[0][b0], 2.0, 1e-12);
  EXPECT_NEAR(st.start_times[0][b1], 3.0, 1e-12);
}

TEST(Sdf, InitialTokensShiftDependencies) {
  // Same graph but 3 initial tokens: b#0 fires immediately.
  SdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  const Index b = g.add_actor("b", 1.0);
  g.add_channel(a, b, 2, 3, 3);
  const SrdfExpansion e = expand_to_srdf(g);
  const SelfTimedResult st = self_timed_execution(e.graph, 4);
  ASSERT_TRUE(st.deadlock_free);
  const auto b0 = static_cast<std::size_t>(e.actor_copy[1][0]);
  EXPECT_NEAR(st.start_times[0][b0], 0.0, 1e-12);
}

TEST(Sdf, IterationPeriodOfBalancedPipeline) {
  // a --(1,1)--> b with return channel capacity 2 (2 initial tokens),
  // rho(a) = rho(b) = 1: pipelined, period 1 per iteration... the cycle
  // (a,b) has duration 2 over 2 tokens -> MCR 1; self-loops 1 -> period 1.
  SdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  const Index b = g.add_actor("b", 1.0);
  g.add_channel(a, b, 1, 1, 0);
  g.add_channel(b, a, 1, 1, 2);
  const auto period = sdf_iteration_period(g);
  ASSERT_TRUE(period.has_value());
  EXPECT_NEAR(*period, 1.0, 1e-7);
}

TEST(Sdf, MultiRatePeriodHandComputed) {
  // a --(2,1)--> b, b twice as frequent: q = (1,2). rho(a)=2, rho(b)=1.
  // Sequential b copies: each iteration runs b twice (2 time units) and a
  // once (2 units) in parallel; with no feedback the period is set by the
  // per-actor sequential cycles: max(rho(a), 2*rho(b)) = 2.
  SdfGraph g;
  const Index a = g.add_actor("a", 2.0);
  const Index b = g.add_actor("b", 1.0);
  g.add_channel(a, b, 2, 1, 0);
  const auto period = sdf_iteration_period(g);
  ASSERT_TRUE(period.has_value());
  EXPECT_NEAR(*period, 2.0, 1e-7);
}

TEST(Sdf, DeadlockedSdfReportsNullopt) {
  SdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  const Index b = g.add_actor("b", 1.0);
  g.add_channel(a, b, 1, 1, 0);
  g.add_channel(b, a, 1, 1, 0);
  EXPECT_FALSE(sdf_iteration_period(g).has_value());
}

TEST(Sdf, Preconditions) {
  SdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  EXPECT_THROW(g.add_actor("x", -1.0), ContractViolation);
  EXPECT_THROW(g.add_channel(a, 5, 1, 1), ContractViolation);
  EXPECT_THROW(g.add_channel(a, a, 0, 1), ContractViolation);
  EXPECT_THROW(g.add_channel(a, a, 1, 1, -1), ContractViolation);
}

}  // namespace
}  // namespace bbs::dataflow
