// Cross-cutting monotonicity and invariance properties of the joint
// budget/buffer computation — the structural facts a user of the library
// relies on without reading the paper.
#include <gtest/gtest.h>

#include <cmath>

#include "bbs/core/tradeoff.hpp"
#include "bbs/gen/generators.hpp"
#include "testing/support.hpp"

namespace bbs::core {
namespace {

TEST(Properties, CostIsNonIncreasingInThePeriod) {
  // Relaxing the throughput requirement can only make the mapping cheaper.
  double previous = std::numeric_limits<double>::infinity();
  for (const double mu : {6.0, 8.0, 10.0, 15.0, 25.0, 40.0}) {
    model::Configuration config = gen::producer_consumer_t1();
    config.mutable_task_graph(0).set_required_period(mu);
    const MappingResult r = compute_budgets_and_buffers(config);
    ASSERT_TRUE(r.feasible()) << "mu=" << mu;
    EXPECT_LE(r.objective_continuous, previous + 1e-6) << "mu=" << mu;
    previous = r.objective_continuous;
  }
}

TEST(Properties, CostIsNonIncreasingInBufferCaps) {
  double previous = std::numeric_limits<double>::infinity();
  for (Index cap = 1; cap <= 10; ++cap) {
    model::Configuration config = gen::three_stage_chain_t2();
    config.mutable_task_graph(0).set_max_capacity(0, cap);
    config.mutable_task_graph(0).set_max_capacity(1, cap);
    const MappingResult r = compute_budgets_and_buffers(config);
    ASSERT_TRUE(r.feasible());
    EXPECT_LE(r.objective_continuous, previous + 1e-5) << "cap=" << cap;
    previous = r.objective_continuous;
  }
}

TEST(Properties, SmallerWcetNeverRaisesCost) {
  model::Configuration heavy = gen::producer_consumer_t1();
  model::Configuration light = gen::producer_consumer_t1();
  light.mutable_task_graph(0).mutable_task(0).wcet = 0.5;  // was 1.0
  const MappingResult r_heavy = compute_budgets_and_buffers(heavy);
  const MappingResult r_light = compute_budgets_and_buffers(light);
  ASSERT_TRUE(r_heavy.feasible());
  ASSERT_TRUE(r_light.feasible());
  EXPECT_LE(r_light.objective_continuous,
            r_heavy.objective_continuous + 1e-6);
}

TEST(Properties, ExtraMemoryConstraintNeverLowersCost) {
  model::Configuration free_config = gen::producer_consumer_t1();
  const MappingResult r_free = compute_budgets_and_buffers(free_config);
  ASSERT_TRUE(r_free.feasible());

  testing::TwoTaskOptions opts;
  opts.memory_capacity = 7.0;  // capacity <= 6 after slack
  opts.size_weight = 1e-3;
  const model::Configuration tight = testing::two_task_chain(opts);
  const MappingResult r_tight = compute_budgets_and_buffers(tight);
  ASSERT_TRUE(r_tight.feasible());

  EXPECT_GE(r_tight.objective_continuous,
            r_free.objective_continuous - 1e-6);
}

TEST(Properties, MinimalPeriodMatchesClosedFormOnT1) {
  // For T1 with budgets capped by (9) at beta <= 39 and a 10-container
  // buffer cap, the smallest sustainable period solves the cycle equation
  // at beta = 39: mu* = max(40/39, (2(40-39) + 80/39) / 10).
  model::Configuration config = gen::producer_consumer_t1();
  config.mutable_task_graph(0).set_max_capacity(0, 10);
  const auto r = minimal_feasible_period(config, 0, 40.0, 1e-5);
  ASSERT_TRUE(r.has_value());
  const double expect =
      std::max(40.0 / 39.0, (2.0 * 1.0 + 2.0 * 40.0 / 39.0) / 10.0);
  EXPECT_NEAR(r->period, expect, 2e-3 * expect);
  EXPECT_TRUE(r->mapping.feasible());
  // The configuration is restored.
  EXPECT_DOUBLE_EQ(config.task_graph(0).required_period(), 10.0);
}

TEST(Properties, MinimalPeriodInfeasibleCeilingReported) {
  // A single task whose WCET exceeds what even a full budget can sustain
  // within the probe ceiling.
  model::Configuration config(1);
  const auto p = config.add_processor("p", 40.0);
  config.add_memory("m", -1.0);
  model::TaskGraph tg("solo", 1.0);
  tg.add_task("t", p, 30.0);  // best period: 40*30/39 = 30.77 > ceiling 20
  config.add_task_graph(std::move(tg));
  EXPECT_FALSE(minimal_feasible_period(config, 0, 20.0).has_value());
}

TEST(Properties, MinimalPeriodTighterWithMoreBuffers) {
  // Larger buffer caps allow a smaller minimal period... on T1 the minimum
  // is budget-limited at cap >= 1? No: at cap 1 the cycle needs
  // (2(40-b) + 80/b) <= mu; with b = 39 that is 4.05; at cap 10 it is 0.41
  // -> the self-loop bound 40/39 dominates. Check the ordering holds.
  model::Configuration config = gen::producer_consumer_t1();
  config.mutable_task_graph(0).set_max_capacity(0, 1);
  const auto tight = minimal_feasible_period(config, 0, 40.0, 1e-5);
  config.mutable_task_graph(0).set_max_capacity(0, 10);
  const auto loose = minimal_feasible_period(config, 0, 40.0, 1e-5);
  ASSERT_TRUE(tight.has_value());
  ASSERT_TRUE(loose.has_value());
  EXPECT_GT(tight->period, loose->period);
  EXPECT_NEAR(tight->period, 2.0 * 1.0 + 2.0 * 40.0 / 39.0, 2e-2);
}

TEST(Properties, TaskOrderInvariance) {
  // Renumbering the tasks of T2 must not change the optimal cost.
  model::Configuration original = gen::three_stage_chain_t2();

  model::Configuration permuted(1);
  const auto p1 = permuted.add_processor("p1", 40.0);
  const auto p2 = permuted.add_processor("p2", 40.0);
  const auto p3 = permuted.add_processor("p3", 40.0);
  const auto mem = permuted.add_memory("m1", -1.0);
  model::TaskGraph tg("T2p", 10.0);
  const auto wc = tg.add_task("wc", p3, 1.0);  // reversed declaration order
  const auto wb = tg.add_task("wb", p2, 1.0);
  const auto wa = tg.add_task("wa", p1, 1.0);
  tg.add_buffer("bbc", wb, wc, mem, 1, 0, 1e-3);
  tg.add_buffer("bab", wa, wb, mem, 1, 0, 1e-3);
  permuted.add_task_graph(std::move(tg));

  const MappingResult a = compute_budgets_and_buffers(original);
  const MappingResult b = compute_budgets_and_buffers(permuted);
  ASSERT_TRUE(a.feasible());
  ASSERT_TRUE(b.feasible());
  EXPECT_NEAR(a.objective_continuous, b.objective_continuous,
              1e-5 * (1.0 + a.objective_continuous));
}

TEST(Properties, GranularityCoarseningNeverCheapensRounded) {
  double previous = 0.0;
  for (const Index g : {1, 2, 4, 8}) {
    testing::TwoTaskOptions opts;
    opts.granularity = g;
    opts.size_weight = 1e-3;
    opts.max_capacity = 5;
    const model::Configuration config = testing::two_task_chain(opts);
    const MappingResult r = compute_budgets_and_buffers(config);
    ASSERT_TRUE(r.feasible()) << "g=" << g;
    EXPECT_GE(r.objective_rounded, previous - 1e-9) << "g=" << g;
    previous = r.objective_rounded;
  }
}

}  // namespace
}  // namespace bbs::core
