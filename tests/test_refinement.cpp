// Tests for the post-rounding integer refinement pass.
#include <gtest/gtest.h>

#include "bbs/common/assert.hpp"
#include "bbs/core/exact_reference.hpp"
#include "bbs/core/refinement.hpp"
#include "bbs/gen/generators.hpp"
#include "testing/support.hpp"

namespace bbs::core {
namespace {

TEST(Refinement, NeverIncreasesCostAndStaysFeasible) {
  for (const Index cap : {2, 4, 6, 8}) {
    model::Configuration config = gen::producer_consumer_t1();
    config.mutable_task_graph(0).set_max_capacity(0, cap);
    MappingResult r = compute_budgets_and_buffers(config);
    ASSERT_TRUE(r.feasible());
    const double before = r.objective_rounded;

    const RefinementStats stats = refine_rounded_mapping(config, r);
    EXPECT_LE(stats.cost_after, stats.cost_before + 1e-12);
    EXPECT_LE(r.objective_rounded, before + 1e-12);
    for (const MappedGraph& mg : r.graphs) {
      EXPECT_TRUE(mg.verification.throughput_met);
    }
  }
}

TEST(Refinement, ClosesTheRoundingGapOnT1) {
  // With cap 6, rounding yields beta = 14 while the integer optimum is 14
  // for one task and 13 for the other (total 27); refinement must reach
  // the exact integer cost.
  model::Configuration config = gen::producer_consumer_t1();
  config.mutable_task_graph(0).set_max_capacity(0, 6);
  MappingResult r = compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible());
  refine_rounded_mapping(config, r);

  ExactSearchLimits limits;
  limits.max_capacity = 6;
  const auto exact = exact_reference(config, limits);
  ASSERT_TRUE(exact.has_value());
  EXPECT_NEAR(r.objective_rounded, exact->cost, 1e-9);
}

TEST(Refinement, ReachesExactOptimumAcrossCapsAndGranularities) {
  for (const Index g : {1, 2}) {
    for (const Index cap : {3, 5, 7}) {
      testing::TwoTaskOptions opts;
      opts.granularity = g;
      opts.size_weight = 1e-3;
      opts.max_capacity = cap;
      model::Configuration config = testing::two_task_chain(opts);

      MappingResult r = compute_budgets_and_buffers(config);
      ASSERT_TRUE(r.feasible());
      refine_rounded_mapping(config, r);

      ExactSearchLimits limits;
      limits.max_capacity = cap;
      const auto exact = exact_reference(config, limits);
      ASSERT_TRUE(exact.has_value());
      // Greedy descent is not guaranteed optimal in general, but on these
      // instances it must come within one granule of the optimum; the paper
      // already accepts one granule of sub-optimality from rounding.
      EXPECT_LE(r.objective_rounded,
                exact->cost + static_cast<double>(g) + 1e-9)
          << "g=" << g << " cap=" << cap;
      EXPECT_GE(r.objective_rounded, exact->cost - 1e-9);
    }
  }
}

TEST(Refinement, CapacitiesCanShrinkToo) {
  // Unconstrained T1: rounding keeps 10 containers; the self-loop budgets
  // (4) only need 10 — but with budget 4 the cycle needs
  // ceil((72 + 20)/10) = 10, so capacity stays; use beta = 5 by weighting
  // buffers expensively instead.
  const model::Configuration config = gen::producer_consumer_t1(5.0);
  MappingResult r = compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible());
  const Index cap_before = r.graphs[0].buffers[0].capacity;
  const RefinementStats stats = refine_rounded_mapping(config, r);
  EXPECT_LE(r.graphs[0].buffers[0].capacity, cap_before);
  EXPECT_GE(stats.capacity_decrements, 0);
}

TEST(Refinement, MultiJobStaysVerified) {
  const model::Configuration config = gen::car_entertainment_preset();
  MappingResult r = compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible());
  refine_rounded_mapping(config, r);
  std::vector<Vector> budgets;
  std::vector<std::vector<Index>> caps;
  for (const auto& mg : r.graphs) {
    Vector b;
    std::vector<Index> c;
    for (const auto& t : mg.tasks) b.push_back(static_cast<double>(t.budget));
    for (const auto& buf : mg.buffers) c.push_back(buf.capacity);
    budgets.push_back(std::move(b));
    caps.push_back(std::move(c));
  }
  EXPECT_TRUE(verify_platform(config, budgets, caps));
  for (const auto& mg : r.graphs) {
    EXPECT_TRUE(mg.verification.throughput_met);
  }
}

TEST(Refinement, RequiresFeasibleInput) {
  model::Configuration config = gen::producer_consumer_t1();
  MappingResult r;  // default: infeasible
  EXPECT_THROW(refine_rounded_mapping(config, r), ContractViolation);
}

}  // namespace
}  // namespace bbs::core
