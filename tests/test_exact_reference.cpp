// Tests for the exhaustive integer reference and its relation to the SOCP:
// the continuous optimum is a lower bound, the rounded SOCP solution an
// upper bound, and on small instances the gap is at most the rounding slack.
#include <gtest/gtest.h>

#include "bbs/common/assert.hpp"
#include "bbs/core/budget_buffer_solver.hpp"
#include "bbs/core/exact_reference.hpp"
#include "bbs/gen/generators.hpp"
#include "testing/support.hpp"

namespace bbs::core {
namespace {

TEST(ExactReference, T1CappedMatchesHandComputation) {
  // Capacity <= 3: the symmetric integer optimum is beta = 27 for both
  // tasks (smallest integers with 80 - (ba+bb) + 40/ba + 40/bb <= 30), but
  // asymmetric splits like (26, 28) reach the same total of 54 — assert the
  // optimal cost, the capacity, and feasibility of the reported budgets.
  model::Configuration config = gen::producer_consumer_t1();
  config.mutable_task_graph(0).set_max_capacity(0, 3);
  ExactSearchLimits limits;
  limits.max_capacity = 3;
  const auto best = exact_reference(config, limits);
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(best->budgets[0][0] + best->budgets[0][1], 54.0,
              testing::kExactTol);
  EXPECT_EQ(best->capacities[0][0], 3);
  EXPECT_NEAR(best->cost, 54.0 + 1e-3 * 3.0, testing::kExactTol);
  const GraphVerification v =
      verify_graph(config, 0, best->budgets[0], best->capacities[0]);
  EXPECT_TRUE(v.throughput_met);
}

TEST(ExactReference, SocpBracketsTheIntegerOptimum) {
  for (const linalg::Index cap : {2, 4, 6, 8}) {
    model::Configuration config = gen::producer_consumer_t1();
    config.mutable_task_graph(0).set_max_capacity(0, cap);

    const MappingResult socp = compute_budgets_and_buffers(config);
    ASSERT_TRUE(socp.feasible());

    ExactSearchLimits limits;
    limits.max_capacity = cap;
    const auto exact = exact_reference(config, limits);
    ASSERT_TRUE(exact.has_value());

    // Lower bound: continuous relaxation; upper bound: rounded allocation.
    EXPECT_LE(socp.objective_continuous, exact->cost + 1e-6)
        << "cap " << cap;
    EXPECT_GE(socp.objective_rounded, exact->cost - 1e-6) << "cap " << cap;
    // The rounding gap is at most one granule per task plus one container
    // (the slack pre-paid by constraints (9) and (10)).
    EXPECT_LE(socp.objective_rounded - exact->cost,
              2.0 * 1.0 + 1e-3 * 1.0 + 1e-6)
        << "cap " << cap;
  }
}

TEST(ExactReference, InfeasibleInstanceReturnsNullopt) {
  // mu = 1.9 with capacity cap 1 is infeasible even for the maximal budgets
  // beta = 40 (cycle duration 2(40-40) + 2*40/40 = 2 > 1.9). Note mu = 2.2
  // would NOT do here: the exhaustive search checks true feasibility, where
  // beta = 40 is admissible, while Algorithm 1 conservatively reserves +g.
  testing::TwoTaskOptions opts;
  opts.required_period = 1.9;
  opts.max_capacity = 1;
  const model::Configuration config = testing::two_task_chain(opts);

  ExactSearchLimits limits;
  limits.max_capacity = 1;
  EXPECT_FALSE(exact_reference(config, limits).has_value());
}

TEST(ExactReference, RespectsGranularity) {
  testing::TwoTaskOptions opts;
  opts.granularity = 5;  // budgets in multiples of 5
  opts.size_weight = 1e-3;
  opts.max_capacity = 4;
  const model::Configuration config = testing::two_task_chain(opts);

  ExactSearchLimits limits;
  limits.max_capacity = 4;
  const auto best = exact_reference(config, limits);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(static_cast<int>(best->budgets[0][0]) % 5, 0);
  EXPECT_EQ(static_cast<int>(best->budgets[0][1]) % 5, 0);
  // The symmetric rounding (25, 25) is beaten by asymmetric grid points such
  // as (20, 25): total 45 is the granularity-5 optimum.
  EXPECT_NEAR(best->budgets[0][0] + best->budgets[0][1], 45.0, 1e-9);
  const GraphVerification v =
      verify_graph(config, 0, best->budgets[0], best->capacities[0]);
  EXPECT_TRUE(v.throughput_met);
}

TEST(ExactReference, SearchSpaceGuard) {
  const model::Configuration config = gen::three_stage_chain_t2();
  ExactSearchLimits limits;
  limits.max_capacity = 10;
  limits.max_combinations = 10;  // deliberately tiny
  EXPECT_THROW(exact_reference(config, limits), ModelError);
}

}  // namespace
}  // namespace bbs::core
