// Tests for the critical-cycle-guided exact buffer sizing under fixed
// budgets, cross-checked against the closed form on T1 and against the
// LP-based phase-2 of the two-phase flow.
#include <gtest/gtest.h>

#include <cmath>

#include "bbs/core/buffer_sizing.hpp"
#include "bbs/core/two_phase.hpp"
#include "bbs/core/verification.hpp"
#include "bbs/gen/generators.hpp"
#include "testing/support.hpp"

namespace bbs::core {
namespace {

/// Minimal capacity of T1's buffer for symmetric budgets beta:
/// ceil((2(40-beta) + 80/beta) / 10), at least 1.
Index t1_min_capacity(double beta) {
  const double cycle = 2.0 * (40.0 - beta) + 2.0 * 40.0 / beta;
  return std::max<Index>(1, static_cast<Index>(std::ceil(cycle / 10.0 - 1e-9)));
}

TEST(BufferSizing, T1MatchesClosedForm) {
  const model::Configuration config = gen::producer_consumer_t1();
  for (const double beta : {5.0, 8.0, 12.0, 20.0, 30.0, 39.0}) {
    const auto r = size_buffers_for_budgets(config, 0, {beta, beta});
    ASSERT_TRUE(r.has_value()) << "beta " << beta;
    EXPECT_EQ(r->capacities[0], t1_min_capacity(beta)) << "beta " << beta;
    EXPECT_LE(r->mcr, 10.0 + 1e-9);
    // Verify it is truly minimal: one fewer container is infeasible.
    if (r->capacities[0] > 1) {
      const std::vector<Index> smaller{r->capacities[0] - 1};
      const GraphVerification v =
          verify_graph(config, 0, {beta, beta}, smaller);
      EXPECT_FALSE(v.throughput_met) << "beta " << beta;
    }
  }
}

TEST(BufferSizing, BudgetBelowSelfLoopBoundHasNoSolution) {
  const model::Configuration config = gen::producer_consumer_t1();
  // beta = 3 < 4: the self-loop cycle exceeds mu and contains no buffer.
  EXPECT_FALSE(size_buffers_for_budgets(config, 0, {3.0, 3.0}).has_value());
}

TEST(BufferSizing, RespectsPerBufferCap) {
  model::Configuration config = gen::producer_consumer_t1();
  config.mutable_task_graph(0).set_max_capacity(0, 4);
  // beta = 8 needs 9 containers > cap 4: must report failure.
  EXPECT_FALSE(size_buffers_for_budgets(config, 0, {8.0, 8.0}).has_value());
  // beta = 22 needs 5... still above; beta = 25 needs
  // ceil((30 + 3.2)/10) = 4: fits.
  const auto r = size_buffers_for_budgets(config, 0, {25.0, 25.0});
  ASSERT_TRUE(r.has_value());
  EXPECT_LE(r->capacities[0], 4);
}

TEST(BufferSizing, RespectsMemoryCapacity) {
  testing::TwoTaskOptions opts;
  opts.memory_capacity = 3.0;  // three unit containers
  opts.size_weight = 1e-3;
  const model::Configuration config = testing::two_task_chain(opts);

  // beta = 8 needs 9 containers > 3 in memory: fail.
  EXPECT_FALSE(size_buffers_for_budgets(config, 0, {8.0, 8.0}).has_value());
  // beta = 27 needs 3: exactly fits.
  const auto r = size_buffers_for_budgets(config, 0, {27.0, 27.0});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->capacities[0], 3);
}

TEST(BufferSizing, AgreesWithLpPhaseOnChains) {
  // The LP-based phase 2 (solve_budget_first) and the incremental search
  // must produce verifiably feasible allocations of comparable size on
  // chains (the LP rounds up per buffer; the incremental search is exact
  // per critical cycle, so it can only be tighter in total).
  for (const int n : {3, 5, 7}) {
    gen::GenParams params;
    params.seed = static_cast<std::uint64_t>(n);
    const model::Configuration config = gen::make_chain(n, params);
    const MappingResult staged = solve_budget_first(config);
    ASSERT_TRUE(staged.feasible());

    Vector budgets;
    for (const auto& t : staged.graphs[0].tasks) {
      budgets.push_back(static_cast<double>(t.budget));
    }
    const auto inc = size_buffers_for_budgets(config, 0, budgets);
    ASSERT_TRUE(inc.has_value());

    Index lp_total = 0;
    Index inc_total = 0;
    for (std::size_t b = 0; b < inc->capacities.size(); ++b) {
      lp_total += staged.graphs[0].buffers[b].capacity;
      inc_total += inc->capacities[b];
    }
    EXPECT_LE(inc_total, lp_total) << "chain " << n;
    const GraphVerification v =
        verify_graph(config, 0, budgets, inc->capacities);
    EXPECT_TRUE(v.throughput_met) << "chain " << n;
  }
}

TEST(BufferSizing, InitialFillReducesSpaceNeeded) {
  // With iota = 1 the data queue already carries a token; the same budgets
  // need no more capacity than the iota = 0 variant.
  testing::TwoTaskOptions opts;
  opts.size_weight = 1e-3;
  const model::Configuration empty_start = testing::two_task_chain(opts);
  opts.initial_fill = 1;
  const model::Configuration prefilled = testing::two_task_chain(opts);
  const auto r0 = size_buffers_for_budgets(empty_start, 0, {10.0, 10.0});
  const auto r1 = size_buffers_for_budgets(prefilled, 0, {10.0, 10.0});
  ASSERT_TRUE(r0.has_value());
  ASSERT_TRUE(r1.has_value());
  EXPECT_LE(r1->capacities[0], r0->capacities[0]);
}

TEST(BufferSizing, IncrementCountMatchesCapacityGrowth) {
  const model::Configuration config = gen::three_stage_chain_t2();
  const auto r = size_buffers_for_budgets(config, 0, {10.0, 10.0, 10.0});
  ASSERT_TRUE(r.has_value());
  Index total = 0;
  for (const Index c : r->capacities) total += c - 1;  // min capacity was 1
  EXPECT_EQ(total, static_cast<Index>(r->increments));
}

}  // namespace
}  // namespace bbs::core
