// Tests for the fill-reducing orderings: permutation validity, fill
// reduction on structured patterns, and handling of disconnected graphs.
#include <gtest/gtest.h>

#include "bbs/common/rng.hpp"
#include "bbs/linalg/ordering.hpp"
#include "bbs/linalg/sparse_ldlt.hpp"

namespace bbs::linalg {
namespace {

/// Arrowhead pattern: dense first row/column + diagonal. Natural ordering
/// fills in completely; any sensible ordering eliminates the hub last.
SparseMatrix arrowhead(Index n) {
  TripletList t(n, n);
  for (Index i = 0; i < n; ++i) t.add(i, i, 4.0 + static_cast<double>(n));
  for (Index i = 1; i < n; ++i) {
    t.add(0, i, 1.0);
    t.add(i, 0, 1.0);
  }
  return SparseMatrix::from_triplets(t);
}

/// 1-D Laplacian (tridiagonal): already ideally ordered.
SparseMatrix tridiagonal(Index n) {
  TripletList t(n, n);
  for (Index i = 0; i < n; ++i) t.add(i, i, 2.0);
  for (Index i = 0; i + 1 < n; ++i) {
    t.add(i, i + 1, -1.0);
    t.add(i + 1, i, -1.0);
  }
  return SparseMatrix::from_triplets(t);
}

class OrderingValidity : public ::testing::TestWithParam<OrderingMethod> {};

TEST_P(OrderingValidity, ProducesPermutationOnRandomPatterns) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const Index n = static_cast<Index>(rng.next_int(1, 40));
    TripletList t(n, n);
    for (Index i = 0; i < n; ++i) t.add(i, i, 1.0);
    for (int e = 0; e < 2 * n; ++e) {
      const Index r = static_cast<Index>(rng.next_int(0, n - 1));
      const Index c = static_cast<Index>(rng.next_int(0, n - 1));
      t.add(r, c, 1.0);
      t.add(c, r, 1.0);
    }
    const SparseMatrix a = SparseMatrix::from_triplets(t);
    const auto perm = compute_ordering(a, GetParam());
    EXPECT_TRUE(is_permutation(perm)) << ordering_name(GetParam());
  }
}

TEST_P(OrderingValidity, HandlesDisconnectedGraphs) {
  // Two disjoint cliques of 3 + two isolated vertices.
  TripletList t(8, 8);
  for (Index i = 0; i < 8; ++i) t.add(i, i, 1.0);
  for (Index i = 0; i < 3; ++i)
    for (Index j = 0; j < 3; ++j)
      if (i != j) t.add(i, j, 1.0);
  for (Index i = 3; i < 6; ++i)
    for (Index j = 3; j < 6; ++j)
      if (i != j) t.add(i, j, 1.0);
  const SparseMatrix a = SparseMatrix::from_triplets(t);
  EXPECT_TRUE(is_permutation(compute_ordering(a, GetParam())));
}

INSTANTIATE_TEST_SUITE_P(AllMethods, OrderingValidity,
                         ::testing::Values(OrderingMethod::kNatural,
                                           OrderingMethod::kReverseCuthillMcKee,
                                           OrderingMethod::kMinimumDegree));

TEST(MinimumDegree, BeatsNaturalOnArrowhead) {
  const SparseMatrix a = arrowhead(40);
  SparseLdlt::Options natural;
  natural.ordering = OrderingMethod::kNatural;
  SparseLdlt::Options mindeg;
  mindeg.ordering = OrderingMethod::kMinimumDegree;
  const SparseLdlt f_nat(a, natural);
  const SparseLdlt f_md(a, mindeg);
  // Natural ordering eliminates the dense hub first -> complete fill-in;
  // minimum degree defers it -> zero fill (tree).
  EXPECT_EQ(f_nat.factor_nnz(), 39 * 40 / 2);
  EXPECT_EQ(f_md.factor_nnz(), 39);
}

TEST(Rcm, NoFillOnTridiagonal) {
  const SparseMatrix a = tridiagonal(30);
  SparseLdlt::Options opts;
  opts.ordering = OrderingMethod::kReverseCuthillMcKee;
  const SparseLdlt f(a, opts);
  EXPECT_EQ(f.factor_nnz(), 29);  // bandwidth preserved, no fill
}

TEST(IsPermutation, DetectsInvalid) {
  EXPECT_TRUE(is_permutation({}));
  EXPECT_TRUE(is_permutation({0}));
  EXPECT_TRUE(is_permutation({2, 0, 1}));
  EXPECT_FALSE(is_permutation({0, 0}));
  EXPECT_FALSE(is_permutation({1, 2}));
  EXPECT_FALSE(is_permutation({-1, 0}));
}

TEST(OrderingName, AllNamed) {
  EXPECT_STREQ(ordering_name(OrderingMethod::kNatural), "natural");
  EXPECT_STREQ(ordering_name(OrderingMethod::kReverseCuthillMcKee), "rcm");
  EXPECT_STREQ(ordering_name(OrderingMethod::kMinimumDegree), "min-degree");
}

}  // namespace
}  // namespace bbs::linalg
