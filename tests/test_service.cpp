// Service daemon tests: the bounded backpressure queue, the sharded
// dispatcher (structure-affinity routing, graceful shutdown semantics,
// per-worker amortisation counters) and the JSONL session layer (in-order
// response reassembly under multi-worker execution, control messages, the
// Unix-socket front end).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <deque>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "bbs/io/api_io.hpp"
#include "bbs/io/service_io.hpp"
#include "bbs/service/bounded_queue.hpp"
#include "bbs/service/dispatcher.hpp"
#include "bbs/service/jsonl_stream.hpp"
#include "bbs/service/socket_server.hpp"
#include "testing/support.hpp"

namespace bbs {
namespace {

using api::Request;
using api::Response;
using api::ResponseStatus;
using service::BoundedQueue;
using service::Dispatcher;
using service::DispatcherOptions;
using service::JsonlSession;
using service::ServiceStats;

Request solve_request(model::Configuration config, std::string id) {
  Request request;
  request.id = std::move(id);
  request.payload = api::SolveRequest{std::move(config)};
  return request;
}

/// The mixed-structure request stream the multi-worker tests pump: three
/// distinct problem structures (two-graph preset, its video-only variant,
/// the paper's T1), interleaved, with several same-structure repeats whose
/// only differences are wildcarded parameters (required periods).
std::vector<Request> mixed_structure_stream() {
  std::vector<Request> requests;
  int line = 0;
  for (const double scale : {1.0, 1.1, 0.95, 1.2}) {
    model::Configuration preset = testing::multi_graph_sweep();
    preset.mutable_task_graph(0).set_required_period(
        preset.task_graph(0).required_period() * scale);
    requests.push_back(
        solve_request(std::move(preset), "line-" + std::to_string(line++)));

    testing::MultiGraphSweepOptions video_only;
    video_only.include_audio = false;
    model::Configuration video = testing::multi_graph_sweep(video_only);
    video.mutable_task_graph(0).set_required_period(
        video.task_graph(0).required_period() * scale);
    requests.push_back(
        solve_request(std::move(video), "line-" + std::to_string(line++)));

    requests.push_back(solve_request(testing::paper_t1(),
                                     "line-" + std::to_string(line++)));
  }
  return requests;
}

std::string to_jsonl(const std::vector<Request>& requests) {
  std::string stream;
  for (const Request& request : requests) {
    stream += io::write_json_compact(io::request_to_json_value(request));
    stream += '\n';
  }
  return stream;
}

/// Serialises a response with the wall-clock diagnostic zeroed — the only
/// field that legitimately differs between two executions of one request.
std::string normalised(Response response) {
  response.diagnostics.wall_ms = 0.0;
  return io::write_json_compact(io::response_to_json_value(response));
}

std::string normalised_line(const std::string& line) {
  return normalised(io::response_from_json(line));
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

TEST(ServiceQueue, FifoWithinCapacity) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_TRUE(queue.push(3));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::optional<int>(3));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(ServiceQueue, PushBlocksWhileFullAndResumesOnPop) {
  BoundedQueue<int> queue(2);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));

  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(3));  // must block until a slot frees up
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load()) << "push did not exert backpressure";
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(queue.size(), 2u);
}

TEST(ServiceQueue, PopBlocksUntilPush) {
  BoundedQueue<int> queue(2);
  std::promise<int> popped;
  std::thread consumer([&] { popped.set_value(queue.pop().value()); });
  std::future<int> value = popped.get_future();
  EXPECT_EQ(value.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);
  ASSERT_TRUE(queue.push(7));
  EXPECT_EQ(value.get(), 7);
  consumer.join();
}

TEST(ServiceQueue, CloseDrainsBacklogThenSignalsExhaustion) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  queue.close();
  EXPECT_FALSE(queue.push(3)) << "push must fail after close";
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(ServiceQueue, CloseAndTakeHandsBacklogToCaller) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  const std::deque<int> taken = queue.close_and_take();
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0], 1);
  EXPECT_EQ(taken[1], 2);
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_FALSE(queue.push(3));
}

// ---------------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------------

TEST(ServiceDispatcher, RoutingIsStructureAffine) {
  DispatcherOptions options;
  options.workers = 3;
  Dispatcher dispatcher(options);

  // Same structure, different wildcarded parameters: one worker.
  model::Configuration a = testing::multi_graph_sweep();
  model::Configuration b = testing::multi_graph_sweep();
  b.mutable_task_graph(0).set_required_period(
      b.task_graph(0).required_period() * 2.0);
  const Request solve_a = solve_request(a, "a");
  const Request solve_b = solve_request(b, "b");
  EXPECT_EQ(dispatcher.route(solve_a), dispatcher.route(solve_b));
  EXPECT_EQ(dispatcher.route(solve_a), dispatcher.route(solve_a));

  // A sweep over a fully capped graph builds the same program structure as
  // the joint solve, so it must land on the same worker (and session pool).
  Request sweep;
  sweep.payload = api::SweepRequest{a, 0, 1, 4};
  EXPECT_EQ(dispatcher.route(sweep), dispatcher.route(solve_a));
  dispatcher.stop();
}

TEST(ServiceDispatcher, ShutdownDrainsQueuedRequests) {
  DispatcherOptions options;
  options.workers = 1;
  options.queue_capacity = 16;
  Dispatcher dispatcher(options);

  std::atomic<int> completed{0};
  const int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(dispatcher.submit(
        solve_request(testing::paper_t1(), "r" + std::to_string(i)),
        [&](Response response) {
          EXPECT_EQ(response.status, ResponseStatus::kOk);
          ++completed;
        }));
  }
  // Stop immediately: everything accepted must still execute (drain).
  dispatcher.stop(/*drain=*/true);
  EXPECT_EQ(completed.load(), kRequests);
  EXPECT_FALSE(dispatcher.submit(solve_request(testing::paper_t1(), "late"),
                                 [](Response) { FAIL() << "ran after stop"; }));
}

TEST(ServiceDispatcher, FullQueueExertsBackpressureOnSubmit) {
  DispatcherOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  Dispatcher dispatcher(options);

  // Park the worker inside the first request's completion so the queue
  // stays occupied deterministically.
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future(release.get_future());
  std::atomic<int> completed{0};
  ASSERT_TRUE(dispatcher.submit(
      solve_request(testing::paper_t1(), "blocker"), [&](Response) {
        entered.set_value();
        release_future.wait();
        ++completed;
      }));
  entered.get_future().wait();
  // Fills the queue; returns without blocking.
  ASSERT_TRUE(dispatcher.submit(solve_request(testing::paper_t1(), "fill"),
                                [&](Response) { ++completed; }));

  std::atomic<bool> third_accepted{false};
  std::thread producer([&] {
    EXPECT_TRUE(dispatcher.submit(solve_request(testing::paper_t1(), "wait"),
                                  [&](Response) { ++completed; }));
    third_accepted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_accepted.load())
      << "submit did not block on a full worker queue";

  release.set_value();
  producer.join();
  EXPECT_TRUE(third_accepted.load());
  dispatcher.stop(/*drain=*/true);
  EXPECT_EQ(completed.load(), 3);
}

TEST(ServiceDispatcher, StopWithoutDrainErrorCompletesBacklog) {
  DispatcherOptions options;
  options.workers = 1;
  options.queue_capacity = 16;
  Dispatcher dispatcher(options);

  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future(release.get_future());
  std::atomic<int> executed{0};
  std::atomic<int> shutdown_errors{0};
  const auto count = [&](const Response& response) {
    if (response.status == ResponseStatus::kError &&
        response.error == "service is shutting down") {
      ++shutdown_errors;
    } else {
      ++executed;
    }
  };
  ASSERT_TRUE(dispatcher.submit(
      solve_request(testing::paper_t1(), "blocker"), [&](Response response) {
        entered.set_value();
        release_future.wait();
        count(response);
      }));
  entered.get_future().wait();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(dispatcher.submit(
        solve_request(testing::paper_t1(), "backlog" + std::to_string(i)),
        count));
  }

  std::thread stopper([&] { dispatcher.stop(/*drain=*/false); });
  // Give stop() time to close-and-take the backlog before the worker
  // resumes; the dropped requests must then be error-completed, never
  // executed — but every accepted submit still hears back.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release.set_value();
  stopper.join();
  EXPECT_EQ(executed.load(), 1);
  EXPECT_EQ(shutdown_errors.load(), 5);
}

TEST(ServiceDispatcher, PerWorkerStatsReportStructureAmortisation) {
  DispatcherOptions options;
  options.workers = 2;
  options.queue_capacity = 32;
  Dispatcher dispatcher(options);

  const std::vector<Request> stream = mixed_structure_stream();
  // Expected per-worker load, derived from the (stable) routing itself.
  std::map<std::size_t, std::uint64_t> expected_requests;
  std::map<std::size_t, std::set<std::string>> expected_structures;
  for (const Request& request : stream) {
    const std::size_t worker = dispatcher.route(request);
    ++expected_requests[worker];
    expected_structures[worker].insert(api::request_structure_key(request));
  }

  std::atomic<int> completed{0};
  for (const Request& request : stream) {
    ASSERT_TRUE(dispatcher.submit(request, [&](Response response) {
      EXPECT_EQ(response.status, ResponseStatus::kOk);
      ++completed;
    }));
  }
  dispatcher.stop(/*drain=*/true);
  ASSERT_EQ(completed.load(), static_cast<int>(stream.size()));

  const ServiceStats stats = dispatcher.stats();
  ASSERT_EQ(stats.workers.size(), 2u);
  EXPECT_EQ(stats.requests, stream.size());
  EXPECT_EQ(stats.queue_depth, 0u);
  for (const service::WorkerStats& ws : stats.workers) {
    EXPECT_EQ(ws.engine.requests, expected_requests[ws.worker]);
    // The amortisation invariant end to end: one symbolic factorisation
    // per distinct structure routed to this worker, no matter how many
    // requests repeated it; every repeat is a warm pool hit.
    const auto structures =
        static_cast<std::uint64_t>(expected_structures[ws.worker].size());
    EXPECT_EQ(ws.engine.symbolic_factorisations, structures);
    EXPECT_EQ(ws.engine.pool_misses, structures);
    EXPECT_EQ(ws.engine.pool_hits, ws.engine.requests - structures);
  }
}

// ---------------------------------------------------------------------------
// JSONL session layer
// ---------------------------------------------------------------------------

TEST(ServiceJsonl, MultiWorkerStreamStaysAlignedAndDeterministic) {
  const std::vector<Request> stream = mixed_structure_stream();
  const std::string input = to_jsonl(stream);

  // Reference: the same per-structure request order through one sequential
  // engine (what solve_cli --batch runs). Responses of the sharded daemon
  // must be identical modulo wall time.
  api::Engine reference;
  std::vector<std::string> expected;
  for (const Request& request : stream) {
    expected.push_back(normalised(reference.run(request)));
  }

  for (int run = 0; run < 2; ++run) {
    DispatcherOptions options;
    options.workers = 3;
    options.queue_capacity = 4;
    Dispatcher dispatcher(options);
    std::istringstream in(input);
    std::ostringstream out;
    const service::StreamSummary summary =
        service::serve_jsonl(dispatcher, in, out);
    dispatcher.stop();

    EXPECT_EQ(summary.lines, stream.size());
    EXPECT_TRUE(summary.all_ok());
    const std::vector<std::string> lines = split_lines(out.str());
    ASSERT_EQ(lines.size(), stream.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
      // Per-line alignment: response i answers request i (id echo).
      const Response response = io::response_from_json(lines[i]);
      EXPECT_EQ(response.id, stream[i].id) << "line " << i;
      EXPECT_EQ(normalised_line(lines[i]), expected[i]) << "line " << i;
    }
  }
}

TEST(ServiceJsonl, MalformedAndBlankLinesKeepAlignment) {
  DispatcherOptions options;
  options.workers = 2;
  Dispatcher dispatcher(options);

  std::string input;
  input += to_jsonl({solve_request(testing::paper_t1(), "first")});
  input += "\n";            // blank: skipped, no response line
  input += "{not json}\n";  // malformed: error response at this position
  input += "   \t\n";       // whitespace only: skipped
  input += to_jsonl({solve_request(testing::paper_t1(), "last")});

  std::istringstream in(input);
  std::ostringstream out;
  const service::StreamSummary summary =
      service::serve_jsonl(dispatcher, in, out);
  dispatcher.stop();

  EXPECT_EQ(summary.lines, 3u);
  EXPECT_EQ(summary.errors, 1u);
  EXPECT_FALSE(summary.all_ok());
  const std::vector<std::string> lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(io::response_from_json(lines[0]).id, "first");
  const Response error = io::response_from_json(lines[1]);
  EXPECT_EQ(error.status, ResponseStatus::kError);
  EXPECT_EQ(error.kind, "unknown");
  EXPECT_FALSE(error.error.empty());
  EXPECT_EQ(io::response_from_json(lines[2]).id, "last");
}

TEST(ServiceJsonl, StatsControlLineReportsAmortisation) {
  DispatcherOptions options;
  options.workers = 2;
  Dispatcher dispatcher(options);

  const std::vector<Request> stream = mixed_structure_stream();
  std::map<std::size_t, std::set<std::string>> expected_structures;
  for (const Request& request : stream) {
    expected_structures[dispatcher.route(request)].insert(
        api::request_structure_key(request));
  }

  std::string input = to_jsonl(stream);
  input += "{\"kind\":\"stats\",\"id\":\"snap\"}\n";
  std::istringstream in(input);
  std::ostringstream out;
  const service::StreamSummary summary =
      service::serve_jsonl(dispatcher, in, out);
  dispatcher.stop();

  EXPECT_EQ(summary.lines, stream.size() + 1);
  const std::vector<std::string> lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), stream.size() + 1);

  // The stats line resolves at the emission frontier, so it has seen every
  // request before it in the stream.
  const io::JsonValue doc = io::parse_json(lines.back());
  const io::JsonObject& root = doc.as_object();
  EXPECT_EQ(root.at("kind").as_string(), "stats");
  EXPECT_EQ(root.at("id").as_string(), "snap");
  EXPECT_EQ(root.at("status").as_string(), "ok");
  const io::JsonObject& result = root.at("result").as_object();
  EXPECT_EQ(result.at("requests").as_number(),
            static_cast<double>(stream.size()));
  EXPECT_EQ(result.at("queue_depth").as_number(), 0.0);
  const io::JsonArray& workers = result.at("workers").as_array();
  ASSERT_EQ(workers.size(), 2u);
  for (const io::JsonValue& worker : workers) {
    const io::JsonObject& w = worker.as_object();
    const auto index = static_cast<std::size_t>(w.at("worker").as_number());
    const io::JsonObject& engine = w.at("engine").as_object();
    // symbolic_factorisations == 1 per structure-affine repeat group on
    // every worker: the acceptance invariant of the sharded daemon.
    EXPECT_EQ(engine.at("symbolic_factorisations").as_number(),
              static_cast<double>(expected_structures[index].size()));
  }
}

TEST(ServiceJsonl, FastAbortStillAnswersEveryConsumedLine) {
  // stop(drain=false) drops queued work, but a session counting
  // completions must not deadlock in finish(): the dropped lines come
  // back as shutdown errors.
  DispatcherOptions options;
  options.workers = 1;
  options.queue_capacity = 16;
  Dispatcher dispatcher(options);

  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future(release.get_future());
  ASSERT_TRUE(dispatcher.submit(solve_request(testing::paper_t1(), "blocker"),
                                [&](Response) {
                                  entered.set_value();
                                  release_future.wait();
                                }));
  entered.get_future().wait();

  std::vector<std::string> emitted;
  JsonlSession session(dispatcher,
                       [&](const std::string& line) { emitted.push_back(line); });
  for (int i = 0; i < 3; ++i) {
    session.submit_line(io::write_json_compact(io::request_to_json_value(
        solve_request(testing::paper_t1(), "q" + std::to_string(i)))));
  }
  std::thread stopper([&] { dispatcher.stop(/*drain=*/false); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release.set_value();
  stopper.join();

  const service::StreamSummary summary = session.finish();
  EXPECT_EQ(summary.lines, 3u);
  EXPECT_EQ(summary.errors, 3u);
  ASSERT_EQ(emitted.size(), 3u);
  for (std::size_t i = 0; i < emitted.size(); ++i) {
    const Response response = io::response_from_json(emitted[i]);
    EXPECT_EQ(response.id, "q" + std::to_string(i));
    EXPECT_EQ(response.error, "service is shutting down");
  }
}

TEST(ServiceJsonl, SubmitAfterStopAnswersShuttingDown) {
  DispatcherOptions options;
  options.workers = 1;
  Dispatcher dispatcher(options);
  dispatcher.stop();

  std::vector<std::string> emitted;
  {
    JsonlSession session(dispatcher,
                         [&](const std::string& line) { emitted.push_back(line); });
    session.submit_line(io::write_json_compact(io::request_to_json_value(
        solve_request(testing::paper_t1(), "late"))));
    const service::StreamSummary summary = session.finish();
    EXPECT_EQ(summary.errors, 1u);
  }
  ASSERT_EQ(emitted.size(), 1u);
  const Response response = io::response_from_json(emitted[0]);
  EXPECT_EQ(response.status, ResponseStatus::kError);
  EXPECT_EQ(response.id, "late");
  EXPECT_EQ(response.kind, "solve");
  EXPECT_EQ(response.error, "service is shutting down");
}

// ---------------------------------------------------------------------------
// Unix-socket front end
// ---------------------------------------------------------------------------

std::string unique_socket_path() {
  return ::testing::TempDir() + "bbs_service_test_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(ServiceSocket, RoundTripAndGracefulStop) {
  DispatcherOptions options;
  options.workers = 2;
  Dispatcher dispatcher(options);
  const std::string path = unique_socket_path();
  service::SocketServer server(dispatcher, path);

  const std::vector<Request> stream = mixed_structure_stream();
  api::Engine reference;
  std::vector<std::string> expected;
  for (const Request& request : stream) {
    expected.push_back(normalised(reference.run(request)));
  }

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(path.size(), sizeof addr.sun_path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0)
      << std::strerror(errno);

  const std::string input = to_jsonl(stream);
  ASSERT_EQ(::send(fd, input.data(), input.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(input.size()));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);

  std::string output;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    output.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::vector<std::string> lines = split_lines(output);
  ASSERT_EQ(lines.size(), stream.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(normalised_line(lines[i]), expected[i]) << "line " << i;
  }

  EXPECT_EQ(server.connections_accepted(), 1u);
  server.stop();
  dispatcher.stop();
  // stop() unlinks its socket path.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

}  // namespace
}  // namespace bbs
