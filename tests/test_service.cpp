// Service daemon tests: the bounded backpressure queue, the sharded
// dispatcher (structure-affinity routing, work stealing, graceful shutdown
// semantics, per-worker amortisation counters), the JSONL session layer
// (in-order response reassembly under multi-worker execution, control
// messages, per-client quotas) and the socket front end (AF_UNIX + TCP,
// slow-client disconnect policy, socket-path takeover rules).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "bbs/common/assert.hpp"
#include "bbs/io/api_io.hpp"
#include "bbs/io/service_io.hpp"
#include "bbs/service/bounded_queue.hpp"
#include "bbs/service/dispatcher.hpp"
#include "bbs/service/endpoint.hpp"
#include "bbs/service/jsonl_stream.hpp"
#include "bbs/service/socket_server.hpp"
#include "bbs/telemetry/histogram.hpp"
#include "bbs/telemetry/service_telemetry.hpp"
#include "bbs/telemetry/trace.hpp"
#include "testing/normalise.hpp"
#include "testing/support.hpp"

namespace bbs {
namespace {

using api::Request;
using api::Response;
using api::ResponseStatus;
using service::BoundedQueue;
using service::Dispatcher;
using service::DispatcherOptions;
using service::JsonlSession;
using service::ServiceStats;

Request solve_request(model::Configuration config, std::string id) {
  Request request;
  request.id = std::move(id);
  request.payload = api::SolveRequest{std::move(config)};
  return request;
}

/// The mixed-structure request stream the multi-worker tests pump: three
/// distinct problem structures (two-graph preset, its video-only variant,
/// the paper's T1), interleaved, with several same-structure repeats whose
/// only differences are wildcarded parameters (required periods).
std::vector<Request> mixed_structure_stream() {
  std::vector<Request> requests;
  int line = 0;
  for (const double scale : {1.0, 1.1, 0.95, 1.2}) {
    model::Configuration preset = testing::multi_graph_sweep();
    preset.mutable_task_graph(0).set_required_period(
        preset.task_graph(0).required_period() * scale);
    requests.push_back(
        solve_request(std::move(preset), "line-" + std::to_string(line++)));

    testing::MultiGraphSweepOptions video_only;
    video_only.include_audio = false;
    model::Configuration video = testing::multi_graph_sweep(video_only);
    video.mutable_task_graph(0).set_required_period(
        video.task_graph(0).required_period() * scale);
    requests.push_back(
        solve_request(std::move(video), "line-" + std::to_string(line++)));

    requests.push_back(solve_request(testing::paper_t1(),
                                     "line-" + std::to_string(line++)));
  }
  return requests;
}

std::string to_jsonl(const std::vector<Request>& requests) {
  std::string stream;
  for (const Request& request : requests) {
    stream += io::write_json_compact(io::request_to_json_value(request));
    stream += '\n';
  }
  return stream;
}

using testing::normalised;
using testing::normalised_line;

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

TEST(ServiceQueue, FifoWithinCapacity) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_TRUE(queue.push(3));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::optional<int>(3));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(ServiceQueue, PushBlocksWhileFullAndResumesOnPop) {
  BoundedQueue<int> queue(2);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));

  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(3));  // must block until a slot frees up
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load()) << "push did not exert backpressure";
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(queue.size(), 2u);
}

TEST(ServiceQueue, PopBlocksUntilPush) {
  BoundedQueue<int> queue(2);
  std::promise<int> popped;
  std::thread consumer([&] { popped.set_value(queue.pop().value()); });
  std::future<int> value = popped.get_future();
  EXPECT_EQ(value.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);
  ASSERT_TRUE(queue.push(7));
  EXPECT_EQ(value.get(), 7);
  consumer.join();
}

TEST(ServiceQueue, CloseDrainsBacklogThenSignalsExhaustion) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  queue.close();
  EXPECT_FALSE(queue.push(3)) << "push must fail after close";
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(ServiceQueue, TimedPushReportsTimeoutOnFullQueueAndClosedAfterClose) {
  BoundedQueue<int> queue(1);
  ASSERT_EQ(queue.push_wait_for(1, std::chrono::milliseconds(10)),
            service::PushResult::kPushed);
  // Full queue, nobody popping: the deadline expires and the queue is
  // unchanged — the slow-client policy signal.
  ASSERT_EQ(queue.push_wait_for(2, std::chrono::milliseconds(10)),
            service::PushResult::kTimeout);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  queue.close();
  EXPECT_EQ(queue.push_wait_for(3, std::chrono::milliseconds(10)),
            service::PushResult::kClosed);
}

TEST(ServiceQueue, TryPopAndTimedPopDistinguishEmptyFromClosed) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.try_pop(), std::nullopt);
  EXPECT_EQ(queue.pop_for(std::chrono::milliseconds(10)), std::nullopt);
  EXPECT_FALSE(queue.closed());
  ASSERT_TRUE(queue.push(7));
  EXPECT_EQ(queue.try_pop(), std::optional<int>(7));
  ASSERT_TRUE(queue.push(8));
  queue.close();
  // pop_for still drains the backlog of a closed queue before the
  // closed-and-empty exit condition becomes observable.
  EXPECT_EQ(queue.pop_for(std::chrono::milliseconds(10)), std::optional<int>(8));
  EXPECT_EQ(queue.pop_for(std::chrono::milliseconds(10)), std::nullopt);
  EXPECT_TRUE(queue.closed() && queue.size() == 0);
}

TEST(ServiceQueue, CloseAndTakeHandsBacklogToCaller) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  const std::deque<int> taken = queue.close_and_take();
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0], 1);
  EXPECT_EQ(taken[1], 2);
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_FALSE(queue.push(3));
}

// ---------------------------------------------------------------------------
// Endpoint grammar
// ---------------------------------------------------------------------------

TEST(ServiceEndpoint, ParsesUnixBareAndTcpSpecs) {
  const service::Endpoint u = service::parse_endpoint("unix:/tmp/bbs.sock");
  EXPECT_EQ(u.kind, service::Endpoint::Kind::kUnix);
  EXPECT_EQ(u.path, "/tmp/bbs.sock");
  EXPECT_EQ(u.to_string(), "unix:/tmp/bbs.sock");

  // Bare path: PR 5 back compat.
  const service::Endpoint bare = service::parse_endpoint("/run/bbs.sock");
  EXPECT_EQ(bare.kind, service::Endpoint::Kind::kUnix);
  EXPECT_EQ(bare.path, "/run/bbs.sock");

  const service::Endpoint t = service::parse_endpoint("tcp://127.0.0.1:7421");
  EXPECT_EQ(t.kind, service::Endpoint::Kind::kTcp);
  EXPECT_EQ(t.host, "127.0.0.1");
  EXPECT_EQ(t.port, 7421);
  EXPECT_EQ(t.to_string(), "tcp://127.0.0.1:7421");

  const service::Endpoint v6 = service::parse_endpoint("tcp://[::1]:80");
  EXPECT_EQ(v6.kind, service::Endpoint::Kind::kTcp);
  EXPECT_EQ(v6.host, "::1");
  EXPECT_EQ(v6.port, 80);
  EXPECT_EQ(v6.to_string(), "tcp://[::1]:80");

  EXPECT_EQ(service::parse_endpoint("tcp://0.0.0.0:0").port, 0);
}

TEST(ServiceEndpoint, RejectsMalformedSpecs) {
  EXPECT_THROW(service::parse_endpoint(""), ModelError);
  EXPECT_THROW(service::parse_endpoint("unix:"), ModelError);
  EXPECT_THROW(service::parse_endpoint("tcp://:80"), ModelError);
  EXPECT_THROW(service::parse_endpoint("tcp://host"), ModelError);
  EXPECT_THROW(service::parse_endpoint("tcp://host:"), ModelError);
  EXPECT_THROW(service::parse_endpoint("tcp://host:abc"), ModelError);
  EXPECT_THROW(service::parse_endpoint("tcp://host:70000"), ModelError);
  EXPECT_THROW(service::parse_endpoint("tcp://[::1"), ModelError);
  EXPECT_THROW(service::parse_endpoint("tcp://[::1]80"), ModelError);
}

// ---------------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------------

TEST(ServiceDispatcher, RoutingIsStructureAffine) {
  DispatcherOptions options;
  options.workers = 3;
  Dispatcher dispatcher(options);

  // Same structure, different wildcarded parameters: one worker.
  model::Configuration a = testing::multi_graph_sweep();
  model::Configuration b = testing::multi_graph_sweep();
  b.mutable_task_graph(0).set_required_period(
      b.task_graph(0).required_period() * 2.0);
  const Request solve_a = solve_request(a, "a");
  const Request solve_b = solve_request(b, "b");
  EXPECT_EQ(dispatcher.route(solve_a), dispatcher.route(solve_b));
  EXPECT_EQ(dispatcher.route(solve_a), dispatcher.route(solve_a));

  // A sweep over a fully capped graph builds the same program structure as
  // the joint solve, so it must land on the same worker (and session pool).
  Request sweep;
  sweep.payload = api::SweepRequest{a, 0, 1, 4};
  EXPECT_EQ(dispatcher.route(sweep), dispatcher.route(solve_a));
  dispatcher.stop();
}

TEST(ServiceDispatcher, ShutdownDrainsQueuedRequests) {
  DispatcherOptions options;
  options.workers = 1;
  options.queue_capacity = 16;
  Dispatcher dispatcher(options);

  std::atomic<int> completed{0};
  const int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(dispatcher.submit(
        solve_request(testing::paper_t1(), "r" + std::to_string(i)),
        [&](Response response) {
          EXPECT_EQ(response.status, ResponseStatus::kOk);
          ++completed;
        }));
  }
  // Stop immediately: everything accepted must still execute (drain).
  dispatcher.stop(/*drain=*/true);
  EXPECT_EQ(completed.load(), kRequests);
  EXPECT_FALSE(dispatcher.submit(solve_request(testing::paper_t1(), "late"),
                                 [](Response) { FAIL() << "ran after stop"; }));
}

TEST(ServiceDispatcher, FullQueueExertsBackpressureOnSubmit) {
  DispatcherOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  Dispatcher dispatcher(options);

  // Park the worker inside the first request's completion so the queue
  // stays occupied deterministically.
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future(release.get_future());
  std::atomic<int> completed{0};
  ASSERT_TRUE(dispatcher.submit(
      solve_request(testing::paper_t1(), "blocker"), [&](Response) {
        entered.set_value();
        release_future.wait();
        ++completed;
      }));
  entered.get_future().wait();
  // Fills the queue; returns without blocking.
  ASSERT_TRUE(dispatcher.submit(solve_request(testing::paper_t1(), "fill"),
                                [&](Response) { ++completed; }));

  std::atomic<bool> third_accepted{false};
  std::thread producer([&] {
    EXPECT_TRUE(dispatcher.submit(solve_request(testing::paper_t1(), "wait"),
                                  [&](Response) { ++completed; }));
    third_accepted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_accepted.load())
      << "submit did not block on a full worker queue";

  release.set_value();
  producer.join();
  EXPECT_TRUE(third_accepted.load());
  dispatcher.stop(/*drain=*/true);
  EXPECT_EQ(completed.load(), 3);
}

TEST(ServiceDispatcher, StopWithoutDrainErrorCompletesBacklog) {
  DispatcherOptions options;
  options.workers = 1;
  options.queue_capacity = 16;
  Dispatcher dispatcher(options);

  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future(release.get_future());
  std::atomic<int> executed{0};
  std::atomic<int> shutdown_errors{0};
  const auto count = [&](const Response& response) {
    if (response.status == ResponseStatus::kError &&
        response.error == "service is shutting down") {
      ++shutdown_errors;
    } else {
      ++executed;
    }
  };
  ASSERT_TRUE(dispatcher.submit(
      solve_request(testing::paper_t1(), "blocker"), [&](Response response) {
        entered.set_value();
        release_future.wait();
        count(response);
      }));
  entered.get_future().wait();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(dispatcher.submit(
        solve_request(testing::paper_t1(), "backlog" + std::to_string(i)),
        count));
  }

  std::thread stopper([&] { dispatcher.stop(/*drain=*/false); });
  // Give stop() time to close-and-take the backlog before the worker
  // resumes; the dropped requests must then be error-completed, never
  // executed — but every accepted submit still hears back.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release.set_value();
  stopper.join();
  EXPECT_EQ(executed.load(), 1);
  EXPECT_EQ(shutdown_errors.load(), 5);
}

TEST(ServiceDispatcher, PerWorkerStatsReportStructureAmortisation) {
  DispatcherOptions options;
  options.workers = 2;
  options.queue_capacity = 32;
  // This test asserts per-worker counters as exact functions of route();
  // an idle-worker steal would legitimately shift them.
  options.work_stealing = false;
  Dispatcher dispatcher(options);

  const std::vector<Request> stream = mixed_structure_stream();
  // Expected per-worker load, derived from the (stable) routing itself.
  std::map<std::size_t, std::uint64_t> expected_requests;
  std::map<std::size_t, std::set<std::string>> expected_structures;
  for (const Request& request : stream) {
    const std::size_t worker = dispatcher.route(request);
    ++expected_requests[worker];
    expected_structures[worker].insert(api::request_structure_key(request));
  }

  std::atomic<int> completed{0};
  for (const Request& request : stream) {
    ASSERT_TRUE(dispatcher.submit(request, [&](Response response) {
      EXPECT_EQ(response.status, ResponseStatus::kOk);
      ++completed;
    }));
  }
  dispatcher.stop(/*drain=*/true);
  ASSERT_EQ(completed.load(), static_cast<int>(stream.size()));

  const ServiceStats stats = dispatcher.stats();
  ASSERT_EQ(stats.workers.size(), 2u);
  EXPECT_EQ(stats.requests, stream.size());
  EXPECT_EQ(stats.queue_depth, 0u);
  for (const service::WorkerStats& ws : stats.workers) {
    EXPECT_EQ(ws.engine.requests, expected_requests[ws.worker]);
    // The amortisation invariant end to end: one symbolic factorisation
    // per distinct structure routed to this worker, no matter how many
    // requests repeated it; every repeat is a warm pool hit.
    const auto structures =
        static_cast<std::uint64_t>(expected_structures[ws.worker].size());
    EXPECT_EQ(ws.engine.symbolic_factorisations, structures);
    EXPECT_EQ(ws.engine.pool_misses, structures);
    EXPECT_EQ(ws.engine.pool_hits, ws.engine.requests - structures);
  }
}

TEST(ServiceDispatcher, IdleWorkerStealsFromDeepPeerQueue) {
  DispatcherOptions options;
  options.workers = 2;
  options.queue_capacity = 16;
  options.steal_poll_interval = std::chrono::milliseconds(200);
  Dispatcher dispatcher(options);

  // Let both workers park inside their idle pop_for wait before the blocker
  // arrives. The push wakes only the affinity worker (its own queue), and
  // the peer's next steal rescan is a full poll interval away — so the
  // blocker itself deterministically cannot be stolen, only the backlog.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Park the structure's affinity worker inside the first request's
  // completion so its queue backs up deterministically; the idle peer must
  // steal and execute the backlog even though every request routes to the
  // parked worker.
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future(release.get_future());
  ASSERT_TRUE(dispatcher.submit(solve_request(testing::paper_t1(), "blocker"),
                                [&](Response) {
                                  entered.set_value();
                                  release_future.wait();
                                }));
  entered.get_future().wait();

  const int kBacklog = 5;
  std::atomic<int> completed{0};
  std::promise<void> backlog_done;
  for (int i = 0; i < kBacklog; ++i) {
    ASSERT_TRUE(dispatcher.submit(
        solve_request(testing::paper_t1(), "steal" + std::to_string(i)),
        [&](Response response) {
          EXPECT_EQ(response.status, ResponseStatus::kOk);
          if (completed.fetch_add(1) + 1 == kBacklog) {
            backlog_done.set_value();
          }
        }));
  }
  // The affinity worker is still parked, so only steals can complete these.
  backlog_done.get_future().wait();
  EXPECT_EQ(completed.load(), kBacklog);
  release.set_value();
  dispatcher.stop(/*drain=*/true);

  const ServiceStats stats = dispatcher.stats();
  EXPECT_EQ(stats.stolen, static_cast<std::uint64_t>(kBacklog));
  std::uint64_t per_worker_stolen = 0;
  for (const service::WorkerStats& ws : stats.workers) {
    per_worker_stolen += ws.stolen;
  }
  EXPECT_EQ(per_worker_stolen, stats.stolen);
}

// ---------------------------------------------------------------------------
// JSONL session layer
// ---------------------------------------------------------------------------

TEST(ServiceJsonl, MultiWorkerStreamStaysAlignedAndDeterministic) {
  const std::vector<Request> stream = mixed_structure_stream();
  const std::string input = to_jsonl(stream);

  // Reference: the same per-structure request order through one sequential
  // engine (what solve_cli --batch runs). Responses of the sharded daemon
  // must be identical modulo wall time.
  api::Engine reference;
  std::vector<std::string> expected;
  for (const Request& request : stream) {
    expected.push_back(normalised(reference.run(request)));
  }

  for (int run = 0; run < 2; ++run) {
    DispatcherOptions options;
    options.workers = 3;
    options.queue_capacity = 4;
    // Byte-identity with the sequential reference relies on pure affinity
    // routing: a steal would run a request on a cold peer engine and change
    // its warm-start diagnostics (the bbs_serve --no-steal mode).
    options.work_stealing = false;
    Dispatcher dispatcher(options);
    std::istringstream in(input);
    std::ostringstream out;
    const service::StreamSummary summary =
        service::serve_jsonl(dispatcher, in, out);
    dispatcher.stop();

    EXPECT_EQ(summary.lines, stream.size());
    EXPECT_TRUE(summary.all_ok());
    const std::vector<std::string> lines = split_lines(out.str());
    ASSERT_EQ(lines.size(), stream.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
      // Per-line alignment: response i answers request i (id echo).
      const Response response = io::response_from_json(lines[i]);
      EXPECT_EQ(response.id, stream[i].id) << "line " << i;
      EXPECT_EQ(normalised_line(lines[i]), expected[i]) << "line " << i;
    }
  }
}

TEST(ServiceJsonl, MalformedAndBlankLinesKeepAlignment) {
  DispatcherOptions options;
  options.workers = 2;
  Dispatcher dispatcher(options);

  std::string input;
  input += to_jsonl({solve_request(testing::paper_t1(), "first")});
  input += "\n";            // blank: skipped, no response line
  input += "{not json}\n";  // malformed: error response at this position
  input += "   \t\n";       // whitespace only: skipped
  input += to_jsonl({solve_request(testing::paper_t1(), "last")});

  std::istringstream in(input);
  std::ostringstream out;
  const service::StreamSummary summary =
      service::serve_jsonl(dispatcher, in, out);
  dispatcher.stop();

  EXPECT_EQ(summary.lines, 3u);
  EXPECT_EQ(summary.errors, 1u);
  EXPECT_FALSE(summary.all_ok());
  const std::vector<std::string> lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(io::response_from_json(lines[0]).id, "first");
  const Response error = io::response_from_json(lines[1]);
  EXPECT_EQ(error.status, ResponseStatus::kError);
  EXPECT_EQ(error.kind, "unknown");
  EXPECT_FALSE(error.error.empty());
  EXPECT_EQ(io::response_from_json(lines[2]).id, "last");
}

TEST(ServiceJsonl, StatsControlLineReportsAmortisation) {
  DispatcherOptions options;
  options.workers = 2;
  options.work_stealing = false;  // exact per-worker counters (see above)
  Dispatcher dispatcher(options);

  const std::vector<Request> stream = mixed_structure_stream();
  std::map<std::size_t, std::set<std::string>> expected_structures;
  for (const Request& request : stream) {
    expected_structures[dispatcher.route(request)].insert(
        api::request_structure_key(request));
  }

  std::string input = to_jsonl(stream);
  input += "{\"kind\":\"stats\",\"id\":\"snap\"}\n";
  std::istringstream in(input);
  std::ostringstream out;
  const service::StreamSummary summary =
      service::serve_jsonl(dispatcher, in, out);
  dispatcher.stop();

  EXPECT_EQ(summary.lines, stream.size() + 1);
  const std::vector<std::string> lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), stream.size() + 1);

  // The stats line resolves at the emission frontier, so it has seen every
  // request before it in the stream.
  const io::JsonValue doc = io::parse_json(lines.back());
  const io::JsonObject& root = doc.as_object();
  EXPECT_EQ(root.at("kind").as_string(), "stats");
  EXPECT_EQ(root.at("id").as_string(), "snap");
  EXPECT_EQ(root.at("status").as_string(), "ok");
  const io::JsonObject& result = root.at("result").as_object();
  EXPECT_EQ(result.at("requests").as_number(),
            static_cast<double>(stream.size()));
  EXPECT_EQ(result.at("queue_depth").as_number(), 0.0);
  // Transport/steal counters are present (zero here: no socket front end,
  // stealing disabled, no quotas configured).
  EXPECT_EQ(result.at("stolen").as_number(), 0.0);
  EXPECT_EQ(result.at("accept_failures").as_number(), 0.0);
  EXPECT_EQ(result.at("slow_client_disconnects").as_number(), 0.0);
  EXPECT_EQ(result.at("quota_rejections").as_number(), 0.0);
  EXPECT_TRUE(result.at("connection_outbox_depths").as_array().empty());
  const io::JsonArray& workers = result.at("workers").as_array();
  ASSERT_EQ(workers.size(), 2u);
  for (const io::JsonValue& worker : workers) {
    const io::JsonObject& w = worker.as_object();
    const auto index = static_cast<std::size_t>(w.at("worker").as_number());
    const io::JsonObject& engine = w.at("engine").as_object();
    // symbolic_factorisations == 1 per structure-affine repeat group on
    // every worker: the acceptance invariant of the sharded daemon.
    EXPECT_EQ(engine.at("symbolic_factorisations").as_number(),
              static_cast<double>(expected_structures[index].size()));
  }
}

TEST(ServiceJsonl, FastAbortStillAnswersEveryConsumedLine) {
  // stop(drain=false) drops queued work, but a session counting
  // completions must not deadlock in finish(): the dropped lines come
  // back as shutdown errors.
  DispatcherOptions options;
  options.workers = 1;
  options.queue_capacity = 16;
  Dispatcher dispatcher(options);

  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future(release.get_future());
  ASSERT_TRUE(dispatcher.submit(solve_request(testing::paper_t1(), "blocker"),
                                [&](Response) {
                                  entered.set_value();
                                  release_future.wait();
                                }));
  entered.get_future().wait();

  std::vector<std::string> emitted;
  JsonlSession session(dispatcher,
                       [&](const std::string& line) { emitted.push_back(line); });
  for (int i = 0; i < 3; ++i) {
    session.submit_line(io::write_json_compact(io::request_to_json_value(
        solve_request(testing::paper_t1(), "q" + std::to_string(i)))));
  }
  std::thread stopper([&] { dispatcher.stop(/*drain=*/false); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release.set_value();
  stopper.join();

  const service::StreamSummary summary = session.finish();
  EXPECT_EQ(summary.lines, 3u);
  EXPECT_EQ(summary.errors, 3u);
  ASSERT_EQ(emitted.size(), 3u);
  for (std::size_t i = 0; i < emitted.size(); ++i) {
    const Response response = io::response_from_json(emitted[i]);
    EXPECT_EQ(response.id, "q" + std::to_string(i));
    EXPECT_EQ(response.error, "service is shutting down");
  }
}

TEST(ServiceJsonl, SubmitAfterStopAnswersShuttingDown) {
  DispatcherOptions options;
  options.workers = 1;
  Dispatcher dispatcher(options);
  dispatcher.stop();

  std::vector<std::string> emitted;
  {
    JsonlSession session(dispatcher,
                         [&](const std::string& line) { emitted.push_back(line); });
    session.submit_line(io::write_json_compact(io::request_to_json_value(
        solve_request(testing::paper_t1(), "late"))));
    const service::StreamSummary summary = session.finish();
    EXPECT_EQ(summary.errors, 1u);
  }
  ASSERT_EQ(emitted.size(), 1u);
  const Response response = io::response_from_json(emitted[0]);
  EXPECT_EQ(response.status, ResponseStatus::kError);
  EXPECT_EQ(response.id, "late");
  EXPECT_EQ(response.kind, "solve");
  EXPECT_EQ(response.error, "service is shutting down");
}

TEST(ServiceJsonl, MaxInFlightQuotaRejectsWithStructuredError) {
  DispatcherOptions options;
  options.workers = 1;
  options.queue_capacity = 16;
  Dispatcher dispatcher(options);

  // Park the worker so the first session line stays in flight.
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future(release.get_future());
  ASSERT_TRUE(dispatcher.submit(solve_request(testing::paper_t1(), "blocker"),
                                [&](Response) {
                                  entered.set_value();
                                  release_future.wait();
                                }));
  entered.get_future().wait();

  std::atomic<int> rejections{0};
  service::SessionOptions session_options;
  session_options.max_in_flight = 1;
  session_options.on_quota_rejection = [&] { ++rejections; };
  std::vector<std::string> emitted;
  service::JsonlSession session(
      dispatcher, [&](const std::string& line) { emitted.push_back(line); },
      std::move(session_options));
  for (int i = 0; i < 3; ++i) {
    session.submit_line(io::write_json_compact(io::request_to_json_value(
        solve_request(testing::paper_t1(), "q" + std::to_string(i)))));
  }
  release.set_value();
  const service::StreamSummary summary = session.finish();
  dispatcher.stop(/*drain=*/true);

  // Line 0 was dispatched (1 in flight); lines 1 and 2 were over quota and
  // answered immediately with structured errors — never queued.
  EXPECT_EQ(summary.lines, 3u);
  EXPECT_EQ(summary.ok, 1u);
  EXPECT_EQ(summary.errors, 2u);
  EXPECT_EQ(summary.quota_rejections, 2u);
  EXPECT_EQ(rejections.load(), 2);
  ASSERT_EQ(emitted.size(), 3u);
  EXPECT_EQ(io::response_from_json(emitted[0]).status, ResponseStatus::kOk);
  for (std::size_t i = 1; i < 3; ++i) {
    const Response response = io::response_from_json(emitted[i]);
    EXPECT_EQ(response.status, ResponseStatus::kError);
    EXPECT_EQ(response.id, "q" + std::to_string(i));
    EXPECT_EQ(response.kind, "solve");
    EXPECT_NE(response.error.find("over quota"), std::string::npos)
        << response.error;
  }
}

TEST(ServiceJsonl, RateLimitQuotaRejectsAndStatsHookReportsIt) {
  DispatcherOptions options;
  options.workers = 1;
  Dispatcher dispatcher(options);

  std::atomic<std::uint64_t> rejections{0};
  service::SessionOptions session_options;
  // A practically-zero refill rate: the bucket holds exactly one initial
  // token (burst = max(1, rps)), so of three back-to-back lines only the
  // first is admitted, deterministically.
  session_options.requests_per_second = 1e-6;
  session_options.on_quota_rejection = [&] { ++rejections; };
  session_options.stats_hook = [&](ServiceStats& stats) {
    stats.quota_rejections = rejections.load();
  };
  std::vector<std::string> emitted;
  service::JsonlSession session(
      dispatcher, [&](const std::string& line) { emitted.push_back(line); },
      std::move(session_options));
  for (int i = 0; i < 3; ++i) {
    session.submit_line(io::write_json_compact(io::request_to_json_value(
        solve_request(testing::paper_t1(), "r" + std::to_string(i)))));
  }
  // Control lines are never charged against the bucket, and the stats hook
  // folds the transport-owned rejection counter into the snapshot.
  session.submit_line("{\"kind\":\"stats\",\"id\":\"after\"}");
  const service::StreamSummary summary = session.finish();
  dispatcher.stop(/*drain=*/true);

  EXPECT_EQ(summary.lines, 4u);
  EXPECT_EQ(summary.quota_rejections, 2u);
  EXPECT_EQ(rejections.load(), 2u);
  ASSERT_EQ(emitted.size(), 4u);
  for (std::size_t i = 1; i < 3; ++i) {
    const Response response = io::response_from_json(emitted[i]);
    EXPECT_EQ(response.status, ResponseStatus::kError);
    EXPECT_NE(response.error.find("rate limit"), std::string::npos);
  }
  const io::JsonValue stats_doc = io::parse_json(emitted[3]);
  const io::JsonObject& stats_root = stats_doc.as_object();
  EXPECT_EQ(stats_root.at("status").as_string(), "ok");
  EXPECT_EQ(
      stats_root.at("result").as_object().at("quota_rejections").as_number(),
      2.0);
}

// ---------------------------------------------------------------------------
// Request tracing: the {"kind":"trace"} control line and span invariants
// ---------------------------------------------------------------------------

Request traced_solve_request(model::Configuration config, std::string id,
                             bool ipm = false) {
  Request request = solve_request(std::move(config), std::move(id));
  request.options.trace = true;
  request.options.trace_ipm = ipm;
  return request;
}

/// Returns the events named `name` from a serialised trace document.
std::vector<io::JsonObject> trace_events_named(const io::JsonValue& trace,
                                               const std::string& name) {
  std::vector<io::JsonObject> found;
  for (const io::JsonValue& event :
       trace.as_object().at("events").as_array()) {
    if (event.as_object().at("name").as_string() == name) {
      found.push_back(event.as_object());
    }
  }
  return found;
}

TEST(ServiceTrace, ControlLineServesSpansConsistentWithWallTime) {
  DispatcherOptions options;
  options.workers = 1;
  Dispatcher dispatcher(options);
  telemetry::TraceRing ring(16);
  service::SessionOptions session_options;
  session_options.trace_ring = &ring;

  std::vector<std::string> emitted;
  service::JsonlSession session(
      dispatcher, [&](const std::string& line) { emitted.push_back(line); },
      std::move(session_options));
  session.submit_line(io::write_json_compact(io::request_to_json_value(
      traced_solve_request(testing::paper_t1(), "traced"))));
  session.submit_line("{\"kind\":\"trace\",\"id\":\"probe\"}");
  session.submit_line(
      "{\"kind\":\"trace\",\"id\":\"probe2\",\"min_duration_ms\":1e9}");
  const service::StreamSummary summary = session.finish();
  dispatcher.stop();
  EXPECT_EQ(summary.errors, 0u);
  ASSERT_EQ(emitted.size(), 3u);

  // The solve response echoes the trace id in its diagnostics.
  const Response solved = io::response_from_json(emitted[0]);
  ASSERT_EQ(solved.status, ResponseStatus::kOk) << solved.error;
  const std::string trace_id = solved.diagnostics.trace_id;
  ASSERT_EQ(trace_id.size(), 16u);

  // The probe serves that trace from the ring, newest first.
  const io::JsonValue probe = io::parse_json(emitted[1]);
  EXPECT_EQ(probe.as_object().at("kind").as_string(), "trace");
  EXPECT_EQ(probe.as_object().at("id").as_string(), "probe");
  const io::JsonObject& result = probe.as_object().at("result").as_object();
  EXPECT_EQ(result.at("recorded").as_number(), 1.0);
  EXPECT_EQ(result.at("capacity").as_number(), 16.0);
  const io::JsonArray& traces = result.at("traces").as_array();
  ASSERT_EQ(traces.size(), 1u);
  const io::JsonObject& trace = traces[0].as_object();
  EXPECT_EQ(trace.at("id").as_string(), trace_id);
  EXPECT_EQ(trace.at("kind").as_string(), "solve");
  EXPECT_EQ(trace.at("status").as_string(), "ok");

  // Every pipeline hop is present exactly once, in causal order.
  const double wall_ms = trace.at("wall_ms").as_number();
  double span_sum = 0.0;
  double previous_end = 0.0;
  for (const char* name : {"queue", "solve", "write"}) {
    const std::vector<io::JsonObject> spans =
        trace_events_named(traces[0], name);
    ASSERT_EQ(spans.size(), 1u) << name;
    const double t = spans[0].at("t_ms").as_number();
    const double dur = spans[0].at("dur_ms").as_number();
    EXPECT_GE(dur, 0.0) << name;
    // Spans do not overlap: each starts at or after the previous one ended
    // (a small slack absorbs cross-thread clock reads).
    EXPECT_GE(t, previous_end - 0.5) << name;
    previous_end = t + dur;
    span_sum += dur;
  }
  EXPECT_EQ(trace_events_named(traces[0], "accept").size(), 1u);
  EXPECT_EQ(trace_events_named(traces[0], "enqueue").size(), 1u);
  // The stages partition the wall time: their sum never exceeds it, and
  // the last span ends at or before close.
  EXPECT_LE(span_sum, wall_ms * 1.05 + 0.5);
  EXPECT_LE(previous_end, wall_ms + 0.5);
  // Untraced by default: no per-IPM-iteration events without trace_ipm.
  EXPECT_TRUE(trace_events_named(traces[0], "ipm_iteration").empty());

  // An unsatisfiable duration floor matches nothing.
  const io::JsonValue empty_probe = io::parse_json(emitted[2]);
  EXPECT_TRUE(empty_probe.as_object()
                  .at("result")
                  .as_object()
                  .at("traces")
                  .as_array()
                  .empty());
}

TEST(ServiceTrace, IpmIntrospectionIsPerRequestOptIn) {
  DispatcherOptions options;
  options.workers = 1;
  Dispatcher dispatcher(options);
  telemetry::TraceRing ring(16);
  service::SessionOptions session_options;
  session_options.trace_ring = &ring;

  std::vector<std::string> emitted;
  service::JsonlSession session(
      dispatcher, [&](const std::string& line) { emitted.push_back(line); },
      std::move(session_options));
  session.submit_line(io::write_json_compact(io::request_to_json_value(
      traced_solve_request(testing::paper_t1(), "deep", /*ipm=*/true))));
  session.submit_line("{\"kind\":\"trace\"}");
  session.finish();
  dispatcher.stop();
  ASSERT_EQ(emitted.size(), 2u);

  const Response solved = io::response_from_json(emitted[0]);
  ASSERT_EQ(solved.status, ResponseStatus::kOk) << solved.error;
  const io::JsonValue probe = io::parse_json(emitted[1]);
  const io::JsonArray& traces =
      probe.as_object().at("result").as_object().at("traces").as_array();
  ASSERT_EQ(traces.size(), 1u);
  // One event per IPM loop pass, including the pass that observes
  // convergence — one more than the iteration count the solve reports.
  const std::vector<io::JsonObject> iterations =
      trace_events_named(traces[0], "ipm_iteration");
  ASSERT_GE(iterations.size(), 3u);
  EXPECT_EQ(iterations.size(),
            static_cast<std::size_t>(solved.diagnostics.ipm_iterations) + 1);
  for (const io::JsonObject& iteration : iterations) {
    EXPECT_TRUE(iteration.contains("mu"));
    EXPECT_TRUE(iteration.contains("step"));
  }
}

TEST(ServiceTrace, ShedRequestsCloseWithATerminalEvent) {
  DispatcherOptions options;
  options.workers = 1;
  options.queue_capacity = 16;
  Dispatcher dispatcher(options);
  telemetry::TraceRing ring(16);

  // Park the worker, queue traced requests behind it, then abort without
  // draining: the dropped tasks must still close their traces with a
  // terminal "shed" event.
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future(release.get_future());
  ASSERT_TRUE(dispatcher.submit(solve_request(testing::paper_t1(), "blocker"),
                                [&](Response) {
                                  entered.set_value();
                                  release_future.wait();
                                }));
  entered.get_future().wait();

  service::SessionOptions session_options;
  session_options.trace_ring = &ring;
  std::vector<std::string> emitted;
  service::JsonlSession session(
      dispatcher, [&](const std::string& line) { emitted.push_back(line); },
      std::move(session_options));
  for (int i = 0; i < 2; ++i) {
    session.submit_line(io::write_json_compact(io::request_to_json_value(
        traced_solve_request(testing::paper_t1(), "q" + std::to_string(i)))));
  }
  std::thread stopper([&] { dispatcher.stop(/*drain=*/false); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release.set_value();
  stopper.join();
  const service::StreamSummary summary = session.finish();
  EXPECT_EQ(summary.errors, 2u);

  telemetry::TraceFilter errors;
  errors.errors_only = true;
  const auto shed = ring.collect(errors);
  ASSERT_EQ(shed.size(), 2u);
  for (const auto& trace : shed) {
    EXPECT_TRUE(trace->closed());
    EXPECT_EQ(trace->status(), "error");
    const io::JsonValue doc = trace->to_json_value();
    const std::vector<io::JsonObject> events =
        trace_events_named(doc, "shed");
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].at("detail").as_string(), "shutdown");
    // A shed request never ran: no solve span.
    EXPECT_TRUE(trace_events_named(doc, "solve").empty());
  }
}

TEST(ServiceTrace, QuotaRejectedRequestsCloseWithATerminalEvent) {
  DispatcherOptions options;
  options.workers = 1;
  options.queue_capacity = 16;
  Dispatcher dispatcher(options);
  telemetry::TraceRing ring(16);

  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future(release.get_future());
  ASSERT_TRUE(dispatcher.submit(solve_request(testing::paper_t1(), "blocker"),
                                [&](Response) {
                                  entered.set_value();
                                  release_future.wait();
                                }));
  entered.get_future().wait();

  service::SessionOptions session_options;
  session_options.trace_ring = &ring;
  session_options.max_in_flight = 1;
  std::vector<std::string> emitted;
  service::JsonlSession session(
      dispatcher, [&](const std::string& line) { emitted.push_back(line); },
      std::move(session_options));
  session.submit_line(io::write_json_compact(io::request_to_json_value(
      traced_solve_request(testing::paper_t1(), "admitted"))));
  session.submit_line(io::write_json_compact(io::request_to_json_value(
      traced_solve_request(testing::paper_t1(), "rejected"))));
  release.set_value();
  session.finish();
  dispatcher.stop(/*drain=*/true);

  telemetry::TraceFilter errors;
  errors.errors_only = true;
  const auto rejected = ring.collect(errors);
  ASSERT_EQ(rejected.size(), 1u);
  const io::JsonValue doc = rejected[0]->to_json_value();
  EXPECT_EQ(trace_events_named(doc, "quota_rejected").size(), 1u);
  EXPECT_EQ(doc.as_object().at("error_code").as_string(), "over_quota");
}

TEST(ServiceTrace, ControlLineWithoutARingIsAStructuredError) {
  DispatcherOptions options;
  options.workers = 1;
  Dispatcher dispatcher(options);
  std::vector<std::string> emitted;
  service::JsonlSession session(
      dispatcher, [&](const std::string& line) { emitted.push_back(line); });
  session.submit_line("{\"kind\":\"trace\"}");
  const service::StreamSummary summary = session.finish();
  dispatcher.stop();
  EXPECT_EQ(summary.errors, 1u);
  ASSERT_EQ(emitted.size(), 1u);
  const Response response = io::response_from_json(emitted[0]);
  EXPECT_EQ(response.status, ResponseStatus::kError);
  EXPECT_NE(response.error.find("trace is not supported"), std::string::npos)
      << response.error;
}

TEST(ServiceTrace, FilterParsingIsStrict) {
  DispatcherOptions options;
  options.workers = 1;
  Dispatcher dispatcher(options);
  telemetry::TraceRing ring(16);
  service::SessionOptions session_options;
  session_options.trace_ring = &ring;
  std::vector<std::string> emitted;
  service::JsonlSession session(
      dispatcher, [&](const std::string& line) { emitted.push_back(line); },
      std::move(session_options));
  session.submit_line("{\"kind\":\"trace\",\"bogus_filter\":1}");
  session.submit_line("{\"kind\":\"trace\",\"min_duration_ms\":-1}");
  session.submit_line("{\"kind\":\"trace\",\"trace_id\":42}");
  const service::StreamSummary summary = session.finish();
  dispatcher.stop();
  EXPECT_EQ(summary.errors, 3u);
  for (const std::string& line : emitted) {
    EXPECT_EQ(io::response_from_json(line).status, ResponseStatus::kError)
        << line;
  }
}

// ---------------------------------------------------------------------------
// Prometheus exposition conformance (native histograms)
// ---------------------------------------------------------------------------

/// Parses `name{labels} value` exposition lines of one metric name into
/// (labels, value) pairs, asserting every value is a full-consumption
/// strtod parse (no locale-dependent separators survive serialisation).
std::vector<std::pair<std::string, double>> metric_samples(
    const std::string& text, const std::string& name) {
  std::vector<std::pair<std::string, double>> samples;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name, 0) != 0) continue;
    const char after = line[name.size()];
    if (after != '{' && after != ' ') continue;  // a longer metric name
    const std::size_t value_at = line.rfind(' ');
    std::string labels;
    if (after == '{') {
      const std::size_t close = line.find('}');
      labels = line.substr(name.size() + 1, close - name.size() - 1);
    }
    const std::string value_text = line.substr(value_at + 1);
    // Full-consumption strtod: a locale-dependent decimal comma (or any
    // other stray character) in the value would stop the parse early.
    EXPECT_EQ(value_text.find(','), std::string::npos) << line;
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    EXPECT_EQ(end, value_text.c_str() + value_text.size()) << line;
    samples.emplace_back(std::move(labels), value);
  }
  return samples;
}

TEST(ServiceMetrics, NativeHistogramsAreCumulativeAndComplete) {
  telemetry::ServiceTelemetry telemetry;
  telemetry::LatencyHistogram& histogram = telemetry.histogram(
      telemetry::RequestKind::kSolve, telemetry::Stage::kSolve);
  // Samples spanning underflow, several octaves, and overflow.
  const std::vector<double> samples = {1e-5, 0.004, 0.3,  0.9, 1.4,
                                       7.0,  80.0,  900.0, 1e9};
  for (const double ms : samples) histogram.record(ms);

  const std::string text =
      service::metrics_exposition(ServiceStats{}, &telemetry, nullptr);
  EXPECT_NE(text.find("# TYPE bbs_request_latency_ms histogram"),
            std::string::npos);

  const auto buckets = metric_samples(text, "bbs_request_latency_ms_bucket");
  const auto counts = metric_samples(text, "bbs_request_latency_ms_count");
  const auto sums = metric_samples(text, "bbs_request_latency_ms_sum");
  ASSERT_EQ(counts.size(), 1u);  // only the one recorded (kind, stage) pair
  ASSERT_EQ(sums.size(), 1u);
  EXPECT_NE(counts[0].first.find("kind=\"solve\""), std::string::npos);
  EXPECT_NE(counts[0].first.find("stage=\"solve\""), std::string::npos);
  EXPECT_EQ(counts[0].second, static_cast<double>(samples.size()));
  EXPECT_NEAR(sums[0].second,
              std::accumulate(samples.begin(), samples.end(), 0.0),
              samples.size() * 1e-2);

  // Cumulative and monotone in le, with strictly increasing edges, ending
  // at le="+Inf" == _count.
  ASSERT_GE(buckets.size(), 3u);
  double previous_le = -1.0;
  double previous_count = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::string& labels = buckets[i].first;
    const std::size_t le_at = labels.find("le=\"");
    ASSERT_NE(le_at, std::string::npos) << labels;
    const std::string le_text =
        labels.substr(le_at + 4, labels.find('"', le_at + 4) - le_at - 4);
    const bool is_inf = le_text == "+Inf";
    EXPECT_EQ(is_inf, i + 1 == buckets.size()) << labels;
    if (!is_inf) {
      char* end = nullptr;
      const double le = std::strtod(le_text.c_str(), &end);
      EXPECT_EQ(end, le_text.c_str() + le_text.size()) << le_text;
      EXPECT_GT(le, previous_le) << labels;
      previous_le = le;
    }
    EXPECT_GE(buckets[i].second, previous_count) << labels;
    previous_count = buckets[i].second;
  }
  EXPECT_EQ(buckets.back().second, counts[0].second);

  // The recorded maximum lives in its own gauge family (the _max suffix
  // inside the histogram family is reserved by the exposition format).
  const auto max_samples =
      metric_samples(text, "bbs_request_latency_max_ms");
  ASSERT_EQ(max_samples.size(), 1u);
  EXPECT_NEAR(max_samples[0].second, 1e9, 1.0);
}

TEST(ServiceMetrics, EmptyHistogramsAreOmittedFromTheExposition) {
  telemetry::ServiceTelemetry telemetry;
  const std::string text =
      service::metrics_exposition(ServiceStats{}, &telemetry, nullptr);
  // The family header is present (the scrape schema is stable) but no
  // bucket series is emitted for never-recorded (kind, stage) pairs.
  EXPECT_NE(text.find("# TYPE bbs_request_latency_ms histogram"),
            std::string::npos);
  EXPECT_TRUE(metric_samples(text, "bbs_request_latency_ms_bucket").empty());
}

// ---------------------------------------------------------------------------
// Socket front end (AF_UNIX + TCP)
// ---------------------------------------------------------------------------

std::string unique_socket_path() {
  return ::testing::TempDir() + "bbs_service_test_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(ServiceSocket, RoundTripAndGracefulStop) {
  DispatcherOptions options;
  options.workers = 2;
  // Affinity-only: byte-identity with the sequential reference engine.
  options.work_stealing = false;
  Dispatcher dispatcher(options);
  const std::string path = unique_socket_path();
  service::SocketServer server(dispatcher, path);

  const std::vector<Request> stream = mixed_structure_stream();
  api::Engine reference;
  std::vector<std::string> expected;
  for (const Request& request : stream) {
    expected.push_back(normalised(reference.run(request)));
  }

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(path.size(), sizeof addr.sun_path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0)
      << std::strerror(errno);

  const std::string input = to_jsonl(stream);
  ASSERT_EQ(::send(fd, input.data(), input.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(input.size()));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);

  std::string output;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    output.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::vector<std::string> lines = split_lines(output);
  ASSERT_EQ(lines.size(), stream.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(normalised_line(lines[i]), expected[i]) << "line " << i;
  }

  EXPECT_EQ(server.connections_accepted(), 1u);
  server.stop();
  dispatcher.stop();
  // stop() unlinks its socket path.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Reads until EOF (or a read error, including SO_RCVTIMEO expiry).
std::string read_to_eof(int fd) {
  std::string output;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    output.append(buf, static_cast<std::size_t>(n));
  }
  return output;
}

std::string jsonl_line(const Request& request) {
  return io::write_json_compact(io::request_to_json_value(request)) + "\n";
}

// The TCP twin of RoundTripAndGracefulStop: same stream, same in-order
// byte-identical responses, over tcp://127.0.0.1 with a kernel-assigned
// ephemeral port resolved back through server.endpoint().
TEST(ServiceSocket, TcpRoundTripAndGracefulStop) {
  DispatcherOptions options;
  options.workers = 2;
  // Affinity-only: byte-identity with the sequential reference engine.
  options.work_stealing = false;
  Dispatcher dispatcher(options);
  service::SocketServer server(dispatcher,
                               service::parse_endpoint("tcp://127.0.0.1:0"));
  ASSERT_NE(server.endpoint().port, 0);

  const std::vector<Request> stream = mixed_structure_stream();
  api::Engine reference;
  std::vector<std::string> expected;
  for (const Request& request : stream) {
    expected.push_back(normalised(reference.run(request)));
  }

  const int fd = connect_tcp_loopback(server.endpoint().port);
  ASSERT_GE(fd, 0) << std::strerror(errno);
  const std::string input = to_jsonl(stream);
  ASSERT_EQ(::send(fd, input.data(), input.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(input.size()));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  const std::string output = read_to_eof(fd);
  ::close(fd);

  const std::vector<std::string> lines = split_lines(output);
  ASSERT_EQ(lines.size(), stream.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(normalised_line(lines[i]), expected[i]) << "line " << i;
  }

  EXPECT_EQ(server.connections_accepted(), 1u);
  server.stop();
  dispatcher.stop();
}

// The regression this PR exists for: a client that floods requests and
// never reads its responses must not stall the shard. The daemon parks the
// slow connection's backlog in its bounded outbox, disconnects it once the
// write deadline passes, and keeps answering everyone else.
TEST(ServiceSocket, SlowClientIsDisconnectedWithoutStallingOthers) {
  DispatcherOptions options;
  options.workers = 1;  // worst case: victim shares its shard with the flood
  options.queue_capacity = 256;
  Dispatcher dispatcher(options);
  service::SocketServerOptions server_options;
  server_options.outbox_capacity = 4;
  server_options.write_deadline = std::chrono::milliseconds(200);
  server_options.sndbuf_bytes = 1;  // kernel clamps to its floor (~4.6 KiB)
  const std::string path = unique_socket_path();
  service::SocketServer server(dispatcher,
                               service::parse_endpoint("unix:" + path),
                               server_options);

  const int slow_fd = connect_unix(path);
  ASSERT_GE(slow_fd, 0) << std::strerror(errno);
  std::string flood;
  for (int i = 0; i < 64; ++i) {
    flood += jsonl_line(
        solve_request(testing::paper_t1(), "slow-" + std::to_string(i)));
  }
  ASSERT_EQ(::send(slow_fd, flood.data(), flood.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(flood.size()));
  // Let the flood queue ahead of the victim on the single shard.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const int fd = connect_unix(path);
  ASSERT_GE(fd, 0) << std::strerror(errno);
  const std::string line =
      jsonl_line(solve_request(testing::paper_t1(), "victim"));
  ASSERT_EQ(::send(fd, line.data(), line.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(line.size()));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  const timeval victim_timeout{30, 0};
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &victim_timeout,
                         sizeof victim_timeout),
            0);
  const auto start = std::chrono::steady_clock::now();
  const std::string output = read_to_eof(fd);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ::close(fd);

  const std::vector<std::string> lines = split_lines(output);
  ASSERT_EQ(lines.size(), 1u) << output;
  EXPECT_EQ(io::response_from_json(lines[0]).status, ResponseStatus::kOk);
  EXPECT_LT(elapsed, std::chrono::seconds(8));
  EXPECT_EQ(server.slow_client_disconnects(), 1u);

  // The slow client must observe a prompt EOF, not a torn silent stream
  // (a half-open connection would park this recv until the timeout).
  const timeval drain_timeout{2, 0};
  ASSERT_EQ(::setsockopt(slow_fd, SOL_SOCKET, SO_RCVTIMEO, &drain_timeout,
                         sizeof drain_timeout),
            0);
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(slow_fd, buf, sizeof buf, 0)) > 0) {
  }
  EXPECT_EQ(n, 0) << "expected EOF, got: " << std::strerror(errno);
  ::close(slow_fd);

  server.stop();
  dispatcher.stop();
}

// ---------------------------------------------------------------------------
// Socket-path takeover policy
// ---------------------------------------------------------------------------

TEST(ServiceSocket, RefusesToStealPathWithLiveListener) {
  DispatcherOptions options;
  options.workers = 1;
  Dispatcher dispatcher(options);
  const std::string path = unique_socket_path();
  service::SocketServer server(dispatcher, path);
  EXPECT_THROW(
      {
        service::SocketServer usurper(dispatcher, path);
        (void)usurper;
      },
      ModelError);
  // The incumbent keeps serving after the refused takeover.
  const int fd = connect_unix(path);
  ASSERT_GE(fd, 0) << std::strerror(errno);
  const std::string line =
      jsonl_line(solve_request(testing::paper_t1(), "still-up"));
  ASSERT_EQ(::send(fd, line.data(), line.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(line.size()));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  const std::vector<std::string> lines = split_lines(read_to_eof(fd));
  ::close(fd);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(io::response_from_json(lines[0]).status, ResponseStatus::kOk);
  server.stop();
  dispatcher.stop();
}

TEST(ServiceSocket, ReclaimsStaleSocketFileFromDeadDaemon) {
  const std::string path = unique_socket_path();
  ::unlink(path.c_str());
  // Fake a crashed daemon: a bound socket file with nobody behind it.
  const int stale = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(stale, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(path.size(), sizeof addr.sun_path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::bind(stale, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr),
            0)
      << std::strerror(errno);
  ::close(stale);
  ASSERT_EQ(::access(path.c_str(), F_OK), 0);

  DispatcherOptions options;
  options.workers = 1;
  Dispatcher dispatcher(options);
  // The liveness probe gets ECONNREFUSED, classifies the file as stale,
  // and reclaims the path.
  service::SocketServer server(dispatcher, path);
  const int fd = connect_unix(path);
  ASSERT_GE(fd, 0) << std::strerror(errno);
  const std::string line =
      jsonl_line(solve_request(testing::paper_t1(), "reclaimed"));
  ASSERT_EQ(::send(fd, line.data(), line.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(line.size()));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  const std::vector<std::string> lines = split_lines(read_to_eof(fd));
  ::close(fd);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(io::response_from_json(lines[0]).status, ResponseStatus::kOk);
  server.stop();
  dispatcher.stop();
}

TEST(ServiceSocket, RefusesToReplaceNonSocketFile) {
  const std::string path = unique_socket_path();
  ::unlink(path.c_str());
  {
    std::ofstream out(path);
    out << "precious data, definitely not a socket\n";
  }
  DispatcherOptions options;
  options.workers = 1;
  Dispatcher dispatcher(options);
  EXPECT_THROW(
      {
        service::SocketServer server(dispatcher, path);
        (void)server;
      },
      ModelError);
  // The bystander file is preserved, not clobbered.
  EXPECT_EQ(::access(path.c_str(), F_OK), 0);
  ::unlink(path.c_str());
  dispatcher.stop();
}

}  // namespace
}  // namespace bbs
