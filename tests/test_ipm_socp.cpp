// Interior-point solver on second-order cone programs with analytically
// known optima, including the hyperbolic constraints used by Algorithm 1.
#include <gtest/gtest.h>

#include <cmath>

#include "bbs/common/rng.hpp"
#include "bbs/solver/ipm_solver.hpp"

namespace bbs::solver {
namespace {

/// Adds the rotated-cone encoding of x*y >= 1 (x, y > 0):
/// (x + y, x - y, 2) in SOC(3).
void add_hyperbola(ConicProblemBuilder& b, linalg::Index x, linalg::Index y) {
  b.begin_soc(3);
  b.soc_row({{x, -1.0}, {y, -1.0}}, 0.0);
  b.soc_row({{x, -1.0}, {y, 1.0}}, 0.0);
  b.soc_row({}, 2.0);
}

TEST(IpmSocp, HyperbolaWithUpperBound) {
  // min y s.t. x*y >= 1, x <= 2 -> y = 1/2.
  ConicProblemBuilder b(2);
  b.set_objective(1, 1.0);
  b.add_inequality({{0, 1.0}}, 2.0);
  add_hyperbola(b, 0, 1);
  const SolveResult r = IpmSolver().solve(b.build());
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-5);
  EXPECT_NEAR(r.x[1], 0.5, 1e-6);
}

TEST(IpmSocp, EuclideanProjection) {
  // min t s.t. ||(x - 3, y - 4)|| <= t, x = y = 0 not required; with
  // x, y <= 0 the nearest point to (3,4) in the third quadrant is (0,0),
  // so t* = 5.
  ConicProblemBuilder b(3);  // x, y, t
  b.set_objective(2, 1.0);
  b.add_inequality({{0, 1.0}}, 0.0);
  b.add_inequality({{1, 1.0}}, 0.0);
  b.begin_soc(3);
  b.soc_row({{2, -1.0}}, 0.0);           // s0 = t
  b.soc_row({{0, -1.0}}, -3.0);          // s1 = x - 3
  b.soc_row({{1, -1.0}}, -4.0);          // s2 = y - 4
  const SolveResult r = IpmSolver().solve(b.build());
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.primal_objective, 5.0, 1e-5);
  EXPECT_NEAR(r.x[0], 0.0, 1e-5);
  EXPECT_NEAR(r.x[1], 0.0, 1e-5);
}

TEST(IpmSocp, GeometricMeanMaximisation) {
  // max z s.t. z^2 <= x*y (via (x+y, x-y, 2z) in SOC), x + y <= 4,
  // x, y >= 0 -> x = y = 2, z = 2.
  ConicProblemBuilder b(3);  // x, y, z
  b.set_objective(2, -1.0);
  b.add_inequality({{0, 1.0}, {1, 1.0}}, 4.0);
  b.add_inequality({{0, -1.0}}, 0.0);
  b.add_inequality({{1, -1.0}}, 0.0);
  b.begin_soc(3);
  b.soc_row({{0, -1.0}, {1, -1.0}}, 0.0);
  b.soc_row({{0, -1.0}, {1, 1.0}}, 0.0);
  b.soc_row({{2, -2.0}}, 0.0);
  const SolveResult r = IpmSolver().solve(b.build());
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[2], 2.0, 1e-5);
}

TEST(IpmSocp, InfeasibleHyperbolaBudget) {
  // x*y >= 1, x <= 2, y <= 0.25: needs x >= 4. Infeasible.
  ConicProblemBuilder b(2);
  b.set_objective(0, 1.0);
  b.add_inequality({{0, 1.0}}, 2.0);
  b.add_inequality({{1, 1.0}}, 0.25);
  add_hyperbola(b, 0, 1);
  const SolveResult r = IpmSolver().solve(b.build());
  EXPECT_EQ(r.status, SolveStatus::kPrimalInfeasible);
}

TEST(IpmSocp, ChainedHyperbolas) {
  // min x + w s.t. x*y >= 1, y*w >= 1, y <= 3
  // At optimum y = 3 (largest y relaxes both): x = w = 1/3, obj = 2/3.
  ConicProblemBuilder b(3);  // x, y, w
  b.set_objective(0, 1.0);
  b.set_objective(2, 1.0);
  b.add_inequality({{1, 1.0}}, 3.0);
  add_hyperbola(b, 0, 1);
  add_hyperbola(b, 1, 2);
  const SolveResult r = IpmSolver().solve(b.build());
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.primal_objective, 2.0 / 3.0, 1e-5);
  EXPECT_NEAR(r.x[1], 3.0, 1e-4);
}

TEST(IpmSocp, MixedLpSocDuality) {
  // Strong duality on a mixed problem: primal and dual objectives agree.
  ConicProblemBuilder b(2);
  b.set_objective(0, 3.0);
  b.set_objective(1, 1.0);
  b.add_inequality({{0, -1.0}}, 0.0);
  add_hyperbola(b, 0, 1);
  const ConicProblem p = b.build();
  const SolveResult r = IpmSolver().solve(p);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  // min 3x + y s.t. xy >= 1 -> x = 1/sqrt(3), y = sqrt(3), obj = 2 sqrt(3).
  EXPECT_NEAR(r.primal_objective, 2.0 * std::sqrt(3.0), 1e-5);
  EXPECT_NEAR(r.primal_objective, r.dual_objective, 1e-4);
  EXPECT_LT(p.primal_residual(r.x, r.s), 1e-6);
  EXPECT_LT(p.dual_residual(r.z), 1e-6);
}

/// Randomised hyperbola instances with known closed-form optima:
/// min a*x + b*y s.t. x*y >= 1 has optimum 2*sqrt(a*b) at x = sqrt(b/a).
class RandomHyperbola : public ::testing::TestWithParam<int> {};

TEST_P(RandomHyperbola, MatchesClosedForm) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1237 + 5);
  for (int trial = 0; trial < 10; ++trial) {
    const double a = rng.next_real(0.1, 10.0);
    const double bb = rng.next_real(0.1, 10.0);
    ConicProblemBuilder b(2);
    b.set_objective(0, a);
    b.set_objective(1, bb);
    add_hyperbola(b, 0, 1);
    const SolveResult r = IpmSolver().solve(b.build());
    ASSERT_EQ(r.status, SolveStatus::kOptimal);
    EXPECT_NEAR(r.primal_objective, 2.0 * std::sqrt(a * bb),
                1e-5 * (1.0 + 2.0 * std::sqrt(a * bb)));
    // The argmin is flatter than the optimum: allow a looser tolerance.
    EXPECT_NEAR(r.x[0], std::sqrt(bb / a), 2e-3 * (1.0 + std::sqrt(bb / a)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomHyperbola, ::testing::Range(0, 6));

TEST(IpmSocp, LargerSocBlock) {
  // min t s.t. ||x - x0||_2 <= t over 6 coordinates, x free -> t = 0 with
  // x = x0 (tests SOC blocks beyond dimension 3).
  const std::size_t n = 6;
  ConicProblemBuilder b(static_cast<linalg::Index>(n) + 1);
  b.set_objective(static_cast<linalg::Index>(n), 1.0);
  b.begin_soc(static_cast<linalg::Index>(n) + 1);
  b.soc_row({{static_cast<linalg::Index>(n), -1.0}}, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    b.soc_row({{static_cast<linalg::Index>(i), -1.0}},
              -(1.0 + static_cast<double>(i)));
  }
  const SolveResult r = IpmSolver().solve(b.build());
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.primal_objective, 0.0, 1e-5);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(r.x[i], 1.0 + static_cast<double>(i), 1e-4);
  }
}

}  // namespace
}  // namespace bbs::solver
