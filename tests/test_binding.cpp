// Tests for the task-to-processor binding extension (the paper's stated
// future work, Section VI).
#include <gtest/gtest.h>

#include "bbs/common/assert.hpp"
#include "bbs/core/binding.hpp"
#include "bbs/gen/generators.hpp"

namespace bbs::core {
namespace {

/// Two heavy tasks and two processors: any feasible binding must separate
/// them (together they exceed one replenishment interval).
model::Configuration two_heavy_tasks() {
  model::Configuration config(1);
  config.add_processor("p1", 40.0);
  config.add_processor("p2", 40.0);
  const auto mem = config.add_memory("m", -1.0);
  model::TaskGraph tg("job", 10.0);
  // Budget lower bound per task: rho*chi/mu = 40*6/10 = 24; two of them on
  // one processor need 48 > 40.
  const auto a = tg.add_task("a", 0, 6.0);
  const auto b = tg.add_task("b", 0, 6.0);
  tg.add_buffer("ab", a, b, mem, 1, 0, 1e-3);
  config.add_task_graph(std::move(tg));
  return config;
}

TEST(Binding, ExhaustiveSeparatesHeavyTasks) {
  const model::Configuration config = two_heavy_tasks();
  BindingOptions opts;
  opts.strategy = BindingStrategy::kExhaustive;
  const auto r = bind_and_solve(config, opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->mapping.feasible());
  EXPECT_NE(r->processors[0][0], r->processors[0][1]);
  EXPECT_EQ(r->evaluated, 4);  // 2 tasks x 2 processors
}

TEST(Binding, GreedyAlsoFindsAFeasibleBinding) {
  const model::Configuration config = two_heavy_tasks();
  BindingOptions opts;
  opts.strategy = BindingStrategy::kGreedyLocalSearch;
  const auto r = bind_and_solve(config, opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->mapping.feasible());
  EXPECT_NE(r->processors[0][0], r->processors[0][1]);
}

TEST(Binding, GreedyMatchesExhaustiveOnSmallChains) {
  for (const int n : {2, 3}) {
    gen::GenParams params;
    params.num_processors = 2;
    params.seed = static_cast<std::uint64_t>(n) * 13;
    const model::Configuration config = gen::make_chain(n, params);

    BindingOptions ex;
    ex.strategy = BindingStrategy::kExhaustive;
    const auto exhaustive = bind_and_solve(config, ex);
    ASSERT_TRUE(exhaustive.has_value());

    BindingOptions gr;
    gr.strategy = BindingStrategy::kGreedyLocalSearch;
    const auto greedy = bind_and_solve(config, gr);
    ASSERT_TRUE(greedy.has_value());

    // The local search may end in a local optimum, but on these tiny
    // instances it must be within a few percent of the exhaustive optimum.
    EXPECT_LE(greedy->mapping.objective_continuous,
              exhaustive->mapping.objective_continuous * 1.05 + 1e-6)
        << "chain " << n;
    // And exhaustive is never worse than greedy.
    EXPECT_LE(exhaustive->mapping.objective_continuous,
              greedy->mapping.objective_continuous + 1e-4);
  }
}

TEST(Binding, BindingBeatsBadFixedAssignment) {
  // All tasks pinned to one processor is feasible but expensive (budgets
  // shrink when they share one wheel is impossible — here they must share);
  // letting the binder spread them reduces the objective.
  gen::GenParams params;
  params.num_processors = 1;  // generator packs everything on p1
  params.seed = 3;
  model::Configuration packed = gen::make_chain(3, params);
  const MappingResult fixed = compute_budgets_and_buffers(packed);

  // Same workload, but give the binder three processors.
  model::Configuration spread(packed.granularity());
  for (int p = 0; p < 3; ++p) {
    spread.add_processor("p" + std::to_string(p), 40.0);
  }
  spread.add_memory("m", -1.0);
  {
    const model::TaskGraph& tg = packed.task_graph(0);
    model::TaskGraph copy(tg.name(), tg.required_period());
    for (linalg::Index t = 0; t < tg.num_tasks(); ++t) {
      copy.add_task(tg.task(t).name, 0, tg.task(t).wcet,
                    tg.task(t).budget_weight);
    }
    for (linalg::Index b = 0; b < tg.num_buffers(); ++b) {
      const model::Buffer& buf = tg.buffer(b);
      copy.add_buffer(buf.name, buf.producer, buf.consumer, 0,
                      buf.container_size, buf.initial_fill, buf.size_weight);
    }
    spread.add_task_graph(std::move(copy));
  }
  const auto bound = bind_and_solve(spread);
  ASSERT_TRUE(bound.has_value());
  if (fixed.feasible()) {
    EXPECT_LE(bound->mapping.objective_continuous,
              fixed.objective_continuous + 1e-6);
  }
}

TEST(Binding, ExhaustiveGuardsSearchSpace) {
  gen::GenParams params;
  params.num_processors = 4;
  const model::Configuration config = gen::make_chain(12, params);
  BindingOptions opts;
  opts.strategy = BindingStrategy::kExhaustive;
  opts.max_assignments = 1000;  // 4^12 >> 1000
  EXPECT_THROW(bind_and_solve(config, opts), ModelError);
}

TEST(Binding, MultiJobBindingKeepsBothJobsFeasible) {
  const model::Configuration config = gen::car_entertainment_preset();
  const auto r = bind_and_solve(config);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->mapping.feasible());
  EXPECT_TRUE(r->mapping.verified);
  ASSERT_EQ(r->processors.size(), 2u);
}

}  // namespace
}  // namespace bbs::core
