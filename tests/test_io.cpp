// Tests for the JSON parser/writer and the configuration serialisation.
#include <gtest/gtest.h>

#include "bbs/common/assert.hpp"
#include "bbs/core/budget_buffer_solver.hpp"
#include "bbs/gen/generators.hpp"
#include "bbs/io/config_io.hpp"
#include "bbs/io/json.hpp"

namespace bbs::io {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(parse_json("-1e3").as_number(), -1000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesContainers) {
  const JsonValue v = parse_json(R"({"a": [1, 2, {"b": null}], "c": ""})");
  const JsonObject& o = v.as_object();
  ASSERT_TRUE(o.contains("a"));
  const JsonArray& arr = o.at("a").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr[1].as_number(), 2.0);
  EXPECT_TRUE(arr[2].as_object().at("b").is_null());
  EXPECT_EQ(o.at("c").as_string(), "");
}

TEST(Json, StringEscapes) {
  const JsonValue v = parse_json(R"("line\n\ttab \"q\" \\ A")");
  EXPECT_EQ(v.as_string(), "line\n\ttab \"q\" \\ A");
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    parse_json("{\n  \"a\": ,\n}");
    FAIL() << "no exception";
  } catch (const ModelError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos);
  }
}

TEST(Json, RejectsTrailingGarbage) {
  EXPECT_THROW(parse_json("1 2"), ModelError);
  EXPECT_THROW(parse_json("{\"a\": 1} x"), ModelError);
  EXPECT_THROW(parse_json(""), ModelError);
  EXPECT_THROW(parse_json("{"), ModelError);
  EXPECT_THROW(parse_json("[1,]"), ModelError);
}

TEST(Json, TypeMismatchThrows) {
  const JsonValue v = parse_json("42");
  EXPECT_THROW(v.as_string(), ModelError);
  EXPECT_THROW(v.as_array(), ModelError);
  EXPECT_THROW(v.as_object(), ModelError);
  EXPECT_THROW(parse_json("\"s\"").as_number(), ModelError);
}

TEST(Json, WriteParseRoundTrip) {
  JsonObject root;
  root["name"] = "graph \"x\"";
  root["count"] = 3;
  root["ratio"] = 0.125;
  JsonArray arr;
  arr.push_back(JsonValue(true));
  arr.push_back(JsonValue(nullptr));
  root["list"] = JsonValue(std::move(arr));
  const std::string text = write_json(JsonValue(std::move(root)));

  const JsonValue back = parse_json(text);
  EXPECT_EQ(back.as_object().at("name").as_string(), "graph \"x\"");
  EXPECT_DOUBLE_EQ(back.as_object().at("count").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(back.as_object().at("ratio").as_number(), 0.125);
  EXPECT_EQ(back.as_object().at("list").as_array().size(), 2u);
}

TEST(Json, CompactWriterRoundTripsWithoutWhitespace) {
  const JsonValue doc = parse_json(
      R"({"a": [1, 2.5, "x\n"], "b": {"c": true, "d": null}, "e": []})");
  const std::string compact = write_json_compact(doc);
  EXPECT_EQ(compact,
            "{\"a\":[1,2.5,\"x\\n\"],\"b\":{\"c\":true,\"d\":null},"
            "\"e\":[]}");
  // Same document as the pretty writer, modulo whitespace.
  EXPECT_EQ(write_json(parse_json(compact)), write_json(doc));
}

TEST(Json, ObjectPreservesInsertionOrder) {
  JsonObject o;
  o["z"] = 1;
  o["a"] = 2;
  EXPECT_EQ(o.entries()[0].first, "z");
  EXPECT_EQ(o.entries()[1].first, "a");
}

TEST(ConfigIo, RoundTripPreservesEverything) {
  const model::Configuration original = gen::car_entertainment_preset();
  const std::string text = configuration_to_json(original);
  const model::Configuration back = configuration_from_json(text);

  ASSERT_EQ(back.num_processors(), original.num_processors());
  ASSERT_EQ(back.num_memories(), original.num_memories());
  ASSERT_EQ(back.num_task_graphs(), original.num_task_graphs());
  EXPECT_EQ(back.granularity(), original.granularity());
  for (linalg::Index p = 0; p < original.num_processors(); ++p) {
    EXPECT_EQ(back.processor(p).name, original.processor(p).name);
    EXPECT_DOUBLE_EQ(back.processor(p).replenishment_interval,
                     original.processor(p).replenishment_interval);
    EXPECT_DOUBLE_EQ(back.processor(p).scheduling_overhead,
                     original.processor(p).scheduling_overhead);
  }
  for (linalg::Index gi = 0; gi < original.num_task_graphs(); ++gi) {
    const model::TaskGraph& a = original.task_graph(gi);
    const model::TaskGraph& b = back.task_graph(gi);
    ASSERT_EQ(b.num_tasks(), a.num_tasks());
    ASSERT_EQ(b.num_buffers(), a.num_buffers());
    EXPECT_DOUBLE_EQ(b.required_period(), a.required_period());
    for (linalg::Index t = 0; t < a.num_tasks(); ++t) {
      EXPECT_EQ(b.task(t).name, a.task(t).name);
      EXPECT_EQ(b.task(t).processor, a.task(t).processor);
      EXPECT_DOUBLE_EQ(b.task(t).wcet, a.task(t).wcet);
    }
    for (linalg::Index bu = 0; bu < a.num_buffers(); ++bu) {
      EXPECT_EQ(b.buffer(bu).producer, a.buffer(bu).producer);
      EXPECT_EQ(b.buffer(bu).consumer, a.buffer(bu).consumer);
      EXPECT_EQ(b.buffer(bu).memory, a.buffer(bu).memory);
      EXPECT_EQ(b.buffer(bu).container_size, a.buffer(bu).container_size);
      EXPECT_EQ(b.buffer(bu).initial_fill, a.buffer(bu).initial_fill);
      EXPECT_EQ(b.buffer(bu).max_capacity, a.buffer(bu).max_capacity);
    }
  }
}

TEST(ConfigIo, UnknownReferenceRejected) {
  const std::string text = R"({
    "granularity": 1,
    "processors": [{"name": "p1", "replenishment_interval": 40}],
    "memories": [{"name": "m1"}],
    "task_graphs": [{
      "name": "g", "required_period": 10,
      "tasks": [{"name": "t", "processor": "NOPE", "wcet": 1}],
      "buffers": []
    }]
  })";
  EXPECT_THROW(configuration_from_json(text), ModelError);
}

TEST(ConfigIo, NonIntegerGranularityRejected) {
  const std::string text = R"({
    "granularity": 1.5,
    "processors": [], "memories": [], "task_graphs": []
  })";
  EXPECT_THROW(configuration_from_json(text), ModelError);
}

TEST(ConfigIo, MappingResultSerialises) {
  const model::Configuration config = gen::producer_consumer_t1();
  const core::MappingResult r = core::compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible());
  const std::string text = mapping_result_to_json(config, r);
  const JsonValue v = parse_json(text);
  const JsonObject& root = v.as_object();
  EXPECT_EQ(root.at("status").as_string(), "optimal");
  EXPECT_TRUE(root.at("verified").as_bool());
  // The solver diagnostics reach the wire for every result kind.
  EXPECT_GT(root.at("ipm_iterations").as_number(), 0.0);
  EXPECT_FALSE(root.at("warm_started").as_bool());  // one-shot solve
  const JsonObject& g0 = root.at("task_graphs").as_array()[0].as_object();
  EXPECT_EQ(g0.at("tasks").as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(g0.at("tasks").as_array()[0].as_object()
                       .at("budget").as_number(),
                   4.0);
  EXPECT_TRUE(g0.at("throughput_met").as_bool());
}

TEST(Json, MutatedDocumentsNeverCrash) {
  // Deterministic mutation fuzzing: every single-character deletion,
  // duplication and substitution of a valid document must either parse or
  // throw ModelError — never crash or loop.
  const std::string base =
      R"({"a": [1, -2.5e3, true, null], "b": {"c": "x\n"}, "d": false})";
  const std::string subs = "{}[]\",:09ex";
  int parsed = 0;
  int rejected = 0;
  const auto try_parse = [&](const std::string& doc) {
    try {
      parse_json(doc);
      ++parsed;
    } catch (const ModelError&) {
      ++rejected;
    }
  };
  for (std::size_t i = 0; i < base.size(); ++i) {
    std::string del = base;
    del.erase(i, 1);
    try_parse(del);
    std::string dup = base;
    dup.insert(i, 1, base[i]);
    try_parse(dup);
    for (const char c : subs) {
      std::string sub = base;
      sub[i] = c;
      try_parse(sub);
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_GT(parsed, 0);  // some mutations stay valid (e.g. digit swaps)
}

TEST(Json, DeeplyNestedDocumentsParse) {
  std::string doc;
  const int depth = 200;
  for (int i = 0; i < depth; ++i) doc += "[";
  doc += "1";
  for (int i = 0; i < depth; ++i) doc += "]";
  const JsonValue v = parse_json(doc);
  const JsonValue* cur = &v;
  for (int i = 0; i < depth; ++i) {
    ASSERT_TRUE(cur->is_array());
    cur = &cur->as_array()[0];
  }
  EXPECT_DOUBLE_EQ(cur->as_number(), 1.0);
}

TEST(ConfigIo, TaskGraphDotContainsStructure) {
  const model::Configuration config = gen::three_stage_chain_t2();
  const std::string dot = task_graph_to_dot(config, 0);
  EXPECT_NE(dot.find("digraph \"T2\""), std::string::npos);
  EXPECT_NE(dot.find("wa"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
  EXPECT_NE(dot.find("t1 -> t2"), std::string::npos);
  EXPECT_NE(dot.find("p2"), std::string::npos);
}

}  // namespace
}  // namespace bbs::io
