// Tests for the budget-scheduler SRDF construction (Section II-C): structure,
// firing durations, token placement and error handling.
#include <gtest/gtest.h>

#include "bbs/common/assert.hpp"
#include "bbs/core/srdf_construction.hpp"
#include "bbs/dataflow/cycle_ratio.hpp"
#include "bbs/gen/generators.hpp"
#include "testing/support.hpp"

namespace bbs::core {
namespace {

TEST(SrdfConstruction, TwoActorsPerTaskTwoQueuesPerBuffer) {
  const model::Configuration config = gen::producer_consumer_t1();
  const SrdfModel m = build_srdf(config, 0, {8.0, 8.0}, {3});
  // 2 tasks -> 4 actors; per task: wait queue + self loop; per buffer:
  // data + space queue.
  EXPECT_EQ(m.graph.num_actors(), 4);
  EXPECT_EQ(m.graph.num_queues(), 2 * 2 + 2 * 1);
}

TEST(SrdfConstruction, FiringDurationsMatchTheModel) {
  const model::Configuration config = gen::producer_consumer_t1();
  const double beta = 8.0;
  const SrdfModel m = build_srdf(config, 0, {beta, beta}, {3});
  // rho(v_a1) = 40 - 8 = 32 ; rho(v_a2) = 40 * 1 / 8 = 5.
  EXPECT_DOUBLE_EQ(m.graph.actor(m.wait_actor[0]).firing_duration, 32.0);
  EXPECT_DOUBLE_EQ(m.graph.actor(m.exec_actor[0]).firing_duration, 5.0);
}

TEST(SrdfConstruction, TokenPlacement) {
  testing::TwoTaskOptions opts;
  opts.same_processor = true;
  opts.initial_fill = 2;  // iota = 2
  const model::Configuration config = testing::two_task_chain(opts);

  const SrdfModel m = build_srdf(config, 0, {10.0, 10.0}, {5});
  // Wait queue: 0 tokens; self loop: 1; data queue: iota = 2; space queue:
  // gamma - iota = 3.
  EXPECT_EQ(m.graph.queue(m.wait_queue[0]).initial_tokens, 0);
  EXPECT_EQ(m.graph.queue(m.self_queue[0]).initial_tokens, 1);
  EXPECT_EQ(m.graph.queue(m.data_queue[0]).initial_tokens, 2);
  EXPECT_EQ(m.graph.queue(m.space_queue[0]).initial_tokens, 3);
}

TEST(SrdfConstruction, QueueOrientation) {
  const model::Configuration config = gen::producer_consumer_t1();
  const SrdfModel m = build_srdf(config, 0, {8.0, 8.0}, {3});
  // Data queue: producer exec -> consumer wait.
  const dataflow::Queue& data = m.graph.queue(m.data_queue[0]);
  EXPECT_EQ(data.from, m.exec_actor[0]);
  EXPECT_EQ(data.to, m.wait_actor[1]);
  // Space queue: consumer exec -> producer wait.
  const dataflow::Queue& space = m.graph.queue(m.space_queue[0]);
  EXPECT_EQ(space.from, m.exec_actor[1]);
  EXPECT_EQ(space.to, m.wait_actor[0]);
}

TEST(SrdfConstruction, SkeletonHasZeroDurations) {
  const model::Configuration config = gen::three_stage_chain_t2();
  const SrdfModel m = build_srdf_skeleton(config, 0);
  EXPECT_EQ(m.graph.num_actors(), 6);
  for (linalg::Index v = 0; v < m.graph.num_actors(); ++v) {
    EXPECT_DOUBLE_EQ(m.graph.actor(v).firing_duration, 0.0);
  }
  // Space queues carry 0 tokens in the skeleton (they become variables).
  EXPECT_EQ(m.graph.queue(m.space_queue[0]).initial_tokens, 0);
}

TEST(SrdfConstruction, McrMatchesClosedFormForT1) {
  // For symmetric budgets beta and capacity d, the throughput-limiting
  // cycle gives MCR = max(40/beta, (2(40-beta) + 2*40/beta) / d).
  const model::Configuration config = gen::producer_consumer_t1();
  for (const double beta : {10.0, 20.0, 36.0}) {
    for (const linalg::Index d : {1, 3, 7}) {
      const SrdfModel m = build_srdf(config, 0, {beta, beta}, {d});
      const double self_loop = 40.0 / beta;
      const double buffer_cycle =
          (2.0 * (40.0 - beta) + 2.0 * 40.0 / beta) / static_cast<double>(d);
      const double expect = std::max(self_loop, buffer_cycle);
      EXPECT_NEAR(dataflow::max_cycle_ratio_bisect(m.graph, 1e-10), expect,
                  1e-6 * expect)
          << "beta=" << beta << " d=" << d;
    }
  }
}

TEST(SrdfConstruction, RejectsBadBudgetsAndCapacities) {
  const model::Configuration config = gen::producer_consumer_t1();
  EXPECT_THROW(build_srdf(config, 0, {0.0, 8.0}, {3}), ModelError);
  EXPECT_THROW(build_srdf(config, 0, {41.0, 8.0}, {3}), ModelError);
  EXPECT_THROW(build_srdf(config, 0, {8.0, 8.0}, {0}), ModelError);
  EXPECT_THROW(build_srdf(config, 0, {8.0}, {3}), ContractViolation);
  EXPECT_THROW(build_srdf(config, 0, {8.0, 8.0}, {}), ContractViolation);
}

TEST(SrdfConstruction, CapacityBelowFillRejected) {
  model::Configuration config(1);
  const auto p = config.add_processor("p", 40.0);
  const auto mem = config.add_memory("m", -1.0);
  model::TaskGraph tg("g", 10.0);
  const auto a = tg.add_task("a", p, 1.0);
  const auto b = tg.add_task("b", p, 1.0);
  tg.add_buffer("ab", a, b, mem, 1, 3);
  config.add_task_graph(std::move(tg));
  EXPECT_THROW(build_srdf(config, 0, {10.0, 10.0}, {2}), ModelError);
}

}  // namespace
}  // namespace bbs::core
