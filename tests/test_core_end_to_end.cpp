// End-to-end tests of the joint budget/buffer computation against analytic
// optima (the paper's T1 has a closed form) and against the independent MCR
// verification on generated graphs.
#include <gtest/gtest.h>

#include <cmath>

#include "bbs/core/budget_buffer_solver.hpp"
#include "bbs/gen/generators.hpp"
#include "testing/support.hpp"

namespace bbs::core {
namespace {

/// Continuous optimal symmetric budget of the paper's T1 for capacity d:
/// the larger of the self-loop bound rho*chi/mu and the root of
/// 2 beta^2 - (2 rho - d mu) beta - 2 rho chi = 0.
double t1_optimal_budget(double rho, double chi, double mu, double d) {
  const double p = 2.0 * rho - d * mu;
  const double root = (p + std::sqrt(p * p + 16.0 * rho * chi)) / 4.0;
  return std::max(rho * chi / mu, root);
}

TEST(CoreEndToEnd, T1UnconstrainedPrefersMinimalBudgets) {
  const model::Configuration config = testing::paper_t1();
  const MappingResult r = compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible());
  ASSERT_TRUE(r.verified);
  // Budget weight dominates: budgets at the self-loop bound 4, buffer at 10.
  EXPECT_NEAR(r.graphs[0].tasks[0].budget_continuous, 4.0, 1e-4);
  EXPECT_NEAR(r.graphs[0].tasks[1].budget_continuous, 4.0, 1e-4);
  EXPECT_EQ(r.graphs[0].tasks[0].budget, 4);
  EXPECT_EQ(r.graphs[0].buffers[0].capacity, 10);
}

class T1ClosedForm : public ::testing::TestWithParam<int> {};

TEST_P(T1ClosedForm, BudgetMatchesAnalyticOptimum) {
  const int d = GetParam();
  model::Configuration config = testing::paper_t1();
  config.mutable_task_graph(0).set_max_capacity(0, d);
  const MappingResult r = compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible()) << "capacity " << d;
  const double expect = t1_optimal_budget(40.0, 1.0, 10.0, d);
  BBS_EXPECT_NEAR_REL(r.graphs[0].tasks[0].budget_continuous, expect,
                      testing::kSolverRelTol);
  BBS_EXPECT_NEAR_REL(r.graphs[0].tasks[1].budget_continuous, expect,
                      testing::kSolverRelTol);
  EXPECT_TRUE(r.verified);
  // The chosen capacity equals the cap (budgets are the expensive resource).
  EXPECT_EQ(r.graphs[0].buffers[0].capacity, d);
}

INSTANTIATE_TEST_SUITE_P(Capacities, T1ClosedForm, ::testing::Range(1, 11));

/// The closed form generalises to other platform parameters; sweep them.
struct T1Params {
  double rho;
  double chi;
  double mu;
  int cap;
};

class T1ParamSweep : public ::testing::TestWithParam<T1Params> {};

TEST_P(T1ParamSweep, ClosedFormHolds) {
  const T1Params p = GetParam();
  testing::TwoTaskOptions opts;
  opts.replenishment_interval = p.rho;
  opts.required_period = p.mu;
  opts.wcet_a = opts.wcet_b = p.chi;
  opts.size_weight = 1e-4;
  opts.max_capacity = p.cap;
  const model::Configuration config = testing::two_task_chain(opts);

  const double expect =
      t1_optimal_budget(p.rho, p.chi, p.mu, static_cast<double>(p.cap));
  const MappingResult r = compute_budgets_and_buffers(config);
  if (expect > p.rho - 1.0 - 1e-9) {  // granularity g=1 headroom
    EXPECT_FALSE(r.feasible());
    return;
  }
  ASSERT_TRUE(r.feasible());
  BBS_EXPECT_NEAR_REL(r.graphs[0].tasks[0].budget_continuous, expect, 2e-3);
  EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(
    Platforms, T1ParamSweep,
    ::testing::Values(T1Params{40.0, 1.0, 10.0, 3},
                      T1Params{40.0, 2.0, 10.0, 5},
                      T1Params{100.0, 1.0, 10.0, 4},
                      T1Params{100.0, 5.0, 25.0, 2},
                      T1Params{40.0, 1.0, 5.0, 6},
                      T1Params{40.0, 1.0, 5.0, 1},   // infeasible: beta > 39
                      T1Params{20.0, 0.5, 4.0, 8}));

TEST(CoreEndToEnd, T2BudgetOfMiddleTaskStaysHigh) {
  // The paper's second experiment: with both capacities capped, wb interacts
  // with two buffers, so wa and wc budgets are reduced before wb's.
  model::Configuration config = testing::paper_t2();
  model::TaskGraph& tg = config.mutable_task_graph(0);
  tg.set_max_capacity(0, 4);
  tg.set_max_capacity(1, 4);
  const MappingResult r = compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible());
  ASSERT_TRUE(r.verified);
  const double beta_a = r.graphs[0].tasks[0].budget_continuous;
  const double beta_b = r.graphs[0].tasks[1].budget_continuous;
  const double beta_c = r.graphs[0].tasks[2].budget_continuous;
  EXPECT_NEAR(beta_a, beta_c, 1e-3 * beta_a);  // symmetric outer tasks
  EXPECT_GT(beta_b, beta_a + 1.0);             // middle task keeps more budget
}

TEST(CoreEndToEnd, InfeasibleWhenBufferCapTooSmallForPeriod) {
  // T1 with mu = 5: even beta = 39 needs
  // 2(40-39) + 80/39 = 4.05 <= 5*d -> d >= 1; but with mu = 5 the self-loop
  // needs beta >= 8, and cap d = 1 needs beta >= ~35.1 -> feasible; squeeze
  // with mu = 2.2: self-loop beta >= 18.2; d=1: 2(40-b)+80/b <= 2.2 needs
  // b >= ~39.1 > 39 -> infeasible.
  testing::TwoTaskOptions opts;
  opts.required_period = 2.2;
  opts.max_capacity = 1;
  const model::Configuration config = testing::two_task_chain(opts);
  const MappingResult r = compute_budgets_and_buffers(config);
  EXPECT_FALSE(r.feasible());
  EXPECT_EQ(r.status, solver::SolveStatus::kPrimalInfeasible);
}

TEST(CoreEndToEnd, MemoryConstraintLimitsCapacity) {
  // Finite memory forces a smaller buffer, hence larger budgets.
  testing::TwoTaskOptions opts;
  opts.size_weight = 1e-3;
  const model::Configuration free_mem = testing::two_task_chain(opts);
  opts.memory_capacity = 5.0;
  const model::Configuration tight_mem = testing::two_task_chain(opts);
  const MappingResult r_free = compute_budgets_and_buffers(free_mem);
  const MappingResult r_tight = compute_budgets_and_buffers(tight_mem);
  ASSERT_TRUE(r_free.feasible());
  ASSERT_TRUE(r_tight.feasible());
  ASSERT_TRUE(r_tight.verified);
  // (10): (iota + delta' + 1) * zeta <= 5 -> capacity <= 4.
  EXPECT_LE(r_tight.graphs[0].buffers[0].capacity, 4);
  EXPECT_GT(r_tight.graphs[0].tasks[0].budget_continuous,
            r_free.graphs[0].tasks[0].budget_continuous + 1.0);
}

TEST(CoreEndToEnd, GranularityRoundsBudgetsUp) {
  // T1 with granularity 8.
  testing::TwoTaskOptions opts;
  opts.granularity = 8;
  opts.size_weight = 1e-3;
  const model::Configuration config = testing::two_task_chain(opts);
  const MappingResult r = compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible());
  ASSERT_TRUE(r.verified);
  EXPECT_EQ(r.graphs[0].tasks[0].budget % 8, 0);
  EXPECT_GE(r.graphs[0].tasks[0].budget, 8);
}

/// Property over generated graph families: the solver's rounded allocations
/// always pass the independent MCR verification and the platform checks.
class GeneratedFamilies : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedFamilies, RoundedSolutionsAlwaysVerify) {
  const int seed = GetParam();
  gen::GenParams params;
  params.seed = static_cast<std::uint64_t>(seed);

  std::vector<model::Configuration> configs;
  configs.push_back(gen::make_chain(2 + seed % 5, params));
  configs.push_back(gen::make_ring(3 + seed % 4, params));
  configs.push_back(gen::make_split_join(2, 1 + seed % 3, params));
  configs.push_back(gen::make_random_dag(4 + seed % 6, 0.5, params));

  for (const model::Configuration& config : configs) {
    const MappingResult r = compute_budgets_and_buffers(config);
    ASSERT_TRUE(r.feasible()) << "seed " << seed;
    EXPECT_TRUE(r.verified) << "seed " << seed;
    for (const MappedGraph& mg : r.graphs) {
      EXPECT_TRUE(mg.verification.throughput_met);
      EXPECT_LE(mg.verification.mcr,
                mg.verification.required_period * (1.0 + 1e-6) + 1e-6);
      for (const TaskAllocation& t : mg.tasks) {
        EXPECT_GE(static_cast<double>(t.budget),
                  t.budget_continuous - 1e-4 * t.budget_continuous - 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedFamilies, ::testing::Range(0, 8));

TEST(CoreEndToEnd, ObjectiveRoundedAtLeastContinuous) {
  const model::Configuration config = testing::paper_t2();
  const MappingResult r = compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible());
  EXPECT_GE(r.objective_rounded, r.objective_continuous - 1e-6);
}

}  // namespace
}  // namespace bbs::core
