// The fuzz harness's own contract: deterministic case generation, a
// shrinker that converges to smaller still-failing cases, oracles that
// provably detect an injected disagreement, reproducers that round-trip,
// and the checked-in corpus replaying clean. The IPM recovery ladder is
// tested here too — the fuzzer is its main consumer (every injected
// first-attempt failure must be rescued and show up in recovered_solves).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bbs/api/engine.hpp"
#include "bbs/fuzz/fuzzer.hpp"
#include "bbs/io/api_io.hpp"
#include "testing/support.hpp"

namespace bbs::fuzz {
namespace {

using api::Engine;
using api::ErrorCode;
using api::Request;
using api::Response;
using api::ResponseStatus;

/// A spec that is feasible by construction: a short chain with a generous
/// margin, no adversarial mutations, solve request. Used where the test
/// needs a guaranteed-feasible baseline.
CaseSpec feasible_chain_spec() {
  CaseSpec spec;
  spec.seed = 99;
  spec.index = 0;
  spec.family = Family::kChain;
  spec.size_a = 3;
  spec.params = gen::GenParams{};
  spec.params.feasible_margin = 2.0;
  spec.params.seed = 7;
  spec.max_capacity = 4;
  spec.kind = RequestKind::kSolve;
  spec.extreme_wcet = false;
  spec.tiny_interval = false;
  spec.huge_interval = false;
  spec.granularity_stress = false;
  spec.near_infeasible = false;
  return spec;
}

// ---------------------------------------------------------------------------
// Deterministic generation
// ---------------------------------------------------------------------------

TEST(FuzzGenerator, SameSeedAndIndexYieldIdenticalRequests) {
  for (std::uint64_t index : {0ull, 3ull, 17ull, 41ull}) {
    const CaseSpec a = make_case(5, index);
    const CaseSpec b = make_case(5, index);
    const std::string ja =
        io::write_json_compact(io::request_to_json_value(build_request(a)));
    const std::string jb =
        io::write_json_compact(io::request_to_json_value(build_request(b)));
    EXPECT_EQ(ja, jb) << "case index " << index;
  }
}

TEST(FuzzGenerator, CaseStreamCoversFamiliesAndKinds) {
  std::vector<bool> families(5, false);
  std::vector<bool> kinds(5, false);
  bool any_mutation = false;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const CaseSpec spec = make_case(1, i);
    families[static_cast<std::size_t>(spec.family)] = true;
    kinds[static_cast<std::size_t>(spec.kind)] = true;
    any_mutation = any_mutation || spec.extreme_wcet || spec.tiny_interval ||
                   spec.huge_interval || spec.granularity_stress ||
                   spec.near_infeasible;
  }
  for (std::size_t f = 0; f < families.size(); ++f) {
    EXPECT_TRUE(families[f]) << "family " << f << " never drawn in 64 cases";
  }
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    EXPECT_TRUE(kinds[k]) << "kind " << k << " never drawn in 64 cases";
  }
  EXPECT_TRUE(any_mutation);
}

TEST(FuzzGenerator, MutatedConfigurationsAlwaysValidate) {
  // The over-subscription floor in effective_params must keep every
  // mutation combination inside the generators' preconditions — tiny
  // intervals plus granularity stress used to trip the fair-budget
  // assertion without it.
  for (std::uint64_t i = 0; i < 48; ++i) {
    CaseSpec spec = make_case(11, i);
    spec.tiny_interval = true;
    spec.granularity_stress = true;
    spec.huge_interval = false;
    const gen::GenParams p = effective_params(spec);
    const double g = static_cast<double>(p.granularity);
    EXPECT_GE(p.replenishment_interval, p.scheduling_overhead + g);
    EXPECT_NO_THROW(build_configuration(spec).validate())
        << case_label(spec);
  }
}

// ---------------------------------------------------------------------------
// Oracle sensitivity and shrinking
// ---------------------------------------------------------------------------

TEST(FuzzOracles, CleanFeasibleCasePasses) {
  Engine engine;
  FuzzOptions options;
  const CaseResult result = run_case(engine, feasible_chain_spec(), options);
  ASSERT_TRUE(result.passed) << (result.failures.empty()
                                     ? "no failure recorded"
                                     : result.failures.front());
  EXPECT_FALSE(result.infeasible);
}

TEST(FuzzOracles, InjectedObjectiveCorruptionIsDetected) {
  // inject_known_bad corrupts the reported rounded objective of every
  // feasible solve before the oracles run; the recomputed-cost consistency
  // check must fire. This is the end-to-end proof that the harness can
  // actually see a disagreement.
  Engine engine;
  FuzzOptions options;
  options.inject_known_bad = true;
  const CaseResult result = run_case(engine, feasible_chain_spec(), options);
  ASSERT_FALSE(result.passed);
  ASSERT_FALSE(result.failures.empty());
  EXPECT_NE(result.failures.front().find("disagrees"), std::string::npos)
      << result.failures.front();
}

TEST(FuzzShrinker, ConvergesToASmallerStillFailingCase) {
  Engine engine;
  FuzzOptions options;
  options.inject_known_bad = true;  // every feasible solve fails
  CaseSpec big = feasible_chain_spec();
  big.size_a = 6;
  big.params.num_processors = 4;
  big.max_capacity = 6;
  ASSERT_FALSE(run_case(engine, big, options).passed);

  const CaseSpec shrunk = shrink_case(engine, big, options);
  EXPECT_FALSE(run_case(engine, shrunk, options).passed)
      << "shrinker returned a passing case";
  EXPECT_LT(shrunk.size_a, big.size_a);
  EXPECT_LE(shrunk.params.num_processors, 2);
  EXPECT_LT(shrunk.max_capacity, big.max_capacity);
}

// ---------------------------------------------------------------------------
// Reproducers
// ---------------------------------------------------------------------------

TEST(FuzzReproducer, CaseSpecRoundTripsThroughJson) {
  CaseSpec spec = make_case(3, 12);
  // A generator seed beyond 2^53 must survive the round-trip exactly —
  // this is why it is serialised as a decimal string, not a JSON number.
  spec.params.seed = 0x9E3779B97F4A7C15ull;
  const CaseSpec back = case_spec_from_json_value(case_spec_to_json_value(spec));
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.index, spec.index);
  EXPECT_EQ(back.family, spec.family);
  EXPECT_EQ(back.size_a, spec.size_a);
  EXPECT_EQ(back.size_b, spec.size_b);
  EXPECT_EQ(back.max_capacity, spec.max_capacity);
  EXPECT_EQ(back.kind, spec.kind);
  EXPECT_EQ(back.variant, spec.variant);
  EXPECT_EQ(back.params.seed, spec.params.seed);
  EXPECT_EQ(back.params.num_processors, spec.params.num_processors);
  EXPECT_DOUBLE_EQ(back.params.wcet_lo, spec.params.wcet_lo);
  EXPECT_DOUBLE_EQ(back.params.feasible_margin, spec.params.feasible_margin);
  EXPECT_EQ(back.extreme_wcet, spec.extreme_wcet);
  EXPECT_EQ(back.tiny_interval, spec.tiny_interval);
  EXPECT_EQ(back.huge_interval, spec.huge_interval);
  EXPECT_EQ(back.granularity_stress, spec.granularity_stress);
  EXPECT_EQ(back.near_infeasible, spec.near_infeasible);
}

TEST(FuzzReproducer, WriteAndReplayRoundTrip) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "bbs_fuzz_test_corpus";
  std::filesystem::remove_all(dir);

  Engine engine;
  FuzzOptions inject;
  inject.inject_known_bad = true;
  const CaseSpec spec = feasible_chain_spec();
  const CaseResult bad = run_case(engine, spec, inject);
  ASSERT_FALSE(bad.passed);
  const std::string path = write_reproducer(spec, bad, dir.string());
  ASSERT_TRUE(std::filesystem::exists(path));

  // Replayed without the injection hook, the recorded request must run its
  // oracles clean — proving the stored request (not a regeneration) is
  // what replays.
  const CaseResult replayed = replay_file(path, FuzzOptions{});
  EXPECT_TRUE(replayed.passed) << (replayed.failures.empty()
                                       ? "no failure recorded"
                                       : replayed.failures.front());
  EXPECT_EQ(replayed.spec.seed, spec.seed);
  EXPECT_EQ(replayed.spec.index, spec.index);
  std::filesystem::remove_all(dir);
}

TEST(FuzzReproducer, CheckedInCorpusReplaysClean) {
  // Every corpus file is a regression: a case that once exposed a real
  // bug (false exact-infeasibility proofs, unverifiable min_period
  // mappings, over-strict token guards). Replaying them green means the
  // fixes hold.
  const std::filesystem::path corpus = BBS_TEST_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(corpus));
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
    if (entry.path().extension() != ".json") continue;
    const CaseResult result = replay_file(entry.path().string(), FuzzOptions{});
    EXPECT_TRUE(result.passed)
        << entry.path().filename().string() << ": "
        << (result.failures.empty() ? "no failure recorded"
                                    : result.failures.front());
    ++replayed;
  }
  EXPECT_GE(replayed, 1u);
}

// ---------------------------------------------------------------------------
// Recovery ladder
// ---------------------------------------------------------------------------

Request failing_solve(bool only_first_attempt) {
  Request request;
  request.id = "ladder";
  request.options.ipm.fail_at_iteration = 0;
  request.options.ipm.fail_only_first_attempt = only_first_attempt;
  request.payload = api::SolveRequest{testing::paper_t1()};
  return request;
}

TEST(FuzzRecoveryLadder, FirstAttemptFailureIsRescued) {
  Engine engine;
  const Response response = engine.run(failing_solve(true));
  ASSERT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_GE(response.diagnostics.recovered_solves, 1);
  const auto& mapping = std::get<api::SolvePayload>(response.payload).mapping;
  EXPECT_TRUE(mapping.recovered);
  EXPECT_GE(mapping.recovery_attempts, 1);
  EXPECT_TRUE(mapping.verified);
  // The ladder only mutates numeric values of the KKT system; the symbolic
  // factorisation of the pooled session must survive the rescued retry.
  EXPECT_EQ(response.diagnostics.symbolic_factorisations, 1);
  EXPECT_GE(engine.stats().recovered_solves, 1u);

  // The session stays healthy: a clean follow-up request reuses it and
  // still reports the single symbolic factorisation.
  Request clean;
  clean.id = "clean";
  clean.payload = api::SolveRequest{testing::paper_t1()};
  const Response again = engine.run(clean);
  ASSERT_EQ(again.status, ResponseStatus::kOk);
  EXPECT_TRUE(again.diagnostics.session_reused);
  EXPECT_EQ(again.diagnostics.symbolic_factorisations, 1);
  EXPECT_EQ(again.diagnostics.recovered_solves, 0);
}

TEST(FuzzRecoveryLadder, PersistentFailureIsAStructuredNumericalError) {
  // ipm.fail_at re-fires on every ladder attempt, so no amount of
  // regularisation can rescue it — the engine must report a structured
  // numerical_failure instead of looping or crashing.
  Engine engine;
  const Response response = engine.run(failing_solve(false));
  ASSERT_EQ(response.status, ResponseStatus::kError);
  EXPECT_EQ(response.error_code, ErrorCode::kNumericalFailure);
  EXPECT_EQ(engine.stats().recovered_solves, 0u);
}

TEST(FuzzRecoveryLadder, DisabledLadderReportsTheFailure) {
  Engine engine;
  Request request = failing_solve(true);
  request.options.ipm.recovery_attempts = 0;
  const Response response = engine.run(request);
  ASSERT_EQ(response.status, ResponseStatus::kError);
  EXPECT_EQ(response.error_code, ErrorCode::kNumericalFailure);
}

TEST(FuzzRecoveryLadder, FuzzOptionsSurfaceRecoveredSolves) {
  // The summary must expose engine-wide rescues so CI can assert that an
  // injected-fault fuzz run actually exercised the ladder.
  Engine engine;
  CaseSpec spec = feasible_chain_spec();
  Request request = build_request(spec);
  request.options.ipm.fail_at_iteration = 0;
  request.options.ipm.fail_only_first_attempt = true;
  const CaseResult result =
      run_request_checks(engine, spec, request, FuzzOptions{});
  ASSERT_TRUE(result.passed) << (result.failures.empty()
                                     ? "no failure recorded"
                                     : result.failures.front());
  EXPECT_GE(result.recovered_solves, 1);
}

}  // namespace
}  // namespace bbs::fuzz
