// Tests for the Algorithm-1 program builder: variable layout, constraint
// counts, coefficient spot checks and the fixed-budget/fixed-delta modes.
#include <gtest/gtest.h>

#include "bbs/common/assert.hpp"
#include "bbs/core/program_builder.hpp"
#include "bbs/gen/generators.hpp"
#include "testing/support.hpp"

namespace bbs::core {
namespace {

TEST(ProgramBuilder, VariableLayoutForT1) {
  const model::Configuration config = gen::producer_consumer_t1();
  const BuiltProgram p = build_algorithm1(config);
  // 4 actors, one pinned (connected SRDF) -> 3 start vars; 2 beta, 2 lambda,
  // 1 delta = 8 variables.
  EXPECT_EQ(p.layout.num_vars, 8);
  EXPECT_EQ(p.problem.num_vars(), 8);
  int pinned = 0;
  for (const auto v : p.layout.start_var[0]) {
    if (v < 0) ++pinned;
  }
  EXPECT_EQ(pinned, 1);
}

TEST(ProgramBuilder, RowAndConeCountsForT1) {
  const model::Configuration config = gen::producer_consumer_t1();
  const BuiltProgram p = build_algorithm1(config);
  // LP rows: per task (6)+(7-self) = 4; per buffer data+space = 2;
  // delta >= 0 = 1; per processor (9) = 2; no finite memory.
  // SOC: one 3-dim block per task.
  EXPECT_EQ(p.problem.cone().nonneg(), 4 + 2 + 1 + 2);
  ASSERT_EQ(p.problem.cone().soc_dims().size(), 2u);
  EXPECT_EQ(p.problem.num_rows(), 9 + 6);
}

TEST(ProgramBuilder, CapacityCapAddsRow) {
  model::Configuration config = gen::producer_consumer_t1();
  const BuiltProgram before = build_algorithm1(config);
  config.mutable_task_graph(0).set_max_capacity(0, 5);
  const BuiltProgram after = build_algorithm1(config);
  EXPECT_EQ(after.problem.num_rows(), before.problem.num_rows() + 1);
}

TEST(ProgramBuilder, MemoryConstraintAddsRow) {
  testing::TwoTaskOptions opts;
  opts.memory_capacity = 12.0;  // finite!
  opts.container_size = 2;
  const model::Configuration config = testing::two_task_chain(opts);
  const BuiltProgram prog = build_algorithm1(config);
  // Same as T1 plus one memory row.
  EXPECT_EQ(prog.problem.cone().nonneg(), 10);
}

TEST(ProgramBuilder, ObjectiveUsesWeightsAndContainerSizes) {
  testing::TwoTaskOptions opts;
  opts.same_processor = true;
  opts.required_period = 20.0;
  opts.budget_weight_a = 2.5;                     // a(w) = 2.5
  opts.container_size = 4;
  opts.size_weight = 0.5;                         // b(e)*zeta = 0.5*4 = 2
  const model::Configuration config = testing::two_task_chain(opts);
  const BuiltProgram prog = build_algorithm1(config);

  const auto beta_a = prog.layout.beta_var[0][0];
  const auto delta = prog.layout.delta_var[0][0];
  EXPECT_DOUBLE_EQ(prog.problem.c()[static_cast<std::size_t>(beta_a)], 2.5);
  EXPECT_DOUBLE_EQ(prog.problem.c()[static_cast<std::size_t>(delta)], 2.0);
}

TEST(ProgramBuilder, FixedBudgetsBecomePureLp) {
  const model::Configuration config = gen::producer_consumer_t1();
  BuildOptions opts;
  opts.fixed_budgets = std::vector<Vector>{{8.0, 8.0}};
  const BuiltProgram p = build_algorithm1(config, opts);
  EXPECT_TRUE(p.problem.cone().soc_dims().empty());
  // beta/lambda variables gone: 3 start + 1 delta.
  EXPECT_EQ(p.layout.num_vars, 4);
  EXPECT_EQ(p.layout.beta_var[0][0], -1);
  // Extractor returns the fixed values.
  const Vector budgets =
      p.layout.budgets_of(Vector(static_cast<std::size_t>(p.layout.num_vars),
                                 0.0),
                          0);
  EXPECT_DOUBLE_EQ(budgets[0], 8.0);
}

TEST(ProgramBuilder, FixedDeltasRemoveDeltaVars) {
  const model::Configuration config = gen::producer_consumer_t1();
  BuildOptions opts;
  opts.fixed_deltas = std::vector<Vector>{{6.0}};
  const BuiltProgram p = build_algorithm1(config, opts);
  // 3 start + 2 beta + 2 lambda.
  EXPECT_EQ(p.layout.num_vars, 7);
  EXPECT_EQ(p.layout.delta_var[0][0], -1);
  const Vector deltas =
      p.layout.deltas_of(Vector(static_cast<std::size_t>(p.layout.num_vars),
                                0.0),
                         0);
  EXPECT_DOUBLE_EQ(deltas[0], 6.0);
}

TEST(ProgramBuilder, MultiGraphSharedProcessorRow) {
  // Two graphs contending for one processor: constraint (9) must couple
  // both. The shared multi-graph preset puts video task "v_dec" and audio
  // task "a_dec" on p0.
  const model::Configuration config = testing::multi_graph_sweep();
  const BuiltProgram prog = build_algorithm1(config);
  // Find the processor row: it has both beta variables with coefficient 1.
  const auto b0 = prog.layout.beta_var[0][0];  // video "v_dec" on p0
  const auto b1 = prog.layout.beta_var[1][0];  // audio "a_dec" on p0
  const auto dense = prog.problem.g().to_dense();
  bool found = false;
  for (std::size_t r = 0; r < static_cast<std::size_t>(prog.problem.num_rows());
       ++r) {
    if (dense(r, static_cast<std::size_t>(b0)) == 1.0 &&
        dense(r, static_cast<std::size_t>(b1)) == 1.0) {
      found = true;
      // rhs = rho - o - 2g = 40 - 0 - 2.
      EXPECT_DOUBLE_EQ(prog.problem.h()[r], 38.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ProgramBuilder, ValidatesFixedVectors) {
  const model::Configuration config = gen::producer_consumer_t1();
  BuildOptions bad_count;
  bad_count.fixed_budgets = std::vector<Vector>{{8.0}};  // one entry, 2 tasks
  EXPECT_THROW(build_algorithm1(config, bad_count), ContractViolation);

  BuildOptions bad_value;
  bad_value.fixed_budgets = std::vector<Vector>{{8.0, 0.0}};
  EXPECT_THROW(build_algorithm1(config, bad_value), ModelError);

  BuildOptions bad_delta;
  bad_delta.fixed_deltas = std::vector<Vector>{{-1.0}};
  EXPECT_THROW(build_algorithm1(config, bad_delta), ModelError);
}

TEST(ProgramBuilder, InvalidConfigurationRejected) {
  model::Configuration config(1);
  config.add_memory("m", -1.0);
  model::TaskGraph tg("g", 10.0);
  tg.add_task("t", 0, 1.0);  // no processors exist
  config.add_task_graph(std::move(tg));
  EXPECT_THROW(build_algorithm1(config), ModelError);
}

TEST(ProgramBuilder, DisconnectedGraphPinsPerComponent) {
  // Two independent producer-consumer pairs in ONE task graph: two weakly
  // connected SRDF components -> two pinned references.
  model::Configuration config(1);
  const auto p = config.add_processor("p", 40.0);
  const auto mem = config.add_memory("m", -1.0);
  model::TaskGraph tg("g", 20.0);
  const auto a = tg.add_task("a", p, 1.0);
  const auto b = tg.add_task("b", p, 1.0);
  const auto c = tg.add_task("c", p, 1.0);
  const auto d = tg.add_task("d", p, 1.0);
  tg.add_buffer("ab", a, b, mem);
  tg.add_buffer("cd", c, d, mem);
  config.add_task_graph(std::move(tg));
  const BuiltProgram prog = build_algorithm1(config);
  int pinned = 0;
  for (const auto v : prog.layout.start_var[0]) {
    if (v < 0) ++pinned;
  }
  EXPECT_EQ(pinned, 2);
}

}  // namespace
}  // namespace bbs::core
