// Tests for the synthetic configuration generators: exact reproduction of
// the paper's T1/T2, structural properties, determinism, and feasibility by
// construction.
#include <gtest/gtest.h>

#include "bbs/common/assert.hpp"
#include "bbs/gen/generators.hpp"

namespace bbs::gen {
namespace {

TEST(Generators, T1MatchesPaperParameters) {
  const model::Configuration c = producer_consumer_t1();
  ASSERT_EQ(c.num_processors(), 2);
  EXPECT_DOUBLE_EQ(c.processor(0).replenishment_interval, 40.0);
  EXPECT_DOUBLE_EQ(c.processor(1).replenishment_interval, 40.0);
  ASSERT_EQ(c.num_task_graphs(), 1);
  const model::TaskGraph& tg = c.task_graph(0);
  EXPECT_DOUBLE_EQ(tg.required_period(), 10.0);
  ASSERT_EQ(tg.num_tasks(), 2);
  EXPECT_DOUBLE_EQ(tg.task(0).wcet, 1.0);
  EXPECT_DOUBLE_EQ(tg.task(1).wcet, 1.0);
  EXPECT_NE(tg.task(0).processor, tg.task(1).processor);
  ASSERT_EQ(tg.num_buffers(), 1);
  EXPECT_EQ(tg.buffer(0).container_size, 1);
  EXPECT_EQ(tg.buffer(0).initial_fill, 0);
  EXPECT_NO_THROW(c.validate());
}

TEST(Generators, T2ExtendsT1WithThirdStage) {
  const model::Configuration c = three_stage_chain_t2();
  ASSERT_EQ(c.num_processors(), 3);
  const model::TaskGraph& tg = c.task_graph(0);
  ASSERT_EQ(tg.num_tasks(), 3);
  ASSERT_EQ(tg.num_buffers(), 2);
  EXPECT_EQ(tg.buffer(0).producer, 0);
  EXPECT_EQ(tg.buffer(0).consumer, 1);
  EXPECT_EQ(tg.buffer(1).producer, 1);
  EXPECT_EQ(tg.buffer(1).consumer, 2);
  // Each task on its own processor (paper: p1, p2, p3).
  EXPECT_NE(tg.task(0).processor, tg.task(1).processor);
  EXPECT_NE(tg.task(1).processor, tg.task(2).processor);
  EXPECT_NO_THROW(c.validate());
}

TEST(Generators, ChainStructure) {
  const model::Configuration c = make_chain(6);
  const model::TaskGraph& tg = c.task_graph(0);
  EXPECT_EQ(tg.num_tasks(), 6);
  EXPECT_EQ(tg.num_buffers(), 5);
  for (linalg::Index b = 0; b < tg.num_buffers(); ++b) {
    EXPECT_EQ(tg.buffer(b).producer, b);
    EXPECT_EQ(tg.buffer(b).consumer, b + 1);
  }
  EXPECT_NO_THROW(c.validate());
}

TEST(Generators, RingClosingEdgeCarriesToken) {
  const model::Configuration c = make_ring(5);
  const model::TaskGraph& tg = c.task_graph(0);
  EXPECT_EQ(tg.num_buffers(), 5);
  linalg::Index filled = 0;
  for (linalg::Index b = 0; b < tg.num_buffers(); ++b) {
    filled += tg.buffer(b).initial_fill;
  }
  EXPECT_EQ(filled, 1);  // exactly the closing edge
}

TEST(Generators, SplitJoinStructure) {
  const model::Configuration c = make_split_join(3, 2);
  const model::TaskGraph& tg = c.task_graph(0);
  // src + 3*2 branch tasks + sink.
  EXPECT_EQ(tg.num_tasks(), 8);
  // Per branch: src->first, internal (depth-1), last->sink = depth+1 edges.
  EXPECT_EQ(tg.num_buffers(), 9);
  EXPECT_NO_THROW(c.validate());
}

TEST(Generators, RandomDagIsAcyclicAndConnected) {
  const model::Configuration c = make_random_dag(12, 0.8);
  const model::TaskGraph& tg = c.task_graph(0);
  EXPECT_EQ(tg.num_tasks(), 12);
  EXPECT_GE(tg.num_buffers(), 11);  // spanning chain at minimum
  for (linalg::Index b = 0; b < tg.num_buffers(); ++b) {
    EXPECT_LT(tg.buffer(b).producer, tg.buffer(b).consumer);  // forward edge
  }
  EXPECT_NO_THROW(c.validate());
}

TEST(Generators, DeterministicForSameSeed) {
  GenParams params;
  params.seed = 99;
  const model::Configuration a = make_random_dag(10, 0.5, params);
  const model::Configuration b = make_random_dag(10, 0.5, params);
  ASSERT_EQ(a.task_graph(0).num_buffers(), b.task_graph(0).num_buffers());
  for (linalg::Index t = 0; t < a.task_graph(0).num_tasks(); ++t) {
    EXPECT_DOUBLE_EQ(a.task_graph(0).task(t).wcet,
                     b.task_graph(0).task(t).wcet);
    EXPECT_EQ(a.task_graph(0).task(t).processor,
              b.task_graph(0).task(t).processor);
  }
}

TEST(Generators, DifferentSeedsDiffer) {
  GenParams pa;
  pa.seed = 1;
  GenParams pb;
  pb.seed = 2;
  const model::Configuration a = make_random_dag(10, 0.5, pa);
  const model::Configuration b = make_random_dag(10, 0.5, pb);
  bool any_diff = false;
  for (linalg::Index t = 0; t < 10; ++t) {
    if (a.task_graph(0).task(t).wcet != b.task_graph(0).task(t).wcet) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generators, CarEntertainmentPresetIsValidMultiJob) {
  const model::Configuration c = car_entertainment_preset();
  EXPECT_EQ(c.num_task_graphs(), 2);
  EXPECT_GE(c.num_processors(), 3);
  EXPECT_NO_THROW(c.validate());
  // The two jobs share at least one processor.
  std::vector<bool> used_by_0(static_cast<std::size_t>(c.num_processors()),
                              false);
  bool shared = false;
  for (linalg::Index t = 0; t < c.task_graph(0).num_tasks(); ++t) {
    used_by_0[static_cast<std::size_t>(c.task_graph(0).task(t).processor)] =
        true;
  }
  for (linalg::Index t = 0; t < c.task_graph(1).num_tasks(); ++t) {
    if (used_by_0[static_cast<std::size_t>(c.task_graph(1).task(t).processor)]) {
      shared = true;
    }
  }
  EXPECT_TRUE(shared);
}

TEST(Generators, Preconditions) {
  EXPECT_THROW(make_chain(0), ContractViolation);
  EXPECT_THROW(make_ring(1), ContractViolation);
  EXPECT_THROW(make_split_join(0, 1), ContractViolation);
  EXPECT_THROW(make_random_dag(1, 0.5), ContractViolation);
  EXPECT_THROW(make_random_dag(5, -1.0), ContractViolation);
}

}  // namespace
}  // namespace bbs::gen
