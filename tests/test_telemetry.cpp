// Telemetry tests: the log-bucketed latency histogram (bucket layout,
// merge, percentile error bound, concurrent recording), the bounded
// per-structure statistics table, and the persistent structure cache —
// including the warm-restart invariant (a fresh engine pre-warmed from
// disk serves a known structure with zero symbolic factorisations) and the
// fail-soft negative paths (truncated/corrupt/stale/misnamed files are
// skipped and counted, never fatal).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bbs/api/engine.hpp"
#include "bbs/common/hash.hpp"
#include "bbs/service/dispatcher.hpp"
#include "bbs/telemetry/histogram.hpp"
#include "bbs/telemetry/service_telemetry.hpp"
#include "bbs/telemetry/structure_cache.hpp"
#include "testing/support.hpp"

namespace bbs {
namespace {

using api::Engine;
using api::EngineOptions;
using api::Request;
using api::Response;
using api::ResponseStatus;
using telemetry::CacheEntry;
using telemetry::LatencyHistogram;
using telemetry::RequestKind;
using telemetry::ServiceTelemetry;
using telemetry::Stage;
using telemetry::StructureCache;
using telemetry::StructureObservation;
using telemetry::StructureRow;

/// A unique scratch directory removed on scope exit.
struct ScopedTempDir {
  ScopedTempDir() {
    char pattern[] = "/tmp/bbs_telemetry_XXXXXX";
    const char* made = ::mkdtemp(pattern);
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : "";
  }
  ~ScopedTempDir() {
    if (!path.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  }
  std::string path;
};

Request solve_request(model::Configuration config, std::string id = "") {
  Request request;
  request.id = std::move(id);
  request.payload = api::SolveRequest{std::move(config)};
  return request;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// TelemetryHistogram
// ---------------------------------------------------------------------------

TEST(TelemetryHistogram, EmptySnapshotIsAllZero) {
  LatencyHistogram histogram;
  const LatencyHistogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum_ms, 0.0);
  EXPECT_EQ(snap.max_ms, 0.0);
  EXPECT_EQ(snap.percentile(0.5), 0.0);
  EXPECT_EQ(snap.percentile(0.99), 0.0);
  EXPECT_EQ(snap.mean_ms(), 0.0);
}

TEST(TelemetryHistogram, SingleSampleReportsItselfExactly) {
  // With one sample every quantile lands in its bucket, and the estimate
  // min(bucket upper edge, recorded max) collapses to the exact value.
  LatencyHistogram histogram;
  histogram.record(5.0);
  const LatencyHistogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_NEAR(snap.max_ms, 5.0, 1e-9);
  EXPECT_NEAR(snap.percentile(0.0), 5.0, 1e-9);
  EXPECT_NEAR(snap.percentile(0.5), 5.0, 1e-9);
  EXPECT_NEAR(snap.percentile(1.0), 5.0, 1e-9);
  EXPECT_NEAR(snap.mean_ms(), 5.0, 1e-9);
}

TEST(TelemetryHistogram, BucketLayoutIsMonotoneAndContainsItsValues) {
  // Sweep seven orders of magnitude: indices must be non-decreasing and
  // every value must lie within (upper(idx - 1), upper(idx)].
  int previous = -1;
  for (double ms = 2e-3; ms < 2e4; ms *= 1.07) {
    const int idx = LatencyHistogram::bucket_index(ms);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, LatencyHistogram::kBuckets);
    EXPECT_GE(idx, previous) << "ms=" << ms;
    EXPECT_LE(ms, LatencyHistogram::bucket_upper_ms(idx) * (1 + 1e-12))
        << "ms=" << ms;
    if (idx > 0) {
      EXPECT_GE(ms, LatencyHistogram::bucket_upper_ms(idx - 1) * (1 - 1e-12))
          << "ms=" << ms;
    }
    previous = idx;
  }
  // Sub-microsecond values land in the underflow bucket, absurdly large
  // ones in the overflow bucket.
  EXPECT_EQ(LatencyHistogram::bucket_index(1e-6), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(1e9),
            LatencyHistogram::kBuckets - 1);
  EXPECT_TRUE(std::isinf(
      LatencyHistogram::bucket_upper_ms(LatencyHistogram::kBuckets - 1)));
}

TEST(TelemetryHistogram, PercentileOverestimatesByAtMostTwentyFivePercent) {
  // 1000 known samples: the documented contract is that a percentile
  // estimate never under-reports and overshoots by at most the relative
  // bucket width (25%).
  LatencyHistogram histogram;
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) {
    const double ms = 0.01 * i;  // 0.01 .. 10 ms
    values.push_back(ms);
    histogram.record(ms);
  }
  const LatencyHistogram::Snapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.count, 1000u);
  for (const double p : {0.50, 0.90, 0.99}) {
    const double exact =
        values[static_cast<std::size_t>(std::ceil(p * 1000.0)) - 1];
    const double estimate = snap.percentile(p);
    EXPECT_GE(estimate, exact * (1 - 1e-12)) << "p=" << p;
    EXPECT_LE(estimate, exact * 1.25 + 1e-9) << "p=" << p;
  }
  EXPECT_NEAR(snap.max_ms, 10.0, 1e-9);
  // The sum accumulates in integer nanoseconds: up to 1 ns truncation per
  // sample.
  EXPECT_NEAR(snap.sum_ms, 0.01 * 1000.0 * 1001.0 / 2.0, 1e-2);
}

TEST(TelemetryHistogram, QuantileInOverflowBucketReturnsRecordedMax) {
  LatencyHistogram histogram;
  histogram.record(1.0);
  histogram.record(1e9);  // beyond the top octave -> overflow bucket
  const LatencyHistogram::Snapshot snap = histogram.snapshot();
  EXPECT_NEAR(snap.percentile(1.0), 1e9, 1.0);
  EXPECT_NEAR(snap.max_ms, 1e9, 1.0);
}

TEST(TelemetryHistogram, NegativeAndNonFiniteRecordAsZero) {
  LatencyHistogram histogram;
  histogram.record(-3.0);
  histogram.record(std::numeric_limits<double>::quiet_NaN());
  histogram.record(std::numeric_limits<double>::infinity());
  const LatencyHistogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.max_ms, 0.0);
  EXPECT_EQ(snap.percentile(0.99), 0.0);
}

TEST(TelemetryHistogram, SnapshotsMergeBucketwise) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 100; ++i) a.record(0.5);
  for (int i = 0; i < 100; ++i) b.record(50.0);
  LatencyHistogram::Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count, 200u);
  EXPECT_NEAR(merged.sum_ms, 100 * 0.5 + 100 * 50.0, 1e-2);
  EXPECT_NEAR(merged.max_ms, 50.0, 1e-9);
  // The median sits in the low half, p99 in the high half.
  EXPECT_LE(merged.percentile(0.5), 0.5 * 1.25 + 1e-9);
  EXPECT_GE(merged.percentile(0.99), 50.0 * (1 - 1e-12));
}

TEST(TelemetryHistogram, ConcurrentRecordingLosesNothing) {
  // Exercised under TSan in CI: recording is relaxed-atomic and wait-free,
  // and no sample may be lost or torn.
  LatencyHistogram histogram;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.record(0.1 * (1 + (t + i) % 7));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const LatencyHistogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucketed = 0;
  for (const std::uint64_t c : snap.buckets) bucketed += c;
  EXPECT_EQ(bucketed, snap.count);
  EXPECT_NEAR(snap.max_ms, 0.7, 1e-9);
}

// ---------------------------------------------------------------------------
// TelemetryStructureTable
// ---------------------------------------------------------------------------

StructureObservation observation(bool hit, std::uint64_t solves,
                                 std::uint64_t iterations) {
  StructureObservation o;
  o.pool_hit = hit;
  o.solves = solves;
  o.ipm_iterations = iterations;
  o.warm_started_solves = solves > 0 ? solves - 1 : 0;
  o.recovered_solves = 0;
  return o;
}

TEST(TelemetryStructureTable, AggregatesPerStructureHash) {
  ServiceTelemetry telemetry;
  telemetry.record_structure(0xaaa, observation(false, 3, 30));
  telemetry.record_structure(0xaaa, observation(true, 2, 15));
  telemetry.record_structure(0xbbb, observation(false, 1, 9));
  const std::vector<StructureRow> rows = telemetry.structure_rows();
  ASSERT_EQ(rows.size(), 2u);
  // Hottest (most solves) first.
  EXPECT_EQ(rows[0].key_hash, 0xaaau);
  EXPECT_EQ(rows[0].requests, 2u);
  EXPECT_EQ(rows[0].pool_hits, 1u);
  EXPECT_EQ(rows[0].pool_misses, 1u);
  EXPECT_EQ(rows[0].solves, 5u);
  EXPECT_EQ(rows[0].ipm_iterations, 45u);
  EXPECT_EQ(rows[0].warm_started_solves, 3u);
  EXPECT_EQ(rows[1].key_hash, 0xbbbu);
  EXPECT_EQ(rows[1].requests, 1u);
  EXPECT_EQ(telemetry.structure_evictions(), 0u);
}

TEST(TelemetryStructureTable, EvictsLeastRecentlySeenAtTheBound) {
  ServiceTelemetry telemetry(/*max_structures=*/4);
  for (std::uint64_t h = 1; h <= 10; ++h) {
    telemetry.record_structure(h, observation(false, 1, 1));
  }
  std::vector<StructureRow> rows = telemetry.structure_rows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(telemetry.structure_evictions(), 6u);
  // The four most recently seen hashes survive.
  std::vector<std::uint64_t> hashes;
  for (const StructureRow& row : rows) hashes.push_back(row.key_hash);
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(hashes, (std::vector<std::uint64_t>{7, 8, 9, 10}));
  // Touching a resident hash refreshes its recency: it must survive the
  // next insertion; the stalest resident (8) goes instead.
  telemetry.record_structure(7, observation(true, 1, 1));
  telemetry.record_structure(11, observation(false, 1, 1));
  hashes.clear();
  for (const StructureRow& row : telemetry.structure_rows()) {
    hashes.push_back(row.key_hash);
  }
  EXPECT_NE(std::find(hashes.begin(), hashes.end(), 7), hashes.end());
  EXPECT_EQ(std::find(hashes.begin(), hashes.end(), 8), hashes.end());
}

TEST(TelemetryStructureTable, KindAndStageNamesRoundTrip) {
  EXPECT_EQ(telemetry::request_kind_from_string("solve"), RequestKind::kSolve);
  EXPECT_EQ(telemetry::request_kind_from_string("sweep"), RequestKind::kSweep);
  EXPECT_EQ(telemetry::request_kind_from_string("min_period"),
            RequestKind::kMinPeriod);
  EXPECT_EQ(telemetry::request_kind_from_string("two_phase"),
            RequestKind::kTwoPhase);
  EXPECT_EQ(telemetry::request_kind_from_string("latency"),
            RequestKind::kLatency);
  EXPECT_EQ(telemetry::request_kind_from_string("no_such_kind"),
            RequestKind::kOther);
  for (int k = 0; k < telemetry::kNumRequestKinds; ++k) {
    const auto kind = static_cast<RequestKind>(k);
    EXPECT_EQ(telemetry::request_kind_from_string(telemetry::to_string(kind)),
              kind);
  }
  EXPECT_STREQ(telemetry::to_string(Stage::kQueue), "queue");
  EXPECT_STREQ(telemetry::to_string(Stage::kSolve), "solve");
  EXPECT_STREQ(telemetry::to_string(Stage::kWrite), "write");
}

// ---------------------------------------------------------------------------
// TelemetryCache
// ---------------------------------------------------------------------------

CacheEntry minimal_entry(std::string key) {
  CacheEntry entry;
  entry.key = std::move(key);
  entry.symbolic.dim = 2;
  entry.symbolic.pattern_hash = 7;
  entry.symbolic.permutation = {0, 1};
  entry.symbolic.etree_parent = {1, -1};
  entry.symbolic.factor_col_ptr = {0, 1, 3};
  return entry;
}

TEST(TelemetryCache, FileNamesAreStableHashesOfTheKey) {
  const std::string name = StructureCache::file_name_for_key("some key");
  ASSERT_EQ(name.size(), 16u + 5u);  // 16 hex digits + ".bbsc"
  EXPECT_EQ(name.substr(16), ".bbsc");
  EXPECT_EQ(name, StructureCache::file_name_for_key("some key"));
  EXPECT_NE(name, StructureCache::file_name_for_key("another key"));
}

TEST(TelemetryCache, AtCapacityNewKeysAreDroppedButRefreshesPass) {
  ScopedTempDir dir;
  StructureCache cache(dir.path, /*max_entries=*/1);
  cache.store(minimal_entry("k1"));
  cache.store(minimal_entry("k2"));  // over capacity: dropped, counted
  cache.store(minimal_entry("k1"));  // refresh of a resident key: accepted
  cache.flush();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.contains("k1"));
  EXPECT_FALSE(cache.contains("k2"));
  const telemetry::StructureCacheStats stats = cache.stats();
  EXPECT_EQ(stats.saves, 2u);
  EXPECT_EQ(stats.save_errors, 1u);
}

TEST(TelemetryCache, EngineRoundTripWarmRestartSkipsSymbolicWork) {
  ScopedTempDir dir;
  const Request request = solve_request(testing::paper_t1(), "rt");

  double cold_objective = 0.0;
  {
    StructureCache cache(dir.path);
    EXPECT_EQ(cache.load(), 0u);
    EngineOptions options;
    options.structure_cache = &cache;
    Engine engine(options);
    const Response cold = engine.run(request);
    ASSERT_EQ(cold.status, ResponseStatus::kOk) << cold.error;
    EXPECT_FALSE(cold.diagnostics.session_reused);
    EXPECT_EQ(cold.diagnostics.symbolic_factorisations, 1);
    cold_objective =
        std::get<api::SolvePayload>(cold.payload).mapping.objective_rounded;
    cache.flush();
    EXPECT_EQ(cache.stats().saves, 1u);
    EXPECT_EQ(cache.size(), 1u);
  }

  // "Restart": a fresh cache over the same directory, a fresh engine
  // pre-warmed from it. The request must be a pool hit served with zero
  // symbolic factorisations — the warm-restart invariant.
  StructureCache cache(dir.path);
  EXPECT_EQ(cache.load(), 1u);
  EXPECT_EQ(cache.stats().load_errors, 0u);
  EngineOptions options;
  options.structure_cache = &cache;
  Engine engine(options);
  for (const CacheEntry& entry : cache.entries()) {
    EXPECT_TRUE(engine.prewarm_entry(entry));
  }
  EXPECT_EQ(engine.stats().prewarmed_sessions, 1u);
  EXPECT_EQ(engine.pooled_sessions(), 1u);

  const Response warm = engine.run(request);
  ASSERT_EQ(warm.status, ResponseStatus::kOk) << warm.error;
  EXPECT_TRUE(warm.diagnostics.session_reused);
  EXPECT_EQ(warm.diagnostics.symbolic_factorisations, 0);
  EXPECT_EQ(engine.stats().symbolic_factorisations, 0u);
  EXPECT_EQ(engine.stats().pool_hits, 1u);
  // Same optimisation problem, same answer.
  EXPECT_NEAR(
      std::get<api::SolvePayload>(warm.payload).mapping.objective_rounded,
      cold_objective, 1e-9);
}

TEST(TelemetryCache, ColdMissWithCacheSeedsTheSymbolicAnalysis) {
  // Even without start-up pre-warming, a pool miss on a cached structure
  // seeds the fresh session's symbolic analysis from the cache: the
  // request still reports zero symbolic factorisations (a symbolic *load*
  // happened instead).
  ScopedTempDir dir;
  const Request request = solve_request(testing::two_task_chain(), "seed");
  {
    StructureCache cache(dir.path);
    EngineOptions options;
    options.structure_cache = &cache;
    Engine engine(options);
    const Response cold = engine.run(request);
    ASSERT_EQ(cold.status, ResponseStatus::kOk) << cold.error;
    EXPECT_EQ(cold.diagnostics.symbolic_factorisations, 1);
    cache.flush();
  }
  StructureCache cache(dir.path);
  ASSERT_EQ(cache.load(), 1u);
  EngineOptions options;
  options.structure_cache = &cache;
  Engine engine(options);  // nothing pre-warmed: first request is a miss
  const Response seeded = engine.run(request);
  ASSERT_EQ(seeded.status, ResponseStatus::kOk) << seeded.error;
  EXPECT_FALSE(seeded.diagnostics.session_reused);
  EXPECT_EQ(seeded.diagnostics.symbolic_factorisations, 0);
  EXPECT_EQ(engine.stats().symbolic_factorisations, 0u);
  EXPECT_GE(cache.stats().lookup_hits, 1u);
}

TEST(TelemetryCache, DispatcherPrewarmsWorkerPoolsFromTheCache) {
  ScopedTempDir dir;
  {
    StructureCache cache(dir.path);
    EngineOptions options;
    options.structure_cache = &cache;
    Engine engine(options);
    const Response r = engine.run(solve_request(testing::paper_t1()));
    ASSERT_EQ(r.status, ResponseStatus::kOk) << r.error;
    cache.flush();
  }
  StructureCache cache(dir.path);
  ASSERT_EQ(cache.load(), 1u);
  service::DispatcherOptions options;
  options.workers = 2;
  options.engine.structure_cache = &cache;
  service::Dispatcher dispatcher(options);
  // The constructor routed the entry to its structure-affine worker before
  // any worker thread started; the first snapshot already sees it.
  const service::ServiceStats startup = dispatcher.stats();
  EXPECT_EQ(startup.prewarmed_sessions, 1u);
  EXPECT_EQ(startup.symbolic_factorisations, 0u);
  dispatcher.stop();
}

TEST(TelemetryCache, CorruptStaleAndMisnamedEntriesAreSkippedAndCounted) {
  ScopedTempDir source;
  std::string valid_name;
  std::string valid_bytes;
  {
    StructureCache cache(source.path);
    EngineOptions options;
    options.structure_cache = &cache;
    Engine engine(options);
    const Response r = engine.run(solve_request(testing::paper_t1()));
    ASSERT_EQ(r.status, ResponseStatus::kOk) << r.error;
    cache.flush();
    const std::vector<CacheEntry> entries = cache.entries();
    ASSERT_EQ(entries.size(), 1u);
    valid_name = StructureCache::file_name_for_key(entries[0].key);
    valid_bytes = read_file(source.path + "/" + valid_name);
    ASSERT_FALSE(valid_bytes.empty());
  }

  ScopedTempDir broken;
  // (1) Truncated mid-payload.
  write_file(broken.path + "/" + valid_name,
             valid_bytes.substr(0, valid_bytes.size() / 2));
  // (2) Checksum mismatch: flip the last payload byte.
  std::string flipped = valid_bytes;
  flipped.back() = flipped.back() == '}' ? ']' : '}';
  write_file(broken.path + "/00000000000000aa.bbsc", flipped);
  // (3) Stale format version (the header's "v1" bumped to "v9").
  std::string stale = valid_bytes;
  const std::size_t v = stale.find("v1");
  ASSERT_NE(v, std::string::npos);
  stale.replace(v, 2, "v9");
  write_file(broken.path + "/00000000000000bb.bbsc", stale);
  // (4) Valid bytes under a name the entry's key does not hash to.
  write_file(broken.path + "/00000000000000cc.bbsc", valid_bytes);
  // A non-.bbsc file is not a cache entry at all: ignored, not an error.
  write_file(broken.path + "/README.txt", "not a cache entry");

  StructureCache cache(broken.path);
  EXPECT_EQ(cache.load(), 0u);
  EXPECT_EQ(cache.size(), 0u);
  const telemetry::StructureCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries_loaded, 0u);
  EXPECT_EQ(stats.load_errors, 4u);
}

TEST(TelemetryCache, MissingDirectoryIsCreatedAndLoadsEmpty) {
  ScopedTempDir dir;
  const std::string nested = dir.path + "/nested/cache";
  {
    StructureCache cache(nested);
    EXPECT_EQ(cache.load(), 0u);
    EXPECT_EQ(cache.stats().load_errors, 0u);
    // And it is usable: a store round-trips through the new directory.
    cache.store(minimal_entry("k"));
    cache.flush();
  }
  StructureCache reread(nested);
  EXPECT_EQ(reread.load(), 1u);
  EXPECT_TRUE(reread.contains("k"));
}

}  // namespace
}  // namespace bbs
