// Telemetry tests: the log-bucketed latency histogram (bucket layout,
// merge, percentile error bound, concurrent recording), the bounded
// per-structure statistics table, and the persistent structure cache —
// including the warm-restart invariant (a fresh engine pre-warmed from
// disk serves a known structure with zero symbolic factorisations) and the
// fail-soft negative paths (truncated/corrupt/stale/misnamed files are
// skipped and counted, never fatal).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bbs/api/engine.hpp"
#include "bbs/common/hash.hpp"
#include "bbs/io/json.hpp"
#include "bbs/service/dispatcher.hpp"
#include "bbs/telemetry/histogram.hpp"
#include "bbs/telemetry/service_telemetry.hpp"
#include "bbs/telemetry/structure_cache.hpp"
#include "bbs/telemetry/trace.hpp"
#include "testing/support.hpp"

namespace bbs {
namespace {

using api::Engine;
using api::EngineOptions;
using api::Request;
using api::Response;
using api::ResponseStatus;
using telemetry::CacheEntry;
using telemetry::LatencyHistogram;
using telemetry::RequestKind;
using telemetry::ServiceTelemetry;
using telemetry::Stage;
using telemetry::StructureCache;
using telemetry::StructureObservation;
using telemetry::StructureRow;
using telemetry::Trace;
using telemetry::TraceEvent;
using telemetry::TraceFilter;
using telemetry::TraceLog;
using telemetry::TraceRing;

/// A unique scratch directory removed on scope exit.
struct ScopedTempDir {
  ScopedTempDir() {
    char pattern[] = "/tmp/bbs_telemetry_XXXXXX";
    const char* made = ::mkdtemp(pattern);
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : "";
  }
  ~ScopedTempDir() {
    if (!path.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  }
  std::string path;
};

Request solve_request(model::Configuration config, std::string id = "") {
  Request request;
  request.id = std::move(id);
  request.payload = api::SolveRequest{std::move(config)};
  return request;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// TelemetryHistogram
// ---------------------------------------------------------------------------

TEST(TelemetryHistogram, EmptySnapshotIsAllZero) {
  LatencyHistogram histogram;
  const LatencyHistogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum_ms, 0.0);
  EXPECT_EQ(snap.max_ms, 0.0);
  EXPECT_EQ(snap.percentile(0.5), 0.0);
  EXPECT_EQ(snap.percentile(0.99), 0.0);
  EXPECT_EQ(snap.mean_ms(), 0.0);
}

TEST(TelemetryHistogram, SingleSampleReportsItselfExactly) {
  // With one sample every quantile lands in its bucket, and the estimate
  // min(bucket upper edge, recorded max) collapses to the exact value.
  LatencyHistogram histogram;
  histogram.record(5.0);
  const LatencyHistogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_NEAR(snap.max_ms, 5.0, 1e-9);
  EXPECT_NEAR(snap.percentile(0.0), 5.0, 1e-9);
  EXPECT_NEAR(snap.percentile(0.5), 5.0, 1e-9);
  EXPECT_NEAR(snap.percentile(1.0), 5.0, 1e-9);
  EXPECT_NEAR(snap.mean_ms(), 5.0, 1e-9);
}

TEST(TelemetryHistogram, BucketLayoutIsMonotoneAndContainsItsValues) {
  // Sweep seven orders of magnitude: indices must be non-decreasing and
  // every value must lie within (upper(idx - 1), upper(idx)].
  int previous = -1;
  for (double ms = 2e-3; ms < 2e4; ms *= 1.07) {
    const int idx = LatencyHistogram::bucket_index(ms);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, LatencyHistogram::kBuckets);
    EXPECT_GE(idx, previous) << "ms=" << ms;
    EXPECT_LE(ms, LatencyHistogram::bucket_upper_ms(idx) * (1 + 1e-12))
        << "ms=" << ms;
    if (idx > 0) {
      EXPECT_GE(ms, LatencyHistogram::bucket_upper_ms(idx - 1) * (1 - 1e-12))
          << "ms=" << ms;
    }
    previous = idx;
  }
  // Sub-microsecond values land in the underflow bucket, absurdly large
  // ones in the overflow bucket.
  EXPECT_EQ(LatencyHistogram::bucket_index(1e-6), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(1e9),
            LatencyHistogram::kBuckets - 1);
  EXPECT_TRUE(std::isinf(
      LatencyHistogram::bucket_upper_ms(LatencyHistogram::kBuckets - 1)));
}

TEST(TelemetryHistogram, PercentileOverestimatesByAtMostTwentyFivePercent) {
  // 1000 known samples: the documented contract is that a percentile
  // estimate never under-reports and overshoots by at most the relative
  // bucket width (25%).
  LatencyHistogram histogram;
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) {
    const double ms = 0.01 * i;  // 0.01 .. 10 ms
    values.push_back(ms);
    histogram.record(ms);
  }
  const LatencyHistogram::Snapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.count, 1000u);
  for (const double p : {0.50, 0.90, 0.99}) {
    const double exact =
        values[static_cast<std::size_t>(std::ceil(p * 1000.0)) - 1];
    const double estimate = snap.percentile(p);
    EXPECT_GE(estimate, exact * (1 - 1e-12)) << "p=" << p;
    EXPECT_LE(estimate, exact * 1.25 + 1e-9) << "p=" << p;
  }
  EXPECT_NEAR(snap.max_ms, 10.0, 1e-9);
  // The sum accumulates in integer nanoseconds: up to 1 ns truncation per
  // sample.
  EXPECT_NEAR(snap.sum_ms, 0.01 * 1000.0 * 1001.0 / 2.0, 1e-2);
}

TEST(TelemetryHistogram, QuantileInOverflowBucketReturnsRecordedMax) {
  LatencyHistogram histogram;
  histogram.record(1.0);
  histogram.record(1e9);  // beyond the top octave -> overflow bucket
  const LatencyHistogram::Snapshot snap = histogram.snapshot();
  EXPECT_NEAR(snap.percentile(1.0), 1e9, 1.0);
  EXPECT_NEAR(snap.max_ms, 1e9, 1.0);
}

TEST(TelemetryHistogram, NegativeAndNonFiniteRecordAsZero) {
  LatencyHistogram histogram;
  histogram.record(-3.0);
  histogram.record(std::numeric_limits<double>::quiet_NaN());
  histogram.record(std::numeric_limits<double>::infinity());
  const LatencyHistogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.max_ms, 0.0);
  EXPECT_EQ(snap.percentile(0.99), 0.0);
}

TEST(TelemetryHistogram, SnapshotsMergeBucketwise) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 100; ++i) a.record(0.5);
  for (int i = 0; i < 100; ++i) b.record(50.0);
  LatencyHistogram::Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count, 200u);
  EXPECT_NEAR(merged.sum_ms, 100 * 0.5 + 100 * 50.0, 1e-2);
  EXPECT_NEAR(merged.max_ms, 50.0, 1e-9);
  // The median sits in the low half, p99 in the high half.
  EXPECT_LE(merged.percentile(0.5), 0.5 * 1.25 + 1e-9);
  EXPECT_GE(merged.percentile(0.99), 50.0 * (1 - 1e-12));
}

TEST(TelemetryHistogram, ConcurrentRecordingLosesNothing) {
  // Exercised under TSan in CI: recording is relaxed-atomic and wait-free,
  // and no sample may be lost or torn.
  LatencyHistogram histogram;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.record(0.1 * (1 + (t + i) % 7));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const LatencyHistogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucketed = 0;
  for (const std::uint64_t c : snap.buckets) bucketed += c;
  EXPECT_EQ(bucketed, snap.count);
  EXPECT_NEAR(snap.max_ms, 0.7, 1e-9);
}

// ---------------------------------------------------------------------------
// TelemetryStructureTable
// ---------------------------------------------------------------------------

StructureObservation observation(bool hit, std::uint64_t solves,
                                 std::uint64_t iterations) {
  StructureObservation o;
  o.pool_hit = hit;
  o.solves = solves;
  o.ipm_iterations = iterations;
  o.warm_started_solves = solves > 0 ? solves - 1 : 0;
  o.recovered_solves = 0;
  return o;
}

TEST(TelemetryStructureTable, AggregatesPerStructureHash) {
  ServiceTelemetry telemetry;
  telemetry.record_structure(0xaaa, observation(false, 3, 30));
  telemetry.record_structure(0xaaa, observation(true, 2, 15));
  telemetry.record_structure(0xbbb, observation(false, 1, 9));
  const std::vector<StructureRow> rows = telemetry.structure_rows();
  ASSERT_EQ(rows.size(), 2u);
  // Hottest (most solves) first.
  EXPECT_EQ(rows[0].key_hash, 0xaaau);
  EXPECT_EQ(rows[0].requests, 2u);
  EXPECT_EQ(rows[0].pool_hits, 1u);
  EXPECT_EQ(rows[0].pool_misses, 1u);
  EXPECT_EQ(rows[0].solves, 5u);
  EXPECT_EQ(rows[0].ipm_iterations, 45u);
  EXPECT_EQ(rows[0].warm_started_solves, 3u);
  EXPECT_EQ(rows[1].key_hash, 0xbbbu);
  EXPECT_EQ(rows[1].requests, 1u);
  EXPECT_EQ(telemetry.structure_evictions(), 0u);
}

TEST(TelemetryStructureTable, EvictsLeastRecentlySeenAtTheBound) {
  ServiceTelemetry telemetry(/*max_structures=*/4);
  for (std::uint64_t h = 1; h <= 10; ++h) {
    telemetry.record_structure(h, observation(false, 1, 1));
  }
  std::vector<StructureRow> rows = telemetry.structure_rows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(telemetry.structure_evictions(), 6u);
  // The four most recently seen hashes survive.
  std::vector<std::uint64_t> hashes;
  for (const StructureRow& row : rows) hashes.push_back(row.key_hash);
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(hashes, (std::vector<std::uint64_t>{7, 8, 9, 10}));
  // Touching a resident hash refreshes its recency: it must survive the
  // next insertion; the stalest resident (8) goes instead.
  telemetry.record_structure(7, observation(true, 1, 1));
  telemetry.record_structure(11, observation(false, 1, 1));
  hashes.clear();
  for (const StructureRow& row : telemetry.structure_rows()) {
    hashes.push_back(row.key_hash);
  }
  EXPECT_NE(std::find(hashes.begin(), hashes.end(), 7), hashes.end());
  EXPECT_EQ(std::find(hashes.begin(), hashes.end(), 8), hashes.end());
}

TEST(TelemetryStructureTable, KindAndStageNamesRoundTrip) {
  EXPECT_EQ(telemetry::request_kind_from_string("solve"), RequestKind::kSolve);
  EXPECT_EQ(telemetry::request_kind_from_string("sweep"), RequestKind::kSweep);
  EXPECT_EQ(telemetry::request_kind_from_string("min_period"),
            RequestKind::kMinPeriod);
  EXPECT_EQ(telemetry::request_kind_from_string("two_phase"),
            RequestKind::kTwoPhase);
  EXPECT_EQ(telemetry::request_kind_from_string("latency"),
            RequestKind::kLatency);
  EXPECT_EQ(telemetry::request_kind_from_string("no_such_kind"),
            RequestKind::kOther);
  for (int k = 0; k < telemetry::kNumRequestKinds; ++k) {
    const auto kind = static_cast<RequestKind>(k);
    EXPECT_EQ(telemetry::request_kind_from_string(telemetry::to_string(kind)),
              kind);
  }
  EXPECT_STREQ(telemetry::to_string(Stage::kQueue), "queue");
  EXPECT_STREQ(telemetry::to_string(Stage::kSolve), "solve");
  EXPECT_STREQ(telemetry::to_string(Stage::kWrite), "write");
}

// ---------------------------------------------------------------------------
// TelemetryCache
// ---------------------------------------------------------------------------

CacheEntry minimal_entry(std::string key) {
  CacheEntry entry;
  entry.key = std::move(key);
  entry.symbolic.dim = 2;
  entry.symbolic.pattern_hash = 7;
  entry.symbolic.permutation = {0, 1};
  entry.symbolic.etree_parent = {1, -1};
  entry.symbolic.factor_col_ptr = {0, 1, 3};
  return entry;
}

TEST(TelemetryCache, FileNamesAreStableHashesOfTheKey) {
  const std::string name = StructureCache::file_name_for_key("some key");
  ASSERT_EQ(name.size(), 16u + 5u);  // 16 hex digits + ".bbsc"
  EXPECT_EQ(name.substr(16), ".bbsc");
  EXPECT_EQ(name, StructureCache::file_name_for_key("some key"));
  EXPECT_NE(name, StructureCache::file_name_for_key("another key"));
}

TEST(TelemetryCache, AtCapacityNewKeysAreDroppedButRefreshesPass) {
  ScopedTempDir dir;
  StructureCache cache(dir.path, /*max_entries=*/1);
  cache.store(minimal_entry("k1"));
  cache.store(minimal_entry("k2"));  // over capacity: dropped, counted
  cache.store(minimal_entry("k1"));  // refresh of a resident key: accepted
  cache.flush();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.contains("k1"));
  EXPECT_FALSE(cache.contains("k2"));
  const telemetry::StructureCacheStats stats = cache.stats();
  EXPECT_EQ(stats.saves, 2u);
  EXPECT_EQ(stats.save_errors, 1u);
}

TEST(TelemetryCache, EngineRoundTripWarmRestartSkipsSymbolicWork) {
  ScopedTempDir dir;
  const Request request = solve_request(testing::paper_t1(), "rt");

  double cold_objective = 0.0;
  {
    StructureCache cache(dir.path);
    EXPECT_EQ(cache.load(), 0u);
    EngineOptions options;
    options.structure_cache = &cache;
    Engine engine(options);
    const Response cold = engine.run(request);
    ASSERT_EQ(cold.status, ResponseStatus::kOk) << cold.error;
    EXPECT_FALSE(cold.diagnostics.session_reused);
    EXPECT_EQ(cold.diagnostics.symbolic_factorisations, 1);
    cold_objective =
        std::get<api::SolvePayload>(cold.payload).mapping.objective_rounded;
    cache.flush();
    EXPECT_EQ(cache.stats().saves, 1u);
    EXPECT_EQ(cache.size(), 1u);
  }

  // "Restart": a fresh cache over the same directory, a fresh engine
  // pre-warmed from it. The request must be a pool hit served with zero
  // symbolic factorisations — the warm-restart invariant.
  StructureCache cache(dir.path);
  EXPECT_EQ(cache.load(), 1u);
  EXPECT_EQ(cache.stats().load_errors, 0u);
  EngineOptions options;
  options.structure_cache = &cache;
  Engine engine(options);
  for (const CacheEntry& entry : cache.entries()) {
    EXPECT_TRUE(engine.prewarm_entry(entry));
  }
  EXPECT_EQ(engine.stats().prewarmed_sessions, 1u);
  EXPECT_EQ(engine.pooled_sessions(), 1u);

  const Response warm = engine.run(request);
  ASSERT_EQ(warm.status, ResponseStatus::kOk) << warm.error;
  EXPECT_TRUE(warm.diagnostics.session_reused);
  EXPECT_EQ(warm.diagnostics.symbolic_factorisations, 0);
  EXPECT_EQ(engine.stats().symbolic_factorisations, 0u);
  EXPECT_EQ(engine.stats().pool_hits, 1u);
  // Same optimisation problem, same answer.
  EXPECT_NEAR(
      std::get<api::SolvePayload>(warm.payload).mapping.objective_rounded,
      cold_objective, 1e-9);
}

TEST(TelemetryCache, ColdMissWithCacheSeedsTheSymbolicAnalysis) {
  // Even without start-up pre-warming, a pool miss on a cached structure
  // seeds the fresh session's symbolic analysis from the cache: the
  // request still reports zero symbolic factorisations (a symbolic *load*
  // happened instead).
  ScopedTempDir dir;
  const Request request = solve_request(testing::two_task_chain(), "seed");
  {
    StructureCache cache(dir.path);
    EngineOptions options;
    options.structure_cache = &cache;
    Engine engine(options);
    const Response cold = engine.run(request);
    ASSERT_EQ(cold.status, ResponseStatus::kOk) << cold.error;
    EXPECT_EQ(cold.diagnostics.symbolic_factorisations, 1);
    cache.flush();
  }
  StructureCache cache(dir.path);
  ASSERT_EQ(cache.load(), 1u);
  EngineOptions options;
  options.structure_cache = &cache;
  Engine engine(options);  // nothing pre-warmed: first request is a miss
  const Response seeded = engine.run(request);
  ASSERT_EQ(seeded.status, ResponseStatus::kOk) << seeded.error;
  EXPECT_FALSE(seeded.diagnostics.session_reused);
  EXPECT_EQ(seeded.diagnostics.symbolic_factorisations, 0);
  EXPECT_EQ(engine.stats().symbolic_factorisations, 0u);
  EXPECT_GE(cache.stats().lookup_hits, 1u);
}

TEST(TelemetryCache, DispatcherPrewarmsWorkerPoolsFromTheCache) {
  ScopedTempDir dir;
  {
    StructureCache cache(dir.path);
    EngineOptions options;
    options.structure_cache = &cache;
    Engine engine(options);
    const Response r = engine.run(solve_request(testing::paper_t1()));
    ASSERT_EQ(r.status, ResponseStatus::kOk) << r.error;
    cache.flush();
  }
  StructureCache cache(dir.path);
  ASSERT_EQ(cache.load(), 1u);
  service::DispatcherOptions options;
  options.workers = 2;
  options.engine.structure_cache = &cache;
  service::Dispatcher dispatcher(options);
  // The constructor routed the entry to its structure-affine worker before
  // any worker thread started; the first snapshot already sees it.
  const service::ServiceStats startup = dispatcher.stats();
  EXPECT_EQ(startup.prewarmed_sessions, 1u);
  EXPECT_EQ(startup.symbolic_factorisations, 0u);
  dispatcher.stop();
}

TEST(TelemetryCache, CorruptStaleAndMisnamedEntriesAreSkippedAndCounted) {
  ScopedTempDir source;
  std::string valid_name;
  std::string valid_bytes;
  {
    StructureCache cache(source.path);
    EngineOptions options;
    options.structure_cache = &cache;
    Engine engine(options);
    const Response r = engine.run(solve_request(testing::paper_t1()));
    ASSERT_EQ(r.status, ResponseStatus::kOk) << r.error;
    cache.flush();
    const std::vector<CacheEntry> entries = cache.entries();
    ASSERT_EQ(entries.size(), 1u);
    valid_name = StructureCache::file_name_for_key(entries[0].key);
    valid_bytes = read_file(source.path + "/" + valid_name);
    ASSERT_FALSE(valid_bytes.empty());
  }

  ScopedTempDir broken;
  // (1) Truncated mid-payload.
  write_file(broken.path + "/" + valid_name,
             valid_bytes.substr(0, valid_bytes.size() / 2));
  // (2) Checksum mismatch: flip the last payload byte.
  std::string flipped = valid_bytes;
  flipped.back() = flipped.back() == '}' ? ']' : '}';
  write_file(broken.path + "/00000000000000aa.bbsc", flipped);
  // (3) Stale format version (the header's "v1" bumped to "v9").
  std::string stale = valid_bytes;
  const std::size_t v = stale.find("v1");
  ASSERT_NE(v, std::string::npos);
  stale.replace(v, 2, "v9");
  write_file(broken.path + "/00000000000000bb.bbsc", stale);
  // (4) Valid bytes under a name the entry's key does not hash to.
  write_file(broken.path + "/00000000000000cc.bbsc", valid_bytes);
  // A non-.bbsc file is not a cache entry at all: ignored, not an error.
  write_file(broken.path + "/README.txt", "not a cache entry");

  StructureCache cache(broken.path);
  EXPECT_EQ(cache.load(), 0u);
  EXPECT_EQ(cache.size(), 0u);
  const telemetry::StructureCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries_loaded, 0u);
  EXPECT_EQ(stats.load_errors, 4u);
}

// ---------------------------------------------------------------------------
// TelemetryTrace
// ---------------------------------------------------------------------------

/// Finds the events of a given name in a trace's JSON document.
std::vector<io::JsonObject> events_named(const io::JsonValue& doc,
                                         const std::string& name) {
  std::vector<io::JsonObject> found;
  for (const io::JsonValue& event : doc.as_object().at("events").as_array()) {
    if (event.as_object().at("name").as_string() == name) {
      found.push_back(event.as_object());
    }
  }
  return found;
}

std::shared_ptr<const Trace> closed_trace(std::string id, std::string kind,
                                          std::string status,
                                          std::string error_code = "") {
  auto trace = std::make_shared<Trace>(std::move(id), std::move(kind));
  trace->add_event("accept");
  trace->close(std::move(status), std::move(error_code));
  return trace;
}

TEST(TelemetryTrace, NextIdIsSixteenHexDigitsAndUnique) {
  const std::string a = Trace::next_id();
  const std::string b = Trace::next_id();
  ASSERT_EQ(a.size(), 16u);
  EXPECT_EQ(a.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_NE(a, b);
}

TEST(TelemetryTrace, EventsAreStampedRelativeToCreationInOrder) {
  Trace trace("id1", "solve");
  trace.add_event("accept");
  trace.add_event("quota", "ok");
  trace.add_span("queue", 0.0, {{"worker", 3.0}});
  const io::JsonValue doc = trace.to_json_value();
  const io::JsonObject& root = doc.as_object();
  EXPECT_EQ(root.at("id").as_string(), "id1");
  EXPECT_EQ(root.at("kind").as_string(), "solve");
  EXPECT_EQ(root.at("status").as_string(), "open");  // not yet closed
  const io::JsonArray& events = root.at("events").as_array();
  ASSERT_EQ(events.size(), 3u);
  double previous = 0.0;
  for (const io::JsonValue& event : events) {
    const double t = event.as_object().at("t_ms").as_number();
    EXPECT_GE(t, previous);
    previous = t;
  }
  // Instant events carry no dur_ms; the span does, plus its inline attrs.
  EXPECT_FALSE(events[0].as_object().contains("dur_ms"));
  EXPECT_EQ(events[1].as_object().at("detail").as_string(), "ok");
  EXPECT_TRUE(events[2].as_object().contains("dur_ms"));
  EXPECT_EQ(events[2].as_object().at("worker").as_number(), 3.0);
}

TEST(TelemetryTrace, SpanStartPrecedesItsEnd) {
  Trace trace("id2", "solve");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  trace.add_span("solve", 2.0);
  const io::JsonValue doc = trace.to_json_value();
  const std::vector<io::JsonObject> spans = events_named(doc, "solve");
  ASSERT_EQ(spans.size(), 1u);
  const double t = spans[0].at("t_ms").as_number();
  const double dur = spans[0].at("dur_ms").as_number();
  EXPECT_NEAR(dur, 2.0, 1e-9);
  // t_ms = now - dur: the span started at least 3 ms after creation and
  // ends in the past relative to any later elapsed_ms() reading.
  EXPECT_GE(t, 3.0 * 0.9);
  EXPECT_LE(t + dur, trace.elapsed_ms() + 1e-9);
}

TEST(TelemetryTrace, CloseIsIdempotentFirstCloseWins) {
  Trace trace("id3", "solve");
  trace.close("ok");
  ASSERT_TRUE(trace.closed());
  EXPECT_FALSE(trace.error());
  const double wall = trace.wall_ms();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  trace.close("error", "deadline_exceeded");  // must be ignored
  EXPECT_EQ(trace.status(), "ok");
  EXPECT_FALSE(trace.error());
  EXPECT_EQ(trace.wall_ms(), wall);
  EXPECT_FALSE(trace.to_json_value().as_object().contains("error_code"));
}

TEST(TelemetryTrace, ErrorTraceCarriesTheErrorCode) {
  Trace trace("id4", "solve");
  trace.close("error", "invalid_configuration");
  EXPECT_TRUE(trace.error());
  const io::JsonValue doc = trace.to_json_value();
  const io::JsonObject& root = doc.as_object();
  EXPECT_EQ(root.at("status").as_string(), "error");
  EXPECT_EQ(root.at("error_code").as_string(), "invalid_configuration");
  EXPECT_GE(root.at("wall_ms").as_number(), 0.0);
}

TEST(TelemetryTrace, IpmIterationEventsAreCappedLadderRungsAreNot) {
  Trace trace("id5", "solve");
  const int kIterations = static_cast<int>(Trace::kMaxIpmEvents) + 100;
  for (int i = 0; i < kIterations; ++i) {
    trace.ipm_iteration(i, 1e-3, 1e-6, 1e-6, 0.9);
  }
  trace.ipm_ladder_rung(1, 1e-8);
  const io::JsonValue doc = trace.to_json_value();
  EXPECT_EQ(events_named(doc, "ipm_iteration").size(), Trace::kMaxIpmEvents);
  EXPECT_EQ(events_named(doc, "ipm_ladder_rung").size(), 1u);
  EXPECT_EQ(doc.as_object().at("ipm_events_dropped").as_number(), 100.0);
  const io::JsonObject first = events_named(doc, "ipm_iteration")[0];
  EXPECT_EQ(first.at("iteration").as_number(), 0.0);
  EXPECT_EQ(first.at("mu").as_number(), 1e-3);
  EXPECT_EQ(first.at("step").as_number(), 0.9);
}

TEST(TelemetryTrace, JsonDocumentRoundTripsThroughTheParser) {
  Trace trace("id6", "sweep");
  trace.add_span("write", 0.25, {{"bytes", 512.0}});
  trace.close("ok");
  const std::string line = io::write_json_compact(trace.to_json_value());
  const io::JsonValue parsed = io::parse_json(line);
  EXPECT_EQ(parsed.as_object().at("id").as_string(), "id6");
  EXPECT_EQ(parsed.as_object().at("kind").as_string(), "sweep");
  const std::vector<io::JsonObject> spans = events_named(parsed, "write");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].at("bytes").as_number(), 512.0);
}

// ---------------------------------------------------------------------------
// TelemetryTraceRing
// ---------------------------------------------------------------------------

TEST(TelemetryTraceRing, CollectsNewestFirstAndEvictsBeyondCapacity) {
  TraceRing ring(/*capacity=*/8, /*shards=*/4);
  for (int i = 0; i < 20; ++i) {
    ring.push(closed_trace("t" + std::to_string(i), "solve", "ok"));
  }
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.capacity(), 8u);
  const auto traces = ring.collect(TraceFilter{});
  ASSERT_EQ(traces.size(), 8u);
  // Each shard keeps its freshest entries: exactly t12..t19 survive,
  // returned newest first.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(traces[i]->id(), "t" + std::to_string(19 - i));
  }
}

TEST(TelemetryTraceRing, FiltersByIdKindAndErrorsOnly) {
  TraceRing ring(16);
  ring.push(closed_trace("a", "solve", "ok"));
  ring.push(closed_trace("b", "sweep", "error", "solver_failure"));
  ring.push(closed_trace("c", "solve", "infeasible"));

  TraceFilter by_id;
  by_id.id = "b";
  auto matches = ring.collect(by_id);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0]->id(), "b");

  TraceFilter by_kind;
  by_kind.kind = "solve";
  matches = ring.collect(by_kind);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0]->id(), "c");  // newest first
  EXPECT_EQ(matches[1]->id(), "a");

  TraceFilter errors;
  errors.errors_only = true;
  matches = ring.collect(errors);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0]->id(), "b");
  EXPECT_TRUE(matches[0]->error());

  TraceFilter nothing;
  nothing.id = "no-such-id";
  EXPECT_TRUE(ring.collect(nothing).empty());
}

TEST(TelemetryTraceRing, MinDurationAndLimitBoundTheResult) {
  TraceRing ring(16);
  auto slow = std::make_shared<Trace>("slow", "solve");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  slow->close("ok");
  ring.push(slow);
  for (int i = 0; i < 5; ++i) {
    ring.push(closed_trace("fast" + std::to_string(i), "solve", "ok"));
  }

  // A 20 ms trace always clears a 5 ms floor; an absurd floor matches none.
  TraceFilter floor;
  floor.min_duration_ms = 5.0;
  auto matches = ring.collect(floor);
  ASSERT_GE(matches.size(), 1u);
  bool found_slow = false;
  for (const auto& t : matches) found_slow |= t->id() == "slow";
  EXPECT_TRUE(found_slow);
  floor.min_duration_ms = 1e9;
  EXPECT_TRUE(ring.collect(floor).empty());

  TraceFilter limited;
  limited.limit = 3;
  matches = ring.collect(limited);
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0]->id(), "fast4");  // still newest first
}

// ---------------------------------------------------------------------------
// TelemetryTraceLog
// ---------------------------------------------------------------------------

TEST(TelemetryTraceLog, LogsOnlySlowOrErrorTraces) {
  ScopedTempDir dir;
  const std::string path = dir.path + "/traces.jsonl";
  TraceLog log(path, /*slow_ms=*/50.0);
  EXPECT_EQ(log.path(), path);
  EXPECT_EQ(log.slow_ms(), 50.0);

  // Fast and healthy: does not qualify.
  EXPECT_FALSE(log.offer(closed_trace("fast", "solve", "ok")));
  // Error: qualifies regardless of duration.
  EXPECT_TRUE(log.offer(closed_trace("bad", "solve", "error", "ipm_failure")));
  // Slow: qualifies on wall_ms alone.
  auto slow = std::make_shared<Trace>("slow", "solve");
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  slow->close("ok");
  EXPECT_TRUE(log.offer(slow));

  log.flush();
  EXPECT_EQ(log.stats().logged, 2u);
  EXPECT_EQ(log.stats().write_errors, 0u);
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> ids;
  while (std::getline(in, line)) {
    ids.push_back(io::parse_json(line).as_object().at("id").as_string());
  }
  EXPECT_EQ(ids, (std::vector<std::string>{"bad", "slow"}));
}

TEST(TelemetryTraceLog, ZeroThresholdMeansErrorsOnly) {
  ScopedTempDir dir;
  TraceLog log(dir.path + "/traces.jsonl", /*slow_ms=*/0.0);
  auto aged = std::make_shared<Trace>("aged", "solve");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  aged->close("ok");
  EXPECT_FALSE(log.offer(aged));  // slow never triggers at threshold 0
  EXPECT_TRUE(log.offer(closed_trace("bad", "solve", "error", "x")));
  log.flush();
  EXPECT_EQ(log.stats().logged, 1u);
}

TEST(TelemetryTraceLog, UnwritablePathCountsWriteErrors) {
  ScopedTempDir dir;
  TraceLog log(dir.path + "/no/such/dir/traces.jsonl", /*slow_ms=*/0.0);
  EXPECT_TRUE(log.offer(closed_trace("bad", "solve", "error", "x")));
  log.flush();
  EXPECT_EQ(log.stats().logged, 0u);
  EXPECT_EQ(log.stats().write_errors, 1u);
}

// ---------------------------------------------------------------------------
// TelemetryCacheGc
// ---------------------------------------------------------------------------

/// Backdates a file's mtime so LRU-by-mtime ordering is deterministic.
void age_file(const std::string& path, int seconds_old) {
  std::filesystem::last_write_time(
      path, std::filesystem::file_time_type::clock::now() -
                std::chrono::seconds(seconds_old));
}

TEST(TelemetryCacheGc, LoadEvictsOldestFilesBeyondMaxEntries) {
  ScopedTempDir dir;
  // Five .bbsc files, oldest first: e0 (5 min old) .. e4 (1 min old).
  for (int i = 0; i < 5; ++i) {
    const std::string path =
        dir.path + "/e" + std::to_string(i) + ".bbsc";
    write_file(path, "not a valid entry");
    age_file(path, (5 - i) * 60);
  }
  StructureCache cache(dir.path, /*max_entries=*/2);
  cache.load();
  EXPECT_EQ(cache.stats().evictions, 3u);
  // The two newest files survive (they then fail to parse, which is the
  // orthogonal fail-soft path, not GC's concern).
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/e0.bbsc"));
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/e1.bbsc"));
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/e2.bbsc"));
  EXPECT_TRUE(std::filesystem::exists(dir.path + "/e3.bbsc"));
  EXPECT_TRUE(std::filesystem::exists(dir.path + "/e4.bbsc"));
  EXPECT_EQ(cache.stats().load_errors, 2u);
}

TEST(TelemetryCacheGc, MaxBytesBudgetEvictsUntilUnderTheLimit) {
  ScopedTempDir dir;
  // Five 100-byte files; a 250-byte budget keeps the two newest.
  for (int i = 0; i < 5; ++i) {
    const std::string path =
        dir.path + "/b" + std::to_string(i) + ".bbsc";
    write_file(path, std::string(100, 'x'));
    age_file(path, (5 - i) * 60);
  }
  StructureCache cache(dir.path, /*max_entries=*/1024, /*max_bytes=*/250);
  cache.load();
  EXPECT_EQ(cache.stats().evictions, 3u);
  EXPECT_TRUE(std::filesystem::exists(dir.path + "/b3.bbsc"));
  EXPECT_TRUE(std::filesystem::exists(dir.path + "/b4.bbsc"));
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/b0.bbsc"));
  // Non-.bbsc files never count against the budget and are never removed.
  write_file(dir.path + "/README.txt", std::string(1000, 'y'));
  StructureCache again(dir.path, /*max_entries=*/1024, /*max_bytes=*/250);
  again.load();
  EXPECT_EQ(again.stats().evictions, 0u);
  EXPECT_TRUE(std::filesystem::exists(dir.path + "/README.txt"));
}

TEST(TelemetryCacheGc, WriteBehindSaveEvictsColdFilesNotTheFreshWrite) {
  ScopedTempDir dir;
  // A stale junk entry much older than anything the cache will write.
  const std::string junk = dir.path + "/00000000000000ff.bbsc";
  write_file(junk, "stale junk");
  age_file(junk, 3600);
  StructureCache cache(dir.path, /*max_entries=*/1);
  cache.store(minimal_entry("k"));
  cache.flush();
  // The write-behind save re-ran GC: the junk file lost, the fresh entry
  // (newest mtime by construction) survived.
  EXPECT_FALSE(std::filesystem::exists(junk));
  EXPECT_TRUE(std::filesystem::exists(
      dir.path + "/" + StructureCache::file_name_for_key("k")));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().saves, 1u);
}

TEST(TelemetryCacheGc, WithinBudgetNothingIsEvicted) {
  ScopedTempDir dir;
  {
    StructureCache cache(dir.path);
    cache.store(minimal_entry("k1"));
    cache.store(minimal_entry("k2"));
    cache.flush();
  }
  StructureCache cache(dir.path, /*max_entries=*/16, /*max_bytes=*/1 << 20);
  EXPECT_EQ(cache.load(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(TelemetryCache, MissingDirectoryIsCreatedAndLoadsEmpty) {
  ScopedTempDir dir;
  const std::string nested = dir.path + "/nested/cache";
  {
    StructureCache cache(nested);
    EXPECT_EQ(cache.load(), 0u);
    EXPECT_EQ(cache.stats().load_errors, 0u);
    // And it is usable: a store round-trips through the new directory.
    cache.store(minimal_entry("k"));
    cache.flush();
  }
  StructureCache reread(nested);
  EXPECT_EQ(reread.load(), 1u);
  EXPECT_TRUE(reread.contains("k"));
}

}  // namespace
}  // namespace bbs
