// Interior-point solver on pure LPs, cross-validated against the independent
// simplex implementation on randomised instances.
#include <gtest/gtest.h>

#include <cmath>

#include "bbs/common/rng.hpp"
#include "bbs/solver/ipm_solver.hpp"
#include "bbs/solver/simplex.hpp"

namespace bbs::solver {
namespace {

TEST(IpmLp, BoxConstrainedOptimum) {
  // min -x1 - x2 s.t. 0 <= x <= 1 -> (1,1).
  ConicProblemBuilder b(2);
  b.set_objective(0, -1.0);
  b.set_objective(1, -1.0);
  b.add_inequality({{0, 1.0}}, 1.0);
  b.add_inequality({{1, 1.0}}, 1.0);
  b.add_inequality({{0, -1.0}}, 0.0);
  b.add_inequality({{1, -1.0}}, 0.0);
  const SolveResult r = IpmSolver().solve(b.build());
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
  EXPECT_NEAR(r.x[1], 1.0, 1e-6);
  EXPECT_NEAR(r.primal_objective, -2.0, 1e-6);
  EXPECT_NEAR(r.primal_objective, r.dual_objective, 1e-5);
}

TEST(IpmLp, DetectsPrimalInfeasible) {
  ConicProblemBuilder b(1);
  b.set_objective(0, 1.0);
  b.add_inequality({{0, 1.0}}, -1.0);  // x <= -1
  b.add_inequality({{0, -1.0}}, 0.0);  // x >= 0
  const SolveResult r = IpmSolver().solve(b.build());
  EXPECT_EQ(r.status, SolveStatus::kPrimalInfeasible);
}

TEST(IpmLp, DetectsUnbounded) {
  ConicProblemBuilder b(1);
  b.set_objective(0, -1.0);
  b.add_inequality({{0, -1.0}}, 0.0);  // x >= 0, min -x
  const SolveResult r = IpmSolver().solve(b.build());
  EXPECT_EQ(r.status, SolveStatus::kDualInfeasible);
}

TEST(IpmLp, ConstantRowInfeasibilityDetected) {
  // A row with no variables and negative rhs encodes 0 <= -3: infeasible.
  // The Algorithm-1 builder relies on this when fixed budgets overflow a
  // processor.
  ConicProblemBuilder b(1);
  b.set_objective(0, 1.0);
  b.add_inequality({}, -3.0);
  b.add_inequality({{0, -1.0}}, 0.0);
  const SolveResult r = IpmSolver().solve(b.build());
  EXPECT_EQ(r.status, SolveStatus::kPrimalInfeasible);
}

TEST(IpmLp, DegenerateRedundantConstraints) {
  // The same constraint repeated five times must not upset convergence.
  ConicProblemBuilder b(1);
  b.set_objective(0, -1.0);
  for (int i = 0; i < 5; ++i) b.add_inequality({{0, 1.0}}, 2.0);
  b.add_inequality({{0, -1.0}}, 0.0);
  const SolveResult r = IpmSolver().solve(b.build());
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
}

/// Random bounded-feasible LPs: min c'x s.t. Ax <= b with a known interior
/// point and box bounds, solved by both backends.
class IpmVsSimplex : public ::testing::TestWithParam<int> {};

TEST_P(IpmVsSimplex, AgreeOnRandomLps) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int trial = 0; trial < 10; ++trial) {
    const auto n = static_cast<std::size_t>(rng.next_int(1, 6));
    const auto m = static_cast<std::size_t>(rng.next_int(1, 8));

    linalg::DenseMatrix a_dense(m + 2 * n, n);
    linalg::Vector b_vec(m + 2 * n, 0.0);
    // Random rows through a known interior point x0 with positive slack.
    linalg::Vector x0(n);
    for (auto& v : x0) v = rng.next_real(-1.0, 1.0);
    for (std::size_t i = 0; i < m; ++i) {
      double ax = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        a_dense(i, j) = rng.next_real(-1.0, 1.0);
        ax += a_dense(i, j) * x0[j];
      }
      b_vec[i] = ax + rng.next_real(0.1, 2.0);
    }
    // Box: -5 <= x <= 5 keeps the LP bounded.
    for (std::size_t j = 0; j < n; ++j) {
      a_dense(m + 2 * j, j) = 1.0;
      b_vec[m + 2 * j] = 5.0;
      a_dense(m + 2 * j + 1, j) = -1.0;
      b_vec[m + 2 * j + 1] = 5.0;
    }
    linalg::Vector c(n);
    for (auto& v : c) v = rng.next_real(-1.0, 1.0);

    const LpResult sx = solve_lp_simplex(c, a_dense, b_vec);
    ASSERT_EQ(sx.status, SolveStatus::kOptimal);

    ConicProblemBuilder builder(static_cast<linalg::Index>(n));
    for (std::size_t j = 0; j < n; ++j)
      builder.set_objective(static_cast<linalg::Index>(j), c[j]);
    for (std::size_t i = 0; i < m + 2 * n; ++i) {
      std::vector<std::pair<linalg::Index, double>> terms;
      for (std::size_t j = 0; j < n; ++j) {
        if (a_dense(i, j) != 0.0) {
          terms.emplace_back(static_cast<linalg::Index>(j), a_dense(i, j));
        }
      }
      builder.add_inequality(terms, b_vec[i]);
    }
    const SolveResult ipm = IpmSolver().solve(builder.build());
    ASSERT_EQ(ipm.status, SolveStatus::kOptimal)
        << "trial " << trial << " n=" << n << " m=" << m;
    EXPECT_NEAR(ipm.primal_objective, sx.objective,
                1e-5 * (1.0 + std::abs(sx.objective)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IpmVsSimplex, ::testing::Range(0, 8));

TEST(IpmLp, SolutionIsFeasibleAndComplementary) {
  ConicProblemBuilder b(2);
  b.set_objective(0, 1.0);
  b.set_objective(1, 2.0);
  b.add_inequality({{0, -1.0}, {1, -1.0}}, -1.0);  // x0 + x1 >= 1
  b.add_inequality({{0, -1.0}}, 0.0);
  b.add_inequality({{1, -1.0}}, 0.0);
  const ConicProblem p = b.build();
  const SolveResult r = IpmSolver().solve(p);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);  // cheaper variable used
  EXPECT_NEAR(r.x[1], 0.0, 1e-6);
  EXPECT_LT(p.primal_residual(r.x, r.s), 1e-6);
  EXPECT_LT(p.dual_residual(r.z), 1e-6);
  // Complementary slackness s'z ~ 0 and duality gap ~ 0.
  EXPECT_LT(linalg::dot(r.s, r.z), 1e-5);
  EXPECT_NEAR(r.primal_objective, r.dual_objective, 1e-5);
}

}  // namespace
}  // namespace bbs::solver
