// Tests for the asymptotic-period detector, including the bursty schedules
// that defeat naive windowed averages.
#include <gtest/gtest.h>

#include "bbs/common/period.hpp"

namespace bbs {
namespace {

using Trace = std::vector<std::vector<double>>;

TEST(PeriodEstimate, ExactOnStrictlyPeriodicTrace) {
  Trace t;
  for (int k = 0; k < 40; ++k) {
    t.push_back({2.5 * k, 2.5 * k + 1.0});
  }
  EXPECT_NEAR(estimate_asymptotic_period(t), 2.5, 1e-12);
}

TEST(PeriodEstimate, DetectsLongCyclicity) {
  // Bursts of 4 starts spaced 1.0, then a gap: cycle of 4 events per 10
  // time units -> period 2.5. A q=1 match on the in-burst spacing must be
  // rejected.
  Trace t;
  double base = 0.0;
  for (int cycle = 0; cycle < 12; ++cycle) {
    for (int j = 0; j < 4; ++j) t.push_back({base + j});
    base += 10.0;
  }
  EXPECT_NEAR(estimate_asymptotic_period(t), 2.5, 1e-12);
}

TEST(PeriodEstimate, IgnoresTransient) {
  // Irregular first half, exactly periodic second half.
  Trace t;
  for (int k = 0; k < 20; ++k) {
    t.push_back({static_cast<double>(k * k % 7)});
  }
  const double anchor = 100.0;
  for (int k = 0; k < 21; ++k) {
    t.push_back({anchor + 3.25 * k});
  }
  EXPECT_NEAR(estimate_asymptotic_period(t), 3.25, 1e-12);
}

TEST(PeriodEstimate, MultiEntityMustAgree) {
  // Entity 0 periodic with 2, entity 1 with 3: no common q fits -> falls
  // back to the windowed average of entity 0.
  Trace t;
  for (int k = 0; k < 30; ++k) {
    t.push_back({2.0 * k, 3.0 * k});
  }
  // Entity 0's fallback slope is 2.
  EXPECT_NEAR(estimate_asymptotic_period(t), 2.0, 1e-12);
}

TEST(PeriodEstimate, PhaseShiftedEntities) {
  // Same period, different offsets and jitter patterns per entity: the
  // common period must still be found.
  Trace t;
  for (int k = 0; k < 40; ++k) {
    const double wobble = (k % 2 == 0) ? 0.2 : 0.0;
    t.push_back({5.0 * k + wobble, 5.0 * k + 3.0 - wobble});
  }
  // Cyclicity 2 with shift 10 -> period 5.
  EXPECT_NEAR(estimate_asymptotic_period(t), 5.0, 1e-12);
}

TEST(PeriodEstimate, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(estimate_asymptotic_period({}), 0.0);
  EXPECT_DOUBLE_EQ(estimate_asymptotic_period({{1.0}}), 0.0);
  EXPECT_DOUBLE_EQ(estimate_asymptotic_period({{}, {}}), 0.0);
  // Two samples: too short to detect, falls back to the half-window slope.
  EXPECT_NEAR(estimate_asymptotic_period({{0.0}, {4.0}}), 4.0, 1e-12);
}

TEST(PeriodEstimate, ConstantTraceIsPeriodZero) {
  Trace t(20, {7.0});
  EXPECT_NEAR(estimate_asymptotic_period(t), 0.0, 1e-12);
}

}  // namespace
}  // namespace bbs
