// Tests for the composite symmetric cone: layout, Jordan algebra, membership
// and step-to-boundary computations.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "bbs/common/assert.hpp"
#include "bbs/common/rng.hpp"
#include "bbs/solver/cone.hpp"

namespace bbs::solver {
namespace {

TEST(ConeSpec, LayoutAndDegree) {
  const ConeSpec cone(3, {3, 5});
  EXPECT_EQ(cone.dim(), 11);
  EXPECT_EQ(cone.degree(), 5);  // 3 LP entries + 2 SOC blocks
  EXPECT_EQ(cone.soc_offset(0), 3);
  EXPECT_EQ(cone.soc_offset(1), 6);
}

TEST(ConeSpec, RejectsTinySocBlocks) {
  EXPECT_THROW(ConeSpec(0, {1}), ContractViolation);
  EXPECT_THROW(ConeSpec(-1, {}), ContractViolation);
}

TEST(ConeSpec, IdentityElement) {
  const ConeSpec cone(2, {3});
  Vector e(5);
  cone.identity(e);
  EXPECT_EQ(e, (Vector{1.0, 1.0, 1.0, 0.0, 0.0}));
}

TEST(ConeSpec, CircLpIsComponentwise) {
  const ConeSpec cone(3, {});
  const Vector w = cone.circ({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0});
  EXPECT_EQ(w, (Vector{4.0, 10.0, 18.0}));
}

TEST(ConeSpec, CircSocIsArrowProduct) {
  const ConeSpec cone(0, {3});
  // u o v = (u'v, u0*v1 + v0*u1).
  const Vector w = cone.circ({2.0, 1.0, -1.0}, {3.0, 0.5, 2.0});
  EXPECT_DOUBLE_EQ(w[0], 2.0 * 3.0 + 1.0 * 0.5 + (-1.0) * 2.0);
  EXPECT_DOUBLE_EQ(w[1], 2.0 * 0.5 + 3.0 * 1.0);
  EXPECT_DOUBLE_EQ(w[2], 2.0 * 2.0 + 3.0 * (-1.0));
}

TEST(ConeSpec, IdentityIsCircNeutral) {
  const ConeSpec cone(2, {4});
  Vector e(6);
  cone.identity(e);
  Rng rng(3);
  Vector u(6);
  for (auto& x : u) x = rng.next_real(-1.0, 1.0);
  const Vector w = cone.circ(e, u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(w[i], u[i], 1e-14);
}

TEST(ConeSpec, SolveCircInvertsCirc) {
  const ConeSpec cone(2, {3, 4});
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    // Draw lambda strictly inside the cone.
    Vector lambda(9);
    lambda[0] = rng.next_real(0.1, 2.0);
    lambda[1] = rng.next_real(0.1, 2.0);
    for (std::size_t k : {std::size_t{2}, std::size_t{5}}) {
      const std::size_t q = (k == 2) ? 3 : 4;
      double tail = 0.0;
      for (std::size_t i = 1; i < q; ++i) {
        lambda[k + i] = rng.next_real(-0.5, 0.5);
        tail += lambda[k + i] * lambda[k + i];
      }
      lambda[k] = std::sqrt(tail) + rng.next_real(0.1, 1.0);
    }
    Vector d(9);
    for (auto& x : d) x = rng.next_real(-1.0, 1.0);
    const Vector x = cone.solve_circ(lambda, d);
    const Vector back = cone.circ(lambda, x);
    for (std::size_t i = 0; i < 9; ++i) EXPECT_NEAR(back[i], d[i], 1e-10);
  }
}

TEST(ConeSpec, SolveCircRejectsBoundaryLambda) {
  const ConeSpec cone(1, {3});
  EXPECT_THROW(cone.solve_circ({0.0, 1.0, 0.0, 0.0}, {1.0, 1.0, 1.0, 1.0}),
               NumericalError);
  // SOC boundary: head equals tail norm.
  EXPECT_THROW(cone.solve_circ({1.0, 1.0, 1.0, 0.0}, {1.0, 1.0, 1.0, 1.0}),
               NumericalError);
}

TEST(ConeSpec, InteriorMembership) {
  const ConeSpec cone(1, {3});
  EXPECT_TRUE(cone.is_interior({1.0, 2.0, 1.0, 1.0}));
  EXPECT_FALSE(cone.is_interior({0.0, 2.0, 1.0, 1.0}));     // LP boundary
  EXPECT_FALSE(cone.is_interior({1.0, 1.0, 1.0, 0.0}));     // SOC boundary
  EXPECT_FALSE(cone.is_interior({1.0, 1.0, 2.0, 0.0}));     // outside SOC
  EXPECT_FALSE(cone.is_interior({1.0, -1.0, 0.1, 0.1}));    // negative head
}

TEST(ConeSpec, MaxStepLpExact) {
  const ConeSpec cone(2, {});
  // u = (1, 2), du = (-0.5, -4): limits 2 and 0.5.
  EXPECT_NEAR(cone.max_step({1.0, 2.0}, {-0.5, -4.0}), 0.5, 1e-12);
  // Nonnegative direction: unbounded (capped).
  EXPECT_DOUBLE_EQ(cone.max_step({1.0, 2.0}, {1.0, 0.0}, 99.0), 99.0);
}

TEST(ConeSpec, MaxStepSocAgainstClosedForm) {
  const ConeSpec cone(0, {3});
  // u = (1,0,0), du = (-1,0,0): boundary at alpha = 1.
  EXPECT_NEAR(cone.max_step({1.0, 0.0, 0.0}, {-1.0, 0.0, 0.0}), 1.0, 1e-12);
  // u = (2,1,0), du = (0,1,0): (2)^2 = (1+a)^2 -> a = 1.
  EXPECT_NEAR(cone.max_step({2.0, 1.0, 0.0}, {0.0, 1.0, 0.0}), 1.0, 1e-12);
}

TEST(ConeSpec, MaxStepKeepsPointInsideRandomised) {
  const ConeSpec cone(3, {3, 5});
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    Vector u(11);
    // Interior point.
    for (int i = 0; i < 3; ++i) u[static_cast<std::size_t>(i)] =
        rng.next_real(0.1, 3.0);
    for (std::size_t off : {std::size_t{3}, std::size_t{6}}) {
      const std::size_t q = (off == 3) ? 3 : 5;
      double tail = 0.0;
      for (std::size_t i = 1; i < q; ++i) {
        u[off + i] = rng.next_real(-1.0, 1.0);
        tail += u[off + i] * u[off + i];
      }
      u[off] = std::sqrt(tail) + rng.next_real(0.05, 1.5);
    }
    Vector du(11);
    for (auto& x : du) x = rng.next_real(-1.0, 1.0);

    const double alpha = cone.max_step(u, du, 1e6);
    ASSERT_GT(alpha, 0.0);
    // Just inside the step: still in the cone.
    Vector inside = u;
    linalg::axpy(0.999 * std::min(alpha, 1e5), du, inside);
    EXPECT_TRUE(cone.is_interior(inside, -1e-9));
    // Just beyond (when finite): outside or on the boundary.
    if (alpha < 1e5) {
      Vector outside = u;
      linalg::axpy(alpha * 1.001 + 1e-12, du, outside);
      EXPECT_FALSE(cone.is_interior(outside, 1e-12));
    }
  }
}

}  // namespace
}  // namespace bbs::solver
