// Chaos / robustness tests: end-to-end deadlines, cooperative cancellation
// and overload shedding, driven by the deterministic fault-injection
// harness (service/fault_injector.hpp).
//
// The invariants under test:
//   - an interrupted solve (cancelled or timed out) is terminal but
//     harmless: the session that ran it keeps its program, workspace and
//     one-time symbolic factorisation, and the next solve succeeds;
//   - a request whose deadline expires while still queued is shed without
//     any solver work (ServiceStats::deadline_shed moves, engine solves do
//     not);
//   - overload rejections are immediate, retryable, and clear once the
//     backlog drains;
//   - every rejection path carries a machine-readable error_code.
//
// Suite names start with "Service" so the sanitizer/TSan CI legs
// (ctest -R '^Service...') pick them up.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bbs/api/engine.hpp"
#include "bbs/common/assert.hpp"
#include "bbs/core/solver_session.hpp"
#include "bbs/io/api_io.hpp"
#include "bbs/io/json.hpp"
#include "bbs/service/dispatcher.hpp"
#include "bbs/service/fault_injector.hpp"
#include "bbs/service/jsonl_stream.hpp"
#include "bbs/service/runtime_config.hpp"
#include "bbs/solver/cancel.hpp"
#include "testing/support.hpp"

namespace bbs {
namespace {

using api::ErrorCode;
using api::Request;
using api::Response;
using api::ResponseStatus;
using service::Dispatcher;
using service::DispatcherOptions;
using service::FaultInjector;
using service::JsonlSession;
using service::RuntimeConfig;
using service::ServiceStats;
using solver::CancelToken;
using solver::SolveStatus;

using Clock = CancelToken::Clock;

Request solve_request(model::Configuration config, std::string id) {
  Request request;
  request.id = std::move(id);
  request.payload = api::SolveRequest{std::move(config)};
  return request;
}

std::string request_line(const Request& request) {
  return io::write_json_compact(io::request_to_json_value(request));
}

/// RAII failpoint teardown: the injector is process-wide, so every test
/// that arms it must disarm on all exits.
struct FaultGuard {
  ~FaultGuard() { FaultInjector::instance().clear(); }
};

// ---------------------------------------------------------------------------
// SolverSession under interruption
// ---------------------------------------------------------------------------

TEST(ServiceChaosSession, CancelledSolveLeavesSessionReusable) {
  core::SolverSession session(testing::paper_t1());

  core::SolveControl control;
  control.cancel = std::make_shared<CancelToken>();
  control.cancel->cancel();  // already cancelled: the solve stops at entry
  session.set_solve_control(control);

  const core::MappingResult interrupted = session.solve();
  EXPECT_EQ(interrupted.status, SolveStatus::kCancelled);
  EXPECT_TRUE(interrupted.interrupted());
  EXPECT_FALSE(interrupted.feasible());

  // The interruption refreshed no warm snapshot and invalidated nothing:
  // the very next solve succeeds on the same program and workspace, and
  // the one-time symbolic factorisation is still the only one ever done.
  session.clear_solve_control();
  const core::MappingResult result = session.solve();
  EXPECT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(session.workspace().kkt()->stats().symbolic_factorisations, 1);
}

TEST(ServiceChaosSession, ExpiredDeadlineTimesOutWithinOneIteration) {
  core::SolverSession session(testing::paper_t1());

  core::SolveControl control;
  control.deadline = Clock::now() - std::chrono::milliseconds(1);
  session.set_solve_control(control);

  const core::MappingResult timed_out = session.solve();
  EXPECT_EQ(timed_out.status, SolveStatus::kTimedOut);
  EXPECT_TRUE(timed_out.interrupted());
  // Cooperative termination: the deadline is checked once per iteration,
  // and an already expired one stops the solve before the first step.
  EXPECT_LE(timed_out.ipm_iterations, 1);

  session.clear_solve_control();
  const core::MappingResult result = session.solve();
  EXPECT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_EQ(session.workspace().kkt()->stats().symbolic_factorisations, 1);
}

TEST(ServiceChaosSession, InterruptedProbeAbortsSearchDrivers) {
  // A bisection that misread an interrupted probe as "infeasible" would
  // silently tighten its bracket on garbage; throw_if_interrupted converts
  // the interruption into a typed exception instead.
  core::MappingResult timed_out;
  timed_out.status = SolveStatus::kTimedOut;
  EXPECT_THROW(core::throw_if_interrupted(timed_out), DeadlineExceeded);
  core::MappingResult cancelled;
  cancelled.status = SolveStatus::kCancelled;
  EXPECT_THROW(core::throw_if_interrupted(cancelled), Cancelled);
  core::MappingResult fine;
  fine.status = SolveStatus::kPrimalInfeasible;
  EXPECT_NO_THROW(core::throw_if_interrupted(fine));
}

// ---------------------------------------------------------------------------
// Engine: structured errors and pooled-session survival
// ---------------------------------------------------------------------------

TEST(ServiceChaosEngine, ExpiredDeadlineYieldsStructuredErrorAndWarmPool) {
  api::Engine engine;
  const Request request = solve_request(testing::paper_t1(), "dl");

  const Response expired = engine.run(
      request, Clock::now() - std::chrono::milliseconds(1), nullptr);
  EXPECT_EQ(expired.status, ResponseStatus::kError);
  EXPECT_EQ(expired.error_code, ErrorCode::kDeadlineExceeded);
  EXPECT_TRUE(api::is_retryable(expired.error_code));
  EXPECT_FALSE(expired.error.empty());

  // The pooled session that served the interrupted request stays warm: the
  // retry is a pool hit and re-uses the one symbolic factorisation.
  const Response retry = engine.run(request);
  EXPECT_EQ(retry.status, ResponseStatus::kOk);
  EXPECT_EQ(retry.error_code, ErrorCode::kNone);
  EXPECT_TRUE(retry.diagnostics.session_reused);
  EXPECT_EQ(retry.diagnostics.symbolic_factorisations, 1);
  EXPECT_EQ(engine.stats().pool_hits, 1u);
}

TEST(ServiceChaosEngine, CancelTokenInterruptsAndSessionRecovers) {
  api::Engine engine;
  const Request request = solve_request(testing::paper_t1(), "ct");

  auto token = std::make_shared<CancelToken>();
  token->cancel();
  const Response cancelled =
      engine.run(request, api::Engine::Deadline::max(), token);
  EXPECT_EQ(cancelled.status, ResponseStatus::kError);
  EXPECT_EQ(cancelled.error_code, ErrorCode::kCancelled);

  // The token is per-request: the next run of the same request through the
  // same pooled session must not inherit it.
  const Response retry = engine.run(request);
  EXPECT_EQ(retry.status, ResponseStatus::kOk);
  EXPECT_TRUE(retry.diagnostics.session_reused);
  EXPECT_EQ(retry.diagnostics.symbolic_factorisations, 1);
}

TEST(ServiceChaosEngine, DeadlineMsOptionIsHonoured) {
  api::Engine engine;
  Request request = solve_request(testing::paper_t1(), "opt-dl");
  request.options.deadline_ms = 1e-6;  // expires effectively immediately

  const Response response = engine.run(request);
  EXPECT_EQ(response.status, ResponseStatus::kError);
  EXPECT_EQ(response.error_code, ErrorCode::kDeadlineExceeded);

  request.options.deadline_ms = 0.0;
  EXPECT_EQ(engine.run(request).status, ResponseStatus::kOk);
}

// ---------------------------------------------------------------------------
// Dispatcher: queue-expiry shedding and cancellation
// ---------------------------------------------------------------------------

TEST(ServiceChaosDispatcher, QueueExpiredTaskIsShedWithoutSolverWork) {
  DispatcherOptions options;
  options.workers = 1;
  options.work_stealing = false;
  Dispatcher dispatcher(options);

  // Park the single worker inside the completion of a normal request, so
  // everything submitted meanwhile waits in the queue.
  std::promise<void> release;
  std::shared_future<void> release_future(release.get_future());
  std::promise<void> parked;
  ASSERT_TRUE(dispatcher.submit(solve_request(testing::paper_t1(), "blocker"),
                                [&](Response) {
                                  parked.set_value();
                                  release_future.wait();
                                }));
  parked.get_future().wait();

  // Enqueue a request whose budget is far too small to survive the park.
  Request doomed = solve_request(testing::paper_t1(), "doomed");
  doomed.options.deadline_ms = 5.0;
  std::promise<Response> doomed_response;
  ASSERT_TRUE(dispatcher.submit(std::move(doomed), [&](Response r) {
    doomed_response.set_value(std::move(r));
  }));

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const ServiceStats before = dispatcher.stats();
  release.set_value();

  const Response shed = doomed_response.get_future().get();
  EXPECT_EQ(shed.status, ResponseStatus::kError);
  EXPECT_EQ(shed.error_code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(shed.id, "doomed");

  dispatcher.stop(/*drain=*/true);
  const ServiceStats after = dispatcher.stats();
  EXPECT_EQ(after.deadline_shed, 1u);
  EXPECT_EQ(after.timed_out_mid_solve, 0u);
  // The shed request never reached the engine: exactly the blocker's solve.
  EXPECT_EQ(after.requests, before.requests);
  EXPECT_EQ(after.requests, 1u);
  for (const auto& ws : after.workers) {
    EXPECT_EQ(ws.engine.solves, 1u);
  }
}

TEST(ServiceChaosDispatcher, CancelTokenShedsQueuedTasks) {
  DispatcherOptions options;
  options.workers = 1;
  options.work_stealing = false;
  Dispatcher dispatcher(options);

  std::promise<void> release;
  std::shared_future<void> release_future(release.get_future());
  std::promise<void> parked;
  ASSERT_TRUE(dispatcher.submit(solve_request(testing::paper_t1(), "blocker"),
                                [&](Response) {
                                  parked.set_value();
                                  release_future.wait();
                                }));
  parked.get_future().wait();

  auto token = std::make_shared<CancelToken>();
  std::promise<Response> queued_response;
  ASSERT_TRUE(dispatcher.submit(
      solve_request(testing::paper_t1(), "queued"),
      [&](Response r) { queued_response.set_value(std::move(r)); }, token));

  token->cancel();  // the client went away while its request was queued
  release.set_value();

  const Response shed = queued_response.get_future().get();
  EXPECT_EQ(shed.status, ResponseStatus::kError);
  EXPECT_EQ(shed.error_code, ErrorCode::kCancelled);

  dispatcher.stop(/*drain=*/true);
  const ServiceStats stats = dispatcher.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.deadline_shed, 0u);
  EXPECT_EQ(stats.requests, 1u);  // only the blocker was solved
}

// ---------------------------------------------------------------------------
// JSONL session: overload shedding, hot config reload, error codes
// ---------------------------------------------------------------------------

TEST(ServiceChaosJsonl, OverloadRejectionIsRetryableAndClears) {
  DispatcherOptions options;
  options.workers = 1;
  options.work_stealing = false;
  options.queue_capacity = 8;
  Dispatcher dispatcher(options);

  auto config = std::make_shared<RuntimeConfig>();
  config->queue_high_water.store(1);

  service::SessionOptions session_options;
  session_options.runtime_config = config;
  int overload_hook_calls = 0;
  session_options.on_overload_rejection = [&] { ++overload_hook_calls; };

  std::vector<std::string> lines;
  JsonlSession session(
      dispatcher, [&](const std::string& line) { lines.push_back(line); },
      session_options);

  // Park the worker, then put one task in the queue: depth == high water.
  std::promise<void> release;
  std::shared_future<void> release_future(release.get_future());
  std::promise<void> parked;
  ASSERT_TRUE(dispatcher.submit(solve_request(testing::paper_t1(), "blocker"),
                                [&](Response) {
                                  parked.set_value();
                                  release_future.wait();
                                }));
  parked.get_future().wait();
  session.submit_line(request_line(solve_request(testing::paper_t1(), "q1")));

  // The next line meets a queue at the high-water mark: immediate
  // retryable rejection, no enqueue.
  session.submit_line(
      request_line(solve_request(testing::paper_t1(), "rejected")));
  EXPECT_EQ(overload_hook_calls, 1);

  release.set_value();
  // Wait for the backlog to drain below the high-water mark, then the
  // retry the rejection asked for goes through.
  while (dispatcher.queue_depth(0) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  session.submit_line(
      request_line(solve_request(testing::paper_t1(), "retry")));
  const service::StreamSummary summary = session.finish();

  EXPECT_EQ(summary.overload_rejections, 1u);
  EXPECT_EQ(summary.errors, 1u);  // only the overload rejection
  EXPECT_EQ(summary.ok, 2u);      // q1 and the successful retry

  // The rejection line carries the retryable `overloaded` code, in order
  // (q1 was accepted first but completes later; ordering is by line).
  ASSERT_EQ(lines.size(), 3u);
  const Response rejected = io::response_from_json(lines[1]);
  EXPECT_EQ(rejected.error_code, ErrorCode::kOverloaded);
  EXPECT_TRUE(api::is_retryable(rejected.error_code));
  EXPECT_EQ(io::response_from_json(lines[2]).status, ResponseStatus::kOk);

  dispatcher.stop(/*drain=*/true);
}

TEST(ServiceChaosJsonl, SetConfigHotReloadsLimitsAndShowsInStats) {
  Dispatcher dispatcher(DispatcherOptions{});
  auto config = std::make_shared<RuntimeConfig>();

  service::SessionOptions session_options;
  session_options.runtime_config = config;
  std::string logged;
  session_options.on_config_change = [&](const std::string& description) {
    logged = description;
  };

  std::vector<std::string> lines;
  JsonlSession session(
      dispatcher, [&](const std::string& line) { lines.push_back(line); },
      session_options);

  session.submit_line(
      R"({"kind":"set_config","max_in_flight":8,"default_deadline_ms":500,)"
      R"("queue_high_water":4})");
  session.submit_line(R"({"kind":"stats","id":"after"})");
  const service::StreamSummary summary = session.finish();
  EXPECT_EQ(summary.errors, 0u);

  // The reload took effect immediately...
  EXPECT_EQ(config->max_in_flight.load(), 8u);
  EXPECT_EQ(config->default_deadline_ms.load(), 500u);
  EXPECT_EQ(config->queue_high_water.load(), 4u);
  EXPECT_NE(logged.find("max_in_flight"), std::string::npos);

  // ...was acknowledged on its own line...
  ASSERT_EQ(lines.size(), 2u);
  const io::JsonValue ack = io::parse_json(lines[0]);
  EXPECT_EQ(ack.as_object().at("kind").as_string(), "set_config");
  EXPECT_EQ(ack.as_object().at("status").as_string(), "ok");

  // ...and is observable in the next stats snapshot's config section.
  const io::JsonValue stats = io::parse_json(lines[1]);
  const io::JsonObject& result = stats.as_object().at("result").as_object();
  ASSERT_TRUE(result.contains("config"));
  EXPECT_EQ(result.at("config").as_object().at("max_in_flight").as_number(),
            8.0);
  EXPECT_EQ(
      result.at("config").as_object().at("default_deadline_ms").as_number(),
      500.0);

  dispatcher.stop(/*drain=*/true);
}

TEST(ServiceChaosJsonl, SetConfigRejectsUnknownKeysAndBadValues) {
  Dispatcher dispatcher(DispatcherOptions{});
  auto config = std::make_shared<RuntimeConfig>();
  service::SessionOptions session_options;
  session_options.runtime_config = config;

  std::vector<std::string> lines;
  JsonlSession session(
      dispatcher, [&](const std::string& line) { lines.push_back(line); },
      session_options);
  session.submit_line(R"({"kind":"set_config","not_a_knob":1})");
  session.submit_line(R"({"kind":"set_config","max_in_flight":"many"})");
  const service::StreamSummary summary = session.finish();

  EXPECT_EQ(summary.errors, 2u);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    const Response response = io::response_from_json(line);
    EXPECT_EQ(response.status, ResponseStatus::kError);
    EXPECT_EQ(response.error_code, ErrorCode::kParse);
  }
  EXPECT_EQ(config->max_in_flight.load(), 0u);  // nothing was applied

  dispatcher.stop(/*drain=*/true);
}

TEST(ServiceChaosJsonl, ErrorCodesOnParseQuotaAndShutdownPaths) {
  DispatcherOptions options;
  options.workers = 1;
  Dispatcher dispatcher(options);

  // Parse failure -> `parse`.
  {
    std::vector<std::string> lines;
    JsonlSession session(dispatcher, [&](const std::string& line) {
      lines.push_back(line);
    });
    session.submit_line("this is not json");
    session.finish();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(io::response_from_json(lines[0]).error_code, ErrorCode::kParse);
  }

  // Rate-limit quota -> `over_quota`, retryable.
  {
    service::SessionOptions session_options;
    session_options.requests_per_second = 0.001;
    session_options.burst = 1.0;
    std::vector<std::string> lines;
    JsonlSession session(
        dispatcher,
        [&](const std::string& line) { lines.push_back(line); },
        session_options);
    const std::string line =
        request_line(solve_request(testing::paper_t1(), "q"));
    session.submit_line(line);  // consumes the single burst token
    session.submit_line(line);  // over quota
    const service::StreamSummary summary = session.finish();
    EXPECT_EQ(summary.quota_rejections, 1u);
    ASSERT_EQ(lines.size(), 2u);
    const Response rejected = io::response_from_json(lines[1]);
    EXPECT_EQ(rejected.error_code, ErrorCode::kOverQuota);
    EXPECT_TRUE(api::is_retryable(rejected.error_code));
  }

  // The same tiny rate through a hot-reloadable RuntimeConfig: a sub-milli
  // rate must still reject (regression: an integer millirequests/s
  // encoding rounded 1e-6 req/s down to 0 = unlimited).
  {
    auto config = std::make_shared<RuntimeConfig>();
    config->set_requests_per_second(1e-6);
    service::SessionOptions session_options;
    session_options.runtime_config = config;
    std::vector<std::string> lines;
    JsonlSession session(
        dispatcher,
        [&](const std::string& line) { lines.push_back(line); },
        session_options);
    const std::string line =
        request_line(solve_request(testing::paper_t1(), "q2"));
    session.submit_line(line);
    session.submit_line(line);
    const service::StreamSummary summary = session.finish();
    EXPECT_EQ(summary.quota_rejections, 1u);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(io::response_from_json(lines[1]).error_code,
              ErrorCode::kOverQuota);
  }

  // Submit after stop -> `shutting_down`, retryable.
  dispatcher.stop(/*drain=*/true);
  {
    std::vector<std::string> lines;
    JsonlSession session(dispatcher, [&](const std::string& line) {
      lines.push_back(line);
    });
    session.submit_line(request_line(solve_request(testing::paper_t1(), "s")));
    session.finish();
    ASSERT_EQ(lines.size(), 1u);
    const Response rejected = io::response_from_json(lines[0]);
    EXPECT_EQ(rejected.error_code, ErrorCode::kShuttingDown);
    EXPECT_TRUE(api::is_retryable(rejected.error_code));
  }
}

// ---------------------------------------------------------------------------
// Fault injector
// ---------------------------------------------------------------------------

TEST(ServiceChaosFaults, SpecParsingAndDescribe) {
  FaultGuard guard;
  FaultInjector& faults = FaultInjector::instance();
  EXPECT_FALSE(faults.enabled());

  faults.configure("worker.delay_ms=25; ipm.fail_at=3");
  EXPECT_TRUE(faults.enabled());
  EXPECT_EQ(faults.worker_delay_ms(), 25);
  EXPECT_EQ(faults.ipm_fail_at(), 3);
  EXPECT_EQ(faults.outbox_stall_ms(), 0);
  EXPECT_EQ(faults.describe(), "worker.delay_ms=25;ipm.fail_at=3");

  faults.clear();
  EXPECT_FALSE(faults.enabled());
  EXPECT_EQ(faults.worker_delay_ms(), 0);
  EXPECT_EQ(faults.ipm_fail_at(), -1);
}

TEST(ServiceChaosFaults, RejectsUnknownAndMalformedFailpoints) {
  FaultGuard guard;
  FaultInjector& faults = FaultInjector::instance();
  EXPECT_THROW(faults.configure("no.such.failpoint=1"), ModelError);
  EXPECT_THROW(faults.configure("worker.delay_ms"), ModelError);
  EXPECT_THROW(faults.configure("worker.delay_ms=abc"), ModelError);
  EXPECT_FALSE(faults.enabled());
}

TEST(ServiceChaosFaults, InjectedIpmFailureIsAHardNumericalError) {
  FaultGuard guard;
  // Forced failure at iteration 0: the engine must report a structured
  // numerical_failure, never rescue it into an optimum, and the pooled
  // session must survive for the next (clean) request.
  FaultInjector::instance().configure("ipm.fail_at=0");

  DispatcherOptions options;
  options.workers = 1;
  Dispatcher dispatcher(options);
  std::promise<Response> failed;
  ASSERT_TRUE(dispatcher.submit(
      solve_request(testing::paper_t1(), "inject"),
      [&](Response r) { failed.set_value(std::move(r)); }));
  const Response response = failed.get_future().get();
  EXPECT_EQ(response.status, ResponseStatus::kError);
  EXPECT_EQ(response.error_code, ErrorCode::kNumericalFailure);
  EXPECT_FALSE(api::is_retryable(response.error_code));

  FaultInjector::instance().clear();
  std::promise<Response> clean;
  ASSERT_TRUE(dispatcher.submit(
      solve_request(testing::paper_t1(), "clean"),
      [&](Response r) { clean.set_value(std::move(r)); }));
  const Response recovered = clean.get_future().get();
  EXPECT_EQ(recovered.status, ResponseStatus::kOk);
  EXPECT_TRUE(recovered.diagnostics.session_reused);
  EXPECT_EQ(recovered.diagnostics.symbolic_factorisations, 1);

  dispatcher.stop(/*drain=*/true);
}

TEST(ServiceChaosFaults, WorkerDelayDrivesDeadlineShedding) {
  FaultGuard guard;
  // worker.delay_ms guarantees every task waits at least 40ms between pop
  // and execution, so a 5ms end-to-end budget must be shed or time out —
  // the same chaos recipe daemon_smoke.sh runs against a live daemon.
  FaultInjector::instance().configure("worker.delay_ms=40");

  DispatcherOptions options;
  options.workers = 1;
  Dispatcher dispatcher(options);
  Request request = solve_request(testing::paper_t1(), "chaos");
  request.options.deadline_ms = 5.0;
  std::promise<Response> done;
  ASSERT_TRUE(dispatcher.submit(std::move(request), [&](Response r) {
    done.set_value(std::move(r));
  }));
  const Response response = done.get_future().get();
  EXPECT_EQ(response.status, ResponseStatus::kError);
  EXPECT_EQ(response.error_code, ErrorCode::kDeadlineExceeded);

  dispatcher.stop(/*drain=*/true);
  const ServiceStats stats = dispatcher.stats();
  EXPECT_EQ(stats.deadline_shed + stats.timed_out_mid_solve, 1u);
  EXPECT_EQ(stats.deadline_shed, 1u);  // expiry happened during the delay
}

}  // namespace
}  // namespace bbs
