// Tests for the conservative rounding rules of Section IV.
#include <gtest/gtest.h>

#include "bbs/common/assert.hpp"
#include "bbs/core/rounding.hpp"

namespace bbs::core {
namespace {

TEST(Rounding, CeilWithToleranceBasics) {
  EXPECT_EQ(ceil_with_tolerance(2.0), 2);
  EXPECT_EQ(ceil_with_tolerance(2.1), 3);
  EXPECT_EQ(ceil_with_tolerance(-0.5), 0);
  EXPECT_EQ(ceil_with_tolerance(-1.2), -1);
}

TEST(Rounding, CeilAbsorbsSolverNoise) {
  // Just above an integer by far less than the tolerance: stays.
  EXPECT_EQ(ceil_with_tolerance(3.0 + 1e-10), 3);
  // Clearly above: rounds up.
  EXPECT_EQ(ceil_with_tolerance(3.0 + 1e-3), 4);
  // The tolerance is relative: 1e6 + 0.05 is within 1e-7 * 1e6 = 0.1.
  EXPECT_EQ(ceil_with_tolerance(1e6 + 0.05), 1000000);
}

TEST(Rounding, BudgetGranularity) {
  EXPECT_EQ(round_budget(7.2, 1), 8);
  EXPECT_EQ(round_budget(7.2, 4), 8);
  EXPECT_EQ(round_budget(8.0, 4), 8);
  EXPECT_EQ(round_budget(8.4, 4), 12);
  EXPECT_EQ(round_budget(0.3, 5), 5);  // at least one granule
}

TEST(Rounding, BudgetIsNeverBelowContinuousMinusTolerance) {
  for (const double beta : {0.1, 1.0, 3.9999999, 17.31, 36.1078}) {
    for (const linalg::Index g : {1, 2, 5}) {
      const linalg::Index rounded = round_budget(beta, g);
      EXPECT_GE(static_cast<double>(rounded), beta - 1e-5 * beta - 1e-9);
      EXPECT_EQ(rounded % g, 0);
      EXPECT_GE(rounded, g);
    }
  }
}

TEST(Rounding, BudgetPreconditions) {
  EXPECT_THROW(round_budget(1.0, 0), ContractViolation);
  EXPECT_THROW(round_budget(0.0, 1), ContractViolation);
  EXPECT_THROW(round_budget(-2.0, 1), ContractViolation);
}

TEST(Rounding, CapacityAddsInitialFill) {
  EXPECT_EQ(round_capacity(2.3, 0), 3);
  EXPECT_EQ(round_capacity(2.3, 2), 5);
  EXPECT_EQ(round_capacity(0.0, 0), 1);   // gamma is at least 1
  EXPECT_EQ(round_capacity(0.0, 4), 4);   // initially full buffer
  EXPECT_EQ(round_capacity(3.0 + 1e-10, 0), 3);
}

TEST(Rounding, CapacityPreconditions) {
  EXPECT_THROW(round_capacity(-1.0, 0), ContractViolation);
  EXPECT_THROW(round_capacity(1.0, -1), ContractViolation);
}

}  // namespace
}  // namespace bbs::core
