// Tests for the SRDF graph container and its structural queries.
#include <gtest/gtest.h>

#include "bbs/common/assert.hpp"
#include "bbs/dataflow/dot_export.hpp"
#include "bbs/dataflow/srdf_graph.hpp"

namespace bbs::dataflow {
namespace {

TEST(SrdfGraph, ConstructionAndAccessors) {
  SrdfGraph g;
  const Index a = g.add_actor("a", 1.5);
  const Index b = g.add_actor("b", 2.0);
  const Index e = g.add_queue(a, b, 3, "data");
  EXPECT_EQ(g.num_actors(), 2);
  EXPECT_EQ(g.num_queues(), 1);
  EXPECT_EQ(g.actor(a).name, "a");
  EXPECT_DOUBLE_EQ(g.actor(b).firing_duration, 2.0);
  EXPECT_EQ(g.queue(e).initial_tokens, 3);
  EXPECT_EQ(g.out_queues(a).size(), 1u);
  EXPECT_EQ(g.in_queues(b).size(), 1u);
  EXPECT_TRUE(g.is_valid());
  EXPECT_DOUBLE_EQ(g.total_duration(), 3.5);
}

TEST(SrdfGraph, RejectsBadArguments) {
  SrdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  EXPECT_THROW(g.add_actor("x", -1.0), ContractViolation);
  EXPECT_THROW(g.add_queue(a, 7, 0), ContractViolation);
  EXPECT_THROW(g.add_queue(7, a, 0), ContractViolation);
  EXPECT_THROW(g.add_queue(a, a, -1), ContractViolation);
  EXPECT_THROW(g.actor(5), ContractViolation);
  EXPECT_THROW(g.queue(0), ContractViolation);
}

TEST(SrdfGraph, Mutators) {
  SrdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  const Index e = g.add_queue(a, a, 1);
  g.set_firing_duration(a, 4.0);
  g.set_initial_tokens(e, 5);
  EXPECT_DOUBLE_EQ(g.actor(a).firing_duration, 4.0);
  EXPECT_EQ(g.queue(e).initial_tokens, 5);
  EXPECT_THROW(g.set_firing_duration(a, -1.0), ContractViolation);
  EXPECT_THROW(g.set_initial_tokens(e, -1), ContractViolation);
}

TEST(SrdfGraph, ZeroTokenCycleDetection) {
  SrdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  const Index b = g.add_actor("b", 1.0);
  g.add_queue(a, b, 0);
  g.add_queue(b, a, 1);
  EXPECT_FALSE(g.has_zero_token_cycle());
  // Remove the token: deadlock.
  SrdfGraph h;
  const Index c = h.add_actor("c", 1.0);
  const Index d = h.add_actor("d", 1.0);
  h.add_queue(c, d, 0);
  h.add_queue(d, c, 0);
  EXPECT_TRUE(h.has_zero_token_cycle());
}

TEST(SrdfGraph, SelfLoopZeroTokensIsDeadlock) {
  SrdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  g.add_queue(a, a, 0);
  EXPECT_TRUE(g.has_zero_token_cycle());
  g.set_initial_tokens(0, 1);
  EXPECT_FALSE(g.has_zero_token_cycle());
}

TEST(SrdfGraph, StrongConnectivity) {
  SrdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  const Index b = g.add_actor("b", 1.0);
  g.add_queue(a, b, 1);
  EXPECT_FALSE(g.is_strongly_connected());
  g.add_queue(b, a, 1);
  EXPECT_TRUE(g.is_strongly_connected());

  SrdfGraph single;
  single.add_actor("only", 1.0);
  EXPECT_TRUE(single.is_strongly_connected());
}

TEST(SrdfGraph, MultiEdgesSupported) {
  // Two parallel queues between the same actors (the data/space pair of a
  // buffer) must be kept distinct.
  SrdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  const Index b = g.add_actor("b", 1.0);
  g.add_queue(a, b, 0, "data");
  g.add_queue(a, b, 4, "more");
  EXPECT_EQ(g.out_queues(a).size(), 2u);
  EXPECT_EQ(g.queue(0).label, "data");
  EXPECT_EQ(g.queue(1).initial_tokens, 4);
}

TEST(DotExport, ContainsActorsAndQueues) {
  SrdfGraph g;
  const Index a = g.add_actor("prod", 2.0);
  const Index b = g.add_actor("cons", 1.0);
  g.add_queue(a, b, 3, "buf");
  const std::string dot = to_dot(g, "test");
  EXPECT_NE(dot.find("digraph test"), std::string::npos);
  EXPECT_NE(dot.find("prod"), std::string::npos);
  EXPECT_NE(dot.find("cons"), std::string::npos);
  EXPECT_NE(dot.find("a0 -> a1"), std::string::npos);
  EXPECT_NE(dot.find("3"), std::string::npos);
}

}  // namespace
}  // namespace bbs::dataflow
