// Tests for bbs/common: deterministic RNG, string helpers, contract macros.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "bbs/common/assert.hpp"
#include "bbs/common/rng.hpp"
#include "bbs/common/strings.hpp"

namespace bbs {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, IntRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit over 1000 draws
}

TEST(Rng, IntSingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_int(5, 5), 5);
}

TEST(Rng, IntRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.next_int(2, 1), ContractViolation);
}

TEST(Rng, RealRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_real(2.5, 2.75);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 2.75);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.25)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(1.5, 2), "1.50");
  EXPECT_EQ(format_double(-0.125, 3), "-0.125");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_TRUE(starts_with("hello", ""));
  EXPECT_FALSE(starts_with("hello", "hello!"));
  EXPECT_FALSE(starts_with("", "x"));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\n x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Assert, RequireThrowsContractViolation) {
  EXPECT_THROW(
      [] { BBS_REQUIRE(false, "precondition text"); }(),
      ContractViolation);
}

TEST(Assert, InternalAssertThrowsWithLocation) {
  try {
    BBS_ASSERT_MSG(1 == 2, "impossible");
    FAIL() << "assert did not fire";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("impossible"), std::string::npos);
  }
}

}  // namespace
}  // namespace bbs
