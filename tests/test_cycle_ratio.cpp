// Tests for the maximum-cycle-ratio analyses: hand-computed graphs, the
// agreement of the three independent algorithms on random strongly connected
// graphs, and the deadlock/acyclic conventions.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "bbs/common/rng.hpp"
#include "bbs/core/srdf_construction.hpp"
#include "bbs/dataflow/cycle_ratio.hpp"
#include "bbs/gen/generators.hpp"

namespace bbs::dataflow {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

SrdfGraph two_cycle(double rho_a, double rho_b, Index tokens) {
  SrdfGraph g;
  const Index a = g.add_actor("a", rho_a);
  const Index b = g.add_actor("b", rho_b);
  g.add_queue(a, b, 0);
  g.add_queue(b, a, tokens);
  return g;
}

TEST(CycleRatio, SimpleTwoActorCycle) {
  // Cycle duration 3 + 2 = 5, tokens 1 -> MCR 5.
  const SrdfGraph g = two_cycle(3.0, 2.0, 1);
  EXPECT_NEAR(max_cycle_ratio_bisect(g), 5.0, 1e-7);
  EXPECT_NEAR(max_cycle_ratio_howard(g), 5.0, 1e-9);
}

TEST(CycleRatio, TokensDivideRatio) {
  const SrdfGraph g = two_cycle(3.0, 2.0, 4);
  EXPECT_NEAR(max_cycle_ratio_bisect(g), 1.25, 1e-7);
  EXPECT_NEAR(max_cycle_ratio_howard(g), 1.25, 1e-9);
}

TEST(CycleRatio, SelfLoopDominates) {
  SrdfGraph g = two_cycle(1.0, 1.0, 10);  // outer cycle ratio 0.2
  g.add_queue(0, 0, 1);                   // self loop ratio 1.0
  EXPECT_NEAR(max_cycle_ratio_bisect(g), 1.0, 1e-7);
  EXPECT_NEAR(max_cycle_ratio_howard(g), 1.0, 1e-9);
}

TEST(CycleRatio, MaxOverMultipleCycles) {
  // Two disjoint cycles with ratios 2 and 7/3.
  SrdfGraph g;
  const Index a = g.add_actor("a", 2.0);
  g.add_queue(a, a, 1);
  const Index b = g.add_actor("b", 3.0);
  const Index c = g.add_actor("c", 4.0);
  g.add_queue(b, c, 1);
  g.add_queue(c, b, 2);
  EXPECT_NEAR(max_cycle_ratio_bisect(g), 7.0 / 3.0, 1e-7);
  EXPECT_NEAR(max_cycle_ratio_howard(g), 7.0 / 3.0, 1e-9);
}

TEST(CycleRatio, AcyclicIsZero) {
  SrdfGraph g;
  const Index a = g.add_actor("a", 5.0);
  const Index b = g.add_actor("b", 7.0);
  g.add_queue(a, b, 0);
  EXPECT_DOUBLE_EQ(max_cycle_ratio_bisect(g), 0.0);
  EXPECT_DOUBLE_EQ(max_cycle_ratio_howard(g), 0.0);
  EXPECT_DOUBLE_EQ(max_cycle_mean_karp(g), 0.0);
}

TEST(CycleRatio, DeadlockIsInfinite) {
  const SrdfGraph g = two_cycle(1.0, 1.0, 0);
  EXPECT_EQ(max_cycle_ratio_bisect(g), kInf);
  EXPECT_EQ(max_cycle_ratio_howard(g), kInf);
}

TEST(CycleRatio, KarpOnUnitTokenGraph) {
  // Ring of 3 actors with durations 1, 2, 3 and unit tokens: mean = ratio
  // = 6/3 = 2.
  SrdfGraph g;
  const Index a = g.add_actor("a", 1.0);
  const Index b = g.add_actor("b", 2.0);
  const Index c = g.add_actor("c", 3.0);
  g.add_queue(a, b, 1);
  g.add_queue(b, c, 1);
  g.add_queue(c, a, 1);
  EXPECT_NEAR(max_cycle_mean_karp(g), 2.0, 1e-9);
  EXPECT_NEAR(max_cycle_ratio_howard(g), 2.0, 1e-9);
  EXPECT_NEAR(max_cycle_ratio_bisect(g), 2.0, 1e-7);
}

TEST(CycleRatio, HowardHandlesTreesIntoCycles) {
  // A tail actor feeding a cycle must not disturb the result.
  SrdfGraph g = two_cycle(2.0, 2.0, 1);  // ratio 4
  const Index t = g.add_actor("tail", 100.0);
  g.add_queue(t, 0, 5);  // tail -> cycle, no cycle through tail
  EXPECT_NEAR(max_cycle_ratio_howard(g), 4.0, 1e-9);
  EXPECT_NEAR(max_cycle_ratio_bisect(g), 4.0, 1e-7);
}

/// Random strongly connected graphs: ring + chords, random durations and
/// token counts; the three algorithms must agree (Karp only when all token
/// counts are forced to 1).
class CycleRatioAgreement : public ::testing::TestWithParam<int> {};

TEST_P(CycleRatioAgreement, BisectEqualsHoward) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7907 + 3);
  for (int trial = 0; trial < 10; ++trial) {
    const Index n = static_cast<Index>(rng.next_int(2, 12));
    SrdfGraph g;
    for (Index v = 0; v < n; ++v) {
      g.add_actor("v" + std::to_string(v), rng.next_real(0.1, 5.0));
    }
    // Ring with >= 1 token per edge keeps it live and strongly connected.
    for (Index v = 0; v < n; ++v) {
      g.add_queue(v, (v + 1) % n, static_cast<Index>(rng.next_int(1, 3)));
    }
    const Index chords = static_cast<Index>(rng.next_int(0, n));
    for (Index e = 0; e < chords; ++e) {
      g.add_queue(static_cast<Index>(rng.next_int(0, n - 1)),
                  static_cast<Index>(rng.next_int(0, n - 1)),
                  static_cast<Index>(rng.next_int(1, 4)));
    }
    const double bisect = max_cycle_ratio_bisect(g, 1e-10);
    const double howard = max_cycle_ratio_howard(g);
    EXPECT_NEAR(bisect, howard, 1e-6 * (1.0 + bisect))
        << "n=" << n << " trial=" << trial;
  }
}

TEST_P(CycleRatioAgreement, KarpMatchesOnUnitTokens) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 11);
  for (int trial = 0; trial < 10; ++trial) {
    const Index n = static_cast<Index>(rng.next_int(2, 10));
    SrdfGraph g;
    for (Index v = 0; v < n; ++v) {
      g.add_actor("v" + std::to_string(v), rng.next_real(0.1, 5.0));
    }
    for (Index v = 0; v < n; ++v) g.add_queue(v, (v + 1) % n, 1);
    const Index chords = static_cast<Index>(rng.next_int(0, n));
    for (Index e = 0; e < chords; ++e) {
      g.add_queue(static_cast<Index>(rng.next_int(0, n - 1)),
                  static_cast<Index>(rng.next_int(0, n - 1)), 1);
    }
    const double karp = max_cycle_mean_karp(g);
    const double howard = max_cycle_ratio_howard(g);
    const double bisect = max_cycle_ratio_bisect(g, 1e-10);
    EXPECT_NEAR(karp, howard, 1e-7 * (1.0 + karp));
    EXPECT_NEAR(karp, bisect, 1e-6 * (1.0 + karp));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CycleRatioAgreement, ::testing::Range(0, 10));

TEST(CycleRatio, DefaultEntryPointIsHoward) {
  const SrdfGraph g = two_cycle(3.0, 2.0, 1);
  EXPECT_DOUBLE_EQ(max_cycle_ratio(g), max_cycle_ratio_howard(g));
}

/// Howard vs the bisection oracle on SRDF graphs constructed from the `gen`
/// configuration families — the graphs the solver actually analyses in the
/// incremental buffer-sizing search (self-loops, space queues, multi-rate
/// structure), not just synthetic rings.
class GenGraphAgreement : public ::testing::TestWithParam<int> {};

TEST_P(GenGraphAgreement, BisectEqualsHowardOnGenGraphs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 29);
  gen::GenParams params;
  params.num_processors = 4;
  params.seed = static_cast<std::uint64_t>(GetParam()) + 1;

  for (int trial = 0; trial < 4; ++trial) {
    const Index n = static_cast<Index>(rng.next_int(3, 10));
    model::Configuration config;
    switch (trial % 3) {
      case 0:
        config = gen::make_chain(n, params);
        break;
      case 1:
        config = gen::make_ring(n, params);
        break;
      default:
        config = gen::make_random_dag(n, 0.5, params);
        break;
    }
    const model::TaskGraph& tg = config.task_graph(0);
    linalg::Vector budgets(static_cast<std::size_t>(tg.num_tasks()));
    for (auto& b : budgets) b = rng.next_real(4.0, 36.0);
    std::vector<Index> capacities(static_cast<std::size_t>(tg.num_buffers()));
    for (auto& c : capacities) c = static_cast<Index>(rng.next_int(1, 4));

    const core::SrdfModel m =
        core::build_srdf(config, 0, budgets, capacities);
    const double howard = max_cycle_ratio_howard(m.graph);
    const double bisect = max_cycle_ratio_bisect(m.graph, 1e-10);
    EXPECT_NEAR(howard, bisect, 1e-6 * (1.0 + bisect))
        << "trial=" << trial << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenGraphAgreement, ::testing::Range(0, 8));

}  // namespace
}  // namespace bbs::dataflow
