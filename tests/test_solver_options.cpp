// Robustness matrix: the interior-point solver must reproduce the analytic
// T1 optimum under every combination of ordering, equilibration and step
// fraction — guarding against configurations that only work by accident.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "bbs/core/budget_buffer_solver.hpp"
#include "bbs/gen/generators.hpp"

namespace bbs::core {
namespace {

using OptionTuple = std::tuple<linalg::OrderingMethod, int, double>;

class SolverOptionMatrix : public ::testing::TestWithParam<OptionTuple> {};

TEST_P(SolverOptionMatrix, T1SweepMatchesClosedForm) {
  const auto [ordering, equilibrate_rounds, step_fraction] = GetParam();
  for (const int d : {1, 4, 7, 10}) {
    model::Configuration config = gen::producer_consumer_t1();
    config.mutable_task_graph(0).set_max_capacity(0, d);

    MappingOptions opts;
    opts.ipm.ordering = ordering;
    opts.ipm.equilibrate_rounds = equilibrate_rounds;
    opts.ipm.step_fraction = step_fraction;
    const MappingResult r = compute_budgets_and_buffers(config, opts);
    ASSERT_TRUE(r.feasible())
        << "ordering=" << linalg::ordering_name(ordering)
        << " eq=" << equilibrate_rounds << " sf=" << step_fraction
        << " d=" << d;

    const double p = 2.0 * 40.0 - d * 10.0;
    const double expect =
        std::max(4.0, (p + std::sqrt(p * p + 16.0 * 40.0)) / 4.0);
    EXPECT_NEAR(r.graphs[0].tasks[0].budget_continuous, expect,
                5e-3 * expect)
        << "d=" << d;
    EXPECT_TRUE(r.verified);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SolverOptionMatrix,
    ::testing::Combine(
        ::testing::Values(linalg::OrderingMethod::kNatural,
                          linalg::OrderingMethod::kReverseCuthillMcKee,
                          linalg::OrderingMethod::kMinimumDegree),
        ::testing::Values(0, 3),
        ::testing::Values(0.90, 0.99)));

TEST(SolverOptions, TightToleranceStillSolvesT2) {
  model::Configuration config = gen::three_stage_chain_t2();
  MappingOptions opts;
  opts.ipm.feas_tol = 1e-8;
  opts.ipm.gap_tol = 1e-8;
  const MappingResult r = compute_budgets_and_buffers(config, opts);
  // With best-iterate tracking the solver reports the closest point even if
  // the extreme tolerance is not reachable; either way the verified rounded
  // allocation must be produced when the status is optimal.
  if (r.feasible()) {
    EXPECT_TRUE(r.verified);
  }
}

TEST(SolverOptions, FewIterationsDegradeGracefully) {
  model::Configuration config = gen::producer_consumer_t1();
  MappingOptions opts;
  opts.ipm.max_iterations = 3;  // far too few
  const MappingResult r = compute_budgets_and_buffers(config, opts);
  // Must terminate with a clean status, never crash or report an unverified
  // allocation as verified.
  if (!r.feasible()) {
    SUCCEED();
  } else {
    EXPECT_TRUE(r.verified);
  }
}

TEST(SolverOptions, MoreRefinementNeverHurts) {
  for (const int refine : {0, 1, 3}) {
    model::Configuration config = gen::three_stage_chain_t2();
    model::TaskGraph& tg = config.mutable_task_graph(0);
    tg.set_max_capacity(0, 5);
    tg.set_max_capacity(1, 5);
    MappingOptions opts;
    opts.ipm.refine_steps = refine;
    const MappingResult r = compute_budgets_and_buffers(config, opts);
    ASSERT_TRUE(r.feasible()) << "refine=" << refine;
    EXPECT_TRUE(r.verified) << "refine=" << refine;
  }
}

}  // namespace
}  // namespace bbs::core
