// Tests for SolverSession: repeated solves of one problem structure with
// in-place parameter updates, a persistent KKT workspace (symbolic
// factorisation shared by the whole session) and warm starts.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "bbs/common/assert.hpp"
#include "bbs/core/refinement.hpp"
#include "bbs/core/solver_session.hpp"
#include "bbs/core/two_phase.hpp"
#include "testing/support.hpp"

namespace bbs::core {
namespace {

/// Tolerances tight enough that two independent solves of the same point
/// land on the same side of every rounding boundary (the default 1e-6 gap
/// leaves knife edges at exactly-integer optima; the rounding epsilon is
/// 1e-7), but loose enough that both the cold and the warm-started
/// trajectory still reach them before their numerical floor.
MappingOptions tight_options() {
  MappingOptions options;
  options.ipm.feas_tol = 1e-7;
  options.ipm.gap_tol = 1e-7;
  return options;
}

void expect_same_mapping(const MappingResult& session_result,
                         const MappingResult& fresh, const char* context) {
  ASSERT_EQ(session_result.status, fresh.status) << context;
  if (!fresh.feasible()) return;
  BBS_EXPECT_NEAR_REL(session_result.objective_continuous,
                      fresh.objective_continuous, 1e-5);
  BBS_EXPECT_NEAR_REL(session_result.objective_rounded,
                      fresh.objective_rounded, 1e-5);
  EXPECT_EQ(session_result.verified, fresh.verified) << context;
  ASSERT_EQ(session_result.graphs.size(), fresh.graphs.size());
  for (std::size_t g = 0; g < fresh.graphs.size(); ++g) {
    ASSERT_EQ(session_result.graphs[g].tasks.size(),
              fresh.graphs[g].tasks.size());
    for (std::size_t t = 0; t < fresh.graphs[g].tasks.size(); ++t) {
      EXPECT_EQ(session_result.graphs[g].tasks[t].budget,
                fresh.graphs[g].tasks[t].budget)
          << context << " graph " << g << " task " << t;
    }
    ASSERT_EQ(session_result.graphs[g].buffers.size(),
              fresh.graphs[g].buffers.size());
    for (std::size_t b = 0; b < fresh.graphs[g].buffers.size(); ++b) {
      EXPECT_EQ(session_result.graphs[g].buffers[b].capacity,
                fresh.graphs[g].buffers[b].capacity)
          << context << " graph " << g << " buffer " << b;
    }
  }
}

TEST(SolverSession, SymbolicFactorisationSharedAcrossSweep) {
  const model::Configuration config = testing::multi_graph_sweep();
  SolverSession session(config);
  for (Index cap = 1; cap <= 8; ++cap) {
    session.set_all_buffer_caps(0, cap);
    const MappingResult result = session.solve();
    EXPECT_TRUE(result.feasible()) << "cap " << cap;
  }
  EXPECT_EQ(session.solves(), 8);
  ASSERT_NE(session.workspace().kkt(), nullptr);
  // The reuse invariant of the whole PR: one symbolic analysis for the
  // entire multi-point sweep, not one per point.
  EXPECT_EQ(session.workspace().kkt()->stats().symbolic_factorisations, 1);
  EXPECT_GT(session.workspace().kkt()->stats().factorise_calls, 8);
}

TEST(SolverSession, CapSweepMatchesFreshSolves) {
  const model::Configuration config = testing::multi_graph_sweep();
  SessionOptions session_options;
  session_options.mapping = tight_options();
  SolverSession session(config, session_options);
  for (Index cap = 1; cap <= 8; ++cap) {
    session.set_all_buffer_caps(0, cap);
    session.set_all_buffer_caps(1, cap);
    const MappingResult from_session = session.solve();

    model::Configuration fresh_config = config;
    for (Index gi = 0; gi < fresh_config.num_task_graphs(); ++gi) {
      model::TaskGraph& tg = fresh_config.mutable_task_graph(gi);
      for (Index b = 0; b < tg.num_buffers(); ++b) {
        tg.set_max_capacity(b, cap);
      }
    }
    const MappingResult fresh =
        compute_budgets_and_buffers(fresh_config, tight_options());
    expect_same_mapping(from_session, fresh,
                        ("cap " + std::to_string(cap)).c_str());
  }
}

TEST(SolverSession, PeriodUpdatesMatchFreshSolves) {
  const model::Configuration config = testing::multi_graph_sweep();
  SessionOptions session_options;
  session_options.mapping = tight_options();
  SolverSession session(config, session_options);
  // Includes an infeasible probe (mu = 2 needs beta > rho = 40 on p0 while
  // sharing it with the audio chain) to check the session recovers from a
  // cold restart and still matches the fresh solve afterwards.
  for (const double period : {14.0, 12.0, 2.0, 10.0, 9.5}) {
    session.set_required_period(0, period);
    const MappingResult from_session = session.solve();

    model::Configuration fresh_config = config;
    fresh_config.mutable_task_graph(0).set_required_period(period);
    const MappingResult fresh =
        compute_budgets_and_buffers(fresh_config, tight_options());
    expect_same_mapping(from_session, fresh,
                        ("period " + std::to_string(period)).c_str());
  }
  EXPECT_EQ(session.workspace().kkt()->stats().symbolic_factorisations, 1);
}

TEST(SolverSession, WarmStartsDoNotIncreaseTotalIterations) {
  const model::Configuration config = testing::multi_graph_sweep();
  SessionOptions warm_options;
  SessionOptions cold_options;
  cold_options.mapping.ipm.warm_start = false;
  SolverSession warm(config, warm_options);
  SolverSession cold(config, cold_options);
  for (Index cap = 1; cap <= 8; ++cap) {
    warm.set_all_buffer_caps(0, cap);
    cold.set_all_buffer_caps(0, cap);
    const MappingResult rw = warm.solve();
    const MappingResult rc = cold.solve();
    EXPECT_EQ(rw.status, rc.status) << "cap " << cap;
  }
  EXPECT_EQ(cold.workspace().warm_started_solves(), 0);
  // All but the first solve find a seed (every point here is feasible).
  EXPECT_EQ(warm.workspace().warm_started_solves(), 7);
  EXPECT_LE(warm.total_ipm_iterations(), cold.total_ipm_iterations());
}

TEST(SolverSession, FixedDeltaSessionMatchesBufferFirst) {
  const model::Configuration config = testing::multi_graph_sweep();
  const std::vector<MappingResult> swept =
      sweep_buffer_first(config, 1, 6, tight_options());
  ASSERT_EQ(swept.size(), 6u);
  for (Index cap = 1; cap <= 6; ++cap) {
    const MappingResult fresh =
        solve_buffer_first(config, cap, tight_options());
    expect_same_mapping(swept[static_cast<std::size_t>(cap - 1)], fresh,
                        ("buffer-first cap " + std::to_string(cap)).c_str());
  }
}

TEST(SolverSession, BudgetFirstPeriodSearchIsConsistent) {
  const model::Configuration config = testing::multi_graph_sweep();
  const auto two_phase =
      minimal_feasible_period_budget_first(config, 0, 14.0, 1e-4);
  ASSERT_TRUE(two_phase.has_value());
  EXPECT_TRUE(two_phase->mapping.feasible());
  EXPECT_LE(two_phase->period, 14.0);

  // The flow it claims feasible must actually be feasible when re-run from
  // scratch at the found period.
  model::Configuration at_found = config;
  at_found.mutable_task_graph(0).set_required_period(two_phase->period);
  EXPECT_TRUE(solve_budget_first(at_found).feasible());

  // Committing phase-1 budgets can never beat the joint flow.
  model::Configuration joint_config = config;
  const auto joint = minimal_feasible_period(joint_config, 0, 14.0, 1e-4);
  ASSERT_TRUE(joint.has_value());
  EXPECT_GE(two_phase->period, joint->period - 1e-6);
}

TEST(SolverSession, PeriodSearchesReturnVerifiedMappings) {
  // The searches probe with verification disabled (a probe is only a
  // feasibility query), so the mapping they hand back must carry the full
  // verification pass run at the found period.
  model::Configuration config = testing::multi_graph_sweep();
  const auto joint = minimal_feasible_period(config, 0, 14.0, 1e-4);
  ASSERT_TRUE(joint.has_value());
  EXPECT_TRUE(joint->mapping.verified);
  for (const MappedGraph& mg : joint->mapping.graphs) {
    EXPECT_TRUE(mg.verification.throughput_met);
    EXPECT_GT(mg.verification.mcr, 0.0);
  }
  const auto staged = minimal_feasible_period_budget_first(config, 0, 14.0);
  ASSERT_TRUE(staged.has_value());
  EXPECT_TRUE(staged->mapping.verified);
}

TEST(SolverSession, CapUpdateWithoutCapRowThrows) {
  // two_task_chain leaves max_capacity = -1: the built program has no cap
  // row to rewrite, which must be reported, not silently ignored.
  const model::Configuration config = testing::two_task_chain();
  SolverSession session(config);
  EXPECT_THROW(session.set_buffer_cap(0, 0, 3), ContractViolation);
  EXPECT_THROW(session.set_buffer_cap(0, 0, 0), ContractViolation);
}

TEST(SolverSession, FixedValueUpdatesRequireMatchingBuild) {
  const model::Configuration config = testing::multi_graph_sweep();
  SolverSession session(config);  // joint build: nothing is fixed
  EXPECT_THROW(session.set_fixed_budgets(0, Vector{1.0, 1.0, 1.0}),
               ContractViolation);
  EXPECT_THROW(session.set_fixed_deltas(0, Vector{1.0, 1.0}),
               ContractViolation);
}

TEST(SolverSession, CallerConfigurationIsNeverTouched) {
  const model::Configuration config = testing::multi_graph_sweep();
  SolverSession session(config);
  session.set_all_buffer_caps(0, 3);
  session.set_required_period(0, 13.0);
  (void)session.solve();
  EXPECT_EQ(config.task_graph(0).buffer(0).max_capacity, 8);
  EXPECT_EQ(config.task_graph(0).required_period(), 12.0);
  EXPECT_EQ(session.config().task_graph(0).buffer(0).max_capacity, 3);
  EXPECT_EQ(session.config().task_graph(0).required_period(), 13.0);
}

TEST(SolverSession, RefinementUsesSessionConfiguration) {
  const model::Configuration config = testing::multi_graph_sweep();
  SolverSession session(config);
  session.set_all_buffer_caps(0, 4);
  MappingResult result = session.solve();
  ASSERT_TRUE(result.feasible());
  ASSERT_TRUE(result.verified);
  const RefinementStats stats = refine_rounded_mapping(session, result);
  EXPECT_LE(stats.cost_after, stats.cost_before + 1e-12);
  // Refinement re-verifies every accepted decrement against the session's
  // updated caps/periods.
  for (const MappedGraph& mg : result.graphs) {
    EXPECT_TRUE(mg.verification.throughput_met);
  }
}

TEST(IpmWorkspace, RejectsForeignProblemStructure) {
  const BuiltProgram small = build_algorithm1(testing::two_task_chain());
  const BuiltProgram large = build_algorithm1(testing::multi_graph_sweep());
  const solver::IpmSolver ipm;
  solver::IpmWorkspace workspace;
  EXPECT_TRUE(ipm.solve(small.problem, workspace).is_optimal());
  EXPECT_THROW(ipm.solve(large.problem, workspace), ContractViolation);
  workspace.reset();
  EXPECT_TRUE(ipm.solve(large.problem, workspace).is_optimal());
}

TEST(IpmWorkspace, RejectsSamePatternDifferentCone) {
  // Identical G pattern, different cone partition: the rebind check must
  // compare the cone too, not just the sparsity structure.
  const linalg::SparseMatrix g2 = linalg::SparseMatrix::identity(2);
  // max x1 + x2 s.t. x <= 1 elementwise, vs. the same rows as one SOC(2).
  const solver::ConicProblem lp(Vector{-1.0, -1.0}, g2, Vector{1.0, 1.0},
                                solver::ConeSpec(2, {}));
  const solver::ConicProblem soc(Vector{-1.0, -1.0}, g2, Vector{2.0, 1.0},
                                 solver::ConeSpec(0, {2}));
  const solver::IpmSolver ipm;
  solver::IpmWorkspace workspace;
  EXPECT_TRUE(ipm.solve(lp, workspace).is_optimal());
  EXPECT_THROW(ipm.solve(soc, workspace), ContractViolation);
}

TEST(IpmWorkspace, SurvivesDestructionOfTheBoundProblem) {
  // The workspace must hold no references into a solved problem: binding
  // state (cone, matrices) is copied, so re-solving an identical program
  // after the first one was destroyed is valid — the session pattern when
  // a program is rebuilt in place.
  const solver::IpmSolver ipm;
  solver::IpmWorkspace workspace;
  {
    const BuiltProgram first = build_algorithm1(testing::multi_graph_sweep());
    ASSERT_TRUE(ipm.solve(first.problem, workspace).is_optimal());
  }
  const BuiltProgram second = build_algorithm1(testing::multi_graph_sweep());
  const solver::SolveResult again = ipm.solve(second.problem, workspace);
  EXPECT_TRUE(again.is_optimal());
  EXPECT_TRUE(again.warm_started);
}

TEST(SolverSession, BisectionRecordsBothSeedSides) {
  // A period bisection alternates between feasible and infeasible probes;
  // the session must stock a snapshot per side and attribute every solve's
  // iterations to the seed that started it.
  const model::Configuration config = testing::multi_graph_sweep();
  SessionOptions options;
  options.mapping = tight_options();
  options.mapping.verify = false;
  SolverSession session(config, options);
  const auto found = minimal_feasible_period(session, 0, 14.0, 1e-4,
                                             /*verify_result=*/false);
  ASSERT_TRUE(found.has_value());

  EXPECT_TRUE(session.has_feasible_seed());
  EXPECT_TRUE(session.has_infeasible_seed());
  const SeedStats& stats = session.seed_stats();
  EXPECT_GT(stats.last_feasible_updates, 0);
  EXPECT_GT(stats.last_infeasible_updates, 0);
  // Every solve is accounted to exactly one seed side, iterations included.
  EXPECT_EQ(stats.cold + stats.seeded_feasible + stats.seeded_infeasible,
            session.solves());
  EXPECT_EQ(stats.iterations_cold + stats.iterations_seeded_feasible +
                stats.iterations_seeded_infeasible,
            session.total_ipm_iterations());
  EXPECT_GE(stats.cold, 1);          // the very first solve has no seed
  EXPECT_GT(stats.seeded_feasible, 0);
  EXPECT_GT(stats.last_iterations, 0);
}

TEST(SolverSession, TwoSidedSeedingMatchesOneSidedSearch) {
  // Seeding is a pure accelerator: the bisection must take the identical
  // feasibility decisions and land on the identical mapping either way.
  std::optional<MinimalPeriodResult> results[2];
  long iterations[2] = {0, 0};
  for (const bool two_sided : {false, true}) {
    const model::Configuration config = testing::multi_graph_sweep();
    SessionOptions options;
    options.mapping = tight_options();
    options.mapping.verify = false;
    options.two_sided_warm_seeds = two_sided;
    SolverSession session(config, options);
    results[two_sided] =
        minimal_feasible_period(session, 0, 14.0, 1e-4, false);
    iterations[two_sided] = session.total_ipm_iterations();
    ASSERT_TRUE(results[two_sided].has_value());
  }
  EXPECT_DOUBLE_EQ(results[0]->period, results[1]->period);
  expect_same_mapping(results[1]->mapping, results[0]->mapping,
                      "two-sided vs one-sided");
  // The infeasible-side seed only fires when its residual merit beats the
  // feasible optimum's, so the iteration total can only move by what those
  // solves save; it must never blow up.
  EXPECT_LE(iterations[1], iterations[0] + 8);
}

TEST(IpmWorkspace, RepeatSolveWarmStartsAndAgrees) {
  const BuiltProgram program = build_algorithm1(testing::multi_graph_sweep());
  const solver::IpmSolver ipm;
  solver::IpmWorkspace workspace;
  const solver::SolveResult first = ipm.solve(program.problem, workspace);
  const solver::SolveResult second = ipm.solve(program.problem, workspace);
  ASSERT_TRUE(first.is_optimal());
  ASSERT_TRUE(second.is_optimal());
  EXPECT_FALSE(first.warm_started);
  EXPECT_TRUE(second.warm_started);
  // Re-solving the identical problem from its own solution is the easiest
  // warm start there is.
  EXPECT_LE(second.iterations, first.iterations);
  BBS_EXPECT_NEAR_REL(second.primal_objective, first.primal_objective, 1e-6);
}

TEST(IpmWorkspace, ExplicitSeedWarmStartsNextSolve) {
  const BuiltProgram program = build_algorithm1(testing::multi_graph_sweep());
  const solver::IpmSolver ipm;
  solver::IpmWorkspace cold_ws;
  const solver::SolveResult cold = ipm.solve(program.problem, cold_ws);
  ASSERT_TRUE(cold.is_optimal());

  // Transplant the solution into a fresh workspace (what a session does
  // when re-installing a side snapshot): the next solve warm-starts.
  solver::IpmWorkspace seeded_ws;
  seeded_ws.seed_warm(cold.x, cold.s, cold.z);
  EXPECT_TRUE(seeded_ws.has_warm());
  const solver::SolveResult warm = ipm.solve(program.problem, seeded_ws);
  ASSERT_TRUE(warm.is_optimal());
  EXPECT_TRUE(warm.warm_started);
  EXPECT_LE(warm.iterations, cold.iterations);
  BBS_EXPECT_NEAR_REL(warm.primal_objective, cold.primal_objective, 1e-6);

  seeded_ws.clear_warm();
  EXPECT_FALSE(seeded_ws.has_warm());
  const solver::SolveResult recold = ipm.solve(program.problem, seeded_ws);
  EXPECT_FALSE(recold.warm_started);
}

TEST(IpmWorkspace, MismatchedSeedDimensionsFallBackToColdStart) {
  const BuiltProgram program = build_algorithm1(testing::multi_graph_sweep());
  const solver::IpmSolver ipm;
  solver::IpmWorkspace workspace;
  workspace.seed_warm(Vector(3, 1.0), Vector(2, 1.0), Vector(2, 1.0));
  const solver::SolveResult result = ipm.solve(program.problem, workspace);
  ASSERT_TRUE(result.is_optimal());
  EXPECT_FALSE(result.warm_started);
}

}  // namespace
}  // namespace bbs::core
