// Service API tests: request/response JSON round-trips, schema negatives,
// and the Engine's batched, session-pooled execution (results equivalent to
// the free-function drivers, one symbolic factorisation per pooled problem
// structure).
#include <gtest/gtest.h>

#include <algorithm>

#include "bbs/api/engine.hpp"
#include "bbs/common/assert.hpp"
#include "bbs/core/tradeoff.hpp"
#include "bbs/core/two_phase.hpp"
#include "bbs/io/api_io.hpp"
#include "bbs/io/config_io.hpp"
#include "testing/support.hpp"

namespace bbs {
namespace {

using api::Engine;
using api::EngineOptions;
using api::Request;
using api::RequestOptions;
using api::Response;
using api::ResponseStatus;
using core::MappingResult;
using linalg::Index;
using linalg::Vector;

/// Tolerances tight enough that independent solves of one point land on the
/// same side of every rounding boundary (see test_solver_session.cpp).
RequestOptions tight_options() {
  RequestOptions options;
  options.ipm.feas_tol = 1e-7;
  options.ipm.gap_tol = 1e-7;
  return options;
}

core::MappingOptions tight_mapping_options() {
  core::MappingOptions options;
  options.ipm.feas_tol = 1e-7;
  options.ipm.gap_tol = 1e-7;
  return options;
}

void expect_same_mapping(const MappingResult& a, const MappingResult& b,
                         const char* context) {
  ASSERT_EQ(a.status, b.status) << context;
  if (!b.feasible()) return;
  BBS_EXPECT_NEAR_REL(a.objective_continuous, b.objective_continuous, 1e-5);
  BBS_EXPECT_NEAR_REL(a.objective_rounded, b.objective_rounded, 1e-5);
  EXPECT_EQ(a.verified, b.verified) << context;
  ASSERT_EQ(a.graphs.size(), b.graphs.size()) << context;
  for (std::size_t g = 0; g < b.graphs.size(); ++g) {
    ASSERT_EQ(a.graphs[g].tasks.size(), b.graphs[g].tasks.size());
    for (std::size_t t = 0; t < b.graphs[g].tasks.size(); ++t) {
      EXPECT_EQ(a.graphs[g].tasks[t].budget, b.graphs[g].tasks[t].budget)
          << context << " graph " << g << " task " << t;
    }
    ASSERT_EQ(a.graphs[g].buffers.size(), b.graphs[g].buffers.size());
    for (std::size_t bu = 0; bu < b.graphs[g].buffers.size(); ++bu) {
      EXPECT_EQ(a.graphs[g].buffers[bu].capacity,
                b.graphs[g].buffers[bu].capacity)
          << context << " graph " << g << " buffer " << bu;
    }
  }
}

Request solve_request(model::Configuration config, std::string id = "") {
  Request request;
  request.id = std::move(id);
  request.options = tight_options();
  request.payload = api::SolveRequest{std::move(config)};
  return request;
}

// ---------------------------------------------------------------------------
// Request JSON round-trips
// ---------------------------------------------------------------------------

TEST(ApiIo, SolveRequestRoundTrip) {
  Request request = solve_request(testing::paper_t1(), "req-1");
  request.options.verify = false;
  request.options.rounding_eps = 1e-6;
  const std::string text = io::request_to_json(request);
  const Request reparsed = io::request_from_json(text);
  EXPECT_EQ(reparsed.id, "req-1");
  EXPECT_EQ(std::string(reparsed.kind()), "solve");
  EXPECT_FALSE(reparsed.options.verify);
  EXPECT_DOUBLE_EQ(reparsed.options.rounding_eps, 1e-6);
  EXPECT_DOUBLE_EQ(reparsed.options.ipm.gap_tol, 1e-7);
  // Serialised forms are bit-identical: the round-trip is lossless.
  EXPECT_EQ(io::request_to_json(reparsed), text);
}

TEST(ApiIo, SweepRequestRoundTrip) {
  Request request;
  api::SweepRequest r{testing::multi_graph_sweep()};
  r.graph = 1;
  r.cap_lo = 2;
  r.cap_hi = 6;
  request.payload = std::move(r);
  const std::string text = io::request_to_json(request);
  // The graph is referenced by name, like every config-schema reference.
  EXPECT_NE(text.find("\"graph\": \"audio\""), std::string::npos);
  const Request reparsed = io::request_from_json(text);
  const auto& parsed = std::get<api::SweepRequest>(reparsed.payload);
  EXPECT_EQ(parsed.graph, 1);
  EXPECT_EQ(parsed.cap_lo, 2);
  EXPECT_EQ(parsed.cap_hi, 6);
  EXPECT_EQ(io::request_to_json(reparsed), text);
}

TEST(ApiIo, MinPeriodRequestRoundTrip) {
  Request request;
  api::MinPeriodRequest r{testing::paper_t2()};
  r.graph = 0;
  r.period_hi = 40.0;
  r.rel_tol = 1e-3;
  r.flow = api::MinPeriodRequest::Flow::kBudgetFirst;
  request.payload = std::move(r);
  const std::string text = io::request_to_json(request);
  const Request reparsed = io::request_from_json(text);
  const auto& parsed = std::get<api::MinPeriodRequest>(reparsed.payload);
  EXPECT_DOUBLE_EQ(parsed.period_hi, 40.0);
  EXPECT_DOUBLE_EQ(parsed.rel_tol, 1e-3);
  EXPECT_EQ(parsed.flow, api::MinPeriodRequest::Flow::kBudgetFirst);
  EXPECT_EQ(io::request_to_json(reparsed), text);
}

TEST(ApiIo, TwoPhaseRequestRoundTrip) {
  Request request;
  api::TwoPhaseRequest r{testing::paper_t1()};
  r.mode = api::TwoPhaseRequest::Mode::kBufferFirst;
  r.cap_lo = 1;
  r.cap_hi = 4;
  request.payload = std::move(r);
  const std::string text = io::request_to_json(request);
  const Request reparsed = io::request_from_json(text);
  const auto& parsed = std::get<api::TwoPhaseRequest>(reparsed.payload);
  EXPECT_EQ(parsed.mode, api::TwoPhaseRequest::Mode::kBufferFirst);
  EXPECT_EQ(parsed.cap_lo, 1);
  EXPECT_EQ(parsed.cap_hi, 4);
  EXPECT_EQ(io::request_to_json(reparsed), text);
}

TEST(ApiIo, LatencyRequestRoundTrip) {
  Request request;
  api::LatencyRequest r{testing::multi_graph_sweep()};
  r.graph = 0;
  request.payload = std::move(r);
  const std::string text = io::request_to_json(request);
  const Request reparsed = io::request_from_json(text);
  EXPECT_EQ(std::get<api::LatencyRequest>(reparsed.payload).graph, 0);
  EXPECT_EQ(io::request_to_json(reparsed), text);

  // graph == -1 (all graphs) serialises without a graph reference.
  Request all;
  all.payload = api::LatencyRequest{testing::multi_graph_sweep()};
  const std::string all_text = io::request_to_json(all);
  EXPECT_EQ(all_text.find("\"graph\""), std::string::npos);
  EXPECT_EQ(std::get<api::LatencyRequest>(
                io::request_from_json(all_text).payload)
                .graph,
            -1);
}

// ---------------------------------------------------------------------------
// Schema negatives
// ---------------------------------------------------------------------------

TEST(ApiIo, RejectsUnsupportedSchemaVersion) {
  Request request = solve_request(testing::paper_t1());
  io::JsonValue doc = io::request_to_json_value(request);
  doc.as_object()["schema_version"] = io::JsonValue(999);
  EXPECT_THROW(io::request_from_json_value(doc), ModelError);

  Response response;
  response.kind = "solve";
  response.status = ResponseStatus::kError;
  response.error = "x";
  io::JsonValue rdoc = io::response_to_json_value(response);
  rdoc.as_object()["schema_version"] = io::JsonValue(0);
  EXPECT_THROW(io::response_from_json_value(rdoc), ModelError);
}

TEST(ApiIo, RejectsMalformedRequests) {
  // Not an object at all.
  EXPECT_THROW(io::request_from_json("[1, 2]"), ModelError);
  // Missing schema_version / kind / configuration.
  EXPECT_THROW(io::request_from_json("{}"), ModelError);
  EXPECT_THROW(io::request_from_json(R"({"schema_version": 1})"), ModelError);
  EXPECT_THROW(
      io::request_from_json(R"({"schema_version": 1, "kind": "solve"})"),
      ModelError);
  // Unknown kind.
  Request request = solve_request(testing::paper_t1());
  io::JsonValue doc = io::request_to_json_value(request);
  doc.as_object()["kind"] = io::JsonValue(std::string("explode"));
  EXPECT_THROW(io::request_from_json_value(doc), ModelError);

  // Integer fields outside the Index range are rejected, not cast (the
  // unchecked float-to-int conversion would be undefined behaviour).
  Request sweep;
  api::SweepRequest sr{testing::paper_t1()};
  sweep.payload = std::move(sr);
  io::JsonValue sdoc = io::request_to_json_value(sweep);
  sdoc.as_object()["cap_lo"] = io::JsonValue(3.0e9);
  EXPECT_THROW(io::request_from_json_value(sdoc), ModelError);
  sdoc.as_object()["cap_lo"] = io::JsonValue(1.5);
  EXPECT_THROW(io::request_from_json_value(sdoc), ModelError);
}

TEST(ApiIo, RejectsDanglingGraphReferences) {
  Request request;
  api::SweepRequest r{testing::paper_t1()};
  request.payload = std::move(r);
  io::JsonValue doc = io::request_to_json_value(request);
  doc.as_object()["graph"] = io::JsonValue(std::string("no-such-graph"));
  EXPECT_THROW(io::request_from_json_value(doc), ModelError);
  doc.as_object()["graph"] = io::JsonValue(7);
  EXPECT_THROW(io::request_from_json_value(doc), ModelError);
}

TEST(ApiIo, RejectsBadEnums) {
  Request request;
  api::MinPeriodRequest mp{testing::paper_t1()};
  mp.period_hi = 40.0;
  request.payload = std::move(mp);
  io::JsonValue doc = io::request_to_json_value(request);
  doc.as_object()["flow"] = io::JsonValue(std::string("sideways"));
  EXPECT_THROW(io::request_from_json_value(doc), ModelError);

  Request tp;
  tp.payload = api::TwoPhaseRequest{testing::paper_t1()};
  io::JsonValue tdoc = io::request_to_json_value(tp);
  tdoc.as_object()["mode"] = io::JsonValue(std::string("middle_first"));
  EXPECT_THROW(io::request_from_json_value(tdoc), ModelError);
}

// ---------------------------------------------------------------------------
// Engine execution + response round-trips
// ---------------------------------------------------------------------------

TEST(ApiEngine, SolveMatchesFreeFunction) {
  Engine engine;
  const Response response = engine.run(solve_request(testing::paper_t1()));
  ASSERT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_EQ(response.kind, "solve");
  const auto& payload = std::get<api::SolvePayload>(response.payload);
  const MappingResult fresh = core::compute_budgets_and_buffers(
      testing::paper_t1(), tight_mapping_options());
  expect_same_mapping(payload.mapping, fresh, "solve");
  EXPECT_TRUE(payload.mapping.verified);
  EXPECT_EQ(response.diagnostics.solves, 1);
  EXPECT_EQ(response.diagnostics.symbolic_factorisations, 1);
  EXPECT_FALSE(response.diagnostics.session_reused);
  EXPECT_GT(response.diagnostics.ipm_iterations, 0);
  EXPECT_GE(response.diagnostics.wall_ms, 0.0);

  // Full response JSON round-trip.
  const std::string text = io::response_to_json(response);
  const Response reparsed = io::response_from_json(text);
  EXPECT_EQ(io::response_to_json(reparsed), text);
  expect_same_mapping(std::get<api::SolvePayload>(reparsed.payload).mapping,
                      payload.mapping, "round-trip");
}

TEST(ApiEngine, SweepMatchesFreeFunction) {
  model::Configuration config = testing::paper_t1();
  const core::TradeoffSweep fresh =
      core::sweep_max_capacity(config, 0, 1, 6, tight_mapping_options());

  Engine engine;
  Request request;
  request.options = tight_options();
  api::SweepRequest r{testing::paper_t1()};
  r.graph = 0;
  r.cap_lo = 1;
  r.cap_hi = 6;
  request.payload = std::move(r);
  const Response response = engine.run(request);
  ASSERT_EQ(response.status, ResponseStatus::kOk);
  const auto& sweep = std::get<api::SweepPayload>(response.payload).sweep;
  ASSERT_EQ(sweep.points.size(), fresh.points.size());
  for (std::size_t i = 0; i < fresh.points.size(); ++i) {
    EXPECT_EQ(sweep.points[i].feasible, fresh.points[i].feasible);
    EXPECT_EQ(sweep.points[i].budgets, fresh.points[i].budgets);
    EXPECT_EQ(sweep.points[i].capacities, fresh.points[i].capacities);
    BBS_EXPECT_NEAR_REL(sweep.points[i].total_budget_continuous,
                        fresh.points[i].total_budget_continuous, 1e-5);
  }
  EXPECT_EQ(response.diagnostics.solves, 6);
  EXPECT_EQ(response.diagnostics.symbolic_factorisations, 1);

  const std::string text = io::response_to_json(response);
  EXPECT_EQ(io::response_to_json(io::response_from_json(text)), text);
}

TEST(ApiEngine, MinPeriodMatchesFreeFunctionBothFlows) {
  model::Configuration config = testing::paper_t1();
  config.mutable_task_graph(0).set_max_capacity(0, 10);

  for (const auto flow : {api::MinPeriodRequest::Flow::kJoint,
                          api::MinPeriodRequest::Flow::kBudgetFirst}) {
    Engine engine;
    Request request;
    request.options = tight_options();
    api::MinPeriodRequest r{config};
    r.graph = 0;
    r.period_hi = 40.0;
    r.rel_tol = 1e-4;
    r.flow = flow;
    request.payload = std::move(r);
    const Response response = engine.run(request);
    ASSERT_EQ(response.status, ResponseStatus::kOk);
    const auto& payload = std::get<api::MinPeriodPayload>(response.payload);
    ASSERT_TRUE(payload.found);

    model::Configuration fresh_config = config;
    const auto fresh =
        flow == api::MinPeriodRequest::Flow::kJoint
            ? core::minimal_feasible_period(fresh_config, 0, 40.0, 1e-4,
                                            tight_mapping_options())
            : core::minimal_feasible_period_budget_first(
                  fresh_config, 0, 40.0, 1e-4, tight_mapping_options());
    ASSERT_TRUE(fresh.has_value());
    BBS_EXPECT_NEAR_REL(payload.period, fresh->period, 1e-9);
    expect_same_mapping(payload.mapping, fresh->mapping, "min_period");
    EXPECT_EQ(response.diagnostics.symbolic_factorisations, 1);
    EXPECT_GT(response.diagnostics.solves, 2);

    const std::string text = io::response_to_json(response);
    EXPECT_EQ(io::response_to_json(io::response_from_json(text)), text);
  }
}

TEST(ApiEngine, MinPeriodInfeasibleCeiling) {
  // A task whose WCET exceeds what even a full budget sustains below the
  // ceiling (cf. test_properties).
  model::Configuration config(1);
  const auto p = config.add_processor("p", 40.0);
  config.add_memory("m", -1.0);
  model::TaskGraph tg("solo", 1.0);
  tg.add_task("t", p, 30.0);
  config.add_task_graph(std::move(tg));

  Engine engine;
  Request request;
  api::MinPeriodRequest r{std::move(config)};
  r.graph = 0;
  r.period_hi = 20.0;
  request.payload = std::move(r);
  const Response response = engine.run(request);
  EXPECT_EQ(response.status, ResponseStatus::kInfeasible);
  EXPECT_FALSE(std::get<api::MinPeriodPayload>(response.payload).found);

  const std::string text = io::response_to_json(response);
  EXPECT_EQ(io::response_to_json(io::response_from_json(text)), text);
}

TEST(ApiEngine, TwoPhaseMatchesFreeFunctions) {
  const model::Configuration config = testing::paper_t2();

  Engine engine;
  Request budget_first;
  budget_first.options = tight_options();
  budget_first.payload = api::TwoPhaseRequest{config};
  const Response bf = engine.run(budget_first);
  ASSERT_EQ(bf.status, ResponseStatus::kOk);
  const auto& bf_payload = std::get<api::TwoPhasePayload>(bf.payload);
  ASSERT_EQ(bf_payload.mappings.size(), 1u);
  expect_same_mapping(
      bf_payload.mappings[0],
      core::solve_budget_first(config, tight_mapping_options()),
      "budget_first");

  Request buffer_first;
  buffer_first.options = tight_options();
  api::TwoPhaseRequest r{config};
  r.mode = api::TwoPhaseRequest::Mode::kBufferFirst;
  r.cap_lo = 1;
  r.cap_hi = 4;
  buffer_first.payload = std::move(r);
  const Response buff = engine.run(buffer_first);
  ASSERT_EQ(buff.status, ResponseStatus::kOk);
  const auto& sweep_payload = std::get<api::TwoPhasePayload>(buff.payload);
  const std::vector<MappingResult> fresh =
      core::sweep_buffer_first(config, 1, 4, tight_mapping_options());
  ASSERT_EQ(sweep_payload.mappings.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    expect_same_mapping(sweep_payload.mappings[i], fresh[i], "buffer_first");
  }
  EXPECT_EQ(buff.diagnostics.symbolic_factorisations, 1);

  const std::string text = io::response_to_json(buff);
  EXPECT_EQ(io::response_to_json(io::response_from_json(text)), text);
}

TEST(ApiEngine, LatencyMatchesFreeFunction) {
  Engine engine;
  Request request;
  request.options = tight_options();
  request.payload = api::LatencyRequest{testing::paper_t2()};
  const Response response = engine.run(request);
  ASSERT_EQ(response.status, ResponseStatus::kOk);
  const auto& payload = std::get<api::LatencyPayload>(response.payload);
  ASSERT_EQ(payload.graphs.size(), 1u);
  ASSERT_TRUE(payload.graphs[0].has_pas);

  // Recompute the bound from the rounded mapping the payload reports.
  Vector budgets;
  std::vector<Index> caps;
  for (const auto& t : payload.mapping.graphs[0].tasks) {
    budgets.push_back(static_cast<double>(t.budget));
  }
  for (const auto& b : payload.mapping.graphs[0].buffers) {
    caps.push_back(b.capacity);
  }
  const auto fresh = core::compute_latency_bounds(testing::paper_t2(), 0,
                                                  budgets, caps);
  ASSERT_TRUE(fresh.has_value());
  BBS_EXPECT_NEAR_REL(payload.graphs[0].latency.worst, fresh->worst, 1e-9);
  EXPECT_EQ(payload.graphs[0].latency.pairs.size(), fresh->pairs.size());

  const std::string text = io::response_to_json(response);
  EXPECT_EQ(io::response_to_json(io::response_from_json(text)), text);
}

TEST(ApiEngine, ErrorsAreReportedPerRequest) {
  Engine engine;
  Request bad;
  api::SweepRequest r{testing::paper_t1()};
  r.graph = 5;  // out of range
  bad.payload = std::move(r);
  std::vector<Request> batch;
  batch.push_back(std::move(bad));
  batch.push_back(solve_request(testing::paper_t1(), "after-error"));

  const std::vector<Response> responses = engine.run_batch(batch);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status, ResponseStatus::kError);
  EXPECT_NE(responses[0].error.find("graph index"), std::string::npos);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(responses[0].payload));
  // The batch keeps going after a failed request.
  EXPECT_EQ(responses[1].status, ResponseStatus::kOk);
  EXPECT_EQ(responses[1].id, "after-error");

  // Error responses round-trip too (payload stays empty).
  const std::string text = io::response_to_json(responses[0]);
  const Response reparsed = io::response_from_json(text);
  EXPECT_EQ(reparsed.status, ResponseStatus::kError);
  EXPECT_EQ(reparsed.error, responses[0].error);
  EXPECT_EQ(io::response_to_json(reparsed), text);
}

// ---------------------------------------------------------------------------
// Session pooling across a batch
// ---------------------------------------------------------------------------

TEST(ApiEngine, BatchPoolsOneSessionPerStructure) {
  // Three solves of the same structure at different periods + one solve of
  // a structurally different system: the first three share one pooled
  // session (symbolic_factorisations stays 1, warm starts kick in), the
  // fourth falls back to a fresh session.
  std::vector<Request> batch;
  for (const double period : {12.0, 14.0, 11.5}) {
    testing::MultiGraphSweepOptions opts;
    opts.period_video = period;
    batch.push_back(solve_request(testing::multi_graph_sweep(opts)));
  }
  batch.push_back(solve_request(testing::paper_t1(), "other-structure"));

  Engine engine;
  const std::vector<Response> responses = engine.run_batch(batch);
  ASSERT_EQ(responses.size(), 4u);
  for (const Response& response : responses) {
    ASSERT_EQ(response.status, ResponseStatus::kOk);
    EXPECT_EQ(response.diagnostics.symbolic_factorisations, 1);
  }
  EXPECT_FALSE(responses[0].diagnostics.session_reused);
  EXPECT_TRUE(responses[1].diagnostics.session_reused);
  EXPECT_TRUE(responses[2].diagnostics.session_reused);
  EXPECT_FALSE(responses[3].diagnostics.session_reused);
  EXPECT_TRUE(responses[1].diagnostics.warm_started_solves == 1);
  EXPECT_EQ(engine.pooled_sessions(), 2u);

  // Pooled answers match fresh one-shot solves.
  for (std::size_t i = 0; i < 3; ++i) {
    expect_same_mapping(
        std::get<api::SolvePayload>(responses[i].payload).mapping,
        core::compute_budgets_and_buffers(batch[i].configuration(),
                                          tight_mapping_options()),
        "pooled batch");
  }
}

TEST(ApiEngine, MixedKindsShareOneStructurePool) {
  // solve + min_period + latency on one structure: all joint-mode requests
  // land in the same pooled session.
  const model::Configuration config = testing::multi_graph_sweep();

  std::vector<Request> batch;
  batch.push_back(solve_request(config));
  {
    Request request;
    request.options = tight_options();
    api::MinPeriodRequest r{config};
    r.graph = 0;
    r.period_hi = 40.0;
    request.payload = std::move(r);
    batch.push_back(std::move(request));
  }
  {
    Request request;
    request.options = tight_options();
    request.payload = api::LatencyRequest{config};
    batch.push_back(std::move(request));
  }

  Engine engine;
  const std::vector<Response> responses = engine.run_batch(batch);
  ASSERT_EQ(responses.size(), 3u);
  for (const Response& response : responses) {
    ASSERT_EQ(response.status, ResponseStatus::kOk);
    EXPECT_EQ(response.diagnostics.symbolic_factorisations, 1);
  }
  EXPECT_EQ(engine.pooled_sessions(), 1u);
  EXPECT_TRUE(responses[1].diagnostics.session_reused);
  EXPECT_TRUE(responses[2].diagnostics.session_reused);

  // The solve after the min_period bisection still answers for *its*
  // period, not the bisection's last probe.
  expect_same_mapping(
      std::get<api::LatencyPayload>(responses[2].payload).mapping,
      core::compute_budgets_and_buffers(config, tight_mapping_options()),
      "post-bisection solve");
}

TEST(ApiEngine, PoolEvictionAndDisabledPooling) {
  // max_pool_sessions == 1: alternating structures evict each other.
  EngineOptions one;
  one.max_pool_sessions = 1;
  Engine small(one);
  (void)small.run(solve_request(testing::paper_t1()));
  (void)small.run(solve_request(testing::paper_t2()));
  EXPECT_EQ(small.pooled_sessions(), 1u);
  const Response back = small.run(solve_request(testing::paper_t1()));
  EXPECT_FALSE(back.diagnostics.session_reused);

  // max_pool_sessions == 0: pooling disabled entirely.
  EngineOptions off;
  off.max_pool_sessions = 0;
  Engine cold(off);
  const Response first = cold.run(solve_request(testing::paper_t1()));
  const Response second = cold.run(solve_request(testing::paper_t1()));
  EXPECT_EQ(cold.pooled_sessions(), 0u);
  EXPECT_FALSE(first.diagnostics.session_reused);
  EXPECT_FALSE(second.diagnostics.session_reused);
}

TEST(ApiEngine, SweepRequestPoolsWithEqualStructure) {
  // Two sweeps of the same system (different ranges) share one session;
  // batch results equal the free-function sweeps point by point.
  const model::Configuration config = testing::multi_graph_sweep();

  std::vector<Request> batch;
  for (const Index cap_hi : {Index(4), Index(6)}) {
    Request request;
    request.options = tight_options();
    api::SweepRequest r{config};
    r.graph = 0;
    r.cap_lo = 1;
    r.cap_hi = cap_hi;
    request.payload = std::move(r);
    batch.push_back(std::move(request));
  }

  Engine engine;
  const std::vector<Response> responses = engine.run_batch(batch);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(engine.pooled_sessions(), 1u);
  EXPECT_TRUE(responses[1].diagnostics.session_reused);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(responses[i].status, ResponseStatus::kOk);
    EXPECT_EQ(responses[i].diagnostics.symbolic_factorisations, 1);
    model::Configuration fresh_config = config;
    const core::TradeoffSweep fresh = core::sweep_max_capacity(
        fresh_config, 0, 1, i == 0 ? 4 : 6, tight_mapping_options());
    const auto& sweep = std::get<api::SweepPayload>(responses[i].payload).sweep;
    ASSERT_EQ(sweep.points.size(), fresh.points.size());
    for (std::size_t k = 0; k < fresh.points.size(); ++k) {
      EXPECT_EQ(sweep.points[k].feasible, fresh.points[k].feasible);
      EXPECT_EQ(sweep.points[k].budgets, fresh.points[k].budgets);
      EXPECT_EQ(sweep.points[k].capacities, fresh.points[k].capacities);
    }
  }
}

}  // namespace
}  // namespace bbs
