// Tests for the application model: task graphs, configurations, validation.
#include <gtest/gtest.h>

#include "bbs/common/assert.hpp"
#include "bbs/model/configuration.hpp"

namespace bbs::model {
namespace {

Configuration valid_config() {
  Configuration c(2);
  const Index p = c.add_processor("p1", 40.0, 1.0);
  const Index m = c.add_memory("m1", 100.0);
  TaskGraph tg("job", 10.0);
  const Index a = tg.add_task("a", p, 1.0);
  const Index b = tg.add_task("b", p, 2.0);
  tg.add_buffer("ab", a, b, m, 4, 1, 0.5);
  c.add_task_graph(std::move(tg));
  return c;
}

TEST(Model, AccessorsAndCounts) {
  const Configuration c = valid_config();
  EXPECT_EQ(c.granularity(), 2);
  EXPECT_EQ(c.num_processors(), 1);
  EXPECT_EQ(c.num_memories(), 1);
  EXPECT_EQ(c.num_task_graphs(), 1);
  EXPECT_EQ(c.total_tasks(), 2);
  EXPECT_EQ(c.total_buffers(), 1);
  const TaskGraph& tg = c.task_graph(0);
  EXPECT_EQ(tg.name(), "job");
  EXPECT_DOUBLE_EQ(tg.required_period(), 10.0);
  EXPECT_EQ(tg.buffer(0).container_size, 4);
  EXPECT_EQ(tg.buffer(0).initial_fill, 1);
  EXPECT_NO_THROW(c.validate());
}

TEST(Model, ConstructionPreconditions) {
  Configuration c(1);
  EXPECT_THROW(Configuration(0), ContractViolation);
  EXPECT_THROW(c.add_processor("p", 0.0), ContractViolation);
  EXPECT_THROW(c.add_processor("p", 10.0, -1.0), ContractViolation);
  EXPECT_THROW(c.add_memory("m", -2.0), ContractViolation);

  EXPECT_THROW(TaskGraph("g", 0.0), ContractViolation);
  TaskGraph tg("g", 1.0);
  EXPECT_THROW(tg.add_task("t", 0, 0.0), ContractViolation);
  const Index t = tg.add_task("t", 0, 1.0);
  EXPECT_THROW(tg.add_buffer("b", t, 5, 0), ContractViolation);
  EXPECT_THROW(tg.add_buffer("b", t, t, 0, 0), ContractViolation);
  EXPECT_THROW(tg.add_buffer("b", t, t, 0, 1, -1), ContractViolation);
}

TEST(Model, ValidateCatchesDanglingProcessor) {
  Configuration c(1);
  c.add_memory("m", -1.0);
  TaskGraph tg("g", 1.0);
  tg.add_task("t", 3, 1.0);  // processor 3 does not exist
  c.add_task_graph(std::move(tg));
  EXPECT_THROW(c.validate(), ModelError);
}

TEST(Model, ValidateCatchesDanglingMemory) {
  Configuration c(1);
  const Index p = c.add_processor("p", 10.0);
  TaskGraph tg("g", 1.0);
  const Index a = tg.add_task("a", p, 1.0);
  tg.add_buffer("b", a, a, 2);  // memory 2 does not exist
  c.add_task_graph(std::move(tg));
  EXPECT_THROW(c.validate(), ModelError);
}

TEST(Model, ValidateCatchesOverheadConsumingWheel) {
  Configuration c(1);
  c.add_processor("p", 10.0, 10.0);
  TaskGraph tg("g", 1.0);
  tg.add_task("t", 0, 1.0);
  c.add_task_graph(std::move(tg));
  EXPECT_THROW(c.validate(), ModelError);
}

TEST(Model, ValidateCatchesEmptyGraph) {
  Configuration c(1);
  c.add_processor("p", 10.0);
  c.add_task_graph(TaskGraph("empty", 1.0));
  EXPECT_THROW(c.validate(), ModelError);
}

TEST(Model, ValidateCatchesFillAboveCap) {
  Configuration c(1);
  const Index p = c.add_processor("p", 10.0);
  const Index m = c.add_memory("m", -1.0);
  TaskGraph tg("g", 1.0);
  const Index a = tg.add_task("a", p, 1.0);
  const Index b = tg.add_buffer("ab", a, a, m, 1, 5);
  tg.set_max_capacity(b, 3);
  c.add_task_graph(std::move(tg));
  EXPECT_THROW(c.validate(), ModelError);
}

TEST(Model, MaxCapacitySetterContract) {
  TaskGraph tg("g", 1.0);
  const Index a = tg.add_task("a", 0, 1.0);
  const Index b = tg.add_buffer("ab", a, a, 0);
  tg.set_max_capacity(b, 5);
  EXPECT_EQ(tg.buffer(b).max_capacity, 5);
  tg.set_max_capacity(b, -1);
  EXPECT_EQ(tg.buffer(b).max_capacity, -1);
  EXPECT_THROW(tg.set_max_capacity(b, 0), ContractViolation);
  EXPECT_THROW(tg.set_max_capacity(7, 5), ContractViolation);
}

TEST(Model, SelfBufferAllowed) {
  // A task may feed itself (cyclic dependency through its own buffer).
  Configuration c(1);
  const Index p = c.add_processor("p", 10.0);
  const Index m = c.add_memory("m", -1.0);
  TaskGraph tg("g", 5.0);
  const Index a = tg.add_task("a", p, 1.0);
  tg.add_buffer("loop", a, a, m, 1, 1);
  c.add_task_graph(std::move(tg));
  EXPECT_NO_THROW(c.validate());
}

TEST(Model, MultipleGraphsShareProcessors) {
  Configuration c(1);
  const Index p = c.add_processor("p", 40.0);
  c.add_memory("m", -1.0);
  for (int j = 0; j < 3; ++j) {
    TaskGraph tg("job" + std::to_string(j), 20.0);
    tg.add_task("t", p, 1.0);
    c.add_task_graph(std::move(tg));
  }
  EXPECT_EQ(c.num_task_graphs(), 3);
  EXPECT_EQ(c.total_tasks(), 3);
  EXPECT_NO_THROW(c.validate());
}

}  // namespace
}  // namespace bbs::model
