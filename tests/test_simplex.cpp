// Tests for the dense two-phase simplex solver on hand-checked and
// structured linear programs.
#include <gtest/gtest.h>

#include "bbs/common/assert.hpp"
#include "bbs/solver/simplex.hpp"

namespace bbs::solver {
namespace {

using linalg::DenseMatrix;

DenseMatrix rows(std::size_t m, std::size_t n,
                 std::initializer_list<double> values) {
  DenseMatrix a(m, n);
  auto it = values.begin();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = *it++;
  return a;
}

TEST(Simplex, TextbookMaximisation) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0
  // -> (2, 6), objective 36. As minimisation of -3x - 5y.
  const auto a = rows(5, 2,
                      {1, 0,
                       0, 2,
                       3, 2,
                       -1, 0,
                       0, -1});
  const LpResult r = solve_lp_simplex({-3.0, -5.0}, a, {4, 12, 18, 0, 0});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.x[1], 6.0, 1e-9);
  EXPECT_NEAR(r.objective, -36.0, 1e-9);
}

TEST(Simplex, FreeVariablesViaSplit) {
  // min x s.t. x >= -5 (i.e. -x <= 5); optimum at the negative value -5.
  const auto a = rows(1, 1, {-1});
  const LpResult r = solve_lp_simplex({1.0}, a, {5.0});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], -5.0, 1e-9);
}

TEST(Simplex, NegativeRhsNeedsPhase1) {
  // x >= 2 written as -x <= -2; min x -> 2.
  const auto a = rows(1, 1, {-1});
  const LpResult r = solve_lp_simplex({1.0}, a, {-2.0});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  // x <= 1 and x >= 3.
  const auto a = rows(2, 1, {1, -1});
  const LpResult r = solve_lp_simplex({1.0}, a, {1.0, -3.0});
  EXPECT_EQ(r.status, SolveStatus::kPrimalInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min -x s.t. x >= 0: unbounded below.
  const auto a = rows(1, 1, {-1});
  const LpResult r = solve_lp_simplex({-1.0}, a, {0.0});
  EXPECT_EQ(r.status, SolveStatus::kDualInfeasible);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Three constraints meeting at the same vertex (0,0) — Bland's rule must
  // avoid cycling.
  const auto a = rows(4, 2,
                      {1, 1,
                       1, 2,
                       2, 1,
                       -1, -1});
  const LpResult r = solve_lp_simplex({-1.0, -1.0}, a, {0.0, 0.0, 0.0, 0.0});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-9);
}

TEST(Simplex, EqualityViaTwoInequalities) {
  // x + y = 1 (as <= and >=), min x -> x = 0, y = 1 with y <= 1.
  const auto a = rows(3, 2,
                      {1, 1,
                       -1, -1,
                       0, 1});
  const LpResult r = solve_lp_simplex({1.0, 0.0}, a, {1.0, -1.0, 1.0});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 0.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
}

TEST(Simplex, DimensionMismatchThrows) {
  const auto a = rows(1, 2, {1, 1});
  EXPECT_THROW(solve_lp_simplex({1.0}, a, {1.0}), ContractViolation);
}

}  // namespace
}  // namespace bbs::solver
