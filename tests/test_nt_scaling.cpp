// Tests for the Nesterov–Todd scaling: the defining identities
// W z = W^{-1} s = lambda, W W^{-1} = I, and the consistency of the
// block-diagonal W^{-2} with repeated applications of W^{-1}.
#include <gtest/gtest.h>

#include <cmath>

#include "bbs/common/assert.hpp"
#include "bbs/common/rng.hpp"
#include "bbs/solver/nt_scaling.hpp"

namespace bbs::solver {
namespace {


class NtScalingRandom : public ::testing::TestWithParam<int> {};

TEST_P(NtScalingRandom, DefiningIdentitiesHold) {
  const ConeSpec cone(3, {3, 4, 6});
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  NtScaling scaling(cone);
  for (int trial = 0; trial < 25; ++trial) {
    const Vector s = random_interior_point(cone, rng);
    const Vector z = random_interior_point(cone, rng);
    scaling.update(s, z);

    // lambda = W z = W^{-1} s.
    const Vector wz = scaling.apply_w(z);
    const Vector winv_s = scaling.apply_w_inv(s);
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_NEAR(wz[i], winv_s[i], 1e-9);
      EXPECT_NEAR(wz[i], scaling.lambda()[i], 1e-9);
    }

    // lambda must be in the cone interior (it is a geometric mean of two
    // interior points).
    EXPECT_TRUE(cone.is_interior(scaling.lambda()));

    // W^{-1} (W v) = v for random v.
    Vector v(s.size());
    for (auto& x : v) x = rng.next_real(-2.0, 2.0);
    const Vector round_trip = scaling.apply_w_inv(scaling.apply_w(v));
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_NEAR(round_trip[i], v[i], 1e-9);
    }

    // The sparse W^{-2} equals applying W^{-1} twice.
    const linalg::SparseMatrix w2inv = scaling.inverse_squared();
    const Vector a = w2inv.multiply(v);
    const Vector b = scaling.apply_w_inv(scaling.apply_w_inv(v));
    for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NtScalingRandom, ::testing::Values(1, 2, 3));

TEST(NtScaling, InverseSquaredIntoReusesFixedPattern) {
  const ConeSpec cone(3, {3});
  Rng rng(9);
  NtScaling scaling(cone);
  scaling.update(random_interior_point(cone, rng),
                 random_interior_point(cone, rng));

  linalg::SparseMatrix w2inv;
  scaling.inverse_squared_into(w2inv);  // builds the fixed pattern
  const linalg::Index nnz_first = w2inv.nnz();

  scaling.update(random_interior_point(cone, rng),
                 random_interior_point(cone, rng));
  scaling.inverse_squared_into(w2inv);  // in-place value update
  EXPECT_EQ(w2inv.nnz(), nnz_first);

  // Values must match repeated W^{-1} application.
  const Vector v = random_interior_point(cone, rng);
  const Vector a = w2inv.multiply(v);
  const Vector b = scaling.apply_w_inv(scaling.apply_w_inv(v));
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
}

TEST(NtScaling, InverseSquaredIntoRejectsForeignPattern) {
  const ConeSpec cone(4, {});
  Rng rng(11);
  NtScaling scaling(cone);
  scaling.update(random_interior_point(cone, rng),
                 random_interior_point(cone, rng));

  // Right dimension and entry count, wrong layout (all entries in column 0).
  linalg::TripletList t(4, 4);
  for (linalg::Index r = 0; r < 4; ++r) t.add(r, 0, 1.0);
  linalg::SparseMatrix wrong = linalg::SparseMatrix::from_triplets(t);
  EXPECT_THROW(scaling.inverse_squared_into(wrong), ContractViolation);
}

TEST(NtScaling, LpBlockIsGeometricMeanScaling) {
  const ConeSpec cone(2, {});
  NtScaling scaling(cone);
  scaling.update({4.0, 9.0}, {1.0, 4.0});
  // lambda_i = sqrt(s_i z_i).
  EXPECT_NEAR(scaling.lambda()[0], 2.0, 1e-14);
  EXPECT_NEAR(scaling.lambda()[1], 6.0, 1e-14);
  // W v = sqrt(s/z) .* v.
  const Vector w1 = scaling.apply_w({1.0, 1.0});
  EXPECT_NEAR(w1[0], 2.0, 1e-14);
  EXPECT_NEAR(w1[1], 1.5, 1e-14);
}

TEST(NtScaling, SymmetricInSAndZAtIdentity) {
  // With s == z, W must be the identity and lambda == s.
  const ConeSpec cone(1, {3});
  NtScaling scaling(cone);
  const Vector s{2.0, 3.0, 1.0, -0.5};
  scaling.update(s, s);
  Vector v{0.7, -0.2, 0.9, 0.4};
  const Vector wv = scaling.apply_w(v);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(wv[i], v[i], 1e-12);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(scaling.lambda()[i], s[i], 1e-12);
  }
}

TEST(NtScaling, RejectsBoundaryPoints) {
  const ConeSpec cone(1, {3});
  NtScaling scaling(cone);
  EXPECT_THROW(scaling.update({0.0, 2.0, 1.0, 0.0}, {1.0, 2.0, 1.0, 0.0}),
               NumericalError);
  EXPECT_THROW(scaling.update({1.0, 1.0, 1.0, 0.0}, {1.0, 2.0, 1.0, 0.0}),
               NumericalError);
}

TEST(NtScaling, DualityMeasureInvariant) {
  // s'z is preserved by the scaling: lambda'lambda = s'z.
  const ConeSpec cone(2, {5});
  Rng rng(5);
  NtScaling scaling(cone);
  for (int trial = 0; trial < 20; ++trial) {
    const Vector s = random_interior_point(cone, rng);
    const Vector z = random_interior_point(cone, rng);
    scaling.update(s, z);
    EXPECT_NEAR(linalg::dot(scaling.lambda(), scaling.lambda()),
                linalg::dot(s, z), 1e-8 * (1.0 + linalg::dot(s, z)));
  }
}

}  // namespace
}  // namespace bbs::solver
