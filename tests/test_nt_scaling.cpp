// Tests for the Nesterov–Todd scaling: the defining identities
// W z = W^{-1} s = lambda, W W^{-1} = I, and the consistency of the
// block-diagonal W^{-2} with repeated applications of W^{-1}.
#include <gtest/gtest.h>

#include <cmath>

#include "bbs/common/assert.hpp"
#include "bbs/common/rng.hpp"
#include "bbs/solver/nt_scaling.hpp"

namespace bbs::solver {
namespace {

/// Draws a strictly interior point of the composite cone.
Vector interior_point(const ConeSpec& cone, Rng& rng) {
  Vector u(static_cast<std::size_t>(cone.dim()));
  for (Index i = 0; i < cone.nonneg(); ++i) {
    u[static_cast<std::size_t>(i)] = rng.next_real(0.05, 4.0);
  }
  for (std::size_t k = 0; k < cone.soc_dims().size(); ++k) {
    const auto off = static_cast<std::size_t>(cone.soc_offset(k));
    const auto q = static_cast<std::size_t>(cone.soc_dims()[k]);
    double tail = 0.0;
    for (std::size_t i = 1; i < q; ++i) {
      u[off + i] = rng.next_real(-1.5, 1.5);
      tail += u[off + i] * u[off + i];
    }
    u[off] = std::sqrt(tail) + rng.next_real(0.05, 2.0);
  }
  return u;
}

class NtScalingRandom : public ::testing::TestWithParam<int> {};

TEST_P(NtScalingRandom, DefiningIdentitiesHold) {
  const ConeSpec cone(3, {3, 4, 6});
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  NtScaling scaling(cone);
  for (int trial = 0; trial < 25; ++trial) {
    const Vector s = interior_point(cone, rng);
    const Vector z = interior_point(cone, rng);
    scaling.update(s, z);

    // lambda = W z = W^{-1} s.
    const Vector wz = scaling.apply_w(z);
    const Vector winv_s = scaling.apply_w_inv(s);
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_NEAR(wz[i], winv_s[i], 1e-9);
      EXPECT_NEAR(wz[i], scaling.lambda()[i], 1e-9);
    }

    // lambda must be in the cone interior (it is a geometric mean of two
    // interior points).
    EXPECT_TRUE(cone.is_interior(scaling.lambda()));

    // W^{-1} (W v) = v for random v.
    Vector v(s.size());
    for (auto& x : v) x = rng.next_real(-2.0, 2.0);
    const Vector round_trip = scaling.apply_w_inv(scaling.apply_w(v));
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_NEAR(round_trip[i], v[i], 1e-9);
    }

    // The sparse W^{-2} equals applying W^{-1} twice.
    const linalg::SparseMatrix w2inv = scaling.inverse_squared();
    const Vector a = w2inv.multiply(v);
    const Vector b = scaling.apply_w_inv(scaling.apply_w_inv(v));
    for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NtScalingRandom, ::testing::Values(1, 2, 3));

TEST(NtScaling, LpBlockIsGeometricMeanScaling) {
  const ConeSpec cone(2, {});
  NtScaling scaling(cone);
  scaling.update({4.0, 9.0}, {1.0, 4.0});
  // lambda_i = sqrt(s_i z_i).
  EXPECT_NEAR(scaling.lambda()[0], 2.0, 1e-14);
  EXPECT_NEAR(scaling.lambda()[1], 6.0, 1e-14);
  // W v = sqrt(s/z) .* v.
  const Vector w1 = scaling.apply_w({1.0, 1.0});
  EXPECT_NEAR(w1[0], 2.0, 1e-14);
  EXPECT_NEAR(w1[1], 1.5, 1e-14);
}

TEST(NtScaling, SymmetricInSAndZAtIdentity) {
  // With s == z, W must be the identity and lambda == s.
  const ConeSpec cone(1, {3});
  NtScaling scaling(cone);
  const Vector s{2.0, 3.0, 1.0, -0.5};
  scaling.update(s, s);
  Vector v{0.7, -0.2, 0.9, 0.4};
  const Vector wv = scaling.apply_w(v);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(wv[i], v[i], 1e-12);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(scaling.lambda()[i], s[i], 1e-12);
  }
}

TEST(NtScaling, RejectsBoundaryPoints) {
  const ConeSpec cone(1, {3});
  NtScaling scaling(cone);
  EXPECT_THROW(scaling.update({0.0, 2.0, 1.0, 0.0}, {1.0, 2.0, 1.0, 0.0}),
               NumericalError);
  EXPECT_THROW(scaling.update({1.0, 1.0, 1.0, 0.0}, {1.0, 2.0, 1.0, 0.0}),
               NumericalError);
}

TEST(NtScaling, DualityMeasureInvariant) {
  // s'z is preserved by the scaling: lambda'lambda = s'z.
  const ConeSpec cone(2, {5});
  Rng rng(5);
  NtScaling scaling(cone);
  for (int trial = 0; trial < 20; ++trial) {
    const Vector s = interior_point(cone, rng);
    const Vector z = interior_point(cone, rng);
    scaling.update(s, z);
    EXPECT_NEAR(linalg::dot(scaling.lambda(), scaling.lambda()),
                linalg::dot(s, z), 1e-8 * (1.0 + linalg::dot(s, z)));
  }
}

}  // namespace
}  // namespace bbs::solver
