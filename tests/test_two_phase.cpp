// Tests for the two-phase baselines and their comparison with the joint
// computation — the motivation of the paper (Section I: separate phases
// cause false negatives or expensive iteration).
#include <gtest/gtest.h>

#include "bbs/common/assert.hpp"
#include "bbs/core/tradeoff.hpp"
#include "bbs/core/two_phase.hpp"
#include "bbs/gen/generators.hpp"
#include "testing/support.hpp"

namespace bbs::core {
namespace {

TEST(TwoPhase, BudgetFirstOnT1MatchesMinimalBudgets) {
  // Phase 1 picks the self-loop bound beta = 4; phase 2 then needs the full
  // 10-container buffer. Same as the joint optimum with cheap buffers.
  const model::Configuration config = gen::producer_consumer_t1();
  const MappingResult r = solve_budget_first(config);
  ASSERT_TRUE(r.feasible());
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.graphs[0].tasks[0].budget, 4);
  EXPECT_EQ(r.graphs[0].buffers[0].capacity, 10);
}

TEST(TwoPhase, BudgetFirstFalseNegativeUnderBufferCap) {
  // With the buffer capped at 6 containers, a joint solution exists
  // (beta ~ 13.06), but budget-first committed beta = 4, which needs 10
  // containers: phase 2 is infeasible. This is the paper's false-negative
  // scenario.
  model::Configuration config = gen::producer_consumer_t1();
  config.mutable_task_graph(0).set_max_capacity(0, 6);

  const MappingResult joint = compute_budgets_and_buffers(config);
  ASSERT_TRUE(joint.feasible());

  const MappingResult staged = solve_budget_first(config);
  EXPECT_FALSE(staged.feasible());
  EXPECT_EQ(staged.status, solver::SolveStatus::kPrimalInfeasible);
}

TEST(TwoPhase, BufferFirstMatchesJointAtSameCapacity) {
  // Fixing buffers at capacity d and minimising budgets must agree with the
  // joint solve under cap d (budgets dominate the objective).
  for (const linalg::Index d : {2, 5, 9}) {
    model::Configuration config = gen::producer_consumer_t1();
    config.mutable_task_graph(0).set_max_capacity(0, d);
    const MappingResult joint = compute_budgets_and_buffers(config);
    const MappingResult staged = solve_buffer_first(config, d);
    ASSERT_TRUE(joint.feasible());
    ASSERT_TRUE(staged.feasible());
    EXPECT_NEAR(staged.graphs[0].tasks[0].budget_continuous,
                joint.graphs[0].tasks[0].budget_continuous,
                1e-3 * joint.graphs[0].tasks[0].budget_continuous);
  }
}

TEST(TwoPhase, BufferFirstOverprovisionsMemory) {
  // Committing large buffers first wastes memory the joint solve would not:
  // fix capacity 10 where the joint optimum under the same memory would use
  // fewer containers with slightly larger budgets.
  testing::TwoTaskOptions opts;
  // Memory fits 6 containers (zeta = 1; (10): capacity <= 5 after +1 slack).
  opts.memory_capacity = 6.0;
  opts.size_weight = 1e-3;
  const model::Configuration config = testing::two_task_chain(opts);

  const MappingResult joint = compute_budgets_and_buffers(config);
  ASSERT_TRUE(joint.feasible());
  EXPECT_LE(joint.graphs[0].buffers[0].capacity, 5);

  // Buffer-first with capacity 10 violates the memory constraint: infeasible.
  const MappingResult staged = solve_buffer_first(config, 10);
  EXPECT_FALSE(staged.feasible());
  // Buffer-first with a feasible guess works but solves a harder budget
  // problem than necessary... choose 3: budgets ~ 26.5 vs joint's ~ 17.3.
  const MappingResult staged3 = solve_buffer_first(config, 3);
  ASSERT_TRUE(staged3.feasible());
  EXPECT_GT(staged3.graphs[0].tasks[0].budget_continuous,
            joint.graphs[0].tasks[0].budget_continuous + 5.0);
}

TEST(TwoPhase, JointNeverWorseThanEitherBaseline) {
  // Weighted objective of the joint optimum is <= both baselines' whenever
  // the baselines are feasible (continuous objectives compared).
  for (int d = 3; d <= 9; d += 3) {
    model::Configuration config = gen::three_stage_chain_t2();
    model::TaskGraph& tg = config.mutable_task_graph(0);
    tg.set_max_capacity(0, d);
    tg.set_max_capacity(1, d);

    const MappingResult joint = compute_budgets_and_buffers(config);
    ASSERT_TRUE(joint.feasible());

    // Tolerance covers the solver's relative accuracy (the baselines solve
    // smaller, better-conditioned programs).
    const double tol = 5e-3 * (1.0 + joint.objective_continuous);
    const MappingResult bud_first = solve_budget_first(config);
    if (bud_first.feasible()) {
      EXPECT_LE(joint.objective_continuous,
                bud_first.objective_continuous + tol);
    }
    const MappingResult buf_first = solve_buffer_first(config, d);
    if (buf_first.feasible()) {
      EXPECT_LE(joint.objective_continuous,
                buf_first.objective_continuous + tol);
    }
  }
}

TEST(TwoPhase, BufferFirstRespectsPerBufferCaps) {
  model::Configuration config = gen::producer_consumer_t1();
  config.mutable_task_graph(0).set_max_capacity(0, 4);
  const MappingResult r = solve_buffer_first(config, 100);
  ASSERT_TRUE(r.feasible());
  EXPECT_EQ(r.graphs[0].buffers[0].capacity, 4);  // clamped to the cap
}

TEST(TwoPhase, BufferFirstPreconditions) {
  const model::Configuration config = gen::producer_consumer_t1();
  EXPECT_THROW(solve_buffer_first(config, 0), ContractViolation);
}

}  // namespace
}  // namespace bbs::core
