// Shared test support: tolerance helpers and canned configurations.
//
// The individual suites used to re-derive the same small fixtures — the
// paper's T1 producer-consumer system and ad-hoc two-task chains with one
// buffer — inline in each test. This header centralises them so a fixture
// tweak (or a schema change in model::Configuration) is one edit, not
// thirty.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "bbs/gen/generators.hpp"
#include "bbs/model/configuration.hpp"

namespace bbs::testing {

using linalg::Index;

// ---------------------------------------------------------------------------
// Tolerances
// ---------------------------------------------------------------------------

/// Default relative tolerance for comparing IPM solutions against closed-form
/// optima (the solver's duality-gap termination threshold dominates).
inline constexpr double kSolverRelTol = 1e-3;

/// Tight tolerance for exact linear-algebra identities (factor/solve
/// round-trips, cycle-ratio recomputation from an explicit cycle).
inline constexpr double kExactTol = 1e-9;

/// Predicate-formatter for BBS_EXPECT_NEAR_REL; evaluates each argument
/// exactly once. The max(1, |expected|) clamp is intentional: near zero a
/// purely relative tolerance would demand absurd absolute precision, so the
/// check degrades to an absolute tolerance of `rel` for |expected| < 1.
inline ::testing::AssertionResult NearRel(const char* actual_expr,
                                          const char* expected_expr,
                                          const char* rel_expr, double actual,
                                          double expected, double rel) {
  const double tol = rel * std::max(1.0, std::abs(expected));
  if (std::abs(actual - expected) <= tol) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << actual_expr << " = " << actual << " differs from " << expected_expr
         << " = " << expected << " by " << std::abs(actual - expected)
         << ", which exceeds " << rel_expr << " * max(1, |expected|) = " << tol;
}

/// EXPECT_NEAR with a tolerance relative to the expected magnitude:
/// |actual - expected| <= rel * max(1, |expected|).
#define BBS_EXPECT_NEAR_REL(actual, expected, rel) \
  EXPECT_PRED_FORMAT3(::bbs::testing::NearRel, actual, expected, rel)

// ---------------------------------------------------------------------------
// Canned configurations
// ---------------------------------------------------------------------------

/// The paper's T1 system (Section V): tasks wa/wb with chi = 1 on two
/// TDM processors with rho = 40, one unbounded buffer, period mu = 10.
/// Thin alias for gen::producer_consumer_t1 so tests depend on one spot.
inline model::Configuration paper_t1(double buffer_weight = 1e-3) {
  return gen::producer_consumer_t1(buffer_weight);
}

/// The paper's T2 system: a three-stage chain on three processors.
inline model::Configuration paper_t2(double buffer_weight = 1e-3) {
  return gen::three_stage_chain_t2(buffer_weight);
}

/// Options for the ubiquitous two-task, one-buffer fixture that most suites
/// build by hand. Defaults reproduce the ad-hoc "a -> b on p1/p2" graphs.
struct TwoTaskOptions {
  Index granularity = 1;
  double replenishment_interval = 40.0;
  double scheduling_overhead = 0.0;
  /// true: both tasks share one processor; false: one processor each.
  bool same_processor = false;
  double memory_capacity = -1.0;
  double required_period = 10.0;
  double wcet_a = 1.0;
  double wcet_b = 1.0;
  double budget_weight_a = 1.0;
  double budget_weight_b = 1.0;
  Index container_size = 1;
  Index initial_fill = 0;
  double size_weight = 1.0;
  /// -1 leaves the buffer capacity unbounded.
  Index max_capacity = -1;
};

/// Builds a validated configuration with one task graph "g": tasks "a" -> "b"
/// connected by buffer "ab" in memory "m".
model::Configuration two_task_chain(const TwoTaskOptions& opts = {});

/// A minimal *valid* configuration to mutate into invalid shapes in
/// negative-path tests: one processor, one memory, one single-task graph.
model::Configuration minimal_valid();

/// Options for the shared multi-graph sweep preset: two task graphs — a
/// three-stage "video" chain over p0 -> p1 -> p2 and a two-task "audio"
/// chain over p0 -> p2 — contending for processors p0/p2 and one memory.
/// Every buffer carries a finite max_capacity (`initial_cap`), so programs
/// built from the preset have capacity-cap rows and support the in-place
/// cap updates of SolverSession; sweeps then move the caps inside
/// [1, initial_cap] and beyond.
struct MultiGraphSweepOptions {
  double replenishment_interval = 40.0;
  double scheduling_overhead = 0.0;
  /// -1 leaves the shared memory unconstrained.
  double memory_capacity = -1.0;
  /// max_capacity applied to every buffer of both graphs.
  Index initial_cap = 8;
  double buffer_weight = 1e-3;
  double period_video = 12.0;
  double period_audio = 16.0;
  Index granularity = 1;
  /// false builds the video-only variant (the "audio job stopped" scenario
  /// of start/stop-style tests) on the identical platform.
  bool include_audio = true;
};

/// Builds the validated two-graph sweep preset described above.
model::Configuration multi_graph_sweep(const MultiGraphSweepOptions& opts = {});

}  // namespace bbs::testing
