#include "testing/support.hpp"

#include <utility>

namespace bbs::testing {

model::Configuration two_task_chain(const TwoTaskOptions& opts) {
  model::Configuration config(opts.granularity);
  const Index p1 = config.add_processor("p1", opts.replenishment_interval,
                                        opts.scheduling_overhead);
  const Index p2 = opts.same_processor
                       ? p1
                       : config.add_processor("p2",
                                              opts.replenishment_interval,
                                              opts.scheduling_overhead);
  const Index mem = config.add_memory("m", opts.memory_capacity);

  model::TaskGraph tg("g", opts.required_period);
  const Index a = tg.add_task("a", p1, opts.wcet_a, opts.budget_weight_a);
  const Index b = tg.add_task("b", p2, opts.wcet_b, opts.budget_weight_b);
  const Index ab = tg.add_buffer("ab", a, b, mem, opts.container_size,
                                 opts.initial_fill, opts.size_weight);
  if (opts.max_capacity != -1) {
    tg.set_max_capacity(ab, opts.max_capacity);
  }
  config.add_task_graph(std::move(tg));
  config.validate();
  return config;
}

model::Configuration multi_graph_sweep(const MultiGraphSweepOptions& opts) {
  model::Configuration config(opts.granularity);
  const Index p0 = config.add_processor("p0", opts.replenishment_interval,
                                        opts.scheduling_overhead);
  const Index p1 = config.add_processor("p1", opts.replenishment_interval,
                                        opts.scheduling_overhead);
  const Index p2 = config.add_processor("p2", opts.replenishment_interval,
                                        opts.scheduling_overhead);
  const Index mem = config.add_memory("m", opts.memory_capacity);

  {
    model::TaskGraph video("video", opts.period_video);
    const Index a = video.add_task("v_dec", p0, 1.0);
    const Index b = video.add_task("v_scale", p1, 1.0);
    const Index c = video.add_task("v_out", p2, 1.0);
    const Index ab = video.add_buffer("v_ab", a, b, mem, 1, 0,
                                      opts.buffer_weight);
    const Index bc = video.add_buffer("v_bc", b, c, mem, 1, 0,
                                      opts.buffer_weight);
    video.set_max_capacity(ab, opts.initial_cap);
    video.set_max_capacity(bc, opts.initial_cap);
    config.add_task_graph(std::move(video));
  }
  if (opts.include_audio) {
    model::TaskGraph audio("audio", opts.period_audio);
    const Index a = audio.add_task("a_dec", p0, 1.0);
    const Index b = audio.add_task("a_out", p2, 1.0);
    const Index ab = audio.add_buffer("a_ab", a, b, mem, 1, 0,
                                      opts.buffer_weight);
    audio.set_max_capacity(ab, opts.initial_cap);
    config.add_task_graph(std::move(audio));
  }
  config.validate();
  return config;
}

model::Configuration minimal_valid() {
  model::Configuration config(1);
  const Index p = config.add_processor("p", 40.0);
  config.add_memory("m", -1.0);
  model::TaskGraph tg("g", 10.0);
  tg.add_task("a", p, 1.0);
  config.add_task_graph(std::move(tg));
  config.validate();
  return config;
}

}  // namespace bbs::testing
