// Shared response normalisation for golden-output comparisons.
//
// Two executions of one request legitimately differ only in wall-clock
// diagnostics (wall_ms/queue_ms/solve_ms) and, for traced requests, the
// process-unique trace id. Tests that compare serialised responses across
// runs — in-order reassembly, restart determinism, socket-vs-stdio parity —
// strip exactly those fields here, so the list lives in one place (the
// shell-side twin is BASE_NORMALISE in scripts/daemon_smoke.sh).
#pragma once

#include <string>

#include "bbs/api/response.hpp"
#include "bbs/io/api_io.hpp"
#include "bbs/io/json.hpp"

namespace bbs::testing {

/// Serialises a response with the run-variant diagnostics zeroed: wall-clock
/// timings set to 0 and the trace id (present only when the request opted
/// into tracing) cleared.
inline std::string normalised(api::Response response) {
  response.diagnostics.wall_ms = 0.0;
  response.diagnostics.queue_ms = 0.0;
  response.diagnostics.solve_ms = 0.0;
  response.diagnostics.trace_id.clear();
  return io::write_json_compact(io::response_to_json_value(response));
}

/// Parse-and-normalise for raw JSONL response lines.
inline std::string normalised_line(const std::string& line) {
  return normalised(io::response_from_json(line));
}

}  // namespace bbs::testing
