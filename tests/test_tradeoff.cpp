// Tests for the budget/buffer trade-off sweep (the machinery behind Figures
// 2(a), 2(b) and 3 of the paper).
#include <gtest/gtest.h>

#include <stdexcept>

#include "bbs/common/assert.hpp"
#include "bbs/core/tradeoff.hpp"
#include "bbs/gen/generators.hpp"
#include "testing/support.hpp"

namespace bbs::core {
namespace {

TEST(Tradeoff, T1SweepIsMonotoneDecreasingAndConvex) {
  model::Configuration config = gen::producer_consumer_t1();
  const TradeoffSweep sweep = sweep_max_capacity(config, 0, 1, 10);
  ASSERT_EQ(sweep.points.size(), 10u);
  for (const TradeoffPoint& p : sweep.points) {
    ASSERT_TRUE(p.feasible) << "capacity " << p.max_capacity;
  }
  // Monotone decreasing budgets (Figure 2(a)).
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    EXPECT_LE(sweep.points[i].total_budget_continuous,
              sweep.points[i - 1].total_budget_continuous + 1e-6);
  }
  // The marginal saving per extra container decreases (Figure 2(b)):
  // the non-linearity of the trade-off.
  const linalg::Vector deltas = sweep.budget_deltas();
  ASSERT_EQ(deltas.size(), 9u);
  for (std::size_t i = 1; i < deltas.size(); ++i) {
    EXPECT_LE(deltas[i], deltas[i - 1] + 1e-4);
  }
  EXPECT_GT(deltas.front(), 4.0);  // ~4.83 Mcycles for the 2nd container
  EXPECT_LT(deltas.back(), 1.0);   // ~0.30 for the 10th
}

TEST(Tradeoff, SweepRestoresOriginalCaps) {
  model::Configuration config = gen::producer_consumer_t1();
  config.mutable_task_graph(0).set_max_capacity(0, 7);
  sweep_max_capacity(config, 0, 1, 3);
  EXPECT_EQ(config.task_graph(0).buffer(0).max_capacity, 7);
}

TEST(Tradeoff, SweepRestoresCapsWhenThrowingMidSweep) {
  // A throw from inside the sweep loop (here: the per-point callback, the
  // supported way to abort a long sweep) must not leave the caller's
  // configuration with sweep-mutated caps.
  model::Configuration config = gen::producer_consumer_t1();
  config.mutable_task_graph(0).set_max_capacity(0, 7);
  int points_seen = 0;
  const auto abort_at_second_point = [&](const TradeoffPoint& point) {
    EXPECT_TRUE(point.feasible);
    if (++points_seen == 2) throw std::runtime_error("abort sweep");
  };
  EXPECT_THROW(
      sweep_max_capacity(config, 0, 1, 10, {}, abort_at_second_point),
      std::runtime_error);
  EXPECT_EQ(points_seen, 2);
  EXPECT_EQ(config.task_graph(0).buffer(0).max_capacity, 7);
}

TEST(Tradeoff, SweepSharesOneSymbolicFactorisationViaCallback) {
  // The sweep must not rebuild solver state between points: consecutive
  // feasible points arrive strictly ordered, one per capacity.
  model::Configuration config = gen::producer_consumer_t1();
  Index expected_cap = 1;
  const TradeoffSweep sweep = sweep_max_capacity(
      config, 0, 1, 6, {}, [&](const TradeoffPoint& point) {
        EXPECT_EQ(point.max_capacity, expected_cap++);
      });
  EXPECT_EQ(expected_cap, 7);
  EXPECT_EQ(sweep.points.size(), 6u);
}

TEST(Tradeoff, InfeasiblePointsMarked) {
  // mu = 2.2 on T1 makes capacity 1 infeasible (needs beta > 39) while
  // larger capacities work.
  testing::TwoTaskOptions opts;
  opts.required_period = 2.2;
  opts.size_weight = 1e-3;
  model::Configuration config = testing::two_task_chain(opts);

  const TradeoffSweep sweep = sweep_max_capacity(config, 0, 1, 40);
  ASSERT_EQ(sweep.points.size(), 40u);
  EXPECT_FALSE(sweep.points.front().feasible);
  EXPECT_TRUE(sweep.points.back().feasible);
  // Feasibility is monotone in the capacity bound.
  bool seen_feasible = false;
  for (const TradeoffPoint& p : sweep.points) {
    if (seen_feasible) {
      EXPECT_TRUE(p.feasible);
    }
    seen_feasible = seen_feasible || p.feasible;
  }
  EXPECT_TRUE(seen_feasible);
  // Deltas skip infeasible prefixes.
  EXPECT_LT(sweep.budget_deltas().size(), 39u);
}

TEST(Tradeoff, T2MiddleTaskReducedLast) {
  // Figure 3: sweeping both caps of the three-stage chain, the outer tasks'
  // budgets drop below the middle task's budget as soon as capacity allows.
  model::Configuration config = gen::three_stage_chain_t2();
  const TradeoffSweep sweep = sweep_max_capacity(config, 0, 1, 10);
  for (const TradeoffPoint& p : sweep.points) {
    ASSERT_TRUE(p.feasible);
    const double beta_a = p.budgets_continuous[0];
    const double beta_b = p.budgets_continuous[1];
    const double beta_c = p.budgets_continuous[2];
    EXPECT_NEAR(beta_a, beta_c, 1e-3 * (beta_a + 1.0));
    EXPECT_GE(beta_b, beta_a - 1e-6);
  }
  // At small capacity the gap is pronounced; it closes by capacity 10 when
  // every budget reaches the self-loop bound 4.
  EXPECT_GT(sweep.points[2].budgets_continuous[1] -
                sweep.points[2].budgets_continuous[0],
            1.0);
  EXPECT_NEAR(sweep.points[9].budgets_continuous[1], 4.0, 0.2);
}

TEST(Tradeoff, RejectsBadRange) {
  model::Configuration config = gen::producer_consumer_t1();
  EXPECT_THROW(sweep_max_capacity(config, 0, 0, 5), ContractViolation);
  EXPECT_THROW(sweep_max_capacity(config, 0, 4, 2), ContractViolation);
}

}  // namespace
}  // namespace bbs::core
