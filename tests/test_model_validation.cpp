// Negative-path tests for configuration validation: every invalid shape must
// be rejected with a diagnostic-carrying exception, never an abort or crash.
//
// Rejection happens in two layers (see common/assert.hpp):
//  * construction-time contracts on the builder API (Configuration::add_*,
//    TaskGraph::add_*) throw ContractViolation immediately;
//  * Configuration::validate (model/validation.cpp) catches cross-entity
//    problems the builders cannot see locally (dangling references, overhead
//    vs. interval, empty graphs) and throws ModelError naming the entity.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "bbs/common/assert.hpp"
#include "bbs/model/configuration.hpp"
#include "testing/support.hpp"

namespace bbs::model {
namespace {

using bbs::testing::minimal_valid;

/// Expects validate() to throw ModelError whose message contains `needle`.
void expect_rejected(const Configuration& config, const std::string& needle) {
  try {
    config.validate();
    FAIL() << "expected ModelError mentioning '" << needle << "'";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic was: " << e.what();
  }
}

/// Expects `fn` to throw ContractViolation whose message contains `needle`.
template <typename Fn>
void expect_contract(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected ContractViolation mentioning '" << needle << "'";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic was: " << e.what();
  }
}

TEST(Validation, MinimalConfigurationIsValid) {
  EXPECT_NO_THROW(minimal_valid().validate());
}

// ---------------------------------------------------------------------------
// Construction-time contracts
// ---------------------------------------------------------------------------

TEST(Validation, RejectsNonPositiveGranularity) {
  expect_contract([] { Configuration config(0); }, "granularity");
  expect_contract([] { Configuration config(-3); }, "granularity");
}

TEST(Validation, RejectsNonPositiveReplenishmentInterval) {
  Configuration config(1);
  expect_contract([&] { config.add_processor("p", 0.0); },
                  "replenishment interval");
  expect_contract([&] { config.add_processor("p", -40.0); },
                  "replenishment interval");
}

TEST(Validation, RejectsNegativeSchedulingOverhead) {
  Configuration config(1);
  expect_contract([&] { config.add_processor("p", 40.0, -1.0); },
                  "scheduling overhead");
}

TEST(Validation, RejectsNegativeMemoryCapacity) {
  Configuration config(1);
  expect_contract([&] { config.add_memory("m", -2.0); }, "capacity");
}

TEST(Validation, RejectsNonPositiveRequiredPeriod) {
  expect_contract([] { TaskGraph tg("g", 0.0); }, "period");
  expect_contract([] { TaskGraph tg("g", -10.0); }, "period");
}

TEST(Validation, RejectsNonPositiveWcet) {
  TaskGraph tg("g", 10.0);
  expect_contract([&] { tg.add_task("a", 0, 0.0); }, "WCET");
  expect_contract([&] { tg.add_task("a", 0, -1.0); }, "WCET");
}

TEST(Validation, RejectsDanglingBufferEndpoints) {
  TaskGraph tg("g", 10.0);
  const Index a = tg.add_task("a", 0, 1.0);
  expect_contract([&] { tg.add_buffer("ab", Index{9}, a, 0); }, "producer");
  expect_contract([&] { tg.add_buffer("ab", a, Index{9}, 0); }, "consumer");
}

TEST(Validation, RejectsNonPositiveContainerSize) {
  TaskGraph tg("g", 10.0);
  const Index a = tg.add_task("a", 0, 1.0);
  const Index b = tg.add_task("b", 0, 1.0);
  expect_contract([&] { tg.add_buffer("ab", a, b, 0, /*container_size=*/0); },
                  "container size");
}

TEST(Validation, RejectsNegativeInitialFill) {
  TaskGraph tg("g", 10.0);
  const Index a = tg.add_task("a", 0, 1.0);
  const Index b = tg.add_task("b", 0, 1.0);
  expect_contract(
      [&] { tg.add_buffer("ab", a, b, 0, 1, /*initial_fill=*/-1); },
      "initial fill");
}

TEST(Validation, RejectsInvalidMaxCapacity) {
  TaskGraph tg("g", 10.0);
  const Index a = tg.add_task("a", 0, 1.0);
  const Index b = tg.add_task("b", 0, 1.0);
  const Index ab = tg.add_buffer("ab", a, b, 0);
  expect_contract([&] { tg.set_max_capacity(ab, 0); }, "capacity");
}

// ---------------------------------------------------------------------------
// validate(): cross-entity problems the builders cannot see locally
// ---------------------------------------------------------------------------

TEST(Validation, RejectsOverheadConsumingWholeInterval) {
  // add_processor only requires overhead >= 0; only validate() can relate it
  // to the interval.
  Configuration config(1);
  config.add_processor("p", 40.0, 40.0);
  expect_rejected(config, "scheduling overhead");
}

TEST(Validation, RejectsEmptyTaskGraph) {
  Configuration config(1);
  config.add_processor("p", 40.0);
  config.add_task_graph(TaskGraph("g", 10.0));
  expect_rejected(config, "no tasks");
}

TEST(Validation, RejectsDanglingProcessorReference) {
  // add_task only checks processor >= 0; the range is configuration-level.
  Configuration config(1);
  config.add_processor("p", 40.0);
  TaskGraph tg("g", 10.0);
  tg.add_task("a", /*processor=*/7, 1.0);
  config.add_task_graph(std::move(tg));
  expect_rejected(config, "processor reference out of range");
}

TEST(Validation, RejectsDanglingMemoryReference) {
  Configuration config(1);
  const Index p = config.add_processor("p", 40.0);
  TaskGraph tg("g", 10.0);
  const Index a = tg.add_task("a", p, 1.0);
  const Index b = tg.add_task("b", p, 1.0);
  tg.add_buffer("ab", a, b, /*memory=*/3);
  config.add_task_graph(std::move(tg));
  expect_rejected(config, "memory reference out of range");
}

TEST(Validation, RejectsInitialFillBeyondMaxCapacity) {
  Configuration config(1);
  const Index p = config.add_processor("p", 40.0);
  const Index m = config.add_memory("m", -1.0);
  TaskGraph tg("g", 10.0);
  const Index a = tg.add_task("a", p, 1.0);
  const Index b = tg.add_task("b", p, 1.0);
  const Index ab = tg.add_buffer("ab", a, b, m, 1, /*initial_fill=*/5);
  tg.set_max_capacity(ab, 3);
  config.add_task_graph(std::move(tg));
  expect_rejected(config, "initial fill exceeds");
}

TEST(Validation, DiagnosticNamesTheOffendingEntity) {
  Configuration config(1);
  config.add_processor("dsp0", 40.0, 40.0);
  expect_rejected(config, "processor 'dsp0'");
}

TEST(Validation, ValidateDoesNotMutate) {
  Configuration config = minimal_valid();
  const Index before = config.num_task_graphs();
  EXPECT_NO_THROW(config.validate());
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.num_task_graphs(), before);
}

}  // namespace
}  // namespace bbs::model
