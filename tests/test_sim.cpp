// Tests for the TDM multiprocessor simulator: the slice-advance arithmetic,
// back-pressure semantics, deadlock detection, and the central conservative-
// ness property — allocations computed by Algorithm 1 sustain the required
// period in simulation.
#include <gtest/gtest.h>

#include "bbs/common/assert.hpp"
#include "bbs/core/budget_buffer_solver.hpp"
#include "bbs/gen/generators.hpp"
#include "bbs/sim/tdm_simulator.hpp"
#include "bbs/sim/trace.hpp"

namespace bbs::sim {
namespace {

TEST(TdmAdvance, WithinFirstWindow) {
  // Wheel 10, slice [2, 5): start at t=2 with 2 units of work -> done at 4.
  EXPECT_DOUBLE_EQ(tdm_advance(2.0, 2.0, 10.0, 2.0, 3.0), 4.0);
  // Start before the window: waits for the slice.
  EXPECT_DOUBLE_EQ(tdm_advance(0.0, 1.0, 10.0, 2.0, 3.0), 3.0);
}

TEST(TdmAdvance, SpansMultipleWheels) {
  // Slice of 3 per wheel of 10; 7 units of work starting at the slice start:
  // 3 in window 1 (ends 5), 3 in window 2 (ends 15), 1 in window 3 -> 23.
  EXPECT_DOUBLE_EQ(tdm_advance(2.0, 7.0, 10.0, 2.0, 3.0), 23.0);
}

TEST(TdmAdvance, ExactWindowBoundary) {
  // Exactly one window of work: finishes at the window end.
  EXPECT_DOUBLE_EQ(tdm_advance(2.0, 3.0, 10.0, 2.0, 3.0), 5.0);
  // Exactly two windows.
  EXPECT_DOUBLE_EQ(tdm_advance(2.0, 6.0, 10.0, 2.0, 3.0), 15.0);
}

TEST(TdmAdvance, StartMidWindowOrAfter) {
  // Start inside the window with more work than remains there.
  EXPECT_DOUBLE_EQ(tdm_advance(4.0, 2.0, 10.0, 2.0, 3.0), 13.0);
  // Start past the window: rolls to the next wheel.
  EXPECT_DOUBLE_EQ(tdm_advance(6.0, 1.0, 10.0, 2.0, 3.0), 13.0);
}

TEST(TdmAdvance, ZeroWork) {
  EXPECT_DOUBLE_EQ(tdm_advance(7.5, 0.0, 10.0, 2.0, 3.0), 7.5);
}

TEST(TdmAdvance, FullWheelSlice) {
  // Slice == wheel: continuous execution.
  EXPECT_DOUBLE_EQ(tdm_advance(3.0, 12.5, 10.0, 0.0, 10.0), 15.5);
}

TEST(TdmAdvance, Preconditions) {
  EXPECT_THROW(tdm_advance(0.0, 1.0, 10.0, 8.0, 3.0), ContractViolation);
  EXPECT_THROW(tdm_advance(0.0, -1.0, 10.0, 0.0, 3.0), ContractViolation);
}

TEST(TdmAdvanceWindows, MatchesSingleSliceAdvance) {
  const std::vector<SliceWindow> one{{2.0, 3.0}};
  for (const double t : {0.0, 2.0, 3.5, 6.0, 17.2}) {
    for (const double work : {0.5, 3.0, 7.0, 12.0}) {
      EXPECT_NEAR(tdm_advance_windows(t, work, 10.0, one),
                  tdm_advance(t, work, 10.0, 2.0, 3.0), 1e-9)
          << "t=" << t << " work=" << work;
    }
  }
}

TEST(TdmAdvanceWindows, TwoWindowsPerWheel) {
  // Windows [1,2) and [5,7): 3 cycles of service per wheel of 10.
  const std::vector<SliceWindow> w{{1.0, 1.0}, {5.0, 2.0}};
  // 1 cycle starting at 0: served in [1,2).
  EXPECT_DOUBLE_EQ(tdm_advance_windows(0.0, 1.0, 10.0, w), 2.0);
  // 2 cycles: one in [1,2), one in [5,6).
  EXPECT_DOUBLE_EQ(tdm_advance_windows(0.0, 2.0, 10.0, w), 6.0);
  // 3 cycles: exactly one wheel's service, ends at 7.
  EXPECT_DOUBLE_EQ(tdm_advance_windows(0.0, 3.0, 10.0, w), 7.0);
  // 4 cycles: next wheel's first window.
  EXPECT_DOUBLE_EQ(tdm_advance_windows(0.0, 4.0, 10.0, w), 12.0);
  // 7 cycles = 2 wheels + 1: ends in wheel 2's first window.
  EXPECT_DOUBLE_EQ(tdm_advance_windows(0.0, 7.0, 10.0, w), 22.0);
  // Start mid-second-window.
  EXPECT_DOUBLE_EQ(tdm_advance_windows(6.0, 1.0, 10.0, w), 7.0);
  EXPECT_DOUBLE_EQ(tdm_advance_windows(6.5, 1.0, 10.0, w), 11.5);
}

TEST(TdmAdvanceWindows, RejectsBadWindows) {
  EXPECT_THROW(tdm_advance_windows(0.0, 1.0, 10.0, {}), ContractViolation);
  EXPECT_THROW(
      tdm_advance_windows(0.0, 1.0, 10.0, {{8.0, 3.0}}),  // exceeds wheel
      ContractViolation);
  EXPECT_THROW(
      tdm_advance_windows(0.0, 1.0, 10.0, {{2.0, 3.0}, {4.0, 1.0}}),
      ContractViolation);  // overlap
}

model::Configuration t1() { return gen::producer_consumer_t1(); }

TEST(TdmSimulator, ScatteredPlacementStillMeetsPeriod) {
  // The dataflow model covers every budget scheduler that guarantees beta
  // per wheel; slotted TDM is one of them.
  const model::Configuration config = t1();
  const core::MappingResult r = core::compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible());
  const std::vector<Vector> budgets{
      {static_cast<double>(r.graphs[0].tasks[0].budget),
       static_cast<double>(r.graphs[0].tasks[1].budget)}};
  const std::vector<std::vector<Index>> caps{{r.graphs[0].buffers[0].capacity}};
  SimOptions opts;
  opts.placement = SlicePlacement::kScattered;
  opts.quantum = 1.0;
  const SimResult sim = simulate_tdm(config, budgets, caps, opts);
  ASSERT_FALSE(sim.graphs[0].deadlocked);
  EXPECT_LE(sim.graphs[0].measured_period,
            config.task_graph(0).required_period() + 1e-9);
  EXPECT_TRUE(core::simulation_within_pas_bound(config, 0, budgets[0],
                                                caps[0], sim.graphs[0]));
}

TEST(TdmSimulator, ScatteredNoSlowerThanModelAllows) {
  // Scattered slices typically serve work *earlier* than the contiguous
  // worst case; both must stay within the PAS bound, and the multi-job
  // preset must stay schedulable under either placement.
  const model::Configuration config = gen::car_entertainment_preset();
  const core::MappingResult r = core::compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible());
  std::vector<Vector> budgets;
  std::vector<std::vector<Index>> caps;
  for (const auto& mg : r.graphs) {
    Vector b;
    std::vector<Index> c;
    for (const auto& t : mg.tasks) b.push_back(static_cast<double>(t.budget));
    for (const auto& buf : mg.buffers) c.push_back(buf.capacity);
    budgets.push_back(std::move(b));
    caps.push_back(std::move(c));
  }
  for (const SlicePlacement placement :
       {SlicePlacement::kContiguous, SlicePlacement::kScattered}) {
    SimOptions opts;
    opts.placement = placement;
    const SimResult sim = simulate_tdm(config, budgets, caps, opts);
    for (std::size_t gi = 0; gi < sim.graphs.size(); ++gi) {
      ASSERT_FALSE(sim.graphs[gi].deadlocked);
      EXPECT_TRUE(core::simulation_within_pas_bound(
          config, static_cast<Index>(gi), budgets[gi], caps[gi],
          sim.graphs[gi]));
    }
  }
}

TEST(TdmSimulator, MeetsPeriodWithComputedAllocation) {
  const model::Configuration config = t1();
  const core::MappingResult r = core::compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible());

  const std::vector<Vector> budgets{
      {static_cast<double>(r.graphs[0].tasks[0].budget),
       static_cast<double>(r.graphs[0].tasks[1].budget)}};
  const std::vector<std::vector<Index>> caps{{r.graphs[0].buffers[0].capacity}};
  const SimResult sim = simulate_tdm(config, budgets, caps);
  ASSERT_FALSE(sim.graphs[0].deadlocked);
  EXPECT_LE(sim.graphs[0].measured_period,
            config.task_graph(0).required_period() + 1e-9);
}

TEST(TdmSimulator, BackPressureThrottlesProducer) {
  // Capacity 1 with a slow consumer: the producer cannot run ahead.
  const model::Configuration config = t1();
  const std::vector<Vector> budgets{{39.0, 5.0}};
  const std::vector<std::vector<Index>> caps{{1}};
  const SimResult sim = simulate_tdm(config, budgets, caps);
  ASSERT_FALSE(sim.graphs[0].deadlocked);
  const TaskTrace& prod = sim.graphs[0].tasks[0];
  const TaskTrace& cons = sim.graphs[0].tasks[1];
  // The k-th production can only start after the (k-1)-th consumption
  // finished (capacity 1).
  for (std::size_t k = 1; k < prod.start.size(); ++k) {
    EXPECT_GE(prod.start[k] + 1e-9, cons.finish[k - 1]);
  }
}

TEST(TdmSimulator, ZeroCapacityCycleDeadlocks) {
  // Two tasks exchanging data in both directions with all-empty one-capacity
  // buffers in a cycle: iota=0 data edges both ways -> same-k cycle.
  model::Configuration config(1);
  const auto p1 = config.add_processor("p1", 40.0);
  const auto p2 = config.add_processor("p2", 40.0);
  const auto mem = config.add_memory("m", -1.0);
  model::TaskGraph tg("dl", 10.0);
  const auto a = tg.add_task("a", p1, 1.0);
  const auto b = tg.add_task("b", p2, 1.0);
  tg.add_buffer("ab", a, b, mem, 1, 0);
  tg.add_buffer("ba", b, a, mem, 1, 0);
  config.add_task_graph(std::move(tg));

  const SimResult sim =
      simulate_tdm(config, {{10.0, 10.0}}, {{1, 1}});
  EXPECT_TRUE(sim.graphs[0].deadlocked);
  // One initial token on the return path resolves it.
  model::Configuration fixed = config;
  fixed.mutable_task_graph(0).mutable_buffer(1).initial_fill = 1;
  const SimResult sim2 = simulate_tdm(fixed, {{10.0, 10.0}}, {{1, 1}});
  EXPECT_FALSE(sim2.graphs[0].deadlocked);
}

TEST(TdmSimulator, ShorterExecutionTimesNeverSlower) {
  // Monotonicity in practice: scaling all execution times down cannot
  // increase the measured period.
  const model::Configuration config = t1();
  const std::vector<Vector> budgets{{10.0, 10.0}};
  const std::vector<std::vector<Index>> caps{{4}};
  SimOptions full;
  SimOptions quick;
  quick.execution_time_scale = 0.5;
  const double p_full =
      simulate_tdm(config, budgets, caps, full).graphs[0].measured_period;
  const double p_quick =
      simulate_tdm(config, budgets, caps, quick).graphs[0].measured_period;
  EXPECT_LE(p_quick, p_full + 1e-9);
}

TEST(TdmSimulator, RandomisedExecutionTimesStayConservative) {
  const model::Configuration config = t1();
  const core::MappingResult r = core::compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible());
  const std::vector<Vector> budgets{
      {static_cast<double>(r.graphs[0].tasks[0].budget),
       static_cast<double>(r.graphs[0].tasks[1].budget)}};
  const std::vector<std::vector<Index>> caps{{r.graphs[0].buffers[0].capacity}};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SimOptions opts;
    opts.randomise_execution_times = true;
    opts.seed = seed;
    const SimResult sim = simulate_tdm(config, budgets, caps, opts);
    ASSERT_FALSE(sim.graphs[0].deadlocked);
    EXPECT_LE(sim.graphs[0].measured_period,
              config.task_graph(0).required_period() + 1e-9);
  }
}

TEST(TdmSimulator, BudgetsOverflowingWheelRejected) {
  const model::Configuration config = t1();
  EXPECT_THROW(simulate_tdm(config, {{41.0, 5.0}}, {{4}}), ModelError);
}

TEST(TdmSimulator, MultiJobSlicesDisjoint) {
  // Two jobs sharing a processor: their slices must not overlap, which shows
  // up as both meeting their periods with the isolation the budgets promise.
  const model::Configuration config = gen::car_entertainment_preset();
  const core::MappingResult r = core::compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible());
  std::vector<Vector> budgets;
  std::vector<std::vector<Index>> caps;
  for (const core::MappedGraph& mg : r.graphs) {
    Vector b;
    for (const auto& t : mg.tasks) b.push_back(static_cast<double>(t.budget));
    std::vector<Index> c;
    for (const auto& buf : mg.buffers) c.push_back(buf.capacity);
    budgets.push_back(std::move(b));
    caps.push_back(std::move(c));
  }
  const SimResult sim = simulate_tdm(config, budgets, caps);
  for (std::size_t gi = 0; gi < sim.graphs.size(); ++gi) {
    ASSERT_FALSE(sim.graphs[gi].deadlocked);
    EXPECT_LE(sim.graphs[gi].measured_period,
              config.task_graph(static_cast<Index>(gi)).required_period() +
                  1e-9);
  }
}

TEST(Trace, PeriodAndJitter) {
  TaskTrace t;
  for (int k = 0; k < 10; ++k) {
    t.start.push_back(3.0 * k);
    t.finish.push_back(3.0 * k + 1.0);
  }
  EXPECT_NEAR(measured_period(t, 2), 3.0, 1e-12);
  EXPECT_NEAR(period_jitter(t, 2), 0.0, 1e-12);
  EXPECT_GT(busy_fraction(t), 0.3);
}

TEST(Trace, CsvShape) {
  GraphSimResult r;
  r.tasks.resize(1);
  r.tasks[0].start = {0.0, 2.0};
  r.tasks[0].finish = {1.0, 3.0};
  const std::string csv = to_csv(r);
  EXPECT_NE(csv.find("task,k,start,finish"), std::string::npos);
  EXPECT_NE(csv.find("0,1,2.000000,3.000000"), std::string::npos);
}

}  // namespace
}  // namespace bbs::sim
