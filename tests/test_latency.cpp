// Tests for the end-to-end latency bounds: hand-computable cases, the
// simulator never exceeding the bound, and behaviour on infeasible inputs.
#include <gtest/gtest.h>

#include "bbs/core/budget_buffer_solver.hpp"
#include "bbs/core/latency.hpp"
#include "bbs/gen/generators.hpp"
#include "bbs/sim/tdm_simulator.hpp"

namespace bbs::core {
namespace {

TEST(Latency, SingleTaskGraph) {
  // One task, no buffers: latency bound is the response time of the task
  // under its budget scheduler: (rho - beta) + rho*chi/beta.
  model::Configuration config(1);
  const auto p = config.add_processor("p", 40.0);
  config.add_memory("m", -1.0);
  model::TaskGraph tg("solo", 10.0);
  tg.add_task("t", p, 1.0);
  config.add_task_graph(std::move(tg));

  const Vector budgets{8.0};
  const auto lat = compute_latency_bounds(config, 0, budgets, {});
  ASSERT_TRUE(lat.has_value());
  ASSERT_EQ(lat->pairs.size(), 1u);
  EXPECT_EQ(lat->pairs[0].source, 0);
  EXPECT_EQ(lat->pairs[0].sink, 0);
  // s(v1) = 0, s(v2) >= s(v1) + (40-8) = 32 (least PAS), finish = 32 + 5.
  EXPECT_NEAR(lat->worst, 37.0, 1e-9);
}

TEST(Latency, PipelineAddsStageDelays) {
  const model::Configuration config = gen::producer_consumer_t1();
  // beta = 8 needs ceil(74/10) = 8 containers to sustain mu = 10.
  const Vector budgets{8.0, 8.0};
  const std::vector<Index> caps{8};
  const auto lat = compute_latency_bounds(config, 0, budgets, caps);
  ASSERT_TRUE(lat.has_value());
  ASSERT_EQ(lat->pairs.size(), 1u);
  // Source wait starts at 0; sink exec starts no earlier than after the
  // producer's response: (40-8) + 5 + (40-8), finishing +5 later.
  EXPECT_NEAR(lat->worst, 32.0 + 5.0 + 32.0 + 5.0, 1e-9);
}

TEST(Latency, LargerBudgetsShrinkTheBound) {
  const model::Configuration config = gen::producer_consumer_t1();
  const std::vector<Index> caps{8};
  const auto small = compute_latency_bounds(config, 0, {8.0, 8.0}, caps);
  const auto large = compute_latency_bounds(config, 0, {20.0, 20.0}, caps);
  ASSERT_TRUE(small.has_value());
  ASSERT_TRUE(large.has_value());
  EXPECT_LT(large->worst, small->worst);
}

TEST(Latency, InfeasiblePeriodReturnsNullopt) {
  const model::Configuration config = gen::producer_consumer_t1();
  // beta = 2 violates the self-loop bound (needs >= 4): no PAS at mu = 10.
  EXPECT_FALSE(compute_latency_bounds(config, 0, {2.0, 2.0}, {6}).has_value());
}

TEST(Latency, SimulatedLatencyWithinBound) {
  // The k-th sink completion minus the k-th source start in the TDM
  // simulation must stay below the analytic bound (the PAS dominates the
  // self-timed execution).
  const model::Configuration config = gen::three_stage_chain_t2();
  const MappingResult r = compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible());
  Vector budgets;
  std::vector<Index> caps;
  for (const auto& t : r.graphs[0].tasks) {
    budgets.push_back(static_cast<double>(t.budget));
  }
  for (const auto& b : r.graphs[0].buffers) caps.push_back(b.capacity);

  const auto lat = compute_latency_bounds(config, 0, budgets, caps);
  ASSERT_TRUE(lat.has_value());

  const sim::SimResult s = sim::simulate_tdm(config, {budgets}, {caps});
  ASSERT_FALSE(s.graphs[0].deadlocked);
  const auto& source = s.graphs[0].tasks[0];
  const auto& sink = s.graphs[0].tasks[2];
  for (std::size_t k = 0; k < source.start.size(); ++k) {
    EXPECT_LE(sink.finish[k] - source.start[k], lat->worst + 1e-6);
  }
}

TEST(Latency, MultipleSourcesAndSinks) {
  // Split-join: one source, one sink, but tasks in between are neither.
  const model::Configuration config = gen::make_split_join(3, 1);
  const MappingResult r = compute_budgets_and_buffers(config);
  ASSERT_TRUE(r.feasible());
  Vector budgets;
  std::vector<Index> caps;
  for (const auto& t : r.graphs[0].tasks) {
    budgets.push_back(static_cast<double>(t.budget));
  }
  for (const auto& b : r.graphs[0].buffers) caps.push_back(b.capacity);
  const auto lat = compute_latency_bounds(config, 0, budgets, caps);
  ASSERT_TRUE(lat.has_value());
  ASSERT_EQ(lat->pairs.size(), 1u);  // src x sink
  EXPECT_GT(lat->worst, 0.0);
}

}  // namespace
}  // namespace bbs::core
