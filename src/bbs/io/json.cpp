#include "bbs/io/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "bbs/common/assert.hpp"

namespace bbs::io {

JsonValue& JsonObject::operator[](const std::string& key) {
  for (auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  entries_.emplace_back(key, JsonValue());
  return entries_.back().second;
}

const JsonValue& JsonObject::at(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  throw ModelError("json: missing key '" + key + "'");
}

bool JsonObject::contains(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

bool JsonValue::as_bool() const {
  if (!is_bool()) throw ModelError("json: value is not a boolean");
  return std::get<bool>(data_);
}

double JsonValue::as_number() const {
  if (!is_number()) throw ModelError("json: value is not a number");
  return std::get<double>(data_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) throw ModelError("json: value is not a string");
  return std::get<std::string>(data_);
}

const JsonArray& JsonValue::as_array() const {
  if (!is_array()) throw ModelError("json: value is not an array");
  return std::get<JsonArray>(data_);
}

JsonArray& JsonValue::as_array() {
  if (!is_array()) throw ModelError("json: value is not an array");
  return std::get<JsonArray>(data_);
}

const JsonObject& JsonValue::as_object() const {
  if (!is_object()) throw ModelError("json: value is not an object");
  return std::get<JsonObject>(data_);
}

JsonObject& JsonValue::as_object() {
  if (!is_object()) throw ModelError("json: value is not an object");
  return std::get<JsonObject>(data_);
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << "json parse error at line " << line << ", column " << col << ": "
       << what;
    throw ModelError(os.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char next() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(const char* lit) {
    std::size_t len = 0;
    while (lit[len] != '\0') ++len;
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return JsonValue(std::move(obj));
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return JsonValue(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (c == '\\') {
        const char e = next();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code += static_cast<unsigned>(h - 'A' + 10);
              else
                fail("invalid \\u escape");
            }
            // UTF-8 encode the basic-multilingual-plane code point
            // (surrogate pairs are not needed by this library's files).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("invalid escape sequence");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      fail("malformed number '" + token + "'");
    }
    return JsonValue(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void write_value(const JsonValue& v, std::string& out, int indent);

void write_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_number(double d, std::string& out) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

void write_indent(std::string& out, int indent) {
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

// indent < 0 selects the compact form: no padding or newlines anywhere
// (one document per line, as JSONL streams require).
void write_value(const JsonValue& v, std::string& out, int indent) {
  const bool compact = indent < 0;
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    write_number(v.as_number(), out);
  } else if (v.is_string()) {
    write_string(v.as_string(), out);
  } else if (v.is_array()) {
    const JsonArray& arr = v.as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += compact ? "[" : "[\n";
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (!compact) write_indent(out, indent + 1);
      write_value(arr[i], out, compact ? indent : indent + 1);
      if (i + 1 < arr.size()) out += ',';
      if (!compact) out += '\n';
    }
    if (!compact) write_indent(out, indent);
    out += ']';
  } else {
    const JsonObject& obj = v.as_object();
    if (obj.size() == 0) {
      out += "{}";
      return;
    }
    out += compact ? "{" : "{\n";
    const auto& entries = obj.entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (!compact) write_indent(out, indent + 1);
      write_string(entries[i].first, out);
      out += compact ? ":" : ": ";
      write_value(entries[i].second, out, compact ? indent : indent + 1);
      if (i + 1 < entries.size()) out += ',';
      if (!compact) out += '\n';
    }
    if (!compact) write_indent(out, indent);
    out += '}';
  }
}

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).parse(); }

std::string write_json(const JsonValue& value) {
  std::string out;
  write_value(value, out, 0);
  out += '\n';
  return out;
}

std::string write_json_compact(const JsonValue& value) {
  std::string out;
  write_value(value, out, /*indent=*/-1);
  return out;
}

}  // namespace bbs::io
