// Control-message framing of the JSONL service stream.
//
// A service-daemon connection carries two kinds of lines: ordinary
// service-API requests (io/api_io.hpp) and *control messages* — documents
// addressed to the daemon itself rather than the solver:
//
//   {"kind":"stats"}                  // ServiceStats snapshot
//   {"kind":"stats","id":"probe-7"}   // with the usual id echo
//   {"kind":"metrics"}                // Prometheus-style text exposition
//   {"kind":"set_config","max_in_flight":8,"default_deadline_ms":500}
//                                     // hot-reload runtime limits
//   {"kind":"trace"}                  // completed request traces, with
//   {"kind":"trace","trace_id":"...","request_kind":"solve",
//    "min_duration_ms":50,"errors_only":true,"limit":8}   // optional filters
//                                     // ("id" stays the correlation echo)
//
// Control messages deliberately reuse the request envelope (the same "kind"
// discriminator and optional "id"/"schema_version" fields), so one framing
// pass classifies every line; their responses reuse the response envelope
// with a control-specific "result" object. The stats *content* is owned by
// the service layer (service/dispatcher.hpp) — this header only frames it.
#pragma once

#include <optional>
#include <string>

#include "bbs/io/json.hpp"

namespace bbs::io {

/// Control messages the service daemon understands.
enum class ControlKind {
  kStats,      ///< snapshot of the daemon's per-worker ServiceStats
  kMetrics,    ///< Prometheus-style text exposition (wrapped in JSON)
  kSetConfig,  ///< hot-reload of runtime limits (quotas, deadlines, ...)
  kTrace,      ///< completed request traces from the trace ring buffer
};

const char* to_string(ControlKind kind);

/// Classifies one parsed JSONL line: the control kind when `doc` is a
/// control message, nullopt when the line should go through
/// request_from_json_value as an ordinary service request. Throws ModelError
/// when the document *is* a control message but its envelope is malformed
/// (unsupported schema_version, non-string id).
std::optional<ControlKind> control_kind(const JsonValue& doc);

/// Correlation id of a control message ("" when absent).
std::string control_id(const JsonValue& doc);

/// Wraps a control result into the service response envelope:
/// {"schema_version":1,"kind":<kind>,"id":<id>,"status":"ok","result":...} —
/// the same shape api_io gives solver responses, so stream consumers need a
/// single response schema.
JsonValue control_response_envelope(ControlKind kind, const std::string& id,
                                    JsonValue result);

}  // namespace bbs::io
