#include "bbs/io/config_io.hpp"

#include <cmath>
#include <limits>

#include "bbs/common/assert.hpp"
#include "bbs/io/json.hpp"
#include "bbs/solver/ipm_solver.hpp"

namespace bbs::io {

namespace {

using linalg::Index;

Index to_index(double d, const std::string& what) {
  return index_from_json(d, "configuration json: " + what);
}

Index find_by_name(const JsonArray& arr, const std::string& name,
                   const std::string& what) {
  for (std::size_t i = 0; i < arr.size(); ++i) {
    if (arr[i].as_object().at("name").as_string() == name) {
      return static_cast<Index>(i);
    }
  }
  throw ModelError("configuration json: unknown " + what + " '" + name + "'");
}

}  // namespace

Index index_from_json(double value, const std::string& what) {
  if (value != std::floor(value)) {
    throw ModelError(what + " must be an integer");
  }
  if (value < static_cast<double>(std::numeric_limits<Index>::min()) ||
      value > static_cast<double>(std::numeric_limits<Index>::max())) {
    throw ModelError(what + " is out of range");
  }
  return static_cast<Index>(value);
}

JsonValue configuration_to_json_value(const model::Configuration& config) {
  JsonObject root;
  root["granularity"] = JsonValue(static_cast<double>(config.granularity()));

  JsonArray procs;
  for (Index p = 0; p < config.num_processors(); ++p) {
    const model::Processor& proc = config.processor(p);
    JsonObject o;
    o["name"] = proc.name;
    o["replenishment_interval"] = proc.replenishment_interval;
    o["scheduling_overhead"] = proc.scheduling_overhead;
    procs.push_back(JsonValue(std::move(o)));
  }
  root["processors"] = JsonValue(std::move(procs));

  JsonArray mems;
  for (Index m = 0; m < config.num_memories(); ++m) {
    const model::Memory& mem = config.memory(m);
    JsonObject o;
    o["name"] = mem.name;
    o["capacity"] = mem.capacity;
    mems.push_back(JsonValue(std::move(o)));
  }
  root["memories"] = JsonValue(std::move(mems));

  JsonArray graphs;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    JsonObject g;
    g["name"] = tg.name();
    g["required_period"] = tg.required_period();

    JsonArray tasks;
    for (Index t = 0; t < tg.num_tasks(); ++t) {
      const model::Task& task = tg.task(t);
      JsonObject o;
      o["name"] = task.name;
      o["processor"] = config.processor(task.processor).name;
      o["wcet"] = task.wcet;
      o["budget_weight"] = task.budget_weight;
      tasks.push_back(JsonValue(std::move(o)));
    }
    g["tasks"] = JsonValue(std::move(tasks));

    JsonArray buffers;
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const model::Buffer& buf = tg.buffer(b);
      JsonObject o;
      o["name"] = buf.name;
      o["producer"] = tg.task(buf.producer).name;
      o["consumer"] = tg.task(buf.consumer).name;
      o["memory"] = config.memory(buf.memory).name;
      o["container_size"] = JsonValue(static_cast<double>(buf.container_size));
      o["initial_fill"] = JsonValue(static_cast<double>(buf.initial_fill));
      o["size_weight"] = buf.size_weight;
      o["max_capacity"] = JsonValue(static_cast<double>(buf.max_capacity));
      buffers.push_back(JsonValue(std::move(o)));
    }
    g["buffers"] = JsonValue(std::move(buffers));
    graphs.push_back(JsonValue(std::move(g)));
  }
  root["task_graphs"] = JsonValue(std::move(graphs));
  return JsonValue(std::move(root));
}

std::string configuration_to_json(const model::Configuration& config) {
  return write_json(configuration_to_json_value(config));
}

model::Configuration configuration_from_json_value(const JsonValue& doc) {
  const JsonObject& root = doc.as_object();

  model::Configuration config(
      to_index(root.at("granularity").as_number(), "granularity"));

  const JsonArray& procs = root.at("processors").as_array();
  for (const JsonValue& v : procs) {
    const JsonObject& o = v.as_object();
    config.add_processor(o.at("name").as_string(),
                         o.at("replenishment_interval").as_number(),
                         o.contains("scheduling_overhead")
                             ? o.at("scheduling_overhead").as_number()
                             : 0.0);
  }
  const JsonArray& mems = root.at("memories").as_array();
  for (const JsonValue& v : mems) {
    const JsonObject& o = v.as_object();
    config.add_memory(o.at("name").as_string(),
                      o.contains("capacity") ? o.at("capacity").as_number()
                                             : -1.0);
  }

  for (const JsonValue& gv : root.at("task_graphs").as_array()) {
    const JsonObject& g = gv.as_object();
    model::TaskGraph tg(g.at("name").as_string(),
                        g.at("required_period").as_number());
    const JsonArray& tasks = g.at("tasks").as_array();
    for (const JsonValue& tv : tasks) {
      const JsonObject& o = tv.as_object();
      tg.add_task(o.at("name").as_string(),
                  find_by_name(procs, o.at("processor").as_string(),
                               "processor"),
                  o.at("wcet").as_number(),
                  o.contains("budget_weight")
                      ? o.at("budget_weight").as_number()
                      : 1.0);
    }
    for (const JsonValue& bv : g.at("buffers").as_array()) {
      const JsonObject& o = bv.as_object();
      const Index id = tg.add_buffer(
          o.at("name").as_string(),
          find_by_name(tasks, o.at("producer").as_string(), "task"),
          find_by_name(tasks, o.at("consumer").as_string(), "task"),
          find_by_name(mems, o.at("memory").as_string(), "memory"),
          o.contains("container_size")
              ? to_index(o.at("container_size").as_number(), "container_size")
              : 1,
          o.contains("initial_fill")
              ? to_index(o.at("initial_fill").as_number(), "initial_fill")
              : 0,
          o.contains("size_weight") ? o.at("size_weight").as_number() : 1.0);
      if (o.contains("max_capacity")) {
        const Index cap = to_index(o.at("max_capacity").as_number(),
                                   "max_capacity");
        if (cap != -1) tg.set_max_capacity(id, cap);
      }
    }
    config.add_task_graph(std::move(tg));
  }
  config.validate();
  return config;
}

model::Configuration configuration_from_json(const std::string& text) {
  return configuration_from_json_value(parse_json(text));
}

std::string mapping_result_to_json(const model::Configuration& config,
                                   const core::MappingResult& result) {
  JsonObject root;
  root["status"] = std::string(solver::to_string(result.status));
  root["objective_continuous"] = result.objective_continuous;
  root["objective_rounded"] = result.objective_rounded;
  root["ipm_iterations"] = JsonValue(static_cast<double>(result.ipm_iterations));
  root["warm_started"] = result.warm_started;
  root["verified"] = result.verified;

  JsonArray graphs;
  for (std::size_t gi = 0; gi < result.graphs.size(); ++gi) {
    const model::TaskGraph& tg =
        config.task_graph(static_cast<Index>(gi));
    const core::MappedGraph& mg = result.graphs[gi];
    JsonObject g;
    g["name"] = tg.name();
    JsonArray tasks;
    for (std::size_t t = 0; t < mg.tasks.size(); ++t) {
      JsonObject o;
      o["name"] = tg.task(static_cast<Index>(t)).name;
      o["budget"] = JsonValue(static_cast<double>(mg.tasks[t].budget));
      o["budget_continuous"] = mg.tasks[t].budget_continuous;
      tasks.push_back(JsonValue(std::move(o)));
    }
    g["tasks"] = JsonValue(std::move(tasks));
    JsonArray buffers;
    for (std::size_t b = 0; b < mg.buffers.size(); ++b) {
      JsonObject o;
      o["name"] = tg.buffer(static_cast<Index>(b)).name;
      o["capacity"] = JsonValue(static_cast<double>(mg.buffers[b].capacity));
      o["tokens_continuous"] = mg.buffers[b].tokens_continuous;
      buffers.push_back(JsonValue(std::move(o)));
    }
    g["buffers"] = JsonValue(std::move(buffers));
    g["mcr"] = mg.verification.mcr;
    g["required_period"] = mg.verification.required_period;
    g["throughput_met"] = mg.verification.throughput_met;
    graphs.push_back(JsonValue(std::move(g)));
  }
  root["task_graphs"] = JsonValue(std::move(graphs));
  return write_json(JsonValue(std::move(root)));
}

std::string task_graph_to_dot(const model::Configuration& config,
                              linalg::Index graph_index) {
  const model::TaskGraph& tg = config.task_graph(graph_index);
  std::string out = "digraph \"" + tg.name() + "\" {\n";
  out += "  rankdir=LR;\n  node [shape=box];\n";
  for (Index t = 0; t < tg.num_tasks(); ++t) {
    const model::Task& task = tg.task(t);
    out += "  t" + std::to_string(t) + " [label=\"" + task.name + "\\n" +
           config.processor(task.processor).name +
           ", chi=" + std::to_string(task.wcet) + "\"];\n";
  }
  for (Index b = 0; b < tg.num_buffers(); ++b) {
    const model::Buffer& buf = tg.buffer(b);
    out += "  t" + std::to_string(buf.producer) + " -> t" +
           std::to_string(buf.consumer) + " [label=\"" + buf.name + "\\n" +
           config.memory(buf.memory).name +
           ", zeta=" + std::to_string(buf.container_size) +
           ", iota=" + std::to_string(buf.initial_fill) + "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace bbs::io
