// JSON round-trip of the service API's Request/Response surface.
//
// The envelope is schema-versioned and self-contained:
//
// request = {
//   "schema_version": 1,
//   "kind": "solve" | "sweep" | "min_period" | "two_phase" | "latency",
//   "id": "...",                       // optional, echoed in the response
//   "options": {                       // optional; every field optional
//     "verify", "rounding_eps", "max_iterations", "feas_tol", "gap_tol",
//     "warm_start"
//   },
//   "configuration": { ... },          // the config schema of config_io.hpp
//   // kind-specific (graphs referenced by *name*, like the config schema):
//   "graph", "cap_lo", "cap_hi",                     // sweep
//   "graph", "period_hi", "rel_tol", "flow",         // min_period
//   "mode", "cap_lo", "cap_hi",                      // two_phase
//   "graph"                                          // latency (optional)
// }
//
// response = {
//   "schema_version": 1, "kind", "id", "status",     // "ok"/"infeasible"/"error"
//   "error": "...",                                  // status == "error" only
//   "result": { ... },                               // kind-specific payload
//   "diagnostics": { "wall_ms", "ipm_iterations", "solves",
//                    "warm_started_solves", "symbolic_factorisations",
//                    "session_reused" }
// }
//
// Response payload arrays are ordered like the request's configuration
// (graph i / task t / buffer b correspond to the same indices); PAS start
// times inside verification data are not serialised.
#pragma once

#include <string>

#include "bbs/api/request.hpp"
#include "bbs/api/response.hpp"
#include "bbs/io/json.hpp"

namespace bbs::io {

/// Version stamped into (and required of) every request/response envelope.
inline constexpr int kApiSchemaVersion = 1;

JsonValue request_to_json_value(const api::Request& request);
std::string request_to_json(const api::Request& request);

/// Throws ModelError on malformed envelopes, unknown kinds, unsupported
/// schema versions and dangling name references.
api::Request request_from_json_value(const JsonValue& doc);
api::Request request_from_json(const std::string& text);

JsonValue response_to_json_value(const api::Response& response);
std::string response_to_json(const api::Response& response);

api::Response response_from_json_value(const JsonValue& doc);
api::Response response_from_json(const std::string& text);

}  // namespace bbs::io
