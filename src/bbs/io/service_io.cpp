#include "bbs/io/service_io.hpp"

#include "bbs/common/assert.hpp"
#include "bbs/io/api_io.hpp"

namespace bbs::io {

const char* to_string(ControlKind kind) {
  switch (kind) {
    case ControlKind::kStats:
      return "stats";
    case ControlKind::kMetrics:
      return "metrics";
    case ControlKind::kSetConfig:
      return "set_config";
    case ControlKind::kTrace:
      return "trace";
  }
  return "?";
}

std::optional<ControlKind> control_kind(const JsonValue& doc) {
  if (!doc.is_object()) return std::nullopt;
  const JsonObject& root = doc.as_object();
  if (!root.contains("kind") || !root.at("kind").is_string()) {
    return std::nullopt;
  }
  const std::string& kind = root.at("kind").as_string();
  std::optional<ControlKind> classified;
  if (kind == "stats") {
    classified = ControlKind::kStats;
  } else if (kind == "metrics") {
    classified = ControlKind::kMetrics;
  } else if (kind == "set_config") {
    classified = ControlKind::kSetConfig;
  } else if (kind == "trace") {
    classified = ControlKind::kTrace;
  }
  if (!classified) return std::nullopt;

  // It is a control message: validate the envelope fields it may carry.
  // schema_version is optional — a bare {"kind":"stats"} is the documented
  // minimal form — but when present it must be the supported version.
  if (root.contains("schema_version")) {
    const JsonValue& v = root.at("schema_version");
    if (!v.is_number() ||
        static_cast<int>(v.as_number()) != kApiSchemaVersion) {
      throw ModelError("control message: unsupported schema_version");
    }
  }
  if (root.contains("id") && !root.at("id").is_string()) {
    throw ModelError("control message: id must be a string");
  }
  return classified;
}

std::string control_id(const JsonValue& doc) {
  const JsonObject& root = doc.as_object();
  if (root.contains("id")) return root.at("id").as_string();
  return {};
}

JsonValue control_response_envelope(ControlKind kind, const std::string& id,
                                    JsonValue result) {
  JsonObject root;
  root["schema_version"] = JsonValue(kApiSchemaVersion);
  root["kind"] = std::string(to_string(kind));
  if (!id.empty()) root["id"] = id;
  root["status"] = "ok";
  root["result"] = std::move(result);
  return JsonValue(std::move(root));
}

}  // namespace bbs::io
