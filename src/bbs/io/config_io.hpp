// JSON serialisation of configurations and mapping results.
//
// The on-disk schema mirrors the paper's tuple notation:
//
// {
//   "granularity": 1,
//   "processors": [{"name", "replenishment_interval", "scheduling_overhead"}],
//   "memories":   [{"name", "capacity"}],               // capacity -1 = inf
//   "task_graphs": [{
//       "name", "required_period",
//       "tasks":   [{"name", "processor", "wcet", "budget_weight"}],
//       "buffers": [{"name", "producer", "consumer", "memory",
//                    "container_size", "initial_fill", "size_weight",
//                    "max_capacity"}]
//   }]
// }
//
// Processor/memory/task references are serialised by *name*, so files remain
// human-editable and reorderable.
#pragma once

#include <string>

#include "bbs/core/budget_buffer_solver.hpp"
#include "bbs/io/json.hpp"
#include "bbs/model/configuration.hpp"

namespace bbs::io {

/// Serialises a configuration to JSON text.
std::string configuration_to_json(const model::Configuration& config);

/// Parses a configuration from JSON text; throws ModelError on schema or
/// reference errors.
model::Configuration configuration_from_json(const std::string& text);

/// Document-model variants, for schemas that embed configurations (the
/// service API's request envelope, io/api_io.hpp).
JsonValue configuration_to_json_value(const model::Configuration& config);
model::Configuration configuration_from_json_value(const JsonValue& doc);

/// Shared schema helper for untrusted JSON: converts a parsed number to an
/// Index, throwing ModelError (prefixed with `what`) when it is not an
/// integer or falls outside the Index range — an unchecked cast would be
/// undefined behaviour for out-of-range doubles.
linalg::Index index_from_json(double value, const std::string& what);

/// Serialises a mapping result (budgets, capacities, verification data).
std::string mapping_result_to_json(const model::Configuration& config,
                                   const core::MappingResult& result);

/// Graphviz DOT rendering of one task graph: tasks as boxes labelled with
/// processor and WCET, buffers as edges labelled with memory, container
/// size and initial fill.
std::string task_graph_to_dot(const model::Configuration& config,
                              linalg::Index graph_index);

}  // namespace bbs::io
