// Minimal JSON document model, parser and writer.
//
// Dependency-free subset sufficient for configuration files and result
// reports: null, booleans, finite doubles, strings with the standard escape
// sequences, arrays and objects (insertion-ordered). Numbers are always
// parsed as double; the model layer converts to integers where required.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace bbs::io {

class JsonValue;

using JsonArray = std::vector<JsonValue>;

/// Insertion-ordered object: preserves the order keys were added in, which
/// keeps serialised configurations diffable.
class JsonObject {
 public:
  JsonValue& operator[](const std::string& key);
  const JsonValue& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  std::size_t size() const { return entries_.size(); }

  const std::vector<std::pair<std::string, JsonValue>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, JsonValue>> entries_;
};

class JsonValue {
 public:
  JsonValue() : data_(nullptr) {}
  JsonValue(std::nullptr_t) : data_(nullptr) {}
  JsonValue(bool b) : data_(b) {}
  JsonValue(double d) : data_(d) {}
  JsonValue(int i) : data_(static_cast<double>(i)) {}
  JsonValue(long long i) : data_(static_cast<double>(i)) {}
  JsonValue(const char* s) : data_(std::string(s)) {}
  JsonValue(std::string s) : data_(std::move(s)) {}
  JsonValue(JsonArray a) : data_(std::move(a)) {}
  JsonValue(JsonObject o) : data_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(data_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(data_); }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  JsonArray& as_array();
  const JsonObject& as_object() const;
  JsonObject& as_object();

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      data_;
};

/// Parses a JSON document. Throws ModelError with a line/column diagnostic on
/// malformed input.
JsonValue parse_json(const std::string& text);

/// Serialises with two-space indentation and a trailing newline.
std::string write_json(const JsonValue& value);

/// Serialises without any whitespace or trailing newline: one document per
/// line, as JSONL streams require.
std::string write_json_compact(const JsonValue& value);

}  // namespace bbs::io
