#include "bbs/io/api_io.hpp"

#include "bbs/common/assert.hpp"
#include "bbs/io/config_io.hpp"

namespace bbs::io {

namespace {

using api::Index;
using linalg::Vector;

// ---------------------------------------------------------------------------
// Small schema helpers
// ---------------------------------------------------------------------------

[[noreturn]] void schema_error(const std::string& what) {
  throw ModelError("api json: " + what);
}

const JsonValue& require(const JsonObject& obj, const std::string& key,
                         const char* where) {
  if (!obj.contains(key)) {
    schema_error(std::string(where) + " is missing required field '" + key +
                 "'");
  }
  return obj.at(key);
}

Index to_index(double d, const std::string& what) {
  return index_from_json(d, "api json: " + what);
}

Index get_index(const JsonObject& obj, const std::string& key,
                const char* where, Index fallback) {
  if (!obj.contains(key)) return fallback;
  return to_index(obj.at(key).as_number(), std::string(where) + "." + key);
}

double get_number(const JsonObject& obj, const std::string& key,
                  double fallback) {
  return obj.contains(key) ? obj.at(key).as_number() : fallback;
}

bool get_bool(const JsonObject& obj, const std::string& key, bool fallback) {
  return obj.contains(key) ? obj.at(key).as_bool() : fallback;
}

/// Graphs are referenced by name in the envelope (like every reference of
/// the config schema); a plain number is also accepted as an index.
Index graph_ref_from_json(const JsonValue& v,
                          const model::Configuration& config,
                          const char* where) {
  if (v.is_number()) {
    const Index gi = to_index(v.as_number(), std::string(where) + ".graph");
    if (gi < 0 || gi >= config.num_task_graphs()) {
      schema_error(std::string(where) + ".graph index out of range");
    }
    return gi;
  }
  const std::string& name = v.as_string();
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    if (config.task_graph(gi).name() == name) return gi;
  }
  schema_error(std::string(where) + " references unknown task graph '" +
               name + "'");
}

JsonValue graph_ref_to_json(const model::Configuration& config, Index graph) {
  return JsonValue(config.task_graph(graph).name());
}

solver::SolveStatus solve_status_from_string(const std::string& s) {
  using solver::SolveStatus;
  for (const SolveStatus status :
       {SolveStatus::kOptimal, SolveStatus::kPrimalInfeasible,
        SolveStatus::kDualInfeasible, SolveStatus::kMaxIterations,
        SolveStatus::kNumericalFailure, SolveStatus::kTimedOut,
        SolveStatus::kCancelled}) {
    if (s == solver::to_string(status)) return status;
  }
  schema_error("unknown solve status '" + s + "'");
}

api::ResponseStatus response_status_from_string(const std::string& s) {
  using api::ResponseStatus;
  for (const ResponseStatus status :
       {ResponseStatus::kOk, ResponseStatus::kInfeasible,
        ResponseStatus::kError}) {
    if (s == api::to_string(status)) return status;
  }
  schema_error("unknown response status '" + s + "'");
}

JsonValue index_array_to_json(const std::vector<Index>& values) {
  JsonArray arr;
  for (const Index v : values) arr.push_back(JsonValue(static_cast<double>(v)));
  return JsonValue(std::move(arr));
}

std::vector<Index> index_array_from_json(const JsonValue& v,
                                         const char* what) {
  std::vector<Index> out;
  for (const JsonValue& e : v.as_array()) {
    out.push_back(to_index(e.as_number(), what));
  }
  return out;
}

JsonValue vector_to_json(const Vector& values) {
  JsonArray arr;
  for (const double v : values) arr.push_back(JsonValue(v));
  return JsonValue(std::move(arr));
}

Vector vector_from_json(const JsonValue& v) {
  Vector out;
  for (const JsonValue& e : v.as_array()) out.push_back(e.as_number());
  return out;
}

// ---------------------------------------------------------------------------
// Payload building blocks
// ---------------------------------------------------------------------------

/// Mapping results inside responses are nameless: arrays are ordered like
/// the request's configuration. (The single-request CLI report keeps the
/// name-annotated mapping_result_to_json form.)
JsonValue mapping_result_to_json_value(const core::MappingResult& result) {
  JsonObject root;
  root["status"] = std::string(solver::to_string(result.status));
  root["objective_continuous"] = result.objective_continuous;
  root["objective_rounded"] = result.objective_rounded;
  root["ipm_iterations"] =
      JsonValue(static_cast<double>(result.ipm_iterations));
  root["warm_started"] = result.warm_started;
  root["verified"] = result.verified;
  JsonArray graphs;
  for (const core::MappedGraph& mg : result.graphs) {
    JsonObject g;
    JsonArray tasks;
    for (const core::TaskAllocation& t : mg.tasks) {
      JsonObject o;
      o["budget"] = JsonValue(static_cast<double>(t.budget));
      o["budget_continuous"] = t.budget_continuous;
      tasks.push_back(JsonValue(std::move(o)));
    }
    g["tasks"] = JsonValue(std::move(tasks));
    JsonArray buffers;
    for (const core::BufferAllocation& b : mg.buffers) {
      JsonObject o;
      o["capacity"] = JsonValue(static_cast<double>(b.capacity));
      o["tokens_continuous"] = b.tokens_continuous;
      buffers.push_back(JsonValue(std::move(o)));
    }
    g["buffers"] = JsonValue(std::move(buffers));
    g["mcr"] = mg.verification.mcr;
    g["required_period"] = mg.verification.required_period;
    g["throughput_met"] = mg.verification.throughput_met;
    graphs.push_back(JsonValue(std::move(g)));
  }
  root["graphs"] = JsonValue(std::move(graphs));
  return JsonValue(std::move(root));
}

core::MappingResult mapping_result_from_json_value(const JsonValue& doc) {
  const JsonObject& root = doc.as_object();
  core::MappingResult result;
  result.status = solve_status_from_string(
      require(root, "status", "mapping").as_string());
  result.objective_continuous = get_number(root, "objective_continuous", 0.0);
  result.objective_rounded = get_number(root, "objective_rounded", 0.0);
  result.ipm_iterations =
      static_cast<int>(get_index(root, "ipm_iterations", "mapping", 0));
  result.warm_started = get_bool(root, "warm_started", false);
  result.verified = get_bool(root, "verified", false);
  for (const JsonValue& gv : require(root, "graphs", "mapping").as_array()) {
    const JsonObject& g = gv.as_object();
    core::MappedGraph mg;
    for (const JsonValue& tv : require(g, "tasks", "mapping graph")
                                   .as_array()) {
      const JsonObject& o = tv.as_object();
      core::TaskAllocation t;
      t.budget = to_index(require(o, "budget", "task allocation").as_number(),
                          "task budget");
      t.budget_continuous = get_number(o, "budget_continuous", 0.0);
      mg.tasks.push_back(t);
    }
    for (const JsonValue& bv : require(g, "buffers", "mapping graph")
                                   .as_array()) {
      const JsonObject& o = bv.as_object();
      core::BufferAllocation b;
      b.capacity = to_index(
          require(o, "capacity", "buffer allocation").as_number(),
          "buffer capacity");
      b.tokens_continuous = get_number(o, "tokens_continuous", 0.0);
      mg.buffers.push_back(b);
    }
    mg.verification.mcr = get_number(g, "mcr", 0.0);
    mg.verification.required_period = get_number(g, "required_period", 0.0);
    mg.verification.throughput_met = get_bool(g, "throughput_met", false);
    result.graphs.push_back(std::move(mg));
  }
  return result;
}

JsonValue sweep_to_json_value(const core::TradeoffSweep& sweep) {
  JsonObject root;
  JsonArray points;
  for (const core::TradeoffPoint& p : sweep.points) {
    JsonObject o;
    o["max_capacity"] = JsonValue(static_cast<double>(p.max_capacity));
    o["feasible"] = p.feasible;
    o["total_budget_continuous"] = p.total_budget_continuous;
    o["budgets_continuous"] = vector_to_json(p.budgets_continuous);
    o["budgets"] = index_array_to_json(p.budgets);
    o["capacities"] = index_array_to_json(p.capacities);
    points.push_back(JsonValue(std::move(o)));
  }
  root["points"] = JsonValue(std::move(points));
  return JsonValue(std::move(root));
}

core::TradeoffSweep sweep_from_json_value(const JsonValue& doc) {
  core::TradeoffSweep sweep;
  for (const JsonValue& pv :
       require(doc.as_object(), "points", "sweep result").as_array()) {
    const JsonObject& o = pv.as_object();
    core::TradeoffPoint p;
    p.max_capacity = to_index(
        require(o, "max_capacity", "sweep point").as_number(), "max_capacity");
    p.feasible = get_bool(o, "feasible", false);
    p.total_budget_continuous = get_number(o, "total_budget_continuous", 0.0);
    if (o.contains("budgets_continuous")) {
      p.budgets_continuous = vector_from_json(o.at("budgets_continuous"));
    }
    if (o.contains("budgets")) {
      p.budgets = index_array_from_json(o.at("budgets"), "sweep budgets");
    }
    if (o.contains("capacities")) {
      p.capacities =
          index_array_from_json(o.at("capacities"), "sweep capacities");
    }
    sweep.points.push_back(std::move(p));
  }
  return sweep;
}

JsonValue latency_payload_to_json_value(const api::LatencyPayload& payload) {
  JsonObject root;
  root["mapping"] = mapping_result_to_json_value(payload.mapping);
  JsonArray graphs;
  for (const api::LatencyPayload::GraphBound& gb : payload.graphs) {
    JsonObject o;
    o["graph"] = JsonValue(static_cast<double>(gb.graph));
    o["has_pas"] = gb.has_pas;
    o["worst"] = gb.latency.worst;
    JsonArray pairs;
    for (const core::LatencyBound& p : gb.latency.pairs) {
      JsonObject pair;
      pair["source"] = JsonValue(static_cast<double>(p.source));
      pair["sink"] = JsonValue(static_cast<double>(p.sink));
      pair["latency"] = p.latency;
      pairs.push_back(JsonValue(std::move(pair)));
    }
    o["pairs"] = JsonValue(std::move(pairs));
    graphs.push_back(JsonValue(std::move(o)));
  }
  root["graphs"] = JsonValue(std::move(graphs));
  return JsonValue(std::move(root));
}

api::LatencyPayload latency_payload_from_json_value(const JsonValue& doc) {
  const JsonObject& root = doc.as_object();
  api::LatencyPayload payload;
  payload.mapping = mapping_result_from_json_value(
      require(root, "mapping", "latency result"));
  for (const JsonValue& gv :
       require(root, "graphs", "latency result").as_array()) {
    const JsonObject& o = gv.as_object();
    api::LatencyPayload::GraphBound gb;
    gb.graph = to_index(require(o, "graph", "latency graph").as_number(),
                        "latency graph");
    gb.has_pas = get_bool(o, "has_pas", false);
    gb.latency.worst = get_number(o, "worst", 0.0);
    if (o.contains("pairs")) {
      for (const JsonValue& pv : o.at("pairs").as_array()) {
        const JsonObject& pair = pv.as_object();
        core::LatencyBound bound;
        bound.source = to_index(
            require(pair, "source", "latency pair").as_number(), "source");
        bound.sink = to_index(
            require(pair, "sink", "latency pair").as_number(), "sink");
        bound.latency = get_number(pair, "latency", 0.0);
        gb.latency.pairs.push_back(bound);
      }
    }
    payload.graphs.push_back(std::move(gb));
  }
  return payload;
}

// ---------------------------------------------------------------------------
// Request options
// ---------------------------------------------------------------------------

JsonValue options_to_json_value(const api::RequestOptions& options) {
  JsonObject o;
  o["verify"] = options.verify;
  o["rounding_eps"] = options.rounding_eps;
  o["max_iterations"] =
      JsonValue(static_cast<double>(options.ipm.max_iterations));
  o["feas_tol"] = options.ipm.feas_tol;
  o["gap_tol"] = options.ipm.gap_tol;
  o["warm_start"] = options.ipm.warm_start;
  o["recovery_attempts"] =
      JsonValue(static_cast<double>(options.ipm.recovery_attempts));
  if (options.deadline_ms > 0.0) o["deadline_ms"] = options.deadline_ms;
  // Trace opt-ins serialise only when set, like deadline_ms — untraced
  // requests keep their byte-identical wire shape.
  if (options.trace) o["trace"] = options.trace;
  if (options.trace_ipm) o["trace_ipm"] = options.trace_ipm;
  return JsonValue(std::move(o));
}

api::RequestOptions options_from_json_value(const JsonValue& doc) {
  const JsonObject& o = doc.as_object();
  api::RequestOptions options;
  options.verify = get_bool(o, "verify", options.verify);
  options.rounding_eps = get_number(o, "rounding_eps", options.rounding_eps);
  options.ipm.max_iterations = static_cast<int>(get_index(
      o, "max_iterations", "options", options.ipm.max_iterations));
  options.ipm.feas_tol = get_number(o, "feas_tol", options.ipm.feas_tol);
  options.ipm.gap_tol = get_number(o, "gap_tol", options.ipm.gap_tol);
  options.ipm.warm_start = get_bool(o, "warm_start", options.ipm.warm_start);
  options.ipm.recovery_attempts = static_cast<int>(get_index(
      o, "recovery_attempts", "options", options.ipm.recovery_attempts));
  options.deadline_ms = get_number(o, "deadline_ms", options.deadline_ms);
  options.trace = get_bool(o, "trace", options.trace);
  options.trace_ipm = get_bool(o, "trace_ipm", options.trace_ipm);
  if (options.trace_ipm) options.trace = true;
  return options;
}

}  // namespace

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

JsonValue request_to_json_value(const api::Request& request) {
  JsonObject root;
  root["schema_version"] = JsonValue(kApiSchemaVersion);
  root["kind"] = std::string(request.kind());
  if (!request.id.empty()) root["id"] = request.id;
  root["options"] = options_to_json_value(request.options);
  root["configuration"] =
      configuration_to_json_value(request.configuration());

  if (const auto* r = std::get_if<api::SweepRequest>(&request.payload)) {
    root["graph"] = graph_ref_to_json(r->configuration, r->graph);
    root["cap_lo"] = JsonValue(static_cast<double>(r->cap_lo));
    root["cap_hi"] = JsonValue(static_cast<double>(r->cap_hi));
  } else if (const auto* r =
                 std::get_if<api::MinPeriodRequest>(&request.payload)) {
    root["graph"] = graph_ref_to_json(r->configuration, r->graph);
    root["period_hi"] = r->period_hi;
    root["rel_tol"] = r->rel_tol;
    root["flow"] = std::string(
        r->flow == api::MinPeriodRequest::Flow::kJoint ? "joint"
                                                       : "budget_first");
  } else if (const auto* r =
                 std::get_if<api::TwoPhaseRequest>(&request.payload)) {
    root["mode"] = std::string(
        r->mode == api::TwoPhaseRequest::Mode::kBudgetFirst ? "budget_first"
                                                            : "buffer_first");
    if (r->mode == api::TwoPhaseRequest::Mode::kBufferFirst) {
      root["cap_lo"] = JsonValue(static_cast<double>(r->cap_lo));
      if (r->cap_hi != -1) {
        root["cap_hi"] = JsonValue(static_cast<double>(r->cap_hi));
      }
    }
  } else if (const auto* r =
                 std::get_if<api::LatencyRequest>(&request.payload)) {
    if (r->graph != -1) {
      root["graph"] = graph_ref_to_json(r->configuration, r->graph);
    }
  }
  return JsonValue(std::move(root));
}

std::string request_to_json(const api::Request& request) {
  return write_json(request_to_json_value(request));
}

api::Request request_from_json_value(const JsonValue& doc) {
  if (!doc.is_object()) schema_error("request must be a json object");
  const JsonObject& root = doc.as_object();

  const double version =
      require(root, "schema_version", "request").as_number();
  if (version != static_cast<double>(kApiSchemaVersion)) {
    schema_error("unsupported schema_version " + std::to_string(version) +
                 " (this build speaks " + std::to_string(kApiSchemaVersion) +
                 ")");
  }
  const std::string& kind = require(root, "kind", "request").as_string();

  api::Request request;
  if (root.contains("id")) request.id = root.at("id").as_string();
  if (root.contains("options")) {
    request.options = options_from_json_value(root.at("options"));
  }
  model::Configuration config = configuration_from_json_value(
      require(root, "configuration", "request"));

  if (kind == "solve") {
    request.payload = api::SolveRequest{std::move(config)};
  } else if (kind == "sweep") {
    api::SweepRequest r{std::move(config)};
    r.graph = graph_ref_from_json(require(root, "graph", "sweep request"),
                                  r.configuration, "sweep request");
    r.cap_lo = get_index(root, "cap_lo", "sweep request", 1);
    r.cap_hi = get_index(root, "cap_hi", "sweep request", r.cap_lo);
    request.payload = std::move(r);
  } else if (kind == "min_period") {
    api::MinPeriodRequest r{std::move(config)};
    r.graph = graph_ref_from_json(
        require(root, "graph", "min_period request"), r.configuration,
        "min_period request");
    r.period_hi =
        require(root, "period_hi", "min_period request").as_number();
    r.rel_tol = get_number(root, "rel_tol", r.rel_tol);
    if (root.contains("flow")) {
      const std::string& flow = root.at("flow").as_string();
      if (flow == "joint") {
        r.flow = api::MinPeriodRequest::Flow::kJoint;
      } else if (flow == "budget_first") {
        r.flow = api::MinPeriodRequest::Flow::kBudgetFirst;
      } else {
        schema_error("unknown min_period flow '" + flow + "'");
      }
    }
    request.payload = std::move(r);
  } else if (kind == "two_phase") {
    api::TwoPhaseRequest r{std::move(config)};
    const std::string& mode =
        require(root, "mode", "two_phase request").as_string();
    if (mode == "budget_first") {
      r.mode = api::TwoPhaseRequest::Mode::kBudgetFirst;
    } else if (mode == "buffer_first") {
      r.mode = api::TwoPhaseRequest::Mode::kBufferFirst;
    } else {
      schema_error("unknown two_phase mode '" + mode + "'");
    }
    r.cap_lo = get_index(root, "cap_lo", "two_phase request", 1);
    r.cap_hi = get_index(root, "cap_hi", "two_phase request", -1);
    request.payload = std::move(r);
  } else if (kind == "latency") {
    api::LatencyRequest r{std::move(config)};
    if (root.contains("graph")) {
      r.graph = graph_ref_from_json(root.at("graph"), r.configuration,
                                    "latency request");
    }
    request.payload = std::move(r);
  } else {
    schema_error("unknown request kind '" + kind + "'");
  }
  return request;
}

api::Request request_from_json(const std::string& text) {
  return request_from_json_value(parse_json(text));
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

JsonValue response_to_json_value(const api::Response& response) {
  JsonObject root;
  root["schema_version"] = JsonValue(kApiSchemaVersion);
  root["kind"] = response.kind;
  if (!response.id.empty()) root["id"] = response.id;
  root["status"] = std::string(api::to_string(response.status));
  if (response.status == api::ResponseStatus::kError) {
    root["error"] = response.error;
    // Additive to schema v1: absent on non-error responses and on streams
    // written by pre-taxonomy builds.
    if (response.error_code != api::ErrorCode::kNone) {
      root["error_code"] = std::string(api::to_string(response.error_code));
    }
  }

  if (const auto* p = std::get_if<api::SolvePayload>(&response.payload)) {
    root["result"] = mapping_result_to_json_value(p->mapping);
  } else if (const auto* p =
                 std::get_if<api::SweepPayload>(&response.payload)) {
    root["result"] = sweep_to_json_value(p->sweep);
  } else if (const auto* p =
                 std::get_if<api::MinPeriodPayload>(&response.payload)) {
    JsonObject o;
    o["found"] = p->found;
    if (p->found) {
      o["period"] = p->period;
      o["mapping"] = mapping_result_to_json_value(p->mapping);
    }
    root["result"] = JsonValue(std::move(o));
  } else if (const auto* p =
                 std::get_if<api::TwoPhasePayload>(&response.payload)) {
    JsonObject o;
    JsonArray mappings;
    for (const core::MappingResult& m : p->mappings) {
      mappings.push_back(mapping_result_to_json_value(m));
    }
    o["mappings"] = JsonValue(std::move(mappings));
    root["result"] = JsonValue(std::move(o));
  } else if (const auto* p =
                 std::get_if<api::LatencyPayload>(&response.payload)) {
    root["result"] = latency_payload_to_json_value(*p);
  }

  const api::Diagnostics& diag = response.diagnostics;
  JsonObject d;
  d["wall_ms"] = diag.wall_ms;
  d["queue_ms"] = diag.queue_ms;
  d["solve_ms"] = diag.solve_ms;
  d["ipm_iterations"] = JsonValue(static_cast<double>(diag.ipm_iterations));
  d["solves"] = JsonValue(static_cast<double>(diag.solves));
  d["warm_started_solves"] =
      JsonValue(static_cast<double>(diag.warm_started_solves));
  d["recovered_solves"] =
      JsonValue(static_cast<double>(diag.recovered_solves));
  d["symbolic_factorisations"] =
      JsonValue(static_cast<double>(diag.symbolic_factorisations));
  d["session_reused"] = diag.session_reused;
  // Only traced requests carry an id — untraced responses stay byte-stable.
  if (!diag.trace_id.empty()) d["trace_id"] = diag.trace_id;
  root["diagnostics"] = JsonValue(std::move(d));
  return JsonValue(std::move(root));
}

std::string response_to_json(const api::Response& response) {
  return write_json(response_to_json_value(response));
}

api::Response response_from_json_value(const JsonValue& doc) {
  if (!doc.is_object()) schema_error("response must be a json object");
  const JsonObject& root = doc.as_object();

  const double version =
      require(root, "schema_version", "response").as_number();
  if (version != static_cast<double>(kApiSchemaVersion)) {
    schema_error("unsupported schema_version " + std::to_string(version));
  }

  api::Response response;
  response.kind = require(root, "kind", "response").as_string();
  if (root.contains("id")) response.id = root.at("id").as_string();
  response.status = response_status_from_string(
      require(root, "status", "response").as_string());
  if (root.contains("error")) response.error = root.at("error").as_string();
  if (root.contains("error_code")) {
    response.error_code =
        api::error_code_from_string(root.at("error_code").as_string());
  }

  if (response.status != api::ResponseStatus::kError) {
    const JsonValue& result = require(root, "result", "response");
    if (response.kind == "solve") {
      response.payload =
          api::SolvePayload{mapping_result_from_json_value(result)};
    } else if (response.kind == "sweep") {
      response.payload = api::SweepPayload{sweep_from_json_value(result)};
    } else if (response.kind == "min_period") {
      const JsonObject& o = result.as_object();
      api::MinPeriodPayload p;
      p.found = get_bool(o, "found", false);
      if (p.found) {
        p.period = require(o, "period", "min_period result").as_number();
        p.mapping = mapping_result_from_json_value(
            require(o, "mapping", "min_period result"));
      }
      response.payload = std::move(p);
    } else if (response.kind == "two_phase") {
      api::TwoPhasePayload p;
      for (const JsonValue& mv :
           require(result.as_object(), "mappings", "two_phase result")
               .as_array()) {
        p.mappings.push_back(mapping_result_from_json_value(mv));
      }
      response.payload = std::move(p);
    } else if (response.kind == "latency") {
      response.payload = latency_payload_from_json_value(result);
    } else {
      schema_error("unknown response kind '" + response.kind + "'");
    }
  }

  const JsonObject& d =
      require(root, "diagnostics", "response").as_object();
  response.diagnostics.wall_ms = get_number(d, "wall_ms", 0.0);
  response.diagnostics.queue_ms = get_number(d, "queue_ms", 0.0);
  response.diagnostics.solve_ms = get_number(d, "solve_ms", 0.0);
  response.diagnostics.ipm_iterations =
      static_cast<long>(get_number(d, "ipm_iterations", 0.0));
  response.diagnostics.solves =
      static_cast<int>(get_index(d, "solves", "diagnostics", 0));
  response.diagnostics.warm_started_solves = static_cast<int>(
      get_index(d, "warm_started_solves", "diagnostics", 0));
  response.diagnostics.recovered_solves = static_cast<int>(
      get_index(d, "recovered_solves", "diagnostics", 0));
  response.diagnostics.symbolic_factorisations =
      static_cast<long>(get_number(d, "symbolic_factorisations", 0.0));
  response.diagnostics.session_reused =
      get_bool(d, "session_reused", false);
  if (d.contains("trace_id")) {
    response.diagnostics.trace_id = d.at("trace_id").as_string();
  }
  return response;
}

api::Response response_from_json(const std::string& text) {
  return response_from_json_value(parse_json(text));
}

}  // namespace bbs::io
