#include "bbs/common/strings.hpp"

#include <cctype>
#include <cstdio>

namespace bbs {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace bbs
