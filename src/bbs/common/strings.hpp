// Small string helpers used by reporting and the JSON/DOT writers.
#pragma once

#include <string>
#include <vector>

namespace bbs {

/// printf-style double formatting with fixed precision, locale-independent.
std::string format_double(double value, int precision = 6);

/// Joins the elements with the separator: join({"a","b"}, ", ") == "a, b".
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// True iff `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Strips ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(const std::string& s, char sep);

}  // namespace bbs
