// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components of the library (graph generators, data-dependent
// execution times in the simulator, randomised tests) draw from this engine so
// that every experiment in EXPERIMENTS.md can be regenerated bit-identically
// from its seed.
#pragma once

#include <cstdint>
#include <vector>

namespace bbs {

/// xoshiro256** — small, fast, high-quality PRNG (Blackman & Vigna).
/// Seeded through SplitMix64 so that consecutive integer seeds give
/// well-decorrelated streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi); requires lo < hi.
  double next_real(double lo, double hi);

  /// Bernoulli draw with probability p of true.
  bool next_bool(double p = 0.5);

  /// Fisher–Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          next_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace bbs
