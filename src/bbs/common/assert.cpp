#include "bbs/common/assert.hpp"

#include <sstream>

namespace bbs::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::ostringstream os;
  os << "bbs internal invariant violated: (" << expr << ") at " << file << ":"
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace bbs::detail
