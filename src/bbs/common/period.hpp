// Asymptotic period estimation for eventually periodic schedules.
//
// Self-timed SRDF executions and TDM simulations both converge to a regime
// where sigma(k + q) = sigma(k) + q * p for every entity (actor or task):
// the start times repeat with some cyclicity q at rate p. A plain windowed
// average (last - first) / n is biased by up to jitter / n, which matters
// when the measured period is compared against a tight analytic bound; this
// helper instead *detects* the periodic regime and returns the exact p,
// falling back to the windowed average when no period is detected within
// the observation window.
#pragma once

#include <vector>

namespace bbs {

/// `starts[k][i]` is the start time of the (k+1)-th event of entity i; the
/// series must be non-decreasing per entity. Returns the detected asymptotic
/// period p (time per k-step), or the windowed average over the second half
/// of the trace if no periodicity is detected. Returns 0 for fewer than two
/// observations.
double estimate_asymptotic_period(
    const std::vector<std::vector<double>>& starts, double tolerance = 1e-9);

}  // namespace bbs
