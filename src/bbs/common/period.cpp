#include "bbs/common/period.hpp"

#include <cmath>
#include <cstddef>

namespace bbs {

namespace {

/// Checks whether the *entire second half* of the trace repeats with
/// cyclicity q; if so, stores the common shift in `shift` and returns true.
/// Validating over the full tail (rather than one repetition) is essential:
/// bursty schedules contain short locally-periodic runs — e.g. several
/// executions back-to-back inside one TDM slice — that would otherwise be
/// mistaken for the asymptotic regime.
bool has_period(const std::vector<std::vector<double>>& starts,
                std::size_t q, double tolerance, double& shift) {
  const std::size_t n = starts.size();
  const std::size_t half = n / 2;
  if (half + q > n - 1) return false;  // need q-separated pairs in the tail
  bool first = true;
  double d0 = 0.0;
  for (std::size_t k = half + q; k < n; ++k) {
    const std::vector<double>& a = starts[k];
    const std::vector<double>& b = starts[k - q];
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double d = a[i] - b[i];
      if (first) {
        d0 = d;
        first = false;
      } else if (std::abs(d - d0) > tolerance * std::max(1.0, std::abs(d0))) {
        return false;
      }
    }
  }
  shift = d0;
  return true;
}

}  // namespace

double estimate_asymptotic_period(
    const std::vector<std::vector<double>>& starts, double tolerance) {
  const std::size_t n = starts.size();
  if (n < 2 || starts[0].empty()) return 0.0;

  const std::size_t max_q = n / 2 > 1 ? n / 2 - 1 : 0;
  for (std::size_t q = 1; q <= max_q; ++q) {
    double shift = 0.0;
    if (has_period(starts, q, tolerance, shift)) {
      return shift / static_cast<double>(q);
    }
  }

  // Fallback: windowed average over the second half (transient excluded).
  const std::size_t last = n - 1;
  std::size_t mid = n / 2;
  if (last == mid) mid = 0;  // trace of length 2: full-window slope
  return (starts[last][0] - starts[mid][0]) / static_cast<double>(last - mid);
}

}  // namespace bbs
