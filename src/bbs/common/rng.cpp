#include "bbs/common/rng.hpp"

#include "bbs/common/assert.hpp"

namespace bbs {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // A state of all zeros is the one forbidden state of xoshiro; splitmix64
  // cannot produce four zero words from any seed, but guard regardless.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  BBS_REQUIRE(lo <= hi, "Rng::next_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::next_real(double lo, double hi) {
  BBS_REQUIRE(lo < hi, "Rng::next_real requires lo < hi");
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) { return next_double() < p; }

}  // namespace bbs
