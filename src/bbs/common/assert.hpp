// Contract-checking macros and error types shared across the bbs library.
//
// Philosophy (following the C++ Core Guidelines, I.5/I.6): preconditions of
// public APIs are checked and reported with exceptions that carry enough
// context to debug the model that violated them; internal invariants use
// BBS_ASSERT, which is active in all build types because analysis code that
// silently produces wrong buffer sizes is worse than code that stops.
#pragma once

#include <stdexcept>
#include <string>

namespace bbs {

/// Thrown when a caller violates a documented precondition of a public API
/// (e.g. an edge refers to a task that is not part of the graph).
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an input model is structurally invalid (dangling references,
/// non-positive periods, ...). Distinct from ContractViolation so callers can
/// distinguish "bad user model" from "bad library usage".
class ModelError : public std::runtime_error {
 public:
  explicit ModelError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a numerical routine cannot proceed (singular factorisation
/// where a definite matrix was required, etc.).
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a request's wall-clock budget expires mid-computation. The
/// IPM itself reports expiry as a terminal status (SolveStatus::kTimedOut);
/// multi-solve drivers (sweeps, bisections) convert that status into this
/// exception to abort the remaining probes, and the API boundary maps it to
/// the structured `deadline_exceeded` error code.
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown when a request is cancelled via its CancelToken (e.g. the client
/// disconnected). Mapped to the `cancelled` error code at the API boundary.
class Cancelled : public std::runtime_error {
 public:
  explicit Cancelled(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace bbs

/// Internal invariant check; active in every build type.
#define BBS_ASSERT(expr)                                                \
  do {                                                                  \
    if (!(expr)) ::bbs::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

/// Internal invariant check with an explanatory message.
#define BBS_ASSERT_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) ::bbs::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Precondition check on a public API: throws ContractViolation.
#define BBS_REQUIRE(expr, msg)                      \
  do {                                              \
    if (!(expr)) throw ::bbs::ContractViolation(msg); \
  } while (false)
