// Minimal scope guard: runs a callable on scope exit, including exits by
// exception. Used wherever a function temporarily mutates caller-owned
// state (the trade-off sweep caps, for instance) and must restore it on
// every path out.
#pragma once

#include <utility>

namespace bbs {

template <typename F>
class ScopeGuard {
 public:
  explicit ScopeGuard(F on_exit) : on_exit_(std::move(on_exit)) {}
  ~ScopeGuard() {
    if (armed_) on_exit_();
  }

  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;
  ScopeGuard(ScopeGuard&& other) noexcept
      : on_exit_(std::move(other.on_exit_)), armed_(other.armed_) {
    other.armed_ = false;
  }
  ScopeGuard& operator=(ScopeGuard&&) = delete;

  /// Disarms the guard: the callable will not run.
  void dismiss() { armed_ = false; }

 private:
  F on_exit_;
  bool armed_ = true;
};

template <typename F>
ScopeGuard<F> make_scope_guard(F on_exit) {
  return ScopeGuard<F>(std::move(on_exit));
}

}  // namespace bbs
