// FNV-1a 64-bit hashing, shared by the structure cache (stable file names
// and payload checksums) and the KKT symbolic-analysis pattern hash. The
// constants are the standard FNV-1a parameters; the hash is stable across
// processes and platforms, unlike std::hash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace bbs::common {

inline constexpr std::uint64_t kFnv1a64Offset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnv1a64Prime = 1099511628211ULL;

inline std::uint64_t fnv1a_64(const void* data, std::size_t size,
                              std::uint64_t seed = kFnv1a64Offset) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<std::uint64_t>(bytes[i]);
    hash *= kFnv1a64Prime;
  }
  return hash;
}

inline std::uint64_t fnv1a_64(std::string_view text,
                              std::uint64_t seed = kFnv1a64Offset) {
  return fnv1a_64(text.data(), text.size(), seed);
}

/// Hashes a vector of trivially-copyable integers by value (not by
/// representation padding — the element type is hashed element-wise).
template <typename T>
std::uint64_t fnv1a_64_values(const std::vector<T>& values,
                              std::uint64_t seed = kFnv1a64Offset) {
  std::uint64_t hash = seed;
  for (const T& value : values) {
    const auto v = static_cast<std::uint64_t>(value);
    hash = fnv1a_64(&v, sizeof(v), hash);
  }
  return hash;
}

}  // namespace bbs::common
