#include "bbs/model/configuration.hpp"

#include "bbs/common/assert.hpp"

namespace bbs::model {

Configuration::Configuration(Index granularity) : granularity_(granularity) {
  BBS_REQUIRE(granularity >= 1,
              "Configuration: granularity g must be a positive integer");
}

Index Configuration::add_processor(std::string name,
                                   double replenishment_interval,
                                   double scheduling_overhead) {
  BBS_REQUIRE(replenishment_interval > 0.0,
              "Configuration::add_processor: replenishment interval must be "
              "positive");
  BBS_REQUIRE(scheduling_overhead >= 0.0,
              "Configuration::add_processor: negative scheduling overhead");
  processors_.push_back(
      Processor{std::move(name), replenishment_interval, scheduling_overhead});
  return static_cast<Index>(processors_.size()) - 1;
}

Index Configuration::add_memory(std::string name, double capacity) {
  BBS_REQUIRE(capacity == -1.0 || capacity >= 0.0,
              "Configuration::add_memory: capacity must be >= 0 or -1");
  memories_.push_back(Memory{std::move(name), capacity});
  return static_cast<Index>(memories_.size()) - 1;
}

Index Configuration::add_task_graph(TaskGraph graph) {
  graphs_.push_back(std::move(graph));
  return static_cast<Index>(graphs_.size()) - 1;
}

const Processor& Configuration::processor(Index id) const {
  BBS_REQUIRE(id >= 0 && id < num_processors(),
              "Configuration::processor: bad id");
  return processors_[static_cast<std::size_t>(id)];
}

const Memory& Configuration::memory(Index id) const {
  BBS_REQUIRE(id >= 0 && id < num_memories(),
              "Configuration::memory: bad id");
  return memories_[static_cast<std::size_t>(id)];
}

const TaskGraph& Configuration::task_graph(Index id) const {
  BBS_REQUIRE(id >= 0 && id < num_task_graphs(),
              "Configuration::task_graph: bad id");
  return graphs_[static_cast<std::size_t>(id)];
}

TaskGraph& Configuration::mutable_task_graph(Index id) {
  BBS_REQUIRE(id >= 0 && id < num_task_graphs(),
              "Configuration::mutable_task_graph: bad id");
  return graphs_[static_cast<std::size_t>(id)];
}

Index Configuration::total_tasks() const {
  Index total = 0;
  for (const TaskGraph& g : graphs_) total += g.num_tasks();
  return total;
}

Index Configuration::total_buffers() const {
  Index total = 0;
  for (const TaskGraph& g : graphs_) total += g.num_buffers();
  return total;
}

}  // namespace bbs::model
