// Structural validation of configurations (Configuration::validate).
#include <cmath>
#include <sstream>

#include "bbs/common/assert.hpp"
#include "bbs/model/configuration.hpp"

namespace bbs::model {

namespace {

[[noreturn]] void fail(const std::string& context, const std::string& what) {
  throw ModelError("invalid configuration: " + context + ": " + what);
}

// NaN compares false against every threshold, so the sign/range checks
// below would silently wave through a NaN field and let it poison the SOCP
// far from the source. Every real-valued field therefore gets an explicit
// finiteness gate first.
bool bad(double value) { return !std::isfinite(value); }

}  // namespace

void Configuration::validate() const {
  if (granularity_ < 1) {
    fail("platform", "granularity g must be a positive integer");
  }
  for (Index p = 0; p < num_processors(); ++p) {
    const Processor& proc = processor(p);
    std::ostringstream ctx;
    ctx << "processor '" << proc.name << "'";
    if (bad(proc.replenishment_interval) ||
        proc.replenishment_interval <= 0.0) {
      fail(ctx.str(), "replenishment interval must be positive and finite");
    }
    if (bad(proc.scheduling_overhead) || proc.scheduling_overhead < 0.0) {
      fail(ctx.str(), "scheduling overhead must be nonnegative and finite");
    }
    if (proc.scheduling_overhead >= proc.replenishment_interval) {
      fail(ctx.str(),
           "scheduling overhead consumes the whole replenishment interval");
    }
  }
  for (Index m = 0; m < num_memories(); ++m) {
    const Memory& mem = memory(m);
    if (mem.capacity != -1.0 && (bad(mem.capacity) || mem.capacity < 0.0)) {
      fail("memory '" + mem.name + "'",
           "capacity must be finite and >= 0, or -1");
    }
  }
  for (Index gi = 0; gi < num_task_graphs(); ++gi) {
    const TaskGraph& g = task_graph(gi);
    const std::string gctx = "task graph '" + g.name() + "'";
    if (bad(g.required_period()) || g.required_period() <= 0.0) {
      fail(gctx, "required period must be positive and finite");
    }
    if (g.num_tasks() == 0) {
      fail(gctx, "graph has no tasks");
    }
    for (Index t = 0; t < g.num_tasks(); ++t) {
      const Task& task = g.task(t);
      const std::string tctx = gctx + ", task '" + task.name + "'";
      if (task.processor < 0 || task.processor >= num_processors()) {
        fail(tctx, "processor reference out of range");
      }
      if (bad(task.wcet) || task.wcet <= 0.0) {
        fail(tctx, "worst-case execution time must be positive and finite");
      }
      if (bad(task.budget_weight) || task.budget_weight < 0.0) {
        fail(tctx, "budget weight must be nonnegative and finite");
      }
      const Processor& proc = processor(task.processor);
      if (task.wcet > proc.replenishment_interval) {
        // chi(w) may exceed one replenishment interval in general, but then
        // even a full budget cannot finish an execution within one interval;
        // the dataflow model still covers this (the va2 duration grows), so
        // this is allowed — only a zero/negative budget headroom is fatal,
        // which constraint (9) will detect as infeasibility.
        continue;
      }
    }
    for (Index b = 0; b < g.num_buffers(); ++b) {
      const Buffer& buf = g.buffer(b);
      const std::string bctx = gctx + ", buffer '" + buf.name + "'";
      if (buf.producer < 0 || buf.producer >= g.num_tasks()) {
        fail(bctx, "producer reference out of range");
      }
      if (buf.consumer < 0 || buf.consumer >= g.num_tasks()) {
        fail(bctx, "consumer reference out of range");
      }
      if (buf.memory < 0 || buf.memory >= num_memories()) {
        fail(bctx, "memory reference out of range");
      }
      if (buf.container_size < 1) {
        fail(bctx, "container size zeta(b) must be a positive integer");
      }
      if (bad(buf.size_weight) || buf.size_weight < 0.0) {
        fail(bctx, "size weight must be nonnegative and finite");
      }
      if (buf.initial_fill < 0) {
        fail(bctx, "initial fill iota(b) must be nonnegative");
      }
      if (buf.max_capacity != -1 && buf.max_capacity < 1) {
        fail(bctx, "maximum capacity must be >= 1 containers (or -1)");
      }
      if (buf.max_capacity != -1 && buf.initial_fill > buf.max_capacity) {
        fail(bctx, "initial fill exceeds the maximum capacity");
      }
    }
  }
}

}  // namespace bbs::model
