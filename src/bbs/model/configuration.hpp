// Configurations: the full mapping input of Section II-A.
//
// A configuration C = (Q, P, M, mu, rho, o, sigma, g) bundles the task graphs
// Q with the platform: processors P (TDM budget schedulers with
// replenishment interval rho(p) and worst-case scheduling overhead o(p)),
// memories M with storage capacity sigma(m), and the platform-wide budget
// allocation granularity g.
#pragma once

#include <string>
#include <vector>

#include "bbs/model/task_graph.hpp"

namespace bbs::model {

struct Processor {
  std::string name;
  /// Replenishment interval rho(p) of the budget scheduler, in cycles.
  double replenishment_interval = 0.0;
  /// Worst-case scheduling overhead o(p) per replenishment interval.
  double scheduling_overhead = 0.0;
};

struct Memory {
  std::string name;
  /// Storage capacity sigma(m), in the same units as container sizes.
  /// -1 means unconstrained.
  double capacity = -1.0;
};

class Configuration {
 public:
  /// `granularity` is the budget allocation granularity g in N*: budgets are
  /// allocated in multiples of g cycles.
  explicit Configuration(Index granularity = 1);

  Index add_processor(std::string name, double replenishment_interval,
                      double scheduling_overhead = 0.0);
  Index add_memory(std::string name, double capacity = -1.0);

  /// Adds a task graph and returns its index. The graph's processor/memory
  /// references must point into this configuration (checked by validate()).
  Index add_task_graph(TaskGraph graph);

  Index num_processors() const { return static_cast<Index>(processors_.size()); }
  Index num_memories() const { return static_cast<Index>(memories_.size()); }
  Index num_task_graphs() const { return static_cast<Index>(graphs_.size()); }

  const Processor& processor(Index id) const;
  const Memory& memory(Index id) const;
  const TaskGraph& task_graph(Index id) const;
  TaskGraph& mutable_task_graph(Index id);

  Index granularity() const { return granularity_; }

  /// Total number of tasks across all graphs (|W_Q|).
  Index total_tasks() const;
  /// Total number of buffers across all graphs (|B_Q|).
  Index total_buffers() const;

  /// Structural validation: every reference resolves, parameters are in
  /// range. Throws ModelError describing the first problem found.
  void validate() const;

 private:
  Index granularity_;
  std::vector<Processor> processors_;
  std::vector<Memory> memories_;
  std::vector<TaskGraph> graphs_;
};

/// Identifies a task globally: graph index + task index within the graph.
struct TaskRef {
  Index graph = 0;
  Index task = 0;
  bool operator==(const TaskRef&) const = default;
};

/// Identifies a buffer globally: graph index + buffer index within the graph.
struct BufferRef {
  Index graph = 0;
  Index buffer = 0;
  bool operator==(const BufferRef&) const = default;
};

}  // namespace bbs::model
