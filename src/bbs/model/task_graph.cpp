#include "bbs/model/task_graph.hpp"

#include "bbs/common/assert.hpp"

namespace bbs::model {

TaskGraph::TaskGraph(std::string name, double required_period)
    : name_(std::move(name)), required_period_(required_period) {
  BBS_REQUIRE(required_period_ > 0.0,
              "TaskGraph: required period must be positive");
}

void TaskGraph::set_required_period(double period) {
  BBS_REQUIRE(period > 0.0,
              "TaskGraph::set_required_period: period must be positive");
  required_period_ = period;
}

Index TaskGraph::add_task(std::string name, Index processor, double wcet,
                          double budget_weight) {
  BBS_REQUIRE(wcet > 0.0, "TaskGraph::add_task: WCET must be positive");
  BBS_REQUIRE(processor >= 0, "TaskGraph::add_task: invalid processor");
  tasks_.push_back(Task{std::move(name), processor, wcet, budget_weight});
  return static_cast<Index>(tasks_.size()) - 1;
}

Index TaskGraph::add_buffer(std::string name, Index producer, Index consumer,
                            Index memory, Index container_size,
                            Index initial_fill, double size_weight) {
  BBS_REQUIRE(producer >= 0 && producer < num_tasks(),
              "TaskGraph::add_buffer: invalid producer task");
  BBS_REQUIRE(consumer >= 0 && consumer < num_tasks(),
              "TaskGraph::add_buffer: invalid consumer task");
  BBS_REQUIRE(memory >= 0, "TaskGraph::add_buffer: invalid memory");
  BBS_REQUIRE(container_size >= 1,
              "TaskGraph::add_buffer: container size must be >= 1");
  BBS_REQUIRE(initial_fill >= 0,
              "TaskGraph::add_buffer: negative initial fill");
  buffers_.push_back(Buffer{std::move(name), producer, consumer, memory,
                            container_size, initial_fill, size_weight, -1});
  return static_cast<Index>(buffers_.size()) - 1;
}

const Task& TaskGraph::task(Index id) const {
  BBS_REQUIRE(id >= 0 && id < num_tasks(), "TaskGraph::task: bad id");
  return tasks_[static_cast<std::size_t>(id)];
}

const Buffer& TaskGraph::buffer(Index id) const {
  BBS_REQUIRE(id >= 0 && id < num_buffers(), "TaskGraph::buffer: bad id");
  return buffers_[static_cast<std::size_t>(id)];
}

Task& TaskGraph::mutable_task(Index id) {
  BBS_REQUIRE(id >= 0 && id < num_tasks(), "TaskGraph::mutable_task: bad id");
  return tasks_[static_cast<std::size_t>(id)];
}

Buffer& TaskGraph::mutable_buffer(Index id) {
  BBS_REQUIRE(id >= 0 && id < num_buffers(),
              "TaskGraph::mutable_buffer: bad id");
  return buffers_[static_cast<std::size_t>(id)];
}

void TaskGraph::set_max_capacity(Index buffer_id, Index max_capacity) {
  BBS_REQUIRE(max_capacity == -1 || max_capacity >= 1,
              "TaskGraph::set_max_capacity: capacity must be >= 1 or -1");
  mutable_buffer(buffer_id).max_capacity = max_capacity;
}

}  // namespace bbs::model
