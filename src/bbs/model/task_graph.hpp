// Task graphs: the application model of Section II-A of the paper.
//
// A task graph T = (W, B, pi, chi, nu, zeta, iota) is a directed multigraph
// whose vertices W are tasks and whose edges B are fixed-capacity FIFO
// buffers. Task w runs on processor pi(w) with worst-case execution time
// chi(w); buffer b lives in memory nu(b), has containers of size zeta(b) and
// iota(b) initially filled containers. A task starts only when every input
// buffer holds data and every output buffer has free space — the
// back-pressure that couples buffer capacities to timing.
//
// The weight functions a (per task) and b (per buffer) steer the objective of
// Algorithm 1: minimise sum a(w)*budget(w) + sum b(b)*zeta(b)*tokens(b).
#pragma once

#include <string>
#include <vector>

#include "bbs/linalg/sparse_matrix.hpp"

namespace bbs::model {

using linalg::Index;

struct Task {
  std::string name;
  Index processor = 0;        ///< pi(w): index into the configuration's processors
  double wcet = 0.0;          ///< chi(w) in cycles (> 0)
  double budget_weight = 1.0; ///< a(w): objective weight of this task's budget
};

struct Buffer {
  std::string name;
  Index producer = 0;         ///< task index within the owning graph
  Index consumer = 0;         ///< task index within the owning graph
  Index memory = 0;           ///< nu(b): index into the configuration's memories
  Index container_size = 1;   ///< zeta(b) >= 1
  Index initial_fill = 0;     ///< iota(b) >= 0 initially filled containers
  double size_weight = 1.0;   ///< b(b): objective weight of this buffer's capacity
  /// Optional upper bound on the capacity gamma(b) in containers
  /// (-1 = unconstrained). The trade-off sweeps of Figures 2 and 3 constrain
  /// this bound.
  Index max_capacity = -1;
};

/// One streaming job: a task graph with a throughput requirement, expressed
/// as the maximum admissible period mu(T) between successive task executions
/// in the steady state (smaller period = higher throughput).
class TaskGraph {
 public:
  TaskGraph(std::string name, double required_period);

  Index add_task(std::string name, Index processor, double wcet,
                 double budget_weight = 1.0);

  Index add_buffer(std::string name, Index producer, Index consumer,
                   Index memory, Index container_size = 1,
                   Index initial_fill = 0, double size_weight = 1.0);

  const std::string& name() const { return name_; }
  double required_period() const { return required_period_; }

  /// Tightens or relaxes the throughput requirement (used by the minimal-
  /// period search); must stay positive.
  void set_required_period(double period);

  Index num_tasks() const { return static_cast<Index>(tasks_.size()); }
  Index num_buffers() const { return static_cast<Index>(buffers_.size()); }

  const Task& task(Index id) const;
  const Buffer& buffer(Index id) const;

  Task& mutable_task(Index id);
  Buffer& mutable_buffer(Index id);

  /// Sets the capacity cap gamma(b) <= max_capacity (containers); -1 clears.
  void set_max_capacity(Index buffer_id, Index max_capacity);

 private:
  std::string name_;
  double required_period_;
  std::vector<Task> tasks_;
  std::vector<Buffer> buffers_;
};

}  // namespace bbs::model
