// Primal-dual interior-point method for cone programs (LP + second-order
// cones) in the homogeneous self-dual embedding, with Nesterov–Todd scaling
// and Mehrotra predictor-corrector steps.
//
// This is the replacement for the commercial SOCP solver (CPLEX) used in the
// paper: it solves exactly the problem class of Algorithm 1 with polynomial
// complexity and returns certificates of primal/dual infeasibility, which the
// budget/buffer trade-off sweeps rely on to find the feasibility frontier.
//
// The embedding solves, in variables (x, z, s, tau, kappa):
//
//     G' z + c tau          = 0
//     G x  - h tau + s      = 0
//     c' x + h' z  + kappa  = 0
//     s, z in K,  tau, kappa >= 0,
//
// whose strictly complementary solutions either recover an optimal
// primal-dual pair (tau > 0) or an infeasibility certificate (kappa > 0).
#pragma once

#include <string>

#include "bbs/solver/conic_problem.hpp"
#include "bbs/solver/kkt_system.hpp"

namespace bbs::solver {

enum class SolveStatus {
  kOptimal,
  kPrimalInfeasible,  ///< certificate: z in K, G'z = 0, h'z < 0
  kDualInfeasible,    ///< certificate: x with Gx + s = 0, s in K, c'x < 0
  kMaxIterations,
  kNumericalFailure,
};

const char* to_string(SolveStatus status);

struct SolverOptions {
  int max_iterations = 100;
  double feas_tol = 1e-6;
  double gap_tol = 1e-6;
  /// Stop when the best merit seen has not improved for this many
  /// iterations (the iterate has reached its numerical floor); the best
  /// iterate is returned, as optimal if it meets the tolerances.
  int stall_iterations = 15;
  /// Fraction of the step to the cone boundary actually taken.
  double step_fraction = 0.99;
  int refine_steps = 1;
  double static_regularisation = 1e-12;
  linalg::OrderingMethod ordering = linalg::OrderingMethod::kMinimumDegree;
  /// Ruiz equilibration rounds (0 disables scaling).
  int equilibrate_rounds = 3;
  /// 0 = silent, 1 = per-solve summary, 2 = per-iteration trace to stderr.
  int verbosity = 0;
};

struct SolveResult {
  SolveStatus status = SolveStatus::kNumericalFailure;
  Vector x;  ///< primal solution (or dual-infeasibility certificate)
  Vector s;  ///< primal slacks
  Vector z;  ///< dual solution (or primal-infeasibility certificate)
  double primal_objective = 0.0;
  double dual_objective = 0.0;
  double duality_gap = 0.0;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  int iterations = 0;
  double tau = 0.0;
  double kappa = 0.0;

  bool is_optimal() const { return status == SolveStatus::kOptimal; }
};

/// Solves a conic problem. Stateless; thread-compatible (distinct instances
/// may run concurrently).
class IpmSolver {
 public:
  explicit IpmSolver(SolverOptions options = {}) : options_(options) {}

  SolveResult solve(const ConicProblem& problem) const;

  const SolverOptions& options() const { return options_; }

 private:
  SolverOptions options_;
};

}  // namespace bbs::solver
