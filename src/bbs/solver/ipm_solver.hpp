// Primal-dual interior-point method for cone programs (LP + second-order
// cones) in the homogeneous self-dual embedding, with Nesterov–Todd scaling
// and Mehrotra predictor-corrector steps.
//
// This is the replacement for the commercial SOCP solver (CPLEX) used in the
// paper: it solves exactly the problem class of Algorithm 1 with polynomial
// complexity and returns certificates of primal/dual infeasibility, which the
// budget/buffer trade-off sweeps rely on to find the feasibility frontier.
//
// The embedding solves, in variables (x, z, s, tau, kappa):
//
//     G' z + c tau          = 0
//     G x  - h tau + s      = 0
//     c' x + h' z  + kappa  = 0
//     s, z in K,  tau, kappa >= 0,
//
// whose strictly complementary solutions either recover an optimal
// primal-dual pair (tau > 0) or an infeasibility certificate (kappa > 0).
#pragma once

#include <memory>
#include <string>

#include "bbs/solver/cancel.hpp"
#include "bbs/solver/conic_problem.hpp"
#include "bbs/solver/kkt_system.hpp"

namespace bbs::solver {

enum class SolveStatus {
  kOptimal,
  kPrimalInfeasible,  ///< certificate: z in K, G'z = 0, h'z < 0
  kDualInfeasible,    ///< certificate: x with Gx + s = 0, s in K, c'x < 0
  kMaxIterations,
  kNumericalFailure,
  kTimedOut,   ///< wall-clock budget (time_limit_ms / token deadline) expired
  kCancelled,  ///< the solve's CancelToken was flipped mid-run
};

const char* to_string(SolveStatus status);

/// Observer interface for per-request solve introspection. The solver calls
/// it from inside the iteration loop (same thread as solve()); an
/// implementation must be cheap and must not re-enter the solver. Lives in
/// the solver layer so upper layers (telemetry) can implement it without the
/// solver depending on them.
class IpmTraceSink {
 public:
  virtual ~IpmTraceSink() = default;
  /// Once per IPM iteration, stamped at the convergence test: barrier
  /// parameter, normalised primal/dual residuals, and the step length
  /// *accepted on the previous iteration* (0 on the first — the current
  /// iteration's step is not known yet at test time).
  virtual void ipm_iteration(int iteration, double mu, double primal_residual,
                             double dual_residual, double step) = 0;
  /// Once per recovery-ladder rung (attempt >= 1), with the static
  /// regularisation the retry will run under.
  virtual void ipm_ladder_rung(int attempt, double static_regularisation) = 0;
};

struct SolverOptions {
  int max_iterations = 100;
  double feas_tol = 1e-6;
  double gap_tol = 1e-6;
  /// Stop when the best merit seen has not improved for this many
  /// iterations (the iterate has reached its numerical floor); the best
  /// iterate is returned, as optimal if it meets the tolerances.
  int stall_iterations = 15;
  /// Fraction of the step to the cone boundary actually taken.
  double step_fraction = 0.99;
  int refine_steps = 1;
  double static_regularisation = 1e-12;
  linalg::OrderingMethod ordering = linalg::OrderingMethod::kMinimumDegree;
  /// Ruiz equilibration rounds (0 disables scaling).
  int equilibrate_rounds = 3;
  /// Warm starting (workspace solves only): seed the embedding from the
  /// previous solve's optimal (x, s, z), pushed back into the cone interior.
  /// Falls back to the cold start when the previous solve was not optimal or
  /// the shifted point leaves the cone.
  bool warm_start = true;
  /// Minimal distance from the cone boundary of the warm-start point, in
  /// equilibrated units (the cold start is the cone identity, margin 1).
  /// The previous optimum sits on the boundary, where NT-scaled steps
  /// collapse; shifting it this far towards the identity trades a little
  /// optimality of the seed for full-length first steps. Values in
  /// [0.05, 0.5] behave almost identically on the paper's instances; 0.1
  /// measured best overall.
  double warm_start_margin = 0.1;
  /// 0 = silent, 1 = per-solve summary, 2 = per-iteration trace to stderr.
  int verbosity = 0;
  /// Wall-clock budget for one solve() call, in milliseconds; 0 disables.
  /// Checked once per iteration: expiry returns the best iterate seen with
  /// status kTimedOut (or kOptimal when it already meets the tolerances)
  /// instead of throwing, leaving any enclosing workspace/session reusable.
  double time_limit_ms = 0.0;
  /// Absolute steady-clock deadline shared by *all* solves run under these
  /// options — how a multi-solve request (sweep, bisection) spends one
  /// budget across its probes; time_point::max() disables. Combines with
  /// time_limit_ms and any armed token deadline (earliest wins). Excluded
  /// from pool keys and JSON (it is per-execution state, not structure).
  CancelToken::Clock::time_point deadline =
      CancelToken::Clock::time_point::max();
  /// Optional shared cancellation token, polled once per iteration (one
  /// relaxed atomic load). A flipped flag exits with kCancelled; an armed
  /// token deadline combines with time_limit_ms (earliest wins).
  std::shared_ptr<CancelToken> cancel;
  /// Fault injection: force a numerical-failure exit at this iteration
  /// (-1 = off). Exists for the chaos tests; never set in production.
  int fail_at_iteration = -1;
  /// Scope of the injected failure: when true, fail_at_iteration only fires
  /// on the *first* attempt of a solve, so the recovery ladder below can be
  /// observed actually recovering (the `ipm.fail_once` failpoint); when
  /// false (default) the fault re-fires on every retry and the ladder
  /// exhausts into a hard kNumericalFailure (the `ipm.fail_at` failpoint).
  bool fail_only_first_attempt = false;
  /// Optional per-execution trace sink (per-iteration and ladder events for
  /// request tracing). Not owned; the caller guarantees it outlives the
  /// solve. Excluded from pool keys and JSON like deadline/cancel — it is
  /// per-execution state, not structure. nullptr (default) emits nothing.
  IpmTraceSink* trace_sink = nullptr;
  /// Numerical recovery ladder: on a kNumericalFailure exit, retry the
  /// solve up to this many times with progressively heavier-handed
  /// settings — attempt 1 drops the warm-start seed and restarts cold;
  /// attempts 2+ additionally multiply the static regularisation by
  /// recovery_regularisation_growth (cumulative) and re-run the Ruiz
  /// equilibration with extra rounds. The base options are restored
  /// afterwards, so a recovered workspace behaves identically on the next
  /// solve. 0 disables the ladder — set that in tests that pin exact
  /// iteration or solve counts.
  int recovery_attempts = 2;
  /// Per-rung multiplier applied to static_regularisation from the second
  /// recovery attempt on.
  double recovery_regularisation_growth = 1e4;
};

struct SolveResult {
  SolveStatus status = SolveStatus::kNumericalFailure;
  Vector x;  ///< primal solution (or dual-infeasibility certificate)
  Vector s;  ///< primal slacks
  Vector z;  ///< dual solution (or primal-infeasibility certificate)
  double primal_objective = 0.0;
  double dual_objective = 0.0;
  double duality_gap = 0.0;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  int iterations = 0;
  double tau = 0.0;
  double kappa = 0.0;
  /// True iff this solve was seeded from a previous solution (workspace
  /// entry point with a stored optimal point).
  bool warm_started = false;
  /// Recovery-ladder attempts consumed after the initial solve failed
  /// numerically (0 = the first attempt's result stands).
  int recovery_attempts = 0;
  /// True iff the initial attempt failed numerically and a ladder retry
  /// then produced a usable answer (an optimum or an infeasibility
  /// certificate).
  bool recovered = false;

  bool is_optimal() const { return status == SolveStatus::kOptimal; }
};

/// Persistent state for repeated solves of *structurally identical* conic
/// problems (same G sparsity pattern, cone and dimensions; coefficient
/// values are free to change between solves — trade-off sweeps, binary
/// searches). Owns everything IpmSolver::solve would otherwise set up per
/// call: the KKT system with its one-time symbolic factorisation, the Ruiz
/// scaling buffers, the NT scaling, all iterate and direction vectors, and
/// the previous optimal solution used for warm starts. A default-constructed
/// workspace binds to the first problem it solves; reset() unbinds it.
/// Not thread-safe: one workspace serves one solve at a time.
class IpmWorkspace {
 public:
  IpmWorkspace() = default;

  /// Drops all cached state: the next solve re-runs the symbolic analysis,
  /// cold-starts, and may carry a different problem structure.
  void reset();

  /// The persistent KKT system (nullptr before the first solve). Its
  /// stats().symbolic_factorisations stays 1 across all solves of the
  /// workspace's lifetime — the reuse invariant sessions assert on.
  const KktSystem* kkt() const { return kkt_.get(); }

  int solves() const { return solves_; }
  /// Total interior-point iterations across all solves.
  long total_iterations() const { return total_iterations_; }
  /// How many solves were actually seeded from a previous solution.
  int warm_started_solves() const { return warm_started_solves_; }
  /// Solves whose initial attempt failed numerically but whose recovery
  /// ladder then produced a usable result (SolveResult::recovered).
  int recovered_solves() const { return recovered_solves_; }

  /// Installs an explicit warm-start seed (original, unscaled coordinates)
  /// for the next solve, replacing the auto-stored previous optimum. The
  /// dimensions must match the bound problem — mismatched seeds are ignored
  /// at solve time (cold start), never an error. The solve treats the point
  /// exactly like an auto-stored optimum: it is mapped into the equilibrated
  /// coordinates and padded back into the cone interior.
  void seed_warm(const Vector& x, const Vector& s, const Vector& z);
  /// Drops any stored warm-start point (the next solve is cold).
  void clear_warm();
  bool has_warm() const { return have_warm_; }

  /// Offers a cached symbolic analysis (from the persistent structure
  /// cache) for the KKT system this workspace will create on its first
  /// solve. Ignored if the KKT system already exists; validated — and
  /// rejected without error — inside KktSystem if it does not match the
  /// actual normal-equation pattern.
  void seed_symbolic(SymbolicAnalysis analysis);
  /// Exports the KKT symbolic analysis after the first solve (nullopt
  /// before the workspace is bound).
  std::optional<SymbolicAnalysis> export_symbolic() const;

 private:
  friend class IpmSolver;

  bool bound_ = false;
  // Cone of the bound problem structure, owned by the workspace so the
  // persistent NtScaling (and any re-solve) never refers back into a
  // possibly destroyed ConicProblem. Heap-allocated for a stable address
  // across workspace moves. Validated against every solved problem.
  std::unique_ptr<ConeSpec> cone_;
  // Equilibrated working copy of the problem data (pattern fixed at bind).
  linalg::SparseMatrix g_;
  // Raw (unequilibrated) G values of the last solve: when a re-solve only
  // changed h/c — a capacity-bound sweep — the equilibration and the KKT
  // value update are skipped entirely.
  std::vector<double> raw_g_values_;
  Vector c_, h_;
  Vector row_scale_, col_scale_;      // accumulated Ruiz scalings
  Vector ruiz_row_max_, ruiz_col_max_;  // per-round work buffers
  std::unique_ptr<KktSystem> kkt_;
  // Cached symbolic analysis offered via seed_symbolic(), handed to the
  // KKT system when the first solve creates it.
  std::unique_ptr<SymbolicAnalysis> pending_symbolic_;
  std::unique_ptr<NtScaling> scaling_;
  // Iterates and solve-loop work vectors.
  Vector x_, s_, z_, e_;
  Vector best_x_, best_s_, best_z_;
  Vector r_dual_, r_pri_;
  Vector u1_, v1_, u2_, v2_;
  Vector dx_aff_, dz_aff_, ds_aff_, dx_, dz_, ds_;
  // Previous optimal solution in original (unscaled) coordinates.
  bool have_warm_ = false;
  Vector warm_x_, warm_s_, warm_z_;
  // Set by the recovery ladder (and its cleanup) to force the next attempt
  // through the full numeric refresh — re-copy G, re-equilibrate, update
  // the KKT values — even when the raw coefficients are unchanged.
  bool refresh_numerics_ = false;
  // Cumulative counters.
  int solves_ = 0;
  long total_iterations_ = 0;
  int warm_started_solves_ = 0;
  int recovered_solves_ = 0;
};

/// Solves a conic problem. Stateless; thread-compatible (distinct instances
/// may run concurrently).
class IpmSolver {
 public:
  explicit IpmSolver(SolverOptions options = {}) : options_(options) {}

  SolveResult solve(const ConicProblem& problem) const;

  /// Solves with a persistent workspace. The first call binds `workspace`
  /// to the problem's structure; later calls require the same G pattern,
  /// cone and dimensions (ContractViolation otherwise) and reuse the
  /// symbolic KKT analysis, the scaling buffers and — when enabled and the
  /// previous solve was optimal — its solution as a warm start. A
  /// kNumericalFailure exit escalates through the recovery ladder (see
  /// SolverOptions::recovery_attempts) before it is reported.
  SolveResult solve(const ConicProblem& problem,
                    IpmWorkspace& workspace) const;

  const SolverOptions& options() const { return options_; }

 private:
  /// One interior-point run under `options` (no ladder). The symbolic KKT
  /// analysis stays shared across attempts: regularisation changes go
  /// through KktSystem::set_static_regularisation, never a rebuild.
  SolveResult solve_attempt(const ConicProblem& problem, IpmWorkspace& ws,
                            const SolverOptions& options) const;

  SolverOptions options_;
};

}  // namespace bbs::solver
