// Symmetric cone support for the interior-point solver.
//
// The solver works with a composite cone
//     K = R_+^l  ×  SOC(q_1) × ... × SOC(q_N)
// laid out contiguously in every cone-dimension vector: first the `l`
// nonnegative entries, then each second-order cone block
//     SOC(q) = { (u0, u1) in R × R^{q-1} : u0 >= ||u1||_2 }.
//
// The Jordan-algebra operations here (identity element, circle product,
// arrow-operator solves, step-to-boundary) are exactly the ones required by a
// Nesterov–Todd scaled Mehrotra predictor-corrector method.
#pragma once

#include <vector>

#include "bbs/common/rng.hpp"
#include "bbs/linalg/dense_matrix.hpp"
#include "bbs/linalg/sparse_matrix.hpp"

namespace bbs::solver {

using linalg::Index;
using linalg::Vector;

/// Composite symmetric cone description.
class ConeSpec {
 public:
  ConeSpec() = default;
  ConeSpec(Index nonneg, std::vector<Index> soc_dims);

  /// Number of entries in the nonnegative-orthant block.
  Index nonneg() const { return nonneg_; }

  /// Dimensions of the second-order cone blocks (each >= 2).
  const std::vector<Index>& soc_dims() const { return soc_dims_; }

  /// Total vector dimension l + sum(q_k).
  Index dim() const { return dim_; }

  /// Barrier degree: l + number of SOC blocks. The duality measure is
  /// mu = (s'z + tau*kappa) / (degree + 1).
  Index degree() const {
    return nonneg_ + static_cast<Index>(soc_dims_.size());
  }

  /// Offset of SOC block k within cone vectors.
  Index soc_offset(std::size_t k) const { return soc_offsets_[k]; }

  /// Writes the cone identity element e into `v` (must have size dim()).
  void identity(Vector& v) const;

  /// Jordan (circle) product w = u ∘ v.
  Vector circ(const Vector& u, const Vector& v) const;

  /// Solves the arrow system lambda ∘ x = d for x. `lambda` must be in the
  /// interior of the cone.
  Vector solve_circ(const Vector& lambda, const Vector& d) const;

  /// Largest alpha >= 0 such that u + alpha*du stays in the cone, capped at
  /// `cap`. `u` must be strictly interior.
  double max_step(const Vector& u, const Vector& du, double cap = 1e10) const;

  /// True iff u is in the interior of the cone (with slack margin).
  bool is_interior(const Vector& u, double margin = 0.0) const;

  /// Distance of u from the cone boundary along the identity direction:
  /// min over the LP entries u_i and the SOC residuals u0 - ||u1||.
  /// Positive iff u is strictly interior; u + (t - margin)*e has margin t
  /// for any t. Used to push warm-start points back into the interior.
  double interior_margin(const Vector& u) const;

 private:
  Index nonneg_ = 0;
  std::vector<Index> soc_dims_;
  std::vector<Index> soc_offsets_;
  Index dim_ = 0;
};

/// Draws a strictly interior point of the composite cone: positive LP
/// coordinates, SOC blocks with the head strictly above the tail norm. Used
/// by randomised tests and the scaling benchmarks.
Vector random_interior_point(const ConeSpec& cone, Rng& rng);

}  // namespace bbs::solver
