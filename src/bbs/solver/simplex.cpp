#include "bbs/solver/simplex.hpp"

#include <cmath>
#include <limits>

#include "bbs/common/assert.hpp"

namespace bbs::solver {

namespace {

constexpr double kEps = 1e-9;

/// Dense simplex tableau on equality form  B x = rhs, x >= 0.
/// Columns: structural variables first, then artificials.
class Tableau {
 public:
  Tableau(linalg::DenseMatrix a, Vector rhs)
      : a_(std::move(a)), rhs_(std::move(rhs)),
        basis_(a_.rows(), 0) {}

  std::size_t rows() const { return a_.rows(); }
  std::size_t cols() const { return a_.cols(); }

  linalg::DenseMatrix& a() { return a_; }
  Vector& rhs() { return rhs_; }
  std::vector<std::size_t>& basis() { return basis_; }

  /// Runs the simplex method on reduced costs of `cost`, mutating the
  /// tableau. Returns false if the LP is unbounded in this phase.
  bool iterate(const Vector& cost, int& pivot_budget) {
    const std::size_t m = rows();
    const std::size_t n = cols();
    // Basic solution is kept feasible: rhs_ >= 0 throughout.
    while (pivot_budget-- > 0) {
      // Duals y' = c_B' B^{-1} are implicit: the tableau is kept in
      // canonical form, so the reduced cost of column j is
      // cost_j - sum_i cost_basis(i) * a(i, j).
      std::size_t enter = n;
      for (std::size_t j = 0; j < n; ++j) {  // Bland: smallest index
        double red = cost[j];
        for (std::size_t i = 0; i < m; ++i) red -= cost[basis_[i]] * a_(i, j);
        if (red < -kEps) {
          enter = j;
          break;
        }
      }
      if (enter == n) return true;  // optimal

      // Ratio test (Bland: smallest basis index among ties).
      std::size_t leave = m;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < m; ++i) {
        if (a_(i, enter) > kEps) {
          const double ratio = rhs_[i] / a_(i, enter);
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leave == m || basis_[i] < basis_[leave]))) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave == m) return false;  // unbounded direction

      pivot(leave, enter);
    }
    throw NumericalError("simplex: pivot budget exhausted (cycling?)");
  }

  Vector basic_solution() const {
    Vector x(cols(), 0.0);
    for (std::size_t i = 0; i < rows(); ++i) x[basis_[i]] = rhs_[i];
    return x;
  }

 private:
  void pivot(std::size_t row, std::size_t col) {
    const double p = a_(row, col);
    BBS_ASSERT_MSG(std::abs(p) > kEps, "simplex pivot too small");
    const std::size_t n = cols();
    for (std::size_t j = 0; j < n; ++j) a_(row, j) /= p;
    rhs_[row] /= p;
    for (std::size_t i = 0; i < rows(); ++i) {
      if (i == row) continue;
      const double f = a_(i, col);
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) a_(i, j) -= f * a_(row, j);
      rhs_[i] -= f * rhs_[row];
      if (std::abs(rhs_[i]) < 1e-12) rhs_[i] = 0.0;
    }
    basis_[row] = col;
  }

  linalg::DenseMatrix a_;
  Vector rhs_;
  std::vector<std::size_t> basis_;
};

}  // namespace

LpResult solve_lp_simplex(const Vector& c, const linalg::DenseMatrix& a,
                          const Vector& b, int max_pivots) {
  BBS_REQUIRE(a.rows() == b.size() && a.cols() == c.size(),
              "solve_lp_simplex: dimension mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // Equality form: A x+ - A x- + I slack = b, everything >= 0, with rows
  // flipped so rhs >= 0. Artificial variables are added for flipped rows
  // (whose slack coefficient becomes -1).
  std::vector<int> flip(m, 1);
  std::size_t num_artificial = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (b[i] < 0.0) {
      flip[i] = -1;
      ++num_artificial;
    }
  }

  const std::size_t cols = 2 * n + m + num_artificial;
  linalg::DenseMatrix tab(m, cols);
  Vector rhs(m);
  std::size_t next_artificial = 2 * n + m;
  std::vector<std::size_t> initial_basis(m);

  for (std::size_t i = 0; i < m; ++i) {
    const double f = static_cast<double>(flip[i]);
    for (std::size_t j = 0; j < n; ++j) {
      tab(i, j) = f * a(i, j);
      tab(i, n + j) = -f * a(i, j);
    }
    tab(i, 2 * n + i) = f;  // slack (+1 or -1 after flipping)
    rhs[i] = f * b[i];
    if (flip[i] < 0) {
      tab(i, next_artificial) = 1.0;
      initial_basis[i] = next_artificial++;
    } else {
      initial_basis[i] = 2 * n + i;
    }
  }

  Tableau t(std::move(tab), std::move(rhs));
  t.basis() = initial_basis;
  int budget = max_pivots;

  LpResult result;
  if (num_artificial > 0) {
    // Phase 1: minimise the sum of artificials.
    Vector phase1_cost(cols, 0.0);
    for (std::size_t j = 2 * n + m; j < cols; ++j) phase1_cost[j] = 1.0;
    if (!t.iterate(phase1_cost, budget)) {
      result.status = SolveStatus::kNumericalFailure;  // cannot happen: bounded
      return result;
    }
    const Vector x1 = t.basic_solution();
    double art_sum = 0.0;
    for (std::size_t j = 2 * n + m; j < cols; ++j) art_sum += x1[j];
    if (art_sum > 1e-7) {
      result.status = SolveStatus::kPrimalInfeasible;
      return result;
    }
  }

  // Phase 2: original objective on the split variables.
  Vector phase2_cost(cols, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    phase2_cost[j] = c[j];
    phase2_cost[n + j] = -c[j];
  }
  // Forbid artificials from re-entering.
  for (std::size_t j = 2 * n + m; j < cols; ++j) phase2_cost[j] = 1e12;

  if (!t.iterate(phase2_cost, budget)) {
    result.status = SolveStatus::kDualInfeasible;  // unbounded below
    return result;
  }

  const Vector xs = t.basic_solution();
  result.x.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) result.x[j] = xs[j] - xs[n + j];
  result.objective = linalg::dot(c, result.x);
  result.status = SolveStatus::kOptimal;
  return result;
}

}  // namespace bbs::solver
