#include "bbs/solver/ipm_solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bbs/common/assert.hpp"

namespace bbs::solver {

namespace {

using linalg::SparseMatrix;
using linalg::TripletList;

/// Ruiz equilibration of G in place: accumulates diagonal row/column
/// scalings that bring the nonzero magnitudes of Dr * G * Dc towards 1 into
/// `row_scale` / `col_scale` (reset to 1 on entry). Rows belonging to the
/// same second-order cone block receive a common factor (any per-block
/// positive multiple of the identity is a cone automorphism; general diagonal
/// scalings are not). `row_max` / `col_max` are caller-owned work buffers so
/// repeated solves through a workspace allocate nothing here.
void ruiz_equilibrate(SparseMatrix& g, const ConeSpec& cone, int rounds,
                      Vector& row_scale, Vector& col_scale, Vector& row_max,
                      Vector& col_max) {
  const auto m = static_cast<std::size_t>(g.rows());
  const auto n = static_cast<std::size_t>(g.cols());
  row_scale.assign(m, 1.0);
  col_scale.assign(n, 1.0);

  for (int round = 0; round < rounds; ++round) {
    row_max.assign(m, 0.0);
    col_max.assign(n, 0.0);
    for (Index c = 0; c < g.cols(); ++c) {
      for (Index k = g.col_ptr()[c]; k < g.col_ptr()[c + 1]; ++k) {
        const double a = std::abs(g.values()[k]);
        const auto r = static_cast<std::size_t>(g.row_ind()[k]);
        row_max[r] = std::max(row_max[r], a);
        col_max[static_cast<std::size_t>(c)] =
            std::max(col_max[static_cast<std::size_t>(c)], a);
      }
    }
    // SOC blocks must share one factor: use the block-wise maximum.
    for (std::size_t b = 0; b < cone.soc_dims().size(); ++b) {
      const Index off = cone.soc_offset(b);
      const Index q = cone.soc_dims()[b];
      double blk = 0.0;
      for (Index i = off; i < off + q; ++i)
        blk = std::max(blk, row_max[static_cast<std::size_t>(i)]);
      for (Index i = off; i < off + q; ++i)
        row_max[static_cast<std::size_t>(i)] = blk;
    }
    // Turn the maxima into this round's scalings in place.
    for (std::size_t i = 0; i < m; ++i) {
      row_max[i] = (row_max[i] > 0.0) ? 1.0 / std::sqrt(row_max[i]) : 1.0;
    }
    for (std::size_t j = 0; j < n; ++j) {
      col_max[j] = (col_max[j] > 0.0) ? 1.0 / std::sqrt(col_max[j]) : 1.0;
    }
    for (Index c = 0; c < g.cols(); ++c) {
      for (Index k = g.col_ptr()[c]; k < g.col_ptr()[c + 1]; ++k) {
        g.values()[k] *= row_max[static_cast<std::size_t>(g.row_ind()[k])] *
                         col_max[static_cast<std::size_t>(c)];
      }
    }
    for (std::size_t i = 0; i < m; ++i) row_scale[i] *= row_max[i];
    for (std::size_t j = 0; j < n; ++j) col_scale[j] *= col_max[j];
  }
}

double safe_div(double a, double b) {
  return (b == 0.0) ? 0.0 : a / b;
}

}  // namespace

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kPrimalInfeasible:
      return "primal-infeasible";
    case SolveStatus::kDualInfeasible:
      return "dual-infeasible";
    case SolveStatus::kMaxIterations:
      return "max-iterations";
    case SolveStatus::kNumericalFailure:
      return "numerical-failure";
    case SolveStatus::kTimedOut:
      return "timed-out";
    case SolveStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

void IpmWorkspace::reset() { *this = IpmWorkspace(); }

void IpmWorkspace::seed_symbolic(SymbolicAnalysis analysis) {
  if (kkt_ != nullptr) return;  // symbolic phase already happened
  pending_symbolic_ =
      std::make_unique<SymbolicAnalysis>(std::move(analysis));
}

std::optional<SymbolicAnalysis> IpmWorkspace::export_symbolic() const {
  return kkt_ != nullptr ? kkt_->export_symbolic() : std::nullopt;
}

void IpmWorkspace::seed_warm(const Vector& x, const Vector& s,
                             const Vector& z) {
  warm_x_ = x;
  warm_s_ = s;
  warm_z_ = z;
  have_warm_ = true;
}

void IpmWorkspace::clear_warm() {
  have_warm_ = false;
  warm_x_.clear();
  warm_s_.clear();
  warm_z_.clear();
}

SolveResult IpmSolver::solve(const ConicProblem& problem) const {
  IpmWorkspace workspace;
  return solve(problem, workspace);
}

SolveResult IpmSolver::solve(const ConicProblem& problem,
                             IpmWorkspace& ws) const {
  SolveResult result = solve_attempt(problem, ws, options_);
  if (result.status != SolveStatus::kNumericalFailure ||
      options_.recovery_attempts <= 0) {
    return result;
  }

  // --- Recovery ladder -------------------------------------------------------
  // Each rung retries the whole solve with progressively heavier-handed
  // numerics. The symbolic KKT analysis is shared by every attempt (the
  // regularisation bump is numeric-only), so a recovered solve still
  // reports symbolic_factorisations == 1.
  SolverOptions opts = options_;
  // An injected fault scoped to the first attempt (ipm.fail_once) is
  // disarmed here so the ladder can demonstrate an actual recovery; the
  // unscoped ipm.fail_at keeps firing and exhausts the ladder instead.
  if (opts.fail_only_first_attempt) opts.fail_at_iteration = -1;
  int total_iterations = result.iterations;
  int attempts = 0;
  for (; attempts < options_.recovery_attempts &&
         result.status == SolveStatus::kNumericalFailure;) {
    ++attempts;
    // Rung 1: drop the warm-start seed — a stale or near-boundary seed is
    // the most common cause of a breakdown — and restart cold.
    ws.clear_warm();
    if (attempts >= 2) {
      // Rungs 2+: bump the static regularisation (cumulatively) and re-run
      // the Ruiz equilibration with extra rounds before the cold restart.
      opts.static_regularisation *= options_.recovery_regularisation_growth;
      opts.equilibrate_rounds = std::max(options_.equilibrate_rounds, 2) * 2;
      if (ws.kkt_ != nullptr) {
        ws.kkt_->set_static_regularisation(opts.static_regularisation);
      }
      ws.refresh_numerics_ = true;
    }
    if (options_.verbosity >= 1) {
      std::fprintf(stderr,
                   "[ipm] recovery attempt %d/%d (cold restart%s)\n", attempts,
                   options_.recovery_attempts,
                   attempts >= 2 ? ", bumped regularisation + re-equilibrate"
                                 : "");
    }
    if (options_.trace_sink != nullptr) {
      options_.trace_sink->ipm_ladder_rung(attempts,
                                           opts.static_regularisation);
    }
    result = solve_attempt(problem, ws, opts);
    total_iterations += result.iterations;
  }

  // One ladder run is ONE logical solve: collapse the per-attempt counter
  // increments (each attempt bumped solves_ by one) and report the total
  // interior-point effort, so sessions and engines see consistent
  // solve/iteration accounting whether or not the ladder fired.
  ws.solves_ -= attempts;
  result.iterations = total_iterations;

  // Restore the base numerics so later solves through this workspace are
  // unaffected by the ladder (if the instance genuinely needs the bump, the
  // ladder will earn it again — and the recovery will be visible again).
  if (attempts >= 2) {
    if (ws.kkt_ != nullptr) {
      ws.kkt_->set_static_regularisation(options_.static_regularisation);
    }
    ws.refresh_numerics_ = true;
  }

  result.recovery_attempts = attempts;
  // "Recovered" means the retry produced a usable answer — an optimum or an
  // infeasibility certificate. A retry that merely turned the breakdown into
  // a stall or timeout is reported as that status but not counted.
  if (result.status == SolveStatus::kOptimal ||
      result.status == SolveStatus::kPrimalInfeasible ||
      result.status == SolveStatus::kDualInfeasible) {
    result.recovered = true;
    ++ws.recovered_solves_;
  }
  return result;
}

SolveResult IpmSolver::solve_attempt(const ConicProblem& problem,
                                     IpmWorkspace& ws,
                                     const SolverOptions& options) const {
  const auto n = static_cast<std::size_t>(problem.num_vars());
  const auto m = static_cast<std::size_t>(problem.num_rows());
  BBS_REQUIRE(m > 0, "IpmSolver: problem has no constraints");
  BBS_REQUIRE(n > 0, "IpmSolver: problem has no variables");

  // --- Bind the workspace to the problem structure -------------------------
  bool g_changed = true;
  if (!ws.bound_) {
    ws.cone_ = std::make_unique<ConeSpec>(problem.cone());
    ws.g_ = problem.g();
    ws.raw_g_values_ = problem.g().values();
    ws.scaling_ = std::make_unique<NtScaling>(*ws.cone_);
    ws.bound_ = true;
  } else {
    BBS_REQUIRE(ws.g_.rows() == problem.g().rows() &&
                    ws.g_.cols() == problem.g().cols() &&
                    ws.g_.col_ptr() == problem.g().col_ptr() &&
                    ws.g_.row_ind() == problem.g().row_ind() &&
                    ws.cone_->nonneg() == problem.cone().nonneg() &&
                    ws.cone_->soc_dims() == problem.cone().soc_dims(),
                "IpmSolver: workspace is bound to a different problem "
                "structure (use IpmWorkspace::reset)");
    g_changed =
        ws.refresh_numerics_ || problem.g().values() != ws.raw_g_values_;
    if (g_changed) {
      ws.raw_g_values_ = problem.g().values();
      std::copy(problem.g().values().begin(), problem.g().values().end(),
                ws.g_.values().begin());
    }
  }
  ws.refresh_numerics_ = false;
  // The workspace's copy: every reference the persistent state holds points
  // here, never into `problem`.
  const ConeSpec& cone = *ws.cone_;

  // --- Equilibrated working copy. The scalings depend only on G, so a
  // re-solve that changed just h/c (a capacity-bound sweep step) keeps the
  // previous equilibrated copy and scalings — and the KKT values below —
  // untouched. -------------------------------------------------------------
  SparseMatrix& g = ws.g_;
  if (g_changed) {
    if (options.equilibrate_rounds > 0) {
      ruiz_equilibrate(g, cone, options.equilibrate_rounds, ws.row_scale_,
                       ws.col_scale_, ws.ruiz_row_max_, ws.ruiz_col_max_);
    } else {
      ws.row_scale_.assign(m, 1.0);
      ws.col_scale_.assign(n, 1.0);
    }
  }
  const Vector& row_scale = ws.row_scale_;
  const Vector& col_scale = ws.col_scale_;
  Vector& c = ws.c_;
  Vector& h = ws.h_;
  c.resize(n);
  h.resize(m);
  for (std::size_t j = 0; j < n; ++j) c[j] = problem.c()[j] * col_scale[j];
  for (std::size_t i = 0; i < m; ++i) h[i] = problem.h()[i] * row_scale[i];

  const double norm_c = std::max(1.0, linalg::norm2(c));
  const double norm_h = std::max(1.0, linalg::norm2(h));

  // --- State ---------------------------------------------------------------
  Vector& x = ws.x_;
  Vector& s = ws.s_;
  Vector& z = ws.z_;
  Vector& e = ws.e_;
  e.assign(m, 0.0);
  cone.identity(e);
  double tau = 1.0;
  double kappa = 1.0;

  // Warm start: map the previous optimal solution into the new equilibrated
  // coordinates and push it back into the cone interior along the identity.
  // Any anomaly (non-finite data, point irrecoverably outside the cone)
  // falls back to the cold start below.
  bool warm = false;
  if (options.warm_start && ws.have_warm_ && ws.warm_x_.size() == n &&
      ws.warm_s_.size() == m && ws.warm_z_.size() == m) {
    x.resize(n);
    s.resize(m);
    z.resize(m);
    double check = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      x[j] = ws.warm_x_[j] / col_scale[j];
      check += std::abs(x[j]);
    }
    for (std::size_t i = 0; i < m; ++i) {
      s[i] = ws.warm_s_[i] * row_scale[i];
      z[i] = ws.warm_z_[i] / row_scale[i];
      check += std::abs(s[i]) + std::abs(z[i]);
    }
    if (std::isfinite(check)) {
      // Push both cone points back to at least `pad` from the boundary
      // along the identity. (A Skajaa-style convex blend with the identity
      // was measured too: identical iteration counts on the paper's sweeps,
      // so the simpler shift stays.)
      const double pad = std::max(options.warm_start_margin, 1e-10);
      const double margin_s = cone.interior_margin(s);
      const double margin_z = cone.interior_margin(z);
      if (margin_s < pad) linalg::axpy(pad - margin_s, e, s);
      if (margin_z < pad) linalg::axpy(pad - margin_z, e, z);
      tau = 1.0;
      kappa = std::max(linalg::dot(s, z) / static_cast<double>(cone.degree()),
                       pad * pad);
      warm = cone.is_interior(s) && cone.is_interior(z) &&
             std::isfinite(kappa);
    }
  }
  if (!warm) {
    x.assign(n, 0.0);
    s.assign(m, 0.0);
    z.assign(m, 0.0);
    cone.identity(s);
    cone.identity(z);
    tau = 1.0;
    kappa = 1.0;
  }

  const double degree = static_cast<double>(cone.degree()) + 1.0;

  NtScaling& scaling = *ws.scaling_;
  if (ws.kkt_ == nullptr) {
    KktSystem::Options kkt_opts;
    kkt_opts.ordering = options.ordering;
    kkt_opts.static_regularisation = options.static_regularisation;
    kkt_opts.refine_steps = options.refine_steps;
    ws.kkt_ = std::make_unique<KktSystem>(g, kkt_opts);
    if (ws.pending_symbolic_ != nullptr) {
      ws.kkt_->seed_symbolic(std::move(*ws.pending_symbolic_));
      ws.pending_symbolic_.reset();
    }
  } else if (g_changed) {
    ws.kkt_->update_matrix_values(g);
  }
  KktSystem& kkt = *ws.kkt_;

  SolveResult result;
  result.x = x;
  result.s = s;
  result.z = z;

  auto finalise = [&](SolveStatus status, int iterations) {
    result.status = status;
    result.iterations = iterations;
    result.tau = tau;
    result.kappa = kappa;
    result.warm_started = warm;
    const double t = (status == SolveStatus::kOptimal) ? tau : 1.0;
    // Undo the equilibration and the homogenising scale.
    result.x.assign(n, 0.0);
    result.s.assign(m, 0.0);
    result.z.assign(m, 0.0);
    for (std::size_t j = 0; j < n; ++j)
      result.x[j] = col_scale[j] * x[j] / t;
    for (std::size_t i = 0; i < m; ++i) {
      result.s[i] = s[i] / (row_scale[i] * t);
      result.z[i] = row_scale[i] * z[i] / t;
    }
    result.primal_objective = problem.objective(result.x);
    result.dual_objective = -linalg::dot(problem.h(), result.z);
    result.duality_gap =
        std::abs(result.primal_objective - result.dual_objective);
    result.primal_residual = problem.primal_residual(result.x, result.s);
    result.dual_residual = problem.dual_residual(result.z);
    if (options.verbosity >= 1) {
      std::fprintf(stderr,
                   "[ipm] %s after %d iterations%s: pobj=%.9g dobj=%.9g "
                   "pres=%.3g dres=%.3g\n",
                   to_string(status), iterations, warm ? " (warm)" : "",
                   result.primal_objective, result.dual_objective,
                   result.primal_residual, result.dual_residual);
    }
    // Workspace bookkeeping: counters, plus the warm-start snapshot for the
    // next structurally identical solve. Only optimal solutions are stored
    // (an infeasibility certificate is no starting point), but a stored
    // snapshot *survives* infeasible solves in between: in a bisection
    // roughly every other probe lands on the infeasible side, and the last
    // known optimum of a nearby parameter remains a far better seed than
    // the cone identity.
    ++ws.solves_;
    ws.total_iterations_ += iterations;
    if (warm) ++ws.warm_started_solves_;
    if (status == SolveStatus::kOptimal) {
      ws.warm_x_ = result.x;
      ws.warm_s_ = result.s;
      ws.warm_z_ = result.z;
      ws.have_warm_ = true;
    }
    return result;
  };

  Vector& r_dual = ws.r_dual_;
  Vector& r_pri = ws.r_pri_;
  Vector& u1 = ws.u1_;
  Vector& v1 = ws.v1_;
  Vector& u2 = ws.u2_;
  Vector& v2 = ws.v2_;
  r_dual.resize(n);
  r_pri.resize(m);
  u1.resize(n);
  v1.resize(m);
  u2.resize(n);
  v2.resize(m);

  // Best-iterate tracking: interior-point iterates eventually hit a
  // numerical floor where the residuals wander; the best point seen is what
  // gets reported when no further progress is possible.
  double best_merit = std::numeric_limits<double>::infinity();
  int best_iteration = -1;
  Vector& best_x = ws.best_x_;
  Vector& best_s = ws.best_s_;
  Vector& best_z = ws.best_z_;
  best_x = x;
  best_s = s;
  best_z = z;
  double best_tau = tau;
  double best_kappa = kappa;

  auto restore_best = [&]() {
    if (best_iteration >= 0) {
      x = best_x;
      s = best_s;
      z = best_z;
      tau = best_tau;
      kappa = best_kappa;
    }
  };
  auto best_meets_tolerances = [&]() {
    return best_merit <= 1.0;  // merit is pre-normalised by the tolerances
  };

  // Deadline/cancel bookkeeping: both limits resolve to one absolute time
  // point up front, so the per-iteration cost is a single clock read — and
  // zero when nothing is armed.
  using SolveClock = CancelToken::Clock;
  const CancelToken* cancel = options.cancel.get();
  SolveClock::time_point deadline = SolveClock::time_point::max();
  bool have_deadline = false;
  if (options.time_limit_ms > 0.0) {
    deadline = SolveClock::now() +
               std::chrono::duration_cast<SolveClock::duration>(
                   std::chrono::duration<double, std::milli>(
                       options.time_limit_ms));
    have_deadline = true;
  }
  if (options.deadline != SolveClock::time_point::max()) {
    deadline = std::min(deadline, options.deadline);
    have_deadline = true;
  }
  if (cancel != nullptr && cancel->has_deadline()) {
    deadline = std::min(deadline, cancel->deadline());
    have_deadline = true;
  }

  // Step length accepted on the previous iteration, reported to the trace
  // sink at the next convergence test (the current step is unknown there).
  double last_alpha = 0.0;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // --- Cooperative interruption ------------------------------------------
    // Checked at iteration granularity: an expiry mid-iteration finishes
    // that iteration, so termination is bounded by one KKT solve. The best
    // iterate seen is still reported, as optimal when it already meets the
    // tolerances, and finalise() keeps warm snapshots for optimal exits
    // only — the enclosing session stays reusable either way.
    if (cancel != nullptr && cancel->cancelled()) {
      restore_best();
      return finalise(best_meets_tolerances() ? SolveStatus::kOptimal
                                              : SolveStatus::kCancelled,
                      iter);
    }
    if (have_deadline && SolveClock::now() >= deadline) {
      restore_best();
      return finalise(best_meets_tolerances() ? SolveStatus::kOptimal
                                              : SolveStatus::kTimedOut,
                      iter);
    }
    if (iter == options.fail_at_iteration) {
      // Injected fault (chaos tests): a hard numerical failure, never
      // rescued by the best iterate.
      restore_best();
      return finalise(SolveStatus::kNumericalFailure, iter);
    }
    // --- Residuals of the embedding ---------------------------------------
    // r_dual = G'z + c*tau ; r_pri = Gx - h*tau + s ; r_gap = c'x + h'z + kappa
    for (std::size_t j = 0; j < n; ++j) r_dual[j] = c[j] * tau;
    g.gaxpy_transpose(1.0, z, r_dual);
    for (std::size_t i = 0; i < m; ++i) r_pri[i] = s[i] - h[i] * tau;
    g.gaxpy(1.0, x, r_pri);
    const double cx = linalg::dot(c, x);
    const double hz = linalg::dot(h, z);
    const double r_gap = cx + hz + kappa;

    const double mu = (linalg::dot(s, z) + tau * kappa) / degree;

    // --- Convergence tests -------------------------------------------------
    {
      const double pres = linalg::norm2(r_pri) / (tau * norm_h);
      const double dres = linalg::norm2(r_dual) / (tau * norm_c);
      const double pobj = cx / tau;
      const double dobj = -hz / tau;
      const double gap = linalg::dot(s, z) / (tau * tau);
      const double rel_gap =
          gap / std::max(1.0, std::min(std::abs(pobj), std::abs(dobj)));
      if (options.verbosity >= 2) {
        std::fprintf(stderr,
                     "[ipm] it=%2d mu=%.3e tau=%.3e kappa=%.3e pres=%.3e "
                     "dres=%.3e gap=%.3e\n",
                     iter, mu, tau, kappa, pres, dres, gap);
      }
      if (options.trace_sink != nullptr) {
        options.trace_sink->ipm_iteration(iter, mu, pres, dres, last_alpha);
      }
      if (pres <= options.feas_tol && dres <= options.feas_tol &&
          (rel_gap <= options.gap_tol || gap <= options.gap_tol)) {
        return finalise(SolveStatus::kOptimal, iter);
      }
      // Merit: worst tolerance-normalised criterion (<= 1 means acceptable).
      const double merit = std::max({pres / options.feas_tol,
                                     dres / options.feas_tol,
                                     std::min(rel_gap, gap) /
                                         options.gap_tol});
      if (merit < best_merit) {
        best_merit = merit;
        best_iteration = iter;
        best_x = x;
        best_s = s;
        best_z = z;
        best_tau = tau;
        best_kappa = kappa;
      } else if (iter - best_iteration >= options.stall_iterations) {
        restore_best();
        return finalise(best_meets_tolerances() ? SolveStatus::kOptimal
                                                : SolveStatus::kMaxIterations,
                        iter);
      }
      // Infeasibility certificates (checked on the normalised iterate).
      if (hz < 0.0) {
        Vector gtz(n, 0.0);
        g.gaxpy_transpose(1.0, z, gtz);
        if (linalg::norm2(gtz) * norm_h <= options.feas_tol * (-hz)) {
          return finalise(SolveStatus::kPrimalInfeasible, iter);
        }
      }
      if (cx < 0.0) {
        Vector gx_s = s;
        g.gaxpy(1.0, x, gx_s);
        if (linalg::norm2(gx_s) * norm_c <= options.feas_tol * (-cx)) {
          return finalise(SolveStatus::kDualInfeasible, iter);
        }
      }
    }

    // --- Scaling and KKT factorisation -------------------------------------
    try {
      scaling.update(s, z);
      kkt.factorise(scaling);
    } catch (const NumericalError&) {
      restore_best();
      return finalise(best_meets_tolerances() ? SolveStatus::kOptimal
                                              : SolveStatus::kNumericalFailure,
                      iter);
    }
    const Vector& lambda = scaling.lambda();

    // Constant-part solve: G'v1 = -c ; G u1 - W^2 v1 = h.
    Vector p1(n);
    for (std::size_t j = 0; j < n; ++j) p1[j] = -c[j];
    kkt.solve(scaling, p1, h, u1, v1);
    const double den_const = linalg::dot(c, u1) + linalg::dot(h, v1);

    // One Newton direction for given (sigma, corrector terms).
    const Vector lambda_sq = cone.circ(lambda, lambda);
    auto compute_direction = [&](double sigma, const Vector* corr_s,
                                 double corr_kappa, Vector& dx, Vector& dz,
                                 Vector& ds, double& dtau, double& dkappa) {
      const double eta = 1.0 - sigma;
      // d_s = sigma*mu*e - lambda o lambda - corr ; d_kappa likewise.
      Vector d_s(m, 0.0);
      cone.identity(d_s);
      for (std::size_t i = 0; i < m; ++i) {
        d_s[i] = sigma * mu * d_s[i] - lambda_sq[i];
        if (corr_s != nullptr) d_s[i] -= (*corr_s)[i];
      }
      const double d_kappa = sigma * mu - tau * kappa - corr_kappa;

      const Vector ds_tilde = cone.solve_circ(lambda, d_s);
      const Vector w_ds = scaling.apply_w(ds_tilde);

      Vector p2(n), q2(m);
      for (std::size_t j = 0; j < n; ++j) p2[j] = -eta * r_dual[j];
      for (std::size_t i = 0; i < m; ++i) q2[i] = -eta * r_pri[i] - w_ds[i];
      kkt.solve(scaling, p2, q2, u2, v2);

      const double denom = den_const - kappa / tau;
      const double numer = -eta * r_gap - linalg::dot(c, u2) -
                           linalg::dot(h, v2) - d_kappa / tau;
      if (denom == 0.0) throw NumericalError("ipm: singular tau equation");
      dtau = numer / denom;

      dx.assign(n, 0.0);
      dz.assign(m, 0.0);
      for (std::size_t j = 0; j < n; ++j) dx[j] = u2[j] + dtau * u1[j];
      for (std::size_t i = 0; i < m; ++i) dz[i] = v2[i] + dtau * v1[i];
      // ds = W (ds_tilde - W dz).
      Vector wdz = scaling.apply_w(dz);
      Vector tmp(m);
      for (std::size_t i = 0; i < m; ++i) tmp[i] = ds_tilde[i] - wdz[i];
      ds = scaling.apply_w(tmp);
      dkappa = (d_kappa - kappa * dtau) / tau;
    };

    auto step_limit = [&](const Vector& ds, const Vector& dz, double dtau,
                          double dkappa) {
      double alpha = cone.max_step(s, ds);
      alpha = std::min(alpha, cone.max_step(z, dz));
      if (dtau < 0.0) alpha = std::min(alpha, -tau / dtau);
      if (dkappa < 0.0) alpha = std::min(alpha, -kappa / dkappa);
      return alpha;
    };

    Vector& dx_aff = ws.dx_aff_;
    Vector& dz_aff = ws.dz_aff_;
    Vector& ds_aff = ws.ds_aff_;
    double dtau_aff = 0.0;
    double dkappa_aff = 0.0;
    try {
      compute_direction(0.0, nullptr, 0.0, dx_aff, dz_aff, ds_aff, dtau_aff,
                        dkappa_aff);
    } catch (const NumericalError&) {
      restore_best();
      return finalise(best_meets_tolerances() ? SolveStatus::kOptimal
                                              : SolveStatus::kNumericalFailure,
                      iter);
    }

    const double alpha_aff =
        std::min(1.0, step_limit(ds_aff, dz_aff, dtau_aff, dkappa_aff));

    // Mehrotra heuristic for the centring parameter.
    double mu_aff = 0.0;
    {
      Vector s_trial = s;
      Vector z_trial = z;
      linalg::axpy(alpha_aff, ds_aff, s_trial);
      linalg::axpy(alpha_aff, dz_aff, z_trial);
      const double tau_trial = tau + alpha_aff * dtau_aff;
      const double kappa_trial = kappa + alpha_aff * dkappa_aff;
      mu_aff = (linalg::dot(s_trial, z_trial) + tau_trial * kappa_trial) /
               degree;
    }
    double sigma = std::pow(std::clamp(safe_div(mu_aff, mu), 0.0, 1.0), 3.0);

    // Corrector terms: (W^{-T} ds_aff) o (W dz_aff) and dtau_aff*dkappa_aff.
    const Vector corr =
        cone.circ(scaling.apply_w_inv(ds_aff), scaling.apply_w(dz_aff));

    Vector& dx = ws.dx_;
    Vector& dz = ws.dz_;
    Vector& ds = ws.ds_;
    double dtau = 0.0;
    double dkappa = 0.0;
    try {
      compute_direction(sigma, &corr, dtau_aff * dkappa_aff, dx, dz, ds, dtau,
                        dkappa);
    } catch (const NumericalError&) {
      restore_best();
      return finalise(best_meets_tolerances() ? SolveStatus::kOptimal
                                              : SolveStatus::kNumericalFailure,
                      iter);
    }

    if (options.verbosity >= 3) {
      // Debug: residuals of the Newton system for the combined direction.
      const double eta = 1.0 - sigma;
      Vector e1(n, 0.0);
      for (std::size_t j = 0; j < n; ++j)
        e1[j] = c[j] * dtau + eta * r_dual[j];
      g.gaxpy_transpose(1.0, dz, e1);
      Vector e2(m, 0.0);
      for (std::size_t i = 0; i < m; ++i)
        e2[i] = ds[i] - h[i] * dtau + eta * r_pri[i];
      g.gaxpy(1.0, dx, e2);
      const double e3 = linalg::dot(c, dx) + linalg::dot(h, dz) + dkappa +
                        eta * r_gap;
      std::fprintf(stderr,
                   "[ipm-dbg] |G'dz+c dtau+eta rd|=%.3e |G dx-h dtau+ds+eta "
                   "rp|=%.3e |gap eq|=%.3e\n",
                   linalg::norm_inf(e1), linalg::norm_inf(e2), std::abs(e3));
    }

    double alpha =
        options.step_fraction * step_limit(ds, dz, dtau, dkappa);
    alpha = std::min(alpha, 1.0);
    if (!(alpha > 0.0) || !std::isfinite(alpha)) {
      restore_best();
      return finalise(best_meets_tolerances() ? SolveStatus::kOptimal
                                              : SolveStatus::kNumericalFailure,
                      iter);
    }

    linalg::axpy(alpha, dx, x);
    linalg::axpy(alpha, ds, s);
    linalg::axpy(alpha, dz, z);
    tau += alpha * dtau;
    kappa += alpha * dkappa;
    last_alpha = alpha;

    if (!cone.is_interior(s) || !cone.is_interior(z) || tau <= 0.0 ||
        kappa <= 0.0) {
      restore_best();
      return finalise(best_meets_tolerances() ? SolveStatus::kOptimal
                                              : SolveStatus::kNumericalFailure,
                      iter + 1);
    }
  }

  restore_best();
  return finalise(best_meets_tolerances() ? SolveStatus::kOptimal
                                          : SolveStatus::kMaxIterations,
                  options.max_iterations);
}

}  // namespace bbs::solver
