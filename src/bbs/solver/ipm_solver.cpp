#include "bbs/solver/ipm_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bbs/common/assert.hpp"

namespace bbs::solver {

namespace {

using linalg::SparseMatrix;
using linalg::TripletList;

/// Ruiz equilibration of G: returns diagonal row/column scalings that bring
/// the nonzero magnitudes of Dr * G * Dc towards 1. Rows belonging to the
/// same second-order cone block receive a common factor (any per-block
/// positive multiple of the identity is a cone automorphism; general diagonal
/// scalings are not).
struct Equilibration {
  Vector row_scale;  // Dr
  Vector col_scale;  // Dc
};

Equilibration ruiz_equilibrate(SparseMatrix& g, const ConeSpec& cone,
                               int rounds) {
  const auto m = static_cast<std::size_t>(g.rows());
  const auto n = static_cast<std::size_t>(g.cols());
  Equilibration eq{Vector(m, 1.0), Vector(n, 1.0)};

  for (int round = 0; round < rounds; ++round) {
    Vector row_max(m, 0.0);
    Vector col_max(n, 0.0);
    for (Index c = 0; c < g.cols(); ++c) {
      for (Index k = g.col_ptr()[c]; k < g.col_ptr()[c + 1]; ++k) {
        const double a = std::abs(g.values()[k]);
        const auto r = static_cast<std::size_t>(g.row_ind()[k]);
        row_max[r] = std::max(row_max[r], a);
        col_max[static_cast<std::size_t>(c)] =
            std::max(col_max[static_cast<std::size_t>(c)], a);
      }
    }
    // SOC blocks must share one factor: use the block-wise maximum.
    for (std::size_t b = 0; b < cone.soc_dims().size(); ++b) {
      const Index off = cone.soc_offset(b);
      const Index q = cone.soc_dims()[b];
      double blk = 0.0;
      for (Index i = off; i < off + q; ++i)
        blk = std::max(blk, row_max[static_cast<std::size_t>(i)]);
      for (Index i = off; i < off + q; ++i)
        row_max[static_cast<std::size_t>(i)] = blk;
    }
    Vector dr(m, 1.0);
    Vector dc(n, 1.0);
    for (std::size_t i = 0; i < m; ++i) {
      if (row_max[i] > 0.0) dr[i] = 1.0 / std::sqrt(row_max[i]);
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (col_max[j] > 0.0) dc[j] = 1.0 / std::sqrt(col_max[j]);
    }
    // Apply in place.
    for (Index c = 0; c < g.cols(); ++c) {
      for (Index k = g.col_ptr()[c]; k < g.col_ptr()[c + 1]; ++k) {
        g.values()[k] *= dr[static_cast<std::size_t>(g.row_ind()[k])] *
                         dc[static_cast<std::size_t>(c)];
      }
    }
    for (std::size_t i = 0; i < m; ++i) eq.row_scale[i] *= dr[i];
    for (std::size_t j = 0; j < n; ++j) eq.col_scale[j] *= dc[j];
  }
  return eq;
}

double safe_div(double a, double b) {
  return (b == 0.0) ? 0.0 : a / b;
}

}  // namespace

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kPrimalInfeasible:
      return "primal-infeasible";
    case SolveStatus::kDualInfeasible:
      return "dual-infeasible";
    case SolveStatus::kMaxIterations:
      return "max-iterations";
    case SolveStatus::kNumericalFailure:
      return "numerical-failure";
  }
  return "?";
}

SolveResult IpmSolver::solve(const ConicProblem& problem) const {
  const ConeSpec& cone = problem.cone();
  const auto n = static_cast<std::size_t>(problem.num_vars());
  const auto m = static_cast<std::size_t>(problem.num_rows());
  BBS_REQUIRE(m > 0, "IpmSolver: problem has no constraints");
  BBS_REQUIRE(n > 0, "IpmSolver: problem has no variables");

  // --- Equilibrated working copy ------------------------------------------
  SparseMatrix g = problem.g();
  Equilibration eq{Vector(m, 1.0), Vector(n, 1.0)};
  if (options_.equilibrate_rounds > 0) {
    eq = ruiz_equilibrate(g, cone, options_.equilibrate_rounds);
  }
  Vector c(n), h(m);
  for (std::size_t j = 0; j < n; ++j)
    c[j] = problem.c()[j] * eq.col_scale[j];
  for (std::size_t i = 0; i < m; ++i)
    h[i] = problem.h()[i] * eq.row_scale[i];

  const double norm_c = std::max(1.0, linalg::norm2(c));
  const double norm_h = std::max(1.0, linalg::norm2(h));

  // --- State ---------------------------------------------------------------
  Vector x(n, 0.0);
  Vector s(m), z(m);
  cone.identity(s);
  cone.identity(z);
  double tau = 1.0;
  double kappa = 1.0;

  const double degree = static_cast<double>(cone.degree()) + 1.0;

  NtScaling scaling(cone);
  KktSystem::Options kkt_opts;
  kkt_opts.ordering = options_.ordering;
  kkt_opts.static_regularisation = options_.static_regularisation;
  kkt_opts.refine_steps = options_.refine_steps;
  KktSystem kkt(g, kkt_opts);

  SolveResult result;
  result.x = x;
  result.s = s;
  result.z = z;

  auto finalise = [&](SolveStatus status, int iterations) {
    result.status = status;
    result.iterations = iterations;
    result.tau = tau;
    result.kappa = kappa;
    const double t = (status == SolveStatus::kOptimal) ? tau : 1.0;
    // Undo the equilibration and the homogenising scale.
    result.x.assign(n, 0.0);
    result.s.assign(m, 0.0);
    result.z.assign(m, 0.0);
    for (std::size_t j = 0; j < n; ++j)
      result.x[j] = eq.col_scale[j] * x[j] / t;
    for (std::size_t i = 0; i < m; ++i) {
      result.s[i] = s[i] / (eq.row_scale[i] * t);
      result.z[i] = eq.row_scale[i] * z[i] / t;
    }
    result.primal_objective = problem.objective(result.x);
    result.dual_objective = -linalg::dot(problem.h(), result.z);
    result.duality_gap =
        std::abs(result.primal_objective - result.dual_objective);
    result.primal_residual = problem.primal_residual(result.x, result.s);
    result.dual_residual = problem.dual_residual(result.z);
    if (options_.verbosity >= 1) {
      std::fprintf(stderr,
                   "[ipm] %s after %d iterations: pobj=%.9g dobj=%.9g "
                   "pres=%.3g dres=%.3g\n",
                   to_string(status), iterations, result.primal_objective,
                   result.dual_objective, result.primal_residual,
                   result.dual_residual);
    }
    return result;
  };

  Vector r_dual(n), r_pri(m);
  Vector u1(n), v1(m), u2(n), v2(m);

  // Best-iterate tracking: interior-point iterates eventually hit a
  // numerical floor where the residuals wander; the best point seen is what
  // gets reported when no further progress is possible.
  double best_merit = std::numeric_limits<double>::infinity();
  int best_iteration = -1;
  Vector best_x = x;
  Vector best_s = s;
  Vector best_z = z;
  double best_tau = tau;
  double best_kappa = kappa;

  auto restore_best = [&]() {
    if (best_iteration >= 0) {
      x = best_x;
      s = best_s;
      z = best_z;
      tau = best_tau;
      kappa = best_kappa;
    }
  };
  auto best_meets_tolerances = [&]() {
    return best_merit <= 1.0;  // merit is pre-normalised by the tolerances
  };

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // --- Residuals of the embedding ---------------------------------------
    // r_dual = G'z + c*tau ; r_pri = Gx - h*tau + s ; r_gap = c'x + h'z + kappa
    for (std::size_t j = 0; j < n; ++j) r_dual[j] = c[j] * tau;
    g.gaxpy_transpose(1.0, z, r_dual);
    for (std::size_t i = 0; i < m; ++i) r_pri[i] = s[i] - h[i] * tau;
    g.gaxpy(1.0, x, r_pri);
    const double cx = linalg::dot(c, x);
    const double hz = linalg::dot(h, z);
    const double r_gap = cx + hz + kappa;

    const double mu = (linalg::dot(s, z) + tau * kappa) / degree;

    // --- Convergence tests -------------------------------------------------
    {
      const double pres = linalg::norm2(r_pri) / (tau * norm_h);
      const double dres = linalg::norm2(r_dual) / (tau * norm_c);
      const double pobj = cx / tau;
      const double dobj = -hz / tau;
      const double gap = linalg::dot(s, z) / (tau * tau);
      const double rel_gap =
          gap / std::max(1.0, std::min(std::abs(pobj), std::abs(dobj)));
      if (options_.verbosity >= 2) {
        std::fprintf(stderr,
                     "[ipm] it=%2d mu=%.3e tau=%.3e kappa=%.3e pres=%.3e "
                     "dres=%.3e gap=%.3e\n",
                     iter, mu, tau, kappa, pres, dres, gap);
      }
      if (pres <= options_.feas_tol && dres <= options_.feas_tol &&
          (rel_gap <= options_.gap_tol || gap <= options_.gap_tol)) {
        return finalise(SolveStatus::kOptimal, iter);
      }
      // Merit: worst tolerance-normalised criterion (<= 1 means acceptable).
      const double merit = std::max({pres / options_.feas_tol,
                                     dres / options_.feas_tol,
                                     std::min(rel_gap, gap) /
                                         options_.gap_tol});
      if (merit < best_merit) {
        best_merit = merit;
        best_iteration = iter;
        best_x = x;
        best_s = s;
        best_z = z;
        best_tau = tau;
        best_kappa = kappa;
      } else if (iter - best_iteration >= options_.stall_iterations) {
        restore_best();
        return finalise(best_meets_tolerances() ? SolveStatus::kOptimal
                                                : SolveStatus::kMaxIterations,
                        iter);
      }
      // Infeasibility certificates (checked on the normalised iterate).
      if (hz < 0.0) {
        Vector gtz(n, 0.0);
        g.gaxpy_transpose(1.0, z, gtz);
        if (linalg::norm2(gtz) * norm_h <= options_.feas_tol * (-hz)) {
          return finalise(SolveStatus::kPrimalInfeasible, iter);
        }
      }
      if (cx < 0.0) {
        Vector gx_s = s;
        g.gaxpy(1.0, x, gx_s);
        if (linalg::norm2(gx_s) * norm_c <= options_.feas_tol * (-cx)) {
          return finalise(SolveStatus::kDualInfeasible, iter);
        }
      }
    }

    // --- Scaling and KKT factorisation -------------------------------------
    try {
      scaling.update(s, z);
      kkt.factorise(scaling);
    } catch (const NumericalError&) {
      restore_best();
      return finalise(best_meets_tolerances() ? SolveStatus::kOptimal
                                              : SolveStatus::kNumericalFailure,
                      iter);
    }
    const Vector& lambda = scaling.lambda();

    // Constant-part solve: G'v1 = -c ; G u1 - W^2 v1 = h.
    Vector p1(n);
    for (std::size_t j = 0; j < n; ++j) p1[j] = -c[j];
    kkt.solve(scaling, p1, h, u1, v1);
    const double den_const = linalg::dot(c, u1) + linalg::dot(h, v1);

    // One Newton direction for given (sigma, corrector terms).
    const Vector lambda_sq = cone.circ(lambda, lambda);
    auto compute_direction = [&](double sigma, const Vector* corr_s,
                                 double corr_kappa, Vector& dx, Vector& dz,
                                 Vector& ds, double& dtau, double& dkappa) {
      const double eta = 1.0 - sigma;
      // d_s = sigma*mu*e - lambda o lambda - corr ; d_kappa likewise.
      Vector d_s(m, 0.0);
      cone.identity(d_s);
      for (std::size_t i = 0; i < m; ++i) {
        d_s[i] = sigma * mu * d_s[i] - lambda_sq[i];
        if (corr_s != nullptr) d_s[i] -= (*corr_s)[i];
      }
      const double d_kappa = sigma * mu - tau * kappa - corr_kappa;

      const Vector ds_tilde = cone.solve_circ(lambda, d_s);
      const Vector w_ds = scaling.apply_w(ds_tilde);

      Vector p2(n), q2(m);
      for (std::size_t j = 0; j < n; ++j) p2[j] = -eta * r_dual[j];
      for (std::size_t i = 0; i < m; ++i) q2[i] = -eta * r_pri[i] - w_ds[i];
      kkt.solve(scaling, p2, q2, u2, v2);

      const double denom = den_const - kappa / tau;
      const double numer = -eta * r_gap - linalg::dot(c, u2) -
                           linalg::dot(h, v2) - d_kappa / tau;
      if (denom == 0.0) throw NumericalError("ipm: singular tau equation");
      dtau = numer / denom;

      dx.assign(n, 0.0);
      dz.assign(m, 0.0);
      for (std::size_t j = 0; j < n; ++j) dx[j] = u2[j] + dtau * u1[j];
      for (std::size_t i = 0; i < m; ++i) dz[i] = v2[i] + dtau * v1[i];
      // ds = W (ds_tilde - W dz).
      Vector wdz = scaling.apply_w(dz);
      Vector tmp(m);
      for (std::size_t i = 0; i < m; ++i) tmp[i] = ds_tilde[i] - wdz[i];
      ds = scaling.apply_w(tmp);
      dkappa = (d_kappa - kappa * dtau) / tau;
    };

    auto step_limit = [&](const Vector& ds, const Vector& dz, double dtau,
                          double dkappa) {
      double alpha = cone.max_step(s, ds);
      alpha = std::min(alpha, cone.max_step(z, dz));
      if (dtau < 0.0) alpha = std::min(alpha, -tau / dtau);
      if (dkappa < 0.0) alpha = std::min(alpha, -kappa / dkappa);
      return alpha;
    };

    Vector dx_aff(n), dz_aff(m), ds_aff(m);
    double dtau_aff = 0.0;
    double dkappa_aff = 0.0;
    try {
      compute_direction(0.0, nullptr, 0.0, dx_aff, dz_aff, ds_aff, dtau_aff,
                        dkappa_aff);
    } catch (const NumericalError&) {
      restore_best();
      return finalise(best_meets_tolerances() ? SolveStatus::kOptimal
                                              : SolveStatus::kNumericalFailure,
                      iter);
    }

    const double alpha_aff =
        std::min(1.0, step_limit(ds_aff, dz_aff, dtau_aff, dkappa_aff));

    // Mehrotra heuristic for the centring parameter.
    double mu_aff = 0.0;
    {
      Vector s_trial = s;
      Vector z_trial = z;
      linalg::axpy(alpha_aff, ds_aff, s_trial);
      linalg::axpy(alpha_aff, dz_aff, z_trial);
      const double tau_trial = tau + alpha_aff * dtau_aff;
      const double kappa_trial = kappa + alpha_aff * dkappa_aff;
      mu_aff = (linalg::dot(s_trial, z_trial) + tau_trial * kappa_trial) /
               degree;
    }
    double sigma = std::pow(std::clamp(safe_div(mu_aff, mu), 0.0, 1.0), 3.0);

    // Corrector terms: (W^{-T} ds_aff) o (W dz_aff) and dtau_aff*dkappa_aff.
    const Vector corr =
        cone.circ(scaling.apply_w_inv(ds_aff), scaling.apply_w(dz_aff));

    Vector dx(n), dz(m), ds(m);
    double dtau = 0.0;
    double dkappa = 0.0;
    try {
      compute_direction(sigma, &corr, dtau_aff * dkappa_aff, dx, dz, ds, dtau,
                        dkappa);
    } catch (const NumericalError&) {
      restore_best();
      return finalise(best_meets_tolerances() ? SolveStatus::kOptimal
                                              : SolveStatus::kNumericalFailure,
                      iter);
    }

    if (options_.verbosity >= 3) {
      // Debug: residuals of the Newton system for the combined direction.
      const double eta = 1.0 - sigma;
      Vector e1(n, 0.0);
      for (std::size_t j = 0; j < n; ++j)
        e1[j] = c[j] * dtau + eta * r_dual[j];
      g.gaxpy_transpose(1.0, dz, e1);
      Vector e2(m, 0.0);
      for (std::size_t i = 0; i < m; ++i)
        e2[i] = ds[i] - h[i] * dtau + eta * r_pri[i];
      g.gaxpy(1.0, dx, e2);
      const double e3 = linalg::dot(c, dx) + linalg::dot(h, dz) + dkappa +
                        eta * r_gap;
      std::fprintf(stderr,
                   "[ipm-dbg] |G'dz+c dtau+eta rd|=%.3e |G dx-h dtau+ds+eta "
                   "rp|=%.3e |gap eq|=%.3e\n",
                   linalg::norm_inf(e1), linalg::norm_inf(e2), std::abs(e3));
    }

    double alpha =
        options_.step_fraction * step_limit(ds, dz, dtau, dkappa);
    alpha = std::min(alpha, 1.0);
    if (!(alpha > 0.0) || !std::isfinite(alpha)) {
      restore_best();
      return finalise(best_meets_tolerances() ? SolveStatus::kOptimal
                                              : SolveStatus::kNumericalFailure,
                      iter);
    }

    linalg::axpy(alpha, dx, x);
    linalg::axpy(alpha, ds, s);
    linalg::axpy(alpha, dz, z);
    tau += alpha * dtau;
    kappa += alpha * dkappa;

    if (!cone.is_interior(s) || !cone.is_interior(z) || tau <= 0.0 ||
        kappa <= 0.0) {
      restore_best();
      return finalise(best_meets_tolerances() ? SolveStatus::kOptimal
                                              : SolveStatus::kNumericalFailure,
                      iter + 1);
    }
  }

  restore_best();
  return finalise(best_meets_tolerances() ? SolveStatus::kOptimal
                                          : SolveStatus::kMaxIterations,
                  options_.max_iterations);
}

}  // namespace bbs::solver
