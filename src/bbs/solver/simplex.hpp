// Dense two-phase primal simplex for linear programs
//
//     minimise   c' x
//     subject to A x <= b          (x free)
//
// This solver exists to cross-validate the interior-point method: every LP is
// solved by two completely independent algorithms in the test suite, and the
// buffer-sizing-with-fixed-budgets subproblem (a pure LP, as in the earlier
// work the paper builds on) can be solved by either backend.
//
// The implementation is a classic dense tableau with Bland's anti-cycling
// rule; free variables are handled by the x = x+ - x- split. It is intended
// for the moderate problem sizes of the test suite, not for the large
// generated instances (use IpmSolver there).
#pragma once

#include "bbs/linalg/dense_matrix.hpp"
#include "bbs/solver/ipm_solver.hpp"

namespace bbs::solver {

struct LpResult {
  SolveStatus status = SolveStatus::kNumericalFailure;
  Vector x;
  double objective = 0.0;
};

LpResult solve_lp_simplex(const Vector& c, const linalg::DenseMatrix& a,
                          const Vector& b, int max_pivots = 100000);

}  // namespace bbs::solver
