// Reduced KKT solve for the interior-point method.
//
// Each Newton step requires solutions (u, v) of
//
//     G' v           = p
//     G  u - W^2 v   = q
//
// which reduce to the normal equations
//
//     (G' W^{-2} G) u = p + G' W^{-2} q,      v = W^{-2} (G u - q).
//
// The normal-equation matrix is symmetric positive definite whenever G has
// full column rank; a small static regularisation plus iterative refinement
// keeps the solve accurate as W becomes ill-conditioned near convergence.
#pragma once

#include <memory>

#include "bbs/linalg/ordering.hpp"
#include "bbs/linalg/sparse_ldlt.hpp"
#include "bbs/linalg/sparse_matrix.hpp"
#include "bbs/solver/nt_scaling.hpp"

namespace bbs::solver {

class KktSystem {
 public:
  struct Options {
    linalg::OrderingMethod ordering = linalg::OrderingMethod::kMinimumDegree;
    /// Static Tikhonov term added to the normal equations, relative to the
    /// largest diagonal entry.
    double static_regularisation = 1e-12;
    /// Rounds of iterative refinement of the normal-equation solve.
    int refine_steps = 1;
    /// Rounds of refinement of the full 2x2 KKT system (restores accuracy
    /// lost to the squared conditioning of the normal-equation reduction).
    int outer_refine_steps = 3;
  };

  explicit KktSystem(const linalg::SparseMatrix& g);
  KktSystem(const linalg::SparseMatrix& g, const Options& options);

  /// Re-assembles and re-factorises the normal equations for a new scaling.
  void factorise(const NtScaling& scaling);

  /// Solves the 2x2 system above. `p` has num_vars entries, `q` has
  /// cone-dimension entries. Must be called after factorise().
  void solve(const NtScaling& scaling, const Vector& p, const Vector& q,
             Vector& u, Vector& v) const;

  /// Fill-in statistics of the last factorisation (for the ordering bench).
  Index factor_nnz() const;

 private:
  void solve_once(const NtScaling& scaling, const Vector& p, const Vector& q,
                  Vector& u, Vector& v) const;

  linalg::SparseMatrix g_;
  linalg::SparseMatrix gt_;
  Options options_;
  linalg::SparseMatrix normal_;  // unregularised G' W^{-2} G of last factorise
  std::unique_ptr<linalg::SparseLdlt> factor_;
  /// Fill-reducing permutation, computed on the first factorisation and
  /// reused afterwards (the normal-equation pattern is iteration-invariant).
  std::vector<linalg::Index> cached_permutation_;
};

}  // namespace bbs::solver
