// Reduced KKT solve for the interior-point method.
//
// Each Newton step requires solutions (u, v) of
//
//     G' v           = p
//     G  u - W^2 v   = q
//
// which reduce to the normal equations
//
//     (G' W^{-2} G) u = p + G' W^{-2} q,      v = W^{-2} (G u - q).
//
// The normal-equation matrix is symmetric positive definite whenever G has
// full column rank; a small static regularisation plus iterative refinement
// keeps the solve accurate as W becomes ill-conditioned near convergence.
//
// The sparsity pattern of G' W^{-2} G is identical on every interior-point
// iteration, so all symbolic work happens exactly once, on the first
// factorise() call: the cached-pattern products S·G and G'·(S·G), the
// fill-reducing ordering, and the LDL^T elimination-tree analysis. Every
// later factorise() updates values in place and runs a numeric-only
// refactorisation — no triplet assembly, no reallocation.
//
// Not reentrant: solve() is logically const but shares internal workspaces,
// so a KktSystem instance must not be used from multiple threads
// concurrently (distinct instances are independent).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "bbs/linalg/ordering.hpp"
#include "bbs/linalg/sparse_ldlt.hpp"
#include "bbs/linalg/sparse_matrix.hpp"
#include "bbs/solver/nt_scaling.hpp"

namespace bbs::solver {

/// The pure-in-the-structure result of the one-time symbolic analysis: the
/// fill-reducing permutation of the normal-equation matrix plus the derived
/// elimination tree and factor column pointers. `pattern_hash` fingerprints
/// the normal-equation sparsity pattern the analysis was computed for, so a
/// seeded KktSystem can reject a stale hint cheaply. Serialisable — this is
/// the payload of the persistent structure cache.
struct SymbolicAnalysis {
  linalg::Index dim = 0;
  std::uint64_t pattern_hash = 0;
  std::vector<linalg::Index> permutation;
  std::vector<linalg::Index> etree_parent;
  std::vector<linalg::Index> factor_col_ptr;
};

class KktSystem {
 public:
  struct Options {
    linalg::OrderingMethod ordering = linalg::OrderingMethod::kMinimumDegree;
    /// Static Tikhonov term added to the normal equations, relative to the
    /// largest diagonal entry.
    double static_regularisation = 1e-12;
    /// Rounds of iterative refinement of the normal-equation solve.
    int refine_steps = 1;
    /// Rounds of refinement of the full 2x2 KKT system (restores accuracy
    /// lost to the squared conditioning of the normal-equation reduction).
    int outer_refine_steps = 3;
  };

  /// Counters exposing the symbolic-reuse invariant: after the first
  /// factorise() call, every later call is numeric-only.
  struct Stats {
    int factorise_calls = 0;
    /// Symbolic analyses performed (ordering + elimination tree + pattern
    /// caches). Stays at 1 across all interior-point iterations — and at 0
    /// when the analysis was seeded from a cached SymbolicAnalysis.
    int symbolic_factorisations = 0;
    /// Symbolic analyses loaded from a seeded SymbolicAnalysis instead of
    /// being derived (the fill-reducing ordering — the dominant symbolic
    /// cost — is skipped; the cheap elimination-tree rebuild doubles as
    /// verification of the cached entry).
    int symbolic_loads = 0;
    /// Seeds offered via seed_symbolic() that failed validation (dimension
    /// or pattern-hash mismatch, invalid permutation, or an etree/col-ptr
    /// disagreement) and fell back to a full derivation.
    int symbolic_seed_rejects = 0;
  };

  explicit KktSystem(const linalg::SparseMatrix& g);
  KktSystem(const linalg::SparseMatrix& g, const Options& options);

  /// Re-assembles and re-factorises the normal equations for a new scaling.
  /// The first call performs the symbolic analysis; later calls only update
  /// values in place. A NumericalError thrown here invalidates the previous
  /// factorisation (it is overwritten in place): solve() then throws until a
  /// later factorise() succeeds.
  void factorise(const NtScaling& scaling);

  /// Replaces the numeric values of G in place. `g` must carry exactly the
  /// sparsity pattern this system was built from (ContractViolation
  /// otherwise). All symbolic state — cached product patterns, ordering,
  /// elimination tree — stays valid, so repeated solves of a structurally
  /// identical problem with different coefficients (trade-off sweeps,
  /// binary searches) never re-run the symbolic analysis; the next
  /// factorise() call picks up the new values through the numeric-only
  /// path.
  void update_matrix_values(const linalg::SparseMatrix& g);

  /// Solves the 2x2 system above. `p` has num_vars entries, `q` has
  /// cone-dimension entries. Must be called after factorise().
  void solve(const NtScaling& scaling, const Vector& p, const Vector& q,
             Vector& u, Vector& v) const;

  /// Fill-in statistics of the last factorisation (for the ordering bench).
  Index factor_nnz() const;

  /// Adjusts the Tikhonov term used by subsequent factorise() calls. Purely
  /// numeric: the diagonal is part of the fixed normal-equation pattern, so
  /// no symbolic state is touched — the recovery ladder bumps and restores
  /// this without ever re-running the analysis.
  void set_static_regularisation(double value) {
    options_.static_regularisation = value;
  }
  double static_regularisation() const {
    return options_.static_regularisation;
  }

  /// Offers a cached symbolic analysis for the first factorise() call. Must
  /// be called before the first factorise(); the hint is validated there
  /// (dimension, pattern hash, permutation) and silently discarded — with a
  /// symbolic_seed_rejects count — if it does not match the actual
  /// normal-equation pattern. A valid seed replaces the fill-reducing
  /// ordering computation; correctness never depends on the hint because any
  /// valid permutation yields a correct LDL^T (only fill quality varies).
  void seed_symbolic(SymbolicAnalysis analysis);

  /// Exports the symbolic analysis after the first factorise() (nullopt
  /// before it). The result is pure in the problem structure and safe to
  /// persist and re-seed into a future KktSystem for the same structure.
  std::optional<SymbolicAnalysis> export_symbolic() const;

  const Stats& stats() const { return stats_; }

 private:
  void solve_once(const NtScaling& scaling, const Vector& p, const Vector& q,
                  Vector& u, Vector& v) const;

  linalg::SparseMatrix g_;
  linalg::SparseMatrix gt_;
  /// Value slot in gt_ of each value slot of g_, for in-place transposed
  /// value updates (update_matrix_values).
  std::vector<Index> gt_slot_of_g_slot_;
  Options options_;
  linalg::SparseMatrix s_;            // W^{-2}, fixed full block pattern
  linalg::CachedSpGemm sg_;           // W^{-2} G
  linalg::CachedSpGemm normal_;       // G' (W^{-2} G), diagonal kept present
  linalg::SparseMatrix regularised_;  // normal + reg I (same pattern)
  std::vector<Index> diag_pos_;       // value index of each diagonal entry
  std::unique_ptr<linalg::SparseLdlt> factor_;
  /// Fill-reducing permutation, computed on the first factorisation and
  /// reused afterwards (the normal-equation pattern is iteration-invariant).
  std::vector<linalg::Index> cached_permutation_;
  /// Cached analysis offered via seed_symbolic(), consumed (validated or
  /// rejected) by the first factorise().
  std::unique_ptr<SymbolicAnalysis> pending_symbolic_;
  Stats stats_;
  // Solve workspaces, hoisted out of the refinement loops (mutable: solve()
  // is logically const and runs several times per interior-point iteration).
  mutable Vector work_tmp_m_;
  mutable Vector work_w2q_;
  mutable Vector work_rhs_;
  mutable Vector work_gu_;
  mutable Vector work_r1_;
  mutable Vector work_r2_;
  mutable Vector work_du_;
  mutable Vector work_dv_;
  mutable Vector work_w2v_;
};

}  // namespace bbs::solver
