// Nesterov–Todd scaling for the composite cone.
//
// Given strictly interior s and z, the NT scaling point W is the unique
// symmetric cone automorphism with W z = W^{-1} s =: lambda. For the
// nonnegative orthant this is the diagonal matrix w_i = sqrt(s_i / z_i); for
// a second-order cone it is eta * Q(w_bar) where Q is the quadratic
// representation 2*w*w' - (w'Jw)*J of a unit-hyperbolic point w_bar and
// eta = ((s'Js)/(z'Jz))^{1/4}.
//
// The interior-point method only needs:
//   * lambda = W z,
//   * application of W and W^{-1} to vectors (W is symmetric),
//   * the block-diagonal matrix (W'W)^{-1} = W^{-2} for the KKT assembly.
#pragma once

#include <vector>

#include "bbs/linalg/dense_matrix.hpp"
#include "bbs/linalg/sparse_matrix.hpp"
#include "bbs/solver/cone.hpp"

namespace bbs::solver {

class NtScaling {
 public:
  explicit NtScaling(const ConeSpec& cone);

  /// Recomputes the scaling from the current strictly interior pair (s, z).
  /// Throws NumericalError if either point has left the cone interior.
  void update(const Vector& s, const Vector& z);

  /// The scaled point lambda = W z = W^{-1} s.
  const Vector& lambda() const { return lambda_; }

  /// Returns W v (W is symmetric, so this is also W' v).
  Vector apply_w(const Vector& v) const;

  /// Returns W^{-1} v (also W^{-T} v).
  Vector apply_w_inv(const Vector& v) const;

  /// Allocation-free variants: write W v / W^{-1} v into `out` (resized on
  /// first use). `out` must not alias `v`.
  void apply_w_into(const Vector& v, Vector& out) const;
  void apply_w_inv_into(const Vector& v, Vector& out) const;

  /// Block-diagonal sparse matrix W^{-2} = (W'W)^{-1}, used to assemble the
  /// normal equations G' W^{-2} G.
  linalg::SparseMatrix inverse_squared() const;

  /// Writes W^{-2} into `out` on the *fixed* full block pattern (diagonal of
  /// the LP block plus dense SOC blocks, explicit zeros kept so the pattern
  /// is iteration-invariant). An empty `out` is built from scratch; later
  /// calls update the values in place with no allocation. The fixed pattern
  /// is what lets the KKT system cache its normal-equation structure.
  void inverse_squared_into(linalg::SparseMatrix& out) const;

 private:
  const ConeSpec* cone_;
  Vector w_lp_;      // diagonal scaling of the LP block
  Vector lambda_;    // scaled point for the whole cone
  std::vector<linalg::DenseMatrix> w_soc_;     // per-SOC W block
  std::vector<linalg::DenseMatrix> w_inv_soc_; // per-SOC W^{-1} block
};

}  // namespace bbs::solver
