#include "bbs/solver/nt_scaling.hpp"

#include <cmath>

#include "bbs/common/assert.hpp"

namespace bbs::solver {

namespace {

/// Hyperbolic quadratic form u'Ju = u0^2 - ||u1||^2 of a SOC block.
double jdot_self(const Vector& v, Index off, Index q) {
  double head = v[static_cast<std::size_t>(off)];
  double tail = 0.0;
  for (Index i = 1; i < q; ++i) {
    const double x = v[static_cast<std::size_t>(off + i)];
    tail += x * x;
  }
  return head * head - tail;
}

}  // namespace

NtScaling::NtScaling(const ConeSpec& cone)
    : cone_(&cone),
      w_lp_(static_cast<std::size_t>(cone.nonneg()), 1.0),
      lambda_(static_cast<std::size_t>(cone.dim()), 0.0),
      w_soc_(cone.soc_dims().size()),
      w_inv_soc_(cone.soc_dims().size()) {}

void NtScaling::update(const Vector& s, const Vector& z) {
  const ConeSpec& cone = *cone_;
  BBS_REQUIRE(s.size() == static_cast<std::size_t>(cone.dim()) &&
                  z.size() == static_cast<std::size_t>(cone.dim()),
              "NtScaling::update: size mismatch");

  for (Index i = 0; i < cone.nonneg(); ++i) {
    const double si = s[static_cast<std::size_t>(i)];
    const double zi = z[static_cast<std::size_t>(i)];
    if (si <= 0.0 || zi <= 0.0) {
      throw NumericalError("NtScaling: LP point left the cone interior");
    }
    w_lp_[static_cast<std::size_t>(i)] = std::sqrt(si / zi);
    lambda_[static_cast<std::size_t>(i)] = std::sqrt(si * zi);
  }

  for (std::size_t k = 0; k < cone.soc_dims().size(); ++k) {
    const Index off = cone.soc_offset(k);
    const Index q = cone.soc_dims()[k];
    const double ds = jdot_self(s, off, q);
    const double dz = jdot_self(z, off, q);
    if (ds <= 0.0 || dz <= 0.0 || s[static_cast<std::size_t>(off)] <= 0.0 ||
        z[static_cast<std::size_t>(off)] <= 0.0) {
      throw NumericalError("NtScaling: SOC point left the cone interior");
    }
    const double sqrt_ds = std::sqrt(ds);
    const double sqrt_dz = std::sqrt(dz);

    // Normalised unit-hyperbolic points s_bar, z_bar.
    Vector sbar(static_cast<std::size_t>(q));
    Vector zbar(static_cast<std::size_t>(q));
    for (Index i = 0; i < q; ++i) {
      sbar[static_cast<std::size_t>(i)] =
          s[static_cast<std::size_t>(off + i)] / sqrt_ds;
      zbar[static_cast<std::size_t>(i)] =
          z[static_cast<std::size_t>(off + i)] / sqrt_dz;
    }
    double sz = 0.0;
    for (Index i = 0; i < q; ++i)
      sz += sbar[static_cast<std::size_t>(i)] *
            zbar[static_cast<std::size_t>(i)];
    const double gamma = std::sqrt((1.0 + sz) / 2.0);

    // w_bar = (s_bar + J z_bar) / (2 gamma) is unit hyperbolic and satisfies
    // Q(w_bar) z_bar = s_bar.
    Vector wbar(static_cast<std::size_t>(q));
    wbar[0] = (sbar[0] + zbar[0]) / (2.0 * gamma);
    for (Index i = 1; i < q; ++i) {
      wbar[static_cast<std::size_t>(i)] =
          (sbar[static_cast<std::size_t>(i)] -
           zbar[static_cast<std::size_t>(i)]) /
          (2.0 * gamma);
    }

    // The scaling point is the Jordan square root v of w_bar (unit
    // hyperbolic, v o v = w_bar), so that W^2 = eta^2 Q(w_bar) maps z to s:
    //     v = (w_bar + e) / sqrt(2 (w_bar_0 + 1)).
    Vector v = wbar;
    v[0] += 1.0;
    const double vscale = 1.0 / std::sqrt(2.0 * (wbar[0] + 1.0));
    for (Index i = 0; i < q; ++i) v[static_cast<std::size_t>(i)] *= vscale;

    // W = eta * Q(v) with Q(v) = 2 v v' - J (since v'Jv = 1);
    // W^{-1} = (1/eta) * J Q(v) J.
    const double eta = std::pow(ds / dz, 0.25);
    linalg::DenseMatrix w(static_cast<std::size_t>(q),
                          static_cast<std::size_t>(q));
    linalg::DenseMatrix winv(static_cast<std::size_t>(q),
                             static_cast<std::size_t>(q));
    for (Index r = 0; r < q; ++r) {
      for (Index c = 0; c < q; ++c) {
        const double qrc = 2.0 * v[static_cast<std::size_t>(r)] *
                               v[static_cast<std::size_t>(c)] -
                           ((r == c) ? (r == 0 ? 1.0 : -1.0) : 0.0);
        w(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
            eta * qrc;
        // J Q J flips the sign of the off-diagonal head-tail couplings.
        const double sign = ((r == 0) != (c == 0)) ? -1.0 : 1.0;
        winv(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
            sign * qrc / eta;
      }
    }
    w_soc_[k] = std::move(w);
    w_inv_soc_[k] = std::move(winv);

    // lambda = W z, computed with the freshly built block.
    for (Index r = 0; r < q; ++r) {
      double acc = 0.0;
      for (Index c = 0; c < q; ++c) {
        acc += w_soc_[k](static_cast<std::size_t>(r),
                         static_cast<std::size_t>(c)) *
               z[static_cast<std::size_t>(off + c)];
      }
      lambda_[static_cast<std::size_t>(off + r)] = acc;
    }
  }
}

Vector NtScaling::apply_w(const Vector& v) const {
  Vector out;
  apply_w_into(v, out);
  return out;
}

void NtScaling::apply_w_into(const Vector& v, Vector& out) const {
  const ConeSpec& cone = *cone_;
  BBS_REQUIRE(v.size() == static_cast<std::size_t>(cone.dim()),
              "NtScaling::apply_w: size mismatch");
  BBS_REQUIRE(&v != &out, "NtScaling::apply_w: aliased output");
  out.assign(v.size(), 0.0);
  for (Index i = 0; i < cone.nonneg(); ++i) {
    out[static_cast<std::size_t>(i)] =
        w_lp_[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
  }
  for (std::size_t k = 0; k < cone.soc_dims().size(); ++k) {
    const Index off = cone.soc_offset(k);
    const Index q = cone.soc_dims()[k];
    for (Index r = 0; r < q; ++r) {
      double acc = 0.0;
      for (Index c = 0; c < q; ++c) {
        acc += w_soc_[k](static_cast<std::size_t>(r),
                         static_cast<std::size_t>(c)) *
               v[static_cast<std::size_t>(off + c)];
      }
      out[static_cast<std::size_t>(off + r)] = acc;
    }
  }
}

Vector NtScaling::apply_w_inv(const Vector& v) const {
  Vector out;
  apply_w_inv_into(v, out);
  return out;
}

void NtScaling::apply_w_inv_into(const Vector& v, Vector& out) const {
  const ConeSpec& cone = *cone_;
  BBS_REQUIRE(v.size() == static_cast<std::size_t>(cone.dim()),
              "NtScaling::apply_w_inv: size mismatch");
  BBS_REQUIRE(&v != &out, "NtScaling::apply_w_inv: aliased output");
  out.assign(v.size(), 0.0);
  for (Index i = 0; i < cone.nonneg(); ++i) {
    out[static_cast<std::size_t>(i)] =
        v[static_cast<std::size_t>(i)] / w_lp_[static_cast<std::size_t>(i)];
  }
  for (std::size_t k = 0; k < cone.soc_dims().size(); ++k) {
    const Index off = cone.soc_offset(k);
    const Index q = cone.soc_dims()[k];
    for (Index r = 0; r < q; ++r) {
      double acc = 0.0;
      for (Index c = 0; c < q; ++c) {
        acc += w_inv_soc_[k](static_cast<std::size_t>(r),
                             static_cast<std::size_t>(c)) *
               v[static_cast<std::size_t>(off + c)];
      }
      out[static_cast<std::size_t>(off + r)] = acc;
    }
  }
}

void NtScaling::inverse_squared_into(linalg::SparseMatrix& out) const {
  const ConeSpec& cone = *cone_;
  if (out.rows() == 0) {
    // Build the fixed full block pattern once: one diagonal entry per LP
    // coordinate, dense q x q blocks for the SOCs (explicit zeros kept).
    linalg::TripletList t(cone.dim(), cone.dim());
    for (Index i = 0; i < cone.nonneg(); ++i) t.add(i, i, 0.0);
    for (std::size_t k = 0; k < cone.soc_dims().size(); ++k) {
      const Index off = cone.soc_offset(k);
      const Index q = cone.soc_dims()[k];
      for (Index c = 0; c < q; ++c) {
        for (Index r = 0; r < q; ++r) t.add(off + r, off + c, 0.0);
      }
    }
    out = linalg::SparseMatrix::from_triplets(t);
  }
  // Validate the full fixed layout, not just the entry count: the value
  // writes below index through col_ptr assuming one diagonal entry per LP
  // column and dense contiguous SOC blocks.
  const auto pattern_ok = [&]() {
    if (out.rows() != cone.dim() || out.cols() != cone.dim()) return false;
    for (Index i = 0; i < cone.nonneg(); ++i) {
      if (out.col_ptr()[i + 1] - out.col_ptr()[i] != 1 ||
          out.row_ind()[out.col_ptr()[i]] != i) {
        return false;
      }
    }
    for (std::size_t k = 0; k < cone.soc_dims().size(); ++k) {
      const Index off = cone.soc_offset(k);
      const Index q = cone.soc_dims()[k];
      for (Index c = 0; c < q; ++c) {
        const Index base = out.col_ptr()[off + c];
        if (out.col_ptr()[off + c + 1] - base != q) return false;
        for (Index r = 0; r < q; ++r) {
          if (out.row_ind()[base + r] != off + r) return false;
        }
      }
    }
    return true;
  };
  BBS_REQUIRE(pattern_ok(),
              "NtScaling::inverse_squared_into: matrix does not carry the "
              "fixed W^{-2} block pattern");

  std::vector<double>& vals = out.values();
  for (Index i = 0; i < cone.nonneg(); ++i) {
    const double w = w_lp_[static_cast<std::size_t>(i)];
    vals[static_cast<std::size_t>(out.col_ptr()[i])] = 1.0 / (w * w);
  }
  for (std::size_t k = 0; k < cone.soc_dims().size(); ++k) {
    const Index off = cone.soc_offset(k);
    const Index q = cone.soc_dims()[k];
    const linalg::DenseMatrix& winv = w_inv_soc_[k];
    // Column off+c of the block holds rows off..off+q-1 contiguously;
    // (W^{-2})_rc = sum_t W^{-1}_rt W^{-1}_tc, computed without a temporary.
    for (Index c = 0; c < q; ++c) {
      const Index base = out.col_ptr()[off + c];
      for (Index r = 0; r < q; ++r) {
        double acc = 0.0;
        for (Index t = 0; t < q; ++t) {
          acc += winv(static_cast<std::size_t>(r), static_cast<std::size_t>(t)) *
                 winv(static_cast<std::size_t>(t), static_cast<std::size_t>(c));
        }
        vals[static_cast<std::size_t>(base + r)] = acc;
      }
    }
  }
}

linalg::SparseMatrix NtScaling::inverse_squared() const {
  linalg::SparseMatrix out;
  inverse_squared_into(out);
  return out;
}

}  // namespace bbs::solver
