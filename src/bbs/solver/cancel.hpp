// Cooperative cancellation for long-running solves.
//
// A CancelToken is shared (via shared_ptr in SolverOptions) between the
// owner of a request — a service connection, a batch driver, a test — and
// the IPM loop running on its behalf. The owner flips the flag or arms an
// absolute deadline; the solver polls once per iteration and exits with a
// terminal status (kCancelled / kTimedOut) instead of throwing, so the
// workspace and warm snapshots of the enclosing session stay intact and
// reusable.
//
// Both fields are plain atomics: arming and polling are wait-free, and an
// un-armed token costs the solve one relaxed load per iteration.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>

namespace bbs::solver {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Requests cancellation; sticky until reset().
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arms an absolute wall-clock deadline; the solver treats it exactly
  /// like SolverOptions::time_limit_ms, taking whichever expires first.
  void set_deadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }
  Clock::time_point deadline() const {
    return Clock::time_point(
        Clock::duration(deadline_ns_.load(std::memory_order_relaxed)));
  }
  bool expired(Clock::time_point now = Clock::now()) const {
    const Clock::rep armed = deadline_ns_.load(std::memory_order_relaxed);
    return armed != kNoDeadline &&
           now.time_since_epoch().count() >= armed;
  }

  /// Disarms both the flag and the deadline (token reuse across requests).
  void reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }

 private:
  static constexpr Clock::rep kNoDeadline =
      std::numeric_limits<Clock::rep>::max();
  std::atomic<bool> cancelled_{false};
  std::atomic<Clock::rep> deadline_ns_{kNoDeadline};
};

}  // namespace bbs::solver
