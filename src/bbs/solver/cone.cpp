#include "bbs/solver/cone.hpp"

#include <cmath>
#include <limits>

#include "bbs/common/assert.hpp"

namespace bbs::solver {

namespace {

double block_norm(const Vector& v, Index off, Index len) {
  double s = 0.0;
  for (Index i = off; i < off + len; ++i)
    s += v[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
  return std::sqrt(s);
}

/// Smallest positive root of a*t^2 + b*t + c = 0, or +inf if none.
/// Written against catastrophic cancellation: the stable quadratic formula
/// with the sign trick is used.
double smallest_positive_root(double a, double b, double c) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  constexpr double tiny = 1e-300;
  if (std::abs(a) < tiny) {
    if (std::abs(b) < tiny) return inf;
    const double r = -c / b;
    return r > 0.0 ? r : inf;
  }
  const double disc = b * b - 4.0 * a * c;
  if (disc < 0.0) return inf;
  const double sq = std::sqrt(disc);
  const double q = -0.5 * (b + (b >= 0.0 ? sq : -sq));
  double r1 = q / a;
  double r2 = (std::abs(q) < tiny) ? inf : c / q;
  if (r1 > r2) std::swap(r1, r2);
  if (r1 > 0.0) return r1;
  if (r2 > 0.0) return r2;
  return inf;
}

}  // namespace

ConeSpec::ConeSpec(Index nonneg, std::vector<Index> soc_dims)
    : nonneg_(nonneg), soc_dims_(std::move(soc_dims)) {
  BBS_REQUIRE(nonneg_ >= 0, "ConeSpec: negative orthant size");
  Index off = nonneg_;
  soc_offsets_.reserve(soc_dims_.size());
  for (Index q : soc_dims_) {
    BBS_REQUIRE(q >= 2, "ConeSpec: SOC blocks must have dimension >= 2");
    soc_offsets_.push_back(off);
    off += q;
  }
  dim_ = off;
}

void ConeSpec::identity(Vector& v) const {
  BBS_REQUIRE(v.size() == static_cast<std::size_t>(dim_),
              "ConeSpec::identity: size mismatch");
  for (Index i = 0; i < nonneg_; ++i) v[static_cast<std::size_t>(i)] = 1.0;
  for (std::size_t k = 0; k < soc_dims_.size(); ++k) {
    const Index off = soc_offsets_[k];
    v[static_cast<std::size_t>(off)] = 1.0;
    for (Index i = 1; i < soc_dims_[k]; ++i)
      v[static_cast<std::size_t>(off + i)] = 0.0;
  }
}

Vector ConeSpec::circ(const Vector& u, const Vector& v) const {
  BBS_REQUIRE(u.size() == static_cast<std::size_t>(dim_) &&
                  v.size() == static_cast<std::size_t>(dim_),
              "ConeSpec::circ: size mismatch");
  Vector w(u.size(), 0.0);
  for (Index i = 0; i < nonneg_; ++i) {
    w[static_cast<std::size_t>(i)] =
        u[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
  }
  for (std::size_t k = 0; k < soc_dims_.size(); ++k) {
    const Index off = soc_offsets_[k];
    const Index q = soc_dims_[k];
    // (u ∘ v)_0 = u'v ; (u ∘ v)_1 = u0 v1 + v0 u1.
    double dot_uv = 0.0;
    for (Index i = 0; i < q; ++i) {
      dot_uv += u[static_cast<std::size_t>(off + i)] *
                v[static_cast<std::size_t>(off + i)];
    }
    w[static_cast<std::size_t>(off)] = dot_uv;
    const double u0 = u[static_cast<std::size_t>(off)];
    const double v0 = v[static_cast<std::size_t>(off)];
    for (Index i = 1; i < q; ++i) {
      w[static_cast<std::size_t>(off + i)] =
          u0 * v[static_cast<std::size_t>(off + i)] +
          v0 * u[static_cast<std::size_t>(off + i)];
    }
  }
  return w;
}

Vector ConeSpec::solve_circ(const Vector& lambda, const Vector& d) const {
  BBS_REQUIRE(lambda.size() == static_cast<std::size_t>(dim_) &&
                  d.size() == static_cast<std::size_t>(dim_),
              "ConeSpec::solve_circ: size mismatch");
  Vector x(d.size(), 0.0);
  for (Index i = 0; i < nonneg_; ++i) {
    const double li = lambda[static_cast<std::size_t>(i)];
    if (li == 0.0) throw NumericalError("solve_circ: zero LP eigenvalue");
    x[static_cast<std::size_t>(i)] = d[static_cast<std::size_t>(i)] / li;
  }
  for (std::size_t k = 0; k < soc_dims_.size(); ++k) {
    const Index off = soc_offsets_[k];
    const Index q = soc_dims_[k];
    // Solve Arw(lambda) x = d for the arrow matrix
    //   Arw(l) = [ l0   l1' ; l1  l0 I ].
    const double l0 = lambda[static_cast<std::size_t>(off)];
    double l1_sq = 0.0;
    double l1_dot_d1 = 0.0;
    for (Index i = 1; i < q; ++i) {
      const double li = lambda[static_cast<std::size_t>(off + i)];
      l1_sq += li * li;
      l1_dot_d1 += li * d[static_cast<std::size_t>(off + i)];
    }
    const double det = l0 * l0 - l1_sq;  // > 0 in the cone interior
    if (det <= 0.0 || l0 <= 0.0) {
      throw NumericalError("solve_circ: arrow matrix not positive definite");
    }
    const double d0 = d[static_cast<std::size_t>(off)];
    const double x0 = (l0 * d0 - l1_dot_d1) / det;
    x[static_cast<std::size_t>(off)] = x0;
    for (Index i = 1; i < q; ++i) {
      x[static_cast<std::size_t>(off + i)] =
          (d[static_cast<std::size_t>(off + i)] -
           lambda[static_cast<std::size_t>(off + i)] * x0) /
          l0;
    }
  }
  return x;
}

double ConeSpec::max_step(const Vector& u, const Vector& du,
                          double cap) const {
  double alpha = cap;
  for (Index i = 0; i < nonneg_; ++i) {
    const double d = du[static_cast<std::size_t>(i)];
    if (d < 0.0) {
      alpha = std::min(alpha, -u[static_cast<std::size_t>(i)] / d);
    }
  }
  for (std::size_t k = 0; k < soc_dims_.size(); ++k) {
    const Index off = soc_offsets_[k];
    const Index q = soc_dims_[k];
    // First positive root of f(t) = (u0+t d0)^2 - ||u1 + t d1||^2, which is
    // where the ray exits the cone (f(0) > 0 in the interior).
    double d1_sq = 0.0;
    double u1_sq = 0.0;
    double u1_dot_d1 = 0.0;
    for (Index i = 1; i < q; ++i) {
      const double ui = u[static_cast<std::size_t>(off + i)];
      const double di = du[static_cast<std::size_t>(off + i)];
      d1_sq += di * di;
      u1_sq += ui * ui;
      u1_dot_d1 += ui * di;
    }
    const double u0 = u[static_cast<std::size_t>(off)];
    const double d0 = du[static_cast<std::size_t>(off)];
    const double a = d0 * d0 - d1_sq;
    const double b = 2.0 * (u0 * d0 - u1_dot_d1);
    const double c = u0 * u0 - u1_sq;
    alpha = std::min(alpha, smallest_positive_root(a, b, c));
    // Guard the u0 + t d0 >= 0 branch explicitly: when u1 + t d1 hits zero at
    // the same parameter, the quadratic can have a double root there.
    if (d0 < 0.0) alpha = std::min(alpha, -u0 / d0);
  }
  return alpha;
}

bool ConeSpec::is_interior(const Vector& u, double margin) const {
  if (u.size() != static_cast<std::size_t>(dim_)) return false;
  for (Index i = 0; i < nonneg_; ++i) {
    if (u[static_cast<std::size_t>(i)] <= margin) return false;
  }
  for (std::size_t k = 0; k < soc_dims_.size(); ++k) {
    const Index off = soc_offsets_[k];
    const Index q = soc_dims_[k];
    const double u0 = u[static_cast<std::size_t>(off)];
    const double n1 = block_norm(u, off + 1, q - 1);
    if (u0 - n1 <= margin) return false;
  }
  return true;
}

double ConeSpec::interior_margin(const Vector& u) const {
  BBS_REQUIRE(u.size() == static_cast<std::size_t>(dim_),
              "ConeSpec::interior_margin: size mismatch");
  double margin = std::numeric_limits<double>::infinity();
  for (Index i = 0; i < nonneg_; ++i) {
    margin = std::min(margin, u[static_cast<std::size_t>(i)]);
  }
  for (std::size_t k = 0; k < soc_dims_.size(); ++k) {
    const Index off = soc_offsets_[k];
    const Index q = soc_dims_[k];
    const double u0 = u[static_cast<std::size_t>(off)];
    margin = std::min(margin, u0 - block_norm(u, off + 1, q - 1));
  }
  return margin;
}

Vector random_interior_point(const ConeSpec& cone, Rng& rng) {
  Vector u(static_cast<std::size_t>(cone.dim()));
  for (Index i = 0; i < cone.nonneg(); ++i) {
    u[static_cast<std::size_t>(i)] = rng.next_real(0.05, 4.0);
  }
  for (std::size_t k = 0; k < cone.soc_dims().size(); ++k) {
    const auto off = static_cast<std::size_t>(cone.soc_offset(k));
    const auto q = static_cast<std::size_t>(cone.soc_dims()[k]);
    double tail = 0.0;
    for (std::size_t i = 1; i < q; ++i) {
      u[off + i] = rng.next_real(-1.5, 1.5);
      tail += u[off + i] * u[off + i];
    }
    u[off] = std::sqrt(tail) + rng.next_real(0.05, 2.0);
  }
  return u;
}

}  // namespace bbs::solver
