#include "bbs/solver/conic_problem.hpp"

#include <algorithm>
#include <cmath>

#include "bbs/common/assert.hpp"

namespace bbs::solver {

ConicProblem::ConicProblem(Vector c, linalg::SparseMatrix g, Vector h,
                           ConeSpec cone)
    : c_(std::move(c)), g_(std::move(g)), h_(std::move(h)),
      cone_(std::move(cone)) {
  BBS_REQUIRE(g_.cols() == static_cast<Index>(c_.size()),
              "ConicProblem: G column count must match |c|");
  BBS_REQUIRE(g_.rows() == static_cast<Index>(h_.size()),
              "ConicProblem: G row count must match |h|");
  BBS_REQUIRE(cone_.dim() == g_.rows(),
              "ConicProblem: cone dimension must match row count");
}

void ConicProblem::set_h(Index row, double value) {
  BBS_REQUIRE(row >= 0 && row < num_rows(),
              "ConicProblem::set_h: row out of range");
  h_[static_cast<std::size_t>(row)] = value;
}

void ConicProblem::set_g_value(Index slot, double value) {
  BBS_REQUIRE(slot >= 0 && slot < g_.nnz(),
              "ConicProblem::set_g_value: slot out of range");
  g_.values()[static_cast<std::size_t>(slot)] = value;
}

Index ConicProblem::g_value_slot(Index row, Index col) const {
  BBS_REQUIRE(row >= 0 && row < num_rows() && col >= 0 && col < num_vars(),
              "ConicProblem::g_value_slot: index out of range");
  const auto& col_ptr = g_.col_ptr();
  const auto& row_ind = g_.row_ind();
  // Row indices are sorted within each column: binary search.
  const auto first = row_ind.begin() + col_ptr[static_cast<std::size_t>(col)];
  const auto last = row_ind.begin() + col_ptr[static_cast<std::size_t>(col) + 1];
  const auto it = std::lower_bound(first, last, row);
  if (it == last || *it != row) return -1;
  return static_cast<Index>(it - row_ind.begin());
}

double ConicProblem::objective(const Vector& x) const {
  return linalg::dot(c_, x);
}

double ConicProblem::primal_residual(const Vector& x, const Vector& s) const {
  Vector r = h_;
  g_.gaxpy(-1.0, x, r);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] -= s[i];
  return linalg::norm_inf(r);
}

double ConicProblem::dual_residual(const Vector& z) const {
  Vector r = c_;
  g_.gaxpy_transpose(1.0, z, r);
  return linalg::norm_inf(r);
}

ConicProblemBuilder::ConicProblemBuilder(Index num_vars)
    : num_vars_(num_vars), c_(static_cast<std::size_t>(num_vars), 0.0) {
  BBS_REQUIRE(num_vars >= 0, "ConicProblemBuilder: negative variable count");
}

void ConicProblemBuilder::set_objective(Index var, double coeff) {
  BBS_REQUIRE(var >= 0 && var < num_vars_,
              "ConicProblemBuilder::set_objective: variable out of range");
  c_[static_cast<std::size_t>(var)] = coeff;
}

Index ConicProblemBuilder::add_inequality(
    const std::vector<std::pair<Index, double>>& terms, double rhs) {
  BBS_REQUIRE(soc_dims_.empty() && open_soc_remaining_ == 0,
              "ConicProblemBuilder: LP rows must precede all SOC blocks");
  const Index row = next_row_++;
  ++nonneg_rows_;
  h_.push_back(rhs);
  for (const auto& [var, coeff] : terms) {
    BBS_REQUIRE(var >= 0 && var < num_vars_,
                "ConicProblemBuilder::add_inequality: variable out of range");
    trip_rows_.push_back(row);
    trip_cols_.push_back(var);
    trip_vals_.push_back(coeff);
  }
  return row;
}

void ConicProblemBuilder::begin_soc(Index dim) {
  BBS_REQUIRE(open_soc_remaining_ == 0,
              "ConicProblemBuilder::begin_soc: previous SOC block unfinished");
  BBS_REQUIRE(dim >= 2, "ConicProblemBuilder::begin_soc: dim must be >= 2");
  soc_dims_.push_back(dim);
  open_soc_remaining_ = dim;
}

void ConicProblemBuilder::soc_row(
    const std::vector<std::pair<Index, double>>& terms, double rhs) {
  BBS_REQUIRE(open_soc_remaining_ > 0,
              "ConicProblemBuilder::soc_row: no open SOC block");
  const Index row = next_row_++;
  --open_soc_remaining_;
  h_.push_back(rhs);
  for (const auto& [var, coeff] : terms) {
    BBS_REQUIRE(var >= 0 && var < num_vars_,
                "ConicProblemBuilder::soc_row: variable out of range");
    trip_rows_.push_back(row);
    trip_cols_.push_back(var);
    trip_vals_.push_back(coeff);
  }
}

ConicProblem ConicProblemBuilder::build() {
  if (open_soc_remaining_ != 0) {
    throw ModelError("ConicProblemBuilder::build: unfinished SOC block");
  }
  linalg::TripletList t(next_row_, num_vars_);
  for (std::size_t k = 0; k < trip_rows_.size(); ++k) {
    t.add(trip_rows_[k], trip_cols_[k], trip_vals_[k]);
  }
  return ConicProblem(c_, linalg::SparseMatrix::from_triplets(t),
                      Vector(h_.begin(), h_.end()),
                      ConeSpec(nonneg_rows_, soc_dims_));
}

}  // namespace bbs::solver
