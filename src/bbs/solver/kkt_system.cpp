#include "bbs/solver/kkt_system.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "bbs/common/assert.hpp"
#include "bbs/common/hash.hpp"

namespace bbs::solver {
namespace {

/// Fingerprint of a sparsity pattern (dimension + column pointers + row
/// indices; values excluded). Stable across processes — used to match a
/// cached SymbolicAnalysis against the live normal-equation pattern.
std::uint64_t pattern_hash_of(const linalg::SparseMatrix& a) {
  std::uint64_t hash = common::kFnv1a64Offset;
  const auto n = static_cast<std::uint64_t>(a.cols());
  hash = common::fnv1a_64(&n, sizeof(n), hash);
  hash = common::fnv1a_64_values(a.col_ptr(), hash);
  hash = common::fnv1a_64_values(a.row_ind(), hash);
  return hash;
}

bool is_valid_permutation(const std::vector<linalg::Index>& perm,
                          linalg::Index n) {
  if (perm.size() != static_cast<std::size_t>(n)) return false;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (const linalg::Index p : perm) {
    if (p < 0 || p >= n || seen[static_cast<std::size_t>(p)]) return false;
    seen[static_cast<std::size_t>(p)] = true;
  }
  return true;
}

}  // namespace

KktSystem::KktSystem(const linalg::SparseMatrix& g)
    : KktSystem(g, Options{}) {}

KktSystem::KktSystem(const linalg::SparseMatrix& g, const Options& options)
    : g_(g), gt_(g.transpose()), options_(options) {}

void KktSystem::update_matrix_values(const linalg::SparseMatrix& g) {
  BBS_REQUIRE(g.rows() == g_.rows() && g.cols() == g_.cols() &&
                  g.col_ptr() == g_.col_ptr() && g.row_ind() == g_.row_ind(),
              "KktSystem::update_matrix_values: pattern mismatch");
  if (gt_slot_of_g_slot_.empty() && g_.nnz() > 0) {
    // Iterating G column by column visits the entries of each row — i.e.
    // each column of G' — in ascending column order, which is exactly the
    // storage order of gt_: one running cursor per gt_ column recovers the
    // slot mapping.
    std::vector<Index> cursor(gt_.col_ptr().begin(), gt_.col_ptr().end() - 1);
    gt_slot_of_g_slot_.resize(static_cast<std::size_t>(g_.nnz()));
    for (Index c = 0; c < g_.cols(); ++c) {
      for (Index k = g_.col_ptr()[static_cast<std::size_t>(c)];
           k < g_.col_ptr()[static_cast<std::size_t>(c) + 1]; ++k) {
        const auto r = static_cast<std::size_t>(g_.row_ind()[k]);
        gt_slot_of_g_slot_[static_cast<std::size_t>(k)] = cursor[r]++;
      }
    }
  }
  std::copy(g.values().begin(), g.values().end(), g_.values().begin());
  for (std::size_t k = 0; k < gt_slot_of_g_slot_.size(); ++k) {
    gt_.values()[static_cast<std::size_t>(gt_slot_of_g_slot_[k])] =
        g_.values()[k];
  }
}

void KktSystem::factorise(const NtScaling& scaling) {
  scaling.inverse_squared_into(s_);

  const bool first = (factor_ == nullptr);
  if (first) {
    // One-time symbolic work: output patterns of S·G and G'·(S·G). The
    // diagonal is forced into the normal pattern so the regularisation term
    // below never changes the structure.
    sg_ = linalg::CachedSpGemm(s_, g_);
    normal_ = linalg::CachedSpGemm(gt_, sg_.result(),
                                   /*include_diagonal=*/true);
    regularised_ = normal_.result();
    diag_pos_.assign(static_cast<std::size_t>(regularised_.cols()), -1);
    for (Index c = 0; c < regularised_.cols(); ++c) {
      for (Index k = regularised_.col_ptr()[c];
           k < regularised_.col_ptr()[c + 1]; ++k) {
        if (regularised_.row_ind()[k] == c) {
          diag_pos_[static_cast<std::size_t>(c)] = k;
          break;
        }
      }
      BBS_ASSERT_MSG(diag_pos_[static_cast<std::size_t>(c)] >= 0,
                     "normal-equation diagonal entry missing");
    }
  } else {
    sg_.multiply(s_, g_);
    normal_.multiply(gt_, sg_.result());
  }

  // Largest diagonal magnitude for relative regularisation.
  const std::vector<double>& nv = normal_.result().values();
  double max_diag = 0.0;
  for (const Index p : diag_pos_) {
    max_diag = std::max(max_diag, std::abs(nv[static_cast<std::size_t>(p)]));
  }
  const double reg =
      options_.static_regularisation * std::max(1.0, max_diag);

  std::copy(nv.begin(), nv.end(), regularised_.values().begin());
  for (const Index p : diag_pos_) {
    regularised_.values()[static_cast<std::size_t>(p)] += reg;
  }

  if (first) {
    linalg::SparseLdlt::Options fopts;
    fopts.ordering = options_.ordering;
    fopts.allow_indefinite = false;  // normal equations must be SPD
    // A cached analysis, if one was seeded and matches the live pattern,
    // replaces the fill-reducing ordering computation — the dominant
    // symbolic cost. Any valid permutation yields a correct factor, so a
    // stale hint can at worst degrade fill, never correctness; the pattern
    // hash rejects that case up front.
    std::unique_ptr<SymbolicAnalysis> seed = std::move(pending_symbolic_);
    bool seeded = false;
    if (seed != nullptr && cached_permutation_.empty()) {
      if (seed->dim == regularised_.cols() &&
          seed->pattern_hash == pattern_hash_of(regularised_) &&
          is_valid_permutation(seed->permutation, regularised_.cols())) {
        cached_permutation_ = seed->permutation;
        seeded = true;
      } else {
        ++stats_.symbolic_seed_rejects;
      }
    }
    if (cached_permutation_.empty()) {
      cached_permutation_ = linalg::compute_ordering(regularised_,
                                                     options_.ordering);
    }
    fopts.fixed_permutation = &cached_permutation_;
    factor_ = std::make_unique<linalg::SparseLdlt>(regularised_, fopts);
    if (seeded) {
      // The constructor re-derived the elimination tree and factor column
      // pointers from the seeded permutation (cheap, O(nnz)); disagreement
      // with the cached copies means the entry was stale after all.
      if (factor_->etree_parent() == seed->etree_parent &&
          factor_->factor_col_ptr() == seed->factor_col_ptr) {
        ++stats_.symbolic_loads;
      } else {
        ++stats_.symbolic_seed_rejects;
        ++stats_.symbolic_factorisations;
      }
    } else {
      ++stats_.symbolic_factorisations;
    }
  } else {
    factor_->refactor(regularised_);
  }
  ++stats_.factorise_calls;
}

void KktSystem::seed_symbolic(SymbolicAnalysis analysis) {
  if (factor_ != nullptr) return;  // symbolic phase already done
  pending_symbolic_ = std::make_unique<SymbolicAnalysis>(std::move(analysis));
}

std::optional<SymbolicAnalysis> KktSystem::export_symbolic() const {
  if (factor_ == nullptr) return std::nullopt;
  SymbolicAnalysis analysis;
  analysis.dim = regularised_.cols();
  analysis.pattern_hash = pattern_hash_of(regularised_);
  analysis.permutation = cached_permutation_;
  analysis.etree_parent = factor_->etree_parent();
  analysis.factor_col_ptr = factor_->factor_col_ptr();
  return analysis;
}

void KktSystem::solve_once(const NtScaling& scaling, const Vector& p,
                           const Vector& q, Vector& u, Vector& v) const {
  // rhs = p + G' W^{-2} q.
  scaling.apply_w_inv_into(q, work_tmp_m_);
  scaling.apply_w_inv_into(work_tmp_m_, work_w2q_);
  work_rhs_ = p;
  g_.gaxpy_transpose(1.0, work_w2q_, work_rhs_);

  // u = (G' W^{-2} G)^{-1} rhs with refinement against the unregularised
  // normal matrix.
  factor_->solve_refined_into(normal_.result(), work_rhs_,
                              options_.refine_steps, u);

  // v = W^{-2} (G u - q).
  work_gu_.resize(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) work_gu_[i] = -q[i];
  g_.gaxpy(1.0, u, work_gu_);
  scaling.apply_w_inv_into(work_gu_, work_tmp_m_);
  scaling.apply_w_inv_into(work_tmp_m_, v);
}

void KktSystem::solve(const NtScaling& scaling, const Vector& p,
                      const Vector& q, Vector& u, Vector& v) const {
  BBS_REQUIRE(factor_ != nullptr, "KktSystem::solve before factorise");
  BBS_REQUIRE(p.size() == static_cast<std::size_t>(g_.cols()),
              "KktSystem::solve: p size mismatch");
  BBS_REQUIRE(q.size() == static_cast<std::size_t>(g_.rows()),
              "KktSystem::solve: q size mismatch");

  solve_once(scaling, p, q, u, v);

  // Outer iterative refinement on the full 2x2 system
  //     G'v = p ;  G u - W^2 v = q.
  // The normal-equation reduction squares the conditioning of W, so the
  // first solution degrades as the interior-point method approaches the
  // boundary; a couple of refinement rounds at this level restores the
  // direction accuracy cheaply (same factorisation, two mat-vecs per round).
  // The rounds are deliberately unconditional (apart from the
  // at-machine-precision exit): progress-based early exits were tried for
  // the warm-started re-solve path and destabilise cold solves whose
  // refinement converges non-monotonically in the inf-norm.
  for (int round = 0; round < options_.outer_refine_steps; ++round) {
    // r1 = p - G'v ; r2 = q - G u + W^2 v.
    work_r1_ = p;
    g_.gaxpy_transpose(-1.0, v, work_r1_);
    scaling.apply_w_into(v, work_tmp_m_);
    scaling.apply_w_into(work_tmp_m_, work_w2v_);
    work_r2_.resize(q.size());
    for (std::size_t i = 0; i < q.size(); ++i)
      work_r2_[i] = q[i] + work_w2v_[i];
    g_.gaxpy(-1.0, u, work_r2_);

    const double err =
        std::max(linalg::norm_inf(work_r1_), linalg::norm_inf(work_r2_));
    if (err < 1e-14) break;
    solve_once(scaling, work_r1_, work_r2_, work_du_, work_dv_);
    linalg::axpy(1.0, work_du_, u);
    linalg::axpy(1.0, work_dv_, v);
  }
}

Index KktSystem::factor_nnz() const {
  return factor_ ? factor_->factor_nnz() : 0;
}

}  // namespace bbs::solver
