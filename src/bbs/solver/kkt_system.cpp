#include "bbs/solver/kkt_system.hpp"

#include <algorithm>

#include "bbs/common/assert.hpp"

namespace bbs::solver {

KktSystem::KktSystem(const linalg::SparseMatrix& g)
    : KktSystem(g, Options{}) {}

KktSystem::KktSystem(const linalg::SparseMatrix& g, const Options& options)
    : g_(g), gt_(g.transpose()), options_(options) {}

void KktSystem::factorise(const NtScaling& scaling) {
  const linalg::SparseMatrix s = scaling.inverse_squared();
  normal_ = gt_.multiply(s.multiply(g_));

  // Largest diagonal magnitude for relative regularisation.
  double max_diag = 0.0;
  for (Index c = 0; c < normal_.cols(); ++c) {
    for (Index k = normal_.col_ptr()[c]; k < normal_.col_ptr()[c + 1]; ++k) {
      if (normal_.row_ind()[k] == c) {
        max_diag = std::max(max_diag, std::abs(normal_.values()[k]));
      }
    }
  }
  const double reg =
      options_.static_regularisation * std::max(1.0, max_diag);

  linalg::TripletList t(normal_.rows(), normal_.cols());
  for (Index c = 0; c < normal_.cols(); ++c) {
    for (Index k = normal_.col_ptr()[c]; k < normal_.col_ptr()[c + 1]; ++k) {
      t.add(normal_.row_ind()[k], c, normal_.values()[k]);
    }
    t.add(c, c, reg);
  }
  const linalg::SparseMatrix regularised =
      linalg::SparseMatrix::from_triplets(t);

  linalg::SparseLdlt::Options fopts;
  fopts.ordering = options_.ordering;
  fopts.allow_indefinite = false;  // normal equations must be SPD
  if (cached_permutation_.empty()) {
    cached_permutation_ = linalg::compute_ordering(regularised,
                                                   options_.ordering);
  }
  fopts.fixed_permutation = &cached_permutation_;
  factor_ = std::make_unique<linalg::SparseLdlt>(regularised, fopts);
}

void KktSystem::solve_once(const NtScaling& scaling, const Vector& p,
                           const Vector& q, Vector& u, Vector& v) const {
  // rhs = p + G' W^{-2} q.
  const Vector w2q = scaling.apply_w_inv(scaling.apply_w_inv(q));
  Vector rhs = p;
  g_.gaxpy_transpose(1.0, w2q, rhs);

  // u = (G' W^{-2} G)^{-1} rhs with refinement against the unregularised
  // normal matrix.
  u = factor_->solve_refined(normal_, rhs, options_.refine_steps);

  // v = W^{-2} (G u - q).
  Vector gu_minus_q(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) gu_minus_q[i] = -q[i];
  g_.gaxpy(1.0, u, gu_minus_q);
  v = scaling.apply_w_inv(scaling.apply_w_inv(gu_minus_q));
}

void KktSystem::solve(const NtScaling& scaling, const Vector& p,
                      const Vector& q, Vector& u, Vector& v) const {
  BBS_REQUIRE(factor_ != nullptr, "KktSystem::solve before factorise");
  BBS_REQUIRE(p.size() == static_cast<std::size_t>(g_.cols()),
              "KktSystem::solve: p size mismatch");
  BBS_REQUIRE(q.size() == static_cast<std::size_t>(g_.rows()),
              "KktSystem::solve: q size mismatch");

  solve_once(scaling, p, q, u, v);

  // Outer iterative refinement on the full 2x2 system
  //     G'v = p ;  G u - W^2 v = q.
  // The normal-equation reduction squares the conditioning of W, so the
  // first solution degrades as the interior-point method approaches the
  // boundary; a couple of refinement rounds at this level restores the
  // direction accuracy cheaply (same factorisation, two mat-vecs per round).
  Vector r1(p.size());
  Vector r2(q.size());
  Vector du(p.size());
  Vector dv(q.size());
  for (int round = 0; round < options_.outer_refine_steps; ++round) {
    // r1 = p - G'v ; r2 = q - G u + W^2 v.
    r1 = p;
    g_.gaxpy_transpose(-1.0, v, r1);
    const Vector w2v = scaling.apply_w(scaling.apply_w(v));
    for (std::size_t i = 0; i < q.size(); ++i) r2[i] = q[i] + w2v[i];
    g_.gaxpy(-1.0, u, r2);

    const double err = std::max(linalg::norm_inf(r1), linalg::norm_inf(r2));
    if (err < 1e-14) break;
    solve_once(scaling, r1, r2, du, dv);
    linalg::axpy(1.0, du, u);
    linalg::axpy(1.0, dv, v);
  }
}

Index KktSystem::factor_nnz() const {
  return factor_ ? factor_->factor_nnz() : 0;
}

}  // namespace bbs::solver
