// Problem container for cone programs in standard inequality form:
//
//     minimise    c' x
//     subject to  G x + s = h,   s in K,
//
// with K a composite cone (nonnegative orthant × second-order cones); see
// ConeSpec. The dual is
//
//     maximise   -h' z
//     subject to  G' z + c = 0,  z in K.
//
// A builder interface assembles G row by row so that the Algorithm-1
// translator in bbs/core can emit constraints in the paper's order.
#pragma once

#include <string>
#include <vector>

#include "bbs/linalg/sparse_matrix.hpp"
#include "bbs/solver/cone.hpp"

namespace bbs::solver {

/// Conic problem (validated on construction). Structurally immutable: the
/// sparsity pattern of G and the cone are fixed for the problem's lifetime.
/// Numeric values of h and existing G entries may be updated in place via
/// the hooks below — the pattern-preserving re-solve path that lets a
/// persistent solver workspace keep its symbolic factorisation valid across
/// parameter changes (see core::SolverSession).
class ConicProblem {
 public:
  ConicProblem(Vector c, linalg::SparseMatrix g, Vector h, ConeSpec cone);

  Index num_vars() const { return static_cast<Index>(c_.size()); }
  Index num_rows() const { return g_.rows(); }

  const Vector& c() const { return c_; }
  const linalg::SparseMatrix& g() const { return g_; }
  const Vector& h() const { return h_; }
  const ConeSpec& cone() const { return cone_; }

  /// In-place update of one right-hand-side entry.
  void set_h(Index row, double value);

  /// In-place update of one stored G entry, addressed by its CSC value slot
  /// (as returned by g_value_slot). Entries cannot be added or removed.
  void set_g_value(Index slot, double value);

  /// CSC value slot of the stored entry (row, col) of G, or -1 when the
  /// entry is structurally zero.
  Index g_value_slot(Index row, Index col) const;

  double objective(const Vector& x) const;

  /// max_i |h_i - (Gx)_i - s_i| — primal equation residual.
  double primal_residual(const Vector& x, const Vector& s) const;

  /// max_i |(G'z + c)_i| — dual equation residual.
  double dual_residual(const Vector& z) const;

 private:
  Vector c_;
  linalg::SparseMatrix g_;
  Vector h_;
  ConeSpec cone_;
};

/// Incremental builder: declare variables, then append rows. Rows must be
/// appended cone-block by cone-block: all nonnegative-orthant rows first,
/// then each SOC block contiguously (the builder enforces this by
/// construction: LP rows via add_inequality, SOC blocks via begin_soc/...).
class ConicProblemBuilder {
 public:
  explicit ConicProblemBuilder(Index num_vars);

  /// Sets the objective coefficient of variable `var`.
  void set_objective(Index var, double coeff);

  /// Appends the LP-cone row  sum_j coeffs_j x_j <= rhs
  /// (i.e. slack s = rhs - a'x >= 0). Must precede all SOC blocks.
  /// Returns the row index.
  Index add_inequality(const std::vector<std::pair<Index, double>>& terms,
                       double rhs);

  /// Appends one SOC block of dimension `dim`. Rows of the block are then
  /// filled with soc_row(); the slack vector (rhs - Gx) over the block must
  /// lie in SOC(dim).
  void begin_soc(Index dim);

  /// Adds one row of the currently open SOC block:
  /// s_row = rhs - sum_j coeffs_j x_j.
  void soc_row(const std::vector<std::pair<Index, double>>& terms, double rhs);

  /// Finishes the problem; throws ModelError on structural errors
  /// (unfinished SOC block, etc.).
  ConicProblem build();

  Index num_rows() const { return next_row_; }

 private:
  Index num_vars_;
  Vector c_;
  std::vector<double> h_;
  Index next_row_ = 0;
  Index nonneg_rows_ = 0;
  std::vector<Index> soc_dims_;
  Index open_soc_remaining_ = 0;
  std::vector<Index> trip_rows_;
  std::vector<Index> trip_cols_;
  std::vector<double> trip_vals_;
};

}  // namespace bbs::solver
