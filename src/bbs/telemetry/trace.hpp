// Per-request tracing: the causal "why was this request slow" layer on top
// of the aggregate histograms in service_telemetry.
//
// A traced request (api::RequestOptions::trace) owns one telemetry::Trace —
// an append-only list of timestamped events stamped at every pipeline hop:
// accept, the quota decision, enqueue (routed worker + queue depth at entry),
// dequeue/steal/shed, the solve (engine pool hit/miss provenance), optional
// per-IPM-iteration introspection (Trace implements solver::IpmTraceSink),
// and the outbox handoff/write. Events record milliseconds relative to trace
// creation, so a trace is self-contained and clock-portable.
//
// Completed traces land in a TraceRing — a lock-sharded ring buffer served
// by the daemon's {"kind":"trace"} control line — and, when they exceed a
// slow threshold or end in error, are additionally appended as JSONL to a
// TraceLog file by a write-behind thread (post-mortem "slowest requests
// last hour" without a scraper).
//
// Cost model: everything here is opt-in per request. An untraced request
// carries a null shared_ptr and no code path below allocates or locks.
// Traced requests pay one small allocation per event under a per-trace
// mutex (hops are sequential but cross-thread, so the mutex is uncontended
// in practice).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bbs/io/json.hpp"
#include "bbs/solver/ipm_solver.hpp"

namespace bbs::telemetry {

/// One hop of a trace. `dur_ms < 0` marks an instant event; `>= 0` a span
/// that *ended* at `t_ms + dur_ms`. Numeric attributes ride in `attrs`
/// (serialised as JSON number fields), a free-form label in `detail`.
struct TraceEvent {
  std::string name;
  double t_ms = 0.0;
  double dur_ms = -1.0;
  std::string detail;
  std::vector<std::pair<std::string, double>> attrs;
};

class Trace final : public solver::IpmTraceSink {
 public:
  Trace(std::string id, std::string kind);

  /// Process-unique id: a monotone counter mixed with a per-process seed,
  /// rendered as 16 hex digits.
  static std::string next_id();

  const std::string& id() const { return id_; }
  const std::string& kind() const { return kind_; }

  /// Milliseconds since the trace was created.
  double elapsed_ms() const;

  void add_event(std::string name);
  void add_event(std::string name, std::string detail);
  /// Full-control variant; a negative t_ms is auto-stamped with now.
  void add_event(TraceEvent event);
  /// Records a span of `dur_ms` that ends now (t_ms = now - dur_ms).
  void add_span(std::string name, double dur_ms,
                std::vector<std::pair<std::string, double>> attrs = {});

  /// Terminal: stamps wall_ms and the final status ("ok", "infeasible",
  /// "error", ...). Idempotent — the first close wins.
  void close(std::string status, std::string error_code = std::string());

  bool closed() const;
  bool error() const;
  double wall_ms() const;
  std::string status() const;

  /// solver::IpmTraceSink — per-iteration and recovery-ladder events from
  /// inside the IPM. Iteration events are capped (kMaxIpmEvents) so a
  /// pathological solve cannot balloon a trace.
  void ipm_iteration(int iteration, double mu, double primal_residual,
                     double dual_residual, double step) override;
  void ipm_ladder_rung(int attempt, double static_regularisation) override;

  io::JsonValue to_json_value() const;

  static constexpr std::uint32_t kMaxIpmEvents = 512;

 private:
  const std::string id_;
  const std::string kind_;
  const std::chrono::steady_clock::time_point start_;

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::string status_;
  std::string error_code_;
  bool closed_ = false;
  double wall_ms_ = 0.0;
  std::uint32_t ipm_events_ = 0;
  std::uint32_t ipm_events_dropped_ = 0;
};

/// Filter for TraceRing::collect. Empty string / zero fields match
/// everything; `limit` bounds the (newest-first) result.
struct TraceFilter {
  std::string id;
  std::string kind;
  double min_duration_ms = 0.0;
  bool errors_only = false;
  std::size_t limit = 32;
};

/// Lock-sharded ring buffer of completed traces. push() touches one shard;
/// collect() walks all shards and returns matches newest-first.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 256, std::size_t shards = 4);

  void push(std::shared_ptr<const Trace> trace);
  std::vector<std::shared_ptr<const Trace>> collect(
      const TraceFilter& filter) const;

  std::uint64_t recorded() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::vector<std::pair<std::uint64_t, std::shared_ptr<const Trace>>> ring;
    std::size_t next = 0;
  };

  std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex seq_mutex_;
  std::uint64_t seq_ = 0;
};

/// Write-behind JSONL logger for slow/error traces. offer() enqueues a
/// trace that qualifies (wall_ms >= slow_ms when slow_ms > 0, or any trace
/// that ended in error) and returns immediately; a background thread
/// appends one compact JSON document per line. flush() blocks until the
/// file is caught up; the destructor drains.
class TraceLog {
 public:
  explicit TraceLog(std::string path, double slow_ms = 0.0);
  ~TraceLog();

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// Enqueues the trace if it qualifies; returns whether it did.
  bool offer(const std::shared_ptr<const Trace>& trace);
  void flush();

  struct Stats {
    std::uint64_t logged = 0;
    std::uint64_t write_errors = 0;
  };
  Stats stats() const;

  const std::string& path() const { return path_; }
  double slow_ms() const { return slow_ms_; }

 private:
  void writer_loop();

  const std::string path_;
  const double slow_ms_;

  mutable std::mutex mutex_;
  std::condition_variable wake_writer_;
  std::condition_variable write_done_;
  std::deque<std::shared_ptr<const Trace>> queue_;
  bool writing_ = false;
  bool stopping_ = false;
  Stats stats_;
  std::thread writer_;
};

}  // namespace bbs::telemetry
