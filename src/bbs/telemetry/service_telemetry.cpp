#include "bbs/telemetry/service_telemetry.hpp"

#include <algorithm>

#include "bbs/common/assert.hpp"

namespace bbs::telemetry {

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kSolve: return "solve";
    case RequestKind::kSweep: return "sweep";
    case RequestKind::kMinPeriod: return "min_period";
    case RequestKind::kTwoPhase: return "two_phase";
    case RequestKind::kLatency: return "latency";
    case RequestKind::kOther: return "other";
  }
  return "other";
}

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kQueue: return "queue";
    case Stage::kSolve: return "solve";
    case Stage::kWrite: return "write";
  }
  return "queue";
}

RequestKind request_kind_from_string(const std::string& kind) {
  if (kind == "solve") return RequestKind::kSolve;
  if (kind == "sweep") return RequestKind::kSweep;
  if (kind == "min_period") return RequestKind::kMinPeriod;
  if (kind == "two_phase") return RequestKind::kTwoPhase;
  if (kind == "latency") return RequestKind::kLatency;
  return RequestKind::kOther;
}

ServiceTelemetry::ServiceTelemetry(std::size_t max_structures)
    : max_structures_(std::max<std::size_t>(1, max_structures)),
      histograms_(static_cast<std::size_t>(kNumRequestKinds * kNumStages)) {}

LatencyHistogram& ServiceTelemetry::histogram(RequestKind kind, Stage stage) {
  const auto index = static_cast<std::size_t>(
      static_cast<int>(kind) * kNumStages + static_cast<int>(stage));
  BBS_ASSERT_MSG(index < histograms_.size(), "histogram index out of range");
  return histograms_[index];
}

const LatencyHistogram& ServiceTelemetry::histogram(RequestKind kind,
                                                    Stage stage) const {
  return const_cast<ServiceTelemetry*>(this)->histogram(kind, stage);
}

void ServiceTelemetry::record_structure(
    std::uint64_t key_hash, const StructureObservation& observation) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = table_.find(key_hash);
  if (it == table_.end()) {
    if (table_.size() >= max_structures_) {
      // Evict the least-recently-seen row to stay bounded.
      auto victim = table_.begin();
      for (auto cand = table_.begin(); cand != table_.end(); ++cand) {
        if (cand->second.last_seen_seq < victim->second.last_seen_seq) {
          victim = cand;
        }
      }
      table_.erase(victim);
      ++evictions_;
    }
    StructureRow row;
    row.key_hash = key_hash;
    it = table_.emplace(key_hash, row).first;
  }
  StructureRow& row = it->second;
  ++row.requests;
  if (observation.pool_hit) {
    ++row.pool_hits;
  } else {
    ++row.pool_misses;
  }
  row.solves += observation.solves;
  row.ipm_iterations += observation.ipm_iterations;
  row.warm_started_solves += observation.warm_started_solves;
  row.recovered_solves += observation.recovered_solves;
  row.last_seen_seq = ++sequence_;
}

std::vector<StructureRow> ServiceTelemetry::structure_rows() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<StructureRow> rows;
  rows.reserve(table_.size());
  for (const auto& [hash, row] : table_) rows.push_back(row);
  std::sort(rows.begin(), rows.end(),
            [](const StructureRow& a, const StructureRow& b) {
              if (a.solves != b.solves) return a.solves > b.solves;
              return a.key_hash < b.key_hash;
            });
  return rows;
}

std::uint64_t ServiceTelemetry::structure_evictions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace bbs::telemetry
