#include "bbs/telemetry/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bbs::telemetry {

int LatencyHistogram::bucket_index(double ms) {
  if (!(ms > 0.0)) return 0;  // non-finite and negative values underflow
  const double us = ms * 1000.0;
  if (us < 1.0) return 0;
  int exp = 0;
  const double mantissa = std::frexp(us, &exp);  // us = mantissa * 2^exp
  (void)mantissa;
  const int octave = exp - 1;  // us in [2^octave, 2^(octave+1))
  if (octave >= kOctaves) return kBuckets - 1;
  const double base = std::ldexp(1.0, octave);
  int sub = static_cast<int>((us / base - 1.0) * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return 1 + octave * kSubBuckets + sub;
}

double LatencyHistogram::bucket_upper_ms(int bucket) {
  if (bucket <= 0) return 1e-3;  // underflow: everything at or below 1 µs
  if (bucket >= kBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  const int octave = (bucket - 1) / kSubBuckets;
  const int sub = (bucket - 1) % kSubBuckets;
  const double upper_us =
      std::ldexp(1.0, octave) *
      (1.0 + static_cast<double>(sub + 1) / kSubBuckets);
  return upper_us * 1e-3;
}

void LatencyHistogram::record(double ms) {
  const double clamped = std::isfinite(ms) && ms > 0.0 ? ms : 0.0;
  const auto ns = static_cast<std::uint64_t>(clamped * 1e6);
  counts_[static_cast<std::size_t>(bucket_index(clamped))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen && !max_ns_.compare_exchange_weak(
                          seen, ns, std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_ms =
      static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-6;
  snap.max_ms =
      static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-6;
  for (int b = 0; b < kBuckets; ++b) {
    snap.buckets[static_cast<std::size_t>(b)] =
        counts_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
  }
  return snap;
}

void LatencyHistogram::Snapshot::merge(const Snapshot& other) {
  count += other.count;
  sum_ms += other.sum_ms;
  max_ms = std::max(max_ms, other.max_ms);
  for (int b = 0; b < kBuckets; ++b) {
    buckets[static_cast<std::size_t>(b)] +=
        other.buckets[static_cast<std::size_t>(b)];
  }
}

double LatencyHistogram::Snapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(clamped * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cumulative += buckets[static_cast<std::size_t>(b)];
    if (cumulative >= rank) {
      // The overflow bucket has no finite upper edge; the recorded maximum
      // is the tightest honest bound there.
      if (b == kBuckets - 1) return max_ms;
      return std::min(bucket_upper_ms(b), max_ms);
    }
  }
  return max_ms;
}

}  // namespace bbs::telemetry
