// Service-wide telemetry: a fixed matrix of latency histograms indexed by
// (request kind, pipeline stage) and a bounded per-structure statistics
// table keyed by structure hash.
//
// The histogram matrix is allocated up front and recording into it is
// wait-free (see histogram.hpp). The structure table takes a short mutex on
// its record path — it is touched once per request, after the solve, where
// a mutex is noise.
//
// Layering: telemetry sits above io/ and solver/ only; the api and service
// layers depend on it, never the reverse.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bbs/telemetry/histogram.hpp"

namespace bbs::telemetry {

/// Request kinds tracked separately. Mirrors the api request payloads plus
/// a catch-all for control lines and future kinds.
enum class RequestKind {
  kSolve = 0,
  kSweep,
  kMinPeriod,
  kTwoPhase,
  kLatency,
  kOther,
};
inline constexpr int kNumRequestKinds = 6;

/// Pipeline stages a daemon request passes through.
enum class Stage {
  kQueue = 0,  // submit to engine start (includes injected worker delay)
  kSolve,      // Engine::run wall time
  kWrite,      // response handoff to the transport sink
};
inline constexpr int kNumStages = 3;

const char* to_string(RequestKind kind);
const char* to_string(Stage stage);
RequestKind request_kind_from_string(const std::string& kind);

/// One request's worth of per-structure observations.
struct StructureObservation {
  bool pool_hit = false;
  std::uint64_t solves = 0;
  std::uint64_t ipm_iterations = 0;
  std::uint64_t warm_started_solves = 0;
  std::uint64_t recovered_solves = 0;
};

/// Accumulated statistics for one structure hash.
struct StructureRow {
  std::uint64_t key_hash = 0;
  std::uint64_t requests = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t solves = 0;
  std::uint64_t ipm_iterations = 0;
  std::uint64_t warm_started_solves = 0;
  std::uint64_t recovered_solves = 0;
  /// Monotone recency stamp (a global sequence number, not wall clock —
  /// deterministic and comparison-only). Higher is more recent.
  std::uint64_t last_seen_seq = 0;
};

class ServiceTelemetry {
 public:
  explicit ServiceTelemetry(std::size_t max_structures = 256);

  LatencyHistogram& histogram(RequestKind kind, Stage stage);
  const LatencyHistogram& histogram(RequestKind kind, Stage stage) const;

  /// Records one request's outcome against its structure hash. Bounded:
  /// inserting beyond max_structures evicts the least-recently-seen row.
  void record_structure(std::uint64_t key_hash,
                        const StructureObservation& observation);

  /// Snapshot of the structure table, hottest (most solves) first.
  std::vector<StructureRow> structure_rows() const;

  std::size_t max_structures() const { return max_structures_; }
  std::uint64_t structure_evictions() const;

 private:
  std::size_t max_structures_;
  std::vector<LatencyHistogram> histograms_;  // kind-major, stage-minor
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, StructureRow> table_;
  std::uint64_t sequence_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace bbs::telemetry
