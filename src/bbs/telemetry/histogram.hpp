// Lock-cheap log-bucketed latency histogram.
//
// The bucket layout is fixed at compile time: 4 linear sub-buckets per
// power-of-two octave over microseconds, spanning 1 µs to ~64 s, plus an
// underflow and an overflow bucket. A recorded value lands in the bucket
// whose range contains it with relative width at most 25% of the bucket's
// lower edge, so percentile estimates (reported as the bucket's upper edge)
// over-estimate by at most 25% and never under-estimate.
//
// record() is wait-free: one relaxed fetch_add per counter plus a CAS loop
// for the running maximum. snapshot() reads the counters relaxed — snapshots
// are not a linearisation point, they are monotone approximations, which is
// exactly what a metrics endpoint needs. Snapshots from histograms with the
// same layout merge by bucket-wise addition (per-worker histograms roll up
// to a service-wide view).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace bbs::telemetry {

class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 4;   // linear sub-buckets per octave
  static constexpr int kOctaves = 26;     // 2^0 .. 2^26 microseconds (~67 s)
  static constexpr int kBuckets = 2 + kOctaves * kSubBuckets;

  /// A mergeable, immutable copy of the counters.
  struct Snapshot {
    std::uint64_t count = 0;
    double sum_ms = 0.0;
    double max_ms = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};

    void merge(const Snapshot& other);

    /// Estimated value at quantile `p` in [0, 1]: the upper edge of the
    /// bucket containing the ceil(p * count)-th sample (never an
    /// under-estimate). Returns 0 on an empty snapshot and the exact
    /// recorded maximum when the quantile lands in the overflow bucket.
    double percentile(double p) const;

    double mean_ms() const { return count == 0 ? 0.0 : sum_ms / count; }
  };

  void record(double ms);
  Snapshot snapshot() const;

  /// Bucket index a value lands in (exposed for tests).
  static int bucket_index(double ms);
  /// Upper edge of a bucket in milliseconds (infinity for the overflow
  /// bucket; exposed for tests).
  static double bucket_upper_ms(int bucket);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

}  // namespace bbs::telemetry
