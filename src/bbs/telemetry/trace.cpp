#include "bbs/telemetry/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>

namespace bbs::telemetry {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// splitmix64 finaliser: turns a sequential counter into well-spread ids.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

Trace::Trace(std::string id, std::string kind)
    : id_(std::move(id)),
      kind_(std::move(kind)),
      start_(std::chrono::steady_clock::now()) {
  events_.reserve(8);
}

std::string Trace::next_id() {
  // The seed folds in the process start time so ids differ across daemon
  // restarts (a restarted daemon answering {"kind":"trace"} must not alias
  // ids from a prior run's slow log).
  static const std::uint64_t kSeed = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t value =
      mix64(kSeed ^ counter.fetch_add(1, std::memory_order_relaxed));
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016" PRIx64, value);
  return std::string(buffer);
}

double Trace::elapsed_ms() const {
  return ms_between(start_, std::chrono::steady_clock::now());
}

void Trace::add_event(std::string name) {
  TraceEvent event;
  event.name = std::move(name);
  event.t_ms = -1.0;
  add_event(std::move(event));
}

void Trace::add_event(std::string name, std::string detail) {
  TraceEvent event;
  event.name = std::move(name);
  event.detail = std::move(detail);
  event.t_ms = -1.0;
  add_event(std::move(event));
}

void Trace::add_event(TraceEvent event) {
  if (event.t_ms < 0.0) event.t_ms = elapsed_ms();
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void Trace::add_span(std::string name, double dur_ms,
                     std::vector<std::pair<std::string, double>> attrs) {
  dur_ms = std::max(dur_ms, 0.0);
  TraceEvent event;
  event.name = std::move(name);
  event.dur_ms = dur_ms;
  event.t_ms = std::max(elapsed_ms() - dur_ms, 0.0);
  event.attrs = std::move(attrs);
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void Trace::close(std::string status, std::string error_code) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  closed_ = true;
  status_ = std::move(status);
  error_code_ = std::move(error_code);
  wall_ms_ = ms_between(start_, std::chrono::steady_clock::now());
}

bool Trace::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

bool Trace::error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_ == "error";
}

double Trace::wall_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_ ? wall_ms_ : ms_between(start_, std::chrono::steady_clock::now());
}

std::string Trace::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

void Trace::ipm_iteration(int iteration, double mu, double primal_residual,
                          double dual_residual, double step) {
  const double now = elapsed_ms();
  std::lock_guard<std::mutex> lock(mutex_);
  if (ipm_events_ >= kMaxIpmEvents) {
    ++ipm_events_dropped_;
    return;
  }
  ++ipm_events_;
  TraceEvent event;
  event.name = "ipm_iteration";
  event.t_ms = now;
  event.attrs = {{"iteration", static_cast<double>(iteration)},
                 {"mu", mu},
                 {"pres", primal_residual},
                 {"dres", dual_residual},
                 {"step", step}};
  events_.push_back(std::move(event));
}

void Trace::ipm_ladder_rung(int attempt, double static_regularisation) {
  const double now = elapsed_ms();
  std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent event;
  event.name = "ipm_ladder_rung";
  event.t_ms = now;
  event.attrs = {{"attempt", static_cast<double>(attempt)},
                 {"static_regularisation", static_regularisation}};
  events_.push_back(std::move(event));
}

io::JsonValue Trace::to_json_value() const {
  std::lock_guard<std::mutex> lock(mutex_);
  io::JsonObject o;
  o["id"] = id_;
  o["kind"] = kind_;
  o["status"] = closed_ ? status_ : std::string("open");
  if (!error_code_.empty()) o["error_code"] = error_code_;
  o["wall_ms"] =
      closed_ ? wall_ms_ : ms_between(start_, std::chrono::steady_clock::now());
  if (ipm_events_dropped_ > 0) {
    o["ipm_events_dropped"] = static_cast<long long>(ipm_events_dropped_);
  }
  io::JsonArray events;
  events.reserve(events_.size());
  for (const TraceEvent& event : events_) {
    io::JsonObject e;
    e["name"] = event.name;
    e["t_ms"] = event.t_ms;
    if (event.dur_ms >= 0.0) e["dur_ms"] = event.dur_ms;
    if (!event.detail.empty()) e["detail"] = event.detail;
    for (const auto& [key, value] : event.attrs) e[key] = value;
    events.emplace_back(std::move(e));
  }
  o["events"] = io::JsonValue(std::move(events));
  return io::JsonValue(std::move(o));
}

// ---------------------------------------------------------------------------
// TraceRing
// ---------------------------------------------------------------------------

TraceRing::TraceRing(std::size_t capacity, std::size_t shards)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  shards = std::max<std::size_t>(1, std::min(shards, capacity_));
  shards_.reserve(shards);
  const std::size_t per_shard = (capacity_ + shards - 1) / shards;
  for (std::size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->ring.reserve(per_shard);
    shards_.push_back(std::move(shard));
  }
}

void TraceRing::push(std::shared_ptr<const Trace> trace) {
  if (trace == nullptr) return;
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(seq_mutex_);
    seq = seq_++;
  }
  Shard& shard = *shards_[seq % shards_.size()];
  const std::size_t per_shard =
      (capacity_ + shards_.size() - 1) / shards_.size();
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.ring.size() < per_shard) {
    shard.ring.emplace_back(seq, std::move(trace));
  } else {
    shard.ring[shard.next] = {seq, std::move(trace)};
    shard.next = (shard.next + 1) % per_shard;
  }
}

std::vector<std::shared_ptr<const Trace>> TraceRing::collect(
    const TraceFilter& filter) const {
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const Trace>>> matches;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [seq, trace] : shard->ring) {
      if (trace == nullptr) continue;
      if (!filter.id.empty() && trace->id() != filter.id) continue;
      if (!filter.kind.empty() && trace->kind() != filter.kind) continue;
      if (filter.errors_only && !trace->error()) continue;
      if (filter.min_duration_ms > 0.0 &&
          trace->wall_ms() < filter.min_duration_ms) {
        continue;
      }
      matches.emplace_back(seq, trace);
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const std::size_t limit =
      filter.limit == 0 ? matches.size() : filter.limit;
  if (matches.size() > limit) matches.resize(limit);
  std::vector<std::shared_ptr<const Trace>> result;
  result.reserve(matches.size());
  for (auto& [seq, trace] : matches) result.push_back(std::move(trace));
  return result;
}

std::uint64_t TraceRing::recorded() const {
  std::lock_guard<std::mutex> lock(seq_mutex_);
  return seq_;
}

// ---------------------------------------------------------------------------
// TraceLog
// ---------------------------------------------------------------------------

TraceLog::TraceLog(std::string path, double slow_ms)
    : path_(std::move(path)), slow_ms_(slow_ms) {
  writer_ = std::thread([this] { writer_loop(); });
}

TraceLog::~TraceLog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_writer_.notify_all();
  if (writer_.joinable()) writer_.join();
}

bool TraceLog::offer(const std::shared_ptr<const Trace>& trace) {
  if (trace == nullptr) return false;
  const bool slow = slow_ms_ > 0.0 && trace->wall_ms() >= slow_ms_;
  if (!slow && !trace->error()) return false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(trace);
  }
  wake_writer_.notify_one();
  return true;
}

void TraceLog::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  write_done_.wait(lock, [this] { return queue_.empty() && !writing_; });
}

TraceLog::Stats TraceLog::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void TraceLog::writer_loop() {
  for (;;) {
    std::shared_ptr<const Trace> trace;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_writer_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      trace = std::move(queue_.front());
      queue_.pop_front();
      writing_ = true;
    }

    const std::string line =
        io::write_json_compact(trace->to_json_value()) + "\n";
    bool ok = false;
    if (std::FILE* file = std::fopen(path_.c_str(), "ae")) {
      ok = std::fwrite(line.data(), 1, line.size(), file) == line.size();
      if (std::fclose(file) != 0) ok = false;
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      writing_ = false;
      if (ok) {
        ++stats_.logged;
      } else {
        ++stats_.write_errors;
      }
    }
    write_done_.notify_all();
  }
}

}  // namespace bbs::telemetry
