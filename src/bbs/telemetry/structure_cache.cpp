#include "bbs/telemetry/structure_cache.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "bbs/common/hash.hpp"

namespace bbs::telemetry {
namespace {

constexpr const char* kMagic = "BBSCACHE";
constexpr const char* kVersion = "v1";

std::string hex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, value);
  return std::string(buffer);
}

bool parse_hex64(const std::string& text, std::uint64_t* value) {
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t result = 0;
  for (const char c : text) {
    result <<= 4;
    if (c >= '0' && c <= '9') {
      result |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      result |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *value = result;
  return true;
}

io::JsonValue index_array_to_json(const std::vector<linalg::Index>& values) {
  io::JsonArray array;
  array.reserve(values.size());
  for (const linalg::Index v : values) {
    array.emplace_back(static_cast<long long>(v));
  }
  return io::JsonValue(std::move(array));
}

bool index_array_from_json(const io::JsonValue& value,
                           std::vector<linalg::Index>* out) {
  if (!value.is_array()) return false;
  out->clear();
  out->reserve(value.as_array().size());
  for (const io::JsonValue& element : value.as_array()) {
    if (!element.is_number()) return false;
    out->push_back(static_cast<linalg::Index>(element.as_number()));
  }
  return true;
}

std::string entry_to_payload(const CacheEntry& entry) {
  io::JsonObject symbolic;
  symbolic["dim"] = static_cast<long long>(entry.symbolic.dim);
  // 64-bit hashes exceed the exact range of JSON doubles: hex string.
  symbolic["pattern_hash"] = hex64(entry.symbolic.pattern_hash);
  symbolic["permutation"] = index_array_to_json(entry.symbolic.permutation);
  symbolic["etree_parent"] =
      index_array_to_json(entry.symbolic.etree_parent);
  symbolic["factor_col_ptr"] =
      index_array_to_json(entry.symbolic.factor_col_ptr);

  io::JsonObject payload;
  payload["key"] = entry.key;
  payload["symbolic"] = io::JsonValue(std::move(symbolic));
  payload["session"] = entry.session;
  return io::write_json_compact(io::JsonValue(std::move(payload)));
}

bool entry_from_payload(const std::string& payload, CacheEntry* entry,
                        std::string* error) {
  io::JsonValue value;
  try {
    value = io::parse_json(payload);
  } catch (const std::exception& e) {
    *error = std::string("payload parse: ") + e.what();
    return false;
  }
  if (!value.is_object()) {
    *error = "payload is not an object";
    return false;
  }
  const io::JsonObject& object = value.as_object();
  if (!object.contains("key") || !object.at("key").is_string() ||
      !object.contains("symbolic") || !object.at("symbolic").is_object() ||
      !object.contains("session")) {
    *error = "payload missing key/symbolic/session";
    return false;
  }
  entry->key = object.at("key").as_string();
  entry->session = object.at("session");

  const io::JsonObject& symbolic = object.at("symbolic").as_object();
  if (!symbolic.contains("dim") || !symbolic.at("dim").is_number() ||
      !symbolic.contains("pattern_hash") ||
      !symbolic.at("pattern_hash").is_string()) {
    *error = "symbolic block malformed";
    return false;
  }
  entry->symbolic.dim =
      static_cast<linalg::Index>(symbolic.at("dim").as_number());
  if (!parse_hex64(symbolic.at("pattern_hash").as_string(),
                   &entry->symbolic.pattern_hash)) {
    *error = "pattern_hash malformed";
    return false;
  }
  if (!symbolic.contains("permutation") ||
      !index_array_from_json(symbolic.at("permutation"),
                             &entry->symbolic.permutation) ||
      !symbolic.contains("etree_parent") ||
      !index_array_from_json(symbolic.at("etree_parent"),
                             &entry->symbolic.etree_parent) ||
      !symbolic.contains("factor_col_ptr") ||
      !index_array_from_json(symbolic.at("factor_col_ptr"),
                             &entry->symbolic.factor_col_ptr)) {
    *error = "symbolic arrays malformed";
    return false;
  }
  return true;
}

}  // namespace

std::string StructureCache::file_name_for_key(const std::string& key) {
  return hex64(common::fnv1a_64(key)) + ".bbsc";
}

StructureCache::StructureCache(std::string directory, std::size_t max_entries,
                               std::uint64_t max_bytes)
    : directory_(std::move(directory)),
      max_entries_(std::max<std::size_t>(1, max_entries)),
      max_bytes_(max_bytes) {
  writer_ = std::thread([this] { writer_loop(); });
}

StructureCache::~StructureCache() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_writer_.notify_all();
  if (writer_.joinable()) writer_.join();
}

bool StructureCache::load_file(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "unreadable";
    return false;
  }
  std::string header;
  if (!std::getline(in, header)) {
    *error = "missing header";
    return false;
  }
  std::istringstream header_stream(header);
  std::string magic, version, checksum_hex;
  long long length = -1;
  if (!(header_stream >> magic >> version >> checksum_hex >> length) ||
      magic != kMagic) {
    *error = "malformed header";
    return false;
  }
  if (version != kVersion) {
    *error = "version mismatch (" + version + ")";
    return false;
  }
  if (length < 0 || length > (1LL << 30)) {
    *error = "implausible payload length";
    return false;
  }
  std::string payload(static_cast<std::size_t>(length), '\0');
  in.read(payload.data(), length);
  if (in.gcount() != length) {
    *error = "truncated payload";
    return false;
  }
  std::uint64_t expected = 0;
  if (!parse_hex64(checksum_hex, &expected) ||
      common::fnv1a_64(payload) != expected) {
    *error = "checksum mismatch";
    return false;
  }
  CacheEntry entry;
  if (!entry_from_payload(payload, &entry, error)) return false;
  if (std::filesystem::path(path).filename().string() !=
      file_name_for_key(entry.key)) {
    *error = "key hash does not match file name";
    return false;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() >= max_entries_ && !entries_.contains(entry.key)) {
    *error = "cache full";
    return false;
  }
  entries_[entry.key] = std::move(entry);
  return true;
}

std::size_t StructureCache::gc_disk() {
  namespace fs = std::filesystem;
  struct File {
    fs::path path;
    fs::file_time_type mtime;
    std::uintmax_t size = 0;
  };
  std::error_code ec;
  std::vector<File> files;
  std::uintmax_t total_bytes = 0;
  for (const auto& dirent : fs::directory_iterator(directory_, ec)) {
    if (!dirent.is_regular_file()) continue;
    if (dirent.path().extension() != ".bbsc") continue;
    std::error_code file_ec;
    File file;
    file.path = dirent.path();
    file.mtime = dirent.last_write_time(file_ec);
    if (file_ec) continue;
    file.size = dirent.file_size(file_ec);
    if (file_ec) continue;
    total_bytes += file.size;
    files.push_back(std::move(file));
  }
  const auto over_budget = [&](std::size_t remaining) {
    return remaining > max_entries_ ||
           (max_bytes_ > 0 && total_bytes > max_bytes_);
  };
  if (!over_budget(files.size())) return 0;
  std::sort(files.begin(), files.end(),
            [](const File& a, const File& b) { return a.mtime < b.mtime; });
  std::size_t evicted = 0;
  std::size_t index = 0;
  while (index < files.size() && over_budget(files.size() - index)) {
    std::error_code remove_ec;
    if (fs::remove(files[index].path, remove_ec)) ++evicted;
    total_bytes -= files[index].size;
    ++index;
  }
  if (evicted > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.evictions += evicted;
  }
  return evicted;
}

std::size_t StructureCache::load() {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  // Enforce the disk budget before loading, so a directory that outgrew
  // its limits while this daemon was down sheds its coldest entries first
  // and the scan below only sees survivors.
  gc_disk();
  std::size_t loaded = 0;
  std::uint64_t errors = 0;
  for (const auto& dirent :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (!dirent.is_regular_file()) continue;
    if (dirent.path().extension() != ".bbsc") continue;
    std::string error;
    if (load_file(dirent.path().string(), &error)) {
      ++loaded;
    } else {
      ++errors;
      std::fprintf(stderr, "structure_cache: skipping %s: %s\n",
                   dirent.path().string().c_str(), error.c_str());
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.entries_loaded += loaded;
  stats_.load_errors += errors;
  return loaded;
}

bool StructureCache::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.contains(key);
}

std::optional<CacheEntry> StructureCache::lookup(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.lookup_misses;
    return std::nullopt;
  }
  ++stats_.lookup_hits;
  return it->second;
}

void StructureCache::store(CacheEntry entry) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.size() >= max_entries_ && !entries_.contains(entry.key)) {
      ++stats_.save_errors;
      return;
    }
    entries_[entry.key] = entry;
    write_queue_.push_back(std::move(entry));
  }
  wake_writer_.notify_one();
}

void StructureCache::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  write_done_.wait(lock,
                   [this] { return write_queue_.empty() && !writing_; });
}

std::vector<CacheEntry> StructureCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CacheEntry> copy;
  copy.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) copy.push_back(entry);
  return copy;
}

void StructureCache::note_prewarm_error() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.prewarm_errors;
}

StructureCacheStats StructureCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t StructureCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void StructureCache::writer_loop() {
  for (;;) {
    CacheEntry entry;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_writer_.wait(lock, [this] {
        return stopping_ || !write_queue_.empty();
      });
      if (write_queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      entry = std::move(write_queue_.front());
      write_queue_.pop_front();
      writing_ = true;
    }

    const std::string payload = entry_to_payload(entry);
    const std::string name = file_name_for_key(entry.key);
    const std::filesystem::path target =
        std::filesystem::path(directory_) / name;
    const std::filesystem::path temp =
        std::filesystem::path(directory_) / (name + ".tmp");
    bool ok = false;
    {
      std::error_code ec;
      std::filesystem::create_directories(directory_, ec);
      std::ofstream out(temp, std::ios::binary | std::ios::trunc);
      if (out) {
        out << kMagic << ' ' << kVersion << ' '
            << hex64(common::fnv1a_64(payload)) << ' ' << payload.size()
            << '\n'
            << payload;
        out.flush();
        ok = out.good();
      }
      if (ok) {
        std::filesystem::rename(temp, target, ec);
        ok = !ec;
      }
      if (!ok) std::filesystem::remove(temp, ec);
    }

    // Re-enforce the disk budget after every successful write: the file
    // just renamed in carries the newest mtime, so LRU-by-mtime always
    // evicts colder entries before it.
    if (ok) gc_disk();

    {
      std::lock_guard<std::mutex> lock(mutex_);
      writing_ = false;
      if (ok) {
        ++stats_.saves;
      } else {
        ++stats_.save_errors;
      }
    }
    write_done_.notify_all();
  }
}

}  // namespace bbs::telemetry
