// Persistent structure cache.
//
// Stores, per structure key (api::request_structure_key), the artifacts
// that are pure functions of that key: the KKT symbolic analysis
// (fill-reducing ordering, elimination tree, factor column pointers) and an
// opaque session payload the api layer uses to rebuild a pooled session at
// startup. A daemon restart — pointed at the same --cache-dir — pre-warms
// its engine pools from the cache instead of re-deriving the same
// elimination trees.
//
// On-disk format (one file per entry, named <fnv1a64(key) hex>.bbsc):
//
//     BBSCACHE v1 <fnv1a64(payload) hex> <payload byte count>\n
//     <payload: one compact JSON document>
//
// Files are written to a temp name and renamed into place, so a crash never
// leaves a torn entry. Loading is fail-soft by design: a truncated file, a
// checksum or version mismatch, unparsable JSON, or a payload whose key
// does not hash to its file name is skipped and counted in load_errors —
// never fatal, the entry is simply re-derived and re-written.
//
// Thread safety: all public methods are safe to call concurrently (worker
// engines store and look up entries from their own threads). store() is
// write-behind — the in-memory entry is visible immediately, the disk write
// happens on a background thread; flush() blocks until the disk is caught
// up.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bbs/io/json.hpp"
#include "bbs/solver/kkt_system.hpp"

namespace bbs::telemetry {

struct CacheEntry {
  /// Full structure key (api::request_structure_key of the request).
  std::string key;
  /// Serialised symbolic analysis for the key's KKT system.
  solver::SymbolicAnalysis symbolic;
  /// Opaque session-reconstruction payload, produced and consumed by the
  /// api layer (configuration + session options). Telemetry never
  /// interprets it.
  io::JsonValue session;
};

struct StructureCacheStats {
  std::uint64_t entries_loaded = 0;
  std::uint64_t load_errors = 0;
  std::uint64_t saves = 0;
  std::uint64_t save_errors = 0;
  std::uint64_t prewarm_errors = 0;
  std::uint64_t lookup_hits = 0;
  std::uint64_t lookup_misses = 0;
  /// Disk files removed by the LRU-by-mtime garbage collector.
  std::uint64_t evictions = 0;
};

class StructureCache {
 public:
  /// `max_entries` bounds both the in-memory map and the on-disk file
  /// count; `max_bytes` (0 = unlimited) additionally bounds the summed
  /// size of the on-disk entries. Both disk bounds are enforced by
  /// LRU-by-mtime eviction — at load() and after every write-behind save —
  /// so a long-lived cache directory cannot grow without bound.
  explicit StructureCache(std::string directory,
                          std::size_t max_entries = 1024,
                          std::uint64_t max_bytes = 0);
  ~StructureCache();  // drains pending writes

  StructureCache(const StructureCache&) = delete;
  StructureCache& operator=(const StructureCache&) = delete;

  /// Scans the directory and loads every valid entry (up to max_entries).
  /// Invalid entries are skipped and counted. Returns entries loaded.
  std::size_t load();

  bool contains(const std::string& key) const;
  std::optional<CacheEntry> lookup(const std::string& key) const;

  /// Inserts (or refreshes) an entry and schedules the disk write on the
  /// background writer. At capacity, new keys are dropped (counted as
  /// save_errors) — the cache favours the structures seen first, which a
  /// restart re-ranks anyway.
  void store(CacheEntry entry);

  /// Blocks until every store() accepted so far has hit the disk.
  void flush();

  /// Copies of all in-memory entries (startup pre-warm iterates this).
  std::vector<CacheEntry> entries() const;

  /// Called by the pre-warm driver when a loaded entry fails session
  /// reconstruction (counted, never fatal).
  void note_prewarm_error();

  StructureCacheStats stats() const;
  const std::string& directory() const { return directory_; }
  std::size_t size() const;

  /// Stable file name (without directory) an entry for `key` uses.
  static std::string file_name_for_key(const std::string& key);

 private:
  void writer_loop();
  bool load_file(const std::string& path, std::string* error);
  /// Deletes oldest-mtime .bbsc files until the directory satisfies both
  /// max_entries and max_bytes. Scans the directory itself (no lock held);
  /// returns the number of files removed (counted in stats.evictions).
  /// An evicted key that is still in memory stays usable — the next
  /// store() of it simply rewrites the file.
  std::size_t gc_disk();

  std::string directory_;
  std::size_t max_entries_;
  std::uint64_t max_bytes_;

  mutable std::mutex mutex_;
  std::condition_variable wake_writer_;
  std::condition_variable write_done_;
  std::map<std::string, CacheEntry> entries_;  // keyed by structure key
  std::deque<CacheEntry> write_queue_;
  bool writing_ = false;
  bool stopping_ = false;
  // Mutable: lookup() is logically const but counts hits/misses.
  mutable StructureCacheStats stats_;
  std::thread writer_;
};

}  // namespace bbs::telemetry
