#include "bbs/dataflow/srdf_graph.hpp"

#include <algorithm>

#include "bbs/common/assert.hpp"

namespace bbs::dataflow {

Index SrdfGraph::add_actor(std::string name, double firing_duration) {
  BBS_REQUIRE(firing_duration >= 0.0,
              "SrdfGraph::add_actor: negative firing duration");
  actors_.push_back(Actor{std::move(name), firing_duration});
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<Index>(actors_.size()) - 1;
}

Index SrdfGraph::add_queue(Index from, Index to, Index initial_tokens,
                           std::string label) {
  BBS_REQUIRE(from >= 0 && from < num_actors(),
              "SrdfGraph::add_queue: invalid source actor");
  BBS_REQUIRE(to >= 0 && to < num_actors(),
              "SrdfGraph::add_queue: invalid target actor");
  BBS_REQUIRE(initial_tokens >= 0,
              "SrdfGraph::add_queue: negative token count");
  queues_.push_back(Queue{from, to, initial_tokens, std::move(label)});
  const Index id = static_cast<Index>(queues_.size()) - 1;
  out_[static_cast<std::size_t>(from)].push_back(id);
  in_[static_cast<std::size_t>(to)].push_back(id);
  return id;
}

const Actor& SrdfGraph::actor(Index id) const {
  BBS_REQUIRE(id >= 0 && id < num_actors(), "SrdfGraph::actor: bad id");
  return actors_[static_cast<std::size_t>(id)];
}

const Queue& SrdfGraph::queue(Index id) const {
  BBS_REQUIRE(id >= 0 && id < num_queues(), "SrdfGraph::queue: bad id");
  return queues_[static_cast<std::size_t>(id)];
}

void SrdfGraph::set_firing_duration(Index actor_id, double duration) {
  BBS_REQUIRE(actor_id >= 0 && actor_id < num_actors(),
              "SrdfGraph::set_firing_duration: bad id");
  BBS_REQUIRE(duration >= 0.0,
              "SrdfGraph::set_firing_duration: negative duration");
  actors_[static_cast<std::size_t>(actor_id)].firing_duration = duration;
}

void SrdfGraph::set_initial_tokens(Index queue_id, Index tokens) {
  BBS_REQUIRE(queue_id >= 0 && queue_id < num_queues(),
              "SrdfGraph::set_initial_tokens: bad id");
  BBS_REQUIRE(tokens >= 0, "SrdfGraph::set_initial_tokens: negative tokens");
  queues_[static_cast<std::size_t>(queue_id)].initial_tokens = tokens;
}

const std::vector<Index>& SrdfGraph::out_queues(Index actor_id) const {
  BBS_REQUIRE(actor_id >= 0 && actor_id < num_actors(),
              "SrdfGraph::out_queues: bad id");
  return out_[static_cast<std::size_t>(actor_id)];
}

const std::vector<Index>& SrdfGraph::in_queues(Index actor_id) const {
  BBS_REQUIRE(actor_id >= 0 && actor_id < num_actors(),
              "SrdfGraph::in_queues: bad id");
  return in_[static_cast<std::size_t>(actor_id)];
}

bool SrdfGraph::is_valid() const {
  for (const Actor& a : actors_) {
    if (a.firing_duration < 0.0) return false;
  }
  for (const Queue& q : queues_) {
    if (q.from < 0 || q.from >= num_actors()) return false;
    if (q.to < 0 || q.to >= num_actors()) return false;
    if (q.initial_tokens < 0) return false;
  }
  return true;
}

bool SrdfGraph::has_zero_token_cycle() const {
  // Kahn's algorithm on the zero-token subgraph: a cycle remains iff not all
  // actors can be topologically eliminated.
  const auto n = static_cast<std::size_t>(num_actors());
  std::vector<Index> indegree(n, 0);
  for (const Queue& q : queues_) {
    if (q.initial_tokens == 0) ++indegree[static_cast<std::size_t>(q.to)];
  }
  std::vector<Index> stack;
  for (std::size_t v = 0; v < n; ++v) {
    if (indegree[v] == 0) stack.push_back(static_cast<Index>(v));
  }
  std::size_t removed = 0;
  while (!stack.empty()) {
    const Index v = stack.back();
    stack.pop_back();
    ++removed;
    for (Index qid : out_[static_cast<std::size_t>(v)]) {
      const Queue& q = queues_[static_cast<std::size_t>(qid)];
      if (q.initial_tokens != 0) continue;
      if (--indegree[static_cast<std::size_t>(q.to)] == 0) {
        stack.push_back(q.to);
      }
    }
  }
  return removed != n;
}

bool SrdfGraph::is_strongly_connected() const {
  const auto n = static_cast<std::size_t>(num_actors());
  if (n <= 1) return true;
  // Two reachability sweeps (forward from 0, backward to 0).
  auto sweep = [&](bool forward) {
    std::vector<bool> seen(n, false);
    std::vector<Index> stack{0};
    seen[0] = true;
    std::size_t count = 0;
    while (!stack.empty()) {
      const Index v = stack.back();
      stack.pop_back();
      ++count;
      const auto& queues = forward ? out_[static_cast<std::size_t>(v)]
                                   : in_[static_cast<std::size_t>(v)];
      for (Index qid : queues) {
        const Queue& q = queues_[static_cast<std::size_t>(qid)];
        const Index next = forward ? q.to : q.from;
        if (!seen[static_cast<std::size_t>(next)]) {
          seen[static_cast<std::size_t>(next)] = true;
          stack.push_back(next);
        }
      }
    }
    return count == n;
  };
  return sweep(true) && sweep(false);
}

double SrdfGraph::total_duration() const {
  double s = 0.0;
  for (const Actor& a : actors_) s += a.firing_duration;
  return s;
}

}  // namespace bbs::dataflow
