#include "bbs/dataflow/self_timed.hpp"

#include <algorithm>

#include "bbs/common/assert.hpp"
#include "bbs/common/period.hpp"

namespace bbs::dataflow {

SelfTimedResult self_timed_execution(const SrdfGraph& graph, int iterations,
                                     int warmup) {
  BBS_REQUIRE(iterations > 0, "self_timed_execution: iterations must be > 0");
  SelfTimedResult result;
  if (graph.has_zero_token_cycle()) {
    result.deadlock_free = false;
    return result;
  }
  result.deadlock_free = true;
  const auto n = static_cast<std::size_t>(graph.num_actors());
  if (n == 0) return result;
  if (warmup < 0) warmup = std::min(iterations / 2, graph.num_actors() * 2);

  // Topological order of the zero-token subgraph resolves dependencies
  // within one iteration index k (a zero-token queue couples equal k's).
  std::vector<Index> topo;
  {
    std::vector<Index> indeg(n, 0);
    for (Index q = 0; q < graph.num_queues(); ++q) {
      if (graph.queue(q).initial_tokens == 0)
        ++indeg[static_cast<std::size_t>(graph.queue(q).to)];
    }
    std::vector<Index> stack;
    for (std::size_t v = 0; v < n; ++v)
      if (indeg[v] == 0) stack.push_back(static_cast<Index>(v));
    while (!stack.empty()) {
      const Index v = stack.back();
      stack.pop_back();
      topo.push_back(v);
      for (Index qid : graph.out_queues(v)) {
        const Queue& q = graph.queue(qid);
        if (q.initial_tokens != 0) continue;
        if (--indeg[static_cast<std::size_t>(q.to)] == 0) stack.push_back(q.to);
      }
    }
    BBS_ASSERT_MSG(topo.size() == n, "zero-token subgraph has a cycle");
  }

  result.start_times.assign(static_cast<std::size_t>(iterations),
                            Vector(n, 0.0));
  for (int k = 0; k < iterations; ++k) {
    Vector& sigma_k = result.start_times[static_cast<std::size_t>(k)];
    for (Index v : topo) {
      double start = 0.0;
      for (Index qid : graph.in_queues(v)) {
        const Queue& q = graph.queue(qid);
        const int producer_firing = k - static_cast<int>(q.initial_tokens);
        if (producer_firing < 0) continue;  // initial token: ready at t = 0
        const double ready =
            result.start_times[static_cast<std::size_t>(producer_firing)]
                              [static_cast<std::size_t>(q.from)] +
            graph.actor(q.from).firing_duration;
        start = std::max(start, ready);
      }
      sigma_k[static_cast<std::size_t>(v)] = start;
    }
  }

  if (iterations - warmup >= 2) {
    // Exact asymptotic period via periodicity detection on the post-warmup
    // window (falls back to a windowed average when the trace is too short
    // for the regime to repeat).
    const std::vector<Vector> window(
        result.start_times.begin() + warmup, result.start_times.end());
    result.measured_period = estimate_asymptotic_period(window);
  }
  return result;
}

}  // namespace bbs::dataflow
