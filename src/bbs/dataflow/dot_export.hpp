// Graphviz DOT export of SRDF graphs, for documentation and debugging.
#pragma once

#include <string>

#include "bbs/dataflow/srdf_graph.hpp"

namespace bbs::dataflow {

/// Renders the graph in Graphviz DOT syntax. Actors are labelled with their
/// name and firing duration; queues with their token count.
std::string to_dot(const SrdfGraph& graph, const std::string& graph_name = "srdf");

}  // namespace bbs::dataflow
