#include "bbs/dataflow/pas.hpp"

#include "bbs/common/assert.hpp"

namespace bbs::dataflow {

PasResult compute_pas(const SrdfGraph& graph, double period) {
  BBS_REQUIRE(period > 0.0, "compute_pas: period must be positive");
  const auto n = static_cast<std::size_t>(graph.num_actors());
  PasResult result;
  result.start_times.assign(n, 0.0);
  if (n == 0) {
    result.feasible = true;
    return result;
  }

  // Longest-path relaxation: s(to) >= s(from) + rho(from) - tokens*period.
  // All start times are initialised to 0, which keeps every component
  // anchored; |V| full passes suffice, a |V|+1-th improvement proves a
  // positive cycle (equivalently: no PAS with this period).
  Vector& s = result.start_times;
  const Index num_queues = graph.num_queues();
  bool changed = true;
  for (Index pass = 0; pass <= graph.num_actors() && changed; ++pass) {
    changed = false;
    for (Index qid = 0; qid < num_queues; ++qid) {
      const Queue& q = graph.queue(qid);
      const double bound =
          s[static_cast<std::size_t>(q.from)] +
          graph.actor(q.from).firing_duration -
          static_cast<double>(q.initial_tokens) * period;
      if (bound > s[static_cast<std::size_t>(q.to)] + 1e-12) {
        s[static_cast<std::size_t>(q.to)] = bound;
        changed = true;
      }
    }
  }
  result.feasible = !changed;
  return result;
}

bool verify_pas(const SrdfGraph& graph, double period, const Vector& starts,
                double tol) {
  BBS_REQUIRE(starts.size() == static_cast<std::size_t>(graph.num_actors()),
              "verify_pas: start-time vector size mismatch");
  for (Index qid = 0; qid < graph.num_queues(); ++qid) {
    const Queue& q = graph.queue(qid);
    const double lhs = starts[static_cast<std::size_t>(q.to)];
    const double rhs = starts[static_cast<std::size_t>(q.from)] +
                       graph.actor(q.from).firing_duration -
                       static_cast<double>(q.initial_tokens) * period;
    if (lhs + tol < rhs) return false;
  }
  return true;
}

}  // namespace bbs::dataflow
