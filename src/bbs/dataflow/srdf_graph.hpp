// Single-rate dataflow (SRDF) graphs, also known as homogeneous synchronous
// dataflow graphs, computation graphs (Karp & Miller) or marked graphs.
//
// An SRDF graph G = (V, E, rho, delta) has actors V with a firing duration
// rho(v) and directed queues E carrying delta(e) initial tokens. In every
// firing an actor consumes one token from each input queue and produces one
// token on each output queue. This is the analysis model of Section II-B of
// the paper; bbs/core builds these graphs from task graphs using the
// two-actor budget-scheduler component of Section II-C.
#pragma once

#include <string>
#include <vector>

#include "bbs/linalg/sparse_matrix.hpp"

namespace bbs::dataflow {

using linalg::Index;

struct Actor {
  std::string name;
  double firing_duration = 0.0;  ///< rho(v) >= 0
};

struct Queue {
  Index from = 0;
  Index to = 0;
  Index initial_tokens = 0;  ///< delta(e) >= 0
  std::string label;
};

/// A directed multigraph of actors and token queues. Mutable during
/// construction; analyses treat it as immutable.
class SrdfGraph {
 public:
  /// Adds an actor, returning its id (dense, 0-based).
  Index add_actor(std::string name, double firing_duration);

  /// Adds a queue from `from` to `to` with `initial_tokens` tokens.
  Index add_queue(Index from, Index to, Index initial_tokens,
                  std::string label = {});

  Index num_actors() const { return static_cast<Index>(actors_.size()); }
  Index num_queues() const { return static_cast<Index>(queues_.size()); }

  const Actor& actor(Index id) const;
  const Queue& queue(Index id) const;

  void set_firing_duration(Index actor_id, double duration);
  void set_initial_tokens(Index queue_id, Index tokens);

  /// Ids of queues leaving / entering an actor.
  const std::vector<Index>& out_queues(Index actor_id) const;
  const std::vector<Index>& in_queues(Index actor_id) const;

  /// True iff every queue endpoint is a valid actor and all durations and
  /// token counts are nonnegative (construction enforces this; the check is
  /// for graphs modified in place).
  bool is_valid() const;

  /// True iff there is a directed cycle whose queues all carry zero tokens
  /// (such a graph deadlocks: no periodic schedule of any period exists).
  bool has_zero_token_cycle() const;

  /// True iff the graph is strongly connected (|V| <= 1 counts as true).
  bool is_strongly_connected() const;

  /// Sum of all firing durations (a trivial upper bound on any cycle's
  /// duration sum, used to bracket cycle-ratio searches).
  double total_duration() const;

 private:
  std::vector<Actor> actors_;
  std::vector<Queue> queues_;
  std::vector<std::vector<Index>> out_;
  std::vector<std::vector<Index>> in_;
};

}  // namespace bbs::dataflow
