// Multi-rate synchronous dataflow (SDF) graphs and their expansion to
// single-rate (SRDF/HSDF) form.
//
// The paper restricts itself to single-rate task graphs "for reasons of
// space" (Section I) and names more dynamic dataflow as the essential next
// step (Section VI). This module supplies the classic front-end for that
// step: SDF actors fire with constant production/consumption rates; a
// consistent SDF graph has a repetition vector q (the unique minimal firing
// counts that return every queue to its initial fill), and it can be
// expanded into an equivalent SRDF graph with q(a) copies of each actor
// (Lee & Messerschmitt 1987; Sriram & Bhattacharyya 2000). The expanded
// graph plugs directly into the MCR / PAS machinery of this library.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bbs/dataflow/srdf_graph.hpp"

namespace bbs::dataflow {

struct SdfActor {
  std::string name;
  double firing_duration = 0.0;
};

struct SdfChannel {
  Index from = 0;
  Index to = 0;
  Index production = 1;    ///< tokens produced per source firing (>= 1)
  Index consumption = 1;   ///< tokens consumed per sink firing (>= 1)
  Index initial_tokens = 0;
};

class SdfGraph {
 public:
  Index add_actor(std::string name, double firing_duration);
  Index add_channel(Index from, Index to, Index production, Index consumption,
                    Index initial_tokens = 0);

  Index num_actors() const { return static_cast<Index>(actors_.size()); }
  Index num_channels() const { return static_cast<Index>(channels_.size()); }
  const SdfActor& actor(Index id) const;
  const SdfChannel& channel(Index id) const;

 private:
  std::vector<SdfActor> actors_;
  std::vector<SdfChannel> channels_;
};

/// Repetition vector q: the componentwise-smallest positive integers with
/// q(from) * production = q(to) * consumption on every channel. Returns
/// nullopt for inconsistent graphs (which cannot execute with bounded
/// memory). Disconnected graphs are handled per weakly connected component.
std::optional<std::vector<Index>> repetition_vector(const SdfGraph& graph);

/// Result of the single-rate expansion.
struct SrdfExpansion {
  SrdfGraph graph;
  /// actor_copy[a][k] = SRDF actor id of the k-th firing of SDF actor a
  /// within one graph iteration (k < q(a)).
  std::vector<std::vector<Index>> actor_copy;
  std::vector<Index> repetitions;
};

/// Expands a consistent SDF graph into an equivalent SRDF graph: actor a
/// becomes q(a) copies; each data dependency between specific firings
/// becomes a queue whose token count is the iteration distance. Parallel
/// queues between the same pair of firings are merged, keeping the smallest
/// token count (the binding constraint). Sequential firing of each actor's
/// copies is enforced with a token-carrying cycle through the copies, which
/// models an actor bound to one sequential resource (and keeps the expansion
/// deadlock-free exactly when the SDF graph is). Throws ModelError for
/// inconsistent graphs.
SrdfExpansion expand_to_srdf(const SdfGraph& graph);

/// Maximum throughput of a consistent SDF graph in *graph iterations* per
/// time unit: 1 / (MCR of the expansion) scaled by nothing — the expansion's
/// MCR is the minimal period between successive firings of any single copy,
/// which equals the minimal iteration period. Returns 0 for deadlocked
/// graphs and +infinity-equivalents are avoided by returning nullopt.
std::optional<double> sdf_iteration_period(const SdfGraph& graph);

}  // namespace bbs::dataflow
