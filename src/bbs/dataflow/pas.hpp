// Periodic admissible schedules (PAS) for SRDF graphs.
//
// A PAS with period phi assigns each actor a start time s(v) such that the
// k-th firing starts at s(v) + (k-1)*phi and never consumes a token that has
// not yet been produced. By Reiter's theorem (Constraint (1) of the paper),
// such start times exist iff
//
//     s(v_j) >= s(v_i) + rho(v_i) - delta(e_ij) * phi     for every queue,
//
// i.e. iff the constraint graph with edge weights rho(v_i) - delta(e)*phi has
// no positive-weight cycle. compute_pas solves this longest-path problem with
// Bellman-Ford and returns the (componentwise least) start times.
#pragma once

#include "bbs/dataflow/srdf_graph.hpp"

namespace bbs::dataflow {

using linalg::Vector;

struct PasResult {
  bool feasible = false;
  /// Start times s(v); meaningful only when feasible.
  Vector start_times;
};

/// Computes a PAS with the given period, or reports infeasibility.
PasResult compute_pas(const SrdfGraph& graph, double period);

/// Checks Constraint (1) for every queue with tolerance `tol`.
bool verify_pas(const SrdfGraph& graph, double period, const Vector& starts,
                double tol = 1e-9);

}  // namespace bbs::dataflow
