#include "bbs/dataflow/cycle_ratio.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "bbs/common/assert.hpp"
#include "bbs/dataflow/pas.hpp"

namespace bbs::dataflow {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// True iff the graph has at least one directed cycle (Kahn elimination).
bool has_cycle(const SrdfGraph& g) {
  const auto n = static_cast<std::size_t>(g.num_actors());
  std::vector<Index> indeg(n, 0);
  for (Index q = 0; q < g.num_queues(); ++q)
    ++indeg[static_cast<std::size_t>(g.queue(q).to)];
  std::vector<Index> stack;
  for (std::size_t v = 0; v < n; ++v)
    if (indeg[v] == 0) stack.push_back(static_cast<Index>(v));
  std::size_t removed = 0;
  while (!stack.empty()) {
    const Index v = stack.back();
    stack.pop_back();
    ++removed;
    for (Index qid : g.out_queues(v)) {
      if (--indeg[static_cast<std::size_t>(g.queue(qid).to)] == 0)
        stack.push_back(g.queue(qid).to);
    }
  }
  return removed != n;
}

}  // namespace

double max_cycle_ratio(const SrdfGraph& graph, double tol) {
  return max_cycle_ratio_howard(graph, tol);
}

double max_cycle_ratio_bisect(const SrdfGraph& graph, double tol) {
  BBS_REQUIRE(tol > 0.0, "max_cycle_ratio_bisect: tol must be positive");
  if (graph.has_zero_token_cycle()) return kInf;
  if (!has_cycle(graph)) return 0.0;

  // Any cycle has duration sum <= total_duration() and token sum >= 1, so
  // total_duration() is an upper bound on the MCR; MCR > 0 because some cycle
  // exists (cycles of zero total duration make any positive period feasible,
  // handled naturally by the search converging to ~0).
  double lo = 0.0;
  double hi = std::max(graph.total_duration(), tol);
  if (!compute_pas(graph, hi).feasible) {
    // Defensive: numerical slack in the oracle; widen once.
    hi *= 2.0;
  }
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= 0.0) break;
    if (compute_pas(graph, mid).feasible) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double max_cycle_ratio_howard(const SrdfGraph& graph, double tol) {
  if (graph.has_zero_token_cycle()) return kInf;
  const Index n = graph.num_actors();
  if (n == 0 || !has_cycle(graph)) return 0.0;

  // Strip nodes that cannot lie on or reach a cycle (out-degree 0 closure);
  // Howard's policy needs every live node to have a successor.
  std::vector<Index> live_out(static_cast<std::size_t>(n), 0);
  for (Index v = 0; v < n; ++v)
    live_out[static_cast<std::size_t>(v)] =
        static_cast<Index>(graph.out_queues(v).size());
  std::vector<bool> dead(static_cast<std::size_t>(n), false);
  {
    std::vector<Index> stack;
    for (Index v = 0; v < n; ++v)
      if (live_out[static_cast<std::size_t>(v)] == 0) stack.push_back(v);
    while (!stack.empty()) {
      const Index v = stack.back();
      stack.pop_back();
      dead[static_cast<std::size_t>(v)] = true;
      for (Index qid : graph.in_queues(v)) {
        const Index u = graph.queue(qid).from;
        if (!dead[static_cast<std::size_t>(u)] &&
            --live_out[static_cast<std::size_t>(u)] == 0) {
          stack.push_back(u);
        }
      }
    }
  }

  // Initial policy: first live out-queue of each live node.
  std::vector<Index> policy(static_cast<std::size_t>(n), -1);
  for (Index v = 0; v < n; ++v) {
    if (dead[static_cast<std::size_t>(v)]) continue;
    for (Index qid : graph.out_queues(v)) {
      if (!dead[static_cast<std::size_t>(graph.queue(qid).to)]) {
        policy[static_cast<std::size_t>(v)] = qid;
        break;
      }
    }
    BBS_ASSERT_MSG(policy[static_cast<std::size_t>(v)] >= 0,
                   "live node without live successor");
  }

  std::vector<double> eta(static_cast<std::size_t>(n), -kInf);
  std::vector<double> pot(static_cast<std::size_t>(n), 0.0);

  const auto weight = [&](Index qid) {
    return graph.actor(graph.queue(qid).from).firing_duration;
  };
  const auto tokens = [&](Index qid) {
    return static_cast<double>(graph.queue(qid).initial_tokens);
  };

  const int max_rounds = 8 * static_cast<int>(n) + 64;
  for (int round = 0; round < max_rounds; ++round) {
    // --- Policy evaluation -------------------------------------------------
    // The policy graph is functional on live nodes: locate each node's cycle,
    // compute the cycle ratio, then back-propagate potentials.
    std::vector<int> colour(static_cast<std::size_t>(n), 0);  // 0 new
    std::vector<bool> evaluated(static_cast<std::size_t>(n), false);
    for (Index v = 0; v < n; ++v) {
      if (dead[static_cast<std::size_t>(v)] ||
          evaluated[static_cast<std::size_t>(v)]) {
        continue;
      }
      // Walk until we hit an evaluated node or close a cycle.
      std::vector<Index> path;
      Index u = v;
      while (!dead[static_cast<std::size_t>(u)] &&
             !evaluated[static_cast<std::size_t>(u)] &&
             colour[static_cast<std::size_t>(u)] == 0) {
        colour[static_cast<std::size_t>(u)] = 1;
        path.push_back(u);
        u = graph.queue(policy[static_cast<std::size_t>(u)]).to;
      }
      if (!evaluated[static_cast<std::size_t>(u)] &&
          colour[static_cast<std::size_t>(u)] == 1) {
        // Found a new cycle starting at u: measure it.
        double wsum = 0.0;
        double tsum = 0.0;
        Index c = u;
        do {
          const Index qid = policy[static_cast<std::size_t>(c)];
          wsum += weight(qid);
          tsum += tokens(qid);
          c = graph.queue(qid).to;
        } while (c != u);
        BBS_ASSERT_MSG(tsum > 0.0, "policy cycle without tokens");
        const double ratio = wsum / tsum;
        // Fix potentials around the cycle: pot(u) = 0, then backwards.
        eta[static_cast<std::size_t>(u)] = ratio;
        pot[static_cast<std::size_t>(u)] = 0.0;
        evaluated[static_cast<std::size_t>(u)] = true;
        // Walk the cycle once more, assigning potentials from the relation
        // pot(a) = w - eta*t + pot(next(a)), processed in reverse.
        std::vector<Index> cycle;
        c = graph.queue(policy[static_cast<std::size_t>(u)]).to;
        while (c != u) {
          cycle.push_back(c);
          c = graph.queue(policy[static_cast<std::size_t>(c)]).to;
        }
        for (auto it = cycle.rbegin(); it != cycle.rend(); ++it) {
          const Index a = *it;
          const Index qid = policy[static_cast<std::size_t>(a)];
          const Index nxt = graph.queue(qid).to;
          eta[static_cast<std::size_t>(a)] = ratio;
          pot[static_cast<std::size_t>(a)] = weight(qid) -
                                             ratio * tokens(qid) +
                                             pot[static_cast<std::size_t>(nxt)];
          evaluated[static_cast<std::size_t>(a)] = true;
        }
      }
      // Back-propagate along the walked path (tree part).
      for (auto it = path.rbegin(); it != path.rend(); ++it) {
        const Index a = *it;
        if (evaluated[static_cast<std::size_t>(a)]) continue;
        const Index qid = policy[static_cast<std::size_t>(a)];
        const Index nxt = graph.queue(qid).to;
        eta[static_cast<std::size_t>(a)] = eta[static_cast<std::size_t>(nxt)];
        pot[static_cast<std::size_t>(a)] = weight(qid) -
                                           eta[static_cast<std::size_t>(a)] *
                                               tokens(qid) +
                                           pot[static_cast<std::size_t>(nxt)];
        evaluated[static_cast<std::size_t>(a)] = true;
      }
      for (Index a : path) colour[static_cast<std::size_t>(a)] = 2;
    }

    // --- Policy improvement ------------------------------------------------
    bool improved = false;
    // Phase 1: switch to successors that reach a strictly better cycle.
    for (Index u = 0; u < n; ++u) {
      if (dead[static_cast<std::size_t>(u)]) continue;
      for (Index qid : graph.out_queues(u)) {
        const Index x = graph.queue(qid).to;
        if (dead[static_cast<std::size_t>(x)]) continue;
        if (eta[static_cast<std::size_t>(x)] >
            eta[static_cast<std::size_t>(u)] + tol) {
          policy[static_cast<std::size_t>(u)] = qid;
          eta[static_cast<std::size_t>(u)] = eta[static_cast<std::size_t>(x)];
          improved = true;
        }
      }
    }
    // Phase 2: within the same cycle class, improve the potential.
    if (!improved) {
      for (Index u = 0; u < n; ++u) {
        if (dead[static_cast<std::size_t>(u)]) continue;
        const double eta_u = eta[static_cast<std::size_t>(u)];
        for (Index qid : graph.out_queues(u)) {
          const Index x = graph.queue(qid).to;
          if (dead[static_cast<std::size_t>(x)]) continue;
          if (eta[static_cast<std::size_t>(x)] < eta_u - tol) continue;
          const double cand = weight(qid) - eta_u * tokens(qid) +
                              pot[static_cast<std::size_t>(x)];
          if (cand > pot[static_cast<std::size_t>(u)] + tol) {
            policy[static_cast<std::size_t>(u)] = qid;
            improved = true;
          }
        }
      }
    }
    if (!improved) break;
  }

  double best = 0.0;
  for (Index v = 0; v < n; ++v) {
    if (!dead[static_cast<std::size_t>(v)]) {
      best = std::max(best, eta[static_cast<std::size_t>(v)]);
    }
  }
  return best;
}

double max_cycle_mean_karp(const SrdfGraph& graph) {
  const auto n = static_cast<std::size_t>(graph.num_actors());
  if (n == 0 || !has_cycle(graph)) return 0.0;

  // D[k][v] = maximum weight of a k-edge walk ending in v (-inf if none).
  std::vector<std::vector<double>> d(
      n + 1, std::vector<double>(n, -kInf));
  for (std::size_t v = 0; v < n; ++v) d[0][v] = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    for (Index q = 0; q < graph.num_queues(); ++q) {
      const Queue& e = graph.queue(q);
      const double w = graph.actor(e.from).firing_duration;
      const auto u = static_cast<std::size_t>(e.from);
      const auto v = static_cast<std::size_t>(e.to);
      if (d[k - 1][u] > -kInf) {
        d[k][v] = std::max(d[k][v], d[k - 1][u] + w);
      }
    }
  }

  double best = -kInf;
  for (std::size_t v = 0; v < n; ++v) {
    if (d[n][v] == -kInf) continue;
    double worst = kInf;
    for (std::size_t k = 0; k < n; ++k) {
      if (d[k][v] == -kInf) continue;
      worst = std::min(worst,
                       (d[n][v] - d[k][v]) / static_cast<double>(n - k));
    }
    best = std::max(best, worst);
  }
  return best == -kInf ? 0.0 : best;
}

namespace {

/// Extracts some cycle from the zero-token subgraph (which must contain
/// one); returns its queue ids in traversal order.
std::vector<Index> zero_token_cycle(const SrdfGraph& g) {
  const auto n = static_cast<std::size_t>(g.num_actors());
  // Iterative DFS with colouring over zero-token queues.
  std::vector<int> colour(n, 0);            // 0 white, 1 on stack, 2 done
  std::vector<Index> via_queue(n, -1);      // queue that discovered the node
  std::vector<Index> parent(n, -1);
  for (Index root = 0; root < g.num_actors(); ++root) {
    if (colour[static_cast<std::size_t>(root)] != 0) continue;
    std::vector<std::pair<Index, std::size_t>> stack{{root, 0}};
    colour[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      auto& [v, next_edge] = stack.back();
      const auto& out = g.out_queues(v);
      bool descended = false;
      while (next_edge < out.size()) {
        const Index qid = out[next_edge++];
        const Queue& q = g.queue(qid);
        if (q.initial_tokens != 0) continue;
        const auto to = static_cast<std::size_t>(q.to);
        if (colour[to] == 1) {
          // Found a cycle: walk back from v to q.to collecting queues.
          std::vector<Index> cycle{qid};
          Index cur = v;
          while (cur != q.to) {
            cycle.push_back(via_queue[static_cast<std::size_t>(cur)]);
            cur = parent[static_cast<std::size_t>(cur)];
          }
          std::reverse(cycle.begin(), cycle.end());
          return cycle;
        }
        if (colour[to] == 0) {
          colour[to] = 1;
          parent[to] = v;
          via_queue[to] = qid;
          stack.emplace_back(q.to, 0);
          descended = true;
          break;
        }
      }
      if (!descended && next_edge >= out.size()) {
        colour[static_cast<std::size_t>(v)] = 2;
        stack.pop_back();
      }
    }
  }
  BBS_ASSERT_MSG(false, "zero_token_cycle: no cycle found");
  return {};
}

}  // namespace

CriticalCycle critical_cycle(const SrdfGraph& graph, double tol) {
  CriticalCycle out;
  if (graph.has_zero_token_cycle()) {
    out.ratio = kInf;
    out.queues = zero_token_cycle(graph);
    return out;
  }
  if (!has_cycle(graph)) return out;

  out.ratio = max_cycle_ratio_howard(graph, tol);
  // In the constraint graph with edge weights rho(src) - lambda*delta(e) and
  // lambda slightly below the MCR, exactly the (near-)critical cycles have
  // positive weight; Bellman-Ford with parent tracking extracts one.
  const double eps = std::max(tol, 1e-9 * std::max(1.0, out.ratio));
  const double lambda = out.ratio - eps;
  const auto n = static_cast<std::size_t>(graph.num_actors());
  std::vector<double> dist(n, 0.0);
  std::vector<Index> parent_queue(n, -1);

  Index relaxed_head = -1;
  for (Index pass = 0; pass <= graph.num_actors(); ++pass) {
    relaxed_head = -1;
    for (Index qid = 0; qid < graph.num_queues(); ++qid) {
      const Queue& q = graph.queue(qid);
      const double cand =
          dist[static_cast<std::size_t>(q.from)] +
          graph.actor(q.from).firing_duration -
          lambda * static_cast<double>(q.initial_tokens);
      if (cand > dist[static_cast<std::size_t>(q.to)] + 1e-12) {
        dist[static_cast<std::size_t>(q.to)] = cand;
        parent_queue[static_cast<std::size_t>(q.to)] = qid;
        relaxed_head = q.to;
      }
    }
    if (relaxed_head < 0) break;
  }
  BBS_ASSERT_MSG(relaxed_head >= 0,
                 "critical_cycle: no positive cycle below the MCR — "
                 "inconsistent cycle-ratio computation");

  // relaxed_head is reachable from a positive cycle; walking |V| parents
  // lands on the cycle itself.
  Index cur = relaxed_head;
  for (Index i = 0; i < graph.num_actors(); ++i) {
    cur = graph.queue(parent_queue[static_cast<std::size_t>(cur)]).from;
  }
  const Index anchor = cur;
  std::vector<Index> cycle;
  do {
    const Index qid = parent_queue[static_cast<std::size_t>(cur)];
    cycle.push_back(qid);
    cur = graph.queue(qid).from;
  } while (cur != anchor);
  std::reverse(cycle.begin(), cycle.end());
  out.queues = std::move(cycle);
  return out;
}

}  // namespace bbs::dataflow
