// Maximum cycle ratio (MCR) analysis of SRDF graphs.
//
// The MCR of an SRDF graph is
//
//     MCR(G) = max over directed cycles C of  sum_{v in C} rho(v)
//                                           / sum_{e in C} delta(e),
//
// and it equals the smallest period phi for which a periodic admissible
// schedule exists. Three independent implementations are provided and
// cross-checked in the test suite:
//
//   * max_cycle_ratio_howard — Howard's policy iteration (fast, exact up to
//     floating-point arithmetic; the library default behind
//     max_cycle_ratio),
//   * max_cycle_ratio_bisect — binary search over the PAS feasibility oracle
//     (one full longest-path pass per tolerance halving; kept as the slow,
//     robust cross-check oracle for the test suite),
//   * max_cycle_mean_karp — Karp's algorithm for the special case of the
//     maximum cycle *mean* (used by tests on graphs whose queues all carry
//     one token, where mean and ratio coincide).
//
// Conventions: an acyclic graph has MCR 0; a graph with a zero-token cycle
// deadlocks and has MCR +infinity.
#pragma once

#include "bbs/dataflow/srdf_graph.hpp"

namespace bbs::dataflow {

/// Maximum cycle ratio — the library default, currently Howard's policy
/// iteration. `tol` is the comparison epsilon of the policy improvement.
double max_cycle_ratio(const SrdfGraph& graph, double tol = 1e-11);

/// Binary search on the PAS feasibility oracle; `tol` is the absolute
/// bracket width at which the search stops. Much slower than Howard — use
/// max_cycle_ratio() outside of cross-check tests.
double max_cycle_ratio_bisect(const SrdfGraph& graph, double tol = 1e-9);

/// Howard's policy iteration for the maximum cycle ratio.
double max_cycle_ratio_howard(const SrdfGraph& graph, double tol = 1e-11);

/// Karp's algorithm for the maximum cycle mean (token counts are ignored;
/// every edge counts as length 1).
double max_cycle_mean_karp(const SrdfGraph& graph);

/// A critical cycle: a directed cycle attaining the maximum cycle ratio.
struct CriticalCycle {
  double ratio = 0.0;
  /// Queue ids along the cycle, in traversal order (empty for acyclic
  /// graphs; a zero-token cycle is returned with ratio +infinity).
  std::vector<Index> queues;
};

/// Extracts a cycle attaining the MCR (via Howard's optimal policy). The
/// throughput bottleneck of a mapped task graph lives on this cycle — the
/// incremental buffer-sizing search in bbs/core enlarges buffers along it.
CriticalCycle critical_cycle(const SrdfGraph& graph, double tol = 1e-11);

}  // namespace bbs::dataflow
