// Self-timed execution of SRDF graphs.
//
// In self-timed execution every actor fires as soon as one token is available
// on each of its input queues. For a strongly connected, deadlock-free SRDF
// graph the firings converge to a periodic regime whose period equals the
// maximum cycle ratio; temporal monotonicity (Section II-B2 of the paper)
// guarantees that shrinking any firing duration or adding initial tokens can
// only make every firing happen earlier. Both properties are exercised by the
// test suite through this executor.
//
// The k-th start time obeys the recursion
//
//     sigma(v, k) = max over input queues e=(u,v) of
//                   { 0                                  if k <= delta(e)
//                   { sigma(u, k - delta(e)) + rho(u)    otherwise,
//
// which this module evaluates iteration by iteration, resolving same-
// iteration dependencies in topological order of the zero-token subgraph.
#pragma once

#include <vector>

#include "bbs/dataflow/srdf_graph.hpp"

namespace bbs::dataflow {

using linalg::Vector;

struct SelfTimedResult {
  bool deadlock_free = false;
  /// start_times[k][v] = sigma(v, k+1): start of the (k+1)-th firing.
  std::vector<Vector> start_times;
  /// Average period of the last actor over the measurement window
  /// (start-to-start), 0 if fewer than two iterations were simulated.
  double measured_period = 0.0;
};

/// Simulates `iterations` firings of every actor. `warmup` iterations are
/// excluded from the period measurement (the transient before the periodic
/// regime; a warmup of at least |V| iterations is a safe default).
SelfTimedResult self_timed_execution(const SrdfGraph& graph, int iterations,
                                     int warmup = -1);

}  // namespace bbs::dataflow
