#include "bbs/dataflow/sdf_graph.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>

#include "bbs/common/assert.hpp"
#include "bbs/dataflow/cycle_ratio.hpp"

namespace bbs::dataflow {

namespace {

using Int = std::int64_t;

Int floor_div(Int a, Int b) {
  BBS_ASSERT(b > 0);
  Int q = a / b;
  if ((a % b != 0) && (a < 0)) --q;
  return q;
}

Int positive_mod(Int a, Int b) {
  const Int m = a % b;
  return m < 0 ? m + b : m;
}

struct Fraction {
  Int num = 0;  // numerator; 0 means "unassigned"
  Int den = 1;

  static Fraction of(Int n, Int d) {
    const Int g = std::gcd(n, d);
    return Fraction{n / g, d / g};
  }
};

}  // namespace

Index SdfGraph::add_actor(std::string name, double firing_duration) {
  BBS_REQUIRE(firing_duration >= 0.0,
              "SdfGraph::add_actor: negative firing duration");
  actors_.push_back(SdfActor{std::move(name), firing_duration});
  return static_cast<Index>(actors_.size()) - 1;
}

Index SdfGraph::add_channel(Index from, Index to, Index production,
                            Index consumption, Index initial_tokens) {
  BBS_REQUIRE(from >= 0 && from < num_actors(),
              "SdfGraph::add_channel: invalid source");
  BBS_REQUIRE(to >= 0 && to < num_actors(),
              "SdfGraph::add_channel: invalid target");
  BBS_REQUIRE(production >= 1 && consumption >= 1,
              "SdfGraph::add_channel: rates must be >= 1");
  BBS_REQUIRE(initial_tokens >= 0,
              "SdfGraph::add_channel: negative initial tokens");
  channels_.push_back(
      SdfChannel{from, to, production, consumption, initial_tokens});
  return static_cast<Index>(channels_.size()) - 1;
}

const SdfActor& SdfGraph::actor(Index id) const {
  BBS_REQUIRE(id >= 0 && id < num_actors(), "SdfGraph::actor: bad id");
  return actors_[static_cast<std::size_t>(id)];
}

const SdfChannel& SdfGraph::channel(Index id) const {
  BBS_REQUIRE(id >= 0 && id < num_channels(), "SdfGraph::channel: bad id");
  return channels_[static_cast<std::size_t>(id)];
}

std::optional<std::vector<Index>> repetition_vector(const SdfGraph& graph) {
  const auto n = static_cast<std::size_t>(graph.num_actors());
  if (n == 0) return std::vector<Index>{};

  // Propagate rational firing rates over the (undirected) channel relation:
  // rate(to) = rate(from) * production / consumption. A conflict on any
  // channel means the balance equations have no solution: inconsistent.
  std::vector<std::vector<Index>> incident(n);
  for (Index c = 0; c < graph.num_channels(); ++c) {
    incident[static_cast<std::size_t>(graph.channel(c).from)].push_back(c);
    incident[static_cast<std::size_t>(graph.channel(c).to)].push_back(c);
  }
  std::vector<Fraction> rate(n);
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (rate[seed].num != 0) continue;
    rate[seed] = Fraction{1, 1};
    std::vector<std::size_t> stack{seed};
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      for (const Index cid : incident[v]) {
        const SdfChannel& ch = graph.channel(cid);
        const auto from = static_cast<std::size_t>(ch.from);
        const auto to = static_cast<std::size_t>(ch.to);
        // rate(to) / rate(from) = production / consumption.
        const std::size_t known = (rate[from].num != 0) ? from : to;
        const std::size_t other = (known == from) ? to : from;
        Fraction expect;
        if (known == from) {
          expect = Fraction::of(rate[from].num * ch.production,
                                rate[from].den * ch.consumption);
        } else {
          expect = Fraction::of(rate[to].num * ch.consumption,
                                rate[to].den * ch.production);
        }
        if (rate[other].num == 0) {
          rate[other] = expect;
          stack.push_back(other);
        } else if (rate[other].num * expect.den !=
                   expect.num * rate[other].den) {
          return std::nullopt;  // inconsistent
        }
      }
    }
  }

  // Scale to the least common integer vector.
  Int lcm_den = 1;
  for (const Fraction& f : rate) {
    lcm_den = std::lcm(lcm_den, f.den);
  }
  std::vector<Int> scaled(n);
  Int g = 0;
  for (std::size_t v = 0; v < n; ++v) {
    scaled[v] = rate[v].num * (lcm_den / rate[v].den);
    g = std::gcd(g, scaled[v]);
  }
  std::vector<Index> q(n);
  for (std::size_t v = 0; v < n; ++v) {
    const Int value = scaled[v] / g;
    BBS_ASSERT_MSG(value > 0 &&
                       value <= std::numeric_limits<Index>::max(),
                   "repetition vector entry out of range");
    q[v] = static_cast<Index>(value);
  }
  return q;
}

SrdfExpansion expand_to_srdf(const SdfGraph& graph) {
  const auto reps = repetition_vector(graph);
  if (!reps) {
    throw ModelError("expand_to_srdf: the SDF graph is inconsistent (its "
                     "balance equations have no solution)");
  }
  SrdfExpansion out;
  out.repetitions = *reps;
  const auto n = static_cast<std::size_t>(graph.num_actors());
  out.actor_copy.resize(n);

  for (std::size_t a = 0; a < n; ++a) {
    const Index qa = out.repetitions[a];
    for (Index k = 0; k < qa; ++k) {
      out.actor_copy[a].push_back(out.graph.add_actor(
          graph.actor(static_cast<Index>(a)).name + "#" + std::to_string(k),
          graph.actor(static_cast<Index>(a)).firing_duration));
    }
    // Sequential-execution cycle through the copies: copy k feeds copy k+1
    // (zero tokens), and the last feeds the first with one token — i.e. one
    // firing of each copy per iteration, in order. For qa = 1 this is the
    // usual self-loop.
    for (Index k = 0; k < qa; ++k) {
      out.graph.add_queue(out.actor_copy[a][static_cast<std::size_t>(k)],
                          out.actor_copy[a][static_cast<std::size_t>(
                              (k + 1) % qa)],
                          (k + 1 == qa) ? 1 : 0, "seq");
    }
  }

  for (Index cid = 0; cid < graph.num_channels(); ++cid) {
    const SdfChannel& ch = graph.channel(cid);
    const auto qa = static_cast<Int>(
        out.repetitions[static_cast<std::size_t>(ch.from)]);
    const auto qb = static_cast<Int>(
        out.repetitions[static_cast<std::size_t>(ch.to)]);
    const auto p = static_cast<Int>(ch.production);
    const auto c = static_cast<Int>(ch.consumption);
    const auto d = static_cast<Int>(ch.initial_tokens);

    // For firing j of the consumer (iteration 0) and each consumed token,
    // find the producing firing i; i < 0 means an initial token with the
    // dependency wrapping into earlier iterations.
    // Keep only the tightest (minimal-token) queue per copy pair.
    std::map<std::pair<Index, Index>, Index> tightest;
    for (Int j = 0; j < qb; ++j) {
      for (Int t = j * c; t < (j + 1) * c; ++t) {
        const Int i = floor_div(t - d, p);
        const Int src_copy = positive_mod(i, qa);
        const Int delta = -floor_div(i, qa);
        BBS_ASSERT_MSG(delta >= 0, "negative iteration distance");
        const Index src =
            out.actor_copy[static_cast<std::size_t>(ch.from)]
                          [static_cast<std::size_t>(src_copy)];
        const Index dst = out.actor_copy[static_cast<std::size_t>(ch.to)]
                                        [static_cast<std::size_t>(j)];
        const auto key = std::make_pair(src, dst);
        const auto it = tightest.find(key);
        if (it == tightest.end() ||
            static_cast<Index>(delta) < it->second) {
          tightest[key] = static_cast<Index>(delta);
        }
      }
    }
    for (const auto& [key, delta] : tightest) {
      out.graph.add_queue(key.first, key.second, delta,
                          "ch" + std::to_string(cid));
    }
  }
  return out;
}

std::optional<double> sdf_iteration_period(const SdfGraph& graph) {
  const SrdfExpansion expansion = expand_to_srdf(graph);
  if (expansion.graph.has_zero_token_cycle()) return std::nullopt;
  return max_cycle_ratio(expansion.graph, 1e-10);
}

}  // namespace bbs::dataflow
