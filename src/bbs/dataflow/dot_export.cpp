#include "bbs/dataflow/dot_export.hpp"

#include <sstream>

#include "bbs/common/strings.hpp"

namespace bbs::dataflow {

std::string to_dot(const SrdfGraph& graph, const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n";
  os << "  rankdir=LR;\n  node [shape=circle];\n";
  for (Index v = 0; v < graph.num_actors(); ++v) {
    const Actor& a = graph.actor(v);
    os << "  a" << v << " [label=\"" << a.name << "\\nrho="
       << format_double(a.firing_duration, 3) << "\"];\n";
  }
  for (Index q = 0; q < graph.num_queues(); ++q) {
    const Queue& e = graph.queue(q);
    os << "  a" << e.from << " -> a" << e.to << " [label=\""
       << e.initial_tokens;
    if (!e.label.empty()) os << " (" << e.label << ")";
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace bbs::dataflow
