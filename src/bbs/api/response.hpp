// Typed response surface of the service API.
//
// A `Response` mirrors its request: the same kind tag and correlation id,
// a status, a typed result payload, and execution diagnostics (IPM effort,
// warm-start and symbolic-reuse counters, wall time). Responses are plain
// values with a full JSON round-trip (io/api_io.hpp); result arrays are
// ordered exactly like the request's configuration (graph i / task t /
// buffer b of the payload correspond to the same indices of the
// configuration).
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "bbs/core/budget_buffer_solver.hpp"
#include "bbs/core/latency.hpp"
#include "bbs/core/tradeoff.hpp"

namespace bbs::api {

enum class ResponseStatus {
  /// The request executed and produced at least one feasible mapping (for
  /// sweeps: at least one feasible point).
  kOk,
  /// The request executed but no probed configuration was feasible.
  kInfeasible,
  /// The request could not be executed (malformed model, contract
  /// violation, numerical failure escaping the solver); see `error`.
  kError,
};

const char* to_string(ResponseStatus status);

/// Machine-readable error taxonomy, carried alongside the human-readable
/// `error` string so clients can tell retryable failures (deadline,
/// overload, quota, shutdown) from fatal ones (parse, internal) without
/// string matching. Serialised as `error_code` in the JSON schema
/// (additive to schema v1; absent on non-error responses).
enum class ErrorCode {
  kNone,              ///< not an error response
  kParse,             ///< malformed request / invalid model (fatal)
  kOverQuota,         ///< per-client quota exceeded (retryable, backoff)
  kDeadlineExceeded,  ///< deadline expired in queue or mid-solve (retryable)
  kCancelled,         ///< cancelled via token, e.g. client gone (not retried)
  kOverloaded,        ///< shed at admission: queue over high water (retryable)
  kShuttingDown,      ///< daemon stopping (retryable against a replacement)
  kNumericalFailure,  ///< solver could not converge on this instance (fatal)
  kInternal,          ///< contract violation / unexpected exception (fatal)
};

const char* to_string(ErrorCode code);
/// Inverse of to_string; unknown strings map to kInternal, "" to kNone.
ErrorCode error_code_from_string(const std::string& code);
/// Whether a client should retry a request that failed with this code
/// (possibly after backoff / against another instance).
bool is_retryable(ErrorCode code);

/// Execution diagnostics of one request: where the time and the IPM effort
/// went, and whether the cross-solve reuse machinery was engaged.
struct Diagnostics {
  double wall_ms = 0.0;
  /// Time the request waited in the dispatcher queue before the engine
  /// started on it (0 outside the daemon — the CLI has no queue). Stamped
  /// by the dispatcher on the same clock as solve_ms so the two stages and
  /// the service latency histograms agree.
  double queue_ms = 0.0;
  /// Engine execution wall time (equals wall_ms as stamped by Engine::run;
  /// kept as a separate field so daemon responses carry queue_ms and
  /// solve_ms side by side).
  double solve_ms = 0.0;
  /// Interior-point iterations summed over every solve of this request.
  long ipm_iterations = 0;
  /// Number of IPM solves the request performed (sweep points, bisection
  /// probes, or 1 for plain solves).
  int solves = 0;
  /// How many of those solves were seeded from a previous optimum.
  int warm_started_solves = 0;
  /// How many solves failed numerically on their first attempt and were
  /// rescued by the solver's recovery ladder (see
  /// solver::SolverOptions::recovery_attempts).
  int recovered_solves = 0;
  /// Symbolic KKT factorisations of the session that served the request
  /// since it was created. Stays 1 for every request of a pooled batch that
  /// shares one problem structure — the reuse invariant.
  long symbolic_factorisations = 0;
  /// True when the request was served by a session created for an earlier
  /// request of the same structure (program build + symbolic analysis were
  /// amortised away entirely).
  bool session_reused = false;
  /// Trace id echoed back to a traced request (RequestOptions::trace);
  /// empty — and absent from the JSON — when tracing was off. The id keys
  /// the daemon's {"kind":"trace"} control line and the slow-request log.
  std::string trace_id;
};

struct SolvePayload {
  core::MappingResult mapping;
};

struct SweepPayload {
  core::TradeoffSweep sweep;
};

struct MinPeriodPayload {
  /// False when even period_hi was infeasible; `period`/`mapping` are then
  /// meaningless and the response status is kInfeasible.
  bool found = false;
  double period = 0.0;
  core::MappingResult mapping;
};

struct TwoPhasePayload {
  /// One mapping per solved capacity (buffer-first sweeps), or exactly one
  /// entry for budget-first and single-capacity buffer-first requests.
  std::vector<core::MappingResult> mappings;
};

struct LatencyPayload {
  core::MappingResult mapping;
  struct GraphBound {
    Index graph = 0;
    /// False when the rounded allocation admits no PAS at the required
    /// period (no latency bound of this form exists).
    bool has_pas = false;
    core::GraphLatency latency;
  };
  std::vector<GraphBound> graphs;
};

using ResponsePayload = std::variant<std::monostate, SolvePayload,
                                     SweepPayload, MinPeriodPayload,
                                     TwoPhasePayload, LatencyPayload>;

struct Response {
  std::string id;  ///< echoed from the request
  /// Kind tag of the request this responds to ("solve", "sweep", ...);
  /// kept even for error responses, whose payload is empty.
  std::string kind;
  ResponseStatus status = ResponseStatus::kError;
  std::string error;  ///< human-readable cause when status == kError
  /// Machine-readable cause when status == kError (kNone otherwise).
  ErrorCode error_code = ErrorCode::kNone;
  ResponsePayload payload;
  Diagnostics diagnostics;

  bool ok() const { return status == ResponseStatus::kOk; }
};

}  // namespace bbs::api
