#include "bbs/api/request.hpp"

#include "bbs/api/response.hpp"

namespace bbs::api {

namespace {

struct ConfigOf {
  template <typename T>
  const model::Configuration& operator()(const T& r) const {
    return r.configuration;
  }
};

struct MutableConfigOf {
  template <typename T>
  model::Configuration& operator()(T& r) const {
    return r.configuration;
  }
};

struct KindOf {
  const char* operator()(const SolveRequest&) const { return "solve"; }
  const char* operator()(const SweepRequest&) const { return "sweep"; }
  const char* operator()(const MinPeriodRequest&) const { return "min_period"; }
  const char* operator()(const TwoPhaseRequest&) const { return "two_phase"; }
  const char* operator()(const LatencyRequest&) const { return "latency"; }
};

}  // namespace

const model::Configuration& Request::configuration() const {
  return std::visit(ConfigOf{}, payload);
}

model::Configuration& Request::configuration() {
  return std::visit(MutableConfigOf{}, payload);
}

const char* Request::kind() const { return std::visit(KindOf{}, payload); }

const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kInfeasible:
      return "infeasible";
    case ResponseStatus::kError:
      return "error";
  }
  return "error";
}

}  // namespace bbs::api
