#include "bbs/api/request.hpp"

#include "bbs/api/response.hpp"

namespace bbs::api {

namespace {

struct ConfigOf {
  template <typename T>
  const model::Configuration& operator()(const T& r) const {
    return r.configuration;
  }
};

struct MutableConfigOf {
  template <typename T>
  model::Configuration& operator()(T& r) const {
    return r.configuration;
  }
};

struct KindOf {
  const char* operator()(const SolveRequest&) const { return "solve"; }
  const char* operator()(const SweepRequest&) const { return "sweep"; }
  const char* operator()(const MinPeriodRequest&) const { return "min_period"; }
  const char* operator()(const TwoPhaseRequest&) const { return "two_phase"; }
  const char* operator()(const LatencyRequest&) const { return "latency"; }
};

}  // namespace

const model::Configuration& Request::configuration() const {
  return std::visit(ConfigOf{}, payload);
}

model::Configuration& Request::configuration() {
  return std::visit(MutableConfigOf{}, payload);
}

const char* Request::kind() const { return std::visit(KindOf{}, payload); }

const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kInfeasible:
      return "infeasible";
    case ResponseStatus::kError:
      return "error";
  }
  return "error";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone:
      return "";
    case ErrorCode::kParse:
      return "parse";
    case ErrorCode::kOverQuota:
      return "over_quota";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kShuttingDown:
      return "shutting_down";
    case ErrorCode::kNumericalFailure:
      return "numerical_failure";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "internal";
}

ErrorCode error_code_from_string(const std::string& code) {
  if (code.empty()) return ErrorCode::kNone;
  if (code == "parse") return ErrorCode::kParse;
  if (code == "over_quota") return ErrorCode::kOverQuota;
  if (code == "deadline_exceeded") return ErrorCode::kDeadlineExceeded;
  if (code == "cancelled") return ErrorCode::kCancelled;
  if (code == "overloaded") return ErrorCode::kOverloaded;
  if (code == "shutting_down") return ErrorCode::kShuttingDown;
  if (code == "numerical_failure") return ErrorCode::kNumericalFailure;
  return ErrorCode::kInternal;
}

bool is_retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOverQuota:
    case ErrorCode::kDeadlineExceeded:
    case ErrorCode::kOverloaded:
    case ErrorCode::kShuttingDown:
      return true;
    default:
      return false;
  }
}

}  // namespace bbs::api
