#include "bbs/api/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bbs/common/assert.hpp"
#include "bbs/core/latency.hpp"
#include "bbs/core/tradeoff.hpp"
#include "bbs/core/two_phase.hpp"
#include "bbs/io/config_io.hpp"
#include "bbs/io/json.hpp"
#include "bbs/telemetry/structure_cache.hpp"

namespace bbs::api {

using linalg::Vector;

namespace {

// ---------------------------------------------------------------------------
// Pool keys
// ---------------------------------------------------------------------------
//
// Two requests may share a session exactly when the programs they would
// build are identical up to the parameters a SolverSession can rewrite in
// place: required periods always; finite capacity caps when the deltas are
// program variables (joint and budget-first modes — fixed-delta programs
// have no cap rows); committed phase-1 vectors in the two-phase modes. The
// key therefore serialises everything else verbatim — platform, topology,
// WCETs, weights, which buffers are capped — plus the build mode and the
// solver options baked into a session, and wildcards only what acquire()
// re-applies per request.

void append_num(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g;", value);
  out += buf;
}

void append_index(std::string& out, linalg::Index value) {
  out += std::to_string(value);
  out += ';';
}

/// Names are user-controlled (untrusted JSONL requests), so they are
/// length-prefixed: a name containing the key's delimiters must not make
/// two structurally different configurations collide onto one session.
void append_name(std::string& out, const std::string& name) {
  out += std::to_string(name.size());
  out += ':';
  out += name;
  out += ';';
}

/// Build mode of a pooled session. The letter goes into the pool key.
enum class Mode : char {
  kJoint = 'J',
  kBudgetFirst = 'B',
  kBufferFirst = 'F',
};

/// `sweep_graph != -1` keys the configuration as the sweep driver mutates
/// it before building: every buffer of that graph capped (at the swept
/// bound, which is wildcarded like any rewritable cap). Lets
/// request_structure_key match the engine's key without copying the
/// configuration.
std::string pool_key(const model::Configuration& config, Mode mode,
                     const RequestOptions& options, Index sweep_graph = -1) {
  // In fixed-delta programs the caps are not rewritable (no cap rows), so
  // their values stay part of the structure instead of being wildcarded.
  const bool caps_rewritable = mode != Mode::kBufferFirst;

  std::string key;
  key += static_cast<char>(mode);
  key += ';';
  append_index(key, config.granularity());
  key += "P:";
  for (Index p = 0; p < config.num_processors(); ++p) {
    const model::Processor& proc = config.processor(p);
    append_name(key, proc.name);
    append_num(key, proc.replenishment_interval);
    append_num(key, proc.scheduling_overhead);
  }
  key += "M:";
  for (Index m = 0; m < config.num_memories(); ++m) {
    const model::Memory& mem = config.memory(m);
    append_name(key, mem.name);
    append_num(key, mem.capacity);
  }
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    key += "G:";
    append_name(key, tg.name());
    // required_period: wildcarded (re-applied per request).
    for (Index t = 0; t < tg.num_tasks(); ++t) {
      const model::Task& task = tg.task(t);
      key += "t:";
      append_name(key, task.name);
      append_index(key, task.processor);
      append_num(key, task.wcet);
      append_num(key, task.budget_weight);
    }
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const model::Buffer& buf = tg.buffer(b);
      key += "b:";
      append_name(key, buf.name);
      append_index(key, buf.producer);
      append_index(key, buf.consumer);
      append_index(key, buf.memory);
      append_index(key, buf.container_size);
      append_index(key, buf.initial_fill);
      append_num(key, buf.size_weight);
      if (gi == sweep_graph) {
        key += "c;";  // swept: capped at the (wildcarded) swept bound
      } else if (buf.max_capacity == -1) {
        key += "u;";  // uncapped: no cap row exists
      } else if (caps_rewritable) {
        key += "c;";  // capped: cap row exists, value re-applied per request
      } else {
        key += "c=";
        append_index(key, buf.max_capacity);
      }
    }
  }

  // Solver options are baked into a session (IpmSolver construction and the
  // rounding tail), so they are part of the key, not wildcards.
  const solver::SolverOptions& ipm = options.ipm;
  key += "O:";
  append_index(key, ipm.max_iterations);
  append_num(key, ipm.feas_tol);
  append_num(key, ipm.gap_tol);
  append_index(key, ipm.stall_iterations);
  append_num(key, ipm.step_fraction);
  append_index(key, ipm.refine_steps);
  append_num(key, ipm.static_regularisation);
  append_index(key, static_cast<linalg::Index>(ipm.ordering));
  append_index(key, ipm.equilibrate_rounds);
  key += ipm.warm_start ? '1' : '0';
  append_num(key, ipm.warm_start_margin);
  append_index(key, ipm.recovery_attempts);
  append_num(key, ipm.recovery_regularisation_growth);
  append_num(key, options.rounding_eps);
  return key;
}

/// Re-applies the wildcarded parameters of `config` to a pooled session:
/// every graph's required period, and — when the session's program carries
/// cap rows — every finite buffer cap. Brings the session's configuration
/// into exact agreement with `config` (everything else matched via the
/// pool key). Fixed phase-1 vectors are re-committed by the per-kind
/// drivers, which derive them from the request anyway.
void reapply_parameters(core::SolverSession& session,
                        const model::Configuration& config,
                        bool caps_rewritable) {
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    session.set_required_period(gi, tg.required_period());
    if (!caps_rewritable) continue;
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const Index cap = tg.buffer(b).max_capacity;
      if (cap != -1) session.set_buffer_cap(gi, b, cap);
    }
  }
}

struct WorkspaceSnapshot {
  int solves = 0;
  long iterations = 0;
  int warm_started = 0;
  int recovered = 0;
};

WorkspaceSnapshot snapshot(const core::SolverSession& session) {
  const solver::IpmWorkspace& ws = session.workspace();
  return {ws.solves(), ws.total_iterations(), ws.warm_started_solves(),
          ws.recovered_solves()};
}

// ---------------------------------------------------------------------------
// Persistent-cache session payloads
// ---------------------------------------------------------------------------
//
// The structure cache stores, next to the symbolic analysis, everything
// needed to reconstruct an equivalent pooled session at startup: the
// session's configuration (post any driver mutations — sweep caps, probe
// ceilings) and the session options that shape the built program. The
// payload is opaque to the telemetry layer; this is its one producer and
// consumer. Doubles round-trip exactly (%.17g both ways).

io::JsonValue vectors_to_json(const std::vector<Vector>& vectors) {
  io::JsonArray outer;
  outer.reserve(vectors.size());
  for (const Vector& vec : vectors) {
    io::JsonArray inner;
    inner.reserve(vec.size());
    for (const double v : vec) inner.emplace_back(v);
    outer.emplace_back(std::move(inner));
  }
  return io::JsonValue(std::move(outer));
}

std::vector<Vector> vectors_from_json(const io::JsonValue& value) {
  std::vector<Vector> vectors;
  for (const io::JsonValue& inner : value.as_array()) {
    Vector vec;
    vec.reserve(inner.as_array().size());
    for (const io::JsonValue& v : inner.as_array()) {
      vec.push_back(v.as_number());
    }
    vectors.push_back(std::move(vec));
  }
  return vectors;
}

io::JsonValue session_payload_to_json(const core::SolverSession& session) {
  const core::SessionOptions& options = session.options();
  const solver::SolverOptions& ipm = options.mapping.ipm;

  io::JsonObject ipm_json;
  ipm_json["max_iterations"] = static_cast<long long>(ipm.max_iterations);
  ipm_json["feas_tol"] = ipm.feas_tol;
  ipm_json["gap_tol"] = ipm.gap_tol;
  ipm_json["stall_iterations"] =
      static_cast<long long>(ipm.stall_iterations);
  ipm_json["step_fraction"] = ipm.step_fraction;
  ipm_json["refine_steps"] = static_cast<long long>(ipm.refine_steps);
  ipm_json["static_regularisation"] = ipm.static_regularisation;
  ipm_json["ordering"] = static_cast<long long>(ipm.ordering);
  ipm_json["equilibrate_rounds"] =
      static_cast<long long>(ipm.equilibrate_rounds);
  ipm_json["warm_start"] = ipm.warm_start;
  ipm_json["warm_start_margin"] = ipm.warm_start_margin;
  ipm_json["recovery_attempts"] =
      static_cast<long long>(ipm.recovery_attempts);
  ipm_json["recovery_regularisation_growth"] =
      ipm.recovery_regularisation_growth;

  io::JsonObject payload;
  payload["configuration"] =
      io::configuration_to_json_value(session.config());
  payload["ipm"] = io::JsonValue(std::move(ipm_json));
  payload["rounding_eps"] = options.mapping.rounding_eps;
  if (options.build.fixed_budgets) {
    payload["fixed_budgets"] = vectors_to_json(*options.build.fixed_budgets);
  }
  if (options.build.fixed_deltas) {
    payload["fixed_deltas"] = vectors_to_json(*options.build.fixed_deltas);
  }
  return io::JsonValue(std::move(payload));
}

/// Inverse of session_payload_to_json. Throws on malformed payloads (the
/// caller converts that into a counted prewarm error).
void session_payload_from_json(const io::JsonValue& payload,
                               model::Configuration* config,
                               core::SessionOptions* options) {
  const io::JsonObject& object = payload.as_object();
  *config = io::configuration_from_json_value(object.at("configuration"));

  // Mirrors the base options run_checked() bakes into every session:
  // verification off, per-execution wildcards cleared.
  core::SessionOptions base;
  base.mapping.verify = false;
  solver::SolverOptions& ipm = base.mapping.ipm;
  const io::JsonObject& ipm_json = object.at("ipm").as_object();
  ipm.max_iterations =
      static_cast<int>(ipm_json.at("max_iterations").as_number());
  ipm.feas_tol = ipm_json.at("feas_tol").as_number();
  ipm.gap_tol = ipm_json.at("gap_tol").as_number();
  ipm.stall_iterations =
      static_cast<int>(ipm_json.at("stall_iterations").as_number());
  ipm.step_fraction = ipm_json.at("step_fraction").as_number();
  ipm.refine_steps = static_cast<int>(ipm_json.at("refine_steps").as_number());
  ipm.static_regularisation =
      ipm_json.at("static_regularisation").as_number();
  ipm.ordering = static_cast<linalg::OrderingMethod>(
      static_cast<int>(ipm_json.at("ordering").as_number()));
  ipm.equilibrate_rounds =
      static_cast<int>(ipm_json.at("equilibrate_rounds").as_number());
  ipm.warm_start = ipm_json.at("warm_start").as_bool();
  ipm.warm_start_margin = ipm_json.at("warm_start_margin").as_number();
  ipm.recovery_attempts =
      static_cast<int>(ipm_json.at("recovery_attempts").as_number());
  ipm.recovery_regularisation_growth =
      ipm_json.at("recovery_regularisation_growth").as_number();
  ipm.time_limit_ms = 0.0;
  ipm.deadline = solver::CancelToken::Clock::time_point::max();
  ipm.cancel = nullptr;
  ipm.fail_at_iteration = -1;
  ipm.fail_only_first_attempt = false;
  ipm.trace_sink = nullptr;

  base.mapping.rounding_eps = object.at("rounding_eps").as_number();
  if (object.contains("fixed_budgets")) {
    base.build.fixed_budgets = vectors_from_json(object.at("fixed_budgets"));
  }
  if (object.contains("fixed_deltas")) {
    base.build.fixed_deltas = vectors_from_json(object.at("fixed_deltas"));
  }
  *options = std::move(base);
}

}  // namespace

std::string request_structure_key(const Request& request) {
  const RequestOptions& opts = request.options;
  if (const auto* r = std::get_if<SweepRequest>(&request.payload)) {
    return pool_key(r->configuration, Mode::kJoint, opts, r->graph);
  }
  if (const auto* r = std::get_if<MinPeriodRequest>(&request.payload)) {
    // Budget-first sessions are keyed at the probe ceiling's configuration,
    // but periods are wildcards, so the original configuration keys
    // identically.
    return pool_key(r->configuration,
                    r->flow == MinPeriodRequest::Flow::kBudgetFirst
                        ? Mode::kBudgetFirst
                        : Mode::kJoint,
                    opts);
  }
  if (const auto* r = std::get_if<TwoPhaseRequest>(&request.payload)) {
    return pool_key(r->configuration,
                    r->mode == TwoPhaseRequest::Mode::kBudgetFirst
                        ? Mode::kBudgetFirst
                        : Mode::kBufferFirst,
                    opts);
  }
  return pool_key(request.configuration(), Mode::kJoint, opts);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

struct Engine::PooledSession {
  std::string key;
  core::SolverSession session;
  std::uint64_t last_used = 0;
  bool hit = false;  ///< true when the last acquire() found it in the pool

  PooledSession(std::string k, const model::Configuration& config,
                core::SessionOptions options)
      : key(std::move(k)), session(config, std::move(options)) {}
};

Engine::Engine(EngineOptions options) : options_(options) {}
Engine::~Engine() = default;
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;

void Engine::clear_pool() {
  pool_.clear();
  last_session_ = nullptr;
}

Engine::PooledSession& Engine::acquire(const std::string& key,
                                       const model::Configuration& config,
                                       core::SessionOptions session_options) {
  for (auto& pooled : pool_) {
    if (pooled->key == key) {
      pooled->last_used = ++clock_;
      pooled->hit = true;
      ++stats_.pool_hits;
      last_session_ = pooled.get();
      return *pooled;
    }
  }
  ++stats_.pool_misses;
  // Miss: make room first so the pool never exceeds its bound. With
  // pooling disabled (max 0) the fresh session still lives in the pool for
  // the duration of this request; run() clears it afterwards.
  if (options_.max_pool_sessions > 0) {
    while (pool_.size() >= options_.max_pool_sessions) trim_pool();
  }
  auto pooled = std::make_unique<PooledSession>(key, config,
                                               std::move(session_options));
  pooled->last_used = ++clock_;
  pooled->hit = false;
  // A cache entry for this structure (written by a previous process or a
  // sibling engine) seeds the fresh session's symbolic analysis: the first
  // solve skips the fill-reducing ordering. Validated downstream; a stale
  // entry degrades to a full derivation, never an error.
  if (options_.structure_cache != nullptr) {
    if (std::optional<telemetry::CacheEntry> entry =
            options_.structure_cache->lookup(key)) {
      pooled->session.seed_symbolic(std::move(entry->symbolic));
    }
  }
  pool_.push_back(std::move(pooled));
  last_session_ = pool_.back().get();
  return *pool_.back();
}

Engine::PooledSession& Engine::acquire_controlled(
    const std::string& key, const model::Configuration& config,
    core::SessionOptions session_options) {
  PooledSession& pooled =
      acquire(key, config, std::move(session_options));
  // Installed unconditionally — on hits it replaces whatever control the
  // previous request left behind, on misses it arms the fresh session.
  pooled.session.set_solve_control(control_);
  return pooled;
}

void Engine::trim_pool() {
  if (pool_.empty()) return;
  const auto lru = std::min_element(
      pool_.begin(), pool_.end(), [](const auto& a, const auto& b) {
        return a->last_used < b->last_used;
      });
  if (lru->get() == last_session_) last_session_ = nullptr;
  pool_.erase(lru);
  ++stats_.evictions;
}

Response Engine::run(const Request& request) {
  Deadline deadline = Deadline::max();
  if (request.options.deadline_ms > 0.0) {
    deadline = solver::CancelToken::Clock::now() +
               std::chrono::duration_cast<solver::CancelToken::Clock::duration>(
                   std::chrono::duration<double, std::milli>(
                       request.options.deadline_ms));
  }
  return run(request, deadline, nullptr);
}

Response Engine::run(const Request& request, Deadline deadline,
                     std::shared_ptr<solver::CancelToken> cancel) {
  const auto start = std::chrono::steady_clock::now();
  last_session_ = nullptr;

  // Per-execution interruption control, installed on every session this
  // request acquires. The caller's deadline (which may predate this call by
  // the request's queue wait) wins over options.deadline_ms-derived ones;
  // per-solve limits and failpoints ride along from the request options.
  control_ = core::SolveControl{};
  control_.time_limit_ms = request.options.ipm.time_limit_ms;
  control_.deadline = deadline;
  control_.cancel =
      cancel != nullptr ? std::move(cancel) : request.options.ipm.cancel;
  control_.fail_at_iteration = request.options.ipm.fail_at_iteration;
  control_.fail_only_first_attempt =
      request.options.ipm.fail_only_first_attempt;
  control_.trace_sink = request.options.ipm.trace_sink;

  Response response;
  const auto fail = [&](ErrorCode code, const char* what) {
    response = Response{};
    response.status = ResponseStatus::kError;
    response.error = what;
    response.error_code = code;
  };
  try {
    response = run_checked(request);
  } catch (const DeadlineExceeded& e) {
    fail(ErrorCode::kDeadlineExceeded, e.what());
  } catch (const Cancelled& e) {
    fail(ErrorCode::kCancelled, e.what());
  } catch (const ModelError& e) {
    fail(ErrorCode::kParse, e.what());
  } catch (const NumericalError& e) {
    fail(ErrorCode::kNumericalFailure, e.what());
  } catch (const std::exception& e) {
    fail(ErrorCode::kInternal, e.what());
  }
  response.id = request.id;
  response.kind = request.kind();
  response.diagnostics.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  // Engine wall time is the solve stage; the dispatcher adds the queue
  // stage on top so daemon responses split the two on one clock.
  response.diagnostics.solve_ms = response.diagnostics.wall_ms;
  maybe_save_to_cache(response);
  if (options_.max_pool_sessions == 0) clear_pool();

  ++stats_.requests;
  switch (response.status) {
    case ResponseStatus::kOk:
      ++stats_.ok;
      break;
    case ResponseStatus::kInfeasible:
      ++stats_.infeasible;
      break;
    case ResponseStatus::kError:
      ++stats_.errors;
      break;
  }
  const Diagnostics& diag = response.diagnostics;
  stats_.ipm_iterations += diag.ipm_iterations;
  stats_.solves += static_cast<std::uint64_t>(diag.solves);
  stats_.warm_started_solves +=
      static_cast<std::uint64_t>(diag.warm_started_solves);
  stats_.recovered_solves += static_cast<std::uint64_t>(diag.recovered_solves);
  // Each fresh session runs exactly one symbolic analysis (its diagnostics
  // report the session-lifetime count, which is 1 on the request that
  // created it); pooled repeats add none.
  if (!diag.session_reused) {
    stats_.symbolic_factorisations +=
        static_cast<std::uint64_t>(diag.symbolic_factorisations);
  }
  return response;
}

void Engine::maybe_save_to_cache(const Response& response) {
  if (options_.structure_cache == nullptr || last_session_ == nullptr) return;
  // Only the request that derived a structure (pool miss, request served to
  // completion) writes it; errors may leave the session without a bound
  // workspace or with a half-configured program.
  if (last_session_->hit || response.status == ResponseStatus::kError) return;
  if (options_.structure_cache->contains(last_session_->key)) return;
  std::optional<solver::SymbolicAnalysis> symbolic =
      last_session_->session.export_symbolic();
  if (!symbolic) return;
  try {
    telemetry::CacheEntry entry;
    entry.key = last_session_->key;
    entry.symbolic = std::move(*symbolic);
    entry.session = session_payload_to_json(last_session_->session);
    options_.structure_cache->store(std::move(entry));
  } catch (const std::exception&) {
    // Cache writes are best-effort; a serialisation failure must never
    // affect the response.
  }
}

bool Engine::prewarm_entry(const telemetry::CacheEntry& entry) {
  try {
    model::Configuration config;
    core::SessionOptions session_options;
    session_payload_from_json(entry.session, &config, &session_options);
    config.validate();
    // Make room exactly like a miss would, then install the session under
    // the entry's stored key with hit=false: the first real request finds
    // it (pool hit, session_reused=true) and its first solve loads the
    // seeded symbolic analysis instead of deriving one.
    if (options_.max_pool_sessions > 0) {
      while (pool_.size() >= options_.max_pool_sessions) trim_pool();
    }
    auto pooled = std::make_unique<PooledSession>(
        entry.key, config, std::move(session_options));
    pooled->last_used = ++clock_;
    pooled->hit = false;
    pooled->session.seed_symbolic(entry.symbolic);
    pool_.push_back(std::move(pooled));
    ++stats_.prewarmed_sessions;
    return true;
  } catch (const std::exception&) {
    if (options_.structure_cache != nullptr) {
      options_.structure_cache->note_prewarm_error();
    }
    return false;
  }
}

std::vector<Response> Engine::run_batch(const std::vector<Request>& requests) {
  std::vector<Response> responses;
  responses.reserve(requests.size());
  for (const Request& request : requests) {
    responses.push_back(run(request));
  }
  return responses;
}

Response Engine::run_checked(const Request& request) {
  const RequestOptions& opts = request.options;
  request.configuration().validate();

  // Sessions never verify per solve: bisection probes and sweep points are
  // feasibility queries, and the engine verifies exactly the mappings a
  // response hands back (when the request asks for verification at all).
  core::SessionOptions base;
  base.mapping.ipm = opts.ipm;
  base.mapping.rounding_eps = opts.rounding_eps;
  base.mapping.verify = false;
  // Per-execution state never bakes into a session: deadlines, tokens and
  // failpoints are wildcards of the pool key (requests differing only in
  // them share sessions) and are (re)installed on every acquire via
  // SolveControl instead.
  base.mapping.ipm.time_limit_ms = 0.0;
  base.mapping.ipm.deadline = solver::CancelToken::Clock::time_point::max();
  base.mapping.ipm.cancel = nullptr;
  base.mapping.ipm.fail_at_iteration = -1;
  base.mapping.ipm.fail_only_first_attempt = false;
  base.mapping.ipm.trace_sink = nullptr;

  Response response;
  Diagnostics& diag = response.diagnostics;

  const auto finish_diag = [&diag](const PooledSession& pooled,
                                   const WorkspaceSnapshot& before) {
    const solver::IpmWorkspace& ws = pooled.session.workspace();
    diag.solves = ws.solves() - before.solves;
    diag.ipm_iterations = ws.total_iterations() - before.iterations;
    diag.warm_started_solves = ws.warm_started_solves() - before.warm_started;
    diag.recovered_solves = ws.recovered_solves() - before.recovered;
    diag.symbolic_factorisations =
        ws.kkt() != nullptr ? ws.kkt()->stats().symbolic_factorisations : 0;
    diag.session_reused = pooled.hit;
  };

  if (const auto* r = std::get_if<SolveRequest>(&request.payload)) {
    PooledSession& pooled =
        acquire_controlled(pool_key(r->configuration, Mode::kJoint, opts),
                r->configuration, base);
    if (pooled.hit) {
      reapply_parameters(pooled.session, r->configuration,
                         /*caps_rewritable=*/true);
    }
    const WorkspaceSnapshot before = snapshot(pooled.session);
    core::MappingResult mapping = pooled.session.solve();
    core::throw_if_interrupted(mapping);
    if (mapping.status == solver::SolveStatus::kNumericalFailure) {
      // A lone solve has no bracket to fall back on: a numerical breakdown
      // is neither a solution nor an infeasibility certificate, so surface
      // it as a structured hard error instead of claiming "infeasible".
      throw NumericalError("interior-point solve failed to converge");
    }
    if (opts.verify) core::verify_mapping(pooled.session.config(), mapping);
    response.status = mapping.feasible() ? ResponseStatus::kOk
                                         : ResponseStatus::kInfeasible;
    response.payload = SolvePayload{std::move(mapping)};
    finish_diag(pooled, before);

  } else if (const auto* r = std::get_if<SweepRequest>(&request.payload)) {
    BBS_REQUIRE(r->graph >= 0 &&
                    r->graph < r->configuration.num_task_graphs(),
                "SweepRequest: graph index out of range");
    BBS_REQUIRE(r->cap_lo >= 1 && r->cap_hi >= r->cap_lo,
                "SweepRequest: need 1 <= cap_lo <= cap_hi");
    // The swept graph's buffers are capped at cap_lo so the cap rows exist
    // in the built program, exactly like the free-function driver.
    model::Configuration session_config = r->configuration;
    model::TaskGraph& tg = session_config.mutable_task_graph(r->graph);
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      tg.set_max_capacity(b, r->cap_lo);
    }
    PooledSession& pooled =
        acquire_controlled(pool_key(session_config, Mode::kJoint, opts), session_config,
                base);
    if (pooled.hit) {
      reapply_parameters(pooled.session, session_config,
                         /*caps_rewritable=*/true);
    }
    const WorkspaceSnapshot before = snapshot(pooled.session);
    core::TradeoffSweep sweep =
        core::sweep_max_capacity(pooled.session, r->graph, r->cap_lo,
                                 r->cap_hi);
    const bool any_feasible =
        std::any_of(sweep.points.begin(), sweep.points.end(),
                    [](const core::TradeoffPoint& p) { return p.feasible; });
    response.status =
        any_feasible ? ResponseStatus::kOk : ResponseStatus::kInfeasible;
    response.payload = SweepPayload{std::move(sweep)};
    finish_diag(pooled, before);

  } else if (const auto* r = std::get_if<MinPeriodRequest>(&request.payload)) {
    BBS_REQUIRE(r->graph >= 0 &&
                    r->graph < r->configuration.num_task_graphs(),
                "MinPeriodRequest: graph index out of range");
    std::optional<core::MinimalPeriodResult> found;
    if (r->flow == MinPeriodRequest::Flow::kJoint) {
      PooledSession& pooled =
          acquire_controlled(pool_key(r->configuration, Mode::kJoint, opts),
                  r->configuration, base);
      if (pooled.hit) {
        reapply_parameters(pooled.session, r->configuration,
                           /*caps_rewritable=*/true);
      }
      const WorkspaceSnapshot before = snapshot(pooled.session);
      found = core::minimal_feasible_period(pooled.session, r->graph,
                                            r->period_hi, r->rel_tol,
                                            opts.verify);
      finish_diag(pooled, before);
    } else {
      // Budget-first: the session is built (or re-committed) with the
      // phase-1 budgets of the probe ceiling, like the free-function
      // driver.
      model::Configuration at_hi = r->configuration;
      at_hi.mutable_task_graph(r->graph).set_required_period(r->period_hi);
      const std::vector<Vector> budgets =
          core::budget_first_budgets(at_hi, opts.rounding_eps);
      core::SessionOptions bf = base;
      bf.build.fixed_budgets = budgets;
      PooledSession& pooled = acquire(
          pool_key(at_hi, Mode::kBudgetFirst, opts), at_hi, std::move(bf));
      if (pooled.hit) {
        reapply_parameters(pooled.session, at_hi, /*caps_rewritable=*/true);
        for (Index gi = 0; gi < at_hi.num_task_graphs(); ++gi) {
          pooled.session.set_fixed_budgets(
              gi, budgets[static_cast<std::size_t>(gi)]);
        }
      }
      const WorkspaceSnapshot before = snapshot(pooled.session);
      found = core::minimal_feasible_period_budget_first(
          pooled.session, r->graph, r->period_hi, r->rel_tol,
          opts.rounding_eps, opts.verify);
      finish_diag(pooled, before);
    }
    MinPeriodPayload payload;
    payload.found = found.has_value();
    if (found) {
      payload.period = found->period;
      payload.mapping = std::move(found->mapping);
    }
    response.status = payload.found ? ResponseStatus::kOk
                                    : ResponseStatus::kInfeasible;
    response.payload = std::move(payload);

  } else if (const auto* r = std::get_if<TwoPhaseRequest>(&request.payload)) {
    TwoPhasePayload payload;
    if (r->mode == TwoPhaseRequest::Mode::kBudgetFirst) {
      const std::vector<Vector> budgets =
          core::budget_first_budgets(r->configuration, opts.rounding_eps);
      core::SessionOptions bf = base;
      bf.build.fixed_budgets = budgets;
      PooledSession& pooled =
          acquire_controlled(pool_key(r->configuration, Mode::kBudgetFirst, opts),
                  r->configuration, std::move(bf));
      if (pooled.hit) {
        reapply_parameters(pooled.session, r->configuration,
                           /*caps_rewritable=*/true);
        for (Index gi = 0; gi < r->configuration.num_task_graphs(); ++gi) {
          pooled.session.set_fixed_budgets(
              gi, budgets[static_cast<std::size_t>(gi)]);
        }
      }
      const WorkspaceSnapshot before = snapshot(pooled.session);
      payload.mappings.push_back(pooled.session.solve());
      core::throw_if_interrupted(payload.mappings.back());
      if (opts.verify) {
        core::verify_mapping(pooled.session.config(), payload.mappings.back());
      }
      finish_diag(pooled, before);
    } else {
      const Index cap_hi = r->cap_hi == -1 ? r->cap_lo : r->cap_hi;
      BBS_REQUIRE(r->cap_lo >= 1 && cap_hi >= r->cap_lo,
                  "TwoPhaseRequest: need 1 <= cap_lo <= cap_hi");
      core::SessionOptions bf = base;
      bf.build.fixed_deltas =
          core::buffer_first_deltas(r->configuration, r->cap_lo);
      PooledSession& pooled =
          acquire_controlled(pool_key(r->configuration, Mode::kBufferFirst, opts),
                  r->configuration, std::move(bf));
      if (pooled.hit) {
        // Fixed-delta programs have no cap rows; the caps are part of the
        // pool key instead, so only the periods need re-applying. The sweep
        // driver re-commits the token counts per capacity.
        reapply_parameters(pooled.session, r->configuration,
                           /*caps_rewritable=*/false);
      }
      const WorkspaceSnapshot before = snapshot(pooled.session);
      payload.mappings = core::sweep_buffer_first(pooled.session,
                                                  r->configuration, r->cap_lo,
                                                  cap_hi);
      if (opts.verify) {
        for (core::MappingResult& mapping : payload.mappings) {
          core::verify_mapping(pooled.session.config(), mapping);
        }
      }
      finish_diag(pooled, before);
    }
    const bool any_feasible =
        std::any_of(payload.mappings.begin(), payload.mappings.end(),
                    [](const core::MappingResult& m) { return m.feasible(); });
    response.status =
        any_feasible ? ResponseStatus::kOk : ResponseStatus::kInfeasible;
    response.payload = std::move(payload);

  } else if (const auto* r = std::get_if<LatencyRequest>(&request.payload)) {
    BBS_REQUIRE(r->graph == -1 ||
                    (r->graph >= 0 &&
                     r->graph < r->configuration.num_task_graphs()),
                "LatencyRequest: graph index out of range");
    PooledSession& pooled =
        acquire_controlled(pool_key(r->configuration, Mode::kJoint, opts),
                r->configuration, base);
    if (pooled.hit) {
      reapply_parameters(pooled.session, r->configuration,
                         /*caps_rewritable=*/true);
    }
    const WorkspaceSnapshot before = snapshot(pooled.session);
    LatencyPayload payload;
    payload.mapping = pooled.session.solve();
    core::throw_if_interrupted(payload.mapping);
    if (opts.verify) {
      core::verify_mapping(pooled.session.config(), payload.mapping);
    }
    if (payload.mapping.feasible()) {
      const model::Configuration& config = pooled.session.config();
      const Index first = r->graph == -1 ? 0 : r->graph;
      const Index last =
          r->graph == -1 ? config.num_task_graphs() - 1 : r->graph;
      for (Index gi = first; gi <= last; ++gi) {
        const core::MappedGraph& mg =
            payload.mapping.graphs[static_cast<std::size_t>(gi)];
        Vector budgets;
        std::vector<Index> capacities;
        for (const core::TaskAllocation& t : mg.tasks) {
          budgets.push_back(static_cast<double>(t.budget));
        }
        for (const core::BufferAllocation& b : mg.buffers) {
          capacities.push_back(b.capacity);
        }
        const std::optional<core::GraphLatency> latency =
            core::compute_latency_bounds(config, gi, budgets, capacities);
        LatencyPayload::GraphBound bound;
        bound.graph = gi;
        bound.has_pas = latency.has_value();
        if (latency) bound.latency = *latency;
        payload.graphs.push_back(std::move(bound));
      }
    }
    response.status = payload.mapping.feasible() ? ResponseStatus::kOk
                                                 : ResponseStatus::kInfeasible;
    response.payload = std::move(payload);
    finish_diag(pooled, before);
  }

  return response;
}

}  // namespace bbs::api
