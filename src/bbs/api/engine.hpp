// Batched, session-pooled execution of service requests.
//
// The Engine is the one entry point behind the service API: it routes every
// `Request` kind to the core drivers and owns a pool of warm
// `core::SolverSession`s keyed by *problem structure* — the part of a
// configuration that determines the built program's sparsity pattern, cone
// and variable layout (platform, graph topology, WCETs, weights, which
// buffers are capped), together with the build mode (joint / fixed budgets
// / fixed deltas) and the solver options baked into a session.
//
// Requests whose configurations share a structure are served by one pooled
// session: the program build, the symbolic KKT factorisation and the warm
// starts of PR 2/3 are amortised across the whole batch
// (diagnostics.symbolic_factorisations == 1 for every such request), while
// the parameters that may legitimately differ between them — required
// periods, finite capacity caps, committed phase-1 vectors — are re-applied
// in place before each request runs. Structures that differ simply miss the
// pool and get a fresh session: the fallback is a cold solve, never an
// error.
//
// The Engine is sequential and not thread-safe: one engine serves one
// request at a time (matching the underlying sessions). Run several engines
// for parallelism.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bbs/api/request.hpp"
#include "bbs/api/response.hpp"
#include "bbs/core/solver_session.hpp"

namespace bbs::telemetry {
class StructureCache;
struct CacheEntry;
}  // namespace bbs::telemetry

namespace bbs::api {

struct EngineOptions {
  /// Upper bound on pooled sessions kept warm; the least recently used
  /// session is evicted beyond it. 0 disables pooling (every request is a
  /// fresh, cold solve — the explicit fallback behaviour, useful for
  /// apples-to-apples benchmarking).
  std::size_t max_pool_sessions = 16;
  /// Optional persistent structure cache (not owned; must outlive the
  /// engine; safe to share between engines). When set, a pool miss seeds
  /// the fresh session's symbolic analysis from a matching cache entry, and
  /// every structure solved for the first time is written behind to the
  /// cache. nullptr disables persistence entirely.
  telemetry::StructureCache* structure_cache = nullptr;
};

/// Cumulative counters of one engine since construction (clear_pool() does
/// not reset them). The service layer snapshots these per worker.
struct EngineStats {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t infeasible = 0;
  std::uint64_t errors = 0;
  /// Requests served by a session created for an earlier request of the
  /// same structure (program build + symbolic analysis fully amortised).
  std::uint64_t pool_hits = 0;
  /// Requests that created a fresh session (cold solve).
  std::uint64_t pool_misses = 0;
  /// Warm sessions dropped by the LRU bound.
  std::uint64_t evictions = 0;
  /// One-time symbolic KKT factorisations performed across all sessions the
  /// engine created: 1 per distinct problem structure while it stays
  /// pooled — the amortisation invariant, observable end to end.
  std::uint64_t symbolic_factorisations = 0;
  /// Interior-point iterations and solves summed over every request.
  long long ipm_iterations = 0;
  std::uint64_t solves = 0;
  std::uint64_t warm_started_solves = 0;
  /// Solves whose initial IPM attempt failed numerically but whose recovery
  /// ladder produced a usable answer — the production recovery rate.
  std::uint64_t recovered_solves = 0;
  /// Sessions reconstructed at startup from the persistent structure cache
  /// (prewarm_entry). Their first real request is a pool hit and their
  /// symbolic analysis is loaded, not derived — so they contribute nothing
  /// to symbolic_factorisations.
  std::uint64_t prewarmed_sessions = 0;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();
  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;

  /// Absolute steady-clock deadline of one request execution.
  using Deadline = solver::CancelToken::Clock::time_point;

  /// Executes one request. Model/usage/numerical errors never escape: they
  /// come back as a Response with status kError and the cause in `error` /
  /// `error_code`. A request with options.deadline_ms > 0 gets an absolute
  /// deadline of now + deadline_ms.
  Response run(const Request& request);

  /// Executes one request against a caller-supplied absolute deadline
  /// (lets a service account for time already spent queueing) and an
  /// optional shared cancellation token (e.g. flipped when the client
  /// disconnects). Deadline::max() disables the deadline. Expiry terminates
  /// within one IPM iteration and comes back as a structured
  /// `deadline_exceeded` (resp. `cancelled`) error response; the pooled
  /// session that served the request stays warm and reusable.
  Response run(const Request& request, Deadline deadline,
               std::shared_ptr<solver::CancelToken> cancel);

  /// Executes the requests in order through the session pool. Equivalent to
  /// calling run() per element; one vector entry per request, same order.
  std::vector<Response> run_batch(const std::vector<Request>& requests);

  /// Number of sessions currently kept warm.
  std::size_t pooled_sessions() const { return pool_.size(); }
  /// Drops every pooled session (subsequent requests start cold).
  void clear_pool();

  /// Cumulative execution counters (not reset by clear_pool()).
  const EngineStats& stats() const { return stats_; }

  const EngineOptions& options() const { return options_; }

  /// Reconstructs a pooled session from a persistent-cache entry and seeds
  /// its symbolic analysis, so the first request of that structure is a
  /// pool hit with zero symbolic derivations. Intended for startup (before
  /// the engine serves traffic). Returns false — after counting the failure
  /// on the cache — when the entry's session payload does not reconstruct;
  /// never throws.
  bool prewarm_entry(const telemetry::CacheEntry& entry);

 private:
  struct PooledSession;

  PooledSession& acquire(const std::string& key,
                         const model::Configuration& session_config,
                         core::SessionOptions session_options);
  /// acquire() plus installation of the current request's SolveControl on
  /// the session (deadline / cancel token / injected fault).
  PooledSession& acquire_controlled(const std::string& key,
                                    const model::Configuration& session_config,
                                    core::SessionOptions session_options);
  void trim_pool();

  Response run_checked(const Request& request);

  /// Writes the session that served the last request behind to the
  /// structure cache (first derivation of its structure only).
  void maybe_save_to_cache(const Response& response);

  EngineOptions options_;
  std::vector<std::unique_ptr<PooledSession>> pool_;
  std::uint64_t clock_ = 0;  ///< LRU stamp source
  /// The pooled session the current/last request ran on (owned by pool_;
  /// cleared when the pool is). Used for the post-request cache save.
  PooledSession* last_session_ = nullptr;
  EngineStats stats_;
  /// Interruption control of the request currently executing; installed on
  /// every session acquire() so pooled sessions never carry one request's
  /// deadline or token into the next.
  core::SolveControl control_;
};

/// The pool key the engine would file `request` under: a serialisation of
/// the request's problem structure (build mode, platform, topology, weights,
/// capped-buffer set, solver options) with the per-request parameters —
/// required periods, rewritable capacity caps, phase-1 vectors — wildcarded.
/// Two requests with equal keys share a warm session inside one engine; the
/// service dispatcher hashes this key to route requests of one structure to
/// the worker whose pool already holds it (structure affinity).
std::string request_structure_key(const Request& request);

}  // namespace bbs::api
