// Batched, session-pooled execution of service requests.
//
// The Engine is the one entry point behind the service API: it routes every
// `Request` kind to the core drivers and owns a pool of warm
// `core::SolverSession`s keyed by *problem structure* — the part of a
// configuration that determines the built program's sparsity pattern, cone
// and variable layout (platform, graph topology, WCETs, weights, which
// buffers are capped), together with the build mode (joint / fixed budgets
// / fixed deltas) and the solver options baked into a session.
//
// Requests whose configurations share a structure are served by one pooled
// session: the program build, the symbolic KKT factorisation and the warm
// starts of PR 2/3 are amortised across the whole batch
// (diagnostics.symbolic_factorisations == 1 for every such request), while
// the parameters that may legitimately differ between them — required
// periods, finite capacity caps, committed phase-1 vectors — are re-applied
// in place before each request runs. Structures that differ simply miss the
// pool and get a fresh session: the fallback is a cold solve, never an
// error.
//
// The Engine is sequential and not thread-safe: one engine serves one
// request at a time (matching the underlying sessions). Run several engines
// for parallelism.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bbs/api/request.hpp"
#include "bbs/api/response.hpp"
#include "bbs/core/solver_session.hpp"

namespace bbs::api {

struct EngineOptions {
  /// Upper bound on pooled sessions kept warm; the least recently used
  /// session is evicted beyond it. 0 disables pooling (every request is a
  /// fresh, cold solve — the explicit fallback behaviour, useful for
  /// apples-to-apples benchmarking).
  std::size_t max_pool_sessions = 16;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();
  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;

  /// Executes one request. Model/usage/numerical errors never escape: they
  /// come back as a Response with status kError and the cause in `error`.
  Response run(const Request& request);

  /// Executes the requests in order through the session pool. Equivalent to
  /// calling run() per element; one vector entry per request, same order.
  std::vector<Response> run_batch(const std::vector<Request>& requests);

  /// Number of sessions currently kept warm.
  std::size_t pooled_sessions() const { return pool_.size(); }
  /// Drops every pooled session (subsequent requests start cold).
  void clear_pool();

  const EngineOptions& options() const { return options_; }

 private:
  struct PooledSession;

  PooledSession& acquire(const std::string& key,
                         const model::Configuration& session_config,
                         core::SessionOptions session_options);
  void trim_pool();

  Response run_checked(const Request& request);

  EngineOptions options_;
  std::vector<std::unique_ptr<PooledSession>> pool_;
  std::uint64_t clock_ = 0;  ///< LRU stamp source
};

}  // namespace bbs::api
