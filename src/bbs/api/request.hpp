// Typed request surface of the service API.
//
// Every workload the library supports — the paper's joint solve, the
// capacity trade-off sweep, the maximum-throughput binary search, the
// two-phase baselines and the latency analysis — is expressed as one
// `Request` value: a tagged variant over per-kind payloads, each carrying
// the full `model::Configuration` it operates on plus its kind-specific
// options. Requests are plain values: serialisable (see io/api_io.hpp),
// copyable, and independent of any solver state. `api::Engine` executes
// them (engine.hpp); the old free-function drivers remain as thin,
// deprecated-but-stable wrappers around the same core.
#pragma once

#include <string>
#include <variant>

#include "bbs/model/configuration.hpp"
#include "bbs/solver/ipm_solver.hpp"

namespace bbs::api {

using linalg::Index;

/// Options honoured by every request kind. The IPM options and
/// `rounding_eps` are baked into the solver session that serves the
/// request, so requests that differ in them never share a pooled session.
struct RequestOptions {
  solver::SolverOptions ipm;
  /// Run the independent MCR/platform verification pass on every mapping
  /// the request returns (sweep points report budgets/capacities only and
  /// are never verified).
  bool verify = true;
  /// Rounding tolerance (see bbs/core/rounding.hpp).
  double rounding_eps = 1e-7;
  /// Wall-clock budget for this request in milliseconds; 0 = unlimited.
  /// The budget covers the request's whole life — in a service deployment
  /// it starts ticking at enqueue, so time spent waiting in a worker queue
  /// counts. Expiry yields a structured `deadline_exceeded` error; each
  /// request of a batch gets its own budget. Deadlines do NOT enter the
  /// session pool key: requests that differ only in deadline_ms share a
  /// pooled session.
  double deadline_ms = 0.0;
  /// Request tracing opt-in: the service allocates a telemetry::Trace for
  /// this request, stamps pipeline spans (queue/solve/write) on it, and
  /// echoes the trace id in Diagnostics.trace_id. Per-execution state like
  /// deadline_ms — excluded from the session pool key. Default off so the
  /// hot path stays allocation-free.
  bool trace = false;
  /// Additionally emit per-IPM-iteration and recovery-ladder events into
  /// the trace (implies trace). Separate flag because iteration events are
  /// the bulk of a trace's cost.
  bool trace_ipm = false;
};

/// compute_budgets_and_buffers: the paper's joint budget/buffer solve.
struct SolveRequest {
  model::Configuration configuration;
};

/// sweep_max_capacity: common capacity bound of graph `graph` swept over
/// [cap_lo, cap_hi], one joint solve per step. Buffers of the swept graph
/// are capped at the swept bound regardless of their configured
/// max_capacity, exactly like the free-function driver.
struct SweepRequest {
  model::Configuration configuration;
  Index graph = 0;
  Index cap_lo = 1;
  Index cap_hi = 1;
};

/// minimal_feasible_period(_budget_first): smallest feasible required
/// period of graph `graph`, by bisection below `period_hi`.
struct MinPeriodRequest {
  enum class Flow { kJoint, kBudgetFirst };
  model::Configuration configuration;
  Index graph = 0;
  double period_hi = 0.0;
  double rel_tol = 1e-4;
  Flow flow = Flow::kJoint;
};

/// solve_budget_first / solve_buffer_first / sweep_buffer_first: the staged
/// baselines. Budget-first ignores the capacity fields. Buffer-first fixes
/// every buffer at min(cap, max_capacity) containers for each cap in
/// [cap_lo, cap_hi]; with cap_hi == -1 only cap_lo is solved.
struct TwoPhaseRequest {
  enum class Mode { kBudgetFirst, kBufferFirst };
  model::Configuration configuration;
  Mode mode = Mode::kBudgetFirst;
  Index cap_lo = 1;
  Index cap_hi = -1;
};

/// Joint solve followed by worst-case source-to-sink latency bounds on the
/// rounded allocation (core/latency.hpp), for graph `graph` or for every
/// graph when `graph == -1`.
struct LatencyRequest {
  model::Configuration configuration;
  Index graph = -1;
};

using RequestPayload = std::variant<SolveRequest, SweepRequest,
                                    MinPeriodRequest, TwoPhaseRequest,
                                    LatencyRequest>;

struct Request {
  /// Caller-chosen correlation id, echoed verbatim in the response (JSONL
  /// batch streams rely on it; may stay empty).
  std::string id;
  RequestOptions options;
  RequestPayload payload;

  /// The embedded configuration of whichever kind this request is.
  const model::Configuration& configuration() const;
  model::Configuration& configuration();
  /// Stable kind tag: "solve", "sweep", "min_period", "two_phase",
  /// "latency" — the same strings the JSON schema uses.
  const char* kind() const;
};

}  // namespace bbs::api
