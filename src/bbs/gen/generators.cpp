#include "bbs/gen/generators.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "bbs/common/assert.hpp"

namespace bbs::gen {

namespace {

/// Sets a throughput requirement that a fair TDM split can meet:
/// mu = margin * max over tasks of rho(p) * chi(w) / beta_fair(p).
double feasible_period(const model::Configuration& config,
                       const model::TaskGraph& tg, const GenParams& params) {
  std::vector<Index> load(static_cast<std::size_t>(config.num_processors()),
                          0);
  for (Index t = 0; t < tg.num_tasks(); ++t) {
    ++load[static_cast<std::size_t>(tg.task(t).processor)];
  }
  double mu = 0.0;
  for (Index t = 0; t < tg.num_tasks(); ++t) {
    const model::Task& task = tg.task(t);
    const model::Processor& proc = config.processor(task.processor);
    const double n = static_cast<double>(
        load[static_cast<std::size_t>(task.processor)]);
    const double beta_fair =
        (proc.replenishment_interval - proc.scheduling_overhead -
         static_cast<double>(params.granularity) * n) /
        n;
    BBS_ASSERT_MSG(beta_fair > 0.0, "generated platform is over-subscribed");
    mu = std::max(mu, proc.replenishment_interval * task.wcet / beta_fair);
  }
  return params.feasible_margin * mu;
}

model::Configuration platform(const GenParams& params) {
  model::Configuration config(params.granularity);
  for (Index p = 0; p < params.num_processors; ++p) {
    config.add_processor("p" + std::to_string(p + 1),
                         params.replenishment_interval,
                         params.scheduling_overhead);
  }
  config.add_memory("shared", -1.0);
  return config;
}

}  // namespace

model::Configuration producer_consumer_t1(double buffer_weight) {
  model::Configuration config(1);
  const Index p1 = config.add_processor("p1", 40.0);
  const Index p2 = config.add_processor("p2", 40.0);
  const Index mem = config.add_memory("m1", -1.0);

  model::TaskGraph t1("T1", 10.0);
  const Index wa = t1.add_task("wa", p1, 1.0);
  const Index wb = t1.add_task("wb", p2, 1.0);
  const Index bab = t1.add_buffer("bab", wa, wb, mem, 1, 0, buffer_weight);
  (void)bab;
  config.add_task_graph(std::move(t1));
  return config;
}

model::Configuration three_stage_chain_t2(double buffer_weight) {
  model::Configuration config(1);
  const Index p1 = config.add_processor("p1", 40.0);
  const Index p2 = config.add_processor("p2", 40.0);
  const Index p3 = config.add_processor("p3", 40.0);
  const Index mem = config.add_memory("m1", -1.0);

  model::TaskGraph t2("T2", 10.0);
  const Index wa = t2.add_task("wa", p1, 1.0);
  const Index wb = t2.add_task("wb", p2, 1.0);
  const Index wc = t2.add_task("wc", p3, 1.0);
  t2.add_buffer("bab", wa, wb, mem, 1, 0, buffer_weight);
  t2.add_buffer("bbc", wb, wc, mem, 1, 0, buffer_weight);
  config.add_task_graph(std::move(t2));
  return config;
}

model::Configuration make_chain(Index num_tasks, const GenParams& params) {
  BBS_REQUIRE(num_tasks >= 1, "make_chain: need at least one task");
  model::Configuration config = platform(params);
  bbs::Rng rng(params.seed);

  model::TaskGraph tg("chain" + std::to_string(num_tasks), 1.0);
  for (Index t = 0; t < num_tasks; ++t) {
    tg.add_task("t" + std::to_string(t), t % params.num_processors,
                rng.next_real(params.wcet_lo, params.wcet_hi));
  }
  for (Index t = 0; t + 1 < num_tasks; ++t) {
    tg.add_buffer("b" + std::to_string(t), t, t + 1, 0, 1, 0,
                  params.buffer_weight);
  }
  // Fix the period after the WCETs are known.
  model::TaskGraph sized(tg.name(), feasible_period(config, tg, params));
  for (Index t = 0; t < tg.num_tasks(); ++t) {
    const model::Task& task = tg.task(t);
    sized.add_task(task.name, task.processor, task.wcet, task.budget_weight);
  }
  for (Index b = 0; b < tg.num_buffers(); ++b) {
    const model::Buffer& buf = tg.buffer(b);
    sized.add_buffer(buf.name, buf.producer, buf.consumer, buf.memory,
                     buf.container_size, buf.initial_fill, buf.size_weight);
  }
  config.add_task_graph(std::move(sized));
  return config;
}

model::Configuration make_ring(Index num_tasks, const GenParams& params) {
  BBS_REQUIRE(num_tasks >= 2, "make_ring: need at least two tasks");
  model::Configuration config = platform(params);
  bbs::Rng rng(params.seed);

  model::TaskGraph tg("ring" + std::to_string(num_tasks), 1.0);
  for (Index t = 0; t < num_tasks; ++t) {
    tg.add_task("t" + std::to_string(t), t % params.num_processors,
                rng.next_real(params.wcet_lo, params.wcet_hi));
  }
  // A ring's data queues form a cycle carrying exactly one token (the
  // closing edge's initial fill), so a PAS needs
  //     sum over tasks of ((rho - beta) + rho*chi/beta) <= mu,
  // which dwarfs the per-task bound used for acyclic graphs. Size mu from
  // that cycle with fair budgets.
  double ring_cycle = 0.0;
  {
    std::vector<Index> load(
        static_cast<std::size_t>(config.num_processors()), 0);
    for (Index t = 0; t < num_tasks; ++t) {
      ++load[static_cast<std::size_t>(tg.task(t).processor)];
    }
    for (Index t = 0; t < num_tasks; ++t) {
      const model::Task& task = tg.task(t);
      const model::Processor& proc = config.processor(task.processor);
      const double n = static_cast<double>(
          load[static_cast<std::size_t>(task.processor)]);
      const double beta_fair =
          (proc.replenishment_interval - proc.scheduling_overhead -
           static_cast<double>(params.granularity) * n) /
          n;
      ring_cycle += (proc.replenishment_interval - beta_fair) +
                    proc.replenishment_interval * task.wcet / beta_fair;
    }
  }
  model::TaskGraph sized(
      tg.name(), std::max(params.feasible_margin * ring_cycle,
                          feasible_period(config, tg, params)));
  for (Index t = 0; t < tg.num_tasks(); ++t) {
    const model::Task& task = tg.task(t);
    sized.add_task(task.name, task.processor, task.wcet, task.budget_weight);
  }
  for (Index t = 0; t < num_tasks; ++t) {
    const Index next = (t + 1) % num_tasks;
    // The closing edge carries one initially filled container; otherwise the
    // data cycle has no tokens and the ring deadlocks.
    const Index fill = (next == 0) ? 1 : 0;
    sized.add_buffer("b" + std::to_string(t), t, next, 0, 1, fill,
                     params.buffer_weight);
  }
  config.add_task_graph(std::move(sized));
  return config;
}

model::Configuration make_split_join(Index fanout, Index depth,
                                     const GenParams& params) {
  BBS_REQUIRE(fanout >= 1 && depth >= 1,
              "make_split_join: fanout and depth must be >= 1");
  model::Configuration config = platform(params);
  bbs::Rng rng(params.seed);

  model::TaskGraph tg("splitjoin", 1.0);
  Index next_proc = 0;
  const auto add = [&](const std::string& name) {
    const Index id = tg.add_task(name, next_proc % params.num_processors,
                                 rng.next_real(params.wcet_lo, params.wcet_hi));
    ++next_proc;
    return id;
  };
  const Index source = add("src");
  std::vector<std::vector<Index>> branches;
  for (Index f = 0; f < fanout; ++f) {
    std::vector<Index> branch;
    for (Index d = 0; d < depth; ++d) {
      branch.push_back(
          add("b" + std::to_string(f) + "_" + std::to_string(d)));
    }
    branches.push_back(std::move(branch));
  }
  const Index sink = add("sink");

  model::TaskGraph sized(tg.name(), feasible_period(config, tg, params));
  for (Index t = 0; t < tg.num_tasks(); ++t) {
    const model::Task& task = tg.task(t);
    sized.add_task(task.name, task.processor, task.wcet, task.budget_weight);
  }
  Index edge = 0;
  const auto connect = [&](Index from, Index to) {
    sized.add_buffer("e" + std::to_string(edge++), from, to, 0, 1, 0,
                     params.buffer_weight);
  };
  for (const auto& branch : branches) {
    connect(source, branch.front());
    for (std::size_t d = 0; d + 1 < branch.size(); ++d) {
      connect(branch[d], branch[d + 1]);
    }
    connect(branch.back(), sink);
  }
  config.add_task_graph(std::move(sized));
  return config;
}

model::Configuration make_random_dag(Index num_tasks,
                                     double extra_edge_fraction,
                                     const GenParams& params) {
  BBS_REQUIRE(num_tasks >= 2, "make_random_dag: need at least two tasks");
  BBS_REQUIRE(extra_edge_fraction >= 0.0,
              "make_random_dag: negative edge fraction");
  model::Configuration config = platform(params);
  bbs::Rng rng(params.seed);

  model::TaskGraph tg("dag" + std::to_string(num_tasks), 1.0);
  for (Index t = 0; t < num_tasks; ++t) {
    tg.add_task("t" + std::to_string(t),
                static_cast<Index>(rng.next_int(0, params.num_processors - 1)),
                rng.next_real(params.wcet_lo, params.wcet_hi));
  }
  model::TaskGraph sized(tg.name(), feasible_period(config, tg, params));
  for (Index t = 0; t < tg.num_tasks(); ++t) {
    const model::Task& task = tg.task(t);
    sized.add_task(task.name, task.processor, task.wcet, task.budget_weight);
  }
  // Spanning chain keeps the graph weakly connected; extra forward edges add
  // reconvergent paths (edges always go from lower to higher index: a DAG).
  Index edge = 0;
  for (Index t = 0; t + 1 < num_tasks; ++t) {
    sized.add_buffer("c" + std::to_string(edge++), t, t + 1, 0, 1, 0,
                     params.buffer_weight);
  }
  const auto extra = static_cast<Index>(
      extra_edge_fraction * static_cast<double>(num_tasks));
  for (Index e = 0; e < extra; ++e) {
    const Index from = static_cast<Index>(rng.next_int(0, num_tasks - 2));
    const Index to = static_cast<Index>(rng.next_int(from + 1, num_tasks - 1));
    sized.add_buffer("x" + std::to_string(edge++), from, to, 0, 1, 0,
                     params.buffer_weight);
  }
  config.add_task_graph(std::move(sized));
  return config;
}

model::Configuration make_multi_job(Index num_jobs, Index tasks_per_job,
                                    const GenParams& params) {
  BBS_REQUIRE(num_jobs >= 1, "make_multi_job: need at least one job");
  BBS_REQUIRE(tasks_per_job >= 1,
              "make_multi_job: need at least one task per job");
  model::Configuration config = platform(params);
  bbs::Rng rng(params.seed);

  // Draft every job before sizing any of them: a job's fair-split period
  // depends on the *total* per-processor load across all jobs sharing the
  // platform, which the single-graph feasible_period helper cannot see.
  std::vector<model::TaskGraph> drafts;
  std::vector<Index> load(static_cast<std::size_t>(params.num_processors), 0);
  Index next_proc = 0;
  for (Index j = 0; j < num_jobs; ++j) {
    model::TaskGraph tg("job" + std::to_string(j), 1.0);
    for (Index t = 0; t < tasks_per_job; ++t) {
      const Index proc = next_proc++ % params.num_processors;
      ++load[static_cast<std::size_t>(proc)];
      tg.add_task("j" + std::to_string(j) + "t" + std::to_string(t), proc,
                  rng.next_real(params.wcet_lo, params.wcet_hi));
    }
    drafts.push_back(std::move(tg));
  }
  for (Index j = 0; j < num_jobs; ++j) {
    const model::TaskGraph& tg = drafts[static_cast<std::size_t>(j)];
    double mu = 0.0;
    for (Index t = 0; t < tg.num_tasks(); ++t) {
      const model::Task& task = tg.task(t);
      const model::Processor& proc = config.processor(task.processor);
      const double n = static_cast<double>(
          load[static_cast<std::size_t>(task.processor)]);
      const double beta_fair =
          (proc.replenishment_interval - proc.scheduling_overhead -
           static_cast<double>(params.granularity) * n) /
          n;
      BBS_ASSERT_MSG(beta_fair > 0.0, "generated platform is over-subscribed");
      mu = std::max(mu, proc.replenishment_interval * task.wcet / beta_fair);
    }
    model::TaskGraph sized(tg.name(), params.feasible_margin * mu);
    for (Index t = 0; t < tg.num_tasks(); ++t) {
      const model::Task& task = tg.task(t);
      sized.add_task(task.name, task.processor, task.wcet, task.budget_weight);
    }
    for (Index t = 0; t + 1 < tasks_per_job; ++t) {
      sized.add_buffer("j" + std::to_string(j) + "b" + std::to_string(t), t,
                       t + 1, 0, 1, 0, params.buffer_weight);
    }
    config.add_task_graph(std::move(sized));
  }
  return config;
}

model::Configuration car_entertainment_preset() {
  model::Configuration config(1);
  const Index dsp = config.add_processor("dsp", 50.0, 1.0);
  const Index cpu = config.add_processor("cpu", 50.0, 1.0);
  const Index io = config.add_processor("io", 50.0, 0.5);
  const Index sram = config.add_memory("sram", 64.0);
  const Index dram = config.add_memory("dram", -1.0);

  // Job 1: navigation audio prompts — decode -> mix -> render.
  model::TaskGraph nav("nav-audio", 25.0);
  {
    const Index decode = nav.add_task("nav.decode", cpu, 2.0);
    const Index mix = nav.add_task("nav.mix", dsp, 1.5);
    const Index render = nav.add_task("nav.render", io, 1.0);
    nav.add_buffer("nav.b0", decode, mix, sram, 2, 0, 1e-3);
    nav.add_buffer("nav.b1", mix, render, sram, 1, 0, 1e-3);
  }
  config.add_task_graph(std::move(nav));

  // Job 2: mp3 playback — parse -> decode -> post -> render, heavier and
  // slightly slower-rate, sharing dsp and io with job 1.
  model::TaskGraph mp3("mp3-playback", 30.0);
  {
    const Index parse = mp3.add_task("mp3.parse", cpu, 1.0);
    const Index decode = mp3.add_task("mp3.decode", dsp, 3.0);
    const Index post = mp3.add_task("mp3.post", dsp, 1.0);
    const Index render = mp3.add_task("mp3.render", io, 1.0);
    mp3.add_buffer("mp3.b0", parse, decode, dram, 4, 0, 1e-3);
    mp3.add_buffer("mp3.b1", decode, post, sram, 2, 0, 1e-3);
    mp3.add_buffer("mp3.b2", post, render, sram, 1, 0, 1e-3);
  }
  config.add_task_graph(std::move(mp3));
  return config;
}

}  // namespace bbs::gen
