// Synthetic configuration generators.
//
// The paper evaluates on two hand-built task graphs (T1 producer-consumer,
// T2 three-stage chain); the generators here reproduce those exactly and add
// parametric families (chains, rings, trees, random DAGs, multi-job presets)
// used by the scaling benchmarks and the property-based tests. Throughput
// requirements are derived from the platform parameters so that generated
// instances are feasible by construction when `feasible_margin` > 1.
#pragma once

#include <cstdint>

#include "bbs/common/rng.hpp"
#include "bbs/model/configuration.hpp"

namespace bbs::gen {

using linalg::Index;

/// The paper's first experiment (Section V): two tasks w_a, w_b on
/// processors p1, p2, replenishment interval 40 Mcycles, WCET 1 Mcycle,
/// required period 10 Mcycles, one unit-container buffer, all containers
/// initially empty. Budget weights 1, buffer weights `buffer_weight`
/// (the paper prefers budget minimisation: buffer weight << budget weight).
model::Configuration producer_consumer_t1(double buffer_weight = 1e-3);

/// The paper's second experiment: T1 extended with task w_c on p3 and
/// buffer b_bc; same parameters.
model::Configuration three_stage_chain_t2(double buffer_weight = 1e-3);

/// Parameters of the generated families.
struct GenParams {
  Index num_processors = 4;
  double replenishment_interval = 40.0;
  double scheduling_overhead = 0.0;
  double wcet_lo = 0.5;
  double wcet_hi = 2.0;
  /// Required period = feasible_margin * (tightest per-task lower bound
  /// given a fair budget split on the most loaded processor).
  double feasible_margin = 1.5;
  double buffer_weight = 1e-3;
  Index granularity = 1;
  std::uint64_t seed = 1;
};

/// Chain of `num_tasks` tasks; task i feeds task i+1. Tasks are spread
/// round-robin over the processors.
model::Configuration make_chain(Index num_tasks, const GenParams& params = {});

/// Ring of `num_tasks` tasks (the closing buffer starts with one filled
/// container so the ring does not deadlock).
model::Configuration make_ring(Index num_tasks, const GenParams& params = {});

/// Balanced fan-out/fan-in tree: one source, `fanout` branches of length
/// `depth`, merged into one sink (split/join pipeline).
model::Configuration make_split_join(Index fanout, Index depth,
                                     const GenParams& params = {});

/// Random weakly connected DAG with `num_tasks` tasks and approximately
/// `extra_edge_fraction` * num_tasks additional forward edges on top of a
/// random spanning chain. WCETs are drawn uniformly from
/// [wcet_lo, wcet_hi].
model::Configuration make_random_dag(Index num_tasks,
                                     double extra_edge_fraction,
                                     const GenParams& params = {});

/// `num_jobs` independent chain jobs of `tasks_per_job` tasks each, sharing
/// one platform: tasks are placed round-robin over the processors *across*
/// jobs, so each processor's TDM wheel is contended by several jobs. Each
/// job gets its own throughput requirement, derived from a fair budget
/// split of the platform's *total* load (all jobs combined) — generated
/// systems are feasible by construction when `feasible_margin` > 1.
model::Configuration make_multi_job(Index num_jobs, Index tasks_per_job,
                                    const GenParams& params = {});

/// A small multi-job system in the spirit of the paper's introduction
/// (car entertainment): a navigation-audio chain and an mp3-playback chain
/// sharing two of three processors, each with its own throughput requirement.
model::Configuration car_entertainment_preset();

}  // namespace bbs::gen
