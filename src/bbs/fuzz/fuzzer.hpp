// Differential fuzzing of the end-to-end solve pipeline.
//
// Each case is derived deterministically from (seed, index): a randomized
// configuration drawn from the gen/ families (chains, rings, split-joins,
// random DAGs, multi-job mixes) with optional adversarial mutations
// (extreme WCET ratios, tiny/huge replenishment intervals, granularity
// stress, near-infeasible throughput margins), wrapped into one service
// request and executed through a pooled api::Engine. Every answer is then
// cross-checked against independent oracles:
//
//   * the exhaustive integer reference (core/exact_reference.hpp) on small
//     instances — the exact optimum can never cost more than any verified
//     rounded allocation, and a *complete* exact infeasibility proof can
//     never coexist with a verified feasible mapping;
//   * the TDM discrete-event simulator plus the PAS conservativeness bound
//     (sim/tdm_simulator.hpp, core/verification.hpp) — a verified
//     allocation must sustain its required period in actual execution;
//   * self-consistency across request kinds — a sweep point and a plain
//     solve of the same capacity bound answer the same SOCP.
//
// Failing cases are shrunk by re-generation with reduced parameters and
// written as standalone JSON reproducers (spec + request + failure
// messages) that replay through the stored request, so a checked-in corpus
// stays meaningful even if the generators evolve.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bbs/api/engine.hpp"
#include "bbs/gen/generators.hpp"
#include "bbs/io/json.hpp"

namespace bbs::fuzz {

using linalg::Index;

enum class Family { kChain, kRing, kSplitJoin, kRandomDag, kMultiJob };
enum class RequestKind { kSolve, kSweep, kMinPeriod, kTwoPhase, kLatency };

const char* to_string(Family family);
const char* to_string(RequestKind kind);

/// Everything that defines one fuzz case. Regenerating a spec is
/// deterministic, and every field is individually reducible — the shrinker
/// works by clearing mutation flags and lowering sizes, re-running after
/// each step.
struct CaseSpec {
  std::uint64_t seed = 1;
  std::uint64_t index = 0;
  Family family = Family::kChain;
  /// Family-specific sizes: tasks (chain/ring/dag), fanout (split-join),
  /// jobs (multi-job).
  Index size_a = 2;
  /// Branch depth (split-join) / tasks per job (multi-job); unused
  /// otherwise.
  Index size_b = 1;
  double extra_edge_fraction = 0.5;  ///< random DAGs only
  /// Base generator parameters, *before* the mutation flags below are
  /// applied (so the shrinker can clear a flag and regenerate coherently).
  gen::GenParams params;
  /// Uniform finite max_capacity applied to every buffer. Finite caps make
  /// the SOCP's capacity ceiling equal to the exact search's ceiling, which
  /// is what makes the exact-oracle inequality sound.
  Index max_capacity = 4;
  RequestKind kind = RequestKind::kSolve;
  /// Kind-specific variant (min_period flow / two_phase mode / sim slice
  /// placement).
  Index variant = 0;
  // Adversarial mutations.
  bool extreme_wcet = false;       ///< WCET ratio ~ 1:1500
  bool tiny_interval = false;      ///< replenishment interval at the floor
  bool huge_interval = false;      ///< replenishment interval 2e4 cycles
  bool granularity_stress = false; ///< coarse allocation granularity
  bool near_infeasible = false;    ///< throughput margin within ~1-5%
};

/// Derives the deterministic case at `index` of stream `seed`.
CaseSpec make_case(std::uint64_t seed, std::uint64_t index);

/// The mutated generator parameters the spec's configuration is built with
/// (mutation flags applied, over-subscription floor enforced).
gen::GenParams effective_params(const CaseSpec& spec);

model::Configuration build_configuration(const CaseSpec& spec);
api::Request build_request(const CaseSpec& spec);

/// Compact human-readable tag: "seed=3 index=41 ring/5 kind=sweep [tiny-rho]".
std::string case_label(const CaseSpec& spec);

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::uint64_t cases = 100;
  /// Directory reproducers of failing (shrunk) cases are written to;
  /// empty = don't write.
  std::string corpus_dir;
  bool shrink = true;
  /// Upper bound on shrinker re-runs per failing case.
  int max_shrink_runs = 64;
  bool run_exact_oracle = true;
  bool run_sim_oracle = true;
  /// 0 silent, 1 log failures, 2 log every case (stderr).
  int verbosity = 0;
  /// Test hook: deliberately corrupt the reported rounded objective of
  /// every feasible solve before the oracles run, proving the harness
  /// detects a disagreement end to end. Never set outside the self-tests.
  bool inject_known_bad = false;
  /// Chaos hook: force the first IPM attempt of every solve to fail
  /// (ipm.fail_once), so every case also exercises the numerical recovery
  /// ladder; rescues surface in FuzzSummary::recovered_solves.
  bool inject_fail_first = false;
};

struct CaseResult {
  CaseSpec spec;
  bool passed = true;
  bool engine_error = false;       ///< parse/internal error response
  bool numerical_failure = false;  ///< structured kNumericalFailure response
  bool infeasible = false;
  bool exact_checked = false;      ///< exact oracle reached a verdict
  bool sim_checked = false;
  int recovered_solves = 0;        ///< ladder rescues behind this request
  std::vector<std::string> failures;
};

/// Builds and runs one case through `engine` and applies every oracle.
CaseResult run_case(api::Engine& engine, const CaseSpec& spec,
                    const FuzzOptions& options);

/// Core of run_case on a caller-supplied request (the replay path runs the
/// *stored* request of a reproducer instead of regenerating it).
CaseResult run_request_checks(api::Engine& engine, const CaseSpec& spec,
                              const api::Request& request,
                              const FuzzOptions& options);

/// Shrinks a failing case by re-generation with reduced parameters until no
/// single reduction keeps it failing (or the run budget is exhausted).
/// Returns the smallest still-failing spec found.
CaseSpec shrink_case(api::Engine& engine, const CaseSpec& failing,
                     const FuzzOptions& options);

struct FuzzSummary {
  std::uint64_t cases = 0;
  std::uint64_t passed = 0;
  std::uint64_t failed = 0;
  std::uint64_t infeasible = 0;
  std::uint64_t numerical_failures = 0;
  std::uint64_t exact_checked = 0;
  std::uint64_t sim_checked = 0;
  /// Engine-wide ladder rescues across the whole run.
  std::uint64_t recovered_solves = 0;
  std::vector<std::string> reproducers;    ///< reproducer files written
  std::vector<std::string> failure_lines;  ///< one line per failing case
  bool ok() const { return failed == 0; }
};

/// Runs `options.cases` deterministic cases (one shared engine, so session
/// pooling is exercised across cases), shrinking and recording failures.
FuzzSummary run_fuzz(const FuzzOptions& options);

io::JsonValue case_spec_to_json_value(const CaseSpec& spec);
CaseSpec case_spec_from_json_value(const io::JsonValue& doc);

/// Writes a standalone JSON reproducer (spec + request + failures) into
/// `corpus_dir` (created if missing) and returns its path.
std::string write_reproducer(const CaseSpec& spec, const CaseResult& result,
                             const std::string& corpus_dir);

/// Replays one reproducer file through a fresh engine, using the *stored*
/// request (not a regeneration). Returns the case outcome; `passed` means
/// the recorded bug no longer reproduces.
CaseResult replay_file(const std::string& path, const FuzzOptions& options);

}  // namespace bbs::fuzz
